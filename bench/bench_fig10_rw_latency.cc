// Figure 10: read and write latency of Raw (unsafe), Boki, Halfmoon-read, Halfmoon-write.
//
// Setup per §6.1: a synthetic SSF issuing one read and one write per request over 10 K
// objects (8 B keys, 256 B values), reporting median (bar) and 99th percentile (error bar).
//
// Expected shape: HM-read ≈30% below Boki on reads, near the unsafe raw read; HM-write ≈30%
// below Boki on writes, above raw writes (conditional update); each protocol matches Boki on
// its logged side.

#include "bench/bench_common.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

struct Fig10Row {
  std::string system;
  double read_median, read_p99, write_median, write_p99;
};

Fig10Row RunSystem(const SystemUnderTest& system) {
  ExperimentOptions options;
  options.protocol = system.protocol;
  ExperimentWorld world(options);

  workloads::SyntheticConfig config;
  config.num_objects = 10000;
  config.value_bytes = 256;
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  // One read and one write per request (§6.1), at a light load so queueing stays negligible.
  workloads::LoadGenConfig load;
  load.requests_per_second = 100;
  load.warmup = Seconds(2);
  load.duration = Scaled(Seconds(20));
  Rng& rng = world.cluster().rng();
  workloads::LoadGenerator generator(
      &world.runtime(), load, [&synthetic, &rng, &config]() {
        Value input = "R:" + synthetic.KeyFor(static_cast<int>(
                                 rng.UniformInt(0, config.num_objects - 1))) +
                      ";W:" + synthetic.KeyFor(static_cast<int>(
                                 rng.UniformInt(0, config.num_objects - 1)));
        return std::make_pair(workloads::SyntheticWorkload::FunctionName(), input);
      });

  // Exclude warm-up samples from the per-op recorders.
  world.cluster().scheduler().Post(load.warmup, [&synthetic] {
    synthetic.read_latency().Clear();
    synthetic.write_latency().Clear();
  });
  generator.RunToCompletion();

  return Fig10Row{system.label, synthetic.read_latency().MedianMs(),
                  synthetic.read_latency().P99Ms(), synthetic.write_latency().MedianMs(),
                  synthetic.write_latency().P99Ms()};
}

void RunFig10() {
  std::printf("== Figure 10: latency of read and write (median / p99) ==\n");
  std::printf("   (paper: HM-read ~30%% below Boki on reads; HM-write ~30%% below Boki on\n");
  std::printf("    writes; log-free ops near — but above — the unsafe raw baseline)\n\n");

  std::vector<Fig10Row> rows;
  for (const SystemUnderTest& system : AllSystems()) {
    rows.push_back(RunSystem(system));
  }

  // Raw (unsafe) is the overhead reference.
  const Fig10Row* raw = nullptr;
  for (const Fig10Row& row : rows) {
    if (row.system == "Unsafe") raw = &row;
  }

  metrics::TablePrinter table({"system", "read_med_ms", "read_p99_ms", "write_med_ms",
                               "write_p99_ms", "read_overhead", "write_overhead"});
  for (const Fig10Row& row : rows) {
    double read_ovh = raw != nullptr ? row.read_median - raw->read_median : 0.0;
    double write_ovh = raw != nullptr ? row.write_median - raw->write_median : 0.0;
    table.AddRow({row.system, Fmt(row.read_median), Fmt(row.read_p99), Fmt(row.write_median),
                  Fmt(row.write_p99), Fmt(read_ovh), Fmt(write_ovh)});
  }
  table.Print();

  // Headline ratios the paper calls out in §6.1.
  const Fig10Row* boki = &rows[0];
  const Fig10Row* hmw = &rows[1];
  const Fig10Row* hmr = &rows[2];
  std::printf("\nHM-read read latency vs Boki: %.0f%% lower\n",
              100.0 * (1.0 - hmr->read_median / boki->read_median));
  std::printf("HM-write write latency vs Boki: %.0f%% lower\n",
              100.0 * (1.0 - hmw->write_median / boki->write_median));
  if (raw != nullptr) {
    double hmr_ovh = hmr->read_median - raw->read_median;
    double boki_ovh = boki->read_median - raw->read_median;
    std::printf("read overhead over raw: Boki %.2f ms vs HM-read %.2f ms (%.1fx lower)\n",
                boki_ovh, hmr_ovh, boki_ovh / hmr_ovh);
    double hmw_ovh = hmw->write_median - raw->write_median;
    double boki_w_ovh = boki->write_median - raw->write_median;
    std::printf("write overhead over raw: Boki %.2f ms vs HM-write %.2f ms (%.1fx lower)\n",
                boki_w_ovh, hmw_ovh, boki_w_ovh / hmw_ovh);
  }
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  halfmoon::bench::RunFig10();
  return 0;
}
