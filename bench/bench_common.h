// Shared scaffolding for the benchmark harnesses: one simulated cluster + runtime + GC per
// experiment configuration, and environment knobs to scale run length.
//
// Every binary prints the rows/series of one table or figure from the paper's evaluation
// (§6). Durations default to a few simulated seconds per data point so the full suite runs in
// minutes; set HM_BENCH_SCALE (e.g. 3.0) to lengthen the measurement windows for tighter
// percentiles.

#ifndef HALFMOON_BENCH_BENCH_COMMON_H_
#define HALFMOON_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/gc_service.h"
#include "src/core/ssf_runtime.h"
#include "src/metrics/table_printer.h"
#include "src/runtime/cluster.h"

namespace halfmoon::bench {

inline double BenchScale() {
  const char* env = std::getenv("HM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline SimDuration Scaled(SimDuration d) {
  return static_cast<SimDuration>(static_cast<double>(d) * BenchScale());
}

struct ExperimentOptions {
  core::ProtocolKind protocol = core::ProtocolKind::kHalfmoonRead;
  uint64_t seed = 1;
  SimDuration gc_interval = Seconds(10);
  bool start_gc = true;
  bool enable_switching = false;

  // Capacity knobs. The paper's application curves (Fig. 11) saturate at the *same* offered
  // load for every system — the binding resource is protocol-independent (the external
  // store: all protocols issue the same DB ops; only log traffic differs, and "logging is
  // typically not the bottleneck of Boki"). Benchmarks therefore pick which station binds.
  int workers_per_node = 16;
  int sequencer_servers = 12;
  int db_servers = 48;

  // Latency calibration override (ablation benches tweak individual entries).
  LatencyCalibration calibration;

  // Forwarded to RuntimeConfig (ablation: disable the §4.3 child-cursor inheritance).
  bool inherit_child_cursor = true;
};

// One experiment run: cluster, runtime, and GC, wired together.
class ExperimentWorld {
 public:
  explicit ExperimentWorld(const ExperimentOptions& options) {
    runtime::ClusterConfig ccfg;
    ccfg.seed = options.seed;
    ccfg.workers_per_node = options.workers_per_node;
    ccfg.sequencer_servers = options.sequencer_servers;
    ccfg.db_servers = options.db_servers;
    ccfg.calibration = options.calibration;
    cluster_ = std::make_unique<runtime::Cluster>(ccfg);

    core::RuntimeConfig rcfg;
    rcfg.default_protocol = options.protocol;
    rcfg.enable_switching = options.enable_switching;
    rcfg.inherit_child_cursor = options.inherit_child_cursor;
    runtime_ = std::make_unique<core::SsfRuntime>(cluster_.get(), rcfg);

    gc_ = std::make_unique<core::GcService>(cluster_.get(), options.gc_interval);
    if (options.start_gc) gc_->Start();
  }

  ~ExperimentWorld() {
    gc_->Stop();
  }

  runtime::Cluster& cluster() { return *cluster_; }
  core::SsfRuntime& runtime() { return *runtime_; }
  core::GcService& gc() { return *gc_; }

 private:
  std::unique_ptr<runtime::Cluster> cluster_;
  std::unique_ptr<core::SsfRuntime> runtime_;
  std::unique_ptr<core::GcService> gc_;
};

// The four systems of Figure 10/11, in the paper's plotting order.
struct SystemUnderTest {
  const char* label;
  core::ProtocolKind protocol;
};

inline const std::vector<SystemUnderTest>& AllSystems() {
  static const std::vector<SystemUnderTest>* systems = new std::vector<SystemUnderTest>{
      {"Boki", core::ProtocolKind::kBoki},
      {"Halfmoon-write", core::ProtocolKind::kHalfmoonWrite},
      {"Halfmoon-read", core::ProtocolKind::kHalfmoonRead},
      {"Unsafe", core::ProtocolKind::kUnsafe},
  };
  return *systems;
}

inline std::string Fmt(double v, int precision = 2) {
  return metrics::TablePrinter::FormatDouble(v, precision);
}

}  // namespace halfmoon::bench

#endif  // HALFMOON_BENCH_BENCH_COMMON_H_
