// Figure 11: end-to-end median and p99 latency vs. throughput for the three application
// workloads (travel reservation, movie review, Retwis) under Boki, Halfmoon-write,
// Halfmoon-read, and the unsafe baseline.
//
// Expected shape (§6.2): with the protocol matching the workload, Halfmoon's median latency
// is 20-40% below Boki; Halfmoon-read wins the read-intensive travel/Retwis workloads and
// Halfmoon-write wins the write-skewed movie workload; even the "wrong" Halfmoon protocol
// beats Boki; all fault-tolerant systems saturate at approximately the same offered load.

#include "bench/bench_common.h"
#include "src/workloads/applications.h"
#include "src/workloads/loadgen.h"

namespace halfmoon::bench {
namespace {

struct AppSweep {
  const char* app;
  std::vector<double> rates;
};

struct Point {
  double offered;
  double throughput;
  double median_ms;
  double p99_ms;
};

Point RunPoint(const workloads::AppDescriptor& app, const SystemUnderTest& system,
               double rate) {
  ExperimentOptions options;
  options.protocol = system.protocol;
  // The external store binds capacity (protocol-independent op counts), so all four systems
  // saturate at the same offered load, as in the paper. Calibration: EXPERIMENTS.md.
  options.db_servers = 4;
  ExperimentWorld world(options);

  workloads::AppDataset data;
  app.register_fn(world.runtime(), data);
  workloads::RequestFactory factory = app.factory_fn(world.runtime(), data);

  workloads::LoadGenConfig load;
  load.requests_per_second = rate;
  load.warmup = Seconds(2);
  load.duration = Scaled(Seconds(6));
  workloads::LoadGenerator generator(&world.runtime(), load, std::move(factory));
  generator.RunToCompletion();

  return Point{rate, generator.MeasuredThroughput(), generator.latency().MedianMs(),
               generator.latency().P99Ms()};
}

void RunFig11() {
  std::printf("== Figure 11: end-to-end latency vs throughput (median & p99, ms) ==\n\n");

  const std::vector<AppSweep> sweeps = {
      {"travel", {200, 400, 600, 800, 1000, 1100}},
      {"movie", {100, 250, 400, 550, 700, 800}},
      {"retwis", {300, 800, 1300, 1800, 2100, 2300}},
  };

  for (const workloads::AppDescriptor& app : workloads::AllApplications()) {
    const AppSweep* sweep = nullptr;
    for (const AppSweep& s : sweeps) {
      if (s.app == app.name) sweep = &s;
    }
    std::printf("-- %s --\n", app.name.c_str());
    metrics::TablePrinter table({"req/s", "Boki_med", "HM-W_med", "HM-R_med", "Unsafe_med",
                                 "Boki_p99", "HM-W_p99", "HM-R_p99", "Unsafe_p99"});
    for (double rate : sweep->rates) {
      std::vector<std::string> row;
      row.push_back(Fmt(rate, 0));
      std::vector<Point> points;
      for (const SystemUnderTest& system : AllSystems()) {
        points.push_back(RunPoint(app, system, rate));
      }
      for (const Point& p : points) row.push_back(Fmt(p.median_ms, 1));
      for (const Point& p : points) row.push_back(Fmt(p.p99_ms, 1));
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  halfmoon::bench::RunFig11();
  return 0;
}
