// Table 1: latency of log, read, and write operations in Boki's infrastructure.
//
//            |   Log    |   Read   |  Write
//   median   |  1.18ms  |  1.88ms  |  2.47ms
//   99%-tile |  1.91ms  |  4.60ms  |  5.86ms
//
// This binary measures the same primitives against our substrates (shared-log append, raw DB
// read, conditional DB write) and prints the measured vs. paper quantiles. It also registers
// the primitives as google-benchmark manual-time benchmarks over simulated time.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/ssf_runtime.h"
#include "src/metrics/latency_recorder.h"
#include "src/runtime/cluster.h"
#include "src/sharedlog/log_client.h"

namespace halfmoon::bench {
namespace {

constexpr int kSamples = 20000;

struct MicroFixture {
  sim::Scheduler scheduler;
  Rng rng{1};
  LatencyModels models;
  sharedlog::LogSpace space;
  kvstore::KvState state;
  sharedlog::LogClient log{&scheduler, &rng, &models, &space, nullptr, nullptr};
  kvstore::KvClient kv{&scheduler, &rng, &models, &state, nullptr};
};

FieldMap RecordFields() {
  FieldMap f;
  f.SetStr("op", "bench");
  f.SetInt("step", 0);
  return f;
}

enum class MicroOp { kLogAppend, kLogReadPrevCached, kDbRead, kDbCondWrite, kDbPlainWrite };

// The node-local payload cache (ClusterConfig::log_read_cache) under the Halfmoon-read
// log-free read: repeated bounded logReadPrev of the same tag. The first read misses and
// populates; every following read is validated against the index replica and served from
// node memory. Uses the sharded-client constructor, the only one that takes the cache flag.
metrics::LatencyRecorder RunNodeCacheMicroOp(int count, sharedlog::LogClientStats* stats) {
  sim::Scheduler scheduler;
  Rng rng{1};
  LatencyModels models;
  sharedlog::ShardedLog log_space{1};
  sharedlog::LogClient log{&scheduler,
                           &rng,
                           &models,
                           &log_space,
                           {},
                           nullptr,
                           sharedlog::AppendBatchConfig{.enabled = false},
                           /*read_cache=*/true};
  metrics::LatencyRecorder recorder;
  scheduler.Spawn([](sim::Scheduler* scheduler, sharedlog::LogClient* log, int count,
                     metrics::LatencyRecorder* rec) -> sim::Task<void> {
    sharedlog::SeqNum last = co_await log->Append(sharedlog::OneTag("t"), RecordFields());
    for (int i = 0; i < count; ++i) {
      SimTime before = scheduler->Now();
      co_await log->ReadPrev("t", last);
      rec->Record(scheduler->Now() - before);
    }
  }(&scheduler, &log, count, &recorder));
  scheduler.Run();
  if (stats != nullptr) {
    stats->read_record_shared += log.stats().read_record_shared;
    stats->read_record_copies += log.stats().read_record_copies;
    stats->cache_hits += log.stats().cache_hits;
    stats->cache_misses += log.stats().cache_misses;
    stats->reads_index_local += log.stats().reads_index_local;
    stats->reads_storage += log.stats().reads_storage;
  }
  return recorder;
}

// Runs `count` iterations of one primitive, recording per-op simulated latency. Log-client
// stats are accumulated into `stats` (zero-copy audit of the read path).
metrics::LatencyRecorder RunMicroOp(MicroOp op, int count, sharedlog::LogClientStats* stats) {
  MicroFixture fx;
  metrics::LatencyRecorder recorder;
  fx.scheduler.Spawn([](MicroFixture* fx, MicroOp op, int count,
                        metrics::LatencyRecorder* rec) -> sim::Task<void> {
    co_await fx->kv.Put("k", PadValue("v", 256));
    sharedlog::SeqNum last = co_await fx->log.Append(sharedlog::OneTag("t"), RecordFields());
    for (int i = 0; i < count; ++i) {
      SimTime before = fx->scheduler.Now();
      switch (op) {
        case MicroOp::kLogAppend:
          last = co_await fx->log.Append(sharedlog::OneTag("t"), RecordFields());
          break;
        case MicroOp::kLogReadPrevCached:
          co_await fx->log.ReadPrev("t", last);
          break;
        case MicroOp::kDbRead:
          co_await fx->kv.Get("k");
          break;
        case MicroOp::kDbCondWrite:
          co_await fx->kv.CondPut("k", PadValue("v", 256),
                                  kvstore::VersionTuple{static_cast<uint64_t>(i + 2), 0});
          break;
        case MicroOp::kDbPlainWrite:
          co_await fx->kv.Put("k", PadValue("v", 256));
          break;
      }
      rec->Record(fx->scheduler.Now() - before);
    }
  }(&fx, op, count, &recorder));
  fx.scheduler.Run();
  if (stats != nullptr) {
    stats->read_record_shared += fx.log.stats().read_record_shared;
    stats->read_record_copies += fx.log.stats().read_record_copies;
    stats->cache_hits += fx.log.stats().cache_hits;
    stats->cache_misses += fx.log.stats().cache_misses;
    stats->reads_index_local += fx.log.stats().reads_index_local;
    stats->reads_storage += fx.log.stats().reads_storage;
  }
  return recorder;
}

void PrintTable1() {
  std::printf("== Table 1: latency of log, read and write operations ==\n");
  std::printf("   (paper reference: log 1.18/1.91 ms, read 1.88/4.60 ms, write 2.47/5.86 ms;\n");
  std::printf("    logReadPrev cached 0.12/0.72 ms per Boki, cited in Section 4.1)\n\n");

  struct Row {
    const char* label;
    MicroOp op;
    double paper_median;
    double paper_p99;
  };
  const Row rows[] = {
      {"Log (append)", MicroOp::kLogAppend, 1.18, 1.91},
      {"Read (DynamoDB)", MicroOp::kDbRead, 1.88, 4.60},
      {"Write (DynamoDB cond.)", MicroOp::kDbCondWrite, 2.47, 5.86},
      {"logReadPrev (cached)", MicroOp::kLogReadPrevCached, 0.12, 0.72},
      {"Write (DynamoDB plain)", MicroOp::kDbPlainWrite, 2.20, 5.20},
  };

  metrics::TablePrinter table({"operation", "median_ms", "p99_ms", "paper_median_ms",
                               "paper_p99_ms"});
  sharedlog::LogClientStats log_stats;
  for (const Row& row : rows) {
    metrics::LatencyRecorder rec =
        RunMicroOp(row.op, static_cast<int>(kSamples * BenchScale()), &log_stats);
    table.AddRow({row.label, Fmt(rec.MedianMs()), Fmt(rec.P99Ms()), Fmt(row.paper_median),
                  Fmt(row.paper_p99)});
  }
  metrics::LatencyRecorder cache_rec =
      RunNodeCacheMicroOp(static_cast<int>(kSamples * BenchScale()), &log_stats);
  table.AddRow({"logReadPrev (node cache)", Fmt(cache_rec.MedianMs()), Fmt(cache_rec.P99Ms()),
                Fmt(0.12), Fmt(0.72)});
  table.Print();
  std::printf("\nzero-copy audit: read_record_shared=%lld read_record_copies=%lld\n",
              static_cast<long long>(log_stats.read_record_shared),
              static_cast<long long>(log_stats.read_record_copies));
  std::printf("read-path audit: index_local=%lld storage=%lld cache_hits=%lld"
              " cache_misses=%lld\n",
              static_cast<long long>(log_stats.reads_index_local),
              static_cast<long long>(log_stats.reads_storage),
              static_cast<long long>(log_stats.cache_hits),
              static_cast<long long>(log_stats.cache_misses));
  std::printf("\n");
}

// Logged-bytes-by-class audit: a small read-modify-write workload on a real cluster, one run
// per protocol, with committed bytes sliced by append class (class 0 = control records —
// init/invoke/switch; class 1+kind = that protocol's own records; see core::LogAppendClass).
// The §4.6 storage comparison between protocols is exactly the protocol-class column, and
// the slices must add up to the cluster's total appended bytes.
void PrintLoggedBytesAudit() {
  std::printf("== Logged bytes by append class (simulated, 6 counter increments) ==\n");
  metrics::TablePrinter table(
      {"protocol", "total_bytes", "control_bytes", "protocol_bytes", "protocol_share"});
  const core::ProtocolKind protocols[] = {
      core::ProtocolKind::kBoki,
      core::ProtocolKind::kHalfmoonRead,
      core::ProtocolKind::kHalfmoonWrite,
      core::ProtocolKind::kTransitional,
  };
  for (core::ProtocolKind protocol : protocols) {
    runtime::Cluster cluster{runtime::ClusterConfig{}};
    core::RuntimeConfig rcfg;
    rcfg.default_protocol = protocol;
    core::SsfRuntime runtime(&cluster, rcfg);
    runtime.PopulateObject("c", "0");
    runtime.RegisterFunction("inc", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value v = co_await ctx.Read("c");
      co_await ctx.Write("c", std::to_string(std::stoll(v) + 1));
      co_return v;
    });
    for (int i = 0; i < 6; ++i) {
      cluster.scheduler().Spawn([](core::SsfRuntime* rt) -> sim::Task<void> {
        co_await rt->InvokeSsf("inc", "");
      }(&runtime));
      cluster.scheduler().Run();
    }

    const int64_t total = cluster.TotalLoggedBytes();
    const int64_t control = cluster.TotalLoggedBytesByClass(0);
    const int64_t own = cluster.TotalLoggedBytesByClass(core::LogAppendClass(protocol));
    // Every byte must be attributed: control + the per-protocol classes cover the total.
    int64_t by_class = control;
    for (core::ProtocolKind k : protocols) {
      by_class += cluster.TotalLoggedBytesByClass(core::LogAppendClass(k));
    }
    HM_CHECK_MSG(by_class == total, "append-class slices do not sum to total logged bytes");
    table.AddRow({core::ProtocolName(protocol), std::to_string(total),
                  std::to_string(control), std::to_string(own),
                  Fmt(total > 0 ? static_cast<double>(own) / static_cast<double>(total)
                                : 0.0)});
  }
  table.Print();
  std::printf("\n");
}

// Group-commit pipeline audit: a concurrent append storm on a real cluster at pipeline
// depth 4, reported as the batching/pipelining counters next to the latency table — rounds
// departed, requests merged into them (batched_requests - append_rounds sequencer trips
// saved), the in-flight depth histogram, and the adaptive controller's decisions.
void PrintPipelineAudit() {
  std::printf("== Group-commit pipeline audit (128 appenders, depth 4) ==\n");
  runtime::ClusterConfig config;
  config.function_nodes = 1;
  config.seed = 1;
  config.append_batch_pipeline = 4;
  runtime::Cluster cluster(config);
  for (int w = 0; w < 128; ++w) {
    cluster.scheduler().Spawn([](runtime::Cluster* c, int w) -> sim::Task<void> {
      for (int i = 0; i < 16; ++i) {
        FieldMap fields;
        fields.SetStr("op", "bench");
        fields.SetInt("step", i);
        co_await c->node(0).log().Append(
            sharedlog::OneTag("w" + std::to_string(w)), std::move(fields));
      }
    }(&cluster, w));
  }
  cluster.scheduler().Run();
  const sharedlog::LogClientStats& stats = cluster.node(0).log().stats();
  const int64_t merged = stats.batched_requests - stats.append_rounds;
  const double occupancy = static_cast<double>(stats.batched_requests) /
                           static_cast<double>(std::max<int64_t>(1, stats.append_rounds));
  std::printf("rounds=%lld requests=%lld merged=%lld occupancy=%.2f max_round=%lld\n",
              static_cast<long long>(stats.append_rounds),
              static_cast<long long>(stats.batched_requests),
              static_cast<long long>(merged), occupancy,
              static_cast<long long>(stats.max_round_occupancy));
  std::printf("in-flight histogram (rounds departing at depth d):");
  for (int d = 1; d < sharedlog::LogClientStats::kPipelineHistBuckets; ++d) {
    if (stats.pipeline_inflight_hist[d] == 0) continue;
    std::printf(" d=%d:%lld", d, static_cast<long long>(stats.pipeline_inflight_hist[d]));
  }
  std::printf(" (max %lld, overlapped %lld)\n",
              static_cast<long long>(stats.pipeline_max_inflight),
              static_cast<long long>(stats.pipeline_rounds_overlapped));
  std::printf("controller: depth +%lld/-%lld, window widened %lld / narrowed %lld\n\n",
              static_cast<long long>(stats.ctrl_depth_raised),
              static_cast<long long>(stats.ctrl_depth_lowered),
              static_cast<long long>(stats.ctrl_window_widened),
              static_cast<long long>(stats.ctrl_window_narrowed));
  HM_CHECK_MSG(merged > 0, "no appends were merged into shared rounds");
  HM_CHECK_MSG(stats.pipeline_rounds_overlapped > 0, "depth-4 audit never overlapped rounds");
}

void BM_MicroOp(benchmark::State& state) {
  MicroFixture fx;
  auto op = static_cast<MicroOp>(state.range(0));
  // Setup outside the timed region.
  fx.scheduler.Spawn([](MicroFixture* fx) -> sim::Task<void> {
    co_await fx->kv.Put("k", PadValue("v", 256));
    co_await fx->log.Append(sharedlog::OneTag("t"), RecordFields());
  }(&fx));
  fx.scheduler.Run();

  uint64_t version = 2;
  for (auto _ : state) {
    SimTime before = fx.scheduler.Now();
    fx.scheduler.Spawn([](MicroFixture* fx, MicroOp op, uint64_t version) -> sim::Task<void> {
      switch (op) {
        case MicroOp::kLogAppend:
          co_await fx->log.Append(sharedlog::OneTag("t"), RecordFields());
          break;
        case MicroOp::kLogReadPrevCached:
          co_await fx->log.ReadPrev("t", fx->log.indexed_upto());
          break;
        case MicroOp::kDbRead:
          co_await fx->kv.Get("k");
          break;
        case MicroOp::kDbCondWrite:
          co_await fx->kv.CondPut("k", PadValue("v", 256),
                                  kvstore::VersionTuple{version, 0});
          break;
        case MicroOp::kDbPlainWrite:
          co_await fx->kv.Put("k", PadValue("v", 256));
          break;
      }
    }(&fx, op, version++));
    fx.scheduler.Run();
    state.SetIterationTime(ToSecondsDouble(fx.scheduler.Now() - before));
  }
}

}  // namespace
}  // namespace halfmoon::bench

BENCHMARK(halfmoon::bench::BM_MicroOp)
    ->ArgName("op")
    ->DenseRange(0, 4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  halfmoon::bench::PrintTable1();
  halfmoon::bench::PrintLoggedBytesAudit();
  halfmoon::bench::PrintPipelineAudit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
