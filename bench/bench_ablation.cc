// Ablations of the design choices DESIGN.md calls out. Each section removes one mechanism and
// measures what it was buying:
//
//   A. Node-local index replicas (Boki's cheap logReadPrev path, §4.1): crank the index
//      propagation delay so Halfmoon-read's log-free reads must sync with storage nodes.
//   B. Child cursorTS inheritance (§4.3 remark): force every child SSF to append its own init
//      record instead of inheriting the parent's invoke-pre seqnum.
//   C. Scatter-gather invocation (batched pre/post records): run a fan-out workflow with
//      sequential Invoke instead of InvokeAll.

#include "bench/bench_common.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

// ---- A: index replication ----

// A fan-out workflow whose children perform log-free reads with *inherited* cursors: the
// child lands on a different node than the parent, so its node's index replica must have
// caught up with the parent's invoke-pre record for logReadPrev to stay local. (An SSF's own
// appends always cover its own cursor, so the single-function microbenchmarks never exercise
// the replica at all.)
double HmReadMedianMs(const LatencyCalibration& calibration, int64_t* cached,
                      int64_t* uncached) {
  ExperimentOptions options;
  options.protocol = core::ProtocolKind::kHalfmoonRead;
  options.calibration = calibration;
  ExperimentWorld world(options);

  for (int i = 0; i < 100; ++i) {
    world.runtime().PopulateObject("obj:" + std::to_string(i), "v");
  }
  world.runtime().RegisterFunction("read3", [](core::SsfContext& ctx) -> sim::Task<Value> {
    int64_t base = DecodeInt64(ctx.input());
    for (int64_t i = 0; i < 3; ++i) {
      co_await ctx.Read("obj:" + std::to_string((base + i) % 100));
    }
    co_return "";
  });
  world.runtime().RegisterFunction("parent", [](core::SsfContext& ctx) -> sim::Task<Value> {
    std::vector<std::pair<std::string, Value>> calls;
    for (int i = 0; i < 3; ++i) calls.emplace_back("read3", ctx.input());
    co_await ctx.InvokeAll(std::move(calls));
    co_return "";
  });

  workloads::LoadGenConfig load;
  load.requests_per_second = 100;
  load.warmup = Seconds(1);
  load.duration = Scaled(Seconds(6));
  Rng& rng = world.cluster().rng();
  workloads::LoadGenerator generator(&world.runtime(), load, [&rng]() {
    return std::make_pair(std::string("parent"), EncodeInt64(rng.UniformInt(0, 99)));
  });
  generator.RunToCompletion();

  *cached = 0;
  *uncached = 0;
  for (int i = 0; i < world.cluster().node_count(); ++i) {
    *cached += world.cluster().node(i).log().stats().read_prev_cached;
    *uncached += world.cluster().node(i).log().stats().read_prev_uncached;
  }
  return generator.latency().MedianMs();
}

void AblateIndexReplication() {
  std::printf("-- A: node-local index replicas (logReadPrev fast path) --\n");
  metrics::TablePrinter table(
      {"config", "median_ms", "cached_readprev", "uncached_readprev"});
  LatencyCalibration with;
  int64_t cached = 0, uncached = 0;
  double base = HmReadMedianMs(with, &cached, &uncached);
  table.AddRow({"index replication ON", Fmt(base, 1), std::to_string(cached),
                std::to_string(uncached)});
  LatencyCalibration without;
  without.index_propagation_median = 1e6;  // Replicas effectively never catch up.
  without.index_propagation_p99 = 1e6;
  double crippled = HmReadMedianMs(without, &cached, &uncached);
  table.AddRow({"index replication OFF", Fmt(crippled, 1), std::to_string(cached),
                std::to_string(uncached)});
  table.Print();
  std::printf("(without replicated indexes every log-free read pays a storage round trip,\n");
  std::printf(" eroding Halfmoon-read's advantage: +%.0f%% median latency)\n\n",
              100.0 * (crippled / base - 1.0));
}

// ---- B: child cursorTS inheritance ----

void AblateChildInheritance() {
  std::printf("-- B: child SSFs inherit cursorTS from the parent (Section 4.3 remark) --\n");
  metrics::TablePrinter table({"config", "workflow_median_ms", "log_appends_per_workflow"});
  for (bool inherit : {true, false}) {
    ExperimentOptions options;
    options.protocol = core::ProtocolKind::kHalfmoonRead;
    options.inherit_child_cursor = inherit;
    ExperimentWorld world(options);
    world.runtime().PopulateObject("x", "v");
    world.runtime().RegisterFunction("leaf", [](core::SsfContext& ctx) -> sim::Task<Value> {
      co_await ctx.Read("x");
      co_return "";
    });
    world.runtime().RegisterFunction("chain", [](core::SsfContext& ctx) -> sim::Task<Value> {
      for (int i = 0; i < 4; ++i) {
        co_await ctx.Invoke("leaf", "");
      }
      co_return "";
    });

    workloads::LoadGenConfig load;
    load.requests_per_second = 50;
    load.warmup = Seconds(1);
    load.duration = Scaled(Seconds(5));
    workloads::LoadGenerator generator(&world.runtime(), load, []() {
      return std::make_pair(std::string("chain"), Value{});
    });
    generator.RunToCompletion();
    double appends_per_workflow =
        static_cast<double>(world.cluster().TotalLogAppends()) /
        static_cast<double>(world.runtime().stats().invocations);
    table.AddRow({inherit ? "inheritance ON" : "inheritance OFF (init append per child)",
                  Fmt(generator.latency().MedianMs(), 1), Fmt(appends_per_workflow, 1)});
  }
  table.Print();
  std::printf("\n");
}

// ---- C: scatter-gather invocation ----

void AblateScatterGather() {
  std::printf("-- C: scatter-gather InvokeAll vs sequential Invoke (5-way fan-out) --\n");
  metrics::TablePrinter table({"config", "workflow_median_ms"});
  for (bool parallel : {true, false}) {
    ExperimentOptions options;
    options.protocol = core::ProtocolKind::kHalfmoonWrite;
    ExperimentWorld world(options);
    world.runtime().RegisterFunction("upload", [](core::SsfContext& ctx) -> sim::Task<Value> {
      co_await ctx.Write("part:" + ctx.input(), "data");
      co_return "";
    });
    world.runtime().RegisterFunction("compose",
                                     [parallel](core::SsfContext& ctx) -> sim::Task<Value> {
      if (parallel) {
        std::vector<std::pair<std::string, Value>> calls;
        for (int i = 0; i < 5; ++i) calls.emplace_back("upload", std::to_string(i));
        co_await ctx.InvokeAll(std::move(calls));
      } else {
        for (int i = 0; i < 5; ++i) {
          co_await ctx.Invoke("upload", std::to_string(i));
        }
      }
      co_return "";
    });

    workloads::LoadGenConfig load;
    load.requests_per_second = 50;
    load.warmup = Seconds(1);
    load.duration = Scaled(Seconds(5));
    workloads::LoadGenerator generator(&world.runtime(), load, []() {
      return std::make_pair(std::string("compose"), Value{});
    });
    generator.RunToCompletion();
    table.AddRow({parallel ? "InvokeAll (batched pre/post records)" : "sequential Invoke",
                  Fmt(generator.latency().MedianMs(), 1)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  std::printf("== Ablations of Halfmoon's design choices ==\n\n");
  halfmoon::bench::AblateIndexReplication();
  halfmoon::bench::AblateChildInheritance();
  halfmoon::bench::AblateScatterGather();
  return 0;
}
