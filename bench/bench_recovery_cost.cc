// Recovery-cost analysis (§7 "Recovery cost").
//
// SSF execution is modeled as a Bernoulli process: each attempt crashes with probability f
// and is re-executed. Halfmoon's asymmetric protocols optimize the failure-free path but must
// *replay* log-free operations during re-execution, while the symmetric protocol skips every
// logged operation. The paper's model predicts Halfmoon stays ahead as long as f is below its
// failure-free advantage (boundary f ≈ 30%, far above real failure rates).
//
// This harness sweeps f and reports median latency for Boki and both Halfmoon protocols on
// the balanced synthetic workload, plus the advantage of the best Halfmoon protocol.
//
// Part 2 measures whole-node recovery at scale (DESIGN.md §13): populate a durable cluster
// with 10^7 log records (scaled by HM_BENCH_SCALE), kill the storage tier, and wall-clock
// the journal replay that rebuilds the tag indices — the time-to-recover a restarted node
// pays before serving again. Results land in BENCH_recovery.json; the replay-throughput
// floor is enforced only on full-scale unsanitized runs (gate_enforced records which).

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/check.h"
#include "src/sharedlog/sharded_log.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

struct RunResult {
  double median_ms;
  double crashes_per_invocation;
};

RunResult RunAtFailureRate(core::ProtocolKind protocol, double attempt_failure_rate) {
  ExperimentOptions options;
  options.protocol = protocol;
  ExperimentWorld world(options);

  workloads::SyntheticConfig config;
  config.num_objects = 10000;
  config.value_bytes = 256;
  config.ops_per_request = 10;
  config.read_ratio = 0.5;
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  // Convert the per-attempt failure probability f into a per-crash-site probability. An
  // attempt passes ~2 crash sites per op plus the invoke path; calibrate against a quick dry
  // count: ~22 sites for 10 ops.
  constexpr double kSitesPerAttempt = 22.0;
  double per_site = attempt_failure_rate <= 0.0
                        ? 0.0
                        : 1.0 - std::pow(1.0 - attempt_failure_rate, 1.0 / kSitesPerAttempt);
  world.cluster().failure_injector().SetCrashProbability(per_site);

  workloads::LoadGenConfig load;
  load.requests_per_second = 50;
  load.warmup = Seconds(2);
  load.duration = Scaled(Seconds(10));
  workloads::LoadGenerator generator(
      &world.runtime(), load, [&synthetic]() {
        return std::make_pair(workloads::SyntheticWorkload::FunctionName(),
                              synthetic.NextInput());
      });
  generator.RunToCompletion();

  RunResult result;
  result.median_ms = generator.latency().MedianMs();
  result.crashes_per_invocation =
      static_cast<double>(world.runtime().stats().crashes) /
      static_cast<double>(world.runtime().stats().invocations);
  return result;
}

void RunSweep() {
  metrics::TablePrinter table({"failure_rate_f", "Boki_ms", "HM-read_ms", "HM-write_ms",
                               "best_HM_advantage", "crashes/inv(Boki)"});
  for (double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    RunResult boki = RunAtFailureRate(core::ProtocolKind::kBoki, f);
    RunResult hmr = RunAtFailureRate(core::ProtocolKind::kHalfmoonRead, f);
    RunResult hmw = RunAtFailureRate(core::ProtocolKind::kHalfmoonWrite, f);
    double best = std::min(hmr.median_ms, hmw.median_ms);
    double advantage = 100.0 * (1.0 - best / boki.median_ms);
    table.AddRow({Fmt(f, 1), Fmt(boki.median_ms, 1), Fmt(hmr.median_ms, 1),
                  Fmt(hmw.median_ms, 1), Fmt(advantage, 1) + "%",
                  Fmt(boki.crashes_per_invocation, 2)});
  }
  table.Print();
  std::printf("\n(the advantage shrinks as f grows: Halfmoon replays log-free operations on\n");
  std::printf(" re-execution while the symmetric protocol skips logged ones; the paper's\n");
  std::printf(" boundary model puts the break-even near f = 30%%, far beyond real rates)\n");
}

// ---- Part 2: whole-node recovery at scale (DESIGN.md §13) ----

struct RecoveryAtScale {
  int64_t records = 0;
  double populate_seconds = 0.0;
  double replay_seconds = 0.0;
  double replay_records_per_s = 0.0;
  double journal_mb = 0.0;
  double write_amplification = 0.0;
};

double WallSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

RecoveryAtScale RunRecoveryAtScale(int64_t records) {
  runtime::ClusterConfig ccfg;
  ccfg.function_nodes = 1;
  ccfg.workers_per_node = 1;
  ccfg.durable = true;
  runtime::Cluster cluster(ccfg);
  sharedlog::ShardedLog& log = cluster.log_space();

  // A realistic record shape: one object tag out of a 256-stream keyspace, an op marker and
  // a step counter — ~90 journal bytes per record, the Table 1 microop ballpark.
  std::vector<sharedlog::TagId> tags;
  tags.reserve(256);
  for (int i = 0; i < 256; ++i) tags.push_back(log.tags().Intern("obj:" + std::to_string(i)));

  // Populate in batches, draining the scheduler between them so the group-flusher and the
  // WhenDurable-gated index propagation keep up instead of accumulating 10^7 callbacks.
  constexpr int64_t kBatch = 1 << 18;
  auto populate_start = std::chrono::steady_clock::now();
  for (int64_t done = 0; done < records;) {
    int64_t upto = std::min(records, done + kBatch);
    for (; done < upto; ++done) {
      FieldMap fields;
      fields.SetStr("op", "write");
      fields.SetInt("step", done);
      log.Append(cluster.scheduler().Now(),
                 std::vector<sharedlog::TagId>(1, tags[static_cast<size_t>(done & 255)]),
                 std::move(fields));
    }
    cluster.scheduler().Run();
  }
  RecoveryAtScale result;
  result.records = records;
  result.populate_seconds = WallSeconds(populate_start);

  const storage::DurabilityService& journal = *cluster.log_durability();
  HM_CHECK_MSG(journal.durable_offset() == journal.tail_offset(),
               "populate did not quiesce: unflushed journal tail");
  result.journal_mb = static_cast<double>(journal.durable_offset()) / 1e6;
  result.write_amplification = journal.WriteAmplification();

  size_t live_before = log.live_records();
  sharedlog::SeqNum next_before = log.next_seqnum();
  auto replay_start = std::chrono::steady_clock::now();
  cluster.KillRestartStorage();  // Wipes volatile state, replays both journals.
  result.replay_seconds = WallSeconds(replay_start);
  result.replay_records_per_s =
      static_cast<double>(records) / std::max(result.replay_seconds, 1e-9);

  HM_CHECK_MSG(log.live_records() == live_before, "replay lost records");
  HM_CHECK_MSG(log.next_seqnum() == next_before, "replay moved the seqnum allocator");
  return result;
}

void RunRecoveryAtScaleSection() {
  double scale = BenchScale();
  int64_t records = std::max<int64_t>(20000, static_cast<int64_t>(1e7 * scale));
  RecoveryAtScale r = RunRecoveryAtScale(records);

  std::printf("  records:            %lld (10^7 x HM_BENCH_SCALE)\n",
              static_cast<long long>(r.records));
  std::printf("  journal size:       %.1f MB (write amplification %.2fx)\n", r.journal_mb,
              r.write_amplification);
  std::printf("  populate:           %.2f s wall\n", r.populate_seconds);
  std::printf("  time-to-recover:    %.3f s wall (%.0f records/s replayed)\n",
              r.replay_seconds, r.replay_records_per_s);

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr bool sanitized = true;
#else
  constexpr bool sanitized = false;
#endif
  // The replay-throughput floor is a hard gate only where it is meaningful: full-scale
  // (smoke scales amortize nothing) and uninstrumented builds. The measured numbers are
  // recorded either way.
  const bool gate_enforced = !sanitized && scale >= 1.0;
  if (gate_enforced) {
    HM_CHECK_MSG(r.replay_records_per_s >= 1e6,
                 "journal replay fell below the 1M records/s floor");
  }

  FILE* json = std::fopen("BENCH_recovery.json", "w");
  HM_CHECK(json != nullptr);
  std::fprintf(json,
               "{\"bench\": \"recovery_at_scale\", \"records\": %lld,\n"
               " \"journal_mb\": %.1f, \"write_amplification\": %.3f,\n"
               " \"populate_seconds\": %.3f, \"replay_seconds\": %.3f,\n"
               " \"replay_records_per_s\": %.0f,\n"
               " \"gate\": {\"replay_records_per_s_floor\": 1000000, \"gate_enforced\": %s}}\n",
               static_cast<long long>(r.records), r.journal_mb, r.write_amplification,
               r.populate_seconds, r.replay_seconds, r.replay_records_per_s,
               gate_enforced ? "true" : "false");
  std::fclose(json);
  std::printf("  wrote BENCH_recovery.json\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  std::printf("== Recovery cost under crash-retry (Section 7) ==\n\n");
  halfmoon::bench::RunSweep();
  std::printf("\n== Whole-node recovery at scale (DESIGN.md S13) ==\n\n");
  halfmoon::bench::RunRecoveryAtScaleSection();
  return 0;
}
