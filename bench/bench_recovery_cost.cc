// Recovery-cost analysis (§7 "Recovery cost").
//
// SSF execution is modeled as a Bernoulli process: each attempt crashes with probability f
// and is re-executed. Halfmoon's asymmetric protocols optimize the failure-free path but must
// *replay* log-free operations during re-execution, while the symmetric protocol skips every
// logged operation. The paper's model predicts Halfmoon stays ahead as long as f is below its
// failure-free advantage (boundary f ≈ 30%, far above real failure rates).
//
// This harness sweeps f and reports median latency for Boki and both Halfmoon protocols on
// the balanced synthetic workload, plus the advantage of the best Halfmoon protocol.

#include <cmath>

#include "bench/bench_common.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

struct RunResult {
  double median_ms;
  double crashes_per_invocation;
};

RunResult RunAtFailureRate(core::ProtocolKind protocol, double attempt_failure_rate) {
  ExperimentOptions options;
  options.protocol = protocol;
  ExperimentWorld world(options);

  workloads::SyntheticConfig config;
  config.num_objects = 10000;
  config.value_bytes = 256;
  config.ops_per_request = 10;
  config.read_ratio = 0.5;
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  // Convert the per-attempt failure probability f into a per-crash-site probability. An
  // attempt passes ~2 crash sites per op plus the invoke path; calibrate against a quick dry
  // count: ~22 sites for 10 ops.
  constexpr double kSitesPerAttempt = 22.0;
  double per_site = attempt_failure_rate <= 0.0
                        ? 0.0
                        : 1.0 - std::pow(1.0 - attempt_failure_rate, 1.0 / kSitesPerAttempt);
  world.cluster().failure_injector().SetCrashProbability(per_site);

  workloads::LoadGenConfig load;
  load.requests_per_second = 50;
  load.warmup = Seconds(2);
  load.duration = Scaled(Seconds(10));
  workloads::LoadGenerator generator(
      &world.runtime(), load, [&synthetic]() {
        return std::make_pair(workloads::SyntheticWorkload::FunctionName(),
                              synthetic.NextInput());
      });
  generator.RunToCompletion();

  RunResult result;
  result.median_ms = generator.latency().MedianMs();
  result.crashes_per_invocation =
      static_cast<double>(world.runtime().stats().crashes) /
      static_cast<double>(world.runtime().stats().invocations);
  return result;
}

void RunSweep() {
  metrics::TablePrinter table({"failure_rate_f", "Boki_ms", "HM-read_ms", "HM-write_ms",
                               "best_HM_advantage", "crashes/inv(Boki)"});
  for (double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    RunResult boki = RunAtFailureRate(core::ProtocolKind::kBoki, f);
    RunResult hmr = RunAtFailureRate(core::ProtocolKind::kHalfmoonRead, f);
    RunResult hmw = RunAtFailureRate(core::ProtocolKind::kHalfmoonWrite, f);
    double best = std::min(hmr.median_ms, hmw.median_ms);
    double advantage = 100.0 * (1.0 - best / boki.median_ms);
    table.AddRow({Fmt(f, 1), Fmt(boki.median_ms, 1), Fmt(hmr.median_ms, 1),
                  Fmt(hmw.median_ms, 1), Fmt(advantage, 1) + "%",
                  Fmt(boki.crashes_per_invocation, 2)});
  }
  table.Print();
  std::printf("\n(the advantage shrinks as f grows: Halfmoon replays log-free operations on\n");
  std::printf(" re-execution while the symmetric protocol skips logged ones; the paper's\n");
  std::printf(" boundary model puts the break-even near f = 30%%, far beyond real rates)\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  std::printf("== Recovery cost under crash-retry (Section 7) ==\n\n");
  halfmoon::bench::RunSweep();
  return 0;
}
