// Recovery-cost analysis (§7 "Recovery cost").
//
// SSF execution is modeled as a Bernoulli process: each attempt crashes with probability f
// and is re-executed. Halfmoon's asymmetric protocols optimize the failure-free path but must
// *replay* log-free operations during re-execution, while the symmetric protocol skips every
// logged operation. The paper's model predicts Halfmoon stays ahead as long as f is below its
// failure-free advantage (boundary f ≈ 30%, far above real failure rates).
//
// This harness sweeps f and reports median latency for Boki and both Halfmoon protocols on
// the balanced synthetic workload, plus the advantage of the best Halfmoon protocol.
//
// Part 2 measures whole-node recovery at scale (DESIGN.md §13): populate a durable cluster
// with 10^7 log records (scaled by HM_BENCH_SCALE), kill the storage tier, and wall-clock
// the journal replay that rebuilds the tag indices — the time-to-recover a restarted node
// pays before serving again. Results land in BENCH_recovery.json; the replay-throughput
// floor is enforced only on full-scale unsanitized runs (gate_enforced records which).
//
// Part 3 measures what incremental checkpointing (DESIGN.md §14) buys: a long-history /
// small-live-state workload (256 object streams trimmed to their last 32 records) swept over
// history length × checkpoint interval. Without checkpoints, time-to-recover grows with the
// full history; with them, recovery = newest image + the journal suffix above the cut, so
// TTR and the retained journal are bounded by live state + one interval, independent of how
// much history was ever appended. Gated (full-scale, unsanitized): ≥5x TTR advantage at
// 10^7 records, history-independent retained-journal size, and bounded image write overhead.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/check.h"
#include "src/runtime/cluster.h"
#include "src/sharedlog/sharded_log.h"
#include "src/storage/checkpoint.h"
#include "src/storage/durability.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

struct RunResult {
  double median_ms;
  double crashes_per_invocation;
};

RunResult RunAtFailureRate(core::ProtocolKind protocol, double attempt_failure_rate) {
  ExperimentOptions options;
  options.protocol = protocol;
  ExperimentWorld world(options);

  workloads::SyntheticConfig config;
  config.num_objects = 10000;
  config.value_bytes = 256;
  config.ops_per_request = 10;
  config.read_ratio = 0.5;
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  // Convert the per-attempt failure probability f into a per-crash-site probability. An
  // attempt passes ~2 crash sites per op plus the invoke path; calibrate against a quick dry
  // count: ~22 sites for 10 ops.
  constexpr double kSitesPerAttempt = 22.0;
  double per_site = attempt_failure_rate <= 0.0
                        ? 0.0
                        : 1.0 - std::pow(1.0 - attempt_failure_rate, 1.0 / kSitesPerAttempt);
  world.cluster().failure_injector().SetCrashProbability(per_site);

  workloads::LoadGenConfig load;
  load.requests_per_second = 50;
  load.warmup = Seconds(2);
  load.duration = Scaled(Seconds(10));
  workloads::LoadGenerator generator(
      &world.runtime(), load, [&synthetic]() {
        return std::make_pair(workloads::SyntheticWorkload::FunctionName(),
                              synthetic.NextInput());
      });
  generator.RunToCompletion();

  RunResult result;
  result.median_ms = generator.latency().MedianMs();
  result.crashes_per_invocation =
      static_cast<double>(world.runtime().stats().crashes) /
      static_cast<double>(world.runtime().stats().invocations);
  return result;
}

void RunSweep() {
  metrics::TablePrinter table({"failure_rate_f", "Boki_ms", "HM-read_ms", "HM-write_ms",
                               "best_HM_advantage", "crashes/inv(Boki)"});
  for (double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    RunResult boki = RunAtFailureRate(core::ProtocolKind::kBoki, f);
    RunResult hmr = RunAtFailureRate(core::ProtocolKind::kHalfmoonRead, f);
    RunResult hmw = RunAtFailureRate(core::ProtocolKind::kHalfmoonWrite, f);
    double best = std::min(hmr.median_ms, hmw.median_ms);
    double advantage = 100.0 * (1.0 - best / boki.median_ms);
    table.AddRow({Fmt(f, 1), Fmt(boki.median_ms, 1), Fmt(hmr.median_ms, 1),
                  Fmt(hmw.median_ms, 1), Fmt(advantage, 1) + "%",
                  Fmt(boki.crashes_per_invocation, 2)});
  }
  table.Print();
  std::printf("\n(the advantage shrinks as f grows: Halfmoon replays log-free operations on\n");
  std::printf(" re-execution while the symmetric protocol skips logged ones; the paper's\n");
  std::printf(" boundary model puts the break-even near f = 30%%, far beyond real rates)\n");
}

// ---- Part 2: whole-node recovery at scale (DESIGN.md §13) ----

struct RecoveryAtScale {
  int64_t records = 0;
  double populate_seconds = 0.0;
  double replay_seconds = 0.0;
  double replay_records_per_s = 0.0;
  double journal_mb = 0.0;
  double write_amplification = 0.0;
};

double WallSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

RecoveryAtScale RunRecoveryAtScale(int64_t records) {
  runtime::ClusterConfig ccfg;
  ccfg.function_nodes = 1;
  ccfg.workers_per_node = 1;
  ccfg.durable = true;
  runtime::Cluster cluster(ccfg);
  sharedlog::ShardedLog& log = cluster.log_space();

  // A realistic record shape: one object tag out of a 256-stream keyspace, an op marker and
  // a step counter — ~90 journal bytes per record, the Table 1 microop ballpark.
  std::vector<sharedlog::TagId> tags;
  tags.reserve(256);
  for (int i = 0; i < 256; ++i) tags.push_back(log.tags().Intern("obj:" + std::to_string(i)));

  // Populate in batches, draining the scheduler between them so the group-flusher and the
  // WhenDurable-gated index propagation keep up instead of accumulating 10^7 callbacks.
  constexpr int64_t kBatch = 1 << 18;
  auto populate_start = std::chrono::steady_clock::now();
  for (int64_t done = 0; done < records;) {
    int64_t upto = std::min(records, done + kBatch);
    for (; done < upto; ++done) {
      FieldMap fields;
      fields.SetStr("op", "write");
      fields.SetInt("step", done);
      log.Append(cluster.scheduler().Now(),
                 std::vector<sharedlog::TagId>(1, tags[static_cast<size_t>(done & 255)]),
                 std::move(fields));
    }
    cluster.scheduler().Run();
  }
  RecoveryAtScale result;
  result.records = records;
  result.populate_seconds = WallSeconds(populate_start);

  const storage::DurabilityService& journal = *cluster.log_durability();
  HM_CHECK_MSG(journal.durable_offset() == journal.tail_offset(),
               "populate did not quiesce: unflushed journal tail");
  result.journal_mb = static_cast<double>(journal.durable_offset()) / 1e6;
  result.write_amplification = journal.WriteAmplification();

  size_t live_before = log.live_records();
  sharedlog::SeqNum next_before = log.next_seqnum();
  auto replay_start = std::chrono::steady_clock::now();
  cluster.KillRestartStorage();  // Wipes volatile state, replays both journals.
  result.replay_seconds = WallSeconds(replay_start);
  result.replay_records_per_s =
      static_cast<double>(records) / std::max(result.replay_seconds, 1e-9);

  HM_CHECK_MSG(log.live_records() == live_before, "replay lost records");
  HM_CHECK_MSG(log.next_seqnum() == next_before, "replay moved the seqnum allocator");
  return result;
}

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

RecoveryAtScale RunRecoveryAtScaleSection() {
  double scale = BenchScale();
  int64_t records = std::max<int64_t>(20000, static_cast<int64_t>(1e7 * scale));
  RecoveryAtScale r = RunRecoveryAtScale(records);

  std::printf("  records:            %lld (10^7 x HM_BENCH_SCALE)\n",
              static_cast<long long>(r.records));
  std::printf("  journal size:       %.1f MB (write amplification %.2fx)\n", r.journal_mb,
              r.write_amplification);
  std::printf("  populate:           %.2f s wall\n", r.populate_seconds);
  std::printf("  time-to-recover:    %.3f s wall (%.0f records/s replayed)\n",
              r.replay_seconds, r.replay_records_per_s);

  // The replay-throughput floor is a hard gate only where it is meaningful: full-scale
  // (smoke scales amortize nothing) and uninstrumented builds. The measured numbers are
  // recorded either way.
  const bool gate_enforced = !kSanitized && scale >= 1.0;
  if (gate_enforced) {
    HM_CHECK_MSG(r.replay_records_per_s >= 1e6,
                 "journal replay fell below the 1M records/s floor");
  }
  return r;
}

// ---- Part 3: checkpointed recovery — cost bounded by live state (DESIGN.md §14) ----

struct CheckpointRun {
  int64_t records = 0;
  int64_t interval = 0;  // Records between checkpoint rounds; 0 = checkpointing off.
  int64_t rounds = 0;
  double populate_seconds = 0.0;
  double replay_seconds = 0.0;
  double journal_appended_mb = 0.0;  // Everything ever journaled (history).
  double journal_retained_mb = 0.0;  // What survives compaction (live + one interval).
  double image_mb = 0.0;             // Checkpoint-store bytes written (write overhead).
  bool used_checkpoint = false;
  int64_t suffix_frames = 0;
};

// Long history, small live state: 256 object streams, each trimmed to its last 32 records
// as populate proceeds. `interval` > 0 triggers a checkpoint round (and drains it) every
// that many records — except at the very end, so recovery always pays an honest suffix.
CheckpointRun RunCheckpointedRecovery(int64_t records, int64_t interval) {
  runtime::ClusterConfig ccfg;
  ccfg.function_nodes = 1;
  ccfg.workers_per_node = 1;
  ccfg.durable = true;
  ccfg.checkpoint = interval > 0;
  ccfg.checkpoint_trigger_bytes = 0;  // Rounds driven by the record-count interval below.
  runtime::Cluster cluster(ccfg);
  sharedlog::ShardedLog& log = cluster.log_space();

  constexpr int kStreams = 256;
  constexpr size_t kLivePerStream = 32;
  std::vector<sharedlog::TagId> tags;
  tags.reserve(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    tags.push_back(log.tags().Intern("obj:" + std::to_string(i)));
  }
  std::vector<std::deque<sharedlog::SeqNum>> rings(kStreams);

  constexpr int64_t kBatch = 1 << 18;
  // Drain boundaries must land on interval boundaries, or a sub-batch interval never gets
  // its round triggered.
  const int64_t batch = interval > 0 ? std::min(kBatch, interval) : kBatch;
  auto populate_start = std::chrono::steady_clock::now();
  CheckpointRun result;
  result.records = records;
  result.interval = interval;
  int64_t next_round = interval > 0 ? interval : records + 1;
  for (int64_t done = 0; done < records;) {
    int64_t upto = std::min(records, done + batch);
    for (; done < upto; ++done) {
      FieldMap fields;
      fields.SetStr("op", "write");
      fields.SetInt("step", done);
      size_t stream = static_cast<size_t>(done % kStreams);
      sharedlog::SeqNum seq =
          log.Append(cluster.scheduler().Now(),
                     std::vector<sharedlog::TagId>(1, tags[stream]), std::move(fields));
      rings[stream].push_back(seq);
    }
    cluster.scheduler().Run();
    // Trim each stream down to its live window. The trims are journaled too — full replay
    // still pays for the whole history; only compaction escapes it.
    for (size_t s = 0; s < rings.size(); ++s) {
      if (rings[s].size() <= kLivePerStream) continue;
      sharedlog::SeqNum trim_upto = 0;
      while (rings[s].size() > kLivePerStream) {
        trim_upto = rings[s].front();
        rings[s].pop_front();
      }
      log.Trim(cluster.scheduler().Now(), tags[s], trim_upto);
    }
    cluster.scheduler().Run();
    // A round per interval boundary, skipping the final one: a checkpoint taken at the exact
    // end would make the replay suffix empty and the comparison trivially flattering.
    while (done >= next_round && done < records) {
      result.rounds += cluster.checkpoint_service()->TriggerRound() ? 1 : 0;
      cluster.scheduler().Run();
      next_round += interval;
    }
  }
  result.populate_seconds = WallSeconds(populate_start);

  const storage::DurabilityService& journal = *cluster.log_durability();
  HM_CHECK_MSG(journal.durable_offset() == journal.tail_offset(),
               "populate did not quiesce: unflushed journal tail");
  result.journal_appended_mb = static_cast<double>(journal.stats().appended_bytes) / 1e6;
  result.journal_retained_mb =
      static_cast<double>(journal.durable_offset() - journal.retained_offset()) / 1e6;
  if (cluster.log_checkpoint_store() != nullptr) {
    result.image_mb = static_cast<double>(cluster.log_checkpoint_store()->tail()) / 1e6;
  }

  size_t live_before = log.live_records();
  sharedlog::SeqNum next_before = log.next_seqnum();
  auto replay_start = std::chrono::steady_clock::now();
  cluster.KillRestartStorage();
  result.replay_seconds = WallSeconds(replay_start);
  result.used_checkpoint = cluster.last_log_recovery().used_checkpoint;
  result.suffix_frames = cluster.last_log_recovery().suffix_frames;

  HM_CHECK_MSG(log.live_records() == live_before, "replay lost records");
  HM_CHECK_MSG(log.next_seqnum() == next_before, "replay moved the seqnum allocator");
  return result;
}

void RunCheckpointSweepSection(const RecoveryAtScale& part2) {
  double scale = BenchScale();
  auto scaled = [scale](double records) {
    return std::max<int64_t>(10000, static_cast<int64_t>(records * scale));
  };
  // History × interval: three history lengths with a fixed-interval checkpoint cadence plus
  // their no-checkpoint baselines, and a coarser cadence at the longest history. Recovery
  // cost without checkpoints tracks the history column; with them it tracks the interval.
  struct SweepPoint {
    int64_t records;
    int64_t interval;
  };
  const SweepPoint sweep[] = {
      {scaled(2.5e6), 0},           {scaled(2.5e6), scaled(1.25e6)},
      {scaled(5e6), 0},             {scaled(5e6), scaled(1.25e6)},
      {scaled(1e7), 0},             {scaled(1e7), scaled(2.5e6)},
      {scaled(1e7), scaled(1.25e6)},
  };

  metrics::TablePrinter table({"records", "ckpt_interval", "rounds", "TTR_s", "retained_MB",
                               "journal_MB", "image_MB", "suffix_frames"});
  std::vector<CheckpointRun> runs;
  for (const SweepPoint& point : sweep) {
    CheckpointRun r = RunCheckpointedRecovery(point.records, point.interval);
    // Hard-fail if the replay-suffix path silently degraded to a full replay (or vice
    // versa): the sweep's comparison is meaningless if both columns measure the same path.
    HM_CHECK_MSG(r.used_checkpoint == (point.interval > 0),
                 "recovery took the wrong path for this sweep point");
    table.AddRow({std::to_string(r.records),
                  r.interval == 0 ? "off" : std::to_string(r.interval),
                  std::to_string(r.rounds), Fmt(r.replay_seconds, 3),
                  Fmt(r.journal_retained_mb, 1), Fmt(r.journal_appended_mb, 1),
                  Fmt(r.image_mb, 1), std::to_string(r.suffix_frames)});
    runs.push_back(r);
  }
  table.Print();
  std::printf("\n(without checkpoints TTR and the retained journal track the records column;\n");
  std::printf(" with them both track live state + one interval — history-independent)\n");

  const CheckpointRun& full_off = runs[4];   // 10^7, no checkpoints.
  const CheckpointRun& full_on = runs[6];    // 10^7, fine cadence.
  const CheckpointRun& half_on = runs[3];    // 5x10^6, same cadence.
  double ttr_advantage = full_off.replay_seconds / std::max(full_on.replay_seconds, 1e-9);
  double retained_growth =
      full_on.journal_retained_mb / std::max(half_on.journal_retained_mb, 1e-9);
  double image_overhead =
      full_on.image_mb / std::max(full_on.journal_appended_mb, 1e-9);
  std::printf("  TTR advantage at 10^7:        %.1fx (gate: >= 5x)\n", ttr_advantage);
  std::printf("  retained growth 5e6 -> 1e7:   %.2fx (gate: < 1.5x, history-independent)\n",
              retained_growth);
  std::printf("  image write overhead:         %.3fx of journal bytes (gate: < 0.2x)\n",
              image_overhead);

  const bool gate_enforced = !kSanitized && scale >= 1.0;
  if (gate_enforced) {
    HM_CHECK_MSG(ttr_advantage >= 5.0,
                 "checkpointed recovery lost its 5x TTR advantage at 10^7 records");
    HM_CHECK_MSG(retained_growth < 1.5,
                 "retained journal grew with history despite checkpointing");
    HM_CHECK_MSG(image_overhead < 0.2, "checkpoint images cost too many extra write bytes");
  }

  FILE* json = std::fopen("BENCH_recovery.json", "w");
  HM_CHECK(json != nullptr);
  std::fprintf(json,
               "{\"bench\": \"recovery_at_scale\", \"records\": %lld,\n"
               " \"journal_mb\": %.1f, \"write_amplification\": %.3f,\n"
               " \"populate_seconds\": %.3f, \"replay_seconds\": %.3f,\n"
               " \"replay_records_per_s\": %.0f,\n"
               " \"gate\": {\"replay_records_per_s_floor\": 1000000, \"gate_enforced\": %s},\n"
               " \"checkpoint\": {\n"
               "  \"sweep\": [\n",
               static_cast<long long>(part2.records), part2.journal_mb,
               part2.write_amplification, part2.populate_seconds, part2.replay_seconds,
               part2.replay_records_per_s, gate_enforced ? "true" : "false");
  for (size_t i = 0; i < runs.size(); ++i) {
    const CheckpointRun& r = runs[i];
    std::fprintf(json,
                 "   {\"records\": %lld, \"interval\": %lld, \"rounds\": %lld,\n"
                 "    \"ttr_seconds\": %.3f, \"retained_mb\": %.1f, \"journal_mb\": %.1f,\n"
                 "    \"image_mb\": %.1f, \"suffix_frames\": %lld,"
                 " \"used_checkpoint\": %s}%s\n",
                 static_cast<long long>(r.records), static_cast<long long>(r.interval),
                 static_cast<long long>(r.rounds), r.replay_seconds, r.journal_retained_mb,
                 r.journal_appended_mb, r.image_mb, static_cast<long long>(r.suffix_frames),
                 r.used_checkpoint ? "true" : "false", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"ttr_advantage_at_1e7\": %.1f, \"retained_growth_5e6_to_1e7\": %.2f,\n"
               "  \"image_write_overhead\": %.3f,\n"
               "  \"gate\": {\"ttr_advantage_floor\": 5.0, \"retained_growth_ceiling\": 1.5,\n"
               "   \"image_overhead_ceiling\": 0.2, \"gate_enforced\": %s}}}\n",
               ttr_advantage, retained_growth, image_overhead,
               gate_enforced ? "true" : "false");
  std::fclose(json);
  std::printf("  wrote BENCH_recovery.json\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  std::printf("== Recovery cost under crash-retry (Section 7) ==\n\n");
  halfmoon::bench::RunSweep();
  std::printf("\n== Whole-node recovery at scale (DESIGN.md S13) ==\n\n");
  halfmoon::bench::RecoveryAtScale part2 = halfmoon::bench::RunRecoveryAtScaleSection();
  std::printf("\n== Checkpointed recovery: cost bounded by live state (DESIGN.md S14) ==\n\n");
  halfmoon::bench::RunCheckpointSweepSection(part2);
  return 0;
}
