// Figure 14: the switching delay between Halfmoon's protocols.
//
// The workload alternates every five seconds between a write-intensive phase (read ratio 0.2,
// Halfmoon-write) and a read-intensive phase (read ratio 0.8, Halfmoon-read). The runtime
// switches protocols at each phase boundary while the system keeps serving (pauseless).
//
// Expected shape: latency stays continuous across switches (no stall); the switch completes
// within tens of milliseconds at moderate load; switching *out of* the write-heavy phase
// takes longer under high load because in-flight SSFs of the old protocol must drain (§6.4).

#include <memory>

#include "bench/bench_common.h"
#include "src/core/switch_manager.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

constexpr SimDuration kPhase = Seconds(5);

struct Bucket {
  metrics::LatencyRecorder recorder;
};

void RunAtRate(double rate) {
  std::printf("-- %d requests/s --\n", static_cast<int>(rate));

  ExperimentOptions options;
  options.protocol = core::ProtocolKind::kHalfmoonWrite;
  options.enable_switching = true;
  // Calibrated so the workload saturates around 800 requests/s (§6.4): at 600 req/s the
  // system runs hot and draining the write-heavy phase takes visibly longer.
  options.workers_per_node = 3;
  ExperimentWorld world(options);

  workloads::SyntheticConfig config;
  config.num_objects = 10000;
  config.value_bytes = 256;
  config.ops_per_request = 10;
  config.read_ratio = 0.2;  // Phase 1: write-intensive.
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  // The generator consults the current phase's read ratio.
  auto phase_ratio = std::make_shared<double>(0.2);
  workloads::SyntheticConfig phase_config = config;
  Rng& rng = world.cluster().rng();
  workloads::LoadGenConfig load;
  load.requests_per_second = rate;
  load.warmup = 0;
  load.duration = 3 * kPhase;
  workloads::LoadGenerator generator(
      &world.runtime(), load, [&synthetic, &rng, phase_ratio, phase_config]() mutable {
        Value ops;
        for (int i = 0; i < phase_config.ops_per_request; ++i) {
          if (!ops.empty()) ops.push_back(';');
          ops.push_back(rng.Bernoulli(*phase_ratio) ? 'R' : 'W');
          ops.push_back(':');
          ops += synthetic.KeyFor(
              static_cast<int>(rng.UniformInt(0, phase_config.num_objects - 1)));
        }
        return std::make_pair(workloads::SyntheticWorkload::FunctionName(), ops);
      });

  // Bucket completions into 250 ms windows for the time series.
  constexpr SimDuration kBucket = Milliseconds(250);
  std::vector<Bucket> buckets(static_cast<size_t>((3 * kPhase) / kBucket) + 8);
  generator.SetSampleCallback([&buckets](SimTime when, SimDuration latency) {
    size_t index = static_cast<size_t>(when / kBucket);
    if (index < buckets.size()) buckets[index].recorder.Record(latency);
  });

  // Schedule the two switches at the phase boundaries.
  core::SwitchManager manager(&world.cluster(), world.runtime().config().switch_scope);
  world.cluster().scheduler().Post(kPhase, [&world, &manager, phase_ratio] {
    *phase_ratio = 0.8;
    world.cluster().scheduler().Spawn(
        [](core::SwitchManager* m) -> sim::Task<void> {
          co_await m->SwitchTo(core::ProtocolKind::kHalfmoonRead);
        }(&manager));
  });
  world.cluster().scheduler().Post(2 * kPhase, [&world, &manager, phase_ratio] {
    *phase_ratio = 0.2;
    world.cluster().scheduler().Spawn(
        [](core::SwitchManager* m) -> sim::Task<void> {
          co_await m->SwitchTo(core::ProtocolKind::kHalfmoonWrite);
        }(&manager));
  });

  generator.RunToCompletion();

  metrics::TablePrinter table({"time_s", "median_ms", "p99_ms", "requests"});
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].recorder.empty()) continue;
    table.AddRow({Fmt(static_cast<double>(i) * 0.25, 2),
                  Fmt(buckets[i].recorder.MedianMs(), 1),
                  Fmt(buckets[i].recorder.P99Ms(), 1),
                  std::to_string(buckets[i].recorder.count())});
  }
  table.Print();

  for (const core::SwitchReport& report : manager.history()) {
    std::printf("switch to %s: BEGIN at %.3fs, END at %.3fs -> delay %.0f ms\n",
                core::ProtocolName(report.target), ToSecondsDouble(report.begin_time),
                ToSecondsDouble(report.end_time),
                ToMillisDouble(report.SwitchingDelay()));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  std::printf("== Figure 14: switching delay between Halfmoon's protocols ==\n");
  std::printf("   (phases: HM-write/ratio 0.2 -> HM-read/ratio 0.8 -> HM-write/ratio 0.2,\n");
  std::printf("    5s each; the switch is pauseless — the series must stay continuous)\n\n");
  halfmoon::bench::RunAtRate(300);
  halfmoon::bench::RunAtRate(600);
  return 0;
}
