// Figure 12: time-averaged storage (log + database) under different object sizes and GC
// intervals, as a function of the read ratio.
//
// Setup per §6.3: a synthetic SSF issuing 10 operations per request against 10 K objects;
// the read ratio sweeps the workload from write- to read-intensive.
//
// Expected shape: Halfmoon-read's storage grows toward low read ratios (write log + object
// versions), Halfmoon-write's toward high read ratios (read-log records); the crossover sits
// slightly above a read ratio of 0.5 (Halfmoon-read logs two records per write) and moves
// toward 0.5 as the object size grows; the GC interval scales the absolute footprint but not
// the boundary. Boki pays both logs and sits above the better Halfmoon protocol everywhere.

#include "bench/bench_common.h"
#include "src/core/advisor.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

constexpr double kRequestRate = 100.0;
constexpr int kOpsPerRequest = 10;

double RunStorageMb(core::ProtocolKind protocol, size_t value_bytes, SimDuration gc_interval,
                    double read_ratio) {
  ExperimentOptions options;
  options.protocol = protocol;
  options.gc_interval = gc_interval;
  ExperimentWorld world(options);

  workloads::SyntheticConfig config;
  config.num_objects = 10000;
  config.value_bytes = value_bytes;
  config.ops_per_request = kOpsPerRequest;
  config.read_ratio = read_ratio;
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  workloads::LoadGenConfig load;
  load.requests_per_second = kRequestRate;
  // Storage reaches steady state after roughly one record lifetime (~ t + T_gc).
  load.warmup = gc_interval + Seconds(5);
  load.duration = Scaled(2 * gc_interval + Seconds(10));
  workloads::LoadGenerator generator(
      &world.runtime(), load, [&synthetic]() {
        return std::make_pair(workloads::SyntheticWorkload::FunctionName(),
                              synthetic.NextInput());
      });

  // Average log + DB bytes over the measurement window only.
  world.cluster().scheduler().Post(load.warmup, [&world] {
    SimTime now = world.cluster().scheduler().Now();
    world.cluster().log_space().gauge().ResetWindow(now);
    world.cluster().kv_state().gauge().ResetWindow(now);
  });
  generator.RunToCompletion();

  SimTime now = world.cluster().scheduler().Now();
  double bytes = world.cluster().log_space().gauge().WindowAverageBytes(now) +
                 world.cluster().kv_state().gauge().WindowAverageBytes(now);
  return bytes / (1024.0 * 1024.0);
}

void RunPanel(size_t value_bytes, SimDuration gc_interval) {
  std::printf("-- object size %zuB, GC interval %llds --\n", value_bytes,
              static_cast<long long>(gc_interval / Seconds(1)));
  metrics::TablePrinter table(
      {"read_ratio", "Boki_MB", "HM-read_MB", "HM-write_MB", "winner"});
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double boki = RunStorageMb(core::ProtocolKind::kBoki, value_bytes, gc_interval, ratio);
    double hmr =
        RunStorageMb(core::ProtocolKind::kHalfmoonRead, value_bytes, gc_interval, ratio);
    double hmw =
        RunStorageMb(core::ProtocolKind::kHalfmoonWrite, value_bytes, gc_interval, ratio);
    table.AddRow({Fmt(ratio, 1), Fmt(boki), Fmt(hmr), Fmt(hmw),
                  hmr <= hmw ? "HM-read" : "HM-write"});
  }
  table.Print();

  // §4.6 prediction for this configuration.
  core::WorkloadProfile profile;
  profile.read_probability = 0.5;
  profile.write_probability = 0.5;
  profile.arrival_rate = kRequestRate * kOpsPerRequest / 10000.0;  // Per object.
  profile.gc_delay_s = ToSecondsDouble(gc_interval) / 2.0;
  profile.value_bytes = static_cast<double>(value_bytes);
  std::printf("advisor storage boundary (Eq. 2 = Eq. 4): read ratio %.2f\n\n",
              core::StorageBoundaryReadRatio(profile));
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  std::printf("== Figure 12: storage overhead vs read ratio ==\n\n");
  halfmoon::bench::RunPanel(256, halfmoon::Seconds(10));
  halfmoon::bench::RunPanel(256, halfmoon::Seconds(60));
  halfmoon::bench::RunPanel(1024, halfmoon::Seconds(10));
  halfmoon::bench::RunPanel(1024, halfmoon::Seconds(60));
  return 0;
}
