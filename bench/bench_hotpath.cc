// Hot-path microbenchmark for the zero-copy read path, the flat field map, and the
// allocation-free scheduler loop (see DESIGN.md "Performance architecture").
//
// The binary embeds a faithful replica of the pre-optimization implementation (the "baseline"):
//   * a std::map-backed field map,
//   * a LogSpace whose reads deep-copy records (std::optional<LogRecord>) and whose per-tag
//     seqnum index never shrinks on Trim (a `trimmed` cursor into a growing vector),
//   * an event queue whose events carry std::function<void()> (every PostResume allocates).
// Both the baseline and the optimized implementation run the *same* simulated op sequence, so
// the speedup reported in BENCH_hotpath.json compares like with like inside one process.
//
// Output: BENCH_hotpath.json in the working directory, plus a human-readable summary on
// stdout. HM_BENCH_SCALE scales the workload size.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/sharedlog/log_client.h"
#include "src/sharedlog/log_space.h"
#include "src/sim/scheduler.h"

namespace halfmoon::bench {
namespace {

using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;
using sharedlog::Tag;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Baseline replica: the seed implementation, verbatim in structure.
// ---------------------------------------------------------------------------
namespace legacy {

using Field = std::variant<int64_t, std::string>;

class FieldMap {
 public:
  void SetInt(const std::string& key, int64_t v) { fields_[key] = v; }
  void SetStr(const std::string& key, std::string v) { fields_[key] = std::move(v); }
  int64_t GetInt(const std::string& key) const { return std::get<int64_t>(fields_.at(key)); }
  const std::string& GetStr(const std::string& key) const {
    return std::get<std::string>(fields_.at(key));
  }
  size_t ByteSize() const {
    size_t total = 0;
    for (const auto& [key, field] : fields_) {
      total += 2;
      total += std::holds_alternative<int64_t>(field) ? 8 : std::get<std::string>(field).size();
    }
    return total;
  }

 private:
  std::map<std::string, Field> fields_;
};

struct LogRecord {
  SeqNum seqnum = 0;
  std::vector<Tag> tags;
  FieldMap fields;
  size_t ByteSize() const {
    size_t total = 8 + fields.ByteSize();
    for (const Tag& tag : tags) total += tag.size();
    return total;
  }
};

// The seed's LogSpace: records stored by value, reads deep-copy, the per-tag index keeps
// every seqnum ever appended (Trim only advances a cursor), and prefix enumeration scans all
// streams then sorts.
class LogSpace {
 public:
  SeqNum Append(std::vector<Tag> tags, FieldMap fields) {
    SeqNum seqnum = next_seqnum_++;
    LogRecord record;
    record.seqnum = seqnum;
    record.tags = std::move(tags);
    record.fields = std::move(fields);
    StoredRecord stored;
    stored.live_tag_refs = static_cast<int>(record.tags.size());
    for (const Tag& tag : record.tags) {
      streams_[tag].seqnums.push_back(seqnum);
    }
    stored.record = std::move(record);
    records_.emplace(seqnum, std::move(stored));
    return seqnum;
  }

  std::optional<LogRecord> ReadPrev(const Tag& tag, SeqNum max_seqnum) const {
    auto it = streams_.find(tag);
    if (it == streams_.end()) return std::nullopt;
    const TagStream& stream = it->second;
    for (size_t i = stream.seqnums.size(); i > stream.trimmed; --i) {
      SeqNum seqnum = stream.seqnums[i - 1];
      if (seqnum > max_seqnum) continue;
      std::optional<LogRecord> record = LookupLive(seqnum);
      if (record.has_value()) return record;
    }
    return std::nullopt;
  }

  std::vector<LogRecord> ReadStream(const Tag& tag) const {
    std::vector<LogRecord> result;
    auto it = streams_.find(tag);
    if (it == streams_.end()) return result;
    const TagStream& stream = it->second;
    for (size_t i = stream.trimmed; i < stream.seqnums.size(); ++i) {
      std::optional<LogRecord> record = LookupLive(stream.seqnums[i]);
      if (record.has_value()) result.push_back(std::move(*record));
    }
    return result;
  }

  std::optional<LogRecord> FindFirstByStep(const Tag& tag, const std::string& op,
                                           int64_t step) const {
    auto it = streams_.find(tag);
    if (it == streams_.end()) return std::nullopt;
    const TagStream& stream = it->second;
    for (size_t i = stream.trimmed; i < stream.seqnums.size(); ++i) {
      std::optional<LogRecord> record = LookupLive(stream.seqnums[i]);
      if (!record.has_value()) continue;
      if (record->fields.GetStr("op") == op && record->fields.GetInt("step") == step) {
        return record;
      }
    }
    return std::nullopt;
  }

  std::vector<Tag> StreamTagsWithPrefix(const std::string& prefix) const {
    std::vector<Tag> tags;
    for (const auto& [tag, stream] : streams_) {
      if (tag.size() >= prefix.size() && tag.compare(0, prefix.size(), prefix) == 0 &&
          stream.trimmed < stream.seqnums.size()) {
        tags.push_back(tag);
      }
    }
    std::sort(tags.begin(), tags.end());
    return tags;
  }

  void Trim(const Tag& tag, SeqNum upto) {
    auto it = streams_.find(tag);
    if (it == streams_.end()) return;
    TagStream& stream = it->second;
    while (stream.trimmed < stream.seqnums.size() && stream.seqnums[stream.trimmed] <= upto) {
      ReleaseRef(stream.seqnums[stream.trimmed]);
      ++stream.trimmed;
    }
  }

 private:
  struct TagStream {
    std::vector<SeqNum> seqnums;  // Grows forever; Trim only advances `trimmed`.
    size_t trimmed = 0;
  };
  struct StoredRecord {
    LogRecord record;
    int live_tag_refs = 0;
  };

  std::optional<LogRecord> LookupLive(SeqNum seqnum) const {
    auto it = records_.find(seqnum);
    if (it == records_.end()) return std::nullopt;
    return it->second.record;  // Deep copy: tags, field map nodes, value bytes.
  }

  void ReleaseRef(SeqNum seqnum) {
    auto it = records_.find(seqnum);
    if (it == records_.end()) return;
    if (--it->second.live_tag_refs <= 0) records_.erase(it);
  }

  SeqNum next_seqnum_ = 1;
  std::unordered_map<SeqNum, StoredRecord> records_;
  std::unordered_map<Tag, TagStream> streams_;
};

// The seed's event queue: std::function-backed events, PostResume wrapping via a lambda.
class EventQueue {
 public:
  void Post(SimTime time, std::function<void()> fn) {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }
  uint64_t Drain() {
    uint64_t fired = 0;
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      event.fn();
      ++fired;
    }
    return fired;
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  uint64_t next_seq_ = 0;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Workload: identical op sequence against either implementation.
// ---------------------------------------------------------------------------

struct WorkloadShape {
  int rounds = 8;
  int appends_per_round = 1024;
  int read_reps = 6;      // ReadStream sweeps per instance per round.
  int instances = 16;     // Step-log streams.
  int objects = 64;       // Per-object write-log streams ("k:...").
  size_t value_bytes = 256;
};

struct WorkloadResult {
  uint64_t ops = 0;        // Simulated log operations (appends + reads + trims + scans).
  uint64_t checksum = 0;   // Fold of observed data; defeats dead-code elimination.
  double seconds = 0.0;
};

// Drives one implementation through the append/read/trim cycle. `Adapter` supplies the
// implementation-specific calls; the sequence of simulated operations is identical.
template <typename Adapter>
WorkloadResult RunLogWorkload(const WorkloadShape& shape, Adapter& impl) {
  WorkloadResult out;
  auto start = std::chrono::steady_clock::now();
  int64_t step = 0;
  for (int round = 0; round < shape.rounds; ++round) {
    for (int i = 0; i < shape.appends_per_round; ++i) {
      int instance = i % shape.instances;
      int object = i % shape.objects;
      impl.Append(instance, object, step++, shape.value_bytes);
      ++out.ops;
    }
    for (int rep = 0; rep < shape.read_reps; ++rep) {
      for (int instance = 0; instance < shape.instances; ++instance) {
        out.checksum += impl.ReadStreamBytes(instance);
        ++out.ops;
      }
      for (int object = 0; object < shape.objects; ++object) {
        out.checksum += impl.ReadPrevSeq(object);
        ++out.ops;
      }
    }
    for (int instance = 0; instance < shape.instances; ++instance) {
      out.checksum += impl.FindFirstSeq(instance, step - 1 - instance);
      ++out.ops;
    }
    out.checksum += impl.PrefixScanCount();
    ++out.ops;
    // GC pass: trim everything but the last round's suffix from the object streams, and the
    // step streams entirely (retired instances re-register next round).
    if (round % 2 == 1) {
      for (int object = 0; object < shape.objects; ++object) {
        impl.TrimObjectHalf(object);
        ++out.ops;
      }
    }
  }
  out.seconds = SecondsSince(start);
  return out;
}

class OptimizedAdapter {
 public:
  void Append(int instance, int object, int64_t step, size_t value_bytes) {
    FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", step);
    fields.SetStr("version", "v" + std::to_string(step));
    fields.SetStr("value", PadValue("x", value_bytes));
    last_ = space_.Append(0, {StepTag(instance), ObjTag(object)}, std::move(fields));
  }
  uint64_t ReadStreamBytes(int instance) {
    uint64_t bytes = 0;
    for (const LogRecordPtr& record : space_.ReadStream(StepTag(instance))) {
      bytes += record->fields.GetStr("value").size();
    }
    return bytes;
  }
  uint64_t ReadPrevSeq(int object) {
    LogRecordPtr record = space_.ReadPrev(ObjTag(object), last_);
    return record != nullptr ? record->seqnum : 0;
  }
  uint64_t FindFirstSeq(int instance, int64_t step) {
    LogRecordPtr record = space_.FindFirstByStep(StepTag(instance), "write", step);
    return record != nullptr ? record->seqnum : 0;
  }
  uint64_t PrefixScanCount() { return space_.StreamTagsWithPrefix("k:").size(); }
  void TrimObjectHalf(int object) {
    LogRecordPtr latest = space_.ReadPrev(ObjTag(object), last_);
    if (latest != nullptr && latest->seqnum > 0) space_.Trim(0, ObjTag(object), latest->seqnum - 1);
  }

 private:
  static Tag StepTag(int instance) { return "step:" + std::to_string(instance); }
  static Tag ObjTag(int object) { return "k:obj" + std::to_string(object); }
  sharedlog::LogSpace space_;
  SeqNum last_ = 0;
};

class LegacyAdapter {
 public:
  void Append(int instance, int object, int64_t step, size_t value_bytes) {
    legacy::FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", step);
    fields.SetStr("version", "v" + std::to_string(step));
    fields.SetStr("value", PadValue("x", value_bytes));
    last_ = space_.Append({StepTag(instance), ObjTag(object)}, std::move(fields));
  }
  uint64_t ReadStreamBytes(int instance) {
    uint64_t bytes = 0;
    for (const legacy::LogRecord& record : space_.ReadStream(StepTag(instance))) {
      bytes += record.fields.GetStr("value").size();
    }
    return bytes;
  }
  uint64_t ReadPrevSeq(int object) {
    std::optional<legacy::LogRecord> record = space_.ReadPrev(ObjTag(object), last_);
    return record.has_value() ? record->seqnum : 0;
  }
  uint64_t FindFirstSeq(int instance, int64_t step) {
    std::optional<legacy::LogRecord> record =
        space_.FindFirstByStep(StepTag(instance), "write", step);
    return record.has_value() ? record->seqnum : 0;
  }
  uint64_t PrefixScanCount() { return space_.StreamTagsWithPrefix("k:").size(); }
  void TrimObjectHalf(int object) {
    std::optional<legacy::LogRecord> latest = space_.ReadPrev(ObjTag(object), last_);
    if (latest.has_value() && latest->seqnum > 0) space_.Trim(ObjTag(object), latest->seqnum - 1);
  }

 private:
  static Tag StepTag(int instance) { return "step:" + std::to_string(instance); }
  static Tag ObjTag(int object) { return "k:obj" + std::to_string(object); }
  legacy::LogSpace space_;
  SeqNum last_ = 0;
};

// ---------------------------------------------------------------------------
// Event-loop workload: post + drain cycles through either queue implementation.
// ---------------------------------------------------------------------------

struct EventResult {
  uint64_t events = 0;
  double seconds = 0.0;
};

// Events capture what the simulation's real call sites capture: a couple of pointers plus a
// value (~32 bytes) — beyond std::function's small-buffer optimization, within the
// scheduler's inline event storage.
EventResult RunLegacyEvents(uint64_t total, int batch) {
  legacy::EventQueue queue;
  EventResult out;
  uint64_t counter = 0;
  uint64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  while (out.events < total) {
    for (int i = 0; i < batch; ++i) {
      queue.Post(static_cast<SimTime>(i % 7), [&counter, &sink, &out, i] {
        counter += static_cast<uint64_t>(i) + sink + out.events;
      });
    }
    out.events += queue.Drain();
  }
  out.seconds = SecondsSince(start);
  if (counter == 0) std::printf("(unreachable)\n");
  return out;
}

EventResult RunOptimizedEvents(uint64_t total, int batch) {
  sim::Scheduler scheduler;
  EventResult out;
  uint64_t counter = 0;
  uint64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  while (out.events < total) {
    uint64_t before = scheduler.events_processed();
    for (int i = 0; i < batch; ++i) {
      scheduler.Post(static_cast<SimDuration>(i % 7), [&counter, &sink, &out, i] {
        counter += static_cast<uint64_t>(i) + sink + out.events;
      });
    }
    scheduler.Run();
    out.events += scheduler.events_processed() - before;
  }
  out.seconds = SecondsSince(start);
  if (counter == 0) std::printf("(unreachable)\n");
  return out;
}

// ---------------------------------------------------------------------------
// Zero-copy audit: exercise the client read paths and report the stats counters.
// ---------------------------------------------------------------------------

struct AuditResult {
  int64_t shared = 0;
  int64_t copies = 0;
};

AuditResult RunZeroCopyAudit() {
  sim::Scheduler scheduler;
  Rng rng{11};
  LatencyModels models;
  sharedlog::LogSpace space;
  sharedlog::LogClient client{&scheduler, &rng, &models, &space, nullptr, nullptr};
  scheduler.Spawn([](sharedlog::LogClient* log) -> sim::Task<void> {
    for (int i = 0; i < 64; ++i) {
      FieldMap fields;
      fields.SetStr("op", "write");
      fields.SetInt("step", i);
      co_await log->Append(sharedlog::OneTag("t"), std::move(fields));
    }
    for (int i = 0; i < 64; ++i) {
      co_await log->ReadPrev("t", log->indexed_upto());
      co_await log->ReadNext("t", 1);
      co_await log->FindFirstByStep("t", "write", i);
    }
    co_await log->ReadStream("t");
  }(&client));
  scheduler.Run();
  return AuditResult{client.stats().read_record_shared, client.stats().read_record_copies};
}

void Report() {
  WorkloadShape shape;
  double scale = BenchScale();
  shape.rounds = std::max(2, static_cast<int>(shape.rounds * scale));
  const uint64_t event_total = static_cast<uint64_t>(2'000'000 * scale);
  constexpr int kEventBatch = 4096;

  std::printf("== Hot-path benchmark: baseline (seed implementation) vs optimized ==\n");

  // Warm-up both sides once to stabilize the allocator, then measure.
  { LegacyAdapter warm; WorkloadShape tiny = shape; tiny.rounds = 1; RunLogWorkload(tiny, warm); }
  { OptimizedAdapter warm; WorkloadShape tiny = shape; tiny.rounds = 1; RunLogWorkload(tiny, warm); }

  LegacyAdapter legacy_impl;
  WorkloadResult base = RunLogWorkload(shape, legacy_impl);
  OptimizedAdapter optimized_impl;
  WorkloadResult opt = RunLogWorkload(shape, optimized_impl);
  HM_CHECK_MSG(base.checksum == opt.checksum,
               "baseline and optimized workloads observed different data");

  EventResult base_events = RunLegacyEvents(event_total, kEventBatch);
  EventResult opt_events = RunOptimizedEvents(event_total, kEventBatch);

  AuditResult audit = RunZeroCopyAudit();
  HM_CHECK_MSG(audit.copies == 0, "read path copied a record");

  double base_ops = static_cast<double>(base.ops) / base.seconds;
  double opt_ops = static_cast<double>(opt.ops) / opt.seconds;
  double base_eps = static_cast<double>(base_events.events) / base_events.seconds;
  double opt_eps = static_cast<double>(opt_events.events) / opt_events.seconds;

  std::printf("  log ops:   baseline %.0f ops/s, optimized %.0f ops/s (%.2fx)\n", base_ops,
              opt_ops, opt_ops / base_ops);
  std::printf("  events:    baseline %.0f ev/s,  optimized %.0f ev/s  (%.2fx)\n", base_eps,
              opt_eps, opt_eps / base_eps);
  std::printf("  zero-copy: read_record_shared=%lld read_record_copies=%lld\n",
              static_cast<long long>(audit.shared), static_cast<long long>(audit.copies));

  FILE* json = std::fopen("BENCH_hotpath.json", "w");
  HM_CHECK(json != nullptr);
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"hotpath\",\n"
               "  \"baseline\": {\"sim_ops_per_sec\": %.1f, \"events_per_sec\": %.1f,\n"
               "               \"log_ops\": %llu, \"events\": %llu},\n"
               "  \"optimized\": {\"sim_ops_per_sec\": %.1f, \"events_per_sec\": %.1f,\n"
               "                \"log_ops\": %llu, \"events\": %llu},\n"
               "  \"speedup_sim_ops\": %.3f,\n"
               "  \"speedup_events\": %.3f,\n"
               "  \"read_record_shared\": %lld,\n"
               "  \"read_record_copies\": %lld\n"
               "}\n",
               base_ops, base_eps, static_cast<unsigned long long>(base.ops),
               static_cast<unsigned long long>(base_events.events), opt_ops, opt_eps,
               static_cast<unsigned long long>(opt.ops),
               static_cast<unsigned long long>(opt_events.events), opt_ops / base_ops,
               opt_eps / base_eps, static_cast<long long>(audit.shared),
               static_cast<long long>(audit.copies));
  std::fclose(json);
  std::printf("  wrote BENCH_hotpath.json\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  halfmoon::bench::Report();
  return 0;
}
