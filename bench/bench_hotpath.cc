// Hot-path microbenchmark for the simulator's metadata path (see DESIGN.md "Performance
// architecture"): the zero-copy read path, the flat field map, the allocation-free scheduler
// loop, and — since the tag-interning change — interned TagIds, the incremental GC frontier,
// and coalesced index propagation.
//
// The binary embeds two faithful replicas so each speedup compares like with like inside one
// process:
//   * `legacy`  — the seed implementation: std::map field map, deep-copy reads, a per-tag
//                 index that never shrinks on Trim, std::function-backed events;
//   * `pr1`     — the previous PR's implementation: zero-copy shared records and compacted
//                 deque streams, but with std::string tags — every operation builds and
//                 hashes a tag string, and streams live in an unordered_map keyed by string.
// Both replicas run the *same* simulated op sequence as the current implementation, and the
// checksums must match exactly.
//
// The PR 3 baseline needs no replica: the group-commit batcher and the timer wheel both keep
// a reference mode in the tree (AppendBatchConfig{.enabled = false}, QueueMode::
// kPriorityQueue), so the driven log-heavy section runs the real cluster in last PR's
// configuration against the current one and asserts the committed log content is identical.
//
// Output: BENCH_hotpath.json in the working directory, plus a human-readable summary on
// stdout. HM_BENCH_SCALE scales the workload size.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/check.h"
#include "src/core/advisor.h"
#include "src/core/online_advisor.h"
#include "src/metrics/workload_sketch.h"
#include "src/runtime/cluster.h"
#include "src/runtime/parallel_cluster.h"
#include "src/sharedlog/log_client.h"
#include "src/sharedlog/log_space.h"
#include "src/sharedlog/tag_registry.h"
#include "src/sim/scheduler.h"

namespace halfmoon::bench {
namespace {

using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;
using sharedlog::TagId;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Baseline replica: the seed implementation, verbatim in structure.
// ---------------------------------------------------------------------------
namespace legacy {

using Tag = std::string;
using Field = std::variant<int64_t, std::string>;

class FieldMap {
 public:
  void SetInt(const std::string& key, int64_t v) { fields_[key] = v; }
  void SetStr(const std::string& key, std::string v) { fields_[key] = std::move(v); }
  int64_t GetInt(const std::string& key) const { return std::get<int64_t>(fields_.at(key)); }
  const std::string& GetStr(const std::string& key) const {
    return std::get<std::string>(fields_.at(key));
  }
  size_t ByteSize() const {
    size_t total = 0;
    for (const auto& [key, field] : fields_) {
      total += 2;
      total += std::holds_alternative<int64_t>(field) ? 8 : std::get<std::string>(field).size();
    }
    return total;
  }

 private:
  std::map<std::string, Field> fields_;
};

struct LogRecord {
  SeqNum seqnum = 0;
  std::vector<Tag> tags;
  FieldMap fields;
  size_t ByteSize() const {
    size_t total = 8 + fields.ByteSize();
    for (const Tag& tag : tags) total += tag.size();
    return total;
  }
};

// The seed's LogSpace: records stored by value, reads deep-copy, the per-tag index keeps
// every seqnum ever appended (Trim only advances a cursor), and prefix enumeration scans all
// streams then sorts.
class LogSpace {
 public:
  SeqNum Append(std::vector<Tag> tags, FieldMap fields) {
    SeqNum seqnum = next_seqnum_++;
    LogRecord record;
    record.seqnum = seqnum;
    record.tags = std::move(tags);
    record.fields = std::move(fields);
    StoredRecord stored;
    stored.live_tag_refs = static_cast<int>(record.tags.size());
    for (const Tag& tag : record.tags) {
      streams_[tag].seqnums.push_back(seqnum);
    }
    stored.record = std::move(record);
    records_.emplace(seqnum, std::move(stored));
    return seqnum;
  }

  std::optional<LogRecord> ReadPrev(const Tag& tag, SeqNum max_seqnum) const {
    auto it = streams_.find(tag);
    if (it == streams_.end()) return std::nullopt;
    const TagStream& stream = it->second;
    for (size_t i = stream.seqnums.size(); i > stream.trimmed; --i) {
      SeqNum seqnum = stream.seqnums[i - 1];
      if (seqnum > max_seqnum) continue;
      std::optional<LogRecord> record = LookupLive(seqnum);
      if (record.has_value()) return record;
    }
    return std::nullopt;
  }

  std::vector<LogRecord> ReadStream(const Tag& tag) const {
    std::vector<LogRecord> result;
    auto it = streams_.find(tag);
    if (it == streams_.end()) return result;
    const TagStream& stream = it->second;
    for (size_t i = stream.trimmed; i < stream.seqnums.size(); ++i) {
      std::optional<LogRecord> record = LookupLive(stream.seqnums[i]);
      if (record.has_value()) result.push_back(std::move(*record));
    }
    return result;
  }

  std::optional<LogRecord> FindFirstByStep(const Tag& tag, const std::string& op,
                                           int64_t step) const {
    auto it = streams_.find(tag);
    if (it == streams_.end()) return std::nullopt;
    const TagStream& stream = it->second;
    for (size_t i = stream.trimmed; i < stream.seqnums.size(); ++i) {
      std::optional<LogRecord> record = LookupLive(stream.seqnums[i]);
      if (!record.has_value()) continue;
      if (record->fields.GetStr("op") == op && record->fields.GetInt("step") == step) {
        return record;
      }
    }
    return std::nullopt;
  }

  std::vector<Tag> StreamTagsWithPrefix(const std::string& prefix) const {
    std::vector<Tag> tags;
    for (const auto& [tag, stream] : streams_) {
      if (tag.size() >= prefix.size() && tag.compare(0, prefix.size(), prefix) == 0 &&
          stream.trimmed < stream.seqnums.size()) {
        tags.push_back(tag);
      }
    }
    std::sort(tags.begin(), tags.end());
    return tags;
  }

  void Trim(const Tag& tag, SeqNum upto) {
    auto it = streams_.find(tag);
    if (it == streams_.end()) return;
    TagStream& stream = it->second;
    while (stream.trimmed < stream.seqnums.size() && stream.seqnums[stream.trimmed] <= upto) {
      ReleaseRef(stream.seqnums[stream.trimmed]);
      ++stream.trimmed;
    }
  }

 private:
  struct TagStream {
    std::vector<SeqNum> seqnums;  // Grows forever; Trim only advances `trimmed`.
    size_t trimmed = 0;
  };
  struct StoredRecord {
    LogRecord record;
    int live_tag_refs = 0;
  };

  std::optional<LogRecord> LookupLive(SeqNum seqnum) const {
    auto it = records_.find(seqnum);
    if (it == records_.end()) return std::nullopt;
    return it->second.record;  // Deep copy: tags, field map nodes, value bytes.
  }

  void ReleaseRef(SeqNum seqnum) {
    auto it = records_.find(seqnum);
    if (it == records_.end()) return;
    if (--it->second.live_tag_refs <= 0) records_.erase(it);
  }

  SeqNum next_seqnum_ = 1;
  std::unordered_map<SeqNum, StoredRecord> records_;
  std::unordered_map<Tag, TagStream> streams_;
};

// The seed's event queue: std::function-backed events, PostResume wrapping via a lambda.
class EventQueue {
 public:
  void Post(SimTime time, std::function<void()> fn) {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }
  uint64_t Drain() {
    uint64_t fired = 0;
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      event.fn();
      ++fired;
    }
    return fired;
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  uint64_t next_seq_ = 0;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// PR 1 replica: zero-copy records and compacted streams, but std::string tags.
// Every append/read/trim materializes a tag string and hashes its bytes; the stream table is
// an unordered_map keyed by string; live tags mirror into a std::set<std::string>.
// ---------------------------------------------------------------------------
namespace pr1 {

using Tag = std::string;

struct LogRecord {
  SeqNum seqnum = 0;
  std::vector<Tag> tags;
  FieldMap fields;  // PR 1 already had the flat field map.
  size_t ByteSize() const {
    size_t total = 8 + fields.ByteSize();
    for (const Tag& tag : tags) total += tag.size();
    return total;
  }
};
using LogRecordPtr = std::shared_ptr<const LogRecord>;

class LogSpace {
 public:
  SeqNum Append(std::vector<Tag> tags, FieldMap fields) {
    SeqNum seqnum = next_seqnum_++;
    auto record = std::make_shared<LogRecord>();
    record->seqnum = seqnum;
    record->tags = std::move(tags);
    record->fields = std::move(fields);
    StoredRecord stored;
    stored.live_tag_refs = static_cast<int>(record->tags.size());
    gauge_.Add(0, static_cast<int64_t>(record->ByteSize()));
    for (const Tag& tag : record->tags) {
      TagStream& stream = streams_[tag];
      if (stream.seqnums.empty()) live_tags_.insert(tag);
      stream.seqnums.push_back(seqnum);
    }
    stored.record = std::move(record);
    records_.emplace(seqnum, std::move(stored));
    return seqnum;
  }

  LogRecordPtr ReadPrev(const Tag& tag, SeqNum max_seqnum) const {
    const TagStream* stream = FindStream(tag);
    if (stream == nullptr) return nullptr;
    auto upper = std::upper_bound(stream->seqnums.begin(), stream->seqnums.end(), max_seqnum);
    if (upper == stream->seqnums.begin()) return nullptr;
    return LookupLive(*(upper - 1));
  }

  std::vector<LogRecordPtr> ReadStream(const Tag& tag) const {
    std::vector<LogRecordPtr> out;
    const TagStream* stream = FindStream(tag);
    if (stream == nullptr) return out;
    out.reserve(stream->seqnums.size());
    for (SeqNum seqnum : stream->seqnums) {
      LogRecordPtr record = LookupLive(seqnum);
      if (record != nullptr) out.push_back(std::move(record));
    }
    return out;
  }

  LogRecordPtr FindFirstByStep(const Tag& tag, const std::string& op, int64_t step) const {
    const TagStream* stream = FindStream(tag);
    if (stream == nullptr) return nullptr;
    for (SeqNum seqnum : stream->seqnums) {
      LogRecordPtr record = LookupLive(seqnum);
      if (record == nullptr) continue;
      if (record->fields.GetStr("op") == op && record->fields.GetInt("step") == step) {
        return record;
      }
    }
    return nullptr;
  }

  std::vector<Tag> StreamTagsWithPrefix(const std::string& prefix) const {
    std::vector<Tag> tags;
    for (auto it = live_tags_.lower_bound(prefix); it != live_tags_.end(); ++it) {
      if (it->compare(0, prefix.size(), prefix) != 0) break;
      tags.push_back(*it);
    }
    return tags;
  }

  void Trim(const Tag& tag, SeqNum upto) {
    auto it = streams_.find(tag);
    if (it == streams_.end()) return;
    TagStream& stream = it->second;
    while (!stream.seqnums.empty() && stream.seqnums.front() <= upto) {
      ReleaseRef(stream.seqnums.front());
      stream.seqnums.pop_front();
      ++stream.base;
    }
    if (stream.seqnums.empty() && stream.base > 0) live_tags_.erase(tag);
  }

 private:
  struct TagStream {
    std::deque<SeqNum> seqnums;
    size_t base = 0;
  };
  struct StoredRecord {
    LogRecordPtr record;
    int live_tag_refs = 0;
  };

  const TagStream* FindStream(const Tag& tag) const {
    auto it = streams_.find(tag);
    return it == streams_.end() ? nullptr : &it->second;
  }

  LogRecordPtr LookupLive(SeqNum seqnum) const {
    auto it = records_.find(seqnum);
    if (it == records_.end()) return nullptr;
    return it->second.record;
  }

  void ReleaseRef(SeqNum seqnum) {
    auto it = records_.find(seqnum);
    if (it == records_.end()) return;
    if (--it->second.live_tag_refs <= 0) {
      gauge_.Add(0, -static_cast<int64_t>(it->second.record->ByteSize()));
      records_.erase(it);
    }
  }

  SeqNum next_seqnum_ = 1;
  std::unordered_map<SeqNum, StoredRecord> records_;
  std::unordered_map<Tag, TagStream> streams_;
  std::set<Tag> live_tags_;
  metrics::StorageGauge gauge_;  // PR 1 carried the same storage accounting.
};

}  // namespace pr1

// ---------------------------------------------------------------------------
// Workload: identical op sequence against any of the three implementations.
// ---------------------------------------------------------------------------

struct WorkloadShape {
  int rounds = 8;
  int appends_per_round = 1024;
  int read_reps = 6;      // ReadStream sweeps per instance per round.
  int instances = 16;     // Step-log streams.
  int objects = 64;       // Per-object write-log streams ("k:...").
  size_t value_bytes = 256;
};

// The tag-cost section: metadata-only records (value_bytes = 0 — Halfmoon's log records
// carry op/step metadata, values live in the KV store), few stream sweeps, and a wide tag
// universe so per-op tag handling (string building + hashing against string-keyed tables vs
// interned-id indexing) dominates.
WorkloadShape LogHeavyShape() {
  WorkloadShape shape;
  shape.rounds = 6;
  shape.appends_per_round = 8192;
  shape.read_reps = 4;
  shape.instances = 256;
  shape.objects = 4096;
  shape.value_bytes = 0;
  return shape;
}

struct WorkloadResult {
  uint64_t ops = 0;        // Simulated log operations (appends + reads + trims + scans).
  uint64_t checksum = 0;   // Fold of observed data; defeats dead-code elimination.
  double seconds = 0.0;
};

// Drives one implementation through the append/read/trim cycle. `Adapter` supplies the
// implementation-specific calls; the sequence of simulated operations is identical.
template <typename Adapter>
WorkloadResult RunLogWorkload(const WorkloadShape& shape, Adapter& impl) {
  WorkloadResult out;
  auto start = std::chrono::steady_clock::now();
  int64_t step = 0;
  for (int round = 0; round < shape.rounds; ++round) {
    for (int i = 0; i < shape.appends_per_round; ++i) {
      int instance = i % shape.instances;
      int object = i % shape.objects;
      impl.Append(instance, object, step++, shape.value_bytes);
      ++out.ops;
    }
    for (int rep = 0; rep < shape.read_reps; ++rep) {
      for (int instance = 0; instance < shape.instances; instance += 16) {
        out.checksum += impl.ReadStreamBytes(instance);
        ++out.ops;
      }
      for (int object = 0; object < shape.objects; ++object) {
        out.checksum += impl.ReadPrevSeq(object);
        ++out.ops;
      }
    }
    for (int instance = 0; instance < shape.instances; instance += 8) {
      out.checksum += impl.FindFirstSeq(instance, step - 1 - instance);
      ++out.ops;
    }
    out.checksum += impl.PrefixScanCount();
    ++out.ops;
    // GC pass: trim everything but the last round's suffix from the object streams, and the
    // step streams entirely (retired instances re-register next round).
    if (round % 2 == 1) {
      for (int object = 0; object < shape.objects; ++object) {
        impl.TrimObjectHalf(object);
        ++out.ops;
      }
    }
  }
  out.seconds = SecondsSince(start);
  return out;
}

// Best-of-N wall-clock measurement with the two sides interleaved pass by pass (fresh
// adapters each pass), so transient load on the host hits both sides alike instead of
// skewing whichever happened to run during the noisy window. Every pass of every side must
// observe identical data.
template <typename BaselineT, typename CandidateT>
std::pair<WorkloadResult, WorkloadResult> BestOfInterleaved(int passes,
                                                            const WorkloadShape& shape) {
  WorkloadResult best_base, best_cand;
  for (int pass = 0; pass < passes; ++pass) {
    BaselineT baseline(shape);
    WorkloadResult base = RunLogWorkload(shape, baseline);
    CandidateT candidate(shape);
    WorkloadResult cand = RunLogWorkload(shape, candidate);
    HM_CHECK_MSG(base.checksum == cand.checksum, "workload sides observed different data");
    if (pass == 0) {
      best_base = base;
      best_cand = cand;
    } else {
      HM_CHECK_MSG(base.checksum == best_base.checksum,
                   "workload passes observed different data");
      if (base.seconds < best_base.seconds) best_base = base;
      if (cand.seconds < best_cand.seconds) best_cand = cand;
    }
  }
  return {best_base, best_cand};
}

// Pre-built identities shared by the adapters so every implementation receives the same
// inputs the runtime would hand it: an instance id and an object key. What differs is what
// each implementation has to *do* with them per operation. Names use realistic lengths —
// instance ids are invocation UUIDs and object keys are composite ("table/partition/object")
// in real deployments, not three-byte labels.
std::vector<std::string> InstanceNames(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "ssf-instance-%08x-4242-attempt-0", i * 2654435761u);
    out.push_back(buf);
  }
  return out;
}
std::vector<std::string> ObjectKeys(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "app/table-%d/partition-%03d/object-%06d", i % 8, i % 64, i);
    out.push_back(buf);
  }
  return out;
}

// Current implementation: step tags interned once per instance (as Env::step_tag does) and
// object tags resolved by the two-part InternPrefixed hit path (as Env::WriteTag does) —
// one hash of the key bytes, no string building, vector-indexed streams. The per-object
// version index (Halfmoon's per-key version list in the KV store) is keyed by TagId.
class OptimizedAdapter {
 public:
  explicit OptimizedAdapter(const WorkloadShape& shape)
      : keys_(ObjectKeys(shape.objects)), has_value_(shape.value_bytes > 0) {
    for (const std::string& name : InstanceNames(shape.instances)) {
      step_tags_.push_back(space_.tags().Intern(name));
    }
  }

  void Append(int instance, int object, int64_t step, size_t value_bytes) {
    FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", step);
    if (value_bytes > 0) fields.SetStr("value", PadValue("x", value_bytes));
    TagId obj = ObjTag(object);
    last_ = space_.Append(0, sharedlog::TwoTags(step_tags_[instance], obj), std::move(fields));
    // PutVersioned: record the write in the version index (flat, indexed by dense TagId —
    // mirrors KvState::versioned_).
    if (obj >= versions_.size()) versions_.resize(obj + 1);
    versions_[obj].push_back(last_);
  }
  uint64_t ReadStreamBytes(int instance) {
    uint64_t bytes = 0;
    for (const LogRecordPtr& record : space_.ReadStream(step_tags_[instance])) {
      bytes += has_value_ ? record->fields.GetStr("value").size()
                          : static_cast<uint64_t>(record->fields.GetInt("step"));
    }
    return bytes;
  }
  uint64_t ReadPrevSeq(int object) {
    TagId obj = ObjTag(object);
    uint64_t latest = 0;  // GetVersioned's index lookup: one bounds-checked vector access.
    if (obj < versions_.size() && !versions_[obj].empty()) latest = versions_[obj].back();
    LogRecordPtr record = space_.ReadPrev(obj, last_);
    return (record != nullptr ? record->seqnum : 0) + latest;
  }
  uint64_t FindFirstSeq(int instance, int64_t step) {
    LogRecordPtr record = space_.FindFirstByStep(step_tags_[instance], "write", step);
    return record != nullptr ? record->seqnum : 0;
  }
  uint64_t PrefixScanCount() { return space_.LiveTagsWithPrefix("k:").size(); }
  void TrimObjectHalf(int object) {
    TagId tag = ObjTag(object);
    LogRecordPtr latest = space_.ReadPrev(tag, last_);
    if (latest != nullptr && latest->seqnum > 0) space_.Trim(0, tag, latest->seqnum - 1);
    if (tag < versions_.size()) {
      std::vector<SeqNum>& versions = versions_[tag];  // GC drops superseded versions.
      if (versions.size() > 1) versions.erase(versions.begin(), versions.end() - 1);
    }
  }

 private:
  TagId ObjTag(int object) { return space_.tags().InternPrefixed("k:", keys_[object]); }
  sharedlog::LogSpace space_;
  std::vector<TagId> step_tags_;
  std::vector<std::string> keys_;
  std::vector<std::vector<SeqNum>> versions_;  // Flat, indexed by dense TagId.
  SeqNum last_ = 0;
  bool has_value_ = true;
};

// PR 1: same zero-copy storage, but every operation builds (or copies) a tag string and
// hashes its bytes against a string-keyed table; the version index is keyed by key string.
class Pr1Adapter {
 public:
  explicit Pr1Adapter(const WorkloadShape& shape)
      : instances_(InstanceNames(shape.instances)),
        keys_(ObjectKeys(shape.objects)),
        has_value_(shape.value_bytes > 0) {}

  void Append(int instance, int object, int64_t step, size_t value_bytes) {
    FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", step);
    if (value_bytes > 0) fields.SetStr("value", PadValue("x", value_bytes));
    // TwoTags(step_tag, WriteLogTag(key)) in PR 1: one copy, one move into the tag vector.
    std::vector<pr1::Tag> tags;
    tags.reserve(2);
    tags.push_back(instances_[instance]);
    tags.push_back(ObjTag(object));
    last_ = space_.Append(std::move(tags), std::move(fields));
    versions_[keys_[object]].push_back(last_);  // PutVersioned against the string-keyed index.
  }
  uint64_t ReadStreamBytes(int instance) {
    uint64_t bytes = 0;
    for (const pr1::LogRecordPtr& record : space_.ReadStream(instances_[instance])) {
      bytes += has_value_ ? record->fields.GetStr("value").size()
                          : static_cast<uint64_t>(record->fields.GetInt("step"));
    }
    return bytes;
  }
  uint64_t ReadPrevSeq(int object) {
    const std::vector<SeqNum>& versions = versions_[keys_[object]];
    uint64_t latest = versions.empty() ? 0 : versions.back();
    pr1::LogRecordPtr record = space_.ReadPrev(ObjTag(object), last_);
    return (record != nullptr ? record->seqnum : 0) + latest;
  }
  uint64_t FindFirstSeq(int instance, int64_t step) {
    pr1::LogRecordPtr record = space_.FindFirstByStep(instances_[instance], "write", step);
    return record != nullptr ? record->seqnum : 0;
  }
  uint64_t PrefixScanCount() { return space_.StreamTagsWithPrefix("k:").size(); }
  void TrimObjectHalf(int object) {
    pr1::Tag tag = ObjTag(object);
    pr1::LogRecordPtr latest = space_.ReadPrev(tag, last_);
    if (latest != nullptr && latest->seqnum > 0) space_.Trim(tag, latest->seqnum - 1);
    std::vector<SeqNum>& versions = versions_[keys_[object]];
    if (versions.size() > 1) versions.erase(versions.begin(), versions.end() - 1);
  }

 private:
  // What WriteLogTag(key) did before interning: build "k:<key>" for every operation.
  pr1::Tag ObjTag(int object) { return "k:" + keys_[object]; }
  pr1::LogSpace space_;
  std::vector<std::string> instances_;
  std::vector<std::string> keys_;
  std::unordered_map<std::string, std::vector<SeqNum>> versions_;
  SeqNum last_ = 0;
  bool has_value_ = true;
};

// Seed implementation driver (deep-copy reads, unbounded index).
class LegacyAdapter {
 public:
  explicit LegacyAdapter(const WorkloadShape& shape)
      : instances_(InstanceNames(shape.instances)),
        keys_(ObjectKeys(shape.objects)),
        has_value_(shape.value_bytes > 0) {}

  void Append(int instance, int object, int64_t step, size_t value_bytes) {
    legacy::FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", step);
    if (value_bytes > 0) fields.SetStr("value", PadValue("x", value_bytes));
    last_ = space_.Append({instances_[instance], ObjTag(object)}, std::move(fields));
    versions_[keys_[object]].push_back(last_);
  }
  uint64_t ReadStreamBytes(int instance) {
    uint64_t bytes = 0;
    for (const legacy::LogRecord& record : space_.ReadStream(instances_[instance])) {
      bytes += has_value_ ? record.fields.GetStr("value").size()
                          : static_cast<uint64_t>(record.fields.GetInt("step"));
    }
    return bytes;
  }
  uint64_t ReadPrevSeq(int object) {
    const std::vector<SeqNum>& versions = versions_[keys_[object]];
    uint64_t latest = versions.empty() ? 0 : versions.back();
    std::optional<legacy::LogRecord> record = space_.ReadPrev(ObjTag(object), last_);
    return (record.has_value() ? record->seqnum : 0) + latest;
  }
  uint64_t FindFirstSeq(int instance, int64_t step) {
    std::optional<legacy::LogRecord> record =
        space_.FindFirstByStep(instances_[instance], "write", step);
    return record.has_value() ? record->seqnum : 0;
  }
  uint64_t PrefixScanCount() { return space_.StreamTagsWithPrefix("k:").size(); }
  void TrimObjectHalf(int object) {
    legacy::Tag tag = ObjTag(object);
    std::optional<legacy::LogRecord> latest = space_.ReadPrev(tag, last_);
    if (latest.has_value() && latest->seqnum > 0) space_.Trim(tag, latest->seqnum - 1);
    std::vector<SeqNum>& versions = versions_[keys_[object]];
    if (versions.size() > 1) versions.erase(versions.begin(), versions.end() - 1);
  }

 private:
  legacy::Tag ObjTag(int object) { return "k:" + keys_[object]; }
  legacy::LogSpace space_;
  std::vector<std::string> instances_;
  std::vector<std::string> keys_;
  std::unordered_map<std::string, std::vector<SeqNum>> versions_;
  SeqNum last_ = 0;
  bool has_value_ = true;
};

// ---------------------------------------------------------------------------
// Tag-intern micro-section: resolving "k:<key>" per operation, PR 1 style (build the string,
// hash it against a string-keyed map) vs the two-part InternPrefixed hit path.
// ---------------------------------------------------------------------------

struct TagInternResult {
  double string_ns = 0.0;
  double interned_ns = 0.0;
  int64_t intern_requests = 0;
  size_t distinct_tags = 0;
  uint64_t checksum = 0;
};

TagInternResult RunTagInternMicro(uint64_t iters) {
  TagInternResult out;
  std::vector<std::string> keys = ObjectKeys(256);

  // PR 1 path: "k:" + key materialized and byte-hashed every time.
  std::unordered_map<std::string, uint64_t> string_ids;
  for (size_t i = 0; i < keys.size(); ++i) string_ids.emplace("k:" + keys[i], i);
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    out.checksum += string_ids.find("k:" + keys[i % keys.size()])->second;
  }
  out.string_ns = SecondsSince(start) * 1e9 / static_cast<double>(iters);

  // Interned path: hash the key bytes behind a constant prefix; no allocation on hits.
  sharedlog::TagRegistry registry;
  for (const std::string& key : keys) registry.InternPrefixed("k:", key);
  uint64_t base = out.checksum;
  start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    out.checksum += registry.InternPrefixed("k:", keys[i % keys.size()]);
  }
  out.interned_ns = SecondsSince(start) * 1e9 / static_cast<double>(iters);
  HM_CHECK_MSG(out.checksum - base == base, "intern hit path resolved different ids");

  out.intern_requests = registry.intern_requests();
  out.distinct_tags = registry.size();
  // At-most-once materialization: millions of requests, a fixed number of distinct names.
  HM_CHECK(out.intern_requests == static_cast<int64_t>(iters + keys.size()));
  HM_CHECK(out.distinct_tags == keys.size());
  return out;
}

// ---------------------------------------------------------------------------
// Frontier micro-section: the O(1) incremental RunningFrontier() vs the from-scratch init
// stream scan it replaced. The scan must walk every finished-but-untrimmed init record.
// ---------------------------------------------------------------------------

struct FrontierResult {
  double scan_ns = 0.0;
  double incremental_ns = 0.0;
  size_t live_inits = 0;
  uint64_t checksum = 0;
};

FrontierResult RunFrontierMicro(uint64_t iters) {
  FrontierResult out;
  runtime::ClusterConfig config;
  config.function_nodes = 1;
  runtime::Cluster cluster(config);
  std::unordered_set<std::string> finished;

  // 1024 instances on the init stream; the oldest 768 finished but not yet GC-trimmed —
  // exactly the window a from-scratch scan has to wade through on every GC/switch query.
  constexpr int kInstances = 1024;
  constexpr int kFinished = 768;
  for (int i = 0; i < kInstances; ++i) {
    std::string instance = "inst-" + std::to_string(i);
    FieldMap fields;
    fields.SetStr("op", "init");
    fields.SetInt("step", 0);
    fields.SetStr("instance", instance);
    TagId step_tag = cluster.log_space().tags().Intern(instance);
    SeqNum seqnum = cluster.log_space().Append(
        0, sharedlog::TwoTags(step_tag, sharedlog::kInitTagId), std::move(fields));
    cluster.RegisterInitRecord(instance, seqnum);
    if (i < kFinished) {
      cluster.MarkInstanceFinished(instance);
      finished.insert(instance);
    }
  }
  out.live_inits = kInstances;

  // From-scratch scan replica (the pre-incremental implementation).
  auto scan = [&]() -> SeqNum {
    for (const auto& record : cluster.log_space().ReadStream(sharedlog::kInitTagId)) {
      if (finished.count(record->fields.GetStr("instance")) == 0) return record->seqnum;
    }
    return cluster.log_space().next_seqnum();
  };

  uint64_t scan_iters = iters / 64 + 1;  // The scan is orders of magnitude slower.
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < scan_iters; ++i) out.checksum += scan();
  out.scan_ns = SecondsSince(start) * 1e9 / static_cast<double>(scan_iters);

  uint64_t base = 0;
  start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) base += cluster.RunningFrontier();
  out.incremental_ns = SecondsSince(start) * 1e9 / static_cast<double>(iters);

  HM_CHECK_MSG(cluster.RunningFrontier() == scan(),
               "incremental frontier diverged from the init-stream scan");
  out.checksum += base;
  return out;
}

// ---------------------------------------------------------------------------
// Propagation section: commit notifications vs index-advance wake-ups, coalesced vs the
// per-commit reference mode, over a real cluster run with concurrent appenders.
// ---------------------------------------------------------------------------

struct PropagationResult {
  int64_t commits = 0;
  int64_t ticks = 0;
  SimTime end_time = 0;
  std::vector<SeqNum> indexed_upto;
};

PropagationResult RunPropagation(bool coalesce, int appends_per_node) {
  runtime::ClusterConfig config;
  config.function_nodes = 8;
  config.coalesce_index_propagation = coalesce;
  runtime::Cluster cluster(config);
  for (int n = 0; n < cluster.node_count(); ++n) {
    cluster.scheduler().Spawn([](runtime::Cluster* c, int node, int total) -> sim::Task<void> {
      for (int i = 0; i < total; ++i) {
        FieldMap fields;
        fields.SetStr("op", "write");
        fields.SetInt("step", i);
        co_await c->node(node).log().Append(
            sharedlog::OneTag("t" + std::to_string(node)), std::move(fields));
      }
    }(&cluster, n, appends_per_node));
  }
  cluster.scheduler().Run();
  PropagationResult out;
  out.commits = cluster.index_propagation_commits();
  out.ticks = cluster.index_propagation_ticks();
  out.end_time = cluster.scheduler().Now();
  for (int n = 0; n < cluster.node_count(); ++n) {
    out.indexed_upto.push_back(cluster.node(n).log().indexed_upto());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Event-loop workload: post + drain cycles through either queue implementation.
// ---------------------------------------------------------------------------

struct EventResult {
  uint64_t events = 0;
  double seconds = 0.0;
};

// Events capture what the simulation's real call sites capture: a couple of pointers plus a
// value (~32 bytes) — beyond std::function's small-buffer optimization, within the
// scheduler's inline event storage.
EventResult RunLegacyEvents(uint64_t total, int batch) {
  legacy::EventQueue queue;
  EventResult out;
  uint64_t counter = 0;
  uint64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  while (out.events < total) {
    for (int i = 0; i < batch; ++i) {
      queue.Post(static_cast<SimTime>(i % 7), [&counter, &sink, &out, i] {
        counter += static_cast<uint64_t>(i) + sink + out.events;
      });
    }
    out.events += queue.Drain();
  }
  out.seconds = SecondsSince(start);
  if (counter == 0) std::printf("(unreachable)\n");
  return out;
}

EventResult RunOptimizedEvents(uint64_t total, int batch) {
  sim::Scheduler scheduler;
  EventResult out;
  uint64_t counter = 0;
  uint64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  while (out.events < total) {
    uint64_t before = scheduler.events_processed();
    for (int i = 0; i < batch; ++i) {
      scheduler.Post(static_cast<SimDuration>(i % 7), [&counter, &sink, &out, i] {
        counter += static_cast<uint64_t>(i) + sink + out.events;
      });
    }
    scheduler.Run();
    out.events += scheduler.events_processed() - before;
  }
  out.seconds = SecondsSince(start);
  if (counter == 0) std::printf("(unreachable)\n");
  return out;
}

// ---------------------------------------------------------------------------
// Driven log-heavy section: a real cluster (LogClient + stations + scheduler) under
// concurrent appenders. The embedded PR 2 baseline is the same binary with group commit
// disabled and the binary-heap scheduler — exactly the previous PR's configuration. The
// candidate runs the AppendBatcher + timer wheel. Committed content must be identical
// (the full-scale batched-vs-unbatched equivalence assertion); wall-clock time and
// events-per-op measure what group commit and the wheel buy.
// ---------------------------------------------------------------------------

struct DrivenResult {
  uint64_t sim_ops = 0;       // Log appends + cond-appends + reads driven through clients.
  uint64_t events = 0;        // Scheduler events fired to simulate them.
  uint64_t checksum = 0;      // Mode-invariant fold of all committed per-worker streams.
  double seconds = 0.0;
  int64_t append_rounds = 0;  // Batched mode only: sequencer rounds and their occupancy.
  int64_t batched_requests = 0;
};

struct DrivenShape {
  int nodes = 4;
  int workers_per_node = 48;
  int ops_per_worker = 192;
};

sim::Task<void> DrivenWorker(runtime::Cluster* cluster, int node, TagId own, TagId obj,
                             int ops, uint64_t* read_sink) {
  sharedlog::LogClient& log = cluster->node(node).log();
  size_t own_len = 0;  // Single writer of `own`: the next expected stream offset.
  for (int i = 0; i < ops; ++i) {
    FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", i);
    if (i % 4 == 3) {
      sharedlog::CondAppendResult r = co_await log.CondAppend(
          sharedlog::TwoTags(own, obj), std::move(fields), own, own_len);
      if (r.ok) ++own_len;
    } else {
      co_await log.Append(sharedlog::TwoTags(own, obj), std::move(fields));
      ++own_len;
    }
    if (i % 8 == 7) {
      // Cached-path read against the worker's own stream. Results feed a sink, not the
      // cross-mode checksum: read timing (and thus what a bounded read sees) legitimately
      // differs between batched and unbatched runs.
      LogRecordPtr record = co_await log.ReadPrev(own, log.indexed_upto());
      if (record != nullptr) *read_sink += static_cast<uint64_t>(record->seqnum) & 7u;
    }
  }
}

DrivenResult RunDrivenLogHeavy(bool batched, const DrivenShape& shape) {
  runtime::ClusterConfig config;
  config.function_nodes = shape.nodes;
  config.seed = 1;
  // PR 2 configuration vs current: group commit + timer wheel off or on, as a unit.
  config.group_commit_appends = batched;
  config.queue_mode = batched ? sim::QueueMode::kTimerWheel : sim::QueueMode::kPriorityQueue;
  runtime::Cluster cluster(config);

  int total_workers = shape.nodes * shape.workers_per_node;
  std::vector<TagId> worker_tags;
  worker_tags.reserve(total_workers);
  for (int w = 0; w < total_workers; ++w) {
    worker_tags.push_back(cluster.log_space().tags().Intern("w:" + std::to_string(w)));
  }
  uint64_t read_sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < total_workers; ++w) {
    TagId obj = cluster.log_space().tags().InternPrefixed("k:", std::to_string(w % 32));
    cluster.scheduler().Spawn(DrivenWorker(&cluster, w % shape.nodes, worker_tags[w], obj,
                                           shape.ops_per_worker, &read_sink));
  }
  cluster.scheduler().Run();

  DrivenResult out;
  out.seconds = SecondsSince(start);
  out.sim_ops = static_cast<uint64_t>(cluster.TotalLogAppends() + cluster.TotalLogReads());
  out.events = cluster.scheduler().events_processed();
  for (int n = 0; n < cluster.node_count(); ++n) {
    out.append_rounds += cluster.node(n).log().stats().append_rounds;
    out.batched_requests += cluster.node(n).log().stats().batched_requests;
  }
  // Content fingerprint: each worker stream's step sequence in order (program order for its
  // single writer), combined order-independently across workers. Identical for the batched
  // and unbatched runs — group commit must not change what commits, only when.
  for (int w = 0; w < total_workers; ++w) {
    uint64_t h = 1469598103934665603ull;
    for (const LogRecordPtr& record :
         cluster.log_space().ReadStreamUpTo(worker_tags[w], sharedlog::kMaxSeqNum)) {
      h = (h ^ static_cast<uint64_t>(record->fields.GetInt("step"))) * 1099511628211ull;
    }
    out.checksum ^= h;
  }
  // The committed record count must also agree (no stream escaped the fingerprint).
  out.checksum += cluster.log_space().next_seqnum();
  if (read_sink == ~0ull) std::printf("(unreachable)\n");  // Keep the reads observable.
  return out;
}

std::pair<DrivenResult, DrivenResult> BestOfDriven(int passes, const DrivenShape& shape) {
  DrivenResult best_base, best_cand;
  for (int pass = 0; pass < passes; ++pass) {
    DrivenResult base = RunDrivenLogHeavy(/*batched=*/false, shape);
    DrivenResult cand = RunDrivenLogHeavy(/*batched=*/true, shape);
    HM_CHECK_MSG(base.checksum == cand.checksum,
                 "group commit changed committed log content");
    if (pass == 0) {
      best_base = base;
      best_cand = cand;
      continue;
    }
    HM_CHECK_MSG(base.checksum == best_base.checksum,
                 "driven passes observed different data");
    if (base.seconds < best_base.seconds) best_base = base;
    if (cand.seconds < best_cand.seconds) best_cand = cand;
  }
  return {best_base, best_cand};
}

// ---------------------------------------------------------------------------
// Shard-scaling section: the same offered load against a 1-shard and a 4-shard log. The
// bottleneck sharding removes is the sequencer: each node's batcher keeps at most one
// sequencer round in flight per shard, so with hundreds of concurrent workers per node a
// single shard serializes rounds end to end while four shards run four rounds concurrently.
// The measured quantity is *simulated* throughput — committed appends per virtual second —
// at identical offered load; committed per-stream content must be shard-invariant.
// ---------------------------------------------------------------------------

struct ShardRunResult {
  uint64_t appends = 0;
  SimTime end_time = 0;
  uint64_t checksum = 0;      // Order-independent fold of per-worker stream contents.
  int64_t append_rounds = 0;  // Sequencer rounds across all nodes and shards.
};

sim::Task<void> ShardWorker(runtime::Cluster* cluster, int node, TagId own, TagId obj,
                            int ops) {
  sharedlog::LogClient& log = cluster->node(node).log();
  for (int i = 0; i < ops; ++i) {
    FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", i);
    co_await log.Append(sharedlog::TwoTags(own, obj), std::move(fields));
  }
}

ShardRunResult RunShardScaling(int shards, const DrivenShape& shape) {
  runtime::ClusterConfig config;
  config.function_nodes = shape.nodes;
  config.seed = 1;
  config.log_shards = shards;
  config.append_batch_pipeline = 1;  // The PR 5 baseline: serial rounds, shard scaling only
                                     // (the pipeline section measures depth; pinned so the
                                     // CI HM_PIPELINE legs don't move this gate).
  runtime::Cluster cluster(config);

  int total_workers = shape.nodes * shape.workers_per_node;
  std::vector<TagId> worker_tags;
  worker_tags.reserve(total_workers);
  for (int w = 0; w < total_workers; ++w) {
    worker_tags.push_back(cluster.log_space().tags().Intern("w:" + std::to_string(w)));
  }
  for (int w = 0; w < total_workers; ++w) {
    TagId obj = cluster.log_space().tags().InternPrefixed("k:", std::to_string(w % 64));
    cluster.scheduler().Spawn(ShardWorker(&cluster, w % shape.nodes, worker_tags[w], obj,
                                          shape.ops_per_worker));
  }
  cluster.scheduler().Run();

  ShardRunResult out;
  out.end_time = cluster.scheduler().Now();
  out.appends = static_cast<uint64_t>(cluster.TotalLogAppends());
  for (int n = 0; n < cluster.node_count(); ++n) {
    out.append_rounds += cluster.node(n).log().stats().append_rounds;
  }
  // Per-worker streams are single-writer, so their step sequences are program order under
  // any shard count; fold them order-independently across workers.
  for (int w = 0; w < total_workers; ++w) {
    uint64_t h = 1469598103934665603ull;
    for (const LogRecordPtr& record :
         cluster.log_space().ReadStreamUpTo(worker_tags[w], sharedlog::kMaxSeqNum)) {
      h = (h ^ static_cast<uint64_t>(record->fields.GetInt("step"))) * 1099511628211ull;
    }
    out.checksum ^= h;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pipeline section: the same round-limited append storm against the serial group-commit
// engine (pipeline depth 1, the PR 3 baseline) and the pipelined engine (depth 4). One
// explicit shard so the single sequencer is the bottleneck, and more concurrent workers per
// node than max_batch so the pending queue always holds more than one full round — the
// regime where overlapping rounds pays. Committed content and the final seqnum must be
// depth-invariant (the FIFO commit-ticket assertion at full scale); the measured quantity is
// simulated throughput, so the >= 1.5x gate below is deterministic, not a wall-clock guess.
// ---------------------------------------------------------------------------

struct PipelineRunResult {
  uint64_t appends = 0;
  SimTime end_time = 0;
  uint64_t checksum = 0;   // Order-independent fold of per-worker stream contents.
  uint64_t next_seqnum = 0;
  int64_t append_rounds = 0;
  int64_t rounds_overlapped = 0;
  int64_t max_inflight = 0;
  int64_t ctrl_raised = 0;
  int64_t ctrl_widened = 0;
  int64_t ctrl_narrowed = 0;
  int64_t ctrl_lowered = 0;
};

PipelineRunResult RunPipelineStorm(int depth, const DrivenShape& shape) {
  runtime::ClusterConfig config;
  config.function_nodes = shape.nodes;
  config.seed = 1;
  config.log_shards = 1;                 // One sequencer: the round-limited regime.
  config.append_batch_pipeline = depth;  // Pinned, independent of HM_PIPELINE.
  runtime::Cluster cluster(config);

  int total_workers = shape.nodes * shape.workers_per_node;
  std::vector<TagId> worker_tags;
  worker_tags.reserve(total_workers);
  for (int w = 0; w < total_workers; ++w) {
    worker_tags.push_back(cluster.log_space().tags().Intern("w:" + std::to_string(w)));
  }
  for (int w = 0; w < total_workers; ++w) {
    TagId obj = cluster.log_space().tags().InternPrefixed("k:", std::to_string(w % 64));
    cluster.scheduler().Spawn(ShardWorker(&cluster, w % shape.nodes, worker_tags[w], obj,
                                          shape.ops_per_worker));
  }
  cluster.scheduler().Run();

  PipelineRunResult out;
  out.end_time = cluster.scheduler().Now();
  out.appends = static_cast<uint64_t>(cluster.TotalLogAppends());
  out.next_seqnum = cluster.log_space().next_seqnum();
  for (int n = 0; n < cluster.node_count(); ++n) {
    const sharedlog::LogClientStats& stats = cluster.node(n).log().stats();
    out.append_rounds += stats.append_rounds;
    out.rounds_overlapped += stats.pipeline_rounds_overlapped;
    out.max_inflight = std::max(out.max_inflight, stats.pipeline_max_inflight);
    out.ctrl_raised += stats.ctrl_depth_raised;
    out.ctrl_widened += stats.ctrl_window_widened;
    out.ctrl_narrowed += stats.ctrl_window_narrowed;
    out.ctrl_lowered += stats.ctrl_depth_lowered;
  }
  for (int w = 0; w < total_workers; ++w) {
    uint64_t h = 1469598103934665603ull;
    for (const LogRecordPtr& record :
         cluster.log_space().ReadStreamUpTo(worker_tags[w], sharedlog::kMaxSeqNum)) {
      h = (h ^ static_cast<uint64_t>(record->fields.GetInt("step"))) * 1099511628211ull;
    }
    out.checksum ^= h;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Read-cache section: the Halfmoon-read log-free read path (ReadPrev of an object's write
// log at the client's index horizon) with the node-local consistent cache enabled. Workers
// mix one write per eight reads over a shared object set; the cache serves repeat reads
// whose cached record still matches the index replica's latest-version answer.
// ---------------------------------------------------------------------------

struct CacheRunResult {
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t reads_index_local = 0;
  int64_t reads_storage = 0;
  SimTime end_time = 0;
};

sim::Task<void> CacheWorker(runtime::Cluster* cluster, int node, TagId own, TagId obj,
                            int ops, uint64_t* sink) {
  sharedlog::LogClient& log = cluster->node(node).log();
  for (int i = 0; i < ops; ++i) {
    if (i % 8 == 0) {
      FieldMap fields;
      fields.SetStr("op", "write");
      fields.SetInt("step", i);
      co_await log.Append(sharedlog::TwoTags(own, obj), std::move(fields));
    } else {
      LogRecordPtr record = co_await log.ReadPrev(obj, log.indexed_upto());
      if (record != nullptr) *sink += static_cast<uint64_t>(record->fields.GetInt("step"));
    }
  }
}

CacheRunResult RunReadCache(bool cache_enabled, const DrivenShape& shape) {
  runtime::ClusterConfig config;
  config.function_nodes = shape.nodes;
  config.seed = 1;
  config.log_read_cache = cache_enabled;
  runtime::Cluster cluster(config);

  int total_workers = shape.nodes * shape.workers_per_node;
  uint64_t sink = 0;
  for (int w = 0; w < total_workers; ++w) {
    TagId own = cluster.log_space().tags().Intern("w:" + std::to_string(w));
    TagId obj = cluster.log_space().tags().InternPrefixed("k:", std::to_string(w % 16));
    cluster.scheduler().Spawn(CacheWorker(&cluster, w % shape.nodes, own, obj,
                                          shape.ops_per_worker, &sink));
  }
  cluster.scheduler().Run();

  CacheRunResult out;
  out.end_time = cluster.scheduler().Now();
  for (int n = 0; n < cluster.node_count(); ++n) {
    const sharedlog::LogClientStats& stats = cluster.node(n).log().stats();
    out.cache_hits += stats.cache_hits;
    out.cache_misses += stats.cache_misses;
    out.reads_index_local += stats.reads_index_local;
    out.reads_storage += stats.reads_storage;
  }
  if (sink == ~0ull) std::printf("(unreachable)\n");
  return out;
}

// ---------------------------------------------------------------------------
// Timer-wheel micro-section: the same post/drain event storm through the binary-heap
// reference queue and the hierarchical wheel. Delays span L0 slots through mid levels, the
// wheel's busiest regime.
// ---------------------------------------------------------------------------

EventResult RunSchedulerEvents(sim::QueueMode mode, uint64_t total, int batch) {
  sim::Scheduler scheduler(mode);
  EventResult out;
  uint64_t counter = 0;
  uint64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  while (out.events < total) {
    uint64_t before = scheduler.events_processed();
    for (int i = 0; i < batch; ++i) {
      auto delay = static_cast<SimDuration>(
          (static_cast<uint64_t>(i) * 2654435761ull) % static_cast<uint64_t>(Milliseconds(2)));
      scheduler.Post(delay, [&counter, &sink, &out, i] {
        counter += static_cast<uint64_t>(i) + sink + out.events;
      });
    }
    scheduler.Run();
    out.events += scheduler.events_processed() - before;
  }
  out.seconds = SecondsSince(start);
  if (counter == 0) std::printf("(unreachable)\n");
  return out;
}

// ---------------------------------------------------------------------------
// Zero-copy audit: exercise the client read paths and report the stats counters.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Thread-scaling section: the shard-parallel workload on runtime::ParallelCluster, one
// shared single-threaded scheduler (HM_PARALLEL=0 semantics) vs one OS thread per partition
// under the conservative engine. Unlike every other section, the measured quantity is
// WALL-CLOCK events per second — virtual time and committed content are identical across
// modes by construction (asserted every pass), so the only thing the threads can change is
// how fast the same simulation runs. The workload keeps most appends partition-local (the
// conservative window then holds many events per barrier) with a cross-partition append
// every 16 ops so the synchronization protocol is genuinely exercised.
// ---------------------------------------------------------------------------

struct ParallelScalingResult {
  double seconds = 0;  // Wall clock.
  uint64_t events = 0;
  uint64_t checksum = 0;
  int64_t appends = 0;
  uint64_t windows = 0;
  uint64_t messages = 0;
};

sim::Task<void> ParallelLoad(runtime::ParallelCluster* pc, int p, int client, int ops,
                             std::vector<std::vector<TagId>> tags) {
  for (int i = 0; i < ops; ++i) {
    int owner = p;
    if (pc->partitions() > 1 && i % 16 == 0) owner = (p + 1) % pc->partitions();
    FieldMap fields;
    fields.SetStr("op", "write");
    fields.SetInt("step", i);
    std::vector<TagId> record_tags = {
        tags[static_cast<size_t>(owner)][static_cast<size_t>(p)]};
    co_await pc->Append(p, client, owner, std::move(record_tags), std::move(fields));
  }
}

ParallelScalingResult RunParallelScaling(int partitions, bool parallel,
                                         int clients_per_partition, int ops_per_client) {
  runtime::ParallelClusterConfig config;
  config.partitions = partitions;
  config.parallel = parallel;
  config.clients_per_partition = clients_per_partition;
  config.seed = 1;
  runtime::ParallelCluster pc(config);

  std::vector<std::vector<TagId>> tags(static_cast<size_t>(partitions));
  for (int owner = 0; owner < partitions; ++owner) {
    for (int src = 0; src < partitions; ++src) {
      tags[static_cast<size_t>(owner)].push_back(
          pc.InternTag(owner, "p" + std::to_string(owner) + "/from" + std::to_string(src)));
    }
  }
  for (int p = 0; p < partitions; ++p) {
    for (int c = 0; c < clients_per_partition; ++c) {
      pc.Spawn(p, ParallelLoad(&pc, p, c, ops_per_client, tags));
    }
  }

  auto start = std::chrono::steady_clock::now();
  pc.Run();
  ParallelScalingResult out;
  out.seconds = SecondsSince(start);
  out.events = pc.TotalEventsProcessed();
  out.checksum = pc.ContentChecksum();
  out.appends = pc.TotalLogAppends();
  out.windows = pc.windows();
  out.messages = pc.messages_routed();
  return out;
}

struct AuditResult {
  int64_t shared = 0;
  int64_t copies = 0;
};

AuditResult RunZeroCopyAudit() {
  sim::Scheduler scheduler;
  Rng rng{11};
  LatencyModels models;
  sharedlog::LogSpace space;
  sharedlog::LogClient client{&scheduler, &rng, &models, &space, nullptr, nullptr};
  scheduler.Spawn([](sharedlog::LogClient* log) -> sim::Task<void> {
    for (int i = 0; i < 64; ++i) {
      FieldMap fields;
      fields.SetStr("op", "write");
      fields.SetInt("step", i);
      co_await log->Append(sharedlog::OneTag(std::string("t")), std::move(fields));
    }
    for (int i = 0; i < 64; ++i) {
      co_await log->ReadPrev("t", log->indexed_upto());
      co_await log->ReadNext("t", 1);
      co_await log->FindFirstByStep("t", "write", i);
    }
    co_await log->ReadStream("t");
  }(&client));
  scheduler.Run();
  return AuditResult{client.stats().read_record_shared, client.stats().read_record_copies};
}

// ---------------------------------------------------------------------------
// Advisor-drift section (DESIGN.md §11): the online cost-model advisor over a
// million-object keyspace whose hot set drifts from read-heavy to write-heavy.
// ---------------------------------------------------------------------------
//
// Direct-drive: the workload feeds the REAL hot-path sketch and the decisions run the REAL
// AdvisorDecision with the shipped dwell/token dampers, while log cost is accounted with the
// protocols' record-count model (HM-read: 2 records per write, reads log-free; HM-write: 1
// record per read, writes log-free; 2 records per §4.7 object switch). This keeps a
// 10^6-object sweep in benchmark time while measuring exactly the decision pipeline the
// runtime ships; the end-to-end byte gate on a real cluster is online_advisor_test.
struct AdvisorDriftResult {
  int64_t objects = 0;
  int64_t hot_objects = 0;
  size_t sketch_bytes = 0;
  int64_t advisor_bytes = 0;
  int64_t static_read_bytes = 0;
  int64_t static_write_bytes = 0;
  int64_t switches = 0;
  int64_t sweep_ticks = 0;  // Bounded keyspace-walk slices across both sweeps.
  int64_t ids_per_tick = 0;
  double wall_seconds = 0;
};

AdvisorDriftResult RunAdvisorDrift(double scale) {
  AdvisorDriftResult r;
  r.objects = std::max<int64_t>(1 << 16, static_cast<int64_t>(1'000'000 * scale));
  r.hot_objects = 4096;
  r.ids_per_tick = 65536;
  constexpr int64_t kRecordBytes = 96;   // Uniform record-size model; ratios are what matter.
  constexpr int64_t kMinOps = 16;
  constexpr double kMargin = 0.05;

  metrics::WorkloadSketchConfig sketch_config;
  sketch_config.width = 1 << 17;  // eps*N stays below kMinOps for the phase-B window.
  sketch_config.depth = 4;
  metrics::WorkloadSketch sketch(sketch_config);
  r.sketch_bytes = sketch.MemoryBytes();
  const size_t sketch_bytes_at_start = r.sketch_bytes;

  const double boundary = core::RuntimeBoundaryReadRatio(core::WorkloadProfile{});

  // Per-object protocol (advisor run): everyone starts on the HM-read default. Tracked
  // per-phase true counts feed the static-protocol cost model; the ADVISOR only ever sees
  // the sketch estimates.
  constexpr uint8_t kRead = 0, kWrite = 1;
  std::vector<uint8_t> protocol(static_cast<size_t>(r.objects), kRead);

  int64_t advisor_records = 0, static_read_records = 0, static_write_records = 0;

  // One workload phase: each hot object performs `hot_reads`+`hot_writes`, and (optionally)
  // every cold object one read. Costs accrue to all three accounting models at once.
  auto run_phase = [&](int hot_reads, int hot_writes, bool touch_cold) {
    for (int64_t o = 0; o < r.hot_objects; ++o) {
      const uint64_t id = static_cast<uint64_t>(o);
      for (int i = 0; i < hot_reads; ++i) sketch.RecordRead(id);
      for (int i = 0; i < hot_writes; ++i) sketch.RecordWrite(id);
      static_read_records += 2ll * hot_writes;
      static_write_records += hot_reads;
      advisor_records += protocol[o] == kRead ? 2ll * hot_writes : hot_reads;
    }
    if (touch_cold) {
      for (int64_t o = r.hot_objects; o < r.objects; ++o) {
        sketch.RecordRead(static_cast<uint64_t>(o));
        static_write_records += 1;  // HM-write logs every read; HM-read and advisor: free.
      }
    }
  };

  // One full advisor sweep: the bounded incremental walk over the whole keyspace, the
  // shipped decision rule, and the shipped dampers (dwell via last-switch epoch stamps, a
  // token bucket sized to admit the full hot set per sweep).
  int64_t sweep_epoch = 0;
  std::vector<int64_t> last_switch(static_cast<size_t>(r.objects), -1);
  double tokens = 2.0 * static_cast<double>(r.hot_objects);
  auto run_sweep = [&]() {
    ++sweep_epoch;
    for (int64_t cursor = 0; cursor < r.objects; cursor += r.ids_per_tick) {
      ++r.sweep_ticks;
      const int64_t end = std::min(r.objects, cursor + r.ids_per_tick);
      for (int64_t o = cursor; o < end; ++o) {
        const uint64_t id = static_cast<uint64_t>(o);
        std::optional<core::ProtocolKind> decision = core::AdvisorDecision(
            static_cast<int64_t>(sketch.EstimateReads(id)),
            static_cast<int64_t>(sketch.EstimateWrites(id)), boundary, kMargin, kMinOps);
        if (!decision.has_value()) continue;
        const uint8_t want =
            *decision == core::ProtocolKind::kHalfmoonRead ? kRead : kWrite;
        if (want == protocol[o]) continue;
        if (last_switch[o] == sweep_epoch) continue;  // Dwell: once per sweep window.
        if (tokens < 1.0) continue;
        tokens -= 1.0;
        last_switch[o] = sweep_epoch;
        protocol[o] = want;
        advisor_records += 2;  // BEGIN + END transition records.
        ++r.switches;
      }
    }
  };

  auto start = std::chrono::steady_clock::now();

  // Phase A: read-heavy hot set over the full keyspace; the sweep must leave everything on
  // the HM-read default.
  run_phase(/*hot_reads=*/180, /*hot_writes=*/20, /*touch_cold=*/true);
  run_sweep();
  // Count-min estimates only overcount, so over a million-object tail a few cold objects can
  // collide with hot buckets in every row and draw a spurious switch; the gate bounds that
  // tail (< 1/64 of the hot set) rather than demanding sketch exactness.
  const int64_t spurious_cap = r.hot_objects / 64;
  HM_CHECK_MSG(r.switches <= spurious_cap,
               "advisor switched objects on the read-heavy phase");

  // The mix drifts write-heavy: age out the old window, show one drift chunk, sweep (the
  // hot set flips to HM-write), then the write-heavy tail runs on the switched protocol.
  sketch.AdvanceEpoch();
  sketch.AdvanceEpoch();
  run_phase(/*hot_reads=*/5, /*hot_writes=*/45, /*touch_cold=*/false);
  run_sweep();
  for (int64_t o = 0; o < r.hot_objects; ++o) {
    HM_CHECK_MSG(protocol[o] == kWrite, "a hot object did not switch after the drift");
  }
  HM_CHECK_MSG(r.switches <= r.hot_objects + 2 * spurious_cap,
               "spurious cold-object switches exceeded the sketch-noise bound");
  run_phase(/*hot_reads=*/15, /*hot_writes=*/135, /*touch_cold=*/false);

  r.wall_seconds = SecondsSince(start);
  r.advisor_bytes = advisor_records * kRecordBytes;
  r.static_read_bytes = static_read_records * kRecordBytes;
  r.static_write_bytes = static_write_records * kRecordBytes;

  // The §4.6 gates: strictly fewer simulated log bytes than BOTH static assignments, a
  // bounded switch count, and sketch memory independent of the keyspace size.
  HM_CHECK_MSG(r.advisor_bytes < r.static_read_bytes,
               "advisor did not beat static Halfmoon-read");
  HM_CHECK_MSG(r.advisor_bytes < r.static_write_bytes,
               "advisor did not beat static Halfmoon-write");
  HM_CHECK_MSG(r.switches <= 2 * r.hot_objects, "switch count exceeded the cap");
  HM_CHECK_MSG(sketch.MemoryBytes() == sketch_bytes_at_start,
               "sketch memory grew with the keyspace");
  return r;
}

void Report() {
  double scale = BenchScale();
  WorkloadShape shape;
  shape.rounds = std::max(2, static_cast<int>(shape.rounds * scale));
  WorkloadShape heavy = LogHeavyShape();
  heavy.rounds = std::max(2, static_cast<int>(heavy.rounds * scale));
  const uint64_t event_total = static_cast<uint64_t>(2'000'000 * scale);
  const uint64_t intern_iters = static_cast<uint64_t>(4'000'000 * scale);
  const uint64_t frontier_iters = static_cast<uint64_t>(4'000'000 * scale);
  constexpr int kEventBatch = 4096;

  std::printf("== Hot-path benchmark: seed baseline vs PR 1 (string tags) vs current ==\n");

  // Warm-up all sides once to stabilize the allocator, then measure.
  {
    WorkloadShape tiny = shape;
    tiny.rounds = 1;
    LegacyAdapter warm_legacy(tiny);
    RunLogWorkload(tiny, warm_legacy);
    Pr1Adapter warm_pr1(tiny);
    RunLogWorkload(tiny, warm_pr1);
    OptimizedAdapter warm_opt(tiny);
    RunLogWorkload(tiny, warm_opt);
  }

  // Section 1: the seed baseline comparison (the original shape, payload-heavy).
  auto [base, opt] = BestOfInterleaved<LegacyAdapter, OptimizedAdapter>(2, shape);

  // Section 2: PR 1 vs current on the log-heavy data-structure shape (tag handling).
  auto [pr1_res, opt_heavy] = BestOfInterleaved<Pr1Adapter, OptimizedAdapter>(9, heavy);

  // Section 2b: the driven log-heavy shape — a real cluster under concurrent appenders.
  // Baseline = PR 2 configuration (per-request appends, binary-heap scheduler); candidate =
  // group commit + timer wheel. Committed content is asserted identical every pass.
  DrivenShape driven_shape;
  driven_shape.ops_per_worker =
      std::max(32, static_cast<int>(driven_shape.ops_per_worker * scale));
  RunDrivenLogHeavy(/*batched=*/true, DrivenShape{2, 8, 32});  // Warm-up.
  auto [pr2_driven, cur_driven] = BestOfDriven(5, driven_shape);

  // Section 2c: shard scaling. High per-node concurrency so a single shard's one-round-in-
  // flight sequencer pipeline is the bottleneck; four shards run four rounds concurrently.
  // Simulated time is deterministic, so one run per side suffices.
  DrivenShape shard_shape;
  shard_shape.nodes = 2;
  shard_shape.workers_per_node = 256;
  shard_shape.ops_per_worker = std::max(12, static_cast<int>(48 * scale));
  ShardRunResult one_shard = RunShardScaling(1, shard_shape);
  ShardRunResult four_shard = RunShardScaling(4, shard_shape);
  HM_CHECK_MSG(one_shard.checksum == four_shard.checksum,
               "sharding changed committed log content");
  HM_CHECK(one_shard.appends == four_shard.appends);
  double one_shard_tput =
      static_cast<double>(one_shard.appends) / ToSecondsDouble(one_shard.end_time);
  double four_shard_tput =
      static_cast<double>(four_shard.appends) / ToSecondsDouble(four_shard.end_time);
  double shard_speedup = four_shard_tput / one_shard_tput;
  // Simulated time is deterministic, so this is a hard regression gate, not a flaky perf
  // assertion: four shards must scale log-heavy throughput by at least 1.8x.
  HM_CHECK_MSG(shard_speedup >= 1.8, "shard scaling fell below the 1.8x floor");

  // Section 2f: pipelined group commit. Same offered load through one sequencer at pipeline
  // depth 1 (the PR 3 serial engine) and depth 4; committed content and the final seqnum
  // must be identical, and depth 4 must commit the storm at least 1.5x faster in simulated
  // time. Deterministic, so the floor is a hard regression gate.
  DrivenShape pipe_shape;
  pipe_shape.nodes = 2;
  pipe_shape.workers_per_node = 256;
  pipe_shape.ops_per_worker = std::max(12, static_cast<int>(48 * scale));
  PipelineRunResult pipe_d1 = RunPipelineStorm(1, pipe_shape);
  PipelineRunResult pipe_d2 = RunPipelineStorm(2, pipe_shape);
  PipelineRunResult pipe_d4 = RunPipelineStorm(4, pipe_shape);
  PipelineRunResult pipe_d8 = RunPipelineStorm(8, pipe_shape);
  for (const PipelineRunResult* r : {&pipe_d2, &pipe_d4, &pipe_d8}) {
    HM_CHECK_MSG(pipe_d1.checksum == r->checksum,
                 "pipelining changed committed log content");
    HM_CHECK_MSG(pipe_d1.next_seqnum == r->next_seqnum,
                 "pipelining changed the committed record count");
    HM_CHECK(pipe_d1.appends == r->appends);
  }
  HM_CHECK_MSG(pipe_d1.rounds_overlapped == 0, "serial engine overlapped rounds");
  auto pipe_tput = [](const PipelineRunResult& r) {
    return static_cast<double>(r.appends) / ToSecondsDouble(r.end_time);
  };
  double pipe_d1_tput = pipe_tput(pipe_d1);
  double pipe_d2_tput = pipe_tput(pipe_d2);
  double pipe_d4_tput = pipe_tput(pipe_d4);
  double pipe_d8_tput = pipe_tput(pipe_d8);
  double pipe_speedup = pipe_d4_tput / pipe_d1_tput;
  HM_CHECK_MSG(pipe_d4.rounds_overlapped > 0, "depth-4 pipeline never overlapped rounds");
  HM_CHECK_MSG(pipe_speedup >= 1.5, "pipelined group commit fell below the 1.5x floor");

  // Section 2e: thread scaling on the shard-parallel workload (wall clock, best-of-3). The
  // two modes must be observably identical — same committed content, same event count — so
  // only the wall-clock ratio is a measurement; everything else is an equivalence assertion.
  const int thread_workers = 4;
  const int thread_clients = 64;
  const int thread_ops = std::max(16, static_cast<int>(160 * scale));
  RunParallelScaling(thread_workers, /*parallel=*/true, 8, 16);  // Warm-up (threads + alloc).
  ParallelScalingResult seq_best, par_best;
  for (int pass = 0; pass < 3; ++pass) {
    ParallelScalingResult seq =
        RunParallelScaling(thread_workers, /*parallel=*/false, thread_clients, thread_ops);
    ParallelScalingResult par =
        RunParallelScaling(thread_workers, /*parallel=*/true, thread_clients, thread_ops);
    HM_CHECK_MSG(seq.checksum == par.checksum,
                 "parallel mode changed committed log content");
    HM_CHECK_MSG(seq.events == par.events, "parallel mode changed the event count");
    HM_CHECK(seq.appends == par.appends);
    if (pass == 0) {
      seq_best = seq;
      par_best = par;
      continue;
    }
    HM_CHECK_MSG(seq.checksum == seq_best.checksum, "thread-scaling passes diverged");
    if (seq.seconds < seq_best.seconds) seq_best = seq;
    if (par.seconds < par_best.seconds) par_best = par;
  }
  double seq_eps = static_cast<double>(seq_best.events) / seq_best.seconds;
  double par_eps = static_cast<double>(par_best.events) / par_best.seconds;
  double thread_speedup = par_eps / seq_eps;
  unsigned hardware_threads = std::thread::hardware_concurrency();
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr bool sanitized = true;
#else
  constexpr bool sanitized = false;
#endif
  // The >= 3.0x wall-clock floor is a hard gate only where the hardware can express it: the
  // workers need real cores (2x headroom over the worker count so the barrier protocol is
  // not fighting the OS for them), no sanitizer instrumentation, and the full-scale
  // workload (the smoke scale is too small to amortize thread start-up). Everywhere else
  // the measured numbers are still recorded — see gate_enforced in BENCH_hotpath.json.
  const bool thread_gate_armed =
      !sanitized && hardware_threads >= 2u * static_cast<unsigned>(thread_workers) &&
      scale >= 1.0;
  if (thread_gate_armed) {
    HM_CHECK_MSG(thread_speedup >= 3.0, "thread scaling fell below the 3.0x floor");
  }

  // Section 2d: the node-local read cache on the Halfmoon-read log-free read mix (1 write
  // per 8 reads over shared objects). Cache-off is the reference; the cache must cut
  // simulated completion time, and the hit rate is the headline number.
  DrivenShape cache_shape;
  cache_shape.nodes = 4;
  cache_shape.workers_per_node = 16;
  cache_shape.ops_per_worker = std::max(32, static_cast<int>(128 * scale));
  CacheRunResult cache_on = RunReadCache(/*cache_enabled=*/true, cache_shape);
  CacheRunResult cache_off = RunReadCache(/*cache_enabled=*/false, cache_shape);
  HM_CHECK_MSG(cache_off.cache_hits == 0 && cache_off.cache_misses == 0,
               "read cache counters moved with the cache disabled");
  double cache_hit_rate =
      static_cast<double>(cache_on.cache_hits) /
      static_cast<double>(std::max<int64_t>(1, cache_on.cache_hits + cache_on.cache_misses));
  double cache_time_ratio =
      ToSecondsDouble(cache_off.end_time) / ToSecondsDouble(cache_on.end_time);
  // Also deterministic: the log-free read mix must hit the cache at least 60% of the time.
  HM_CHECK_MSG(cache_hit_rate >= 0.6, "read-cache hit rate fell below the 60% floor");

  // Section 3: tag interning and frontier micro-sections.
  TagInternResult intern = RunTagInternMicro(intern_iters);
  FrontierResult frontier = RunFrontierMicro(frontier_iters);

  // Section 4: index-propagation coalescing on a real cluster. The reference run must be
  // observably identical (bit-identical virtual time and final replica state).
  int appends_per_node = std::max(16, static_cast<int>(64 * scale));
  PropagationResult coalesced = RunPropagation(/*coalesce=*/true, appends_per_node);
  PropagationResult reference = RunPropagation(/*coalesce=*/false, appends_per_node);
  HM_CHECK_MSG(coalesced.end_time == reference.end_time &&
                   coalesced.indexed_upto == reference.indexed_upto,
               "coalesced propagation changed observable simulation state");
  double coalescing_ratio = static_cast<double>(coalesced.commits) /
                            static_cast<double>(std::max<int64_t>(1, coalesced.ticks));

  EventResult base_events = RunLegacyEvents(event_total, kEventBatch);
  EventResult opt_events = RunOptimizedEvents(event_total, kEventBatch);

  // Section 5: binary-heap reference vs timer wheel on the same multi-level delay storm.
  EventResult pq_events = RunSchedulerEvents(sim::QueueMode::kPriorityQueue, event_total,
                                             kEventBatch);
  EventResult wheel_events = RunSchedulerEvents(sim::QueueMode::kTimerWheel, event_total,
                                                kEventBatch);

  AuditResult audit = RunZeroCopyAudit();
  HM_CHECK_MSG(audit.copies == 0, "read path copied a record");

  // Section 6: the online advisor over a drifting million-object keyspace (gates inside).
  AdvisorDriftResult drift = RunAdvisorDrift(scale);

  double base_ops = static_cast<double>(base.ops) / base.seconds;
  double opt_ops = static_cast<double>(opt.ops) / opt.seconds;
  double pr1_ops = static_cast<double>(pr1_res.ops) / pr1_res.seconds;
  double opt_heavy_ops = static_cast<double>(opt_heavy.ops) / opt_heavy.seconds;
  double base_eps = static_cast<double>(base_events.events) / base_events.seconds;
  double opt_eps = static_cast<double>(opt_events.events) / opt_events.seconds;
  double pq_eps = static_cast<double>(pq_events.events) / pq_events.seconds;
  double wheel_eps = static_cast<double>(wheel_events.events) / wheel_events.seconds;
  double pr2_ops = static_cast<double>(pr2_driven.sim_ops) / pr2_driven.seconds;
  double cur_ops = static_cast<double>(cur_driven.sim_ops) / cur_driven.seconds;
  double pr2_epo = static_cast<double>(pr2_driven.events) /
                   static_cast<double>(std::max<uint64_t>(1, pr2_driven.sim_ops));
  double cur_epo = static_cast<double>(cur_driven.events) /
                   static_cast<double>(std::max<uint64_t>(1, cur_driven.sim_ops));
  double occupancy = static_cast<double>(cur_driven.batched_requests) /
                     static_cast<double>(std::max<int64_t>(1, cur_driven.append_rounds));

  std::printf("  log ops:     seed %.0f ops/s, current %.0f ops/s (%.2fx)\n", base_ops,
              opt_ops, opt_ops / base_ops);
  std::printf("  log-heavy (struct): pr1 %.0f ops/s, current %.0f ops/s (%.2fx)\n", pr1_ops,
              opt_heavy_ops, opt_heavy_ops / pr1_ops);
  std::printf("  log-heavy (driven): pr2 %.0f ops/s (%.2f ev/op), current %.0f ops/s"
              " (%.2f ev/op) (%.2fx)\n",
              pr2_ops, pr2_epo, cur_ops, cur_epo, cur_ops / pr2_ops);
  std::printf("  group commit: %lld requests over %lld rounds (%.2f occupancy)\n",
              static_cast<long long>(cur_driven.batched_requests),
              static_cast<long long>(cur_driven.append_rounds), occupancy);
  std::printf("  shard scaling: 1 shard %.0f appends/vsec, 4 shards %.0f appends/vsec"
              " (%.2fx)\n",
              one_shard_tput, four_shard_tput, shard_speedup);
  std::printf("  pipeline:    depth 1/2/4/8 = %.0f/%.0f/%.0f/%.0f appends/vsec (d4 %.2fx);"
              " max in-flight %lld, %lld overlapped rounds, controller +%lld/-%lld depth"
              " %lld/%lld window\n",
              pipe_d1_tput, pipe_d2_tput, pipe_d4_tput, pipe_d8_tput, pipe_speedup,
              static_cast<long long>(pipe_d4.max_inflight),
              static_cast<long long>(pipe_d4.rounds_overlapped),
              static_cast<long long>(pipe_d4.ctrl_raised),
              static_cast<long long>(pipe_d4.ctrl_lowered),
              static_cast<long long>(pipe_d4.ctrl_widened),
              static_cast<long long>(pipe_d4.ctrl_narrowed));
  std::printf("  thread scaling: 1 thread %.0f ev/s, %d threads %.0f ev/s (%.2fx wall,"
              " %llu windows, %llu msgs, hw=%u, gate %s)\n",
              seq_eps, thread_workers, par_eps, thread_speedup,
              static_cast<unsigned long long>(par_best.windows),
              static_cast<unsigned long long>(par_best.messages), hardware_threads,
              thread_gate_armed ? "enforced" : "recorded only");
  std::printf("  read cache:  %.1f%% hit rate (%lld hits, %lld misses), %.2fx less"
              " simulated time; index-local reads %lld, storage reads %lld\n",
              cache_hit_rate * 100.0, static_cast<long long>(cache_on.cache_hits),
              static_cast<long long>(cache_on.cache_misses), cache_time_ratio,
              static_cast<long long>(cache_on.reads_index_local),
              static_cast<long long>(cache_on.reads_storage));
  std::printf("  timer wheel: pq %.0f ev/s, wheel %.0f ev/s (%.2fx)\n", pq_eps, wheel_eps,
              wheel_eps / pq_eps);
  std::printf("  tag intern:  string %.1f ns/op, interned %.1f ns/op (%.2fx); %lld requests"
              " -> %zu names\n",
              intern.string_ns, intern.interned_ns, intern.string_ns / intern.interned_ns,
              static_cast<long long>(intern.intern_requests), intern.distinct_tags);
  std::printf("  frontier:    scan %.1f ns/op, incremental %.1f ns/op (%.0fx)\n",
              frontier.scan_ns, frontier.incremental_ns,
              frontier.scan_ns / frontier.incremental_ns);
  std::printf("  propagation: %lld commits -> %lld wake-ups (%.2fx coalescing)\n",
              static_cast<long long>(coalesced.commits),
              static_cast<long long>(coalesced.ticks), coalescing_ratio);
  std::printf("  events:      baseline %.0f ev/s, optimized %.0f ev/s (%.2fx)\n", base_eps,
              opt_eps, opt_eps / base_eps);
  std::printf("  zero-copy:   read_record_shared=%lld read_record_copies=%lld\n",
              static_cast<long long>(audit.shared), static_cast<long long>(audit.copies));
  std::printf("  advisor drift: %lld objects (%lld hot), advisor %lld B vs static-read"
              " %lld B / static-write %lld B (%.2fx / %.2fx), %lld switches, %lld ticks,"
              " sketch %zu B, %.2fs\n",
              static_cast<long long>(drift.objects),
              static_cast<long long>(drift.hot_objects),
              static_cast<long long>(drift.advisor_bytes),
              static_cast<long long>(drift.static_read_bytes),
              static_cast<long long>(drift.static_write_bytes),
              static_cast<double>(drift.static_read_bytes) /
                  static_cast<double>(drift.advisor_bytes),
              static_cast<double>(drift.static_write_bytes) /
                  static_cast<double>(drift.advisor_bytes),
              static_cast<long long>(drift.switches),
              static_cast<long long>(drift.sweep_ticks), drift.sketch_bytes,
              drift.wall_seconds);

  FILE* json = std::fopen("BENCH_hotpath.json", "w");
  HM_CHECK(json != nullptr);
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"hotpath\",\n"
               "  \"baseline\": {\"sim_ops_per_sec\": %.1f, \"events_per_sec\": %.1f,\n"
               "               \"log_ops\": %llu, \"events\": %llu},\n"
               "  \"optimized\": {\"sim_ops_per_sec\": %.1f, \"events_per_sec\": %.1f,\n"
               "                \"log_ops\": %llu, \"events\": %llu},\n"
               "  \"speedup_sim_ops\": %.3f,\n"
               "  \"speedup_events\": %.3f,\n"
               "  \"log_heavy_struct\": {\"pr1_sim_ops_per_sec\": %.1f,\n"
               "                \"optimized_sim_ops_per_sec\": %.1f, \"log_ops\": %llu},\n"
               "  \"speedup_vs_pr1\": %.3f,\n"
               "  \"log_heavy\": {\"pr2_sim_ops_per_sec\": %.1f,\n"
               "                \"optimized_sim_ops_per_sec\": %.1f, \"sim_ops\": %llu,\n"
               "                \"pr2_events_per_op\": %.2f, \"optimized_events_per_op\": %.2f,\n"
               "                \"append_rounds\": %lld, \"batched_requests\": %lld,\n"
               "                \"batch_occupancy\": %.2f},\n"
               "  \"speedup_vs_pr2\": %.3f,\n"
               "  \"shard_scaling\": {\"one_shard_appends_per_vsec\": %.1f,\n"
               "                   \"four_shard_appends_per_vsec\": %.1f,\n"
               "                   \"speedup\": %.3f, \"appends\": %llu,\n"
               "                   \"one_shard_rounds\": %lld, \"four_shard_rounds\": %lld},\n"
               "  \"pipeline\": {\"depth1_appends_per_vsec\": %.1f,\n"
               "               \"depth2_appends_per_vsec\": %.1f,\n"
               "               \"depth4_appends_per_vsec\": %.1f,\n"
               "               \"depth8_appends_per_vsec\": %.1f, \"speedup\": %.3f,\n"
               "               \"appends\": %llu, \"depth4_rounds\": %lld,\n"
               "               \"rounds_overlapped\": %lld, \"max_inflight\": %lld,\n"
               "               \"ctrl_depth_raised\": %lld, \"ctrl_depth_lowered\": %lld,\n"
               "               \"ctrl_window_widened\": %lld, \"ctrl_window_narrowed\": %lld,\n"
               "               \"gate\": \"speedup >= 1.5, checksum depth-invariant\"},\n"
               "  \"thread_scaling\": {\"single_events_per_sec\": %.1f,\n"
               "                    \"threads_events_per_sec\": %.1f, \"workers\": %d,\n"
               "                    \"speedup_wall\": %.3f, \"events\": %llu,\n"
               "                    \"windows\": %llu, \"messages_routed\": %llu,\n"
               "                    \"hardware_threads\": %u, \"gate_enforced\": %s},\n"
               "  \"read_cache\": {\"hit_rate\": %.3f, \"hits\": %lld, \"misses\": %lld,\n"
               "                 \"sim_time_ratio\": %.3f, \"reads_index_local\": %lld,\n"
               "                 \"reads_storage\": %lld},\n"
               "  \"timer_wheel\": {\"pq_events_per_sec\": %.1f,\n"
               "                  \"wheel_events_per_sec\": %.1f, \"speedup\": %.3f},\n"
               "  \"tag_intern\": {\"string_ns_per_op\": %.2f, \"interned_ns_per_op\": %.2f,\n"
               "                 \"speedup\": %.3f, \"intern_requests\": %lld,\n"
               "                 \"distinct_tags\": %zu},\n"
               "  \"frontier\": {\"scan_ns_per_op\": %.1f, \"incremental_ns_per_op\": %.2f,\n"
               "               \"speedup\": %.1f, \"live_inits\": %zu},\n"
               "  \"propagation\": {\"commits\": %lld, \"ticks\": %lld,\n"
               "                  \"coalescing_ratio\": %.3f},\n"
               "  \"advisor_drift\": {\"objects\": %lld, \"hot_objects\": %lld,\n"
               "                   \"advisor_bytes\": %lld, \"static_read_bytes\": %lld,\n"
               "                   \"static_write_bytes\": %lld, \"switches\": %lld,\n"
               "                   \"sweep_ticks\": %lld, \"ids_per_tick\": %lld,\n"
               "                   \"sketch_bytes\": %zu, \"gate\": \"advisor < both statics\"},\n"
               "  \"read_record_shared\": %lld,\n"
               "  \"read_record_copies\": %lld\n"
               "}\n",
               base_ops, base_eps, static_cast<unsigned long long>(base.ops),
               static_cast<unsigned long long>(base_events.events), opt_ops, opt_eps,
               static_cast<unsigned long long>(opt.ops),
               static_cast<unsigned long long>(opt_events.events), opt_ops / base_ops,
               opt_eps / base_eps, pr1_ops, opt_heavy_ops,
               static_cast<unsigned long long>(opt_heavy.ops), opt_heavy_ops / pr1_ops,
               pr2_ops, cur_ops, static_cast<unsigned long long>(cur_driven.sim_ops),
               pr2_epo, cur_epo, static_cast<long long>(cur_driven.append_rounds),
               static_cast<long long>(cur_driven.batched_requests), occupancy,
               cur_ops / pr2_ops, one_shard_tput, four_shard_tput, shard_speedup,
               static_cast<unsigned long long>(four_shard.appends),
               static_cast<long long>(one_shard.append_rounds),
               static_cast<long long>(four_shard.append_rounds),
               pipe_d1_tput, pipe_d2_tput, pipe_d4_tput, pipe_d8_tput, pipe_speedup,
               static_cast<unsigned long long>(pipe_d4.appends),
               static_cast<long long>(pipe_d4.append_rounds),
               static_cast<long long>(pipe_d4.rounds_overlapped),
               static_cast<long long>(pipe_d4.max_inflight),
               static_cast<long long>(pipe_d4.ctrl_raised),
               static_cast<long long>(pipe_d4.ctrl_lowered),
               static_cast<long long>(pipe_d4.ctrl_widened),
               static_cast<long long>(pipe_d4.ctrl_narrowed),
               seq_eps, par_eps, thread_workers, thread_speedup,
               static_cast<unsigned long long>(par_best.events),
               static_cast<unsigned long long>(par_best.windows),
               static_cast<unsigned long long>(par_best.messages), hardware_threads,
               thread_gate_armed ? "true" : "false", cache_hit_rate,
               static_cast<long long>(cache_on.cache_hits),
               static_cast<long long>(cache_on.cache_misses), cache_time_ratio,
               static_cast<long long>(cache_on.reads_index_local),
               static_cast<long long>(cache_on.reads_storage),
               pq_eps, wheel_eps, wheel_eps / pq_eps,
               intern.string_ns, intern.interned_ns, intern.string_ns / intern.interned_ns,
               static_cast<long long>(intern.intern_requests), intern.distinct_tags,
               frontier.scan_ns, frontier.incremental_ns,
               frontier.scan_ns / frontier.incremental_ns, frontier.live_inits,
               static_cast<long long>(coalesced.commits),
               static_cast<long long>(coalesced.ticks), coalescing_ratio,
               static_cast<long long>(drift.objects),
               static_cast<long long>(drift.hot_objects),
               static_cast<long long>(drift.advisor_bytes),
               static_cast<long long>(drift.static_read_bytes),
               static_cast<long long>(drift.static_write_bytes),
               static_cast<long long>(drift.switches),
               static_cast<long long>(drift.sweep_ticks),
               static_cast<long long>(drift.ids_per_tick), drift.sketch_bytes,
               static_cast<long long>(audit.shared), static_cast<long long>(audit.copies));
  std::fclose(json);
  std::printf("  wrote BENCH_hotpath.json\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  halfmoon::bench::Report();
  return 0;
}
