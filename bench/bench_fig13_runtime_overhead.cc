// Figure 13: runtime overhead — median request latency vs. read ratio at different request
// rates (§6.3 setup: 10 operations per request, 256 B objects, GC every 10 s).
//
// Expected shape: Halfmoon-read's latency falls as the read ratio rises (log-free reads get
// cheaper than logged writes); Halfmoon-write's rises; the curves cross slightly above a read
// ratio of 2/3 (C_w ≈ 2 C_r, §4.6); the crossover is insensitive to the request rate; both
// protocols sit 1.2-1.5x below Boki everywhere.

#include "bench/bench_common.h"
#include "src/core/advisor.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

namespace halfmoon::bench {
namespace {

double RunMedianMs(core::ProtocolKind protocol, double rate, double read_ratio) {
  ExperimentOptions options;
  options.protocol = protocol;
  ExperimentWorld world(options);

  workloads::SyntheticConfig config;
  config.num_objects = 10000;
  config.value_bytes = 256;
  config.ops_per_request = 10;
  config.read_ratio = read_ratio;
  workloads::SyntheticWorkload synthetic(&world.runtime(), config);
  synthetic.Setup();

  workloads::LoadGenConfig load;
  load.requests_per_second = rate;
  load.warmup = Seconds(2);
  load.duration = Scaled(Seconds(8));
  workloads::LoadGenerator generator(
      &world.runtime(), load, [&synthetic]() {
        return std::make_pair(workloads::SyntheticWorkload::FunctionName(),
                              synthetic.NextInput());
      });
  generator.RunToCompletion();
  return generator.latency().MedianMs();
}

void RunPanel(double rate) {
  std::printf("-- %d requests/s --\n", static_cast<int>(rate));
  metrics::TablePrinter table(
      {"read_ratio", "Boki_ms", "HM-read_ms", "HM-write_ms", "winner"});
  for (double ratio : {0.1, 0.3, 0.5, 2.0 / 3.0, 0.8, 0.9}) {
    double boki = RunMedianMs(core::ProtocolKind::kBoki, rate, ratio);
    double hmr = RunMedianMs(core::ProtocolKind::kHalfmoonRead, rate, ratio);
    double hmw = RunMedianMs(core::ProtocolKind::kHalfmoonWrite, rate, ratio);
    table.AddRow({Fmt(ratio, 2), Fmt(boki, 1), Fmt(hmr, 1), Fmt(hmw, 1),
                  hmr <= hmw ? "HM-read" : "HM-write"});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace halfmoon::bench

int main() {
  std::printf("== Figure 13: median latency vs read ratio at different request rates ==\n");
  halfmoon::core::WorkloadProfile profile;
  std::printf("   (advisor runtime boundary, Section 4.6: read ratio %.3f)\n\n",
              halfmoon::core::RuntimeBoundaryReadRatio(profile));
  for (double rate : {100.0, 200.0, 300.0, 400.0}) {
    halfmoon::bench::RunPanel(rate);
  }
  return 0;
}
