file(REMOVE_RECURSE
  "CMakeFiles/core_basic_test.dir/core/protocol_basic_test.cc.o"
  "CMakeFiles/core_basic_test.dir/core/protocol_basic_test.cc.o.d"
  "core_basic_test"
  "core_basic_test.pdb"
  "core_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
