# Empty dependencies file for core_basic_test.
# This may be replaced when dependencies are built.
