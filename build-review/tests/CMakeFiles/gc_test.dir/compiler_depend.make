# Empty compiler generated dependencies file for gc_test.
# This may be replaced when dependencies are built.
