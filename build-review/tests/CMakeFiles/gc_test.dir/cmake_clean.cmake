file(REMOVE_RECURSE
  "CMakeFiles/gc_test.dir/core/gc_test.cc.o"
  "CMakeFiles/gc_test.dir/core/gc_test.cc.o.d"
  "gc_test"
  "gc_test.pdb"
  "gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
