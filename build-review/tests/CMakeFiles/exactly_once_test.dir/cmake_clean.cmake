file(REMOVE_RECURSE
  "CMakeFiles/exactly_once_test.dir/core/exactly_once_test.cc.o"
  "CMakeFiles/exactly_once_test.dir/core/exactly_once_test.cc.o.d"
  "exactly_once_test"
  "exactly_once_test.pdb"
  "exactly_once_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exactly_once_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
