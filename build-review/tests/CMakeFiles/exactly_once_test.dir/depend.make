# Empty dependencies file for exactly_once_test.
# This may be replaced when dependencies are built.
