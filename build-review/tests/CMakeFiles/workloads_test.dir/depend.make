# Empty dependencies file for workloads_test.
# This may be replaced when dependencies are built.
