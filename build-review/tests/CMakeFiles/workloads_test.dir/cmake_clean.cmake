file(REMOVE_RECURSE
  "CMakeFiles/workloads_test.dir/workloads/applications_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/applications_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/args_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/args_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/synthetic_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/synthetic_test.cc.o.d"
  "workloads_test"
  "workloads_test.pdb"
  "workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
