file(REMOVE_RECURSE
  "CMakeFiles/auto_switch_test.dir/core/auto_switch_test.cc.o"
  "CMakeFiles/auto_switch_test.dir/core/auto_switch_test.cc.o.d"
  "auto_switch_test"
  "auto_switch_test.pdb"
  "auto_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
