# Empty compiler generated dependencies file for auto_switch_test.
# This may be replaced when dependencies are built.
