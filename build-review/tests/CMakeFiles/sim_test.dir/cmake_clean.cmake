file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/scheduler_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/scheduler_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/service_station_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/service_station_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/sync_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/sync_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/task_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/task_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
