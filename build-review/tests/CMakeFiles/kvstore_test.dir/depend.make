# Empty dependencies file for kvstore_test.
# This may be replaced when dependencies are built.
