file(REMOVE_RECURSE
  "CMakeFiles/kvstore_test.dir/kvstore/kv_client_test.cc.o"
  "CMakeFiles/kvstore_test.dir/kvstore/kv_client_test.cc.o.d"
  "CMakeFiles/kvstore_test.dir/kvstore/kv_state_test.cc.o"
  "CMakeFiles/kvstore_test.dir/kvstore/kv_state_test.cc.o.d"
  "kvstore_test"
  "kvstore_test.pdb"
  "kvstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
