# Empty dependencies file for switching_test.
# This may be replaced when dependencies are built.
