file(REMOVE_RECURSE
  "CMakeFiles/switching_test.dir/core/switching_test.cc.o"
  "CMakeFiles/switching_test.dir/core/switching_test.cc.o.d"
  "switching_test"
  "switching_test.pdb"
  "switching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
