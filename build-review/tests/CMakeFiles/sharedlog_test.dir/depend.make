# Empty dependencies file for sharedlog_test.
# This may be replaced when dependencies are built.
