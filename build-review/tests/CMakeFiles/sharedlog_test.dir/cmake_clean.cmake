file(REMOVE_RECURSE
  "CMakeFiles/sharedlog_test.dir/sharedlog/append_batcher_test.cc.o"
  "CMakeFiles/sharedlog_test.dir/sharedlog/append_batcher_test.cc.o.d"
  "CMakeFiles/sharedlog_test.dir/sharedlog/log_client_test.cc.o"
  "CMakeFiles/sharedlog_test.dir/sharedlog/log_client_test.cc.o.d"
  "CMakeFiles/sharedlog_test.dir/sharedlog/log_space_test.cc.o"
  "CMakeFiles/sharedlog_test.dir/sharedlog/log_space_test.cc.o.d"
  "CMakeFiles/sharedlog_test.dir/sharedlog/tag_registry_test.cc.o"
  "CMakeFiles/sharedlog_test.dir/sharedlog/tag_registry_test.cc.o.d"
  "sharedlog_test"
  "sharedlog_test.pdb"
  "sharedlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharedlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
