file(REMOVE_RECURSE
  "CMakeFiles/advisor_test.dir/core/advisor_test.cc.o"
  "CMakeFiles/advisor_test.dir/core/advisor_test.cc.o.d"
  "advisor_test"
  "advisor_test.pdb"
  "advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
