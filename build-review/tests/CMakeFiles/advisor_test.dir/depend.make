# Empty dependencies file for advisor_test.
# This may be replaced when dependencies are built.
