file(REMOVE_RECURSE
  "CMakeFiles/consistency_test.dir/core/consistency_test.cc.o"
  "CMakeFiles/consistency_test.dir/core/consistency_test.cc.o.d"
  "consistency_test"
  "consistency_test.pdb"
  "consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
