# Empty dependencies file for consistency_test.
# This may be replaced when dependencies are built.
