file(REMOVE_RECURSE
  "CMakeFiles/runtime_test.dir/runtime/cluster_test.cc.o"
  "CMakeFiles/runtime_test.dir/runtime/cluster_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/runtime/frontier_test.cc.o"
  "CMakeFiles/runtime_test.dir/runtime/frontier_test.cc.o.d"
  "runtime_test"
  "runtime_test.pdb"
  "runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
