file(REMOVE_RECURSE
  "CMakeFiles/peer_race_test.dir/core/peer_race_test.cc.o"
  "CMakeFiles/peer_race_test.dir/core/peer_race_test.cc.o.d"
  "peer_race_test"
  "peer_race_test.pdb"
  "peer_race_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
