# Empty compiler generated dependencies file for peer_race_test.
# This may be replaced when dependencies are built.
