file(REMOVE_RECURSE
  "CMakeFiles/invoke_all_test.dir/core/invoke_all_test.cc.o"
  "CMakeFiles/invoke_all_test.dir/core/invoke_all_test.cc.o.d"
  "invoke_all_test"
  "invoke_all_test.pdb"
  "invoke_all_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invoke_all_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
