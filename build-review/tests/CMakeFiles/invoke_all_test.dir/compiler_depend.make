# Empty compiler generated dependencies file for invoke_all_test.
# This may be replaced when dependencies are built.
