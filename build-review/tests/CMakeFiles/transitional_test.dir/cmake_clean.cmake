file(REMOVE_RECURSE
  "CMakeFiles/transitional_test.dir/core/transitional_test.cc.o"
  "CMakeFiles/transitional_test.dir/core/transitional_test.cc.o.d"
  "transitional_test"
  "transitional_test.pdb"
  "transitional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transitional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
