# Empty dependencies file for transitional_test.
# This may be replaced when dependencies are built.
