# Empty compiler generated dependencies file for transitional_test.
# This may be replaced when dependencies are built.
