file(REMOVE_RECURSE
  "CMakeFiles/ordered_writes_test.dir/core/ordered_writes_test.cc.o"
  "CMakeFiles/ordered_writes_test.dir/core/ordered_writes_test.cc.o.d"
  "ordered_writes_test"
  "ordered_writes_test.pdb"
  "ordered_writes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_writes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
