# Empty compiler generated dependencies file for ordered_writes_test.
# This may be replaced when dependencies are built.
