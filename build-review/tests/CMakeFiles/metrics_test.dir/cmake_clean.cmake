file(REMOVE_RECURSE
  "CMakeFiles/metrics_test.dir/metrics/latency_recorder_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/latency_recorder_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/storage_sampler_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/storage_sampler_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/table_printer_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/table_printer_test.cc.o.d"
  "metrics_test"
  "metrics_test.pdb"
  "metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
