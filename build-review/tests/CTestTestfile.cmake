# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/metrics_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_basic_test[1]_include.cmake")
include("/root/repo/build-review/tests/exactly_once_test[1]_include.cmake")
include("/root/repo/build-review/tests/peer_race_test[1]_include.cmake")
include("/root/repo/build-review/tests/consistency_test[1]_include.cmake")
include("/root/repo/build-review/tests/gc_test[1]_include.cmake")
include("/root/repo/build-review/tests/switching_test[1]_include.cmake")
include("/root/repo/build-review/tests/advisor_test[1]_include.cmake")
include("/root/repo/build-review/tests/sharedlog_test[1]_include.cmake")
include("/root/repo/build-review/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build-review/tests/runtime_test[1]_include.cmake")
include("/root/repo/build-review/tests/invoke_all_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads_test[1]_include.cmake")
include("/root/repo/build-review/tests/auto_switch_test[1]_include.cmake")
include("/root/repo/build-review/tests/ordered_writes_test[1]_include.cmake")
include("/root/repo/build-review/tests/transitional_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
