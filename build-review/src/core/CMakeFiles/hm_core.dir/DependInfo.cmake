
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/hm_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/hm_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/auto_switch.cc" "src/core/CMakeFiles/hm_core.dir/auto_switch.cc.o" "gcc" "src/core/CMakeFiles/hm_core.dir/auto_switch.cc.o.d"
  "/root/repo/src/core/gc_service.cc" "src/core/CMakeFiles/hm_core.dir/gc_service.cc.o" "gcc" "src/core/CMakeFiles/hm_core.dir/gc_service.cc.o.d"
  "/root/repo/src/core/log_steps.cc" "src/core/CMakeFiles/hm_core.dir/log_steps.cc.o" "gcc" "src/core/CMakeFiles/hm_core.dir/log_steps.cc.o.d"
  "/root/repo/src/core/protocols.cc" "src/core/CMakeFiles/hm_core.dir/protocols.cc.o" "gcc" "src/core/CMakeFiles/hm_core.dir/protocols.cc.o.d"
  "/root/repo/src/core/ssf_runtime.cc" "src/core/CMakeFiles/hm_core.dir/ssf_runtime.cc.o" "gcc" "src/core/CMakeFiles/hm_core.dir/ssf_runtime.cc.o.d"
  "/root/repo/src/core/switch_manager.cc" "src/core/CMakeFiles/hm_core.dir/switch_manager.cc.o" "gcc" "src/core/CMakeFiles/hm_core.dir/switch_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/hm_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sharedlog/CMakeFiles/hm_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kvstore/CMakeFiles/hm_kvstore.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/hm_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/hm_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
