file(REMOVE_RECURSE
  "libhm_core.a"
)
