file(REMOVE_RECURSE
  "CMakeFiles/hm_core.dir/advisor.cc.o"
  "CMakeFiles/hm_core.dir/advisor.cc.o.d"
  "CMakeFiles/hm_core.dir/auto_switch.cc.o"
  "CMakeFiles/hm_core.dir/auto_switch.cc.o.d"
  "CMakeFiles/hm_core.dir/gc_service.cc.o"
  "CMakeFiles/hm_core.dir/gc_service.cc.o.d"
  "CMakeFiles/hm_core.dir/log_steps.cc.o"
  "CMakeFiles/hm_core.dir/log_steps.cc.o.d"
  "CMakeFiles/hm_core.dir/protocols.cc.o"
  "CMakeFiles/hm_core.dir/protocols.cc.o.d"
  "CMakeFiles/hm_core.dir/ssf_runtime.cc.o"
  "CMakeFiles/hm_core.dir/ssf_runtime.cc.o.d"
  "CMakeFiles/hm_core.dir/switch_manager.cc.o"
  "CMakeFiles/hm_core.dir/switch_manager.cc.o.d"
  "libhm_core.a"
  "libhm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
