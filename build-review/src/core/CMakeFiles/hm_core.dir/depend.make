# Empty dependencies file for hm_core.
# This may be replaced when dependencies are built.
