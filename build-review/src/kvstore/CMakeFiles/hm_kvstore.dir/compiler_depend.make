# Empty compiler generated dependencies file for hm_kvstore.
# This may be replaced when dependencies are built.
