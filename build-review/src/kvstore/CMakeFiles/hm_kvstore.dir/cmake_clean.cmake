file(REMOVE_RECURSE
  "CMakeFiles/hm_kvstore.dir/kv_client.cc.o"
  "CMakeFiles/hm_kvstore.dir/kv_client.cc.o.d"
  "CMakeFiles/hm_kvstore.dir/kv_state.cc.o"
  "CMakeFiles/hm_kvstore.dir/kv_state.cc.o.d"
  "libhm_kvstore.a"
  "libhm_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
