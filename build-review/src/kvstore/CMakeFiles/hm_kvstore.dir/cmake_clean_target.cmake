file(REMOVE_RECURSE
  "libhm_kvstore.a"
)
