# Empty compiler generated dependencies file for hm_sim.
# This may be replaced when dependencies are built.
