file(REMOVE_RECURSE
  "CMakeFiles/hm_sim.dir/scheduler.cc.o"
  "CMakeFiles/hm_sim.dir/scheduler.cc.o.d"
  "libhm_sim.a"
  "libhm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
