file(REMOVE_RECURSE
  "libhm_sim.a"
)
