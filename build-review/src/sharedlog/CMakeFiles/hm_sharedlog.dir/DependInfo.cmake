
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sharedlog/append_batcher.cc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/append_batcher.cc.o" "gcc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/append_batcher.cc.o.d"
  "/root/repo/src/sharedlog/log_client.cc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/log_client.cc.o" "gcc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/log_client.cc.o.d"
  "/root/repo/src/sharedlog/log_space.cc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/log_space.cc.o" "gcc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/log_space.cc.o.d"
  "/root/repo/src/sharedlog/tag_registry.cc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/tag_registry.cc.o" "gcc" "src/sharedlog/CMakeFiles/hm_sharedlog.dir/tag_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/hm_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/hm_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
