file(REMOVE_RECURSE
  "CMakeFiles/hm_sharedlog.dir/append_batcher.cc.o"
  "CMakeFiles/hm_sharedlog.dir/append_batcher.cc.o.d"
  "CMakeFiles/hm_sharedlog.dir/log_client.cc.o"
  "CMakeFiles/hm_sharedlog.dir/log_client.cc.o.d"
  "CMakeFiles/hm_sharedlog.dir/log_space.cc.o"
  "CMakeFiles/hm_sharedlog.dir/log_space.cc.o.d"
  "CMakeFiles/hm_sharedlog.dir/tag_registry.cc.o"
  "CMakeFiles/hm_sharedlog.dir/tag_registry.cc.o.d"
  "libhm_sharedlog.a"
  "libhm_sharedlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_sharedlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
