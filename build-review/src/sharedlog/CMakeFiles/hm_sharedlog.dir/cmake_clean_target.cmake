file(REMOVE_RECURSE
  "libhm_sharedlog.a"
)
