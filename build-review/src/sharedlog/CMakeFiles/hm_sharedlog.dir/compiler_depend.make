# Empty compiler generated dependencies file for hm_sharedlog.
# This may be replaced when dependencies are built.
