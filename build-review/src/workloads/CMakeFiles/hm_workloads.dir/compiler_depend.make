# Empty compiler generated dependencies file for hm_workloads.
# This may be replaced when dependencies are built.
