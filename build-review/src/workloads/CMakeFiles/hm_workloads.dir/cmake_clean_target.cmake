file(REMOVE_RECURSE
  "libhm_workloads.a"
)
