file(REMOVE_RECURSE
  "CMakeFiles/hm_workloads.dir/applications.cc.o"
  "CMakeFiles/hm_workloads.dir/applications.cc.o.d"
  "CMakeFiles/hm_workloads.dir/args.cc.o"
  "CMakeFiles/hm_workloads.dir/args.cc.o.d"
  "CMakeFiles/hm_workloads.dir/loadgen.cc.o"
  "CMakeFiles/hm_workloads.dir/loadgen.cc.o.d"
  "CMakeFiles/hm_workloads.dir/synthetic.cc.o"
  "CMakeFiles/hm_workloads.dir/synthetic.cc.o.d"
  "libhm_workloads.a"
  "libhm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
