
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cc" "src/common/CMakeFiles/hm_common.dir/rng.cc.o" "gcc" "src/common/CMakeFiles/hm_common.dir/rng.cc.o.d"
  "/root/repo/src/common/value.cc" "src/common/CMakeFiles/hm_common.dir/value.cc.o" "gcc" "src/common/CMakeFiles/hm_common.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
