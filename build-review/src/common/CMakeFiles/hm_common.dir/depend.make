# Empty dependencies file for hm_common.
# This may be replaced when dependencies are built.
