file(REMOVE_RECURSE
  "libhm_common.a"
)
