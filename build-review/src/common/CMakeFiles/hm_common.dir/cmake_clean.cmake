file(REMOVE_RECURSE
  "CMakeFiles/hm_common.dir/rng.cc.o"
  "CMakeFiles/hm_common.dir/rng.cc.o.d"
  "CMakeFiles/hm_common.dir/value.cc.o"
  "CMakeFiles/hm_common.dir/value.cc.o.d"
  "libhm_common.a"
  "libhm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
