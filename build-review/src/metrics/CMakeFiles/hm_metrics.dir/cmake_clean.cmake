file(REMOVE_RECURSE
  "CMakeFiles/hm_metrics.dir/latency_recorder.cc.o"
  "CMakeFiles/hm_metrics.dir/latency_recorder.cc.o.d"
  "CMakeFiles/hm_metrics.dir/table_printer.cc.o"
  "CMakeFiles/hm_metrics.dir/table_printer.cc.o.d"
  "libhm_metrics.a"
  "libhm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
