# Empty compiler generated dependencies file for hm_metrics.
# This may be replaced when dependencies are built.
