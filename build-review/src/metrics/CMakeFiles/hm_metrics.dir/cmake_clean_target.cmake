file(REMOVE_RECURSE
  "libhm_metrics.a"
)
