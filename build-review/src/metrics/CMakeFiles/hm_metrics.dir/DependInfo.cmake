
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/latency_recorder.cc" "src/metrics/CMakeFiles/hm_metrics.dir/latency_recorder.cc.o" "gcc" "src/metrics/CMakeFiles/hm_metrics.dir/latency_recorder.cc.o.d"
  "/root/repo/src/metrics/table_printer.cc" "src/metrics/CMakeFiles/hm_metrics.dir/table_printer.cc.o" "gcc" "src/metrics/CMakeFiles/hm_metrics.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/hm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
