file(REMOVE_RECURSE
  "CMakeFiles/hm_runtime.dir/cluster.cc.o"
  "CMakeFiles/hm_runtime.dir/cluster.cc.o.d"
  "libhm_runtime.a"
  "libhm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
