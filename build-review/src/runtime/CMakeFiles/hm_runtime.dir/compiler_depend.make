# Empty compiler generated dependencies file for hm_runtime.
# This may be replaced when dependencies are built.
