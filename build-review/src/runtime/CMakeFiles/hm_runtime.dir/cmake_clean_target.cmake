file(REMOVE_RECURSE
  "libhm_runtime.a"
)
