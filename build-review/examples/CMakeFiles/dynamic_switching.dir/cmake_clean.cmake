file(REMOVE_RECURSE
  "CMakeFiles/dynamic_switching.dir/dynamic_switching.cpp.o"
  "CMakeFiles/dynamic_switching.dir/dynamic_switching.cpp.o.d"
  "dynamic_switching"
  "dynamic_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
