# Empty dependencies file for dynamic_switching.
# This may be replaced when dependencies are built.
