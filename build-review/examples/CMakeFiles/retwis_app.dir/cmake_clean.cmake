file(REMOVE_RECURSE
  "CMakeFiles/retwis_app.dir/retwis_app.cpp.o"
  "CMakeFiles/retwis_app.dir/retwis_app.cpp.o.d"
  "retwis_app"
  "retwis_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retwis_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
