# Empty dependencies file for retwis_app.
# This may be replaced when dependencies are built.
