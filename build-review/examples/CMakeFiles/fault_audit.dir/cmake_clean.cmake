file(REMOVE_RECURSE
  "CMakeFiles/fault_audit.dir/fault_audit.cpp.o"
  "CMakeFiles/fault_audit.dir/fault_audit.cpp.o.d"
  "fault_audit"
  "fault_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
