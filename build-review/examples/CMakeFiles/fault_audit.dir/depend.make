# Empty dependencies file for fault_audit.
# This may be replaced when dependencies are built.
