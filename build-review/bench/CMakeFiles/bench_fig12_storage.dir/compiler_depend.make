# Empty compiler generated dependencies file for bench_fig12_storage.
# This may be replaced when dependencies are built.
