file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_storage.dir/bench_fig12_storage.cc.o"
  "CMakeFiles/bench_fig12_storage.dir/bench_fig12_storage.cc.o.d"
  "bench_fig12_storage"
  "bench_fig12_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
