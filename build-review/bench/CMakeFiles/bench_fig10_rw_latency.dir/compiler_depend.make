# Empty compiler generated dependencies file for bench_fig10_rw_latency.
# This may be replaced when dependencies are built.
