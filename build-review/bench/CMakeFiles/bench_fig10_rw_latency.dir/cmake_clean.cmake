file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rw_latency.dir/bench_fig10_rw_latency.cc.o"
  "CMakeFiles/bench_fig10_rw_latency.dir/bench_fig10_rw_latency.cc.o.d"
  "bench_fig10_rw_latency"
  "bench_fig10_rw_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rw_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
