file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_microops.dir/bench_table1_microops.cc.o"
  "CMakeFiles/bench_table1_microops.dir/bench_table1_microops.cc.o.d"
  "bench_table1_microops"
  "bench_table1_microops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_microops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
