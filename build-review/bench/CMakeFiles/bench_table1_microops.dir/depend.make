# Empty dependencies file for bench_table1_microops.
# This may be replaced when dependencies are built.
