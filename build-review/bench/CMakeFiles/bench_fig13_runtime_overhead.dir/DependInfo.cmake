
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_runtime_overhead.cc" "bench/CMakeFiles/bench_fig13_runtime_overhead.dir/bench_fig13_runtime_overhead.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_runtime_overhead.dir/bench_fig13_runtime_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/workloads/CMakeFiles/hm_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/hm_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sharedlog/CMakeFiles/hm_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kvstore/CMakeFiles/hm_kvstore.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/hm_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/hm_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
