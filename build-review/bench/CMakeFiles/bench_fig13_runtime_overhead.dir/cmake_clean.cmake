file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_runtime_overhead.dir/bench_fig13_runtime_overhead.cc.o"
  "CMakeFiles/bench_fig13_runtime_overhead.dir/bench_fig13_runtime_overhead.cc.o.d"
  "bench_fig13_runtime_overhead"
  "bench_fig13_runtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_runtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
