# Empty compiler generated dependencies file for bench_fig13_runtime_overhead.
# This may be replaced when dependencies are built.
