file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_switching.dir/bench_fig14_switching.cc.o"
  "CMakeFiles/bench_fig14_switching.dir/bench_fig14_switching.cc.o.d"
  "bench_fig14_switching"
  "bench_fig14_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
