file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_cost.dir/bench_recovery_cost.cc.o"
  "CMakeFiles/bench_recovery_cost.dir/bench_recovery_cost.cc.o.d"
  "bench_recovery_cost"
  "bench_recovery_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
