# Empty compiler generated dependencies file for bench_recovery_cost.
# This may be replaced when dependencies are built.
