file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_applications.dir/bench_fig11_applications.cc.o"
  "CMakeFiles/bench_fig11_applications.dir/bench_fig11_applications.cc.o.d"
  "bench_fig11_applications"
  "bench_fig11_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
