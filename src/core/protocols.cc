#include "src/core/protocols.h"

#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/core/log_steps.h"
#include "src/kvstore/kv_state.h"
#include "src/sim/sync.h"

namespace halfmoon::core::protocols {

using kvstore::VersionTuple;
using sharedlog::LogRecord;
using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;
using sharedlog::TagId;

namespace {

// Scans the step log fetched at Init for a record with the given op/step, Boki's recovery
// lookup (keyed by step, not by position, because Boki's commit markers are asynchronous and
// may interleave arbitrarily with other records in the stream). Compares interned op ids.
const LogRecord* FindBokiStep(const Env& env, sharedlog::OpId op, int64_t step) {
  for (const sharedlog::LogRecordPtr& record : env.step_logs) {
    if (record->op == op && record->fields.GetInt("step") == step) {
      return record.get();
    }
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Halfmoon-read (Figure 5)
// ---------------------------------------------------------------------------

sim::Task<Value> HalfmoonReadRead(Env& env, const std::string& key, bool post_switch) {
  env.MaybeCrash("hmr.read.before");
  if (post_switch) {
    Value value = co_await DualRead(env, key);
    env.MaybeCrash("hmr.read.after");
    co_return value;
  }
  // Log-free read: locate the latest write at or before this SSF's cursorTS (Figure 5,
  // line 28). No log record is ever created here.
  TagId write_tag = env.WriteTag(key);
  LogRecordPtr write_log = co_await env.log().ReadPrev(write_tag, env.cursor_ts);
  if (write_log == nullptr) {
    // No committed write precedes the cursor: fall back to the LATEST slot (§5.2 treats it as
    // one more version); for objects never written at all this returns empty.
    std::optional<Value> latest = co_await env.kv().Get(key);
    env.MaybeCrash("hmr.read.after");
    co_return latest.value_or(Value{});
  }
  std::optional<Value> value =
      co_await env.kv().GetVersioned(write_tag, write_log->fields.GetStr("version"));
  // Commit records are only visible after the version exists, and GC keeps every version a
  // running SSF might still read (§4.5) — a miss here is a protocol bug.
  HM_CHECK_MSG(value.has_value(), "Halfmoon-read: committed version missing from the store");
  env.MaybeCrash("hmr.read.after");
  co_return std::move(*value);
}

sim::Task<void> HalfmoonReadWrite(Env& env, const std::string& key, Value value) {
  // The prototype "logs before and after DBWrite" (§4.1): the pre record turns the random
  // version number into a deterministic one, and the post record is the commit point where
  // the write becomes visible in the object's write log (log-after-write, never write-ahead).
  env.step += 1;
  env.MaybeCrash("hmr.write.before");

  FieldMap pre_fields;
  pre_fields.SetStr("op", "write-pre");
  pre_fields.SetInt("step", env.step);
  pre_fields.SetStr("version", env.RandomId());
  env.log().set_append_class(LogAppendClass(ProtocolKind::kHalfmoonRead));
  StepLogResult pre = co_await LogStep(env, sharedlog::NoTags(), std::move(pre_fields));
  const std::string& version = pre.record->fields.GetStr("version");

  // If the commit record already exists the write fully applied in a previous attempt
  // (Figure 5, lines 16-18): adopt it and skip the store update.
  FieldMap post_fields;
  post_fields.SetStr("op", "write");
  post_fields.SetInt("step", env.step);
  post_fields.SetStr("version", version);
  TagId write_tag = env.WriteTag(key);
  if (const LogRecord* cached = PeekNextLog(env);
      cached != nullptr && cached->op == sharedlog::kOpWrite) {
    env.log().set_append_class(LogAppendClass(ProtocolKind::kHalfmoonRead));
    co_await LogStep(env, sharedlog::OneTag(write_tag), std::move(post_fields));
    co_return;
  }

  env.MaybeCrash("hmr.write.after_prelog");
  // Install (or idempotently re-install) the version pinned by the pre record.
  co_await env.kv().PutVersioned(write_tag, version, std::move(value));
  env.MaybeCrash("hmr.write.after_db");
  // Commit: the record appears in the step log and in the object's write log.
  if (!env.drop_commit_append) {  // Faultcheck negative control: lose the commit.
    env.log().set_append_class(LogAppendClass(ProtocolKind::kHalfmoonRead));
    co_await LogStep(env, sharedlog::OneTag(write_tag), std::move(post_fields));
  }
  env.MaybeCrash("hmr.write.after_log");
}

// ---------------------------------------------------------------------------
// Halfmoon-write (Figure 7)
// ---------------------------------------------------------------------------

sim::Task<Value> HalfmoonWriteRead(Env& env, const std::string& key, bool post_switch) {
  env.step += 1;
  env.consecutive_writes = 0;  // Figure 7, line 9.
  env.last_write_key.clear();  // A logged read already pins the order of surrounding writes.

  FieldMap fields;
  fields.SetStr("op", "read");
  fields.SetInt("step", env.step);

  if (const LogRecord* cached = PeekNextLog(env); cached != nullptr) {
    // Replay: recover the previous result from the step log (Figure 7, lines 10-12).
    env.log().set_append_class(LogAppendClass(ProtocolKind::kHalfmoonWrite));
    StepLogResult replayed = co_await LogStep(env, sharedlog::NoTags(), std::move(fields));
    co_return replayed.record->fields.GetStr("data");
  }

  env.MaybeCrash("hmw.read.before");
  Value value;
  if (post_switch) {
    value = co_await DualRead(env, key);
  } else {
    std::optional<Value> latest = co_await env.kv().Get(key);
    value = latest.value_or(Value{});
  }
  env.MaybeCrash("hmw.read.after_db");

  fields.SetStr("data", value);
  env.log().set_append_class(LogAppendClass(ProtocolKind::kHalfmoonWrite));
  StepLogResult logged = co_await LogStep(env, sharedlog::NoTags(), std::move(fields));
  if (logged.recovered) {
    // A peer logged this read first; adopt its result so all instances agree (§5.1).
    value = logged.record->fields.GetStr("data");
  }
  env.MaybeCrash("hmw.read.after_log");
  co_return value;
}

sim::Task<void> HalfmoonWriteWrite(Env& env, const std::string& key, Value value) {
  // §4.4 ordered-writes extension: consecutive log-free writes to *different* objects may
  // commute under plain Halfmoon-write. When the application demands program order, the
  // runtime performs "extra logging between the writes such that every dependent pair cannot
  // be reordered" — a sync record that refreshes cursorTS, pinning the second write after the
  // first. Still log-free in the best case (non-consecutive writes cost nothing extra).
  if (env.preserve_write_order && !env.last_write_key.empty() && env.last_write_key != key) {
    env.step += 1;
    FieldMap sync_fields;
    sync_fields.SetStr("op", "sync");
    sync_fields.SetInt("step", env.step);
    env.log().set_append_class(LogAppendClass(ProtocolKind::kHalfmoonWrite));
    co_await LogStep(env, sharedlog::NoTags(), std::move(sync_fields));
    env.consecutive_writes = 0;
  }

  // Log-free write (Figure 7, lines 1-5): the deterministic version tuple pins the write's
  // place in the event stream; the conditional update applies it only if the stored version
  // is older, which makes retries and stale peers no-ops.
  env.consecutive_writes += 1;
  VersionTuple version{env.cursor_ts, static_cast<uint64_t>(env.consecutive_writes)};
  env.MaybeCrash("hmw.write.before");
  co_await env.kv().CondPut(key, std::move(value), version);
  env.MaybeCrash("hmw.write.after_db");
  env.last_write_key = key;
}

// ---------------------------------------------------------------------------
// Boki (symmetric baseline)
// ---------------------------------------------------------------------------

sim::Task<Value> BokiRead(Env& env, const std::string& key) {
  env.step += 1;
  if (const LogRecord* prev = FindBokiStep(env, sharedlog::kOpRead, env.step); prev != nullptr) {
    co_return prev->fields.GetStr("data");
  }
  env.MaybeCrash("boki.read.before");
  std::optional<Value> latest = co_await env.kv().Get(key);
  Value value = latest.value_or(Value{});
  env.MaybeCrash("boki.read.after_db");

  FieldMap fields;
  fields.SetStr("op", "read");
  fields.SetInt("step", env.step);
  fields.SetStr("data", value);
  env.log().set_append_class(LogAppendClass(ProtocolKind::kBoki));
  SeqNum seqnum = co_await env.log().Append(sharedlog::OneTag(env.step_tag), std::move(fields));
  // Boki's peer-race resolution: honor the first record logged for this step (§5.1). The
  // check rides on the append reply (auxiliary data), so it costs no extra round.
  LogRecordPtr first =
      env.cluster->log_space().FindFirstByStep(env.step_tag, sharedlog::kOpRead, env.step);
  if (first != nullptr && first->seqnum != seqnum) {
    value = first->fields.GetStr("data");
  }
  env.MaybeCrash("boki.read.after_log");
  co_return value;
}

sim::Task<void> BokiWrite(Env& env, const std::string& key, Value value) {
  env.step += 1;
  // Step 1: the synchronous version log. Its seqnum doubles as the write's version, making
  // the otherwise non-deterministic conditional update recoverable.
  SeqNum version_seq;
  if (const LogRecord* pre = FindBokiStep(env, sharedlog::kOpWritePre, env.step); pre != nullptr) {
    version_seq = pre->seqnum;
  } else {
    env.MaybeCrash("boki.write.before");
    FieldMap pre_fields;
    pre_fields.SetStr("op", "write-pre");
    pre_fields.SetInt("step", env.step);
    env.log().set_append_class(LogAppendClass(ProtocolKind::kBoki));
    version_seq =
        co_await env.log().Append(sharedlog::OneTag(env.step_tag), std::move(pre_fields));
    LogRecordPtr first =
        env.cluster->log_space().FindFirstByStep(env.step_tag, sharedlog::kOpWritePre, env.step);
    if (first != nullptr) version_seq = first->seqnum;
  }

  if (FindBokiStep(env, sharedlog::kOpWrite, env.step) != nullptr) {
    co_return;  // Commit marker present: the write already applied.
  }

  env.MaybeCrash("boki.write.after_prelog");
  co_await env.kv().CondPut(key, std::move(value), VersionTuple{version_seq, 0});
  env.MaybeCrash("boki.write.after_db");

  // Step 2: the commit marker that lets replay skip the write. Boki logs twice per write
  // (§4.1), both on the critical path — Halfmoon-read's write logging is aligned with this.
  FieldMap post_fields;
  post_fields.SetStr("op", "write");
  post_fields.SetInt("step", env.step);
  env.log().set_append_class(LogAppendClass(ProtocolKind::kBoki));
  co_await env.log().Append(sharedlog::OneTag(env.step_tag), std::move(post_fields));
  env.MaybeCrash("boki.write.after_log");
}

// ---------------------------------------------------------------------------
// Unsafe baseline
// ---------------------------------------------------------------------------

sim::Task<Value> UnsafeRead(Env& env, const std::string& key) {
  env.MaybeCrash("unsafe.read.before");
  std::optional<Value> latest = co_await env.kv().Get(key);
  co_return latest.value_or(Value{});
}

sim::Task<void> UnsafeWrite(Env& env, const std::string& key, Value value) {
  env.MaybeCrash("unsafe.write.before");
  co_await env.kv().Put(key, std::move(value));
  env.MaybeCrash("unsafe.write.after_db");
}

// ---------------------------------------------------------------------------
// Transitional protocol (§5.2) and dual reads
// ---------------------------------------------------------------------------

sim::Task<Value> DualRead(Env& env, const std::string& key) {
  // Both paths proceed in parallel: the LATEST slot (Halfmoon-write's world) and the freshest
  // logged version at or before cursorTS (Halfmoon-read's world).
  auto latest_handle =
      sim::SpawnJoinable(env.cluster->scheduler(), env.kv().GetWithVersion(key));

  TagId write_tag = env.WriteTag(key);
  LogRecordPtr write_log = co_await env.log().ReadPrev(write_tag, env.cursor_ts);
  std::optional<Value> versioned;
  SeqNum write_seq = 0;
  if (write_log != nullptr) {
    versioned = co_await env.kv().GetVersioned(write_tag, write_log->fields.GetStr("version"));
    HM_CHECK_MSG(versioned.has_value(), "DualRead: committed version missing from the store");
    write_seq = write_log->seqnum;
  }

  std::optional<std::pair<Value, VersionTuple>> latest = co_await latest_handle;

  // Freshness comparison (§5.2): the LATEST slot's version carries the cursorTS of the write
  // that installed it; the versioned path's freshness is its commit record's seqnum. Both are
  // positions in the same event stream.
  if (latest.has_value() && (!versioned.has_value() || latest->second.cursor_ts > write_seq)) {
    co_return std::move(latest->first);
  }
  if (versioned.has_value()) co_return std::move(*versioned);
  co_return Value{};
}

sim::Task<Value> TransitionalRead(Env& env, const std::string& key) {
  env.step += 1;
  env.consecutive_writes = 0;

  FieldMap fields;
  fields.SetStr("op", "read");
  fields.SetInt("step", env.step);

  if (const LogRecord* cached = PeekNextLog(env); cached != nullptr) {
    env.log().set_append_class(LogAppendClass(ProtocolKind::kTransitional));
    StepLogResult replayed = co_await LogStep(env, sharedlog::NoTags(), std::move(fields));
    co_return replayed.record->fields.GetStr("data");
  }

  env.MaybeCrash("trans.read.before");
  Value value = co_await DualRead(env, key);
  env.MaybeCrash("trans.read.after_db");

  fields.SetStr("data", value);
  env.log().set_append_class(LogAppendClass(ProtocolKind::kTransitional));
  StepLogResult logged = co_await LogStep(env, sharedlog::NoTags(), std::move(fields));
  if (logged.recovered) {
    value = logged.record->fields.GetStr("data");
  }
  co_return value;
}

sim::Task<void> TransitionalWrite(Env& env, const std::string& key, Value value) {
  env.step += 1;
  // Deterministic version ID (instance + step, §4.1's first alternative), so a re-execution
  // recreates exactly the same version instead of orphaning one.
  std::string version = env.instance_id + "#" + std::to_string(env.step);
  env.consecutive_writes += 1;
  VersionTuple latest_version{env.cursor_ts, static_cast<uint64_t>(env.consecutive_writes)};

  FieldMap pre_fields;
  pre_fields.SetStr("op", "write-pre");
  pre_fields.SetInt("step", env.step);
  pre_fields.SetStr("version", version);
  FieldMap post_fields;
  post_fields.SetStr("op", "write");
  post_fields.SetInt("step", env.step);
  post_fields.SetStr("version", version);

  env.MaybeCrash("trans.write.before");
  env.log().set_append_class(LogAppendClass(ProtocolKind::kTransitional));
  co_await LogStep(env, sharedlog::NoTags(), std::move(pre_fields));

  TagId write_tag = env.WriteTag(key);
  if (const LogRecord* cached = PeekNextLog(env);
      cached != nullptr && cached->op == sharedlog::kOpWrite) {
    // Replay: both external effects (the version and the LATEST slot) already applied.
    env.log().set_append_class(LogAppendClass(ProtocolKind::kTransitional));
    co_await LogStep(env, sharedlog::OneTag(write_tag), std::move(post_fields));
    co_return;
  }

  // The write must be visible to SSFs on either protocol (§5.2, Figure 9): install the
  // multi-version copy and update the LATEST slot.
  co_await env.kv().PutVersioned(write_tag, version, value);
  env.MaybeCrash("trans.write.after_version");
  co_await env.kv().CondPut(key, std::move(value), latest_version);
  env.MaybeCrash("trans.write.after_latest");
  env.log().set_append_class(LogAppendClass(ProtocolKind::kTransitional));
  co_await LogStep(env, sharedlog::OneTag(write_tag), std::move(post_fields));
  env.MaybeCrash("trans.write.after_log");
}

}  // namespace halfmoon::core::protocols
