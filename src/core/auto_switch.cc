#include "src/core/auto_switch.h"

namespace halfmoon::core {

void AutoSwitchService::Start() {
  cluster_->scheduler().Spawn(Loop());
}

sim::Task<void> AutoSwitchService::Loop() {
  while (!stopped_) {
    co_await cluster_->scheduler().Delay(config_.window);
    if (stopped_) break;
    co_await EvaluateOnce();
  }
}

sim::Task<bool> AutoSwitchService::EvaluateOnce() {
  ++stats_.windows_evaluated;

  int64_t reads = cluster_->TotalKvReads();
  int64_t writes = cluster_->TotalKvWrites();
  int64_t window_reads = reads - last_reads_;
  int64_t window_writes = writes - last_writes_;
  last_reads_ = reads;
  last_writes_ = writes;

  int64_t total = window_reads + window_writes;
  if (total < config_.min_ops) co_return false;

  double read_ratio = static_cast<double>(window_reads) / static_cast<double>(total);
  stats_.last_read_ratio = read_ratio;

  WorkloadProfile profile;
  profile.write_cost_ratio = config_.write_cost_ratio;
  double boundary = RuntimeBoundaryReadRatio(profile);

  // Only act when the observed mix sits clearly on one side of the §4.6 boundary.
  ProtocolKind target = current_;
  if (read_ratio > boundary + config_.margin) {
    target = ProtocolKind::kHalfmoonRead;
  } else if (read_ratio < boundary - config_.margin) {
    target = ProtocolKind::kHalfmoonWrite;
  }
  if (target == current_) co_return false;

  ++stats_.switches_triggered;
  current_ = target;
  co_await manager_->SwitchTo(target);
  co_return true;
}

}  // namespace halfmoon::core
