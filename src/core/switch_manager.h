// Pauseless protocol switching (§4.7, §5.2).
//
// The runtime records switching history in a per-scope transition log. A switch appends a
// BEGIN record, waits until every SSF that started before the BEGIN has finished (scanning the
// init stream, never blocking new SSFs — they simply run the transitional protocol), then
// appends the END record. SSFs resolve their protocol from the transition log using their
// initial cursorTS, which makes the resolution stable across re-executions.

#ifndef HALFMOON_CORE_SWITCH_MANAGER_H_
#define HALFMOON_CORE_SWITCH_MANAGER_H_

#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/runtime/cluster.h"
#include "src/sim/task.h"

namespace halfmoon::core {

struct SwitchReport {
  ProtocolKind target = ProtocolKind::kHalfmoonRead;
  SimTime begin_time = 0;
  SimTime end_time = 0;
  sharedlog::SeqNum begin_seqnum = 0;
  sharedlog::SeqNum end_seqnum = 0;

  SimDuration SwitchingDelay() const { return end_time - begin_time; }
};

class SwitchManager {
 public:
  SwitchManager(runtime::Cluster* cluster, std::string scope)
      : cluster_(cluster), scope_(std::move(scope)) {}

  // Switches the scope to `target`. Returns once the END record is durable; the system keeps
  // serving throughout. Concurrent switches on one scope are not allowed.
  sim::Task<SwitchReport> SwitchTo(ProtocolKind target);

  const std::vector<SwitchReport>& history() const { return history_; }

 private:
  runtime::Cluster* cluster_;
  std::string scope_;
  // Interned id of the scope's transition-log tag; resolved on first switch.
  sharedlog::TagId transition_tag_ = sharedlog::kInvalidTagId;
  bool in_progress_ = false;
  std::vector<SwitchReport> history_;
};

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_SWITCH_MANAGER_H_
