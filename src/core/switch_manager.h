// Pauseless protocol switching (§4.7, §5.2).
//
// The runtime records switching history in a per-scope transition log. A switch appends a
// BEGIN record, waits until every SSF that started before the BEGIN has finished (scanning the
// init stream, never blocking new SSFs — they simply run the transitional protocol), then
// appends the END record. SSFs resolve their protocol from the transition log using their
// initial cursorTS, which makes the resolution stable across re-executions.

#ifndef HALFMOON_CORE_SWITCH_MANAGER_H_
#define HALFMOON_CORE_SWITCH_MANAGER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/env.h"
#include "src/runtime/cluster.h"
#include "src/sim/task.h"

namespace halfmoon::core {

struct SwitchReport {
  ProtocolKind target = ProtocolKind::kHalfmoonRead;
  SimTime begin_time = 0;
  SimTime end_time = 0;
  sharedlog::SeqNum begin_seqnum = 0;
  sharedlog::SeqNum end_seqnum = 0;

  SimDuration SwitchingDelay() const { return end_time - begin_time; }
};

// Outcome of a per-object switch (advisor mode, DESIGN.md §11). `began && !completed` means
// the advisor daemon died between BEGIN and END: the object resolves to the transitional
// protocol — a correct (if slower) state — until a later switch completes.
struct ObjectSwitchReport {
  sharedlog::TagId transition_tag = sharedlog::kInvalidTagId;
  ProtocolKind target = ProtocolKind::kHalfmoonRead;
  bool began = false;
  bool completed = false;
  sharedlog::SeqNum begin_seqnum = 0;
  sharedlog::SeqNum end_seqnum = 0;
};

class SwitchManager {
 public:
  SwitchManager(runtime::Cluster* cluster, std::string scope)
      : cluster_(cluster), scope_(std::move(scope)) {}

  // Switches the scope to `target`. Returns once the END record is durable; the system keeps
  // serving throughout. Concurrent switches on one scope are not allowed.
  sim::Task<SwitchReport> SwitchTo(ProtocolKind target);

  // Per-object §4.7 switch on the object's own transition stream ("switch:k:<key>",
  // advisor mode). Same BEGIN → frontier-wait → END shape as SwitchTo, but switches on
  // DISTINCT objects may run concurrently; a second switch on an object whose transition is
  // still in flight returns immediately with began == false (busy — the advisor retries on
  // a later sweep). The two crash sites ("advisor.fire" before BEGIN, "advisor.mid_switch"
  // between BEGIN and END) model the advisor daemon dying mid-transition; an abandoned
  // switch leaves the object transitional, which the consistency oracle accepts.
  sim::Task<ObjectSwitchReport> SwitchObject(sharedlog::TagId transition_tag,
                                             ProtocolKind target);

  // True while a SwitchObject on this stream is in flight (the advisor skips such objects;
  // a BEGIN-terminated stream with no switch in flight means an abandoned transition that a
  // fresh SwitchObject may complete).
  bool ObjectSwitchInFlight(sharedlog::TagId transition_tag) const {
    return objects_in_progress_.contains(transition_tag);
  }

  int64_t object_switches_completed() const { return object_switches_completed_; }

  const std::vector<SwitchReport>& history() const { return history_; }

 private:
  runtime::Cluster* cluster_;
  std::string scope_;
  // Interned id of the scope's transition-log tag; resolved on first switch.
  sharedlog::TagId transition_tag_ = sharedlog::kInvalidTagId;
  bool in_progress_ = false;
  std::vector<SwitchReport> history_;
  std::unordered_set<sharedlog::TagId> objects_in_progress_;
  int64_t object_switches_completed_ = 0;
};

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_SWITCH_MANAGER_H_
