#include "src/core/gc_service.h"

#include <string>
#include <vector>

#include "src/sharedlog/log_record.h"

namespace halfmoon::core {

using sharedlog::LogRecord;
using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;
using sharedlog::Tag;

void GcService::Start() {
  cluster_->scheduler().Spawn(Loop());
}

sim::Task<void> GcService::Loop() {
  while (!stopped_) {
    co_await cluster_->scheduler().Delay(interval_);
    if (stopped_) break;
    RunOnce();
  }
}

void GcService::RunOnce() {
  ++stats_.scans;
  sharedlog::LogSpace& log = cluster_->log_space();
  kvstore::KvState& kv = cluster_->kv_state();
  SimTime now = cluster_->scheduler().Now();

  SeqNum frontier = cluster_->RunningFrontier();

  // (2) Per-object write logs and their versions.
  for (const Tag& tag : log.StreamTagsWithPrefix("k:")) {
    std::vector<LogRecordPtr> records = log.ReadStream(tag);
    // Mark the latest record below the frontier; everything before it is superseded.
    const LogRecord* marked = nullptr;
    for (const LogRecordPtr& record : records) {
      if (record->seqnum < frontier) {
        marked = record.get();
      } else {
        break;
      }
    }
    if (marked == nullptr) continue;
    std::string key = tag.substr(2);  // Strip the "k:" prefix.
    for (const LogRecordPtr& record : records) {
      if (record->seqnum >= marked->seqnum) break;
      if (record->fields.Has("version") &&
          kv.DeleteVersioned(now, key, record->fields.GetStr("version"))) {
        ++stats_.versions_deleted;
      }
      ++stats_.write_records_trimmed;
    }
    if (marked->seqnum > 0) {
      log.Trim(now, tag, marked->seqnum - 1);
    }
  }

  // (3) Step logs of finished workflows.
  for (const std::string& instance_id : cluster_->DrainStepLogTrimQueue()) {
    log.Trim(now, sharedlog::StepLogTag(instance_id), sharedlog::kMaxSeqNum);
    ++stats_.step_logs_trimmed;
  }

  // (4) The global init stream: records below the frontier belong to finished SSFs.
  if (frontier > 0) {
    log.Trim(now, sharedlog::InitLogTag(), frontier - 1);
    ++stats_.init_records_trimmed;
  }
}

}  // namespace halfmoon::core
