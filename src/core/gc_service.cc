#include "src/core/gc_service.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/sharedlog/log_record.h"

namespace halfmoon::core {

using sharedlog::LogRecord;
using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;
using sharedlog::TagId;

void GcService::Start() {
  cluster_->scheduler().Spawn(Loop());
}

sim::Task<void> GcService::Loop() {
  while (!stopped_) {
    co_await cluster_->scheduler().Delay(interval_);
    if (stopped_) break;
    RunOnce();
  }
}

void GcService::RunOnce() {
  ++stats_.scans;
  sharedlog::ShardedLog& log = cluster_->log_space();
  kvstore::KvState& kv = cluster_->kv_state();
  SimTime now = cluster_->scheduler().Now();

  // Trim-to-durable-snapshot (DESIGN.md §13): never act on records a crash could still
  // un-commit. Without the clamp a GC pass could delete a KV version superseded only by a
  // volatile write — a crash would then lose the write but keep the deletion, and replay
  // would leave the object's write log pointing at a version that no longer exists.
  // CheckpointBound (DESIGN.md §14) additionally fences records an in-flight checkpoint
  // round may still walk: trimming them mid-round would tear the image under the walker.
  SeqNum frontier = std::min({cluster_->RunningFrontier(), cluster_->DurableTrimBound(),
                              cluster_->CheckpointBound()});

  // (2) Per-object write logs and their versions. The write-log tag id doubles as the
  // object's handle in the versioned store, so no key string is ever rebuilt here.
  for (TagId tag : log.LiveTagsWithPrefix(sharedlog::kWriteLogPrefix)) {
    std::vector<LogRecordPtr> records = log.ReadStream(tag);
    // Mark the latest record below the frontier; everything before it is superseded.
    const LogRecord* marked = nullptr;
    for (const LogRecordPtr& record : records) {
      if (record->seqnum < frontier) {
        marked = record.get();
      } else {
        break;
      }
    }
    if (marked == nullptr) continue;
    for (const LogRecordPtr& record : records) {
      if (record->seqnum >= marked->seqnum) break;
      if (record->fields.Has("version") &&
          kv.DeleteVersioned(now, tag, record->fields.GetStr("version"))) {
        ++stats_.versions_deleted;
      }
      ++stats_.write_records_trimmed;
    }
    if (marked->seqnum > 0) {
      log.Trim(now, tag, marked->seqnum - 1);
    }
  }

  // (3) Step logs of finished workflows. Resolve without interning: an instance that never
  // logged (e.g. unsafe protocol) has no step stream and no registry entry to create.
  for (const std::string& instance_id : cluster_->DrainStepLogTrimQueue()) {
    TagId step_tag = log.tags().Find(instance_id);
    // Instances that never logged (e.g. unsafe protocol) have no step log to trim and must
    // not inflate the counter.
    if (step_tag != sharedlog::kInvalidTagId && log.Trim(now, step_tag, sharedlog::kMaxSeqNum) > 0) {
      ++stats_.step_logs_trimmed;
    }
  }

  // (4) The global init stream: records below the frontier belong to finished SSFs. The
  // completion bookkeeping of those SSFs is pruned with it, keeping tracking memory bounded.
  // Counts trimmed *records*, not scans (a scan that trims nothing adds nothing).
  if (frontier > 0) {
    stats_.init_records_trimmed +=
        static_cast<int64_t>(log.Trim(now, sharedlog::kInitTagId, frontier - 1));
  }
  cluster_->PruneFinishedTracking();
}

}  // namespace halfmoon::core
