// Online cost-model advisor (DESIGN.md §11): background per-object protocol steering.
//
// In advisor mode the runtime counts every state access in a space-bounded workload sketch
// (src/metrics/workload_sketch.h). This service is the consumer: a background coroutine that
// incrementally walks the interned keyspace (a bounded slice of dense TagIds per tick, so a
// million-object keyspace never causes a scan spike), estimates each object's windowed
// read/write mix from the sketch, evaluates the §4.6 runtime criterion, and — when an object
// sits on the wrong side of the boundary — fires a pauseless §4.7 per-object switch through
// SwitchManager::SwitchObject.
//
// Three dampers keep the advisor from thrashing on noisy estimates:
//   * a ratio deadband around the boundary (|r - r*| <= margin means "leave it alone"),
//   * a per-object dwell time (an object switches at most once per dwell window),
//   * a global token bucket bounding the cluster-wide switch rate.
// All suppressed decisions are counted per cause in OnlineAdvisorStats, so benches and tests
// can assert the dampers actually engage.

#ifndef HALFMOON_CORE_ONLINE_ADVISOR_H_
#define HALFMOON_CORE_ONLINE_ADVISOR_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/common/time.h"
#include "src/core/advisor.h"
#include "src/core/env.h"
#include "src/core/switch_manager.h"
#include "src/sim/task.h"

namespace halfmoon::core {

class SsfRuntime;

struct OnlineAdvisorConfig {
  // Scan cadence and per-tick bound: at most `ids_per_tick` dense TagIds are examined per
  // tick, so a sweep over N live tags takes ceil(N / ids_per_tick) ticks regardless of N.
  SimDuration tick = Milliseconds(50);
  int ids_per_tick = 4096;

  // Sliding-window epoch length: the sketch's previous window is dropped and the current one
  // rotated out every `epoch`, so estimates track roughly the last 1-2 epochs of traffic.
  SimDuration epoch = Milliseconds(200);

  // Decision dampers (see file comment).
  double margin = 0.08;        // Deadband half-width around the boundary read ratio.
  int64_t min_ops = 16;        // Below this many windowed ops an object is never judged.
  SimDuration dwell = Milliseconds(400);  // Per-object minimum time between switches.
  double switch_rate = 512.0;  // Token-bucket refill, switches per simulated second.
  double switch_burst = 64.0;  // Token-bucket capacity.

  // Cost-model inputs for the boundary ratio (only write_cost_ratio matters at runtime).
  WorkloadProfile profile;
};

struct OnlineAdvisorStats {
  int64_t ticks = 0;
  int64_t sweeps = 0;  // Completed full passes over the keyspace.
  int64_t objects_evaluated = 0;
  int64_t switches_fired = 0;
  int64_t suppressed_min_ops = 0;
  int64_t suppressed_deadband = 0;
  int64_t suppressed_dwell = 0;
  int64_t suppressed_tokens = 0;
  int64_t suppressed_busy = 0;  // Object's previous transition still in flight.
};

// The pure §4.6 decision: given windowed read/write estimates and the boundary read ratio,
// returns the protocol the object should run, or nullopt when the evidence is too thin
// (< min_ops) or the ratio lies inside the deadband. Exposed standalone so the drift bench
// and property tests exercise exactly the shipped decision rule.
std::optional<ProtocolKind> AdvisorDecision(int64_t reads, int64_t writes, double boundary,
                                            double margin, int64_t min_ops);

class OnlineAdvisor {
 public:
  // `runtime` must be in advisor mode (HM_CHECKed); `switcher` executes the transitions.
  OnlineAdvisor(SsfRuntime* runtime, SwitchManager* switcher, OnlineAdvisorConfig config);

  // Spawns the periodic loop on the cluster scheduler; runs until Stop().
  void Start();
  void Stop() { stopped_ = true; }

  // One tick: advance the sketch epoch if due, then examine the next slice of the keyspace.
  // Exposed for deterministic tests (and used by the loop).
  void RunOnce();

  const OnlineAdvisorStats& stats() const { return stats_; }
  double boundary() const { return boundary_; }

 private:
  sim::Task<void> Loop();
  sim::Task<void> DriveSwitch(sharedlog::TagId transition_tag, ProtocolKind target);

  // True if a switch token was available (and consumed) at simulated time `now`.
  bool TakeToken(SimTime now);

  SsfRuntime* runtime_;
  SwitchManager* switcher_;
  OnlineAdvisorConfig config_;
  double boundary_;  // RuntimeBoundaryReadRatio(config_.profile), fixed at construction.
  bool stopped_ = false;

  size_t cursor_ = 0;          // Next dense TagId to examine.
  SimTime last_epoch_at_ = 0;  // Last sketch-epoch rotation.
  double tokens_;              // Token bucket; starts full.
  SimTime last_refill_at_ = 0;
  // Last switch fired per transition tag (dwell enforcement). Grows with the number of
  // objects that actually switched, not with the keyspace.
  std::unordered_map<sharedlog::TagId, SimTime> last_switch_;

  OnlineAdvisorStats stats_;
};

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_ONLINE_ADVISOR_H_
