#include "src/core/advisor.h"

#include <algorithm>

namespace halfmoon::core {

AdvisorReport AnalyzeWorkload(const WorkloadProfile& p) {
  AdvisorReport report;
  const double window = p.arrival_rate * (p.function_lifetime_s + p.gc_delay_s);

  // Equation 2: Halfmoon-write keeps one object version plus N_r read-log records.
  report.storage_hm_write =
      p.value_bytes + p.read_probability * window * (p.meta_bytes + p.value_bytes);
  // Equation 4: Halfmoon-read keeps N_w write-log pairs and as many object versions.
  report.storage_hm_read =
      (1.0 + p.write_probability * window) * (2.0 * p.meta_bytes + p.value_bytes);

  report.storage_choice = report.storage_hm_read <= report.storage_hm_write
                              ? ProtocolKind::kHalfmoonRead
                              : ProtocolKind::kHalfmoonWrite;

  // Expected extra runtime cost per second, in units of C_r.
  report.runtime_hm_read = p.write_probability * p.arrival_rate * p.write_cost_ratio;
  report.runtime_hm_write = p.read_probability * p.arrival_rate;
  report.runtime_choice = report.runtime_hm_read <= report.runtime_hm_write
                              ? ProtocolKind::kHalfmoonRead
                              : ProtocolKind::kHalfmoonWrite;

  // §4.6 remark: runtime and storage can be combined by a weighted (e.g. monetary) sum. We
  // weigh runtime first and use storage as the tie-breaker.
  report.recommendation = report.runtime_choice;
  if (report.runtime_hm_read == report.runtime_hm_write) {
    report.recommendation = report.storage_choice;
  }
  return report;
}

double StorageBoundaryReadRatio(const WorkloadProfile& p) {
  // With P_r + P_w fixed and r = P_r / (P_r + P_w), equate Equations 2 and 4 and solve for r.
  const double total = p.read_probability + p.write_probability;
  const double a = p.arrival_rate * (p.function_lifetime_s + p.gc_delay_s) * total;
  const double sm = p.meta_bytes;
  const double sv = p.value_bytes;
  const double numerator = 2.0 * sm + a * (2.0 * sm + sv);
  const double denominator = a * (3.0 * sm + 2.0 * sv);
  if (denominator <= 0.0) return 0.5;
  return std::clamp(numerator / denominator, 0.0, 1.0);
}

double RuntimeBoundaryReadRatio(const WorkloadProfile& p) {
  // P_r * C_r = P_w * C_w  =>  r* = ratio / (1 + ratio); 2/3 for the prototype's ratio of 2.
  return p.write_cost_ratio / (1.0 + p.write_cost_ratio);
}

}  // namespace halfmoon::core
