#include "src/core/log_steps.h"

#include <string>
#include <utility>

#include "src/common/check.h"

namespace halfmoon::core {

using sharedlog::CondAppendResult;
using sharedlog::LogRecord;
using sharedlog::LogRecordPtr;
using sharedlog::LogSpace;
using sharedlog::SeqNum;
using sharedlog::TagId;

const LogRecord* PeekNextLog(Env& env) {
  if (env.log_pos < env.step_logs.size()) {
    return env.step_logs[env.log_pos].get();
  }
  return nullptr;
}

sim::Task<LogRecordPtr> FetchExisting(Env& env, SeqNum seqnum) {
  LogRecordPtr record = co_await env.log().ReadPrev(env.step_tag, seqnum);
  HM_CHECK_MSG(record != nullptr && record->seqnum == seqnum,
               "lost-race record vanished from the step log");
  co_return record;
}

namespace {

// Consumes the record at the current position: caches the shared view (if fetched), advances
// the position pointer and the cursor.
void AdoptRecord(Env& env, LogRecordPtr record) {
  if (env.log_pos == env.step_logs.size()) {
    env.step_logs.push_back(std::move(record));
  }
  HM_CHECK(env.log_pos < env.step_logs.size());
  env.cursor_ts = env.step_logs[env.log_pos]->seqnum;
  ++env.log_pos;
}

}  // namespace

sim::Task<StepLogResult> LogStep(Env& env, std::vector<TagId> extra_tags, FieldMap fields) {
  size_t pos = env.log_pos;
  if (const LogRecord* cached = PeekNextLog(env)) {
    HM_CHECK_MSG(cached->fields.GetStr("op") == fields.GetStr("op"),
                 "replayed a different operation at this log position (non-determinism?)");
    LogRecordPtr record = env.step_logs[env.log_pos];
    AdoptRecord(env, record);
    co_return StepLogResult{std::move(record), /*recovered=*/true};
  }

  std::vector<TagId> tags;
  tags.reserve(1 + extra_tags.size());
  tags.push_back(env.step_tag);
  for (TagId tag : extra_tags) tags.push_back(tag);

  // Only the op name survives the move below; it is all the lost-race check needs.
  std::string op = fields.GetStr("op");
  CondAppendResult result = co_await env.log().CondAppend(std::move(tags), std::move(fields),
                                                          env.step_tag, pos);
  if (result.ok) {
    AdoptRecord(env, result.record);
    co_return StepLogResult{std::move(result.record), /*recovered=*/false};
  }

  // A peer instance logged this step first: adopt its record and treat the step as done.
  LogRecordPtr record = co_await FetchExisting(env, result.existing_seqnum);
  HM_CHECK_MSG(record->fields.GetStr("op") == op,
               "peer logged a different operation at this position (non-determinism?)");
  AdoptRecord(env, record);
  co_return StepLogResult{std::move(record), /*recovered=*/true};
}

sim::Task<BatchLogResult> LogStepBatch(Env& env, std::vector<FieldMap> fields) {
  HM_CHECK(!fields.empty());
  size_t pos = env.log_pos;
  const size_t n = fields.size();
  BatchLogResult result;

  if (pos < env.step_logs.size()) {
    // Replay: the batch committed atomically, so all n records must be cached.
    HM_CHECK_MSG(pos + n <= env.step_logs.size(), "batched group is partially missing");
    result.recovered = true;
    for (size_t i = 0; i < n; ++i) {
      LogRecordPtr cached = env.step_logs[env.log_pos];
      HM_CHECK_MSG(cached->fields.GetStr("op") == fields[i].GetStr("op"),
                   "replayed a different operation at this log position (non-determinism?)");
      result.records.push_back(cached);
      AdoptRecord(env, std::move(cached));
    }
    co_return result;
  }

  TagId step_tag = env.step_tag;
  std::vector<std::string> ops;  // Survives the moves; feeds the lost-race sanity checks.
  ops.reserve(n);
  std::vector<LogSpace::BatchEntry> batch(n);
  for (size_t i = 0; i < n; ++i) {
    ops.push_back(fields[i].GetStr("op"));
    batch[i].tags = sharedlog::OneTag(step_tag);
    batch[i].fields = std::move(fields[i]);
  }
  CondAppendResult append = co_await env.log().CondAppendBatch(std::move(batch), step_tag, pos);
  if (append.ok) {
    // Consecutive batch seqnums (stride = shard count); the append reply carries the
    // committed group, so the views come straight from the record store without extra rounds
    // or copies.
    for (size_t i = 0; i < n; ++i) {
      LogRecordPtr record =
          env.cluster->log_space().Get(env.cluster->log_space().BatchSeq(append.seqnum, i));
      HM_CHECK_MSG(record != nullptr, "freshly committed batch record missing");
      result.records.push_back(record);
      AdoptRecord(env, std::move(record));
    }
    co_return result;
  }

  // Lost the race: the peer committed the whole batch; fetch the n records.
  result.recovered = true;
  SeqNum seqnum = append.existing_seqnum;
  for (size_t i = 0; i < n; ++i) {
    LogRecordPtr record = co_await env.log().ReadNext(
        step_tag, i == 0 ? seqnum : result.records.back()->seqnum + 1);
    HM_CHECK_MSG(record != nullptr && record->fields.GetStr("op") == ops[i],
                 "peer's batched group is incomplete");
    result.records.push_back(record);
    AdoptRecord(env, std::move(record));
  }
  co_return result;
}

sim::Task<void> InitSsf(Env& env, const Value& input) {
  // Intern this instance's step-log tag once; every logged step reuses the id.
  env.step_tag = env.log().tags().Intern(env.instance_id);
  // Retrieve the execution history (Figure 5, line 3).
  env.step_logs = co_await env.log().ReadStream(env.step_tag);
  env.log_pos = 0;
  env.step = 0;
  env.consecutive_writes = 0;

  FieldMap fields;
  fields.SetStr("op", "init");
  fields.SetInt("step", 0);
  fields.SetStr("instance", env.instance_id);
  StepLogResult init =
      co_await LogStep(env, sharedlog::OneTag(sharedlog::kInitTagId), std::move(fields));
  env.init_cursor_ts = init.record->seqnum;
  // Feed the incremental GC/switch frontier. Idempotent across replays and peers: every
  // attempt recovers the same init record, hence registers the same seqnum.
  env.cluster->RegisterInitRecord(env.instance_id, init.record->seqnum);
}

sim::Task<void> InitChildSsf(Env& env, SeqNum inherited_cursor) {
  HM_CHECK(inherited_cursor != sharedlog::kInvalidSeqNum);
  env.step_tag = env.log().tags().Intern(env.instance_id);
  env.step_logs = co_await env.log().ReadStream(env.step_tag);
  env.log_pos = 0;
  env.step = 0;
  env.consecutive_writes = 0;
  env.cursor_ts = inherited_cursor;
  env.init_cursor_ts = inherited_cursor;
}

const char* ProtocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kUnsafe: return "Unsafe";
    case ProtocolKind::kBoki: return "Boki";
    case ProtocolKind::kHalfmoonRead: return "Halfmoon-read";
    case ProtocolKind::kHalfmoonWrite: return "Halfmoon-write";
    case ProtocolKind::kTransitional: return "Transitional";
  }
  return "?";
}

}  // namespace halfmoon::core
