// Position-based step logging and recovery, shared by the Halfmoon protocols.
//
// Every synchronous logged operation of an SSF occupies a deterministic logical position in
// the instance's step-log sub-stream (positions are assigned in program order, and Halfmoon
// logs synchronously). LogStep implements the common pattern:
//   * if the position is already occupied (retry replaying history, or a peer instance won the
//     race), adopt the existing record and skip the side effect;
//   * otherwise logCondAppend at that position; on conflict, fetch and adopt the peer's record.
// Either way cursorTS advances to the record's seqnum.

#ifndef HALFMOON_CORE_LOG_STEPS_H_
#define HALFMOON_CORE_LOG_STEPS_H_

#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/sharedlog/log_record.h"
#include "src/sim/task.h"

namespace halfmoon::core {

struct StepLogResult {
  // Shared view of the committed (or adopted) record — aliases LogSpace's copy.
  sharedlog::LogRecordPtr record;
  // True when the record pre-existed (replay or lost race): the operation's side effect has
  // already happened (or is owned by a peer) and must be skipped.
  bool recovered = false;
};

// Returns the record already cached at the next log position if any, else nullptr. Peek only;
// does not consume the position.
const sharedlog::LogRecord* PeekNextLog(Env& env);

// Logs one record at the next position (see file comment). `extra_tags` are added on top of
// the instance's step-log tag.
sim::Task<StepLogResult> LogStep(Env& env, std::vector<sharedlog::TagId> extra_tags,
                                 FieldMap fields);

// Logs N records in one sequencer round at consecutive positions (scatter-gather workflows:
// the pre/post records of parallel invocations). The batch commits atomically: either all
// records land with consecutive seqnums or the group is recovered from a peer's batch.
struct BatchLogResult {
  std::vector<sharedlog::LogRecordPtr> records;
  bool recovered = false;
};
sim::Task<BatchLogResult> LogStepBatch(Env& env, std::vector<FieldMap> fields);

// Initializes the SSF environment (Figure 5, Init): fetches the step log, and appends (or
// recovers) the init record, which doubles as the registration of this instance in the global
// init stream used by GC and switching.
sim::Task<void> InitSsf(Env& env, const Value& input);

// Init for a child SSF of a workflow: per the §4.3 remark, the initial cursorTS only needs to
// be deterministic and "can be inherited from the parent SSF" — we inherit the seqnum of the
// parent's invoke-pre record and skip the init append. The child needs no init record in the
// global stream either: the GC/switch frontier is held back by its root's init record until
// the whole workflow drains.
sim::Task<void> InitChildSsf(Env& env, sharedlog::SeqNum inherited_cursor);

// Fetches the record of a lost logCondAppend race (the peer's record at the expected offset).
sim::Task<sharedlog::LogRecordPtr> FetchExisting(Env& env, sharedlog::SeqNum seqnum);

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_LOG_STEPS_H_
