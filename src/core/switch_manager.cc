#include "src/core/switch_manager.h"

#include "src/common/check.h"

namespace halfmoon::core {

sim::Task<SwitchReport> SwitchManager::SwitchTo(ProtocolKind target) {
  HM_CHECK_MSG(!in_progress_, "concurrent switches on one scope are not supported");
  HM_CHECK_MSG(target == ProtocolKind::kHalfmoonRead || target == ProtocolKind::kHalfmoonWrite,
               "switching targets must be Halfmoon protocols");
  in_progress_ = true;

  SwitchReport report;
  report.target = target;

  // The manager runs on node 0 (any node works; the transition log is globally visible).
  sharedlog::LogClient& log = cluster_->node(0).log();
  if (transition_tag_ == sharedlog::kInvalidTagId) {
    transition_tag_ = log.tags().Intern(sharedlog::TransitionLogTag(scope_));
  }

  FieldMap begin_fields;
  begin_fields.SetStr("op", "BEGIN");
  begin_fields.SetInt("step", 0);
  begin_fields.SetInt("target", static_cast<int64_t>(target));
  report.begin_seqnum =
      co_await log.Append(sharedlog::OneTag(transition_tag_), std::move(begin_fields));
  report.begin_time = cluster_->scheduler().Now();

  // Wait for every SSF that started before the BEGIN (initial cursorTS < begin_seqnum) to
  // finish. SSFs starting after the BEGIN already run the transitional protocol, so the
  // system stays fully operational — the switch is pauseless.
  while (cluster_->RunningFrontier() < report.begin_seqnum) {
    co_await cluster_->scheduler().Delay(Milliseconds(2));
  }

  FieldMap end_fields;
  end_fields.SetStr("op", "END");
  end_fields.SetInt("step", 0);
  end_fields.SetInt("target", static_cast<int64_t>(target));
  report.end_seqnum =
      co_await log.Append(sharedlog::OneTag(transition_tag_), std::move(end_fields));
  report.end_time = cluster_->scheduler().Now();

  history_.push_back(report);
  in_progress_ = false;
  co_return report;
}

sim::Task<ObjectSwitchReport> SwitchManager::SwitchObject(sharedlog::TagId transition_tag,
                                                          ProtocolKind target) {
  HM_CHECK_MSG(target == ProtocolKind::kHalfmoonRead || target == ProtocolKind::kHalfmoonWrite,
               "switching targets must be Halfmoon protocols");
  ObjectSwitchReport report;
  report.transition_tag = transition_tag;
  report.target = target;
  if (!objects_in_progress_.insert(transition_tag).second) {
    co_return report;  // This object's transition is already in flight: busy.
  }

  sharedlog::LogClient& log = cluster_->node(0).log();

  // The advisor daemon dies before appending anything: nothing changed for the object.
  if (cluster_->failure_injector().ShouldCrash(cluster_->rng(), "advisor.fire")) {
    objects_in_progress_.erase(transition_tag);
    co_return report;
  }

  FieldMap begin_fields;
  begin_fields.SetStr("op", "BEGIN");
  begin_fields.SetInt("step", 0);
  begin_fields.SetInt("target", static_cast<int64_t>(target));
  report.begin_seqnum =
      co_await log.Append(sharedlog::OneTag(transition_tag), std::move(begin_fields));
  report.began = true;

  // Pauseless wait, exactly as in the per-scope switch: SSFs that started after the BEGIN
  // already resolve this object to the transitional protocol.
  while (cluster_->RunningFrontier() < report.begin_seqnum) {
    co_await cluster_->scheduler().Delay(Milliseconds(2));
  }

  // The daemon dies after BEGIN: the object stays transitional until a later switch.
  if (cluster_->failure_injector().ShouldCrash(cluster_->rng(), "advisor.mid_switch")) {
    objects_in_progress_.erase(transition_tag);
    co_return report;
  }

  FieldMap end_fields;
  end_fields.SetStr("op", "END");
  end_fields.SetInt("step", 0);
  end_fields.SetInt("target", static_cast<int64_t>(target));
  report.end_seqnum =
      co_await log.Append(sharedlog::OneTag(transition_tag), std::move(end_fields));
  report.completed = true;
  ++object_switches_completed_;
  objects_in_progress_.erase(transition_tag);
  co_return report;
}

}  // namespace halfmoon::core
