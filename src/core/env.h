// Per-attempt execution environment of a stateful serverless function (SSF).
//
// One Env exists per *attempt* (original execution, retry after a crash, or duplicate peer
// instance). All attempts of an invocation share the same instance ID and therefore the same
// step-log sub-stream, which is how a re-execution recovers the progress of its predecessors
// (Figure 5, Init).

#ifndef HALFMOON_CORE_ENV_H_
#define HALFMOON_CORE_ENV_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/sharedlog/log_record.h"

namespace halfmoon::core {

// The protocols of §3: Halfmoon's two asymmetric protocols, the Boki-style symmetric baseline,
// the unsafe (no-logging) baseline, and the transitional protocol used during switching.
enum class ProtocolKind {
  kUnsafe,
  kBoki,
  kHalfmoonRead,
  kHalfmoonWrite,
  kTransitional,
};

const char* ProtocolName(ProtocolKind kind);

// Append-class id under which a protocol's log records are accounted (see
// LogClientStats::appended_bytes_by_class). Class 0 is reserved for control records (init,
// invoke pre/post, switch transitions), so protocol classes start at 1.
constexpr int LogAppendClass(ProtocolKind kind) { return 1 + static_cast<int>(kind); }

// Outcome of consulting the transition log for an object scope (§4.7).
struct ProtocolResolution {
  ProtocolKind kind = ProtocolKind::kHalfmoonRead;
  // True when the resolution came from a transition record rather than the configured default.
  // Post-switch objects may have state on both the single-version (LATEST) path and the
  // multi-version path, so reads must compare freshness across both (§5.2).
  bool post_switch = false;
};

struct Env {
  // ---- Identity ----
  std::string instance_id;  // Shared by every attempt/peer of this invocation.
  int attempt = 0;

  // ---- Protocol state (Figures 5 and 7) ----
  // Interned id of this instance's step-log tag, resolved once in InitSsf/InitChildSsf; every
  // subsequent logged step reuses the id instead of re-hashing the instance-id string.
  sharedlog::TagId step_tag = sharedlog::kInvalidTagId;
  sharedlog::SeqNum init_cursor_ts = 0;  // cursorTS acquired by Init; stable across attempts.
  sharedlog::SeqNum cursor_ts = 0;       // Advances with every logged operation.
  int64_t step = 0;                      // Operation counter (annotation in log records).
  int64_t consecutive_writes = 0;        // Tie-breaker counter of Halfmoon-write (§4.2).

  // Recovery state: shared views of the instance's step-log records in stream order, and the
  // logical position the next logged record will occupy. During re-execution, positions <
  // step_logs.size() are replayed from the log instead of re-executed. The views alias the
  // records held by LogSpace — fetching a step log never copies record payloads.
  std::vector<sharedlog::LogRecordPtr> step_logs;
  size_t log_pos = 0;

  // Cached result of the transition-log lookup (one per SSF, first state access; §4.7).
  std::optional<ProtocolResolution> resolution;

  // Advisor mode (DESIGN.md §11): per-object resolutions, keyed by the object's transition
  // TagId ("switch:k:<key>"). Cached for this attempt only; every entry derives from
  // init_cursor_ts, so re-executions resolve each object identically.
  std::unordered_map<sharedlog::TagId, ProtocolResolution> object_resolutions;

  // §4.4 ordered-writes extension state: the key of the previous operation when it was a
  // log-free write (empty otherwise). When the next write targets a *different* object, the
  // protocol inserts a sync record between them so the dependent pair cannot commute.
  std::string last_write_key;
  bool preserve_write_order = false;

  // Faultcheck negative control (see RuntimeConfig::drop_commit_append).
  bool drop_commit_append = false;

  // ---- Plumbing ----
  runtime::Cluster* cluster = nullptr;
  runtime::FunctionNode* node = nullptr;

  sharedlog::LogClient& log() { return node->log(); }
  kvstore::KvClient& kv() { return node->kv(); }

  // Interned id of `key`'s write-log tag ("k:<key>"). The two-part intern hashes the logical
  // concatenation without building a string, so the steady state costs one hash of the key
  // bytes and zero allocations. The id doubles as the object's handle in the versioned KV
  // store (kvstore::ObjectId).
  sharedlog::TagId WriteTag(const std::string& key) {
    return log().tags().InternPrefixed(sharedlog::kWriteLogPrefix, key);
  }

  // Crash site: throws SsfCrashed when the failure injector decides this attempt dies here.
  void MaybeCrash(const char* site) {
    if (cluster->failure_injector().ShouldCrash(cluster->rng(), site)) {
      throw runtime::SsfCrashed{site};
    }
  }

  // Fresh random identifier (version numbers, callee instance IDs). Non-deterministic; every
  // use must be made recoverable by logging, per §4.1.
  std::string RandomId() { return cluster->rng().HexString(16); }
};

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_ENV_H_
