// The §4.6 criterion: choosing the right protocol for a workload.
//
// Storage overhead (Equations 1-4, per object):
//   S_hm_write = S_val + P_r * lambda * (t + T_gc) * (S_meta + S_val)
//   S_hm_read  = (1 + P_w * lambda * (t + T_gc)) * (2 * S_meta + S_val)
// With S_meta << S_val the boundary is P_r = P_w.
//
// Runtime overhead: expected extra cost per unit time is P_w * lambda * C_w for Halfmoon-read
// versus P_r * lambda * C_r for Halfmoon-write, with C_w ≈ 2 C_r for the prototype, so the
// boundary is P_r = 2 P_w.

#ifndef HALFMOON_CORE_ADVISOR_H_
#define HALFMOON_CORE_ADVISOR_H_

#include "src/core/env.h"

namespace halfmoon::core {

struct WorkloadProfile {
  double read_probability = 0.5;   // P_r: probability an SSF reads the object.
  double write_probability = 0.5;  // P_w: probability an SSF writes the object.
  double arrival_rate = 100.0;     // lambda, SSFs per second.
  double function_lifetime_s = 0.05;  // t, average SSF lifetime including re-execution.
  double gc_delay_s = 10.0;           // T_gc, average completion-to-GC-scan delay.
  double meta_bytes = 48.0;           // S_meta, log record metadata size.
  double value_bytes = 256.0;         // S_val, object size.

  // C_w / C_r: extra write cost under Halfmoon-read over the extra read cost under
  // Halfmoon-write. ≈ 2 in the prototype (the write logs twice, the read logs once).
  double write_cost_ratio = 2.0;
};

struct AdvisorReport {
  // Expected time-averaged storage per object, bytes (Equations 2 and 4).
  double storage_hm_read = 0.0;
  double storage_hm_write = 0.0;
  // Expected extra runtime cost per second, in units of C_r.
  double runtime_hm_read = 0.0;
  double runtime_hm_write = 0.0;

  ProtocolKind storage_choice = ProtocolKind::kHalfmoonRead;
  ProtocolKind runtime_choice = ProtocolKind::kHalfmoonRead;
  // Combined recommendation: weighs runtime first, storage as tie-breaker.
  ProtocolKind recommendation = ProtocolKind::kHalfmoonRead;
};

AdvisorReport AnalyzeWorkload(const WorkloadProfile& profile);

// Closed-form boundary read ratios r* = P_r / (P_r + P_w) at which the two protocols tie,
// assuming P_r + P_w is fixed. Storage boundary -> 0.5 as S_meta/S_val -> 0 (§6.3); the
// runtime boundary is 2/3 for C_w = 2 C_r.
double StorageBoundaryReadRatio(const WorkloadProfile& profile);
double RuntimeBoundaryReadRatio(const WorkloadProfile& profile);

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_ADVISOR_H_
