// Garbage collection of log records and stale object versions (§4.5).
//
// Periodically invoked by the runtime. Each scan:
//   1. computes the frontier t: the largest seqnum such that every SSF whose init record has
//      seqnum < t has finished (condition (b) of §4.5);
//   2. for every per-object write log, marks the latest record with seqnum < t and deletes
//      all records preceding it together with their object versions (condition (a): the
//      marked record supersedes them; condition (b): no running or future SSF can still seek
//      backward past the marked record);
//   3. trims the step logs of instances whose workflow has finished (their lifetime equals
//      the initiating SSF's lifetime — this is where Halfmoon-write's read-log records and
//      the version half of Halfmoon-read's write pairs get reclaimed);
//   4. trims the global init stream up to the frontier.
//
// Modeling note: GC mutations are applied directly to the storage state (no simulated
// latency). The paper observes that runtime performance is insensitive to the GC interval
// (§6.3); charging GC traffic to the data-path stations would only distort that. All GC work
// is still counted in GcStats.

#ifndef HALFMOON_CORE_GC_SERVICE_H_
#define HALFMOON_CORE_GC_SERVICE_H_

#include <cstdint>

#include "src/runtime/cluster.h"
#include "src/sim/task.h"

namespace halfmoon::core {

struct GcStats {
  int64_t scans = 0;
  int64_t step_logs_trimmed = 0;
  int64_t write_records_trimmed = 0;
  int64_t versions_deleted = 0;
  int64_t init_records_trimmed = 0;
};

class GcService {
 public:
  GcService(runtime::Cluster* cluster, SimDuration interval)
      : cluster_(cluster), interval_(interval) {}

  // Spawns the periodic loop. Runs until Stop() (benchmarks drive the scheduler with
  // RunUntil, so a pending tick past the horizon is harmless).
  void Start();
  void Stop() { stopped_ = true; }

  // One full scan; exposed for deterministic tests.
  void RunOnce();

  const GcStats& stats() const { return stats_; }

 private:
  sim::Task<void> Loop();

  runtime::Cluster* cluster_;
  SimDuration interval_;
  bool stopped_ = false;
  GcStats stats_;
};

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_GC_SERVICE_H_
