#include "src/core/online_advisor.h"

#include <algorithm>
#include <string>
#include <string_view>

#include "src/common/check.h"
#include "src/core/ssf_runtime.h"
#include "src/sharedlog/log_record.h"

namespace halfmoon::core {

using sharedlog::LogRecordPtr;
using sharedlog::TagId;

std::optional<ProtocolKind> AdvisorDecision(int64_t reads, int64_t writes, double boundary,
                                            double margin, int64_t min_ops) {
  const int64_t total = reads + writes;
  if (total < min_ops) return std::nullopt;
  const double ratio = static_cast<double>(reads) / static_cast<double>(total);
  // §4.6 runtime criterion: above the boundary reads dominate enough that Halfmoon-read's
  // log-free reads win; below it Halfmoon-write's log-free writes win. The deadband keeps
  // sketch noise near the boundary from flapping the object.
  if (ratio >= boundary + margin) return ProtocolKind::kHalfmoonRead;
  if (ratio <= boundary - margin) return ProtocolKind::kHalfmoonWrite;
  return std::nullopt;
}

OnlineAdvisor::OnlineAdvisor(SsfRuntime* runtime, SwitchManager* switcher,
                             OnlineAdvisorConfig config)
    : runtime_(runtime),
      switcher_(switcher),
      config_(config),
      boundary_(RuntimeBoundaryReadRatio(config.profile)),
      tokens_(config.switch_burst) {
  HM_CHECK_MSG(runtime_->advisor_enabled(), "OnlineAdvisor requires a runtime in advisor mode");
  HM_CHECK_MSG(runtime_->config().default_protocol == ProtocolKind::kHalfmoonRead ||
                   runtime_->config().default_protocol == ProtocolKind::kHalfmoonWrite,
               "OnlineAdvisor steers between the Halfmoon protocols");
}

void OnlineAdvisor::Start() {
  runtime_->cluster().scheduler().Spawn(Loop());
}

sim::Task<void> OnlineAdvisor::Loop() {
  while (!stopped_) {
    co_await runtime_->cluster().scheduler().Delay(config_.tick);
    if (stopped_) break;
    RunOnce();
  }
}

sim::Task<void> OnlineAdvisor::DriveSwitch(TagId transition_tag, ProtocolKind target) {
  co_await switcher_->SwitchObject(transition_tag, target);
}

bool OnlineAdvisor::TakeToken(SimTime now) {
  tokens_ = std::min(config_.switch_burst,
                     tokens_ + ToSecondsDouble(now - last_refill_at_) * config_.switch_rate);
  last_refill_at_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void OnlineAdvisor::RunOnce() {
  ++stats_.ticks;
  runtime::Cluster& cluster = runtime_->cluster();
  const SimTime now = cluster.scheduler().Now();

  if (now - last_epoch_at_ >= config_.epoch) {
    runtime_->sketch().AdvanceEpoch();
    last_epoch_at_ = now;
  }

  sharedlog::ShardedLog& log = cluster.log_space();
  sharedlog::TagRegistry& tags = log.tags();
  const metrics::WorkloadSketch& sketch = runtime_->sketch();
  const ProtocolKind default_protocol = runtime_->config().default_protocol;

  // One bounded slice of the dense-id keyspace per tick. The walk stops at the registry's
  // end (the next tick restarts a fresh sweep) so `sweeps` counts completed passes; ids
  // interned mid-walk — including the transition tags we intern below — are simply picked
  // up by a later slice.
  for (int examined = 0; examined < config_.ids_per_tick; ++examined) {
    if (cursor_ >= tags.size()) {
      if (cursor_ > 0) ++stats_.sweeps;
      cursor_ = 0;
      break;
    }
    const TagId id = static_cast<TagId>(cursor_++);
    std::string_view name = tags.Name(id);
    if (!name.starts_with(sharedlog::kWriteLogPrefix)) continue;

    ++stats_.objects_evaluated;
    const int64_t reads = static_cast<int64_t>(sketch.EstimateReads(id));
    const int64_t writes = static_cast<int64_t>(sketch.EstimateWrites(id));
    std::optional<ProtocolKind> decision =
        AdvisorDecision(reads, writes, boundary_, config_.margin, config_.min_ops);
    if (!decision.has_value()) {
      if (reads + writes < config_.min_ops) {
        ++stats_.suppressed_min_ops;
      } else {
        ++stats_.suppressed_deadband;
      }
      continue;
    }

    // Interning may grow the registry and invalidate `name`; copy the key suffix first.
    const std::string key(name.substr(sharedlog::kWriteLogPrefix.size()));
    const TagId ttag = tags.InternPrefixed(sharedlog::kObjectTransitionPrefix, key);

    // Current protocol, read directly off the transition stream. Like GC scans, advisor
    // inspection is charged no simulated latency — only the switches themselves append.
    ProtocolKind current = default_protocol;
    bool abandoned = false;
    if (LogRecordPtr record = log.ReadPrev(ttag, sharedlog::kMaxSeqNum); record != nullptr) {
      if (record->op == sharedlog::kOpSwitchEnd) {
        const int64_t target = record->fields.GetInt("target");
        HM_CHECK(target >= 0 && target <= static_cast<int64_t>(ProtocolKind::kTransitional));
        current = static_cast<ProtocolKind>(target);
      } else if (switcher_->ObjectSwitchInFlight(ttag)) {
        ++stats_.suppressed_busy;
        continue;
      } else {
        // BEGIN-terminated stream with nothing in flight: the previous transition was
        // abandoned mid-switch, so fire regardless of the target to complete it.
        current = ProtocolKind::kTransitional;
        abandoned = true;
      }
    }
    if (!abandoned && current == *decision) continue;

    if (auto it = last_switch_.find(ttag);
        it != last_switch_.end() && now - it->second < config_.dwell) {
      ++stats_.suppressed_dwell;
      continue;
    }
    if (!TakeToken(now)) {
      ++stats_.suppressed_tokens;
      continue;
    }

    last_switch_[ttag] = now;
    ++stats_.switches_fired;
    cluster.scheduler().Spawn(DriveSwitch(ttag, *decision));
  }
}

}  // namespace halfmoon::core
