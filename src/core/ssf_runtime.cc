#include "src/core/ssf_runtime.h"

#include <utility>

#include "src/common/check.h"
#include "src/core/log_steps.h"
#include "src/core/protocols.h"
#include "src/sharedlog/log_record.h"

namespace halfmoon::core {

using sharedlog::LogRecord;
using sharedlog::LogRecordPtr;
using sharedlog::SeqNum;

namespace {

ProtocolKind KindFromInt(int64_t v) {
  HM_CHECK(v >= 0 && v <= static_cast<int64_t>(ProtocolKind::kTransitional));
  return static_cast<ProtocolKind>(v);
}

}  // namespace

// ---------------------------------------------------------------------------
// ContextImpl: protocol dispatch for one attempt
// ---------------------------------------------------------------------------

class ContextImpl final : public SsfContext {
 public:
  ContextImpl(SsfRuntime* runtime, Env* env, const Value* input, std::string root_id)
      : runtime_(runtime), env_(env), input_(input), root_id_(std::move(root_id)) {}

  sim::Task<Value> Read(std::string key) override {
    ProtocolResolution res = co_await ResolveFor(key, /*is_read=*/true);
    switch (res.kind) {
      case ProtocolKind::kUnsafe:
        co_return co_await protocols::UnsafeRead(*env_, key);
      case ProtocolKind::kBoki:
        co_return co_await protocols::BokiRead(*env_, key);
      case ProtocolKind::kHalfmoonRead:
        co_return co_await protocols::HalfmoonReadRead(*env_, key, res.post_switch);
      case ProtocolKind::kHalfmoonWrite:
        co_return co_await protocols::HalfmoonWriteRead(*env_, key, res.post_switch);
      case ProtocolKind::kTransitional:
        co_return co_await protocols::TransitionalRead(*env_, key);
    }
    HM_CHECK_MSG(false, "unreachable");
  }

  sim::Task<void> Write(std::string key, Value value) override {
    ProtocolResolution res = co_await ResolveFor(key, /*is_read=*/false);
    switch (res.kind) {
      case ProtocolKind::kUnsafe:
        co_return co_await protocols::UnsafeWrite(*env_, key, std::move(value));
      case ProtocolKind::kBoki:
        co_return co_await protocols::BokiWrite(*env_, key, std::move(value));
      case ProtocolKind::kHalfmoonRead:
        co_return co_await protocols::HalfmoonReadWrite(*env_, key, std::move(value));
      case ProtocolKind::kHalfmoonWrite:
        co_return co_await protocols::HalfmoonWriteWrite(*env_, key, std::move(value));
      case ProtocolKind::kTransitional:
        co_return co_await protocols::TransitionalWrite(*env_, key, std::move(value));
    }
    HM_CHECK_MSG(false, "unreachable");
  }

  sim::Task<Value> Invoke(std::string function, Value input) override {
    ProtocolKind kind = runtime_->config().default_protocol;
    if (kind == ProtocolKind::kUnsafe) {
      // No logging: a retried parent re-invokes under a fresh instance ID and the callee
      // re-executes in full — the §1 duplication anomaly, kept as the negative control.
      std::string callee = env_->instance_id + "/" + env_->RandomId();
      co_return co_await CallChild(std::move(callee), std::move(function), std::move(input),
                                   sharedlog::kInvalidSeqNum);
    }
    if (kind == ProtocolKind::kBoki) {
      co_return co_await InvokeBoki(std::move(function), std::move(input));
    }
    co_return co_await InvokeLogged(std::move(function), std::move(input));
  }

  sim::Task<std::vector<Value>> InvokeAll(
      std::vector<std::pair<std::string, Value>> calls) override {
    HM_CHECK(!calls.empty());
    ProtocolKind kind = runtime_->config().default_protocol;
    if (kind == ProtocolKind::kUnsafe) {
      std::vector<SeqNum> cursors(calls.size(), sharedlog::kInvalidSeqNum);
      co_return co_await RunChildrenConcurrently(MakeRandomCallees(calls.size()),
                                                 std::move(calls), std::move(cursors));
    }
    if (kind == ProtocolKind::kBoki) {
      co_return co_await InvokeAllBoki(std::move(calls));
    }
    co_return co_await InvokeAllLogged(std::move(calls));
  }

  sim::Task<void> Compute() override {
    co_await env_->cluster->scheduler().Delay(
        env_->cluster->models().compute_step.Sample(env_->cluster->rng()));
  }

  sim::Task<void> Sync() override {
    ProtocolResolution res = co_await Resolve();
    if (res.kind == ProtocolKind::kUnsafe || res.kind == ProtocolKind::kBoki) {
      co_return;  // Already real-time (Boki) or no guarantees at all (unsafe).
    }
    // Append a sync record to acquire an up-to-date seqnum (§4.4): subsequent reads observe
    // every operation that finished before this point in real time.
    env_->step += 1;
    FieldMap fields;
    fields.SetStr("op", "sync");
    fields.SetInt("step", env_->step);
    co_await LogStep(*env_, sharedlog::NoTags(), std::move(fields));
  }

  const Value& input() const override { return *input_; }
  const std::string& instance_id() const override { return env_->instance_id; }

 private:
  // Runs a child invocation with the parent's worker slot released for the duration: a
  // function blocked on a synchronous sub-invocation consumes no executor, and holding the
  // slot would deadlock the pool once every worker hosts a waiting parent.
  sim::Task<Value> CallChild(std::string callee, std::string function, Value input,
                             SeqNum inherited_cursor) {
    env_->node->workers().Release();
    Value result = co_await runtime_->RunInvocation(std::move(callee), root_id_,
                                                    std::move(function), std::move(input),
                                                    inherited_cursor);
    co_await env_->node->workers().Acquire();
    co_return result;
  }

  std::vector<std::string> MakeRandomCallees(size_t n) {
    std::vector<std::string> callees;
    callees.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      callees.push_back(env_->instance_id + "/" + env_->RandomId());
    }
    return callees;
  }

  // Runs the child invocations concurrently with the parent's worker slot released once for
  // the whole group (the parent is blocked; the children need their own slots).
  sim::Task<std::vector<Value>> RunChildrenConcurrently(
      std::vector<std::string> callees, std::vector<std::pair<std::string, Value>> calls,
      std::vector<SeqNum> cursors) {
    HM_CHECK(cursors.size() == calls.size());
    env_->node->workers().Release();
    std::vector<sim::JoinHandle<Value>> handles;
    handles.reserve(calls.size());
    for (size_t i = 0; i < calls.size(); ++i) {
      handles.push_back(sim::SpawnJoinable(
          env_->cluster->scheduler(),
          runtime_->RunInvocation(callees[i], root_id_, std::move(calls[i].first),
                                  std::move(calls[i].second), cursors[i])));
    }
    std::vector<Value> results;
    results.reserve(handles.size());
    for (sim::JoinHandle<Value>& handle : handles) {
      results.push_back(co_await handle);
    }
    co_await env_->node->workers().Acquire();
    co_return results;
  }

  // Scatter-gather invoke for the Halfmoon protocols: one batched round pins all callee IDs,
  // the callees run concurrently, one batched round pins all results.
  sim::Task<std::vector<Value>> InvokeAllLogged(
      std::vector<std::pair<std::string, Value>> calls) {
    Env& env = *env_;
    const size_t n = calls.size();

    env.MaybeCrash("invoke_all.before");
    std::vector<FieldMap> pre_fields(n);
    for (size_t i = 0; i < n; ++i) {
      env.step += 1;
      pre_fields[i].SetStr("op", "invoke-pre");
      pre_fields[i].SetInt("step", env.step);
      pre_fields[i].SetStr("callee", env.instance_id + "/" + env.RandomId());
    }
    BatchLogResult pres = co_await LogStepBatch(env, std::move(pre_fields));
    std::vector<std::string> callees;
    std::vector<SeqNum> cursors;
    callees.reserve(n);
    cursors.reserve(n);
    for (const LogRecordPtr& record : pres.records) {
      callees.push_back(record->fields.GetStr("callee"));
      cursors.push_back(record->seqnum);
    }

    // If the post batch is already in the step log, skip the calls entirely.
    std::vector<Value> results;
    if (const LogRecord* cached = PeekNextLog(env);
        cached != nullptr && cached->op == sharedlog::kOpInvoke) {
      std::vector<FieldMap> post_fields(n);
      for (size_t i = 0; i < n; ++i) {
        post_fields[i].SetStr("op", "invoke");
      }
      BatchLogResult posts = co_await LogStepBatch(env, std::move(post_fields));
      for (const LogRecordPtr& record : posts.records) {
        results.push_back(record->fields.GetStr("result"));
      }
      co_return results;
    }

    env.MaybeCrash("invoke_all.after_prelog");
    results = co_await RunChildrenConcurrently(callees, std::move(calls), cursors);
    env.MaybeCrash("invoke_all.after_calls");

    std::vector<FieldMap> post_fields(n);
    for (size_t i = 0; i < n; ++i) {
      post_fields[i].SetStr("op", "invoke");
      post_fields[i].SetInt("step", pres.records[i]->fields.GetInt("step"));
      post_fields[i].SetStr("result", results[i]);
    }
    BatchLogResult posts = co_await LogStepBatch(env, std::move(post_fields));
    if (posts.recovered) {
      results.clear();
      for (const LogRecordPtr& record : posts.records) {
        results.push_back(record->fields.GetStr("result"));
      }
    }
    env.MaybeCrash("invoke_all.after_postlog");
    co_return results;
  }

  // Boki's scatter-gather: step-keyed records, appended concurrently (its recovery does not
  // depend on stream positions).
  sim::Task<std::vector<Value>> InvokeAllBoki(
      std::vector<std::pair<std::string, Value>> calls) {
    Env& env = *env_;
    const size_t n = calls.size();
    const sharedlog::TagId step_tag = env.step_tag;

    env.MaybeCrash("invoke_all.before");
    std::vector<int64_t> steps(n);
    std::vector<std::string> callees(n);
    std::vector<SeqNum> pre_seqs(n, sharedlog::kInvalidSeqNum);
    std::vector<bool> have_result(n, false);
    std::vector<Value> results(n);
    for (size_t i = 0; i < n; ++i) {
      env.step += 1;
      steps[i] = env.step;
      for (const LogRecordPtr& record : env.step_logs) {
        if (record->fields.GetInt("step") != steps[i]) continue;
        if (record->op == sharedlog::kOpInvokePre) {
          callees[i] = record->fields.GetStr("callee");
          pre_seqs[i] = record->seqnum;
        } else if (record->op == sharedlog::kOpInvoke) {
          results[i] = record->fields.GetStr("result");
          have_result[i] = true;
        }
      }
    }

    // Log missing pre records (one batched append round, as Boki clients batch).
    std::vector<sharedlog::LogSpace::BatchEntry> pre_batch;
    for (size_t i = 0; i < n; ++i) {
      if (!callees[i].empty()) continue;
      callees[i] = env.instance_id + "/" + env.RandomId();
      sharedlog::LogSpace::BatchEntry entry;
      entry.tags = sharedlog::OneTag(step_tag);
      entry.fields.SetStr("op", "invoke-pre");
      entry.fields.SetInt("step", steps[i]);
      entry.fields.SetStr("callee", callees[i]);
      pre_batch.push_back(std::move(entry));
    }
    if (!pre_batch.empty()) {
      co_await env.log().AppendBatch(std::move(pre_batch));
      for (size_t i = 0; i < n; ++i) {
        LogRecordPtr first = env.cluster->log_space().FindFirstByStep(
            step_tag, sharedlog::kOpInvokePre, steps[i]);
        if (first != nullptr) {
          callees[i] = first->fields.GetStr("callee");
          pre_seqs[i] = first->seqnum;
        }
      }
    }

    env.MaybeCrash("invoke_all.after_prelog");
    std::vector<std::pair<std::string, Value>> pending;
    std::vector<size_t> pending_index;
    for (size_t i = 0; i < n; ++i) {
      if (!have_result[i]) {
        pending.push_back(std::move(calls[i]));
        pending_index.push_back(i);
      }
    }
    if (!pending.empty()) {
      std::vector<std::string> pending_callees;
      std::vector<SeqNum> pending_cursors;
      for (size_t idx : pending_index) {
        pending_callees.push_back(callees[idx]);
        pending_cursors.push_back(pre_seqs[idx]);
      }
      std::vector<Value> fresh = co_await RunChildrenConcurrently(
          std::move(pending_callees), std::move(pending), std::move(pending_cursors));
      std::vector<sharedlog::LogSpace::BatchEntry> post_batch;
      for (size_t j = 0; j < pending_index.size(); ++j) {
        results[pending_index[j]] = fresh[j];
        sharedlog::LogSpace::BatchEntry entry;
        entry.tags = sharedlog::OneTag(step_tag);
        entry.fields.SetStr("op", "invoke");
        entry.fields.SetInt("step", steps[pending_index[j]]);
        entry.fields.SetStr("result", fresh[j]);
        post_batch.push_back(std::move(entry));
      }
      co_await env.log().AppendBatch(std::move(post_batch));
      for (size_t i = 0; i < n; ++i) {
        LogRecordPtr first =
            env.cluster->log_space().FindFirstByStep(step_tag, sharedlog::kOpInvoke, steps[i]);
        if (first != nullptr) results[i] = first->fields.GetStr("result");
      }
    }
    co_return results;
  }

  // §4.7: the first state access resolves the protocol from the transition log, using the
  // initial cursorTS so that re-executions resolve identically.
  sim::Task<ProtocolResolution> Resolve() {
    if (env_->resolution.has_value()) co_return *env_->resolution;
    const RuntimeConfig& config = runtime_->config();
    ProtocolResolution res;
    if (!config.enable_switching || config.default_protocol == ProtocolKind::kUnsafe ||
        config.default_protocol == ProtocolKind::kBoki) {
      res.kind = config.default_protocol;
    } else {
      LogRecordPtr record =
          co_await env_->log().ReadPrev(runtime_->transition_tag(), env_->init_cursor_ts);
      if (record == nullptr) {
        res.kind = config.default_protocol;
      } else if (record->op == sharedlog::kOpSwitchEnd) {
        res.kind = KindFromInt(record->fields.GetInt("target"));
        res.post_switch = true;
      } else {
        res.kind = ProtocolKind::kTransitional;
        res.post_switch = true;
      }
    }
    env_->resolution = res;
    co_return res;
  }

  // Advisor mode (DESIGN.md §11): counts the access in the workload sketch and resolves the
  // protocol per OBJECT through the object's own "switch:k:<key>" transition stream, using
  // the same init-cursorTS bound as the per-scope path so re-executions resolve identically.
  // Resolutions are cached per attempt. Static modes fall through to Resolve().
  sim::Task<ProtocolResolution> ResolveFor(const std::string& key, bool is_read) {
    const RuntimeConfig& config = runtime_->config();
    if (!config.advisor) co_return co_await Resolve();
    runtime_->RecordAccess(env_->WriteTag(key), is_read);
    ProtocolResolution res;
    if (config.default_protocol == ProtocolKind::kUnsafe ||
        config.default_protocol == ProtocolKind::kBoki) {
      res.kind = config.default_protocol;
      co_return res;
    }
    sharedlog::TagId transition_tag = runtime_->ObjectTransitionTag(key);
    if (auto it = env_->object_resolutions.find(transition_tag);
        it != env_->object_resolutions.end()) {
      co_return it->second;
    }
    LogRecordPtr record = co_await env_->log().ReadPrev(transition_tag, env_->init_cursor_ts);
    if (record == nullptr) {
      res.kind = config.default_protocol;
    } else if (record->op == sharedlog::kOpSwitchEnd) {
      res.kind = KindFromInt(record->fields.GetInt("target"));
      res.post_switch = true;
    } else {
      res.kind = ProtocolKind::kTransitional;
      res.post_switch = true;
    }
    env_->object_resolutions.emplace(transition_tag, res);
    co_return res;
  }

  // Invoke for the Halfmoon protocols (Figure 5, lines 31-44): a synchronous pre record pins
  // the callee's instance ID; a synchronous post record pins the result and advances cursorTS
  // monotonically across the workflow.
  sim::Task<Value> InvokeLogged(std::string function, Value input) {
    Env& env = *env_;
    env.step += 1;

    FieldMap pre_fields;
    pre_fields.SetStr("op", "invoke-pre");
    pre_fields.SetInt("step", env.step);
    pre_fields.SetStr("callee", env.instance_id + "/" + env.RandomId());
    env.MaybeCrash("invoke.before");
    StepLogResult pre = co_await LogStep(env, sharedlog::NoTags(), std::move(pre_fields));
    std::string callee = pre.record->fields.GetStr("callee");

    // Skip the call entirely if the result was already logged (Figure 5, lines 33-36).
    if (const LogRecord* cached = PeekNextLog(env);
        cached != nullptr && cached->op == sharedlog::kOpInvoke) {
      FieldMap post_fields;
      post_fields.SetStr("op", "invoke");
      post_fields.SetInt("step", env.step);
      StepLogResult post = co_await LogStep(env, sharedlog::NoTags(), std::move(post_fields));
      co_return post.record->fields.GetStr("result");
    }

    env.MaybeCrash("invoke.after_prelog");
    Value result = co_await CallChild(callee, std::move(function), std::move(input),
                                      pre.record->seqnum);
    env.MaybeCrash("invoke.after_call");

    FieldMap post_fields;
    post_fields.SetStr("op", "invoke");
    post_fields.SetInt("step", env.step);
    post_fields.SetStr("result", result);
    StepLogResult post = co_await LogStep(env, sharedlog::NoTags(), std::move(post_fields));
    if (post.recovered) {
      result = post.record->fields.GetStr("result");
    }
    env.MaybeCrash("invoke.after_postlog");
    co_return result;
  }

  // Boki's invoke uses step-keyed recovery (its asynchronous write markers make stream
  // positions non-deterministic) with first-record-wins conflict resolution.
  sim::Task<Value> InvokeBoki(std::string function, Value input) {
    Env& env = *env_;
    env.step += 1;
    const sharedlog::TagId step_tag = env.step_tag;

    std::string callee;
    SeqNum pre_seq = sharedlog::kInvalidSeqNum;
    for (const LogRecordPtr& record : env.step_logs) {
      if (record->fields.GetInt("step") == env.step) {
        if (record->op == sharedlog::kOpInvokePre) {
          callee = record->fields.GetStr("callee");
          pre_seq = record->seqnum;
        } else if (record->op == sharedlog::kOpInvoke) {
          co_return record->fields.GetStr("result");
        }
      }
    }
    if (callee.empty()) {
      env.MaybeCrash("invoke.before");
      FieldMap pre_fields;
      pre_fields.SetStr("op", "invoke-pre");
      pre_fields.SetInt("step", env.step);
      pre_fields.SetStr("callee", env.instance_id + "/" + env.RandomId());
      co_await env.log().Append(sharedlog::OneTag(step_tag), std::move(pre_fields));
      LogRecordPtr first =
          env.cluster->log_space().FindFirstByStep(step_tag, sharedlog::kOpInvokePre, env.step);
      HM_CHECK(first != nullptr);
      callee = first->fields.GetStr("callee");
      pre_seq = first->seqnum;
    }

    env.MaybeCrash("invoke.after_prelog");
    Value result = co_await CallChild(callee, std::move(function), std::move(input), pre_seq);
    env.MaybeCrash("invoke.after_call");

    FieldMap post_fields;
    post_fields.SetStr("op", "invoke");
    post_fields.SetInt("step", env.step);
    post_fields.SetStr("result", result);
    co_await env.log().Append(sharedlog::OneTag(step_tag), std::move(post_fields));
    LogRecordPtr first =
        env.cluster->log_space().FindFirstByStep(step_tag, sharedlog::kOpInvoke, env.step);
    if (first != nullptr) result = first->fields.GetStr("result");
    co_return result;
  }

  SsfRuntime* runtime_;
  Env* env_;
  const Value* input_;
  std::string root_id_;
};

// ---------------------------------------------------------------------------
// SsfRuntime
// ---------------------------------------------------------------------------

SsfRuntime::SsfRuntime(runtime::Cluster* cluster, RuntimeConfig config)
    : cluster_(cluster), config_(config), inflight_(&cluster->scheduler()) {
  if (config_.advisor) {
    sketch_ = std::make_unique<metrics::WorkloadSketch>(config_.sketch);
  }
}

void SsfRuntime::RegisterFunction(std::string name, SsfBody body) {
  functions_[std::move(name)] = std::move(body);
}

sim::Task<Value> SsfRuntime::InvokeSsf(std::string name, Value input) {
  std::string id = name + "#" + std::to_string(next_invocation_++);
  inflight_.Add();
  ++stats_.invocations;
  Value result;
  try {
    result = co_await RunInvocation(id, /*root_id=*/id, std::move(name), std::move(input));
  } catch (...) {
    inflight_.Done();
    throw;
  }
  inflight_.Done();
  co_return result;
}

sim::Task<Value> SsfRuntime::RunInvocation(std::string instance_id, std::string root_id,
                                           std::string name, Value input,
                                           sharedlog::SeqNum inherited_cursor) {
  WorkflowState& workflow = workflows_[root_id];
  workflow.members.push_back(instance_id);
  auto state = std::make_shared<InvocationState>();

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (state->done) break;  // A peer instance completed the work.

    // The platform may suspect a timeout and race a duplicate instance (§5.1).
    if (cluster_->failure_injector().ShouldDuplicate(cluster_->rng())) {
      ++stats_.peer_instances;
      cluster_->scheduler().Spawn(RunPeer(state, instance_id, root_id, name, input,
                                          attempt + 1000, inherited_cursor));
    }

    ++stats_.attempts;
    ++state->live_attempts;
    ++workflows_[root_id].live_attempts;
    bool crashed = false;
    try {
      Value result = co_await RunAttempt(state.get(), instance_id, root_id, name, input,
                                         attempt, inherited_cursor);
      --state->live_attempts;
      if (!state->done) {
        state->done = true;
        state->result = std::move(result);
      }
    } catch (const runtime::SsfCrashed&) {
      --state->live_attempts;
      ++stats_.crashes;
      crashed = true;
    }
    --workflows_[root_id].live_attempts;
    if (!crashed) break;
    // Crash detected: the platform re-executes after the detection delay.
    co_await cluster_->scheduler().Delay(config_.retry_delay);
  }

  HM_CHECK_MSG(state->done, "invocation exhausted its retry budget");
  Value result = state->result;
  if (instance_id == root_id) {
    workflows_[root_id].root_done = true;
  }
  MaybeFinishWorkflow(root_id);
  co_return result;
}

sim::Task<Value> SsfRuntime::RunAttempt(InvocationState* state, const std::string& instance_id,
                                        const std::string& root_id, const std::string& name,
                                        const Value& input, int attempt,
                                        sharedlog::SeqNum inherited_cursor) {
  auto it = functions_.find(name);
  HM_CHECK_MSG(it != functions_.end(), "unknown function");

  // Gateway dispatch hop, then wait for a worker slot on the chosen node.
  co_await cluster_->scheduler().Delay(
      cluster_->models().invoke_dispatch.Sample(cluster_->rng()));
  runtime::FunctionNode& node = cluster_->PickNode();
  co_await node.workers().Acquire();
  sim::SemaphoreGuard guard(&node.workers());

  Env env;
  env.instance_id = instance_id;
  env.attempt = attempt;
  env.cluster = cluster_;
  env.node = &node;
  env.preserve_write_order = config_.preserve_write_order;
  env.drop_commit_append = config_.drop_commit_append;

  ContextImpl context(this, &env, &input, root_id);
  if (config_.default_protocol != ProtocolKind::kUnsafe) {
    if (inherited_cursor == sharedlog::kInvalidSeqNum || !config_.inherit_child_cursor) {
      co_await InitSsf(env, input);
    } else {
      co_await InitChildSsf(env, inherited_cursor);
    }
  }
  co_return co_await it->second(context);
}

sim::Task<void> SsfRuntime::RunPeer(std::shared_ptr<InvocationState> state,
                                    std::string instance_id, std::string root_id,
                                    std::string name, Value input, int attempt,
                                    sharedlog::SeqNum inherited_cursor) {
  co_await cluster_->scheduler().Delay(config_.duplicate_delay);
  if (state->done) co_return;  // The primary finished before the peer launched.
  ++stats_.attempts;
  ++state->live_attempts;
  ++workflows_[root_id].live_attempts;
  try {
    Value result = co_await RunAttempt(state.get(), instance_id, root_id, name, input,
                                       attempt, inherited_cursor);
    --state->live_attempts;
    if (!state->done) {
      state->done = true;
      state->result = std::move(result);
    }
  } catch (const runtime::SsfCrashed&) {
    // Peers are not retried; the primary's retry loop drives progress.
    --state->live_attempts;
    ++stats_.crashes;
  }
  --workflows_[root_id].live_attempts;
  MaybeFinishWorkflow(root_id);
}

void SsfRuntime::MaybeFinishWorkflow(const std::string& root_id) {
  auto it = workflows_.find(root_id);
  if (it == workflows_.end()) return;
  if (!it->second.root_done || it->second.live_attempts > 0) return;
  // The whole workflow has drained: the root's init record may now release the GC/switch
  // frontier, and every member's step log becomes collectible.
  cluster_->MarkInstanceFinished(root_id);
  for (const std::string& member : it->second.members) {
    cluster_->EnqueueStepLogTrim(member);
  }
  workflows_.erase(it);
}

void SsfRuntime::PopulateObject(const std::string& key, const Value& value) {
  SimTime now = cluster_->scheduler().Now();
  // Seed only the representation the configured protocol actually reads, so storage
  // accounting reflects each protocol's §4.6 model: a single LATEST version under
  // Halfmoon-write/Boki/unsafe, versions + write-log records under Halfmoon-read. With
  // switching enabled both schemes coexist (§5.2) and both are seeded.
  bool single_version = config_.default_protocol != ProtocolKind::kHalfmoonRead;
  bool multi_version = config_.default_protocol == ProtocolKind::kHalfmoonRead;
  if (config_.enable_switching || config_.advisor) {
    // Objects may end up on either protocol at runtime, so both representations coexist
    // (§5.2) and both are seeded.
    single_version = true;
    multi_version = true;
  }
  if (single_version) {
    cluster_->kv_state().Put(now, key, value);
  }
  if (!multi_version) return;
  // One multi-version copy plus its write-log commit record (Halfmoon-read path).
  std::string version = "seed:" + key;
  sharedlog::TagId write_tag =
      cluster_->log_space().tags().InternPrefixed(sharedlog::kWriteLogPrefix, key);
  cluster_->kv_state().PutVersioned(now, write_tag, version, value);
  FieldMap fields;
  fields.SetStr("op", "write");
  fields.SetInt("step", 0);
  fields.SetStr("version", version);
  cluster_->log_space().Append(now, sharedlog::OneTag(write_tag), std::move(fields));
}

}  // namespace halfmoon::core
