// The serverless runtime: function registry, gateway dispatch, crash detection and retry,
// duplicate-instance injection, and the protocol-uniform Init/Invoke machinery.

#ifndef HALFMOON_CORE_SSF_RUNTIME_H_
#define HALFMOON_CORE_SSF_RUNTIME_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/env.h"
#include "src/core/env.h"
#include "src/core/ssf_context.h"
#include "src/metrics/workload_sketch.h"
#include "src/runtime/cluster.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace halfmoon::core {

// The HM_ADVISOR environment default: enables advisor mode (per-object protocol resolution
// + hot-path workload sketching, DESIGN.md §11) for every runtime that does not set the
// knob explicitly. Unset / 0 keeps the runtime bit-identical to the static per-scope
// behavior — pinned by online_advisor_test's golden checksum.
inline bool DefaultAdvisorMode() { return EnvFlag("HM_ADVISOR"); }

struct RuntimeConfig {
  ProtocolKind default_protocol = ProtocolKind::kHalfmoonRead;

  // When true, the first state access of every SSF resolves its protocol through the
  // transition log (§4.7); when false, `default_protocol` applies unconditionally and the
  // lookup is skipped.
  bool enable_switching = false;
  std::string switch_scope = "global";

  // Crash handling: how quickly the platform detects a dead function and re-executes it, and
  // how many re-executions it attempts before giving up.
  SimDuration retry_delay = Milliseconds(1);
  int max_attempts = 200;

  // Delay after which a duplicate (peer) instance launches when the injector asks for one.
  SimDuration duplicate_delay = Milliseconds(5);

  // §4.3 remark: child SSFs may inherit their initial cursorTS from the parent's invoke-pre
  // record instead of appending an init record of their own. Disable for ablation.
  bool inherit_child_cursor = true;

  // §4.4 ordered-writes extension: insert a sync record between consecutive Halfmoon-write
  // writes to different objects, so dependent pairs cannot commute. Log-free in the best
  // case; off by default (most workloads make dependencies explicit through invocations).
  bool preserve_write_order = false;

  // Faultcheck negative control: Halfmoon-read writes silently skip the commit append, so
  // updates never become visible on the write log. Exists to prove the consistency oracle
  // detects a broken protocol; must never be set outside tests.
  bool drop_commit_append = false;

  // Advisor mode (DESIGN.md §11): every state access is counted in a space-bounded workload
  // sketch, and protocol resolution is per OBJECT — each object's "switch:k:<key>" stream
  // overrides default_protocol, so the background OnlineAdvisor can move individual objects
  // between HM-read and HM-write as their read ratio drifts. Off (the default when
  // HM_ADVISOR is unset) leaves resolution, interning order, and committed content exactly
  // as in the static runtime.
  bool advisor = DefaultAdvisorMode();

  // Sketch geometry for advisor mode; the memory bound is a function of this alone.
  metrics::WorkloadSketchConfig sketch;
};

struct RuntimeStats {
  int64_t invocations = 0;
  int64_t attempts = 0;
  int64_t crashes = 0;
  int64_t peer_instances = 0;
};

class SsfRuntime {
 public:
  SsfRuntime(runtime::Cluster* cluster, RuntimeConfig config);

  void RegisterFunction(std::string name, SsfBody body);

  // Top-level entry point (the gateway): runs `name` as a new root invocation and returns its
  // result after any retries. Tracks the whole workflow for garbage collection.
  sim::Task<Value> InvokeSsf(std::string name, Value input);

  // Runs an invocation with a fixed instance ID (callee invocations and re-invocations).
  // `root_id` names the root of the workflow for GC bookkeeping. Child SSFs pass
  // `inherited_cursor` — the seqnum of the parent's invoke-pre record — and skip the init
  // append entirely: per the §4.3 remark, the initial cursorTS only needs to be
  // deterministic, and can be inherited from the parent SSF.
  sim::Task<Value> RunInvocation(std::string instance_id, std::string root_id,
                                 std::string name, Value input,
                                 sharedlog::SeqNum inherited_cursor = sharedlog::kInvalidSeqNum);

  // Installs an object so that it is readable under every protocol: the LATEST slot, one
  // multi-version copy, and a write-log commit record. No latency (test/bench setup).
  void PopulateObject(const std::string& key, const Value& value);

  runtime::Cluster& cluster() { return *cluster_; }
  const RuntimeConfig& config() const { return config_; }

  // Interned id of the transition-log tag for the configured switch scope; resolved once per
  // runtime so per-SSF protocol resolution never rebuilds the "switch:<scope>" string.
  sharedlog::TagId transition_tag() {
    if (transition_tag_ == sharedlog::kInvalidTagId) {
      transition_tag_ = cluster_->log_space().tags().Intern(
          sharedlog::TransitionLogTag(config_.switch_scope));
    }
    return transition_tag_;
  }
  const RuntimeStats& stats() const { return stats_; }

  // ---- Advisor mode (DESIGN.md §11) ----
  bool advisor_enabled() const { return config_.advisor; }

  // The hot-path workload sketch (valid only in advisor mode). Single-owner, like every
  // other per-cluster metric: the full-protocol runtime lives on one scheduler.
  metrics::WorkloadSketch& sketch() { return *sketch_; }

  // O(depth) sketch bump for one state access. `object` is the interned write-log TagId —
  // the same id the advisor's keyspace walk and the KV version index use.
  void RecordAccess(sharedlog::TagId object, bool is_read) {
    if (is_read) {
      sketch_->RecordRead(object);
    } else {
      sketch_->RecordWrite(object);
    }
  }

  // Interned id of `key`'s per-object transition stream ("switch:k:<key>"), built without
  // materializing the concatenated name.
  sharedlog::TagId ObjectTransitionTag(const std::string& key) {
    return cluster_->log_space().tags().InternPrefixed(sharedlog::kObjectTransitionPrefix,
                                                       key);
  }

  // Outstanding top-level invocations; benchmarks drain this before reading metrics.
  sim::WaitGroup& inflight() { return inflight_; }

 private:
  friend class ContextImpl;

  struct InvocationState {
    bool done = false;
    Value result;
    int live_attempts = 0;
  };

  // Per-workflow bookkeeping. A root's init record feeds the GC/switch frontier, so the root
  // counts as running until the *entire* workflow — including lingering duplicate instances
  // of its children — has drained; only then may versions its members might read be
  // collected.
  struct WorkflowState {
    std::vector<std::string> members;
    int live_attempts = 0;
    bool root_done = false;
  };

  sim::Task<Value> RunAttempt(InvocationState* state, const std::string& instance_id,
                              const std::string& root_id, const std::string& name,
                              const Value& input, int attempt,
                              sharedlog::SeqNum inherited_cursor);

  // Spawned when the platform suspects a timeout: races the primary attempt (§5.1).
  sim::Task<void> RunPeer(std::shared_ptr<InvocationState> state, std::string instance_id,
                          std::string root_id, std::string name, Value input, int attempt,
                          sharedlog::SeqNum inherited_cursor);

  void MaybeFinishWorkflow(const std::string& root_id);

  runtime::Cluster* cluster_;
  RuntimeConfig config_;
  std::unordered_map<std::string, SsfBody> functions_;
  std::unordered_map<std::string, WorkflowState> workflows_;
  RuntimeStats stats_;
  sim::WaitGroup inflight_;
  uint64_t next_invocation_ = 0;
  sharedlog::TagId transition_tag_ = sharedlog::kInvalidTagId;
  std::unique_ptr<metrics::WorkloadSketch> sketch_;  // Non-null iff advisor mode.
};

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_SSF_RUNTIME_H_
