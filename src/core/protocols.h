// The five data-access protocols (§3, §4): Halfmoon-read, Halfmoon-write, the Boki symmetric
// baseline, the unsafe baseline, and the transitional protocol used while switching.
//
// Each protocol is a pair of free functions (Read/Write) over the per-attempt Env. Invoke and
// Init are protocol-uniform and live with the runtime (ssf_runtime.*).
//
// Logging shapes (failure-free costs; "sync" latencies add up, "async" do not):
//                       Read                          Write
//   Unsafe              DBRead                        plain DBWrite
//   Boki                DBRead + sync log             sync version log + cond DBWrite + async
//                                                     commit log
//   Halfmoon-read       logReadPrev (cached) +        versioned DBWrite + one *batched* round
//                       versioned DBRead              carrying version + commit records
//   Halfmoon-write      DBRead + sync log             cond DBWrite only (log-free)
//   Transitional        dual read + sync log          versioned DBWrite + cond DBWrite +
//                                                     batched version/commit round

#ifndef HALFMOON_CORE_PROTOCOLS_H_
#define HALFMOON_CORE_PROTOCOLS_H_

#include <string>

#include "src/core/env.h"
#include "src/sim/task.h"

namespace halfmoon::core::protocols {

// ---- Halfmoon-read: log-free reads (Figure 5) ----

// Seeks backward from cursorTS in the object's write log and fetches the version the matching
// record points to. `post_switch` reads also consult the LATEST slot and pick the fresher of
// the two (§5.2), because the object's newest state may live on either path after a switch.
sim::Task<Value> HalfmoonReadRead(Env& env, const std::string& key, bool post_switch);

// Multi-version write: installs a new version under a random ID, then commits it with a
// batched pair of log records (version record + commit record). The commit record is tagged
// into both the step log and the object's write log (§4.1).
sim::Task<void> HalfmoonReadWrite(Env& env, const std::string& key, Value value);

// ---- Halfmoon-write: log-free writes (Figure 7) ----

// Reads the current object and logs the result (the record *is* the recovery value).
sim::Task<Value> HalfmoonWriteRead(Env& env, const std::string& key, bool post_switch);

// Log-free conditional update versioned by (cursorTS, consecutive-write counter).
sim::Task<void> HalfmoonWriteWrite(Env& env, const std::string& key, Value value);

// ---- Boki: the symmetric logging baseline (§2, [51]) ----

sim::Task<Value> BokiRead(Env& env, const std::string& key);
sim::Task<void> BokiWrite(Env& env, const std::string& key, Value value);

// ---- Unsafe: raw operations, no exactly-once guarantee (§6's lower bound) ----

sim::Task<Value> UnsafeRead(Env& env, const std::string& key);
sim::Task<void> UnsafeWrite(Env& env, const std::string& key, Value value);

// ---- Transitional: logs reads AND writes, maintains both versioning schemes (§5.2) ----

sim::Task<Value> TransitionalRead(Env& env, const std::string& key);
sim::Task<void> TransitionalWrite(Env& env, const std::string& key, Value value);

// Reads both the LATEST slot and the freshest write-log version <= cursorTS, returning the
// fresher of the two (LATEST's version.cursor_ts vs. the write record's seqnum; both live in
// the same seqnum space). Used by the transitional protocol and post-switch reads.
sim::Task<Value> DualRead(Env& env, const std::string& key);

}  // namespace halfmoon::core::protocols

#endif  // HALFMOON_CORE_PROTOCOLS_H_
