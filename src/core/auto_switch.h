// Automatic protocol selection for dynamic workloads.
//
// §4.6 gives the criterion for choosing a protocol and §4.7 the mechanism for switching; this
// service closes the loop (a natural extension the paper leaves to the operator): it samples
// the observed read/write intensity of the external state over sliding windows, evaluates the
// runtime criterion, and triggers a pauseless switch when the recommendation flips. A
// hysteresis margin around the boundary read ratio prevents flapping on borderline mixes.

#ifndef HALFMOON_CORE_AUTO_SWITCH_H_
#define HALFMOON_CORE_AUTO_SWITCH_H_

#include <cstdint>
#include <vector>

#include "src/core/advisor.h"
#include "src/core/switch_manager.h"
#include "src/runtime/cluster.h"
#include "src/sim/task.h"

namespace halfmoon::core {

struct AutoSwitchConfig {
  // Sampling window over which the read ratio is measured.
  SimDuration window = Seconds(2);
  // Required distance between the observed read ratio and the criterion boundary before a
  // switch fires (hysteresis against flapping).
  double margin = 0.08;
  // Minimum operations per window for a statistically meaningful decision.
  int64_t min_ops = 50;
  // Cost ratio C_w / C_r of the deployment (§4.6; ≈ 2 for this prototype).
  double write_cost_ratio = 2.0;
};

struct AutoSwitchStats {
  int64_t windows_evaluated = 0;
  int64_t switches_triggered = 0;
  double last_read_ratio = 0.0;
};

class AutoSwitchService {
 public:
  AutoSwitchService(runtime::Cluster* cluster, SwitchManager* manager,
                    ProtocolKind initial_protocol, AutoSwitchConfig config = {})
      : cluster_(cluster),
        manager_(manager),
        current_(initial_protocol),
        config_(config) {}

  // Spawns the periodic evaluation loop; runs until Stop().
  void Start();
  void Stop() { stopped_ = true; }

  // One evaluation step over the ops observed since the previous call; exposed for tests.
  // Returns true if a switch was initiated.
  sim::Task<bool> EvaluateOnce();

  ProtocolKind current_protocol() const { return current_; }
  const AutoSwitchStats& stats() const { return stats_; }

 private:
  sim::Task<void> Loop();

  runtime::Cluster* cluster_;
  SwitchManager* manager_;
  ProtocolKind current_;
  AutoSwitchConfig config_;
  AutoSwitchStats stats_;
  bool stopped_ = false;
  int64_t last_reads_ = 0;
  int64_t last_writes_ = 0;
};

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_AUTO_SWITCH_H_
