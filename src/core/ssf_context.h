// The application-facing API of the Halfmoon client library (§3).
//
// Stateful serverless functions are written as coroutines over SsfContext. The context's
// Read/Write/Invoke have the same signatures as their raw counterparts but perform logging
// behind the scenes according to the active protocol, guaranteeing exactly-once semantics
// under crashes, retries, and duplicate instances.
//
// Determinism contract (§2, §4.1): an SSF body must be deterministic given its input and the
// results of its context operations — no wall-clock time, no private randomness. Anything
// non-deterministic must flow through the context so the protocols can make it recoverable.

#ifndef HALFMOON_CORE_SSF_CONTEXT_H_
#define HALFMOON_CORE_SSF_CONTEXT_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/value.h"
#include "src/sim/task.h"

namespace halfmoon::core {

class SsfContext {
 public:
  virtual ~SsfContext() = default;

  // Reads the object; empty value if it was never written.
  virtual sim::Task<Value> Read(std::string key) = 0;

  // Writes the object.
  virtual sim::Task<void> Write(std::string key, Value value) = 0;

  // Invokes another SSF and returns its result, exactly once across crashes of either side.
  virtual sim::Task<Value> Invoke(std::string function, Value input) = 0;

  // Scatter-gather: invokes several SSFs concurrently and returns their results in call
  // order, with the same exactly-once guarantee. The callee IDs are pinned by one batched
  // pre-record round and the results by one batched post-record round, so the logging cost is
  // that of a single invocation.
  virtual sim::Task<std::vector<Value>> InvokeAll(
      std::vector<std::pair<std::string, Value>> calls) = 0;

  // Charges one unit of local compute (the SSF's own CPU work between state operations).
  virtual sim::Task<void> Compute() = 0;

  // Explicitly advances cursorTS to the present by appending a sync record, upgrading
  // subsequent operations on this SSF to linearizable behaviour (§4.4). No-op for protocols
  // whose reads are already real-time.
  virtual sim::Task<void> Sync() = 0;

  // The invocation input.
  virtual const Value& input() const = 0;

  // The instance ID (stable across retries), exposed for logging/debugging in applications.
  virtual const std::string& instance_id() const = 0;
};

// An SSF body. Invoked (and re-invoked after crashes) by the runtime.
using SsfBody = std::function<sim::Task<Value>(SsfContext&)>;

}  // namespace halfmoon::core

#endif  // HALFMOON_CORE_SSF_CONTEXT_H_
