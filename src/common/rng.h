// Deterministic random number generation for the simulation.
//
// A single Rng instance is owned by the simulation world and threaded through every component
// that needs randomness, so a fixed seed reproduces an entire run bit-for-bit.

#ifndef HALFMOON_COMMON_RNG_H_
#define HALFMOON_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>

namespace halfmoon {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  // Exponential with the given mean (used for Poisson inter-arrival gaps).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Standard normal.
  double Normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  // Random lowercase hex string of `len` characters, for instance IDs and version numbers.
  std::string HexString(size_t len);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace halfmoon

#endif  // HALFMOON_COMMON_RNG_H_
