#include "src/common/rng.h"

namespace halfmoon {

std::string Rng::HexString(size_t len) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[UniformInt(0, 15)]);
  }
  return out;
}

}  // namespace halfmoon
