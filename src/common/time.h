// Simulated-time types shared by every module.
//
// All of Halfmoon's substrates run on a discrete-event simulator (src/sim). Time is virtual:
// a signed nanosecond count since the start of the simulation. We use plain integer types
// rather than std::chrono to keep event-queue keys trivially comparable and cheap to copy.

#ifndef HALFMOON_COMMON_TIME_H_
#define HALFMOON_COMMON_TIME_H_

#include <cstdint>

namespace halfmoon {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t us) { return us * 1000; }
constexpr SimDuration Milliseconds(int64_t ms) { return ms * 1000 * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000 * 1000; }

// Fractional constructors, used by latency models that work in milliseconds.
constexpr SimDuration FromMillisDouble(double ms) {
  return static_cast<SimDuration>(ms * 1e6);
}
constexpr double ToMillisDouble(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSecondsDouble(SimDuration d) { return static_cast<double>(d) / 1e9; }

}  // namespace halfmoon

#endif  // HALFMOON_COMMON_TIME_H_
