// Byte-accounted values and field maps.
//
// Objects in the external state and payloads of log records are modeled as strings plus typed
// field maps. Every container here can report its approximate serialized size, which feeds the
// storage-overhead accounting of Figure 12.

#ifndef HALFMOON_COMMON_VALUE_H_
#define HALFMOON_COMMON_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>

namespace halfmoon {

// A value stored in the external state. Plain bytes; applications encode what they need.
using Value = std::string;

// One field of a log record: either a signed integer or a byte string.
using Field = std::variant<int64_t, std::string>;

// An ordered field map, e.g. {"op": "write", "step": 3, "version": "a1b2"}.
// Ordered so that record equality and test expectations are deterministic.
class FieldMap {
 public:
  FieldMap() = default;
  FieldMap(std::initializer_list<std::pair<const std::string, Field>> init) : fields_(init) {}

  void SetInt(const std::string& key, int64_t v) { fields_[key] = v; }
  void SetStr(const std::string& key, std::string v) { fields_[key] = std::move(v); }

  bool Has(const std::string& key) const { return fields_.count(key) > 0; }

  // Typed getters abort on missing keys or type mismatches: a malformed log record indicates a
  // protocol bug, and the simulation must not limp past it.
  int64_t GetInt(const std::string& key) const;
  const std::string& GetStr(const std::string& key) const;

  // Approximate serialized size in bytes: key bytes + value bytes (8 for integers).
  size_t ByteSize() const;

  bool operator==(const FieldMap& other) const { return fields_ == other.fields_; }

  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }
  size_t size() const { return fields_.size(); }

 private:
  std::map<std::string, Field> fields_;
};

// Helpers for packing integers into Values used by the workloads.
Value EncodeInt64(int64_t v);
int64_t DecodeInt64(const Value& v);

// Returns `v` padded with filler bytes up to `size` (used to emulate fixed object sizes).
Value PadValue(Value v, size_t size);

}  // namespace halfmoon

#endif  // HALFMOON_COMMON_VALUE_H_
