// Byte-accounted values and field maps.
//
// Objects in the external state and payloads of log records are modeled as strings plus typed
// field maps. Every container here can report its approximate serialized size, which feeds the
// storage-overhead accounting of Figure 12.

#ifndef HALFMOON_COMMON_VALUE_H_
#define HALFMOON_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace halfmoon {

// A value stored in the external state. Plain bytes; applications encode what they need.
using Value = std::string;

// One field of a log record: either a signed integer or a byte string.
using Field = std::variant<int64_t, std::string>;

// An ordered field map, e.g. {"op": "write", "step": 3, "version": "a1b2"}.
// Ordered so that record equality and test expectations are deterministic.
//
// Records carry a handful of fields (the protocols use at most five), so the map is a flat
// sorted vector rather than a node-based tree: one contiguous allocation, cache-friendly
// lookups, and cheap moves — log records sit on every hot path of the simulation.
class FieldMap {
 public:
  using Entry = std::pair<std::string, Field>;

  FieldMap() = default;
  FieldMap(std::initializer_list<std::pair<const std::string, Field>> init) {
    for (const auto& [key, field] : init) {
      Upsert(key) = field;
    }
  }

  void SetInt(const std::string& key, int64_t v) { Upsert(key) = v; }
  void SetStr(const std::string& key, std::string v) { Upsert(key) = std::move(v); }

  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  // Typed getters abort on missing keys or type mismatches: a malformed log record indicates a
  // protocol bug, and the simulation must not limp past it.
  int64_t GetInt(const std::string& key) const;
  const std::string& GetStr(const std::string& key) const;

  // Approximate serialized size in bytes: key bytes + value bytes (8 for integers).
  size_t ByteSize() const;

  bool operator==(const FieldMap& other) const { return fields_ == other.fields_; }

  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }
  size_t size() const { return fields_.size(); }

 private:
  const Field* Find(const std::string& key) const;
  Field& Upsert(const std::string& key);

  std::vector<Entry> fields_;  // Sorted by key.
};

// Helpers for packing integers into Values used by the workloads.
Value EncodeInt64(int64_t v);
int64_t DecodeInt64(const Value& v);

// Returns `v` padded with filler bytes up to `size` (used to emulate fixed object sizes).
Value PadValue(Value v, size_t size);

}  // namespace halfmoon

#endif  // HALFMOON_COMMON_VALUE_H_
