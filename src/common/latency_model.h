// Latency models calibrated to the paper's published measurements.
//
// Halfmoon's evaluation (Table 1, §4.1) reports median and 99th-percentile latencies for the
// building-block operations of its testbed (Boki's shared log + Amazon DynamoDB). We reproduce
// the *shape* of the evaluation by sampling operation latencies from lognormal distributions
// fit to those two quantiles. A lognormal is the standard choice for network/storage service
// times: strictly positive, right-skewed, fully determined by (median, p99).

#ifndef HALFMOON_COMMON_LATENCY_MODEL_H_
#define HALFMOON_COMMON_LATENCY_MODEL_H_

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace halfmoon {

// Samples from a lognormal distribution parameterized by its median and 99th percentile,
// both in milliseconds.
class LognormalLatency {
 public:
  LognormalLatency(double median_ms, double p99_ms) : mu_(std::log(median_ms)) {
    HM_CHECK(median_ms > 0.0 && p99_ms >= median_ms);
    // p99 = exp(mu + sigma * z99)  =>  sigma = ln(p99/median) / z99.
    static constexpr double kZ99 = 2.3263478740408408;
    sigma_ = std::log(p99_ms / median_ms) / kZ99;
  }

  SimDuration Sample(Rng& rng) const {
    double ms = std::exp(mu_ + sigma_ * rng.Normal());
    return FromMillisDouble(ms);
  }

  double median_ms() const { return std::exp(mu_); }
  double p99_ms() const { return std::exp(mu_ + sigma_ * 2.3263478740408408); }

 private:
  double mu_;
  double sigma_;
};

// The calibration constants used across the repository. All values in milliseconds and taken
// from the paper: Table 1 for log/read/write, §4.1 for the cached logReadPrev path.
struct LatencyCalibration {
  // Shared-log append (Boki's logging layer): 1.18 ms median, 1.91 ms p99 (Table 1).
  double log_append_median = 1.18;
  double log_append_p99 = 1.91;

  // Cached logReadPrev on a function node: 0.12 ms median, 0.72 ms p99 (§4.1, citing Boki).
  double log_read_cached_median = 0.12;
  double log_read_cached_p99 = 0.72;

  // Uncached log read has to reach a storage node; comparable to an append round trip.
  double log_read_uncached_median = 1.0;
  double log_read_uncached_p99 = 1.8;

  // logReadPrev served entirely from the node-local payload cache (DESIGN.md §9): no index
  // walk, no storage hop — just a validation against the local index replica. Modeled after
  // AFT's shim-local cached reads (Sreekanti et al., EuroSys '20): an order of magnitude
  // below the index-replica path.
  double log_read_cache_hit_median = 0.01;
  double log_read_cache_hit_p99 = 0.03;

  // DynamoDB read: 1.88 ms median, 4.60 ms p99 (Table 1).
  double db_read_median = 1.88;
  double db_read_p99 = 4.60;

  // DynamoDB *conditional* write: 2.47 ms median, 5.86 ms p99 (Table 1; Boki's writes are
  // conditional updates, so the published number is the conditional path).
  double db_cond_write_median = 2.47;
  double db_cond_write_p99 = 5.86;

  // Plain unconditional write, used by the unsafe baseline. §6.1 observes that log-free
  // conditional writes are "still higher than raw writes", so the raw path is cheaper.
  double db_plain_write_median = 2.20;
  double db_plain_write_p99 = 5.20;

  // Function-node local compute per SSF step and invocation dispatch overhead.
  double compute_step_median = 0.05;
  double compute_step_p99 = 0.15;
  double invoke_dispatch_median = 0.30;
  double invoke_dispatch_p99 = 0.80;

  // Index propagation delay from the logging layer to function-node replicas. Governs how
  // often logReadPrev takes the cheap local path; ablation benches crank it up to measure the
  // value of Boki's index replication.
  double index_propagation_median = 0.25;
  double index_propagation_p99 = 0.80;

  // One group-flush of the journal's block buffer to the durable medium (DESIGN.md §13):
  // an NVMe-class fsync — tens of microseconds typical, with a long sync/erase tail.
  double durable_flush_median = 0.08;
  double durable_flush_p99 = 0.5;
};

// Minimum virtual latency of any interaction that crosses log shards (and, in parallel mode,
// worker threads): no sampled cross-shard delay may fall below this floor. It is the
// conservative-synchronization lookahead of sim::ParallelEngine (DESIGN.md §10) — a worker
// may run `CrossShardLookahead()` of virtual time ahead of the global watermark because no
// peer can reach it faster than this. 0.4 ms sits at roughly the 0.2nd percentile of the
// Table-1 append distribution (median 1.18 ms, sigma ~= 0.21), so clamping sampled
// cross-shard latencies up to it is a sub-1-in-10^5 perturbation of the calibrated model
// while keeping windows ~50 level-0 timer-wheel slots wide.
inline constexpr double kMinCrossShardLatencyMs = 0.4;

inline constexpr SimDuration CrossShardLookahead() {
  return FromMillisDouble(kMinCrossShardLatencyMs);
}

// Clamps a sampled cross-shard delay up to the conservative floor. Every delay handed to
// ParallelEngine::Send must pass through this (Send hard-checks the floor).
inline constexpr SimDuration ClampCrossShard(SimDuration sampled) {
  return sampled < CrossShardLookahead() ? CrossShardLookahead() : sampled;
}

// Pre-built samplers for every calibrated operation. One instance is shared by the whole
// simulated cluster.
struct LatencyModels {
  explicit LatencyModels(const LatencyCalibration& cal = LatencyCalibration{})
      : log_append(cal.log_append_median, cal.log_append_p99),
        log_read_cached(cal.log_read_cached_median, cal.log_read_cached_p99),
        log_read_uncached(cal.log_read_uncached_median, cal.log_read_uncached_p99),
        log_read_cache_hit(cal.log_read_cache_hit_median, cal.log_read_cache_hit_p99),
        db_read(cal.db_read_median, cal.db_read_p99),
        db_cond_write(cal.db_cond_write_median, cal.db_cond_write_p99),
        db_plain_write(cal.db_plain_write_median, cal.db_plain_write_p99),
        compute_step(cal.compute_step_median, cal.compute_step_p99),
        invoke_dispatch(cal.invoke_dispatch_median, cal.invoke_dispatch_p99),
        index_propagation(cal.index_propagation_median, cal.index_propagation_p99),
        durable_flush(cal.durable_flush_median, cal.durable_flush_p99) {}

  LognormalLatency log_append;
  LognormalLatency log_read_cached;
  LognormalLatency log_read_uncached;
  LognormalLatency log_read_cache_hit;
  LognormalLatency db_read;
  LognormalLatency db_cond_write;
  LognormalLatency db_plain_write;
  LognormalLatency compute_step;
  LognormalLatency invoke_dispatch;

  // Index propagation delay from the logging layer to function-node caches.
  LognormalLatency index_propagation;

  // One journal group-flush to the block device (the storage engine's fsync).
  LognormalLatency durable_flush;
};

}  // namespace halfmoon

#endif  // HALFMOON_COMMON_LATENCY_MODEL_H_
