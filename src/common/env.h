// Centralized HM_* environment-variable parsing.
//
// Runtime knobs (HM_SHARDS, HM_PARALLEL, HM_ADVISOR, HM_FAULTCHECK_FULL, ...) used to
// hand-roll getenv+parse at each consumer; these helpers are the single implementation.
// Header-only and dependency-free so every layer (sim, sharedlog, runtime, core, tests)
// can include it without cycles — core/env.h, for example, includes runtime/cluster.h,
// which itself needs EnvInt for its shard-count default.

#ifndef HALFMOON_COMMON_ENV_H_
#define HALFMOON_COMMON_ENV_H_

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>

namespace halfmoon {

// A malformed HM_* variable is a hard configuration error, never a silent fallback: atoi
// used to turn HM_PIPELINE=4x into 4 and the min-clamp turned HM_SHARDS=-1 into 1, both of
// which ran a DIFFERENT simulation than the one the user asked for.
[[noreturn]] inline void EnvParseError(const char* name, const char* raw, const char* why) {
  std::fprintf(stderr, "fatal: %s=\"%s\" is invalid: %s\n", name, raw, why);
  std::abort();
}

// Integer-valued knob: unset or empty -> fallback. Anything else must parse COMPLETELY as a
// base-10 integer >= min_value; trailing garbage, overflow, and out-of-range values abort
// with the offending variable named.
inline int EnvInt(const char* name, int min_value, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') {
    EnvParseError(name, raw, "not an integer (trailing garbage rejected)");
  }
  if (errno == ERANGE || value < INT_MIN || value > INT_MAX) {
    EnvParseError(name, raw, "out of integer range");
  }
  if (value < min_value) {
    EnvParseError(name, raw, "below the knob's minimum value");
  }
  return static_cast<int>(value);
}

// Boolean knob: on when set to anything non-empty not starting with '0'.
inline bool EnvFlag(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' && *raw != '0';
}

// Group-commit knobs (DESIGN.md §7.5, §12). These are the environment defaults that
// ClusterConfig / ParallelClusterConfig inherit, so benches and CI can sweep the append
// path without code changes.

// HM_PIPELINE: sequencer rounds in flight per node-shard batcher. 1 (the default) is the
// serial engine, bit-identical to the pre-pipelining implementation.
inline int DefaultAppendPipelineDepth() { return EnvInt("HM_PIPELINE", 1, 1); }

// HM_BATCH_WINDOW: extra batching window in microseconds before a round departs. 0 keeps
// isolated appends at exactly the unbatched latency.
inline int DefaultAppendBatchWindowUs() { return EnvInt("HM_BATCH_WINDOW", 0, 0); }

// HM_BATCH_MAX: cap on requests per sequencer round.
inline int DefaultAppendBatchMax() { return EnvInt("HM_BATCH_MAX", 1, 64); }

// HM_DURABLE: attach the simulated durable medium (DESIGN.md §13) under the shared log and
// KV store. Off (the default) constructs no storage engine at all — bit-identical to the
// pre-storage simulation, pinned by the golden checksums.
inline bool DefaultDurableMode() { return EnvFlag("HM_DURABLE"); }

// HM_CHECKPOINT: attach the incremental checkpoint + journal-compaction tier (DESIGN.md
// §14) on top of the durable medium. Only effective with HM_DURABLE=1 (there is no journal
// to compact otherwise). Off (the default) constructs no checkpoint service at all —
// bit-identical to the PR 9 durable engine.
inline bool DefaultCheckpointMode() { return EnvFlag("HM_CHECKPOINT"); }

// HM_CHECKPOINT_SLICE: checkpoint-walk items emitted per slice before the daemon yields to
// foreground traffic (bounds how fuzzy an image gets and how long a slice blocks).
inline int DefaultCheckpointSliceBudget() { return EnvInt("HM_CHECKPOINT_SLICE", 1, 4096); }

// HM_CHECKPOINT_BYTES: journal growth (bytes appended since the last round began) that
// auto-triggers the next checkpoint round. 0 disables auto-triggering (rounds are then
// explicit via CheckpointService::TriggerRound — what the faultcheck `ckpt@<hit>` arming and
// the benches use). The default is large enough that short tests never checkpoint
// spontaneously, keeping their timing pins stable.
inline int DefaultCheckpointTriggerBytes() {
  return EnvInt("HM_CHECKPOINT_BYTES", 0, 64 << 20);
}

}  // namespace halfmoon

#endif  // HALFMOON_COMMON_ENV_H_
