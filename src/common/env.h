// Centralized HM_* environment-variable parsing.
//
// Runtime knobs (HM_SHARDS, HM_PARALLEL, HM_ADVISOR, HM_FAULTCHECK_FULL, ...) used to
// hand-roll getenv+parse at each consumer; these helpers are the single implementation.
// Header-only and dependency-free so every layer (sim, sharedlog, runtime, core, tests)
// can include it without cycles — core/env.h, for example, includes runtime/cluster.h,
// which itself needs EnvInt for its shard-count default.

#ifndef HALFMOON_COMMON_ENV_H_
#define HALFMOON_COMMON_ENV_H_

#include <cstdlib>

namespace halfmoon {

// Integer-valued knob: unset or unparsable -> fallback; parsed values clamp to min_value.
inline int EnvInt(const char* name, int min_value, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  int value = std::atoi(raw);
  return value < min_value ? min_value : value;
}

// Boolean knob: on when set to anything non-empty not starting with '0'.
inline bool EnvFlag(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' && *raw != '0';
}

// Group-commit knobs (DESIGN.md §7.5, §12). These are the environment defaults that
// ClusterConfig / ParallelClusterConfig inherit, so benches and CI can sweep the append
// path without code changes.

// HM_PIPELINE: sequencer rounds in flight per node-shard batcher. 1 (the default) is the
// serial engine, bit-identical to the pre-pipelining implementation.
inline int DefaultAppendPipelineDepth() { return EnvInt("HM_PIPELINE", 1, 1); }

// HM_BATCH_WINDOW: extra batching window in microseconds before a round departs. 0 keeps
// isolated appends at exactly the unbatched latency.
inline int DefaultAppendBatchWindowUs() { return EnvInt("HM_BATCH_WINDOW", 0, 0); }

// HM_BATCH_MAX: cap on requests per sequencer round.
inline int DefaultAppendBatchMax() { return EnvInt("HM_BATCH_MAX", 1, 64); }

}  // namespace halfmoon

#endif  // HALFMOON_COMMON_ENV_H_
