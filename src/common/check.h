// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// These fire in every build type: the simulation is only meaningful if its invariants hold, so
// we never compile checks out. A failed check prints file/line plus a message and aborts.

#ifndef HALFMOON_COMMON_CHECK_H_
#define HALFMOON_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace halfmoon::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace halfmoon::internal

#define HM_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::halfmoon::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                                 \
  } while (0)

#define HM_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::halfmoon::internal::CheckFailed(__FILE__, __LINE__, msg);     \
    }                                                                 \
  } while (0)

#endif  // HALFMOON_COMMON_CHECK_H_
