#include "src/common/value.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace halfmoon {

namespace {

// Comparator for the sorted entry vector; heterogeneous so lookups compare against the key
// without materializing an Entry.
struct EntryKeyLess {
  bool operator()(const FieldMap::Entry& entry, const std::string& key) const {
    return entry.first < key;
  }
};

}  // namespace

const Field* FieldMap::Find(const std::string& key) const {
  auto it = std::lower_bound(fields_.begin(), fields_.end(), key, EntryKeyLess{});
  if (it == fields_.end() || it->first != key) return nullptr;
  return &it->second;
}

Field& FieldMap::Upsert(const std::string& key) {
  auto it = std::lower_bound(fields_.begin(), fields_.end(), key, EntryKeyLess{});
  if (it == fields_.end() || it->first != key) {
    it = fields_.emplace(it, key, Field{});
  }
  return it->second;
}

int64_t FieldMap::GetInt(const std::string& key) const {
  const Field* field = Find(key);
  HM_CHECK_MSG(field != nullptr, "FieldMap::GetInt: missing key");
  const int64_t* v = std::get_if<int64_t>(field);
  HM_CHECK_MSG(v != nullptr, "FieldMap::GetInt: field is not an integer");
  return *v;
}

const std::string& FieldMap::GetStr(const std::string& key) const {
  const Field* field = Find(key);
  HM_CHECK_MSG(field != nullptr, "FieldMap::GetStr: missing key");
  const std::string* v = std::get_if<std::string>(field);
  HM_CHECK_MSG(v != nullptr, "FieldMap::GetStr: field is not a string");
  return *v;
}

size_t FieldMap::ByteSize() const {
  // Models a compact binary encoding: field names become 2-byte tags; only values occupy
  // space. The paper notes a write-log record's critical data is "covered in a few dozen
  // bytes" (§4.1), which this matches.
  size_t total = 0;
  for (const auto& [key, field] : fields_) {
    total += 2;
    if (const std::string* s = std::get_if<std::string>(&field)) {
      total += s->size();
    } else {
      total += sizeof(int64_t);
    }
  }
  return total;
}

Value EncodeInt64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return Value(buf);
}

int64_t DecodeInt64(const Value& v) {
  HM_CHECK_MSG(!v.empty(), "DecodeInt64: empty value");
  return std::strtoll(v.c_str(), nullptr, 10);
}

Value PadValue(Value v, size_t size) {
  if (v.size() < size) {
    v.append(size - v.size(), '#');
  }
  return v;
}

}  // namespace halfmoon
