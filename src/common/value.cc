#include "src/common/value.h"

#include <cstdio>

#include "src/common/check.h"

namespace halfmoon {

int64_t FieldMap::GetInt(const std::string& key) const {
  auto it = fields_.find(key);
  HM_CHECK_MSG(it != fields_.end(), "FieldMap::GetInt: missing key");
  const int64_t* v = std::get_if<int64_t>(&it->second);
  HM_CHECK_MSG(v != nullptr, "FieldMap::GetInt: field is not an integer");
  return *v;
}

const std::string& FieldMap::GetStr(const std::string& key) const {
  auto it = fields_.find(key);
  HM_CHECK_MSG(it != fields_.end(), "FieldMap::GetStr: missing key");
  const std::string* v = std::get_if<std::string>(&it->second);
  HM_CHECK_MSG(v != nullptr, "FieldMap::GetStr: field is not a string");
  return *v;
}

size_t FieldMap::ByteSize() const {
  // Models a compact binary encoding: field names become 2-byte tags; only values occupy
  // space. The paper notes a write-log record's critical data is "covered in a few dozen
  // bytes" (§4.1), which this matches.
  size_t total = 0;
  for (const auto& [key, field] : fields_) {
    total += 2;
    if (const std::string* s = std::get_if<std::string>(&field)) {
      total += s->size();
    } else {
      total += sizeof(int64_t);
    }
  }
  return total;
}

Value EncodeInt64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return Value(buf);
}

int64_t DecodeInt64(const Value& v) {
  HM_CHECK_MSG(!v.empty(), "DecodeInt64: empty value");
  return std::strtoll(v.c_str(), nullptr, 10);
}

Value PadValue(Value v, size_t size) {
  if (v.size() < size) {
    v.append(size - v.size(), '#');
  }
  return v;
}

}  // namespace halfmoon
