#include "src/metrics/workload_sketch.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace halfmoon::metrics {

namespace {

// splitmix64 finalizer: the per-row seeds and the per-id row hashes both come from this, so
// the rows behave as independent hash functions over TagIds (which are small dense integers
// and need real mixing).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

WorkloadSketch::WorkloadSketch(WorkloadSketchConfig config) : config_(config) {
  HM_CHECK(config_.width >= 2 && config_.depth >= 1);
  config_.width = RoundUpPow2(config_.width);
  mask_ = config_.width - 1;
  row_seeds_.reserve(config_.depth);
  for (size_t row = 0; row < config_.depth; ++row) {
    row_seeds_.push_back(Mix64(config_.seed + row));
  }
  const size_t cells = config_.depth * config_.width;
  current_.reads.assign(cells, 0);
  current_.writes.assign(cells, 0);
  previous_.reads.assign(cells, 0);
  previous_.writes.assign(cells, 0);
}

void WorkloadSketch::Epoch::Clear() {
  std::fill(reads.begin(), reads.end(), 0u);
  std::fill(writes.begin(), writes.end(), 0u);
  total_reads = 0;
  total_writes = 0;
}

size_t WorkloadSketch::Index(size_t row, uint64_t id) const {
  return row * config_.width + (Mix64(id ^ row_seeds_[row]) & mask_);
}

void WorkloadSketch::Bump(std::vector<uint32_t>& counters, uint64_t id) {
  for (size_t row = 0; row < config_.depth; ++row) {
    uint32_t& cell = counters[Index(row, id)];
    if (cell != std::numeric_limits<uint32_t>::max()) ++cell;
  }
}

void WorkloadSketch::RecordRead(uint64_t id) {
  Bump(current_.reads, id);
  ++current_.total_reads;
}

void WorkloadSketch::RecordWrite(uint64_t id) {
  Bump(current_.writes, id);
  ++current_.total_writes;
}

int64_t WorkloadSketch::Estimate(const std::vector<uint32_t>& current,
                                 const std::vector<uint32_t>& previous, uint64_t id) const {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (size_t row = 0; row < config_.depth; ++row) {
    const size_t pos = Index(row, id);
    best = std::min(best, int64_t{current[pos]} + int64_t{previous[pos]});
  }
  return best;
}

int64_t WorkloadSketch::EstimateReads(uint64_t id) const {
  return Estimate(current_.reads, previous_.reads, id);
}

int64_t WorkloadSketch::EstimateWrites(uint64_t id) const {
  return Estimate(current_.writes, previous_.writes, id);
}

void WorkloadSketch::AdvanceEpoch() {
  std::swap(current_, previous_);
  current_.Clear();
  ++epochs_advanced_;
}

void WorkloadSketch::Merge(const WorkloadSketch& other) {
  HM_CHECK_MSG(config_.width == other.config_.width && config_.depth == other.config_.depth &&
                   config_.seed == other.config_.seed,
               "WorkloadSketch::Merge: configurations differ");
  const size_t cells = config_.depth * config_.width;
  for (size_t i = 0; i < cells; ++i) {
    current_.reads[i] += other.current_.reads[i];
    current_.writes[i] += other.current_.writes[i];
    previous_.reads[i] += other.previous_.reads[i];
    previous_.writes[i] += other.previous_.writes[i];
  }
  current_.total_reads += other.current_.total_reads;
  current_.total_writes += other.current_.total_writes;
  previous_.total_reads += other.previous_.total_reads;
  previous_.total_writes += other.previous_.total_writes;
}

size_t WorkloadSketch::MemoryBytes() const {
  // 2 epochs x 2 kinds x depth x width counters; the row-seed vector is depth entries.
  return 4 * config_.depth * config_.width * sizeof(uint32_t) +
         row_seeds_.size() * sizeof(uint64_t);
}

}  // namespace halfmoon::metrics
