// Time-weighted storage accounting for Figure 12.
//
// Components report their current byte footprint through Gauge objects; the sampler integrates
// gauge values over simulated time so that `TimeAverageBytes()` matches the paper's
// "time-average storage usage over a period of 10 minutes" metric.

#ifndef HALFMOON_METRICS_STORAGE_SAMPLER_H_
#define HALFMOON_METRICS_STORAGE_SAMPLER_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/time.h"

namespace halfmoon::metrics {

// A byte gauge that integrates its own value across time. Callers must update it with a
// monotonically non-decreasing clock.
class StorageGauge {
 public:
  void Add(SimTime now, int64_t delta) { Set(now, current_ + delta); }

  void Set(SimTime now, int64_t bytes) {
    HM_CHECK(now >= last_update_);
    HM_CHECK(bytes >= 0);
    integral_ += static_cast<double>(current_) * static_cast<double>(now - last_update_);
    last_update_ = now;
    current_ = bytes;
  }

  int64_t CurrentBytes() const { return current_; }

  // Average bytes over [start, now]; flushes the integral up to `now` first.
  double TimeAverageBytes(SimTime now) {
    Set(now, current_);
    if (now <= 0) return static_cast<double>(current_);
    return integral_ / static_cast<double>(now);
  }

  // Average over a window [window_start, now], for benchmarks that exclude warm-up.
  void ResetWindow(SimTime now) {
    Set(now, current_);
    integral_ = 0.0;
    window_start_ = now;
  }

  double WindowAverageBytes(SimTime now) {
    Set(now, current_);
    SimDuration span = now - window_start_;
    if (span <= 0) return static_cast<double>(current_);
    return integral_ / static_cast<double>(span);
  }

 private:
  int64_t current_ = 0;
  SimTime last_update_ = 0;
  SimTime window_start_ = 0;
  double integral_ = 0.0;
};

}  // namespace halfmoon::metrics

#endif  // HALFMOON_METRICS_STORAGE_SAMPLER_H_
