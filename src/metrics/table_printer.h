// Minimal aligned-table output for benchmark harnesses, so every bench binary prints rows and
// series in the same layout as the paper's tables and figures.

#ifndef HALFMOON_METRICS_TABLE_PRINTER_H_
#define HALFMOON_METRICS_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace halfmoon::metrics {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  static std::string FormatDouble(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace halfmoon::metrics

#endif  // HALFMOON_METRICS_TABLE_PRINTER_H_
