// Exact latency statistics: the recorder keeps every sample (simulated runs are short enough)
// and computes percentiles on demand from a lazily sorted copy, cached until the next Record.
// This mirrors how the paper reports median and 99th-percentile latency bars. Percentiles use
// the ceil-based nearest-rank definition, so the tail never rounds *down* (p99 of 100 samples
// is the 100th order statistic, not the 99th).
//
// Threading contract (DESIGN.md §10): a recorder is single-owner — it holds no lock, and the
// const percentile accessors rebuild a mutable cache. In parallel runs each worker thread
// records into its own recorder, and after the join the main thread folds them with Merge;
// never share one instance across live threads, not even for reads. The sorted cache is
// invalidated structurally (it is stale iff its length differs from samples_, and every
// mutation changes the length), so no mutation path — Record, Merge, Clear, in any order
// with percentile reads — can serve a stale percentile by forgetting a dirty bit.

#ifndef HALFMOON_METRICS_LATENCY_RECORDER_H_
#define HALFMOON_METRICS_LATENCY_RECORDER_H_

#include <cstddef>
#include <vector>

#include "src/common/time.h"

namespace halfmoon::metrics {

class LatencyRecorder {
 public:
  void Record(SimDuration latency) { samples_.push_back(latency); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void Clear() {
    samples_.clear();
    sorted_.clear();
  }

  // Folds another recorder's samples into this one (per-shard / per-node / per-thread
  // recorders combined for cluster-wide percentiles; the caller must own both, e.g. after
  // joining the worker threads). Equivalent to replaying other's Record calls: percentiles
  // afterwards are computed over the union of both sample sets, including after a Percentile
  // call already built this recorder's sorted cache.
  void Merge(const LatencyRecorder& other) {
    if (other.samples_.empty()) return;
    // Drop any warm sorted cache up front rather than leaning on the length heuristic alone:
    // a merge is a structural mutation, and the invalidation must not depend on how many
    // samples the other side happens to carry (the PR 6 length-mismatch contract, made
    // explicit at the one entry point that bulk-grows samples_).
    sorted_.clear();
    if (&other == this) {
      // Self-merge: inserting from the vector being grown would invalidate the source range.
      std::vector<SimDuration> copy = samples_;
      samples_.insert(samples_.end(), copy.begin(), copy.end());
    } else {
      samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    }
  }

  // Percentile in [0, 100]. Returns 0 on an empty recorder.
  SimDuration Percentile(double pct) const;

  SimDuration Median() const { return Percentile(50.0); }
  SimDuration P99() const { return Percentile(99.0); }
  double MeanMs() const;

  double MedianMs() const { return ToMillisDouble(Median()); }
  double P99Ms() const { return ToMillisDouble(P99()); }

  const std::vector<SimDuration>& samples() const { return samples_; }

 private:
  // The sorted view, rebuilt at most once per batch of mutations no matter how many
  // percentiles are read. Staleness is structural — length mismatch — rather than a dirty
  // bit a future mutation path could forget to set: Record and Merge only ever grow
  // samples_, Clear empties both, so equal lengths imply equal contents.
  const std::vector<SimDuration>& Sorted() const;

  std::vector<SimDuration> samples_;
  mutable std::vector<SimDuration> sorted_;
};

}  // namespace halfmoon::metrics

#endif  // HALFMOON_METRICS_LATENCY_RECORDER_H_
