// Exact latency statistics: the recorder keeps every sample (simulated runs are short enough)
// and computes percentiles on demand from a lazily sorted copy, cached until the next Record.
// This mirrors how the paper reports median and 99th-percentile latency bars. Percentiles use
// the ceil-based nearest-rank definition, so the tail never rounds *down* (p99 of 100 samples
// is the 100th order statistic, not the 99th).

#ifndef HALFMOON_METRICS_LATENCY_RECORDER_H_
#define HALFMOON_METRICS_LATENCY_RECORDER_H_

#include <cstddef>
#include <vector>

#include "src/common/time.h"

namespace halfmoon::metrics {

class LatencyRecorder {
 public:
  void Record(SimDuration latency) {
    samples_.push_back(latency);
    dirty_ = true;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void Clear() {
    samples_.clear();
    sorted_.clear();
    dirty_ = false;
  }

  // Folds another recorder's samples into this one (per-shard / per-node recorders combined
  // for cluster-wide percentiles). Equivalent to replaying other's Record calls: percentiles
  // afterwards are computed over the union of both sample sets.
  void Merge(const LatencyRecorder& other) {
    if (other.samples_.empty()) return;
    if (&other == this) {
      // Self-merge: inserting from the vector being grown would invalidate the source range.
      std::vector<SimDuration> copy = samples_;
      samples_.insert(samples_.end(), copy.begin(), copy.end());
    } else {
      samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    }
    dirty_ = true;
  }

  // Percentile in [0, 100]. Returns 0 on an empty recorder.
  SimDuration Percentile(double pct) const;

  SimDuration Median() const { return Percentile(50.0); }
  SimDuration P99() const { return Percentile(99.0); }
  double MeanMs() const;

  double MedianMs() const { return ToMillisDouble(Median()); }
  double P99Ms() const { return ToMillisDouble(P99()); }

  const std::vector<SimDuration>& samples() const { return samples_; }

 private:
  // The sorted view, rebuilt at most once per batch of Records no matter how many
  // percentiles are read (the old implementation copied and partially re-sorted per call).
  const std::vector<SimDuration>& Sorted() const;

  std::vector<SimDuration> samples_;
  mutable std::vector<SimDuration> sorted_;
  mutable bool dirty_ = false;
};

}  // namespace halfmoon::metrics

#endif  // HALFMOON_METRICS_LATENCY_RECORDER_H_
