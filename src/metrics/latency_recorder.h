// Exact latency statistics: the recorder keeps every sample (simulated runs are short enough)
// and computes percentiles on demand via partial sort. This mirrors how the paper reports
// median and 99th-percentile latency bars.

#ifndef HALFMOON_METRICS_LATENCY_RECORDER_H_
#define HALFMOON_METRICS_LATENCY_RECORDER_H_

#include <cstddef>
#include <vector>

#include "src/common/time.h"

namespace halfmoon::metrics {

class LatencyRecorder {
 public:
  void Record(SimDuration latency) { samples_.push_back(latency); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void Clear() { samples_.clear(); }

  // Percentile in [0, 100]. Returns 0 on an empty recorder.
  SimDuration Percentile(double pct) const;

  SimDuration Median() const { return Percentile(50.0); }
  SimDuration P99() const { return Percentile(99.0); }
  double MeanMs() const;

  double MedianMs() const { return ToMillisDouble(Median()); }
  double P99Ms() const { return ToMillisDouble(P99()); }

  const std::vector<SimDuration>& samples() const { return samples_; }

 private:
  std::vector<SimDuration> samples_;
};

}  // namespace halfmoon::metrics

#endif  // HALFMOON_METRICS_LATENCY_RECORDER_H_
