#include "src/metrics/table_printer.h"

#include <cstdio>

#include "src/common/check.h"

namespace halfmoon::metrics {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HM_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s%s", static_cast<int>(widths[i]), row[i].c_str(),
                  i + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  for (size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace halfmoon::metrics
