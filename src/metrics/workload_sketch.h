// Space-bounded sliding-window read/write sketch for the online advisor (DESIGN.md §11).
//
// The §4.6 cost criterion needs each object's read ratio, but a per-object counter map over
// a million-object keyspace is exactly the memory blow-up the advisor must avoid. This is a
// pair of count-min sketches (reads / writes) keyed by the object's interned TagId: O(depth)
// counter bumps per op, estimates that only ever overcount (by at most ~e/width of the
// stream length per the classic count-min bound), and a hard memory cap that is a function
// of the configuration alone — independent of how many live objects the workload touches.
//
// The sliding window is two epochs: estimates read current + previous, and AdvanceEpoch()
// retires previous and starts a fresh current. An object that goes quiet therefore ages out
// of the estimate within two epoch lengths, which is what lets the advisor track a drifting
// (diurnal) workload instead of averaging over all history.
//
// Threading: a sketch is single-owner, same contract as LatencyRecorder — in parallel mode
// each worker records into its own per-partition sketch and the results are folded after the
// threads join via Merge() (counter arrays add elementwise, so a post-join merge equals one
// sketch having seen the union stream, in any merge order).

#ifndef HALFMOON_METRICS_WORKLOAD_SKETCH_H_
#define HALFMOON_METRICS_WORKLOAD_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace halfmoon::metrics {

struct WorkloadSketchConfig {
  // Counters per row (rounded up to a power of two) and independent rows. The defaults give
  // estimate error <= e/1024 of the window stream length with probability 1 - e^-4, in
  // 2 kinds x 2 epochs x 4 x 1024 x 4B = 128 KiB per sketch.
  size_t width = 1024;
  size_t depth = 4;
  uint64_t seed = 0x5851f42d4c957f2dull;
};

class WorkloadSketch {
 public:
  explicit WorkloadSketch(WorkloadSketchConfig config = {});

  // O(depth) per call. `id` is the object's interned write-log TagId.
  void RecordRead(uint64_t id);
  void RecordWrite(uint64_t id);

  // Windowed (current + previous epoch) per-object estimates. Never undercounts the true
  // windowed count; overcounts by at most ~e/width of the windowed stream length w.h.p.
  int64_t EstimateReads(uint64_t id) const;
  int64_t EstimateWrites(uint64_t id) const;

  // Exact windowed stream totals (for normalizing estimate error and min-ops gating).
  int64_t WindowReads() const { return current_.total_reads + previous_.total_reads; }
  int64_t WindowWrites() const { return current_.total_writes + previous_.total_writes; }

  // Slides the window: previous is dropped, current becomes previous. Counter storage is
  // recycled, so steady-state operation allocates nothing.
  void AdvanceEpoch();

  // Elementwise fold of another sketch with the identical configuration (post-thread-join
  // aggregation). Order-independent: merging A into B equals merging B into A.
  void Merge(const WorkloadSketch& other);

  // The hard memory bound: counter storage in bytes, a pure function of the configuration.
  size_t MemoryBytes() const;

  const WorkloadSketchConfig& config() const { return config_; }
  uint64_t epochs_advanced() const { return epochs_advanced_; }

 private:
  struct Epoch {
    std::vector<uint32_t> reads;   // depth x width counters, row-major
    std::vector<uint32_t> writes;  // depth x width counters, row-major
    int64_t total_reads = 0;
    int64_t total_writes = 0;
    void Clear();
  };

  size_t Index(size_t row, uint64_t id) const;
  void Bump(std::vector<uint32_t>& counters, uint64_t id);
  int64_t Estimate(const std::vector<uint32_t>& current,
                   const std::vector<uint32_t>& previous, uint64_t id) const;

  WorkloadSketchConfig config_;
  std::vector<uint64_t> row_seeds_;
  size_t mask_;  // width - 1 after power-of-two rounding
  Epoch current_;
  Epoch previous_;
  uint64_t epochs_advanced_ = 0;
};

}  // namespace halfmoon::metrics

#endif  // HALFMOON_METRICS_WORKLOAD_SKETCH_H_
