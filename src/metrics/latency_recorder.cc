#include "src/metrics/latency_recorder.h"

#include <algorithm>
#include <cmath>

namespace halfmoon::metrics {

const std::vector<SimDuration>& LatencyRecorder::Sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  return sorted_;
}

SimDuration LatencyRecorder::Percentile(double pct) const {
  if (samples_.empty()) return 0;
  const std::vector<SimDuration>& sorted = Sorted();
  // Ceil-based nearest rank: the smallest order statistic at or above the requested rank.
  // llround here would round p99 of a small sample set *down* a full position.
  double rank = pct * static_cast<double>(sorted.size() - 1) / 100.0;
  if (rank < 0.0) rank = 0.0;
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

double LatencyRecorder::MeanMs() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (SimDuration s : samples_) total += ToMillisDouble(s);
  return total / static_cast<double>(samples_.size());
}

}  // namespace halfmoon::metrics
