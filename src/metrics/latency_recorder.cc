#include "src/metrics/latency_recorder.h"

#include <algorithm>
#include <cmath>

namespace halfmoon::metrics {

SimDuration LatencyRecorder::Percentile(double pct) const {
  if (samples_.empty()) return 0;
  std::vector<SimDuration> sorted = samples_;
  // Nearest-rank percentile over the sorted sample set.
  double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t index = static_cast<size_t>(std::llround(rank));
  if (index >= sorted.size()) index = sorted.size() - 1;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(index), sorted.end());
  return sorted[index];
}

double LatencyRecorder::MeanMs() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (SimDuration s : samples_) total += ToMillisDouble(s);
  return total / static_cast<double>(samples_.size());
}

}  // namespace halfmoon::metrics
