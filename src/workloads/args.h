// A tiny key=value argument codec for SSF inputs.
//
// SSF bodies must be deterministic given their input (§2), so every random choice a workload
// makes — which objects to touch, which operation mix to run — is made by the *generator* and
// encoded into the invocation input with this codec.

#ifndef HALFMOON_WORKLOADS_ARGS_H_
#define HALFMOON_WORKLOADS_ARGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/value.h"

namespace halfmoon::workloads {

class Args {
 public:
  Args() = default;

  // Parses "k1=v1&k2=v2". Unescaped; keys and values must not contain '&' or '='.
  static Args Parse(const Value& encoded);

  Value Encode() const;

  void Set(const std::string& key, std::string value) { fields_[key] = std::move(value); }
  void SetInt(const std::string& key, int64_t v);

  bool Has(const std::string& key) const { return fields_.count(key) > 0; }
  const std::string& Get(const std::string& key) const;
  int64_t GetInt(const std::string& key) const;

 private:
  std::map<std::string, std::string> fields_;
};

}  // namespace halfmoon::workloads

#endif  // HALFMOON_WORKLOADS_ARGS_H_
