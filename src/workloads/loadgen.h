// Open-loop Poisson load generation (§4.6 assumes Poisson arrivals of SSFs; §6.2/§6.3 drive
// the system at fixed request rates).
//
// The generator fires invocations at exponentially distributed inter-arrival gaps without
// waiting for completions (open loop), records end-to-end latency per request, and separates
// a warm-up window from the measurement window.

#ifndef HALFMOON_WORKLOADS_LOADGEN_H_
#define HALFMOON_WORKLOADS_LOADGEN_H_

#include <functional>
#include <string>
#include <utility>

#include "src/core/ssf_runtime.h"
#include "src/metrics/latency_recorder.h"

namespace halfmoon::workloads {

struct LoadGenConfig {
  double requests_per_second = 100.0;
  SimDuration warmup = Seconds(2);
  SimDuration duration = Seconds(10);  // Measurement window (after warm-up).
};

// Produces the next request: (function name, input).
using RequestFactory = std::function<std::pair<std::string, Value>()>;

class LoadGenerator {
 public:
  LoadGenerator(core::SsfRuntime* runtime, LoadGenConfig config, RequestFactory factory)
      : runtime_(runtime), config_(config), factory_(std::move(factory)) {}

  // Drives the workload to completion: warm-up, measurement, then drain of in-flight
  // requests. Call from a spawned task or use RunToCompletion().
  sim::Task<void> Run();

  // Convenience: spawns Run() and drives the scheduler until everything drains.
  void RunToCompletion();

  const metrics::LatencyRecorder& latency() const { return latency_; }
  metrics::LatencyRecorder& latency() { return latency_; }

  // Invoked at every measured completion with (completion time, request latency); used by
  // time-series experiments such as the switching-delay study (Fig. 14).
  void SetSampleCallback(std::function<void(SimTime, SimDuration)> callback) {
    sample_callback_ = std::move(callback);
  }

  int64_t offered() const { return offered_; }
  int64_t completed() const { return completed_; }

  // Completed requests per second over the measurement window.
  double MeasuredThroughput() const;

 private:
  sim::Task<void> FireOne(std::string name, Value input, bool measured);

  core::SsfRuntime* runtime_;
  LoadGenConfig config_;
  RequestFactory factory_;
  std::function<void(SimTime, SimDuration)> sample_callback_;
  metrics::LatencyRecorder latency_;
  int64_t offered_ = 0;
  int64_t completed_ = 0;
  SimTime window_start_ = 0;
  SimTime window_end_ = 0;
};

}  // namespace halfmoon::workloads

#endif  // HALFMOON_WORKLOADS_LOADGEN_H_
