// The three end-to-end application workloads of §6.2.
//
//   * Travel reservation (10 SSFs, adapted from DeathStarBench's hotel service):
//     search/recommend flows are pure reads; a small reservation flow writes. Read-intensive.
//   * Movie review (13 SSFs, adapted from DeathStarBench's media service): composing a review
//     fans out to upload/update SSFs that mostly write. Slightly write-skewed.
//   * Retwis (a simplified Twitter clone): post/follow write, timeline/profile read.
//     Read-intensive.
//
// Each application registers its SSFs, seeds its dataset, and exposes a RequestFactory that
// samples root invocations according to the application's operation mix.

#ifndef HALFMOON_WORKLOADS_APPLICATIONS_H_
#define HALFMOON_WORKLOADS_APPLICATIONS_H_

#include <string>
#include <utility>

#include "src/core/ssf_runtime.h"
#include "src/workloads/loadgen.h"

namespace halfmoon::workloads {

struct AppDataset {
  int hotels = 200;
  int users = 500;
  int movies = 200;
  int tweets = 500;
  size_t value_bytes = 256;
};

// Travel reservation: 10 SSFs.
void RegisterTravelApp(core::SsfRuntime& runtime, const AppDataset& data);
RequestFactory TravelRequestFactory(core::SsfRuntime& runtime, const AppDataset& data);

// Movie review: 13 SSFs.
void RegisterMovieApp(core::SsfRuntime& runtime, const AppDataset& data);
RequestFactory MovieRequestFactory(core::SsfRuntime& runtime, const AppDataset& data);

// Retwis.
void RegisterRetwisApp(core::SsfRuntime& runtime, const AppDataset& data);
RequestFactory RetwisRequestFactory(core::SsfRuntime& runtime, const AppDataset& data);

struct AppDescriptor {
  std::string name;
  void (*register_fn)(core::SsfRuntime&, const AppDataset&);
  RequestFactory (*factory_fn)(core::SsfRuntime&, const AppDataset&);
};

// All three applications, in the order of Figure 11.
const std::vector<AppDescriptor>& AllApplications();

}  // namespace halfmoon::workloads

#endif  // HALFMOON_WORKLOADS_APPLICATIONS_H_
