#include "src/workloads/synthetic.h"

#include <cstdio>

#include "src/common/check.h"

namespace halfmoon::workloads {

std::string SyntheticWorkload::KeyFor(int index) const {
  // 8-byte keys, as in §6.1 ("8B key and 256B value").
  char buf[16];
  std::snprintf(buf, sizeof(buf), "o%07d", index);
  return std::string(buf);
}

void SyntheticWorkload::Setup() {
  Value base = PadValue("v", config_.value_bytes);
  for (int i = 0; i < config_.num_objects; ++i) {
    runtime_->PopulateObject(KeyFor(i), base);
  }

  // The SSF interprets an op list like "R:o0000003;W:o0000042". It captures `this` for the
  // latency recorders; the closure lives in the function registry for the workload's
  // lifetime, so the coroutine frames never outlive their captures.
  SyntheticConfig config = config_;
  auto* read_latency = &read_latency_;
  auto* write_latency = &write_latency_;
  auto* cluster = &runtime_->cluster();
  runtime_->RegisterFunction(
      FunctionName(),
      [config, read_latency, write_latency, cluster](core::SsfContext& ctx)
          -> sim::Task<Value> {
        const Value& input = ctx.input();
        Value payload = PadValue("w", config.value_bytes);
        size_t pos = 0;
        while (pos < input.size()) {
          size_t semi = input.find(';', pos);
          if (semi == std::string::npos) semi = input.size();
          HM_CHECK_MSG(semi >= pos + 3 && input[pos + 1] == ':',
                       "synthetic: malformed op list");
          char op = input[pos];
          std::string key = input.substr(pos + 2, semi - pos - 2);
          SimTime before = cluster->scheduler().Now();
          if (op == 'R') {
            co_await ctx.Read(key);
            read_latency->Record(cluster->scheduler().Now() - before);
          } else {
            HM_CHECK_MSG(op == 'W', "synthetic: unknown op");
            co_await ctx.Write(key, payload);
            write_latency->Record(cluster->scheduler().Now() - before);
          }
          pos = semi + 1;
        }
        co_return Value{};
      });
}

Value SyntheticWorkload::NextInput() {
  Rng& rng = runtime_->cluster().rng();
  Value ops;
  for (int i = 0; i < config_.ops_per_request; ++i) {
    if (!ops.empty()) ops.push_back(';');
    bool is_read = rng.Bernoulli(config_.read_ratio);
    ops.push_back(is_read ? 'R' : 'W');
    ops.push_back(':');
    ops += KeyFor(static_cast<int>(rng.UniformInt(0, config_.num_objects - 1)));
  }
  return ops;
}

}  // namespace halfmoon::workloads
