#include "src/workloads/loadgen.h"

#include "src/common/check.h"
#include "src/sim/sync.h"

namespace halfmoon::workloads {

sim::Task<void> LoadGenerator::FireOne(std::string name, Value input, bool measured) {
  sim::Scheduler& scheduler = runtime_->cluster().scheduler();
  SimTime start = scheduler.Now();
  co_await runtime_->InvokeSsf(std::move(name), std::move(input));
  ++completed_;
  if (measured) {
    SimDuration latency = scheduler.Now() - start;
    latency_.Record(latency);
    if (sample_callback_) sample_callback_(scheduler.Now(), latency);
  }
}

sim::Task<void> LoadGenerator::Run() {
  sim::Scheduler& scheduler = runtime_->cluster().scheduler();
  Rng& rng = runtime_->cluster().rng();
  const double mean_gap_s = 1.0 / config_.requests_per_second;

  SimTime end_of_warmup = scheduler.Now() + config_.warmup;
  SimTime end_of_run = end_of_warmup + config_.duration;
  window_start_ = end_of_warmup;
  window_end_ = end_of_run;

  while (scheduler.Now() < end_of_run) {
    bool measured = scheduler.Now() >= end_of_warmup;
    auto [name, input] = factory_();
    ++offered_;
    scheduler.Spawn(FireOne(std::move(name), std::move(input), measured));
    auto gap = static_cast<SimDuration>(rng.Exponential(mean_gap_s) * 1e9);
    co_await scheduler.Delay(gap);
  }

  // Drain: wait until every in-flight invocation finished.
  co_await runtime_->inflight().Wait();
}

void LoadGenerator::RunToCompletion() {
  bool done = false;
  sim::Scheduler& scheduler = runtime_->cluster().scheduler();
  scheduler.Spawn([](LoadGenerator* gen, bool* done) -> sim::Task<void> {
    co_await gen->Run();
    *done = true;
  }(this, &done));
  // Background daemons (GC) may keep the queue non-empty: drive until the generator reports
  // completion rather than until the queue drains.
  while (!done && !scheduler.empty()) {
    scheduler.RunUntil(scheduler.Now() + Seconds(1));
  }
  HM_CHECK_MSG(done, "load generator did not finish");
}

double LoadGenerator::MeasuredThroughput() const {
  double window_s = ToSecondsDouble(window_end_ - window_start_);
  if (window_s <= 0) return 0.0;
  return static_cast<double>(latency_.count()) / window_s;
}

}  // namespace halfmoon::workloads
