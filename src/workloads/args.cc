#include "src/workloads/args.h"

#include "src/common/check.h"

namespace halfmoon::workloads {

Args Args::Parse(const Value& encoded) {
  Args args;
  size_t pos = 0;
  while (pos < encoded.size()) {
    size_t amp = encoded.find('&', pos);
    if (amp == std::string::npos) amp = encoded.size();
    size_t eq = encoded.find('=', pos);
    HM_CHECK_MSG(eq != std::string::npos && eq < amp, "Args::Parse: malformed input");
    args.fields_[encoded.substr(pos, eq - pos)] = encoded.substr(eq + 1, amp - eq - 1);
    pos = amp + 1;
  }
  return args;
}

Value Args::Encode() const {
  Value out;
  for (const auto& [key, value] : fields_) {
    if (!out.empty()) out.push_back('&');
    out += key;
    out.push_back('=');
    out += value;
  }
  return out;
}

void Args::SetInt(const std::string& key, int64_t v) { fields_[key] = EncodeInt64(v); }

const std::string& Args::Get(const std::string& key) const {
  auto it = fields_.find(key);
  HM_CHECK_MSG(it != fields_.end(), "Args::Get: missing key");
  return it->second;
}

int64_t Args::GetInt(const std::string& key) const { return DecodeInt64(Get(key)); }

}  // namespace halfmoon::workloads
