#include "src/workloads/applications.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/workloads/args.h"

namespace halfmoon::workloads {
namespace {

std::string Id(const char* prefix, int64_t i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%04lld", prefix, static_cast<long long>(i));
  return std::string(buf);
}

// Appends `item` to a bounded comma-separated list value (newest first, keep 10).
Value AppendToList(const Value& list, const std::string& item, size_t max_items = 10) {
  Value out = item;
  size_t count = 1;
  size_t pos = 0;
  while (pos < list.size() && count < max_items) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    out.push_back(',');
    out += list.substr(pos, comma - pos);
    ++count;
    pos = comma + 1;
  }
  return out;
}

std::string NthListItem(const Value& list, size_t n) {
  size_t pos = 0;
  for (size_t i = 0; pos < list.size(); ++i) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    if (i == n) return list.substr(pos, comma - pos);
    pos = comma + 1;
  }
  return "";
}

}  // namespace

// ---------------------------------------------------------------------------
// Travel reservation (10 SSFs)
// ---------------------------------------------------------------------------

void RegisterTravelApp(core::SsfRuntime& runtime, const AppDataset& data) {
  Value pad = PadValue("hotel-data", data.value_bytes);
  for (int i = 0; i < data.hotels; ++i) {
    runtime.PopulateObject("geo:" + Id("h", i), pad);
    runtime.PopulateObject("rate:" + Id("h", i), pad);
    runtime.PopulateObject("profile:" + Id("h", i), pad);
    runtime.PopulateObject("rating:" + Id("h", i), pad);
    runtime.PopulateObject("avail:" + Id("h", i), EncodeInt64(100));
  }
  for (int i = 0; i < data.users; ++i) {
    runtime.PopulateObject("user:" + Id("u", i), pad);
  }

  // 1. nearby: geo lookup over four candidate hotels.
  runtime.RegisterFunction("travel.nearby", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    int64_t base = args.GetInt("hotel");
    Value hotels;
    for (int64_t i = 0; i < 4; ++i) {
      std::string hotel = Id("h", base + i);
      co_await ctx.Read("geo:" + hotel);
      if (!hotels.empty()) hotels.push_back(',');
      hotels += hotel;
    }
    co_return hotels;
  });

  // 2. get_rates: rate lookup for each candidate.
  runtime.RegisterFunction("travel.get_rates", [](core::SsfContext& ctx) -> sim::Task<Value> {
    const Value& hotels = ctx.input();
    for (size_t i = 0; !NthListItem(hotels, i).empty(); ++i) {
      co_await ctx.Read("rate:" + NthListItem(hotels, i));
    }
    co_return hotels;
  });

  // 3. get_profiles.
  runtime.RegisterFunction("travel.get_profiles",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    const Value& hotels = ctx.input();
    for (size_t i = 0; !NthListItem(hotels, i).empty(); ++i) {
      co_await ctx.Read("profile:" + NthListItem(hotels, i));
    }
    co_return hotels;
  });

  // 4. search_hotels (root): nearby, then rates and profiles fetched in parallel
  // (DeathStarBench's frontend scatter-gathers these).
  runtime.RegisterFunction("travel.search_hotels",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value hotels = co_await ctx.Invoke("travel.nearby", ctx.input());
    std::vector<std::pair<std::string, Value>> calls;
    calls.emplace_back("travel.get_rates", hotels);
    calls.emplace_back("travel.get_profiles", hotels);
    co_await ctx.InvokeAll(std::move(calls));
    co_await ctx.Compute();
    co_return hotels;
  });

  // 5. rank: rating lookup.
  runtime.RegisterFunction("travel.rank", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    int64_t base = args.GetInt("hotel");
    for (int64_t i = 0; i < 5; ++i) {
      co_await ctx.Read("rating:" + Id("h", base + i));
    }
    co_return Id("h", base);
  });

  // 6. recommend (root).
  runtime.RegisterFunction("travel.recommend", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value best = co_await ctx.Invoke("travel.rank", ctx.input());
    co_await ctx.Compute();
    co_return best;
  });

  // 7. check_user: credential lookup.
  runtime.RegisterFunction("travel.check_user", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_return co_await ctx.Read("user:" + args.Get("user"));
  });

  // 8. make_reservation: decrement availability, record the reservation.
  runtime.RegisterFunction("travel.make_reservation",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    std::string hotel = args.Get("hotelid");
    Value avail = co_await ctx.Read("avail:" + hotel);
    int64_t rooms = avail.empty() ? 0 : DecodeInt64(avail);
    if (rooms <= 0) co_return "sold-out";
    co_await ctx.Write("avail:" + hotel, EncodeInt64(rooms - 1));
    co_await ctx.Write("resv:" + args.Get("user") + ":" + hotel, ctx.input());
    co_return "ok";
  });

  // 9. get_user_profile: companion read used by the reserve flow.
  runtime.RegisterFunction("travel.get_user_profile",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_return co_await ctx.Read("user:" + args.Get("user"));
  });

  // 10. reserve (root): check_user -> get_user_profile -> make_reservation.
  runtime.RegisterFunction("travel.reserve", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Invoke("travel.check_user", ctx.input());
    co_await ctx.Invoke("travel.get_user_profile", ctx.input());
    Args args = Args::Parse(ctx.input());
    Args sub;
    sub.Set("user", args.Get("user"));
    sub.Set("hotelid", Id("h", args.GetInt("hotel")));
    co_return co_await ctx.Invoke("travel.make_reservation", sub.Encode());
  });
}

RequestFactory TravelRequestFactory(core::SsfRuntime& runtime, const AppDataset& data) {
  core::SsfRuntime* rt = &runtime;
  AppDataset d = data;
  return [rt, d]() -> std::pair<std::string, Value> {
    Rng& rng = rt->cluster().rng();
    Args args;
    args.SetInt("hotel", rng.UniformInt(0, d.hotels - 6));
    args.Set("user", Id("u", rng.UniformInt(0, d.users - 1)));
    double dice = rng.UniformDouble();
    // DeathStarBench-style mix: search-dominated, reservations rare. Read-intensive.
    if (dice < 0.60) return {"travel.search_hotels", args.Encode()};
    if (dice < 0.98) return {"travel.recommend", args.Encode()};
    return {"travel.reserve", args.Encode()};
  };
}

// ---------------------------------------------------------------------------
// Movie review (13 SSFs)
// ---------------------------------------------------------------------------

void RegisterMovieApp(core::SsfRuntime& runtime, const AppDataset& data) {
  Value pad = PadValue("movie-data", data.value_bytes);
  for (int i = 0; i < data.movies; ++i) {
    runtime.PopulateObject("movie:" + Id("m", i), pad);
    runtime.PopulateObject("movie-reviews:" + Id("m", i), Value{});
  }
  for (int i = 0; i < data.users; ++i) {
    runtime.PopulateObject("muser:" + Id("u", i), pad);
    runtime.PopulateObject("user-reviews:" + Id("u", i), Value{});
  }

  // 1. unique_id: reserves the review ID (write to the ID ledger).
  runtime.RegisterFunction("movie.unique_id", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    std::string rid = args.Get("rid");
    co_await ctx.Write("review-id:" + rid, rid);
    co_return rid;
  });

  // 2-5. upload_*: each stores one component of the review.
  runtime.RegisterFunction("movie.upload_user", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_await ctx.Read("muser:" + args.Get("user"));
    co_await ctx.Write("review:" + args.Get("rid") + ":user", args.Get("user"));
    co_return "";
  });
  runtime.RegisterFunction("movie.upload_movie_id",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_await ctx.Read("movie:" + args.Get("movie"));
    co_await ctx.Write("review:" + args.Get("rid") + ":movie", args.Get("movie"));
    co_return "";
  });
  runtime.RegisterFunction("movie.upload_text", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_await ctx.Write("review:" + args.Get("rid") + ":text",
                       PadValue("text", 200));
    co_return "";
  });
  runtime.RegisterFunction("movie.upload_rating",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_await ctx.Write("review:" + args.Get("rid") + ":rating", args.Get("rating"));
    co_return "";
  });

  // 6. store_review: materializes the review object and bumps the movie's rating aggregate.
  runtime.RegisterFunction("movie.store_review", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    std::string rid = args.Get("rid");
    Value text = co_await ctx.Read("review:" + rid + ":text");
    co_await ctx.Write("review:" + rid, text);
    co_await ctx.Write("movie-stats:" + args.Get("movie"), args.Get("rating"));
    co_return rid;
  });

  // 7. update_user_reviews: prepend to the author's review list.
  runtime.RegisterFunction("movie.update_user_reviews",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    std::string key = "user-reviews:" + args.Get("user");
    Value list = co_await ctx.Read(key);
    co_await ctx.Write(key, AppendToList(list, args.Get("rid")));
    co_return "";
  });

  // 8. update_movie_reviews.
  runtime.RegisterFunction("movie.update_movie_reviews",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    std::string key = "movie-reviews:" + args.Get("movie");
    Value list = co_await ctx.Read(key);
    co_await ctx.Write(key, AppendToList(list, args.Get("rid")));
    co_return "";
  });

  // 9. compose_review (root): the §6.2 write-heavy workflow. The five component uploads run
  // in parallel (as in DeathStarBench's media frontend), then the review is stored and the
  // user/movie indices are updated in parallel.
  runtime.RegisterFunction("movie.compose_review",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    const Value& in = ctx.input();
    std::vector<std::pair<std::string, Value>> uploads;
    uploads.emplace_back("movie.unique_id", in);
    uploads.emplace_back("movie.upload_user", in);
    uploads.emplace_back("movie.upload_movie_id", in);
    uploads.emplace_back("movie.upload_text", in);
    uploads.emplace_back("movie.upload_rating", in);
    co_await ctx.InvokeAll(std::move(uploads));
    Value rid = co_await ctx.Invoke("movie.store_review", in);
    std::vector<std::pair<std::string, Value>> updates;
    updates.emplace_back("movie.update_user_reviews", in);
    updates.emplace_back("movie.update_movie_reviews", in);
    co_await ctx.InvokeAll(std::move(updates));
    co_return rid;
  });

  // 10. get_info.
  runtime.RegisterFunction("movie.get_info", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_return co_await ctx.Read("movie:" + args.Get("movie"));
  });

  // 11. get_reviews: the review list plus the two newest reviews.
  runtime.RegisterFunction("movie.get_reviews", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    Value list = co_await ctx.Read("movie-reviews:" + args.Get("movie"));
    for (size_t i = 0; i < 2; ++i) {
      std::string rid = NthListItem(list, i);
      if (rid.empty()) break;
      co_await ctx.Read("review:" + rid);
    }
    co_return list;
  });

  // 12. read_movie_info (root).
  runtime.RegisterFunction("movie.read_movie_info",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value info = co_await ctx.Invoke("movie.get_info", ctx.input());
    co_await ctx.Invoke("movie.get_reviews", ctx.input());
    co_return info;
  });

  // 13. register_movie (root, rare).
  runtime.RegisterFunction("movie.register_movie",
                           [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    co_await ctx.Write("movie:" + args.Get("movie"), PadValue("new-movie", 256));
    co_await ctx.Write("movie-reviews:" + args.Get("movie"), Value{});
    co_return "";
  });
}

RequestFactory MovieRequestFactory(core::SsfRuntime& runtime, const AppDataset& data) {
  core::SsfRuntime* rt = &runtime;
  AppDataset d = data;
  auto next_rid = std::make_shared<int64_t>(0);
  return [rt, d, next_rid]() -> std::pair<std::string, Value> {
    Rng& rng = rt->cluster().rng();
    Args args;
    args.Set("movie", Id("m", rng.UniformInt(0, d.movies - 1)));
    args.Set("user", Id("u", rng.UniformInt(0, d.users - 1)));
    args.Set("rid", Id("r", (*next_rid)++) + rng.HexString(6));
    args.SetInt("rating", rng.UniformInt(1, 10));
    double dice = rng.UniformDouble();
    // Posting reviews is the core functionality (§6.2): write-skewed.
    if (dice < 0.80) return {"movie.compose_review", args.Encode()};
    if (dice < 0.98) return {"movie.read_movie_info", args.Encode()};
    return {"movie.register_movie", args.Encode()};
  };
}

// ---------------------------------------------------------------------------
// Retwis
// ---------------------------------------------------------------------------

void RegisterRetwisApp(core::SsfRuntime& runtime, const AppDataset& data) {
  Value pad = PadValue("retwis-user", data.value_bytes);
  for (int i = 0; i < data.users; ++i) {
    runtime.PopulateObject("ruser:" + Id("u", i), pad);
    runtime.PopulateObject("followers:" + Id("u", i), Value{});
    runtime.PopulateObject("timeline:" + Id("u", i), Value{});
  }
  for (int i = 0; i < data.tweets; ++i) {
    runtime.PopulateObject("tweet:" + Id("t", i), PadValue("seed-tweet", data.value_bytes));
  }

  // post: store the tweet, prepend to the author's timeline.
  runtime.RegisterFunction("retwis.post", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    std::string tid = args.Get("tweet");
    co_await ctx.Write("tweet:" + tid, PadValue("tweet-body", 256));
    std::string timeline = "timeline:" + args.Get("user");
    Value list = co_await ctx.Read(timeline);
    co_await ctx.Write(timeline, AppendToList(list, tid));
    co_return tid;
  });

  // follow: update both follow lists.
  runtime.RegisterFunction("retwis.follow", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    std::string followers = "followers:" + args.Get("target");
    Value list = co_await ctx.Read(followers);
    co_await ctx.Write(followers, AppendToList(list, args.Get("user")));
    co_return "";
  });

  // get_timeline: the list plus up to five tweets (GET-heavy).
  runtime.RegisterFunction("retwis.get_timeline", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    Value list = co_await ctx.Read("timeline:" + args.Get("user"));
    int64_t fetched = 0;
    while (fetched < 5) {
      std::string tid = NthListItem(list, static_cast<size_t>(fetched));
      if (tid.empty()) break;
      co_await ctx.Read("tweet:" + tid);
      ++fetched;
    }
    // Pad with reads of seed tweets so timeline costs are uniform across users.
    for (int64_t i = fetched; i < 5; ++i) {
      co_await ctx.Read("tweet:" + Id("t", (args.GetInt("seed") + i) % 500));
    }
    co_return list;
  });

  // get_profile: user record + follower list.
  runtime.RegisterFunction("retwis.get_profile", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Args args = Args::Parse(ctx.input());
    Value user = co_await ctx.Read("ruser:" + args.Get("user"));
    co_await ctx.Read("followers:" + args.Get("user"));
    co_return user;
  });
}

RequestFactory RetwisRequestFactory(core::SsfRuntime& runtime, const AppDataset& data) {
  core::SsfRuntime* rt = &runtime;
  AppDataset d = data;
  auto next_tweet = std::make_shared<int64_t>(0);
  return [rt, d, next_tweet]() -> std::pair<std::string, Value> {
    Rng& rng = rt->cluster().rng();
    Args args;
    args.Set("user", Id("u", rng.UniformInt(0, d.users - 1)));
    args.Set("target", Id("u", rng.UniformInt(0, d.users - 1)));
    args.Set("tweet", Id("t", 1000 + (*next_tweet)++));
    args.SetInt("seed", rng.UniformInt(0, 499));
    double dice = rng.UniformDouble();
    // Redis's retwis mix: timelines dominate. Read-intensive.
    if (dice < 0.70) return {"retwis.get_timeline", args.Encode()};
    if (dice < 0.80) return {"retwis.get_profile", args.Encode()};
    if (dice < 0.95) return {"retwis.post", args.Encode()};
    return {"retwis.follow", args.Encode()};
  };
}

const std::vector<AppDescriptor>& AllApplications() {
  static const std::vector<AppDescriptor>* apps = new std::vector<AppDescriptor>{
      {"travel", &RegisterTravelApp, &TravelRequestFactory},
      {"movie", &RegisterMovieApp, &MovieRequestFactory},
      {"retwis", &RegisterRetwisApp, &RetwisRequestFactory},
  };
  return *apps;
}

}  // namespace halfmoon::workloads
