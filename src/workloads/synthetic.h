// The synthetic SSF of §6.1 and §6.3.
//
// §6.1 microbenchmark: one read and one write per request over 10 K objects (8 B keys, 256 B
// values). §6.3 overhead study: ten operations per request, each targeting a random object,
// with a configurable read ratio. The generator samples the operation list; the SSF body is a
// deterministic interpreter of that list. Per-operation latencies are recorded into shared
// recorders, which is how Figure 10 and Table 1 separate read and write costs.

#ifndef HALFMOON_WORKLOADS_SYNTHETIC_H_
#define HALFMOON_WORKLOADS_SYNTHETIC_H_

#include <string>

#include "src/core/ssf_runtime.h"
#include "src/metrics/latency_recorder.h"

namespace halfmoon::workloads {

struct SyntheticConfig {
  int num_objects = 10000;
  size_t value_bytes = 256;
  int ops_per_request = 10;
  double read_ratio = 0.5;
};

class SyntheticWorkload {
 public:
  SyntheticWorkload(core::SsfRuntime* runtime, SyntheticConfig config)
      : runtime_(runtime), config_(config) {}

  // Registers the "synthetic" SSF and seeds all objects.
  void Setup();

  // Samples one invocation input according to the configured mix. Uses the cluster RNG so
  // runs are reproducible.
  Value NextInput();

  static std::string FunctionName() { return "synthetic"; }

  metrics::LatencyRecorder& read_latency() { return read_latency_; }
  metrics::LatencyRecorder& write_latency() { return write_latency_; }

  std::string KeyFor(int index) const;

 private:
  core::SsfRuntime* runtime_;
  SyntheticConfig config_;
  metrics::LatencyRecorder read_latency_;
  metrics::LatencyRecorder write_latency_;
};

}  // namespace halfmoon::workloads

#endif  // HALFMOON_WORKLOADS_SYNTHETIC_H_
