// Conservative-time parallel simulation: one event loop per worker, on a real OS thread.
//
// A ParallelEngine owns W sim::Schedulers and runs them on W threads. Correctness follows the
// classic conservative (Chandy–Misra/YAWNS-style windowed) discipline, phrased here as the
// shared-watermark rule of DESIGN.md §10: a worker may only advance its local virtual clock
// past a time T once every peer has published a lower bound >= T on the timestamps it can
// still produce. The engine runs in barrier-delimited rounds:
//
//   1. Every worker publishes the time of its earliest pending event (its lower bound).
//   2. The round's watermark m is the global minimum; the safe window is [m, m + lookahead).
//      Because every cross-worker message is delayed by at least `lookahead` (enforced by
//      Send), no event fired inside the window — on any worker — can produce a message with
//      a timestamp inside the window. Workers therefore execute their window events with no
//      interleaved communication at all.
//   3. At the window barrier, outgoing messages are routed to their destination workers,
//      which merge them into their event queues in (time, sender, send-seq) order before
//      publishing the next lower bound.
//
// Determinism: every quantity that shapes execution — the published bounds, the watermark,
// the window contents, the message sets, and the merge order — is a pure function of the
// simulation state, never of OS thread timing. A parallel run is bit-reproducible: same
// events, same order, same virtual timestamps on every run and on any machine. (This is
// stronger than the content-determinism the tests pin, and it is what makes HM_PARALLEL=1
// failures replayable.)
//
// Threading contract: scheduler(w) and all simulation state reachable from it belong to
// worker w's thread while Run() is in flight. The main thread may touch any scheduler before
// Run() (to spawn load) and after Run() returns (to harvest results); the thread fork/join
// and the barriers provide the happens-before edges. Send() is the ONLY cross-worker channel
// and may be called solely from the sending worker's own window (or from the main thread
// before Run()).

#ifndef HALFMOON_SIM_PARALLEL_H_
#define HALFMOON_SIM_PARALLEL_H_

#include <barrier>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/scheduler.h"

namespace halfmoon::sim {

class ParallelEngine {
 public:
  // `lookahead` is the minimum virtual latency of any cross-worker interaction (see
  // latency_model.h: kMinCrossShardLatencyMs). Larger lookahead = wider windows = fewer
  // barriers per virtual second; it must never exceed the real minimum cross-worker delay.
  ParallelEngine(int workers, SimDuration lookahead,
                 QueueMode mode = QueueMode::kTimerWheel);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int workers() const { return static_cast<int>(workers_.size()); }
  SimDuration lookahead() const { return lookahead_; }
  Scheduler& scheduler(int w) { return workers_[static_cast<size_t>(w)]->sched; }

  // Schedules `fn` on worker `to`'s loop at scheduler(from).Now() + delay. The delay must be
  // >= lookahead — the conservative protocol is unsound otherwise, so this is a hard check,
  // and callers clamp sampled latencies up to the floor (see ClampCrossShard).
  // A self-send (to == from) goes straight into the local queue; a cross send is buffered
  // and delivered at the next window barrier, merged deterministically.
  template <typename F>
  void Send(int from, int to, SimDuration delay, F&& fn) {
    HM_CHECK(delay >= lookahead_);
    Worker& src = *workers_[static_cast<size_t>(from)];
    SimTime time = src.sched.Now() + delay;
    if (to == from) {
      src.sched.PostAt(time, std::forward<F>(fn));
      return;
    }
    src.outbox.push_back(CrossMsg{time, from, to, src.send_seq++,
                                  InlineCallback(std::forward<F>(fn))});
  }

  // Runs every worker to global drain (all queues empty, no message in flight) and returns
  // the largest virtual end time across workers. Spawns workers() OS threads; call at most
  // once. With a single worker the engine degenerates to Scheduler::Run() exactly: same
  // events, same (time, seq) order, no thread is spawned.
  SimTime Run();

  // Synchronization rounds executed and cross-worker messages routed (bench accounting).
  uint64_t windows() const { return windows_; }
  uint64_t messages_routed() const { return messages_routed_; }

  // Events fired across all workers (the wall-clock throughput numerator).
  uint64_t TotalEventsProcessed() const;

 private:
  // A cross-worker event: `fn` runs on worker `to` at virtual time `time`. (from, seq) make
  // the barrier merge a total order, so delivery is deterministic run to run.
  struct CrossMsg {
    SimTime time;
    int from;
    int to;
    uint64_t seq;
    InlineCallback fn;
  };

  struct Worker {
    explicit Worker(QueueMode mode) : sched(mode) {}

    Scheduler sched;
    std::vector<CrossMsg> outbox;  // Filled by the owner during its window.
    std::vector<CrossMsg> staged;  // Routed at the barrier; drained by the owner.
    SimTime next = Scheduler::kMaxSimTime;  // Published lower bound.
    uint64_t send_seq = 0;
  };

  void WorkerLoop(int w);
  // Barrier completions; each runs on exactly one thread while all workers are parked.
  void ComputeWindow();   // Publishes watermark + horizon, detects global drain.
  void RouteMessages();   // Moves every outbox message to its destination's staging area.
  void DeliverStaged(Worker& worker);

  SimDuration lookahead_;
  std::vector<std::unique_ptr<Worker>> workers_;
  SimTime horizon_ = 0;
  bool done_ = false;
  bool ran_ = false;
  uint64_t windows_ = 0;
  uint64_t messages_routed_ = 0;

  // Two phase barriers per round: bounds -> window. Completions run engine phase logic.
  struct BoundsPhase {
    ParallelEngine* engine;
    void operator()() noexcept { engine->ComputeWindow(); }
  };
  struct WindowPhase {
    ParallelEngine* engine;
    void operator()() noexcept { engine->RouteMessages(); }
  };
  std::barrier<BoundsPhase> bounds_barrier_;
  std::barrier<WindowPhase> window_barrier_;
};

}  // namespace halfmoon::sim

#endif  // HALFMOON_SIM_PARALLEL_H_
