// A multi-server queueing station used to model the capacity of backend services (the log
// sequencer, log storage nodes, and external-state shards).
//
// Each operation occupies one of `servers` slots for a sampled service time; when all slots
// are busy, callers queue FIFO. The queueing wait is what bends latency-vs-throughput curves
// into the hockey-stick shape of Figure 11 as offered load approaches capacity.

#ifndef HALFMOON_SIM_SERVICE_STATION_H_
#define HALFMOON_SIM_SERVICE_STATION_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace halfmoon::sim {

class ServiceStation {
 public:
  ServiceStation(Scheduler* scheduler, int64_t servers)
      : scheduler_(scheduler), slots_(scheduler, servers) {}

  // Occupies a server for `service_time`. Returns only after the work completes; the caller
  // experiences queueing delay + service time.
  Task<void> Process(SimDuration service_time) {
    co_await slots_.Acquire();
    SemaphoreGuard guard(&slots_);
    co_await scheduler_->Delay(service_time);
    ++completed_;
  }

  size_t queue_length() const { return slots_.queue_length(); }
  int64_t completed() const { return completed_; }

 private:
  Scheduler* scheduler_;
  Semaphore slots_;
  int64_t completed_ = 0;
};

}  // namespace halfmoon::sim

#endif  // HALFMOON_SIM_SERVICE_STATION_H_
