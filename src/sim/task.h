// Task<T>: the coroutine type every simulated activity is written in.
//
// Tasks are lazy (they start when first awaited) and use symmetric transfer so that deep
// call chains of `co_await` neither recurse on the stack nor bounce through the scheduler.
// A Task owns its coroutine frame; awaiting a task transfers control into it and resumes the
// awaiter when the task completes. Exceptions thrown inside a task propagate to the awaiter,
// which is how injected SSF crashes unwind through protocol code back to the runtime.

#ifndef HALFMOON_SIM_TASK_H_
#define HALFMOON_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "src/common/check.h"

namespace halfmoon::sim {

template <typename T>
class Task;

namespace internal {

// Transfers control back to the awaiting coroutine (if any) when a task finishes.
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> handle) noexcept {
    std::coroutine_handle<> continuation = handle.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace internal

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }

  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  struct Awaiter {
    Handle handle;

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
      handle.promise().continuation = awaiting;
      return handle;  // Symmetric transfer: start (or resume into) the task.
    }

    T await_resume() {
      auto& promise = handle.promise();
      if (promise.exception) {
        std::rethrow_exception(promise.exception);
      }
      if constexpr (!std::is_void_v<T>) {
        HM_CHECK_MSG(promise.value.has_value(), "Task finished without a value");
        return std::move(*promise.value);
      }
    }
  };

  // Tasks are single-shot: awaiting consumes the result.
  Awaiter operator co_await() && {
    HM_CHECK_MSG(handle_, "co_await on an empty Task");
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace internal {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace halfmoon::sim

#endif  // HALFMOON_SIM_TASK_H_
