#include "src/sim/scheduler.h"

#include <cstdio>
#include <cstdlib>

namespace halfmoon::sim {
namespace {

// A self-destructing root coroutine used to anchor detached tasks. Its frame is destroyed
// automatically at final_suspend (suspend_never), after the awaited task has completed and
// been destroyed with it.
struct Detached {
  struct promise_type {
    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept {
      std::fprintf(stderr, "fatal: exception escaped a detached sim task\n");
      std::abort();
    }
  };

  std::coroutine_handle<promise_type> handle;
};

Detached RunDetached(Task<void> task) { co_await std::move(task); }

}  // namespace

void Scheduler::Spawn(Task<void> task) {
  Detached detached = RunDetached(std::move(task));
  PostResume(0, detached.handle);
}

}  // namespace halfmoon::sim
