#include "src/sim/scheduler.h"

#include <cstdio>
#include <cstdlib>

namespace halfmoon::sim {
namespace {

// A self-destructing root coroutine used to anchor detached tasks. Its frame is destroyed
// automatically at final_suspend (suspend_never), after the awaited task has completed and
// been destroyed with it. The promise deregisters the frame from the scheduler's live set
// in its destructor, which runs both on natural completion and on explicit destroy.
struct Detached {
  struct promise_type {
    std::unordered_set<void*>* registry = nullptr;

    ~promise_type() {
      if (registry != nullptr) {
        registry->erase(std::coroutine_handle<promise_type>::from_promise(*this).address());
      }
    }

    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept {
      std::fprintf(stderr, "fatal: exception escaped a detached sim task\n");
      std::abort();
    }
  };

  std::coroutine_handle<promise_type> handle;
};

Detached RunDetached(Task<void> task) { co_await std::move(task); }

}  // namespace

void Scheduler::Spawn(Task<void> task) {
  Detached detached = RunDetached(std::move(task));
  detached.handle.promise().registry = &detached_;
  detached_.insert(detached.handle.address());
  PostResume(0, detached.handle);
}

Scheduler::~Scheduler() {
  // Move the set aside so each promise destructor's deregistration is a no-op erase rather
  // than a mutation of the container being iterated. Pending queue events may hold handles
  // into the destroyed chains; they are never fired, only dropped.
  std::unordered_set<void*> live = std::move(detached_);
  detached_.clear();
  for (void* frame : live) {
    std::coroutine_handle<>::from_address(frame).destroy();
  }
}

}  // namespace halfmoon::sim
