// Synchronization primitives for simulated coroutines: Event, Semaphore, WaitGroup, and
// JoinHandle (await the result of a concurrently spawned task).
//
// All wake-ups go through the scheduler queue (never inline resumes), which keeps the
// "one coroutine at a time" discipline and makes wake ordering FIFO and deterministic.

#ifndef HALFMOON_SIM_SYNC_H_
#define HALFMOON_SIM_SYNC_H_

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"

namespace halfmoon::sim {

// A manual-reset event. Awaiting a set event completes immediately; Set() wakes all waiters.
class Event {
 public:
  explicit Event(Scheduler* scheduler) : scheduler_(scheduler) {}

  void Set() {
    set_ = true;
    for (std::coroutine_handle<> waiter : waiters_) {
      scheduler_->PostResume(0, waiter);
    }
    waiters_.clear();
  }

  void Reset() { set_ = false; }
  bool is_set() const { return set_; }

  struct Awaiter {
    Event* event;
    bool await_ready() const noexcept { return event->set_; }
    void await_suspend(std::coroutine_handle<> handle) { event->waiters_.push_back(handle); }
    void await_resume() const noexcept {}
  };

  Awaiter operator co_await() { return Awaiter{this}; }

 private:
  Scheduler* scheduler_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// A counting semaphore with FIFO wake-up, used to model bounded executor slots.
class Semaphore {
 public:
  Semaphore(Scheduler* scheduler, int64_t permits)
      : scheduler_(scheduler), permits_(permits) {
    HM_CHECK(permits >= 0);
  }

  struct AcquireAwaiter {
    Semaphore* semaphore;
    bool await_ready() const noexcept {
      if (semaphore->permits_ > 0) {
        --semaphore->permits_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      semaphore->waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };

  AcquireAwaiter Acquire() { return AcquireAwaiter{this}; }

  void Release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the oldest waiter.
      std::coroutine_handle<> waiter = waiters_.front();
      waiters_.pop_front();
      scheduler_->PostResume(0, waiter);
    } else {
      ++permits_;
    }
  }

  int64_t available() const { return permits_; }
  size_t queue_length() const { return waiters_.size(); }

 private:
  Scheduler* scheduler_;
  int64_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII permit holder for Semaphore.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore* semaphore) : semaphore_(semaphore) {}
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  SemaphoreGuard(SemaphoreGuard&& other) noexcept
      : semaphore_(std::exchange(other.semaphore_, nullptr)) {}
  ~SemaphoreGuard() {
    if (semaphore_ != nullptr) semaphore_->Release();
  }

 private:
  Semaphore* semaphore_;
};

// Counts outstanding work items; Wait() suspends until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Scheduler* scheduler) : done_event_(scheduler) {
    done_event_.Set();  // Zero outstanding items initially.
  }

  void Add(int64_t n = 1) {
    HM_CHECK(n > 0);
    if (count_ == 0) done_event_.Reset();
    count_ += n;
  }

  void Done() {
    HM_CHECK(count_ > 0);
    if (--count_ == 0) done_event_.Set();
  }

  int64_t count() const { return count_; }

  Event::Awaiter Wait() { return done_event_.operator co_await(); }

 private:
  int64_t count_ = 0;
  Event done_event_;
};

// Shared completion state behind JoinHandle<T>.
namespace internal {

template <typename T>
struct JoinState {
  Scheduler* scheduler = nullptr;
  bool done = false;
  std::exception_ptr exception;
  std::optional<T> value;
  std::vector<std::coroutine_handle<>> waiters;

  void Finish() {
    done = true;
    for (std::coroutine_handle<> waiter : waiters) {
      scheduler->PostResume(0, waiter);
    }
    waiters.clear();
  }
};

template <>
struct JoinState<void> {
  Scheduler* scheduler = nullptr;
  bool done = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> waiters;

  void Finish() {
    done = true;
    for (std::coroutine_handle<> waiter : waiters) {
      scheduler->PostResume(0, waiter);
    }
    waiters.clear();
  }
};

}  // namespace internal

// Handle to a task spawned with SpawnJoinable. Awaiting it yields the task's result (moving it
// out — await at most once for non-void T) and rethrows any exception the task ended with.
template <typename T>
class JoinHandle {
 public:
  JoinHandle() = default;
  explicit JoinHandle(std::shared_ptr<internal::JoinState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done; }

  struct Awaiter {
    internal::JoinState<T>* state;

    bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> handle) { state->waiters.push_back(handle); }
    T await_resume() {
      if (state->exception) std::rethrow_exception(state->exception);
      if constexpr (!std::is_void_v<T>) {
        HM_CHECK_MSG(state->value.has_value(), "JoinHandle awaited more than once");
        return std::move(*state->value);
      }
    }
  };

  Awaiter operator co_await() const {
    HM_CHECK_MSG(state_ != nullptr, "awaiting an empty JoinHandle");
    return Awaiter{state_.get()};
  }

 private:
  std::shared_ptr<internal::JoinState<T>> state_;
};

namespace internal {

template <typename T>
Task<void> RunJoinable(std::shared_ptr<JoinState<T>> state, Task<T> task) {
  try {
    if constexpr (std::is_void_v<T>) {
      co_await std::move(task);
    } else {
      state->value.emplace(co_await std::move(task));
    }
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->Finish();
}

}  // namespace internal

// Spawns `task` concurrently and returns a handle that can be awaited for its result.
template <typename T>
JoinHandle<T> SpawnJoinable(Scheduler& scheduler, Task<T> task) {
  auto state = std::make_shared<internal::JoinState<T>>();
  state->scheduler = &scheduler;
  scheduler.Spawn(internal::RunJoinable<T>(state, std::move(task)));
  return JoinHandle<T>(std::move(state));
}

}  // namespace halfmoon::sim

#endif  // HALFMOON_SIM_SYNC_H_
