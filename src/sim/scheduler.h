// The discrete-event scheduler: a virtual clock plus a time-ordered event queue.
//
// Exactly one coroutine runs at any moment; everything that "blocks" (delays, I/O latencies,
// semaphores, events) suspends the coroutine and registers a wake-up in the queue. Ties in
// time are broken by insertion order, which makes whole simulations deterministic for a fixed
// RNG seed.
//
// The queue is the hottest loop of the whole simulator, so events never touch the heap: an
// event is either a raw coroutine handle (PostResume, the dominant case — every Delay and
// station hop) or a small callable stored inline in the event itself (Post). Callables larger
// than the inline buffer fail to compile; shrink the capture list or move the state behind a
// pointer instead of regressing the hot loop with type-erased heap allocations.
//
// Two queue implementations share the same observable contract (see QueueMode):
//   * kTimerWheel (default) — a hierarchical timer wheel: O(1) schedule, amortized O(1)
//     dispatch. Five levels of 64 slots each; level L slots are 2^(13+6L) ns wide, so the
//     wheel spans ~2.4 h of virtual time and a far-future overflow heap catches the rest.
//     The wheel never ticks through empty slots: per-level occupancy bitmaps jump straight
//     to the next occupied slot, and virtual time advances only when an event fires.
//   * kPriorityQueue — the pre-wheel binary heap (O(log n) per event). Kept as the reference
//     implementation: equivalence tests replay identical event storms through both modes and
//     require bit-identical firing orders, and the hot-path bench uses it as the baseline.

#ifndef HALFMOON_SIM_SCHEDULER_H_
#define HALFMOON_SIM_SCHEDULER_H_

#include <algorithm>
#include <array>
#include <bit>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/task.h"

namespace halfmoon::sim {

// A move-only type-erased callable with fixed inline storage and no heap fallback.
class InlineCallback {
 public:
  static constexpr size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineSize,
                  "scheduler callback exceeds the inline event buffer; shrink its captures");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "scheduler callback is over-aligned for the inline event buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "scheduler callbacks must be nothrow-movable (the event queue relocates)");
    new (storage_) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::value;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~InlineCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct OpsFor {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops value{&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

// Which event-queue implementation a Scheduler runs on. Both honor the same contract:
// events fire in (time, insertion-seq) order, so same-seed simulations are bit-identical
// across modes.
enum class QueueMode {
  kTimerWheel,     // Hierarchical timer wheel (default, the fast path).
  kPriorityQueue,  // Binary-heap reference implementation (equivalence tests, baselines).
};

class Scheduler {
 public:
  // The "no pending event" sentinel returned by NextEventTime.
  static constexpr SimTime kMaxSimTime = std::numeric_limits<SimTime>::max();

  explicit Scheduler(QueueMode mode = QueueMode::kTimerWheel) : mode_(mode) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Destroys any detached task chains still suspended (periodic loops parked on a Delay
  // when the simulation ends would otherwise leak their coroutine frames).
  ~Scheduler();

  QueueMode mode() const { return mode_; }

  SimTime Now() const { return now_; }

  // Registers `fn` to run at Now() + delay. The callable is stored inline in the event.
  template <typename F>
  void Post(SimDuration delay, F&& fn) {
    HM_CHECK(delay >= 0);
    Enqueue(Event{now_ + delay, next_seq_++, {}, InlineCallback(std::forward<F>(fn))});
  }

  // Schedules a coroutine resume at Now() + delay. Stores the raw handle — no callable, no
  // type erasure, no allocation.
  void PostResume(SimDuration delay, std::coroutine_handle<> handle) {
    HM_CHECK(delay >= 0);
    Enqueue(Event{now_ + delay, next_seq_++, handle, {}});
  }

  // Registers `fn` at an absolute virtual time (used by the parallel engine to inject
  // cross-worker messages carrying the sender's timestamp). `time` must not lie in the past;
  // it may land inside the currently staged slot, where the event is filed in (time, seq)
  // position like any other enqueue.
  template <typename F>
  void PostAt(SimTime time, F&& fn) {
    HM_CHECK(time >= now_);
    Enqueue(Event{time, next_seq_++, {}, InlineCallback(std::forward<F>(fn))});
  }

  // Runs events until the queue drains. Returns the final simulated time.
  SimTime Run() {
    while (PrepareNext(kMaxSimTime)) {
      FireNext();
    }
    return now_;
  }

  // Runs events with time <= deadline; the clock ends at min(deadline, drain time).
  // Events scheduled beyond the deadline stay queued.
  SimTime RunUntil(SimTime deadline) {
    while (PrepareNext(deadline)) {
      FireNext();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
    return now_;
  }

  // Runs every event with time strictly below `end`, leaving the clock at the last fired
  // event (never artificially advanced — later windows may still deliver events at >= end).
  // This is the conservative-window primitive of the parallel engine (parallel.h): `end` is
  // the horizon the synchronization protocol has proven safe.
  SimTime RunWindow(SimTime end) {
    HM_CHECK(end > 0);
    while (PrepareNext(end - 1)) {
      FireNext();
    }
    return now_;
  }

  // Time of the earliest pending event, or kMaxSimTime when the queue is empty. Stages the
  // event exactly as dispatch would (wheel cascades included) without firing it, so the call
  // is amortized-free on the run path.
  SimTime NextEventTime() {
    if (!PrepareNext(kMaxSimTime)) return kMaxSimTime;
    return mode_ == QueueMode::kPriorityQueue ? queue_.top().time : run_[run_pos_].time;
  }

  bool empty() const {
    return mode_ == QueueMode::kPriorityQueue ? queue_.empty() : size_ == 0;
  }
  size_t pending_events() const {
    return mode_ == QueueMode::kPriorityQueue ? queue_.size() : size_;
  }

  // Total events fired since construction (throughput accounting for the hot-path bench).
  uint64_t events_processed() const { return events_processed_; }

  // Awaitable virtual-time sleep: `co_await scheduler.Delay(Milliseconds(2));`
  struct DelayAwaiter {
    Scheduler* scheduler;
    SimDuration delay;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      scheduler->PostResume(delay, handle);
    }
    void await_resume() const noexcept {}
  };

  DelayAwaiter Delay(SimDuration d) { return DelayAwaiter{this, d}; }

  // Starts a fire-and-forget task at the current time. The coroutine frame self-destructs on
  // completion; an exception escaping a detached task aborts the simulation (detached work
  // must handle its own failures — SSF crashes are caught by the runtime, never here).
  void Spawn(Task<void> task);

 private:
  // Wheel geometry. Level L covers slots of 2^(kSlotShift + L*kLevelBits) ns; the top level's
  // "lap" (64 top slots) spans 2^(kSlotShift + kLevels*kLevelBits) ns ≈ 2.4 h. Events beyond
  // the current top lap wait in the overflow heap.
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;
  static constexpr uint64_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr int kLevels = 5;
  static constexpr int kSlotShift = 13;  // Level-0 slot width: 8.2 µs.
  static constexpr int Shift(int level) { return kSlotShift + level * kLevelBits; }

  // Two-variant event: a coroutine resume (handle set) or an inline callable (fn set).
  struct Event {
    SimTime time;
    uint64_t seq;
    std::coroutine_handle<> handle;
    InlineCallback fn;

    void Fire() {
      if (handle) {
        handle.resume();
      } else {
        fn();
      }
    }

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void Enqueue(Event&& event) {
    if (mode_ == QueueMode::kPriorityQueue) {
      queue_.push(std::move(event));
      return;
    }
    ++size_;
    Place(std::move(event));
  }

  // Files an event into the active run, a wheel slot, or the overflow heap. An event belongs
  // at the lowest level whose parent slot (the level-above slot containing `slot_base_`) also
  // contains the event's time: this "no wrap past the lap boundary" rule keeps every level's
  // events strictly later than all lower-level events, so dispatch can drain levels in order.
  void Place(Event&& event) {
    if (run_pos_ < run_.size() && event.time < run_slot_end_) {
      // The event lands inside the slot currently being fired. Its seq is larger than every
      // queued peer's, so ordering by time alone puts it exactly where (time, seq) would.
      auto it = std::upper_bound(
          run_.begin() + static_cast<ptrdiff_t>(run_pos_), run_.end(), event.time,
          [](SimTime t, const Event& e) { return t < e.time; });
      run_.insert(it, std::move(event));
      return;
    }
    for (int level = 0; level < kLevels; ++level) {
      int parent_shift = Shift(level + 1);
      if ((event.time >> parent_shift) == (slot_base_ >> parent_shift)) {
        size_t idx = (static_cast<uint64_t>(event.time) >> Shift(level)) & kSlotMask;
        occupied_[level] |= uint64_t{1} << idx;
        slots_[static_cast<size_t>(level) * kSlotsPerLevel + idx].push_back(std::move(event));
        return;
      }
    }
    overflow_.push(std::move(event));
  }

  // Advances the wheel until the next event to fire sits at run_[run_pos_], without firing
  // anything. Returns false if the queue is empty or the next event is past `bound`; never
  // moves slot_base_ past `bound`, so events enqueued after an early return still satisfy
  // time >= slot_base_.
  bool PrepareNext(SimTime bound) {
    if (mode_ == QueueMode::kPriorityQueue) {
      return !queue_.empty() && queue_.top().time <= bound;
    }
    while (true) {
      if (run_pos_ < run_.size()) return run_[run_pos_].time <= bound;
      if (run_pos_ != 0) {
        run_.clear();
        run_pos_ = 0;
      }
      if (size_ == 0) return false;
      if (occupied_[0] != 0) {
        // Materialize the nearest occupied level-0 slot as the next run, sorted by
        // (time, seq) to honor the FIFO tie-break exactly as the reference heap does.
        uint64_t cur = (static_cast<uint64_t>(slot_base_) >> kSlotShift) & kSlotMask;
        int k = std::countr_zero(std::rotr(occupied_[0], static_cast<int>(cur)));
        SimTime start = slot_base_ + (static_cast<SimTime>(k) << kSlotShift);
        if (start > bound) return false;
        size_t idx = (cur + static_cast<uint64_t>(k)) & kSlotMask;
        occupied_[0] &= ~(uint64_t{1} << idx);
        slot_base_ = start;
        run_slot_end_ = start + (SimTime{1} << kSlotShift);
        std::swap(run_, slots_[idx]);
        std::sort(run_.begin(), run_.end(), [](const Event& a, const Event& b) {
          if (a.time != b.time) return a.time < b.time;
          return a.seq < b.seq;
        });
        continue;
      }
      bool cascaded = false;
      for (int level = 1; level < kLevels; ++level) {
        if (occupied_[level] == 0) continue;
        // All lower levels are empty, so the earliest pending event is in this level's
        // nearest occupied slot: jump straight to it and redistribute downwards.
        int shift = Shift(level);
        uint64_t cur = (static_cast<uint64_t>(slot_base_) >> shift) & kSlotMask;
        int k = std::countr_zero(std::rotr(occupied_[level], static_cast<int>(cur)));
        HM_CHECK(k > 0);  // The current slot was drained when slot_base_ entered it.
        SimTime start = ((slot_base_ >> shift) + k) << shift;
        if (start > bound) return false;
        size_t idx = (cur + static_cast<uint64_t>(k)) & kSlotMask;
        occupied_[level] &= ~(uint64_t{1} << idx);
        slot_base_ = start;
        std::vector<Event>& slot = slots_[static_cast<size_t>(level) * kSlotsPerLevel + idx];
        for (Event& e : slot) Place(std::move(e));
        slot.clear();
        cascaded = true;
        break;
      }
      if (cascaded) continue;
      HM_CHECK(!overflow_.empty());
      if (overflow_.top().time > bound) return false;
      // The whole wheel is empty: jump to the overflow minimum's lap and pull in every
      // overflow event that now fits inside the wheel horizon.
      slot_base_ = (overflow_.top().time >> kSlotShift) << kSlotShift;
      while (!overflow_.empty() &&
             (overflow_.top().time >> Shift(kLevels)) == (slot_base_ >> Shift(kLevels))) {
        Event e = std::move(const_cast<Event&>(overflow_.top()));
        overflow_.pop();
        Place(std::move(e));
      }
    }
  }

  // Fires the event staged by PrepareNext (wheel) or sitting at the heap top (reference).
  void FireNext() {
    Event event = [this] {
      if (mode_ == QueueMode::kPriorityQueue) {
        // Moving out of the top of a priority_queue requires a const_cast; the element is
        // popped immediately afterwards so the broken ordering invariant is never observed.
        Event e = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        return e;
      }
      --size_;
      return std::move(run_[run_pos_++]);
    }();
    HM_CHECK(event.time >= now_);
    now_ = event.time;
    ++events_processed_;
    event.Fire();
  }

  QueueMode mode_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;

  // Timer-wheel state. `slot_base_` is the (level-0-aligned) start of the slot the wheel has
  // advanced to; every queued event satisfies time >= slot_base_. `run_` holds the events of
  // the slot being fired, sorted by (time, seq), with run_pos_ marking the next to fire.
  SimTime slot_base_ = 0;
  SimTime run_slot_end_ = 0;
  size_t run_pos_ = 0;
  size_t size_ = 0;
  std::vector<Event> run_;
  std::array<std::vector<Event>, static_cast<size_t>(kLevels) * kSlotsPerLevel> slots_;
  std::array<uint64_t, kLevels> occupied_{};
  std::priority_queue<Event, std::vector<Event>, std::greater<>> overflow_;

  // Reference-mode state (kPriorityQueue only).
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;

  // Root frames of live detached tasks (frame addresses). A frame that completes removes
  // itself (its promise holds a pointer to this set); frames still here at destruction are
  // suspended mid-loop and are destroyed by ~Scheduler, which tears down the whole await
  // chain (each co_await operand lives in its awaiter's frame).
  std::unordered_set<void*> detached_;
};

}  // namespace halfmoon::sim

#endif  // HALFMOON_SIM_SCHEDULER_H_
