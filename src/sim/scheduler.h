// The discrete-event scheduler: a virtual clock plus a time-ordered event queue.
//
// Exactly one coroutine runs at any moment; everything that "blocks" (delays, I/O latencies,
// semaphores, events) suspends the coroutine and registers a wake-up in the queue. Ties in
// time are broken by insertion order, which makes whole simulations deterministic for a fixed
// RNG seed.

#ifndef HALFMOON_SIM_SCHEDULER_H_
#define HALFMOON_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/task.h"

namespace halfmoon::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime Now() const { return now_; }

  // Registers `fn` to run at Now() + delay.
  void Post(SimDuration delay, std::function<void()> fn) {
    HM_CHECK(delay >= 0);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  // Schedules a coroutine resume at Now() + delay.
  void PostResume(SimDuration delay, std::coroutine_handle<> handle) {
    Post(delay, [handle] { handle.resume(); });
  }

  // Runs events until the queue drains. Returns the final simulated time.
  SimTime Run() {
    while (!queue_.empty()) {
      Step();
    }
    return now_;
  }

  // Runs events with time <= deadline; the clock ends at min(deadline, drain time).
  // Events scheduled beyond the deadline stay queued.
  SimTime RunUntil(SimTime deadline) {
    while (!queue_.empty() && queue_.top().time <= deadline) {
      Step();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
    return now_;
  }

  bool empty() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }

  // Awaitable virtual-time sleep: `co_await scheduler.Delay(Milliseconds(2));`
  struct DelayAwaiter {
    Scheduler* scheduler;
    SimDuration delay;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      scheduler->PostResume(delay, handle);
    }
    void await_resume() const noexcept {}
  };

  DelayAwaiter Delay(SimDuration d) { return DelayAwaiter{this, d}; }

  // Starts a fire-and-forget task at the current time. The coroutine frame self-destructs on
  // completion; an exception escaping a detached task aborts the simulation (detached work
  // must handle its own failures — SSF crashes are caught by the runtime, never here).
  void Spawn(Task<void> task);

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void Step() {
    // Moving out of the top of a priority_queue requires a const_cast; the element is popped
    // immediately afterwards so the broken ordering invariant is never observed.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    HM_CHECK(event.time >= now_);
    now_ = event.time;
    event.fn();
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace halfmoon::sim

#endif  // HALFMOON_SIM_SCHEDULER_H_
