// The discrete-event scheduler: a virtual clock plus a time-ordered event queue.
//
// Exactly one coroutine runs at any moment; everything that "blocks" (delays, I/O latencies,
// semaphores, events) suspends the coroutine and registers a wake-up in the queue. Ties in
// time are broken by insertion order, which makes whole simulations deterministic for a fixed
// RNG seed.
//
// The queue is the hottest loop of the whole simulator, so events never touch the heap: an
// event is either a raw coroutine handle (PostResume, the dominant case — every Delay and
// station hop) or a small callable stored inline in the event itself (Post). Callables larger
// than the inline buffer fail to compile; shrink the capture list or move the state behind a
// pointer instead of regressing the hot loop with type-erased heap allocations.

#ifndef HALFMOON_SIM_SCHEDULER_H_
#define HALFMOON_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/task.h"

namespace halfmoon::sim {

// A move-only type-erased callable with fixed inline storage and no heap fallback.
class InlineCallback {
 public:
  static constexpr size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineSize,
                  "scheduler callback exceeds the inline event buffer; shrink its captures");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "scheduler callback is over-aligned for the inline event buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "scheduler callbacks must be nothrow-movable (the event queue relocates)");
    new (storage_) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::value;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  ~InlineCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct OpsFor {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops value{&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Destroys any detached task chains still suspended (periodic loops parked on a Delay
  // when the simulation ends would otherwise leak their coroutine frames).
  ~Scheduler();

  SimTime Now() const { return now_; }

  // Registers `fn` to run at Now() + delay. The callable is stored inline in the event.
  template <typename F>
  void Post(SimDuration delay, F&& fn) {
    HM_CHECK(delay >= 0);
    queue_.push(Event{now_ + delay, next_seq_++, {}, InlineCallback(std::forward<F>(fn))});
  }

  // Schedules a coroutine resume at Now() + delay. Stores the raw handle — no callable, no
  // type erasure, no allocation.
  void PostResume(SimDuration delay, std::coroutine_handle<> handle) {
    HM_CHECK(delay >= 0);
    queue_.push(Event{now_ + delay, next_seq_++, handle, {}});
  }

  // Runs events until the queue drains. Returns the final simulated time.
  SimTime Run() {
    while (!queue_.empty()) {
      Step();
    }
    return now_;
  }

  // Runs events with time <= deadline; the clock ends at min(deadline, drain time).
  // Events scheduled beyond the deadline stay queued.
  SimTime RunUntil(SimTime deadline) {
    while (!queue_.empty() && queue_.top().time <= deadline) {
      Step();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
    return now_;
  }

  bool empty() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }

  // Total events fired since construction (throughput accounting for the hot-path bench).
  uint64_t events_processed() const { return events_processed_; }

  // Awaitable virtual-time sleep: `co_await scheduler.Delay(Milliseconds(2));`
  struct DelayAwaiter {
    Scheduler* scheduler;
    SimDuration delay;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      scheduler->PostResume(delay, handle);
    }
    void await_resume() const noexcept {}
  };

  DelayAwaiter Delay(SimDuration d) { return DelayAwaiter{this, d}; }

  // Starts a fire-and-forget task at the current time. The coroutine frame self-destructs on
  // completion; an exception escaping a detached task aborts the simulation (detached work
  // must handle its own failures — SSF crashes are caught by the runtime, never here).
  void Spawn(Task<void> task);

 private:
  // Two-variant event: a coroutine resume (handle set) or an inline callable (fn set).
  struct Event {
    SimTime time;
    uint64_t seq;
    std::coroutine_handle<> handle;
    InlineCallback fn;

    void Fire() {
      if (handle) {
        handle.resume();
      } else {
        fn();
      }
    }

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void Step() {
    // Moving out of the top of a priority_queue requires a const_cast; the element is popped
    // immediately afterwards so the broken ordering invariant is never observed.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    HM_CHECK(event.time >= now_);
    now_ = event.time;
    ++events_processed_;
    event.Fire();
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Root frames of live detached tasks (frame addresses). A frame that completes removes
  // itself (its promise holds a pointer to this set); frames still here at destruction are
  // suspended mid-loop and are destroyed by ~Scheduler, which tears down the whole await
  // chain (each co_await operand lives in its awaiter's frame).
  std::unordered_set<void*> detached_;
};

}  // namespace halfmoon::sim

#endif  // HALFMOON_SIM_SCHEDULER_H_
