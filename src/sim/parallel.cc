#include "src/sim/parallel.h"

#include <algorithm>
#include <thread>

namespace halfmoon::sim {

ParallelEngine::ParallelEngine(int workers, SimDuration lookahead, QueueMode mode)
    : lookahead_(lookahead),
      bounds_barrier_(workers, BoundsPhase{this}),
      window_barrier_(workers, WindowPhase{this}) {
  HM_CHECK(workers >= 1);
  HM_CHECK(lookahead > 0);
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(mode));
  }
}

void ParallelEngine::ComputeWindow() {
  SimTime m = Scheduler::kMaxSimTime;
  for (const auto& worker : workers_) m = std::min(m, worker->next);
  if (m == Scheduler::kMaxSimTime) {
    done_ = true;
    return;
  }
  // The window is [m, m + lookahead); saturate instead of overflowing near the far future.
  horizon_ = m > Scheduler::kMaxSimTime - lookahead_ ? Scheduler::kMaxSimTime : m + lookahead_;
  ++windows_;
}

void ParallelEngine::RouteMessages() {
  for (auto& worker : workers_) {
    for (CrossMsg& msg : worker->outbox) {
      ++messages_routed_;
      workers_[static_cast<size_t>(msg.to)]->staged.push_back(std::move(msg));
    }
    worker->outbox.clear();
  }
}

void ParallelEngine::DeliverStaged(Worker& worker) {
  if (worker.staged.empty()) return;
  // Merge order is a pure function of message identity, so delivery — and therefore the
  // (time, seq) order in the destination queue — is identical on every run.
  std::sort(worker.staged.begin(), worker.staged.end(),
            [](const CrossMsg& a, const CrossMsg& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (CrossMsg& msg : worker.staged) {
    worker.sched.PostAt(msg.time, std::move(msg.fn));
  }
  worker.staged.clear();
}

void ParallelEngine::WorkerLoop(int w) {
  Worker& worker = *workers_[static_cast<size_t>(w)];
  while (true) {
    DeliverStaged(worker);
    worker.next = worker.sched.NextEventTime();
    bounds_barrier_.arrive_and_wait();  // Completion: ComputeWindow().
    if (done_) return;
    worker.sched.RunWindow(horizon_);
    window_barrier_.arrive_and_wait();  // Completion: RouteMessages().
  }
}

SimTime ParallelEngine::Run() {
  HM_CHECK_MSG(!ran_, "ParallelEngine::Run is single-shot");
  ran_ = true;
  if (workers_.size() == 1) {
    // Degenerate single-worker mode: today's scheduler loop, bit for bit. Self-sends already
    // went straight into the queue, so there is nothing to synchronize with.
    workers_[0]->sched.Run();
    return workers_[0]->sched.Now();
  }
  // Route any messages Sent from the main thread before Run(): they are sitting in outboxes,
  // which the first bounds computation would not see (workers publish bounds from their local
  // queues AFTER draining staged messages, and outboxes normally drain at window barriers).
  RouteMessages();
  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (int w = 0; w < static_cast<int>(workers_.size()); ++w) {
    threads.emplace_back([this, w] { WorkerLoop(w); });
  }
  for (std::thread& t : threads) t.join();
  SimTime end = 0;
  for (const auto& worker : workers_) end = std::max(end, worker->sched.Now());
  return end;
}

uint64_t ParallelEngine::TotalEventsProcessed() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->sched.events_processed();
  return total;
}

}  // namespace halfmoon::sim
