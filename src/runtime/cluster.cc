#include "src/runtime/cluster.h"

#include <algorithm>

#include "src/common/check.h"

namespace halfmoon::runtime {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      scheduler_(config.queue_mode),
      rng_(config.seed),
      models_(config.calibration),
      log_space_(static_cast<uint32_t>(config.log_shards)) {
  if (config.model_queueing) {
    // One sequencer station per log shard: sequencer rounds bound for different shards no
    // longer contend, which is the shard-scaling mechanism (DESIGN.md §9).
    sequencer_stations_.reserve(static_cast<size_t>(config.log_shards));
    for (int s = 0; s < config.log_shards; ++s) {
      sequencer_stations_.push_back(
          std::make_unique<sim::ServiceStation>(&scheduler_, config.sequencer_servers));
    }
    storage_station_ =
        std::make_unique<sim::ServiceStation>(&scheduler_, config.storage_servers);
    db_station_ = std::make_unique<sim::ServiceStation>(&scheduler_, config.db_servers);
  }
  HM_CHECK(config.function_nodes > 0);
  sharedlog::AppendBatchConfig batch;
  batch.enabled = config.group_commit_appends;
  batch.window = config.append_batch_window;
  batch.max_batch = static_cast<size_t>(config.append_batch_max);
  batch.pipeline_depth = config.append_batch_pipeline;
  std::vector<sim::ServiceStation*> sequencer_ptrs;
  sequencer_ptrs.reserve(sequencer_stations_.size());
  for (auto& station : sequencer_stations_) sequencer_ptrs.push_back(station.get());
  nodes_.reserve(config.function_nodes);
  for (int i = 0; i < config.function_nodes; ++i) {
    nodes_.push_back(std::make_unique<FunctionNode>(
        i, &scheduler_, &rng_, &models_, &log_space_, &kv_state_, sequencer_ptrs,
        storage_station_.get(), db_station_.get(), config.workers_per_node, batch,
        config.log_read_cache));
  }

  // Batch-round fault injection (batch.depart / batch.reply): the batcher probes through
  // these hooks so sharedlog never names the runtime's injector or exception types. The
  // probe costs nothing when no schedule is armed (FailureInjector::ShouldCrash draws no
  // randomness at probability 0), which keeps fault-free runs bit-identical.
  for (auto& node : nodes_) {
    node->log().InstallCrashHooks(
        [this](const char* site) { return injector_.ShouldCrash(rng_, site); },
        [](const char* site) { throw SsfCrashed{std::string(site)}; });
  }

  // Durable medium (DESIGN.md §13): one journal per storage domain. The services draw flush
  // latencies from their own derived RNG streams (distinct salts), so attaching them never
  // perturbs the main sample sequence — and HM_DURABLE=0, which skips this block entirely,
  // stays bit-identical to the pre-storage engine.
  if (config.durable) {
    log_durability_ =
        std::make_unique<storage::DurabilityService>(&scheduler_, &models_, config.seed);
    kv_durability_ =
        std::make_unique<storage::DurabilityService>(&scheduler_, &models_, ~config.seed);
    log_space_.AttachDurability(log_durability_.get());
    kv_state_.AttachDurability(kv_durability_.get());
    for (auto& node : nodes_) {
      node->log().SetDurability(log_durability_.get());
      node->kv().SetDurability(kv_durability_.get());
      node->kv().InstallCrashHook(
          [](std::string_view site) { throw SsfCrashed{std::string(site)}; });
    }
  }

  // Incremental checkpointing + journal compaction (DESIGN.md §14): one background service
  // walking both storage domains into sibling checkpoint stores. Like the durability
  // services it draws pacing samples from its OWN derived RNG stream, and when disabled it
  // is simply never constructed — bit-identical to the PR 9 durable engine.
  if (config.durable && config.checkpoint) {
    log_ckpt_ = std::make_unique<storage::CheckpointStore>();
    kv_ckpt_ = std::make_unique<storage::CheckpointStore>();
    ckpt_service_ =
        std::make_unique<storage::CheckpointService>(&scheduler_, &models_, config.seed);
    ckpt_service_->SetSliceBudget(config.checkpoint_slice);
    ckpt_service_->SetAutoTriggerBytes(config.checkpoint_trigger_bytes);
    ckpt_service_->InstallCrashProbe(
        [this](const char* site) { return injector_.ShouldCrash(rng_, site); });
    storage::CheckpointService::Target log_target;
    log_target.domain = storage::kCkptLogDomain;
    log_target.journal = log_durability_.get();
    log_target.store = log_ckpt_.get();
    log_target.begin_walk = [this] { log_space_.BeginCheckpointWalk(); };
    log_target.write_slice = [this](storage::CheckpointStore* store, int64_t budget,
                                    int64_t* frames) {
      return log_space_.WriteCheckpointSlice(store, budget, frames);
    };
    log_target.watermark_floor = [this] { return log_durability_->durable_seq(); };
    ckpt_service_->AddTarget(std::move(log_target));
    storage::CheckpointService::Target kv_target;
    kv_target.domain = storage::kCkptKvDomain;
    kv_target.journal = kv_durability_.get();
    kv_target.store = kv_ckpt_.get();
    kv_target.begin_walk = [this] { kv_state_.BeginCheckpointWalk(); };
    kv_target.write_slice = [this](storage::CheckpointStore* store, int64_t budget,
                                   int64_t* frames) {
      return kv_state_.WriteCheckpointSlice(store, budget, frames);
    };
    kv_target.watermark_floor = [] { return uint64_t{0}; };  // Seqnums are a log concept.
    ckpt_service_->AddTarget(std::move(kv_target));
  }

  // Index propagation: every committed seqnum reaches each function node's index replica
  // after a sampled delay, enabling the cheap local logReadPrev path (§4.1).
  log_space_.SetCommitListener([this](sharedlog::SeqNum seqnum) { OnCommit(seqnum); });
}

void Cluster::OnCommit(sharedlog::SeqNum seqnum) {
  ++index_propagation_commits_;
  // Checkpoint rounds are driven by journal growth off the commit path — the service never
  // free-runs a timer, so a drained scheduler stays drainable. No-op (and no RNG draw)
  // unless the growth threshold tripped.
  if (ckpt_service_ != nullptr) ckpt_service_->MaybeAutoTrigger();
  // The delay is sampled before branching on the mode, so coalesced and per-commit runs draw
  // the identical rng sequence — a prerequisite for bit-identical simulations.
  SimDuration delay = models_.index_propagation.Sample(rng_);
  if (log_durability_ != nullptr) {
    // Write-ahead index propagation: remote replicas only ever learn durable seqnums, so no
    // node can index a record a crash could un-commit. Propagation (the sampled network
    // delay) starts once the record's flush lands; a kill drops the callbacks of lost
    // seqnums, which is exactly the set no replica may learn.
    log_durability_->WhenDurable(seqnum,
                                 [this, seqnum, delay] { DeliverCommit(seqnum, delay); });
    return;
  }
  DeliverCommit(seqnum, delay);
}

void Cluster::DeliverCommit(sharedlog::SeqNum seqnum, SimDuration delay) {
  if (!config_.coalesce_index_propagation) {
    // Reference mode: one scheduler event per committed seqnum.
    ++index_propagation_ticks_;
    scheduler_.Post(delay, [this, seqnum] {
      for (auto& node : nodes_) {
        node->log().AdvanceIndex(seqnum);
      }
    });
    return;
  }
  SimTime arrival = scheduler_.Now() + delay;
  // This commit carries the largest seqnum so far (commits arrive in seqnum order). Any
  // pending arrival at or after `arrival` is now redundant: by the time it would fire, every
  // replica already sits at this larger seqnum, and AdvanceIndex is a monotonic max. Dropping
  // the dominated suffix keeps the deque strictly increasing in (arrival, seqnum) and is
  // where the coalescing happens — a burst of commits whose arrivals land out of order
  // collapses to a single surviving delivery.
  while (!pending_index_.empty() && pending_index_.back().first >= arrival) {
    pending_index_.pop_back();
  }
  pending_index_.emplace_back(arrival, seqnum);
  // Keep the invariant: a wake-up exists at exactly the earliest pending arrival. Only
  // schedule when this arrival becomes the new earliest; otherwise the existing wake-up
  // covers it (the tick re-arms for whatever remains).
  if (arrival < index_wakeup_) {
    index_wakeup_ = arrival;
    scheduler_.Post(delay, [this] { IndexPropagationTick(); });
  }
}

void Cluster::IndexPropagationTick() {
  SimTime now = scheduler_.Now();
  sharedlog::SeqNum advance = 0;
  // The deque is increasing in both fields, so the due prefix's last seqnum is its largest.
  while (!pending_index_.empty() && pending_index_.front().first <= now) {
    advance = pending_index_.front().second;
    pending_index_.pop_front();
  }
  if (advance > 0) {
    // One pass over the nodes no matter how many commits arrived in this window: AdvanceIndex
    // is a monotonic max, so advancing straight to the largest arrived seqnum is equivalent
    // to replaying the arrivals one by one.
    ++index_propagation_ticks_;
    for (auto& node : nodes_) {
      node->log().AdvanceIndex(advance);
    }
  }
  if (index_wakeup_ <= now) index_wakeup_ = kNoWakeup;  // This was the armed wake-up.
  if (pending_index_.empty()) return;
  SimTime next = pending_index_.front().first;
  if (next < index_wakeup_) {
    index_wakeup_ = next;
    scheduler_.Post(next - now, [this] { IndexPropagationTick(); });
  }
}

void Cluster::KillRestartSequencer() {
  HM_CHECK_MSG(log_durability_ != nullptr, "KillRestart* requires ClusterConfig.durable");
  // The ordering/replication tier dies: the log journal's volatile tail, its in-flight
  // flush, and every record past the durable frontier are lost. Waiters on lost records fail
  // (crashable ones abort their attempts); restart replays the durable prefix. The
  // checkpoint daemon rides the same tier: its in-flight round is abandoned and both stores'
  // unflushed tails die — the durable images and manifests survive for recovery.
  if (ckpt_service_ != nullptr) ckpt_service_->Kill();
  log_durability_->Kill();
  ReplayLogJournal();
  for (auto& node : nodes_) {
    node->log().ResetSoftState(log_durability_->durable_seq());
  }
  // Pending index arrivals were all gated through WhenDurable, so every queued seqnum is
  // durable and survives the kill — replay just rebuilt the records they refer to.
}

void Cluster::KillRestartStorage() {
  HM_CHECK_MSG(kv_durability_ != nullptr, "KillRestart* requires ClusterConfig.durable");
  // The shared storage tier dies: both journals lose their volatile tails at one instant.
  kv_durability_->Kill();
  KillRestartSequencer();
  kv_state_.ResetVolatile(scheduler_.Now());
  ReplayKvJournal();
}

void Cluster::KillRestartFunctionNode(int i) {
  HM_CHECK_MSG(log_durability_ != nullptr, "KillRestart* requires ClusterConfig.durable");
  // A function node holds no authoritative state — only its index replica and payload cache
  // die. The restarted node re-syncs through uncached reads and future propagation.
  nodes_[static_cast<size_t>(i)]->log().ResetSoftState(0);
}

void Cluster::ReplayLogJournal() {
  // Shared driver (DESIGN.md §13, §14): image + replay-suffix when a valid checkpoint
  // manifest exists, strict full replay otherwise (always, when the tier is off).
  last_log_recovery_ = sharedlog::RestoreLogFromJournal(scheduler_.Now(), &log_space_,
                                                        log_durability_.get(), log_ckpt_.get());
}

void Cluster::ReplayKvJournal() {
  SimTime now = scheduler_.Now();
  sharedlog::LogRecoveryStats stats;
  storage::InstalledManifest manifest;
  bool have_image = kv_ckpt_ != nullptr &&
                    storage::FindLatestValidManifest(*kv_ckpt_, storage::kCkptKvDomain,
                                                     &manifest, &stats.manifests_rejected);
  if (have_image) {
    stats.used_checkpoint = true;
    storage::ReplayImage(*kv_ckpt_, manifest,
                         [&](storage::FrameType type, storage::Cursor cursor) {
                           kv_state_.RestoreCheckpointFrame(now, type, cursor);
                           ++stats.image_frames;
                         });
    kv_durability_->Replay(manifest.manifest.cut,
                           [&](storage::FrameType type, storage::Cursor cursor) {
                             kv_state_.RestoreFrame(now, type, cursor, /*fuzzy=*/true);
                             ++stats.suffix_frames;
                           });
  } else {
    HM_CHECK_MSG(kv_durability_->retained_offset() == 0,
                 "kv journal was compacted but no valid checkpoint manifest exists");
    kv_durability_->Replay([&](storage::FrameType type, storage::Cursor cursor) {
      kv_state_.RestoreFrame(now, type, cursor);
      ++stats.suffix_frames;
    });
  }
  last_kv_recovery_ = stats;
}

void Cluster::RegisterInitRecord(const std::string& instance_id,
                                 sharedlog::SeqNum init_seqnum) {
  // A replayed Init (or a peer recovering the same init record) re-registers after the
  // instance finished only if the finish marker still exists; post-prune the workflow can
  // have no live attempts left, so a registration after pruning cannot occur.
  if (finished_instances_.count(instance_id) > 0) return;
  auto [it, inserted] = init_seqnums_.emplace(instance_id, init_seqnum);
  if (!inserted) return;  // First registration wins; replays see the same seqnum anyway.
  unfinished_inits_.insert(init_seqnum);
}

void Cluster::MarkInstanceFinished(const std::string& instance_id) {
  if (!finished_instances_.insert(instance_id).second) return;
  auto it = init_seqnums_.find(instance_id);
  if (it != init_seqnums_.end()) {
    unfinished_inits_.erase(it->second);
    finished_by_init_.emplace(it->second, instance_id);
  } else {
    // No init record tracked (e.g. protocols that never append one): prunable immediately —
    // keyed at seqnum 0, below every possible frontier.
    finished_by_init_.emplace(0, instance_id);
  }
}

void Cluster::PruneFinishedTracking() {
  sharedlog::SeqNum frontier = RunningFrontier();
  while (!finished_by_init_.empty() && finished_by_init_.begin()->first < frontier) {
    const std::string& instance_id = finished_by_init_.begin()->second;
    init_seqnums_.erase(instance_id);
    finished_instances_.erase(instance_id);
    finished_by_init_.erase(finished_by_init_.begin());
  }
}

int64_t Cluster::TotalLogAppends() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->log().stats().appends + node->log().stats().cond_appends;
  }
  return total;
}

int64_t Cluster::TotalLoggedBytes() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->log().stats().appended_bytes;
  }
  return total;
}

int64_t Cluster::TotalLoggedBytesByClass(int cls) const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& by_class = node->log().stats().appended_bytes_by_class;
    if (cls >= 0 && cls < static_cast<int>(by_class.size())) total += by_class[cls];
  }
  return total;
}

int64_t Cluster::TotalLogReads() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->log().stats();
    total += s.read_prev_cached + s.read_prev_uncached + s.read_next + s.stream_reads;
  }
  return total;
}

int64_t Cluster::TotalKvReads() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->kv().stats();
    total += s.reads + s.versioned_reads;
  }
  return total;
}

int64_t Cluster::TotalKvWrites() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->kv().stats();
    total += s.plain_writes + s.cond_writes + s.versioned_writes;
  }
  return total;
}

int64_t Cluster::TotalDbOps() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->kv().stats();
    total += s.reads + s.plain_writes + s.cond_writes + s.versioned_reads +
             s.versioned_writes + s.deletes;
  }
  return total;
}

}  // namespace halfmoon::runtime
