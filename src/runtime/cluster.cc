#include "src/runtime/cluster.h"

#include "src/common/check.h"

namespace halfmoon::runtime {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), rng_(config.seed), models_(config.calibration) {
  if (config.model_queueing) {
    sequencer_station_ =
        std::make_unique<sim::ServiceStation>(&scheduler_, config.sequencer_servers);
    storage_station_ =
        std::make_unique<sim::ServiceStation>(&scheduler_, config.storage_servers);
    db_station_ = std::make_unique<sim::ServiceStation>(&scheduler_, config.db_servers);
  }
  HM_CHECK(config.function_nodes > 0);
  nodes_.reserve(config.function_nodes);
  for (int i = 0; i < config.function_nodes; ++i) {
    nodes_.push_back(std::make_unique<FunctionNode>(
        i, &scheduler_, &rng_, &models_, &log_space_, &kv_state_, sequencer_station_.get(),
        storage_station_.get(), db_station_.get(), config.workers_per_node));
  }

  // Index propagation: every committed seqnum reaches each function node's index replica
  // after a sampled delay, enabling the cheap local logReadPrev path (§4.1).
  log_space_.SetCommitListener([this](sharedlog::SeqNum seqnum) {
    SimDuration delay = models_.index_propagation.Sample(rng_);
    scheduler_.Post(delay, [this, seqnum] {
      for (auto& node : nodes_) {
        node->log().AdvanceIndex(seqnum);
      }
    });
  });
}

sharedlog::SeqNum Cluster::RunningFrontier() const {
  // Scan the (prefix-trimmed) global init stream: the first init record belonging to an
  // instance that has not finished bounds the frontier.
  std::vector<sharedlog::LogRecordPtr> inits = log_space_.ReadStream(sharedlog::InitLogTag());
  for (const sharedlog::LogRecordPtr& record : inits) {
    const std::string& instance_id = record->fields.GetStr("instance");
    if (finished_instances_.count(instance_id) == 0) {
      return record->seqnum;
    }
  }
  return log_space_.next_seqnum();
}

int64_t Cluster::TotalLogAppends() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->log().stats().appends + node->log().stats().cond_appends;
  }
  return total;
}

int64_t Cluster::TotalLogReads() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->log().stats();
    total += s.read_prev_cached + s.read_prev_uncached + s.read_next + s.stream_reads;
  }
  return total;
}

int64_t Cluster::TotalKvReads() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->kv().stats();
    total += s.reads + s.versioned_reads;
  }
  return total;
}

int64_t Cluster::TotalKvWrites() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->kv().stats();
    total += s.plain_writes + s.cond_writes + s.versioned_writes;
  }
  return total;
}

int64_t Cluster::TotalDbOps() const {
  int64_t total = 0;
  for (const auto& node : nodes_) {
    const auto& s = node->kv().stats();
    total += s.reads + s.plain_writes + s.cond_writes + s.versioned_reads +
             s.versioned_writes + s.deletes;
  }
  return total;
}

}  // namespace halfmoon::runtime
