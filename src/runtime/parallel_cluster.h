// The shard-parallel cluster: one log shard per worker thread (DESIGN.md §10).
//
// Where runtime::Cluster turns the whole testbed on ONE scheduler, a ParallelCluster gives
// every log shard its own event loop: shard p's LogSpace, its sequencer ServiceStation, its
// storage station, its AppendBatchers, and the function-node clients that generate shard p's
// traffic all live on worker p — either a real OS thread driven by sim::ParallelEngine
// (parallel mode, HM_PARALLEL=1) or a slice of one shared single-threaded Scheduler
// (HM_PARALLEL=0, which routes everything through exactly today's event loop). The two modes
// run the same partitions, the same RNG streams, and the same message timestamps; with one
// partition they are bit-identical, and at any partition count they commit the same records
// in the same per-tag order (pinned by parallel_cluster_test).
//
// Cross-shard traffic goes through ParallelCluster::Append with a remote owner: a request
// message to the owner's loop (which runs the full local append path there — batcher,
// sequencer queueing, commit) and a reply message back, each leg clamped to the conservative
// lookahead floor (ClampCrossShard). That message path is the ONLY thing that ever crosses
// workers, which is what makes the conservative window protocol of sim::ParallelEngine
// sufficient: there is no shared mutable simulation state, only timestamped messages.
//
// Scope: ParallelCluster partitions the *log layer* and its load. Full SSF protocol
// execution (workflows, KV, GC, switching — everything layered on runtime::Cluster) stays on
// the single-threaded engine; DESIGN.md §10.4 records why (faultcheck schedule replay
// addresses single-scheduler event indices).

#ifndef HALFMOON_RUNTIME_PARALLEL_CLUSTER_H_
#define HALFMOON_RUNTIME_PARALLEL_CLUSTER_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/metrics/latency_recorder.h"
#include "src/sharedlog/log_client.h"
#include "src/sharedlog/log_recovery.h"
#include "src/sharedlog/sharded_log.h"
#include "src/sim/parallel.h"
#include "src/sim/scheduler.h"
#include "src/sim/service_station.h"
#include "src/storage/checkpoint.h"
#include "src/storage/durability.h"

namespace halfmoon::runtime {

// The HM_PARALLEL environment default: 1 (or any non-empty value other than 0) turns real
// worker threads on for the components that support them; 0/unset keeps every experiment on
// the single-threaded scheduler, bit-identical to the pre-parallel repo.
inline bool DefaultParallelMode() { return EnvFlag("HM_PARALLEL"); }

struct ParallelClusterConfig {
  // Worker threads == log shards. Each partition is a full log stack (shard + sequencer +
  // clients); 1 degenerates to a plain single-log, single-thread cluster.
  int partitions = 4;

  // false = HM_PARALLEL=0: all partitions share one single-threaded Scheduler (today's event
  // loop); true = one OS thread per partition under the conservative engine. Everything else
  // — component wiring, RNG streams, latency samples, message timestamps — is identical.
  bool parallel = DefaultParallelMode();

  // Function-node clients per partition (the per-shard analogue of function_nodes).
  int clients_per_partition = 2;

  // Per-shard service capacity, mirroring ClusterConfig's sequencer/storage stations.
  int sequencer_servers = 6;
  int storage_servers = 12;

  // Node-local group commit, as in ClusterConfig: window/max/pipeline default from the
  // environment (HM_BATCH_WINDOW in us, HM_BATCH_MAX, HM_PIPELINE). Each partition's
  // batchers pipeline independently, so cross-partition appends overlap both across shards
  // and across rounds within a shard (DESIGN.md S12).
  bool group_commit_appends = true;
  SimDuration append_batch_window = Microseconds(DefaultAppendBatchWindowUs());
  int append_batch_max = DefaultAppendBatchMax();
  int append_batch_pipeline = DefaultAppendPipelineDepth();

  // Durable storage tier (DESIGN.md §13): each partition gets its own journal + group
  // flusher on its own event loop, and appends only ack after their frames are flush-
  // ordered — the same write-ahead contract as ClusterConfig::durable, shard-parallel.
  // false (HM_DURABLE=0/unset) constructs no storage machinery at all and stays
  // bit-identical to the pre-storage engine.
  bool durable = DefaultDurableMode();

  // Checkpoint + compaction tier (DESIGN.md §14): each partition gets its own sibling
  // checkpoint store. Rounds are explicit (LogPartition::CheckpointNow between drains) —
  // there is no background daemon on the worker loops, so the conservative-window protocol
  // and the cross-mode determinism pins are untouched. Only effective with durable = true.
  bool checkpoint = DefaultCheckpointMode();

  sim::QueueMode queue_mode = sim::QueueMode::kTimerWheel;
  uint64_t seed = 1;
  LatencyCalibration calibration;
};

// One log shard and everything that turns with it, owned by one worker.
class LogPartition {
 public:
  LogPartition(int id, sim::Scheduler* scheduler, uint64_t seed, const LatencyModels* models,
               const ParallelClusterConfig& config);

  int id() const { return id_; }
  sim::Scheduler& scheduler() { return *scheduler_; }
  Rng& rng() { return rng_; }
  sharedlog::ShardedLog& log() { return log_; }
  const sharedlog::ShardedLog& log() const { return log_; }
  sharedlog::LogClient& client(int i) { return *clients_[static_cast<size_t>(i)]; }
  const sharedlog::LogClient& client(int i) const { return *clients_[static_cast<size_t>(i)]; }
  int client_count() const { return static_cast<int>(clients_.size()); }

  // This partition's thread-local append-latency recorder (merged by the main thread after
  // the run; see LatencyRecorder's threading contract).
  metrics::LatencyRecorder& append_latency() { return append_latency_; }
  const metrics::LatencyRecorder& append_latency() const { return append_latency_; }

  // Cross-shard append requests this partition *initiated* (thread-local by the same rule as
  // the recorders: only this partition's worker bumps it; the main thread sums after join).
  int64_t remote_appends_out() const { return remote_appends_out_; }

  // This partition's journal (nullptr when config.durable is false). Partition-local like
  // everything else here: only this partition's worker ever touches it during the run.
  storage::DurabilityService* durability() { return durability_.get(); }
  const storage::DurabilityService* durability() const { return durability_.get(); }

  // This partition's checkpoint store (nullptr unless durable && checkpoint).
  storage::CheckpointStore* checkpoint_store() { return ckpt_.get(); }
  const storage::CheckpointStore* checkpoint_store() const { return ckpt_.get(); }

  // Quiesced checkpoint round (call between Run() drains, on the main thread): walks the
  // whole live index in one pass, stamps the manifest, truncates the journal below the cut
  // and the store below the new image. Sharp rather than fuzzy — nothing is volatile at a
  // drain, so no replay suffix is ever needed for the image itself.
  void CheckpointNow();

  // Whole-partition crash-restart: volatile tails die, the log re-arises from the newest
  // valid checkpoint image plus the journal suffix (full replay when no image exists).
  sharedlog::LogRecoveryStats RestartFromJournal();

 private:
  friend class ParallelCluster;
  // Partition-local index propagation: every commit reaches this partition's client replicas
  // after a sampled delay (the per-commit reference path of Cluster::OnCommit).
  void OnCommit(sharedlog::SeqNum seqnum);

  int id_;
  sim::Scheduler* scheduler_;
  Rng rng_;
  const LatencyModels* models_;
  sharedlog::ShardedLog log_{1};
  sim::ServiceStation sequencer_;
  sim::ServiceStation storage_;
  std::unique_ptr<storage::DurabilityService> durability_;  // Durable tier only.
  std::unique_ptr<storage::CheckpointStore> ckpt_;          // Checkpoint tier only.
  std::vector<std::unique_ptr<sharedlog::LogClient>> clients_;
  metrics::LatencyRecorder append_latency_;
  int64_t remote_appends_out_ = 0;
};

class ParallelCluster {
 public:
  explicit ParallelCluster(const ParallelClusterConfig& config);
  ParallelCluster(const ParallelCluster&) = delete;
  ParallelCluster& operator=(const ParallelCluster&) = delete;

  const ParallelClusterConfig& config() const { return config_; }
  int partitions() const { return static_cast<int>(parts_.size()); }
  LogPartition& partition(int p) { return *parts_[static_cast<size_t>(p)]; }
  const LogPartition& partition(int p) const { return *parts_[static_cast<size_t>(p)]; }

  // Interns `name` in partition `owner`'s registry (call before Run; tag ids are
  // per-partition because each partition is its own log).
  sharedlog::TagId InternTag(int owner, const std::string& name) {
    return partition(owner).log().tags().Intern(name);
  }

  // Starts a fire-and-forget load task on partition p's event loop. Call before Run.
  void Spawn(int p, sim::Task<void> task) { partition(p).scheduler().Spawn(std::move(task)); }

  // Appends from partition `from`'s client `client`. When `owner == from` this is the plain
  // local append path; otherwise the request crosses to `owner`'s loop (conservative message,
  // >= CrossShardLookahead each way), commits there through the full local path, and the
  // seqnum rides a reply message back. `tags` are ids in the OWNER's registry. Records the
  // end-to-end latency in `from`'s thread-local recorder.
  sim::Task<sharedlog::SeqNum> Append(int from, int client, int owner,
                                      std::vector<sharedlog::TagId> tags, FieldMap fields);

  // Runs to global drain; returns the largest virtual end time across partitions.
  SimTime Run();

  // ---- Post-run aggregation (main thread, after the join) ----
  uint64_t TotalEventsProcessed() const;
  int64_t TotalLogAppends() const;
  sharedlog::LogClientStats AggregateClientStats() const;  // LogClientStats::Add fold.
  metrics::LatencyRecorder MergedAppendLatency() const;    // LatencyRecorder::Merge fold.
  // FNV-1a content checksum of every partition's per-tag streams, folded order-independently
  // across tags: the cross-mode / cross-run equivalence pin.
  uint64_t ContentChecksum() const;

  uint64_t windows() const { return engine_ ? engine_->windows() : 0; }
  uint64_t messages_routed() const { return engine_ ? engine_->messages_routed() : 0; }
  int64_t remote_appends() const;

 private:
  friend class LogPartition;

  // The cross-worker transport: identical timestamps in both modes. In single-thread mode
  // every partition shares scheduler 0, so a "message" is a plain Post on it.
  template <typename F>
  void Send(int from, int to, SimDuration delay, F&& fn) {
    if (engine_) {
      engine_->Send(from, to, delay, std::forward<F>(fn));
    } else {
      HM_CHECK(delay >= CrossShardLookahead());
      shared_scheduler_->Post(delay, std::forward<F>(fn));
    }
  }

  // In-flight cross-shard append state; lives in the awaiting coroutine's frame on the
  // sender's thread. The owner thread moves the payload out and writes the result; the
  // barrier protocol orders those accesses against the sender's.
  struct RemoteAppend {
    ParallelCluster* cluster;
    int from;
    int owner;
    int client;
    std::vector<sharedlog::TagId> tags;
    FieldMap fields;
    sharedlog::SeqNum result = sharedlog::kInvalidSeqNum;
    std::coroutine_handle<> waiter = nullptr;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle);
    sharedlog::SeqNum await_resume() const noexcept { return result; }
  };

  sim::Task<void> ServeRemote(RemoteAppend* call);

  // One clamped cross-shard hop, sampled from the uncached-read (network round trip) model
  // of the given partition's RNG stream.
  SimDuration CrossHop(LogPartition& part) {
    return ClampCrossShard(models_.log_read_uncached.Sample(part.rng()));
  }

  ParallelClusterConfig config_;
  LatencyModels models_;
  std::unique_ptr<sim::ParallelEngine> engine_;       // Parallel mode only.
  std::unique_ptr<sim::Scheduler> shared_scheduler_;  // Single-thread mode only.
  std::vector<std::unique_ptr<LogPartition>> parts_;
};

}  // namespace halfmoon::runtime

#endif  // HALFMOON_RUNTIME_PARALLEL_CLUSTER_H_
