// The simulated cluster: the paper's testbed in one object.
//
// Mirrors the §6 setup — a gateway plus eight function nodes, a logging layer (sequencer +
// storage nodes) and DynamoDB as external storage. Each function node has a bounded worker
// pool (invocations queue when all workers are busy — this produces Fig. 11's saturation), a
// shared-log client with a trailing index replica, and a KV client.

#ifndef HALFMOON_RUNTIME_CLUSTER_H_
#define HALFMOON_RUNTIME_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/env.h"
#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/kvstore/kv_client.h"
#include "src/kvstore/kv_state.h"
#include "src/runtime/failure_injector.h"
#include "src/sharedlog/log_client.h"
#include "src/sharedlog/log_recovery.h"
#include "src/sharedlog/log_space.h"
#include "src/sharedlog/sharded_log.h"
#include "src/sim/scheduler.h"
#include "src/sim/service_station.h"
#include "src/storage/checkpoint.h"
#include "src/storage/durability.h"

namespace halfmoon::runtime {

// Default shard count for the shared log: the HM_SHARDS environment variable (so CI can run
// the whole tier-1 suite sharded), 1 otherwise.
//
// Note on HM_PARALLEL (DESIGN.md §10): the full-protocol Cluster always runs on ONE
// single-threaded scheduler regardless of that variable — protocol execution shares state
// synchronously across components (tag interning, completion bookkeeping, cross-shard
// reads), which is what keeps faultcheck schedules replayable. HM_PARALLEL selects worker
// threads only in runtime::ParallelCluster, the shard-parallel log layer (see
// parallel_cluster.h); with it unset or 0 every code path in the repo is bit-identical to
// the pre-parallel implementation.
inline int DefaultLogShards() { return EnvInt("HM_SHARDS", 1, 1); }

struct ClusterConfig {
  // §6: eight function nodes; worker slots bound per-node concurrency.
  int function_nodes = 8;
  int workers_per_node = 16;

  // Logging layer: one sequencer node, three storage nodes (§6 setup). Server counts model
  // each service's internal parallelism.
  int sequencer_servers = 6;
  int storage_servers = 12;

  // Tag-partitioned log shards (DESIGN.md §9). Each shard gets its own sequencer station and
  // per-node batcher queue, so appends to tags on different shards commit in parallel
  // simulated time. 1 (the default) is bit-identical to the unsharded log; committed content
  // is shard-count-invariant (asserted by the shard-equivalence tests).
  int log_shards = DefaultLogShards();

  // Node-local consistent payload cache in every LogClient (DESIGN.md §9): logReadPrev hits
  // validated against the index replica skip the storage hop and the index walk. Off by
  // default to keep the calibrated latency model (and bit-identity with earlier baselines).
  bool log_read_cache = false;

  // External storage (DynamoDB scales well; generous parallelism).
  int db_servers = 48;

  // Disable to run microbenchmarks without queueing effects.
  bool model_queueing = true;

  // Coalesce index propagation: commit arrivals within a propagation window are drained by a
  // single wake-up event that advances every node's index replica to the largest arrived
  // seqnum, instead of one scheduler event per committed record. Each node still observes
  // every propagated seqnum at exactly its sampled arrival time, so simulation results are
  // bit-identical to the per-commit reference mode (kept for the determinism tests).
  bool coalesce_index_propagation = true;

  // Node-local group commit for the append path (see sharedlog/append_batcher.h): appends
  // issued while a node's sequencer round is in flight share the next round. Committed
  // records and protocol outcomes are identical to the per-request reference mode (asserted
  // by the equivalence tests); only timing differs. window/max/pipeline knobs mirror
  // AppendBatchConfig and default from the environment (HM_BATCH_WINDOW in µs, HM_BATCH_MAX,
  // HM_PIPELINE) so CI and benches can sweep them. append_batch_pipeline > 1 keeps that many
  // sequencer rounds in flight per node-shard, committed strictly in departure order
  // (DESIGN.md §12); 1 is bit-identical to the serial engine.
  bool group_commit_appends = true;
  SimDuration append_batch_window = Microseconds(DefaultAppendBatchWindowUs());
  int append_batch_max = DefaultAppendBatchMax();
  int append_batch_pipeline = DefaultAppendPipelineDepth();

  // Event-queue implementation for the scheduler: the timer wheel (default) or the
  // binary-heap reference mode, which fires the exact same event order (equivalence-tested)
  // at O(log n) per event.
  sim::QueueMode queue_mode = sim::QueueMode::kTimerWheel;

  // Durable medium + crash-restart recovery (DESIGN.md §13), from HM_DURABLE by default.
  // When set, the shared log and the KV store journal every mutation to simulated devices
  // with a write-ahead ordering contract (acks and index propagation gate on the flush), and
  // the cluster supports whole-node KillRestart* with log-replay recovery. When clear, no
  // durability service is ever constructed and the simulation — including its RNG draws — is
  // bit-identical to the pre-storage engine.
  bool durable = DefaultDurableMode();

  // Incremental checkpointing + journal compaction (DESIGN.md §14), from HM_CHECKPOINT by
  // default. Effective only with `durable` (there is no journal to compact otherwise); the
  // combination durable=0 + checkpoint=1 silently runs without the checkpoint tier. When
  // clear, no checkpoint service or store is ever constructed — bit-identical to the PR 9
  // durable engine.
  bool checkpoint = DefaultCheckpointMode();
  // Walk items per checkpoint slice before the daemon yields to foreground traffic.
  int64_t checkpoint_slice = DefaultCheckpointSliceBudget();
  // Journal growth in bytes that auto-triggers a round (0 = explicit TriggerRound only).
  int64_t checkpoint_trigger_bytes = DefaultCheckpointTriggerBytes();

  uint64_t seed = 1;
  LatencyCalibration calibration;
};

// One function node: a worker pool plus its clients to the logging layer and the KV store.
class FunctionNode {
 public:
  FunctionNode(int id, sim::Scheduler* scheduler, Rng* rng, const LatencyModels* models,
               sharedlog::ShardedLog* log_space, kvstore::KvState* kv_state,
               std::vector<sim::ServiceStation*> sequencers, sim::ServiceStation* storage,
               sim::ServiceStation* db, int workers, sharedlog::AppendBatchConfig batch,
               bool read_cache)
      : id_(id),
        workers_(scheduler, workers),
        log_(scheduler, rng, models, log_space, std::move(sequencers), storage, batch,
             read_cache),
        kv_(scheduler, rng, models, kv_state, db) {}

  int id() const { return id_; }
  sim::Semaphore& workers() { return workers_; }
  sharedlog::LogClient& log() { return log_; }
  kvstore::KvClient& kv() { return kv_; }

 private:
  int id_;
  sim::Semaphore workers_;
  sharedlog::LogClient log_;
  kvstore::KvClient kv_;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  Rng& rng() { return rng_; }
  const LatencyModels& models() const { return models_; }
  const ClusterConfig& config() const { return config_; }

  sharedlog::ShardedLog& log_space() { return log_space_; }
  kvstore::KvState& kv_state() { return kv_state_; }
  FailureInjector& failure_injector() { return injector_; }

  // ---- Durable medium + crash-restart recovery (DESIGN.md §13) ----

  // Null unless config.durable. The log and KV layers journal to separate services (separate
  // devices with separate flush streams): a sequencer loss must not take the KV journal's
  // volatile tail with it.
  storage::DurabilityService* log_durability() { return log_durability_.get(); }
  storage::DurabilityService* kv_durability() { return kv_durability_.get(); }

  // ---- Incremental checkpointing + compaction (DESIGN.md §14) ----

  // Null unless config.durable && config.checkpoint.
  storage::CheckpointService* checkpoint_service() { return ckpt_service_.get(); }
  storage::CheckpointStore* log_checkpoint_store() { return log_ckpt_.get(); }
  storage::CheckpointStore* kv_checkpoint_store() { return kv_ckpt_.get(); }

  // What the last KillRestart* actually did per domain: image + replay-suffix (and how many
  // torn/corrupt manifests it skipped), or full replay. Tests and the check.sh smoke assert
  // the suffix path is really taken.
  const sharedlog::LogRecoveryStats& last_log_recovery() const { return last_log_recovery_; }
  const sharedlog::LogRecoveryStats& last_kv_recovery() const { return last_kv_recovery_; }

  // Whole-node loss + immediate restart, atomic at the current instant. Each wipes the
  // domain's volatile state, fails in-flight durability waiters (crashable waiters abort
  // their attempts into the retry loop), replays the durable journal prefix to rebuild the
  // tag indices / version index, and rolls the nodes' soft state back to the durable
  // frontier. Require config.durable.
  void KillRestartStorage();    // Log + KV journals: the shared storage tier dies.
  void KillRestartSequencer();  // Log journal only: ordering/replication tier dies.
  void KillRestartFunctionNode(int i);  // Node i's soft state (index replica, caches).

  // Largest frontier GC may trim to: records at or above it may not be durable yet, and
  // trimming them could release a record whose KV side effects survive a crash while the
  // record itself does not. kMaxSeqNum when durability is off.
  sharedlog::SeqNum DurableTrimBound() const {
    return log_durability_ == nullptr ? sharedlog::kMaxSeqNum
                                      : log_durability_->durable_seq() + 1;
  }

  // GC clamp while a checkpoint round is walking the indices (DESIGN.md §14): the walk must
  // not race trims past the watermark it started from. kMaxSeqNum when no round is in
  // flight (or no checkpoint tier exists).
  sharedlog::SeqNum CheckpointBound() const {
    if (ckpt_service_ == nullptr) return sharedlog::kMaxSeqNum;
    uint64_t bound = ckpt_service_->CheckpointBound();
    return bound > sharedlog::kMaxSeqNum ? sharedlog::kMaxSeqNum : bound;
  }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  FunctionNode& node(int i) { return *nodes_[i]; }

  // Round-robin node selection, the gateway's dispatch policy.
  FunctionNode& PickNode() {
    FunctionNode& n = *nodes_[next_node_];
    next_node_ = (next_node_ + 1) % nodes_.size();
    return n;
  }

  // ---- Completion bookkeeping (feeds GC condition (b) of §4.5 and the §4.7 switch wait) ----

  // Records that `instance_id`'s Init record landed at `init_seqnum` on the global init
  // stream. Called by InitSsf at init-append time (idempotent across replays: the first
  // registration wins, and peers recovering the same init record register the same seqnum).
  // This feeds the incremental frontier: the set of *unfinished* init seqnums is maintained
  // here and shrunk in MarkInstanceFinished, so RunningFrontier() is O(1).
  void RegisterInitRecord(const std::string& instance_id, sharedlog::SeqNum init_seqnum);

  // Marks an invocation (instance ID) as fully finished: result delivered and no live peers.
  // Feeds the running-SSF frontier used by GC and switching.
  void MarkInstanceFinished(const std::string& instance_id);

  bool IsInstanceFinished(const std::string& instance_id) const {
    return finished_instances_.count(instance_id) > 0;
  }

  // Drops tracking state (finished marker + init seqnum) of every finished instance whose
  // init record lies strictly below the frontier: nothing can query it anymore — the GC trims
  // its init record in the same pass, and no new attempt of a finished workflow is ever
  // started. Called by the GC scan; keeps completion bookkeeping bounded by the set of
  // instances that started or finished since the previous scan instead of growing forever.
  void PruneFinishedTracking();

  // Instances currently tracked by the completion bookkeeping (unfinished + finished but not
  // yet pruned). Tests assert this stays bounded under churn.
  size_t live_tracking_entries() const {
    return init_seqnums_.size() + finished_instances_.size();
  }

  // Queues an instance's step log for trimming. Called only once the instance's *workflow
  // root* has finished, because a crashed parent may still replay through its callees' logs.
  void EnqueueStepLogTrim(const std::string& instance_id) {
    trim_queue_.push_back(instance_id);
  }

  // Drains the step-log trim queue (one GC scan's worth of work).
  std::vector<std::string> DrainStepLogTrimQueue() {
    std::vector<std::string> out;
    out.swap(trim_queue_);
    return out;
  }

  // The GC/switch frontier: the largest seqnum t such that every SSF whose init record has
  // seqnum < t has finished (§4.7). O(1): the smallest unfinished init seqnum is maintained
  // incrementally at init-append and instance-finish time instead of scanning the init stream.
  sharedlog::SeqNum RunningFrontier() const {
    return unfinished_inits_.empty() ? log_space_.next_seqnum() : *unfinished_inits_.begin();
  }

  // Number of index-propagation wake-up events that performed an advance, and the number of
  // commit notifications they covered. Their ratio measures how much event-queue pressure
  // propagation coalescing removes (the reference mode schedules one event per commit).
  int64_t index_propagation_ticks() const { return index_propagation_ticks_; }
  int64_t index_propagation_commits() const { return index_propagation_commits_; }

  // Aggregate logging statistics across all function nodes.
  int64_t TotalLogAppends() const;
  int64_t TotalLogReads() const;
  int64_t TotalDbOps() const;

  // Simulated bytes of committed log records across all nodes — the §4.6 storage currency.
  // The per-class variant slices by append class (see LogClientStats::appended_bytes_by_class;
  // protocol classes come from core::LogAppendClass).
  int64_t TotalLoggedBytes() const;
  int64_t TotalLoggedBytesByClass(int cls) const;

  // Aggregate external-state traffic, split by direction (feeds the auto-switch advisor's
  // read/write-intensity estimate).
  int64_t TotalKvReads() const;
  int64_t TotalKvWrites() const;

 private:
  ClusterConfig config_;
  sim::Scheduler scheduler_;
  Rng rng_;
  LatencyModels models_;

  sharedlog::ShardedLog log_space_;
  kvstore::KvState kv_state_;

  // One sequencer station per log shard (empty when queueing is off).
  std::vector<std::unique_ptr<sim::ServiceStation>> sequencer_stations_;
  std::unique_ptr<sim::ServiceStation> storage_station_;
  std::unique_ptr<sim::ServiceStation> db_station_;

  std::unique_ptr<storage::DurabilityService> log_durability_;  // Null unless durable.
  std::unique_ptr<storage::DurabilityService> kv_durability_;   // Null unless durable.

  // Null unless durable && checkpoint (DESIGN.md §14).
  std::unique_ptr<storage::CheckpointStore> log_ckpt_;
  std::unique_ptr<storage::CheckpointStore> kv_ckpt_;
  std::unique_ptr<storage::CheckpointService> ckpt_service_;
  sharedlog::LogRecoveryStats last_log_recovery_;
  sharedlog::LogRecoveryStats last_kv_recovery_;

  std::vector<std::unique_ptr<FunctionNode>> nodes_;
  size_t next_node_ = 0;

  void OnCommit(sharedlog::SeqNum seqnum);
  // Schedules the index-propagation delivery of `seqnum` with the already-sampled `delay`
  // (factored out of OnCommit so the durable mode can defer it to the flush callback).
  void DeliverCommit(sharedlog::SeqNum seqnum, SimDuration delay);
  void IndexPropagationTick();

  // Journal replay halves of the KillRestart* entry points.
  void ReplayLogJournal();
  void ReplayKvJournal();

  static constexpr SimTime kNoWakeup = std::numeric_limits<SimTime>::max();

  FailureInjector injector_;

  // Completion bookkeeping. All four containers are pruned together in
  // PruneFinishedTracking once the frontier passes an instance's init record.
  std::unordered_set<std::string> finished_instances_;
  std::unordered_map<std::string, sharedlog::SeqNum> init_seqnums_;
  std::set<sharedlog::SeqNum> unfinished_inits_;  // Ordered: begin() is the frontier bound.
  // Finished instances awaiting prune, keyed by init seqnum (0 = no init record tracked).
  std::multimap<sharedlog::SeqNum, std::string> finished_by_init_;

  std::vector<std::string> trim_queue_;

  // Pending index-propagation arrivals (arrival time, committed seqnum), strictly increasing
  // in both fields. Commits enter in seqnum order; an older commit whose sampled arrival is
  // not earlier than a newer commit's arrival is dropped on entry — the newer, larger seqnum
  // reaches every replica first and AdvanceIndex is a monotonic max, so delivering the older
  // one later would be a no-op. What survives is the Pareto frontier of (arrival, seqnum),
  // which is why one wake-up can cover a whole burst of commits. Invariant: whenever the
  // deque is non-empty, a wake-up is scheduled at exactly the front arrival time, so every
  // surviving arrival is processed at its sampled time — never early, never late.
  std::deque<std::pair<SimTime, sharedlog::SeqNum>> pending_index_;
  SimTime index_wakeup_ = kNoWakeup;
  int64_t index_propagation_ticks_ = 0;
  int64_t index_propagation_commits_ = 0;
};

}  // namespace halfmoon::runtime

#endif  // HALFMOON_RUNTIME_CLUSTER_H_
