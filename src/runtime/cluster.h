// The simulated cluster: the paper's testbed in one object.
//
// Mirrors the §6 setup — a gateway plus eight function nodes, a logging layer (sequencer +
// storage nodes) and DynamoDB as external storage. Each function node has a bounded worker
// pool (invocations queue when all workers are busy — this produces Fig. 11's saturation), a
// shared-log client with a trailing index replica, and a KV client.

#ifndef HALFMOON_RUNTIME_CLUSTER_H_
#define HALFMOON_RUNTIME_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/kvstore/kv_client.h"
#include "src/kvstore/kv_state.h"
#include "src/runtime/failure_injector.h"
#include "src/sharedlog/log_client.h"
#include "src/sharedlog/log_space.h"
#include "src/sim/scheduler.h"
#include "src/sim/service_station.h"

namespace halfmoon::runtime {

struct ClusterConfig {
  // §6: eight function nodes; worker slots bound per-node concurrency.
  int function_nodes = 8;
  int workers_per_node = 16;

  // Logging layer: one sequencer node, three storage nodes (§6 setup). Server counts model
  // each service's internal parallelism.
  int sequencer_servers = 6;
  int storage_servers = 12;

  // External storage (DynamoDB scales well; generous parallelism).
  int db_servers = 48;

  // Disable to run microbenchmarks without queueing effects.
  bool model_queueing = true;

  uint64_t seed = 1;
  LatencyCalibration calibration;
};

// One function node: a worker pool plus its clients to the logging layer and the KV store.
class FunctionNode {
 public:
  FunctionNode(int id, sim::Scheduler* scheduler, Rng* rng, const LatencyModels* models,
               sharedlog::LogSpace* log_space, kvstore::KvState* kv_state,
               sim::ServiceStation* sequencer, sim::ServiceStation* storage,
               sim::ServiceStation* db, int workers)
      : id_(id),
        workers_(scheduler, workers),
        log_(scheduler, rng, models, log_space, sequencer, storage),
        kv_(scheduler, rng, models, kv_state, db) {}

  int id() const { return id_; }
  sim::Semaphore& workers() { return workers_; }
  sharedlog::LogClient& log() { return log_; }
  kvstore::KvClient& kv() { return kv_; }

 private:
  int id_;
  sim::Semaphore workers_;
  sharedlog::LogClient log_;
  kvstore::KvClient kv_;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Scheduler& scheduler() { return scheduler_; }
  Rng& rng() { return rng_; }
  const LatencyModels& models() const { return models_; }
  const ClusterConfig& config() const { return config_; }

  sharedlog::LogSpace& log_space() { return log_space_; }
  kvstore::KvState& kv_state() { return kv_state_; }
  FailureInjector& failure_injector() { return injector_; }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  FunctionNode& node(int i) { return *nodes_[i]; }

  // Round-robin node selection, the gateway's dispatch policy.
  FunctionNode& PickNode() {
    FunctionNode& n = *nodes_[next_node_];
    next_node_ = (next_node_ + 1) % nodes_.size();
    return n;
  }

  // ---- Completion bookkeeping (feeds GC condition (b) of §4.5 and the §4.7 switch wait) ----

  // Marks an invocation (instance ID) as fully finished: result delivered and no live peers.
  // Feeds the running-SSF frontier used by GC and switching.
  void MarkInstanceFinished(const std::string& instance_id) {
    finished_instances_.insert(instance_id);
  }

  bool IsInstanceFinished(const std::string& instance_id) const {
    return finished_instances_.count(instance_id) > 0;
  }

  // Queues an instance's step log for trimming. Called only once the instance's *workflow
  // root* has finished, because a crashed parent may still replay through its callees' logs.
  void EnqueueStepLogTrim(const std::string& instance_id) {
    trim_queue_.push_back(instance_id);
  }

  // Drains the step-log trim queue (one GC scan's worth of work).
  std::vector<std::string> DrainStepLogTrimQueue() {
    std::vector<std::string> out;
    out.swap(trim_queue_);
    return out;
  }

  // The GC/switch frontier: the largest seqnum t such that every SSF whose init record has
  // seqnum < t has finished. Derived by scanning the global init stream, as in §4.7.
  sharedlog::SeqNum RunningFrontier() const;

  // Aggregate logging statistics across all function nodes.
  int64_t TotalLogAppends() const;
  int64_t TotalLogReads() const;
  int64_t TotalDbOps() const;

  // Aggregate external-state traffic, split by direction (feeds the auto-switch advisor's
  // read/write-intensity estimate).
  int64_t TotalKvReads() const;
  int64_t TotalKvWrites() const;

 private:
  ClusterConfig config_;
  sim::Scheduler scheduler_;
  Rng rng_;
  LatencyModels models_;

  sharedlog::LogSpace log_space_;
  kvstore::KvState kv_state_;

  std::unique_ptr<sim::ServiceStation> sequencer_station_;
  std::unique_ptr<sim::ServiceStation> storage_station_;
  std::unique_ptr<sim::ServiceStation> db_station_;

  std::vector<std::unique_ptr<FunctionNode>> nodes_;
  size_t next_node_ = 0;

  FailureInjector injector_;
  std::set<std::string> finished_instances_;
  std::vector<std::string> trim_queue_;
};

}  // namespace halfmoon::runtime

#endif  // HALFMOON_RUNTIME_CLUSTER_H_
