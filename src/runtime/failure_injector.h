// Crash and duplicate-instance injection.
//
// Protocol implementations call Env::MaybeCrash("site") at every point where a real function
// could die (before/after each DB operation, between a DB write and its commit log, ...).
// Every call site passes a stable *site name* (see faultcheck/sites.h for the registry), and
// the injector keeps both a global hit counter and per-site hit counts. That gives three ways
// to express faults:
//   * probabilistic mode — each site crashes independently with probability p (recovery-cost
//     experiments, §7),
//   * global-index mode — crash exactly at the k-th site hit of the run (legacy sweep mode of
//     the single-fault property tests),
//   * named-site mode — crash at the occ-th hit of a named site. `(site, occurrence)` pairs
//     are stable across code motion (adding a site elsewhere does not renumber them), which is
//     what the faultcheck explorer records, replays, shrinks, and prints.
// The injector can also arm a *scheduled* duplicate (peer) instance — the gateway launches a
// peer at the first opportunity after a chosen site hit — and run arbitrary actions (a GC
// scan, the start of a protocol switch) at a chosen site hit, which is how multi-fault
// schedules interleave crashes with the background machinery.

#ifndef HALFMOON_RUNTIME_FAILURE_INJECTOR_H_
#define HALFMOON_RUNTIME_FAILURE_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace halfmoon::runtime {

// Thrown from a crash site; unwinds through the SSF coroutine into the runtime's retry loop.
struct SsfCrashed {
  std::string site;
};

class FailureInjector {
 public:
  FailureInjector() = default;

  // ---- Probabilistic mode ----

  // Each crash site fires independently with probability p.
  void SetCrashProbability(double p) { crash_probability_ = p; }

  // Probability that the gateway duplicates an invocation with a peer instance.
  void SetDuplicateProbability(double p) { duplicate_probability_ = p; }

  // ---- Scheduled modes ----

  // Crash exactly when the global site-hit counter reaches each index in `indices` (0-based).
  void CrashAtSiteHits(std::set<int64_t> indices) { scheduled_hits_ = std::move(indices); }

  // Crash at the `occurrence`-th hit (0-based) of the named site. Stable across code motion:
  // renaming or adding *other* sites never renumbers a (site, occurrence) pair. Enables
  // site tracking.
  void CrashAtSite(std::string_view site, int64_t occurrence) {
    scheduled_sites_[std::string(site)].insert(occurrence);
  }

  // Drops every scheduled crash (both global-index and named-site form).
  void ClearCrashSchedule() {
    scheduled_hits_.clear();
    scheduled_sites_.clear();
  }

  // Arms one scheduled duplicate instance: the first ShouldDuplicate() call after the global
  // hit counter exceeds `hit` returns true (exactly once). Pass -1 to fire on the very next
  // opportunity. The runtime consults ShouldDuplicate at attempt starts, so the peer races
  // whichever attempt (original or post-crash retry) is next.
  void SpawnPeerAfterHit(int64_t hit) { peer_after_hit_ = hit; }

  // Runs `action` exactly once when the global hit counter reaches `hit`, before the crash
  // decision at that hit. Actions run synchronously inside the faulting coroutine; anything
  // asynchronous (e.g. starting a switch) should Spawn onto the scheduler.
  void RunAtHit(int64_t hit, std::function<void()> action) {
    hit_actions_[hit].push_back(std::move(action));
  }

  // ---- Trace recording (site enumeration for the faultcheck explorer) ----

  struct TraceEntry {
    std::string site;
    int64_t occurrence = 0;  // Per-site hit index; the global index is the trace position.

    bool operator==(const TraceEntry&) const = default;
  };

  // Records every subsequent site hit as a (site, occurrence) pair. Enables site tracking.
  void EnableTrace(bool on) { trace_enabled_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

  // Called at every crash site. Returns true if the SSF should crash here. Always increments
  // the global hit counter, so scheduled indices refer to a deterministic enumeration.
  bool ShouldCrash(Rng& rng, std::string_view site) {
    const int64_t hit = site_hits_++;
    if (!hit_actions_.empty()) {
      auto it = hit_actions_.find(hit);
      if (it != hit_actions_.end()) {
        std::vector<std::function<void()>> actions = std::move(it->second);
        hit_actions_.erase(it);
        for (auto& action : actions) action();
      }
    }
    bool crash = scheduled_hits_.count(hit) > 0;
    if (trace_enabled_ || !scheduled_sites_.empty()) {
      // Site tracking on: maintain per-site counts (the occurrence numbering) off the hot
      // path of fault-free runs. Transparent lookup first so steady-state tracked runs do
      // not allocate a key string per hit.
      auto it = site_counts_.find(site);
      if (it == site_counts_.end()) {
        it = site_counts_.emplace(std::string(site), 0).first;
      }
      const int64_t occurrence = it->second++;
      if (trace_enabled_) trace_.push_back(TraceEntry{it->first, occurrence});
      auto sit = scheduled_sites_.find(site);
      if (sit != scheduled_sites_.end() && sit->second.count(occurrence) > 0) crash = true;
    }
    if (!crash && crash_probability_ > 0.0 && rng.Bernoulli(crash_probability_)) crash = true;
    return crash;
  }

  bool ShouldDuplicate(Rng& rng) {
    if (peer_after_hit_ != kPeerDisarmed && site_hits_ > peer_after_hit_) {
      peer_after_hit_ = kPeerDisarmed;
      return true;
    }
    return duplicate_probability_ > 0.0 && rng.Bernoulli(duplicate_probability_);
  }

  // Total crash sites encountered so far; a dry run of a workload measures its site count,
  // which exhaustive tests then sweep.
  int64_t site_hits() const { return site_hits_; }

  // Hits of one named site so far. Only maintained while site tracking is on (a trace is
  // enabled or a named-site crash is scheduled); returns 0 otherwise.
  int64_t SiteHitCount(std::string_view site) const {
    auto it = site_counts_.find(site);
    return it == site_counts_.end() ? 0 : it->second;
  }

  // Resets the global counter, the per-site counts, and the recorded trace.
  void ResetHitCounter() {
    site_hits_ = 0;
    site_counts_.clear();
    trace_.clear();
  }

 private:
  static constexpr int64_t kPeerDisarmed = std::numeric_limits<int64_t>::min();

  double crash_probability_ = 0.0;
  double duplicate_probability_ = 0.0;
  std::set<int64_t> scheduled_hits_;
  // site -> scheduled occurrences. Transparent comparators: ShouldCrash looks up by
  // string_view without materializing a key.
  std::map<std::string, std::set<int64_t>, std::less<>> scheduled_sites_;
  std::map<std::string, int64_t, std::less<>> site_counts_;
  std::map<int64_t, std::vector<std::function<void()>>> hit_actions_;
  int64_t peer_after_hit_ = kPeerDisarmed;
  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;
  int64_t site_hits_ = 0;
};

}  // namespace halfmoon::runtime

#endif  // HALFMOON_RUNTIME_FAILURE_INJECTOR_H_
