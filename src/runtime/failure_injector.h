// Crash and duplicate-instance injection.
//
// Protocol implementations call Env::MaybeCrash("site") at every point where a real function
// could die (before/after each DB operation, between a DB write and its commit log, ...).
// The injector decides whether that site fires:
//   * probabilistic mode — each site crashes independently with probability p (recovery-cost
//     experiments, §7),
//   * scheduled mode — crash exactly at the k-th site hit of the run, which lets property
//     tests enumerate *every* crash point of a workload and check exactly-once semantics for
//     each resulting execution.
// The injector also decides when the gateway should launch a duplicate (peer) instance of an
// in-flight invocation, exercising the §5.1 race.

#ifndef HALFMOON_RUNTIME_FAILURE_INJECTOR_H_
#define HALFMOON_RUNTIME_FAILURE_INJECTOR_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/common/rng.h"

namespace halfmoon::runtime {

// Thrown from a crash site; unwinds through the SSF coroutine into the runtime's retry loop.
struct SsfCrashed {
  std::string site;
};

class FailureInjector {
 public:
  FailureInjector() = default;

  // Each crash site fires independently with probability p.
  void SetCrashProbability(double p) { crash_probability_ = p; }

  // Crash exactly when the global site-hit counter reaches each index in `indices` (0-based).
  void CrashAtSiteHits(std::set<int64_t> indices) { scheduled_hits_ = std::move(indices); }

  // Probability that the gateway duplicates an invocation with a peer instance.
  void SetDuplicateProbability(double p) { duplicate_probability_ = p; }

  // Called at every crash site. Returns true if the SSF should crash here. Always increments
  // the global hit counter, so scheduled indices refer to a deterministic enumeration.
  bool ShouldCrash(Rng& rng, const std::string& site) {
    int64_t hit = site_hits_++;
    if (scheduled_hits_.count(hit) > 0) return true;
    if (crash_probability_ > 0.0 && rng.Bernoulli(crash_probability_)) return true;
    return false;
  }

  bool ShouldDuplicate(Rng& rng) {
    return duplicate_probability_ > 0.0 && rng.Bernoulli(duplicate_probability_);
  }

  // Total crash sites encountered so far; a dry run of a workload measures its site count,
  // which exhaustive tests then sweep.
  int64_t site_hits() const { return site_hits_; }
  void ResetHitCounter() { site_hits_ = 0; }

 private:
  double crash_probability_ = 0.0;
  double duplicate_probability_ = 0.0;
  std::set<int64_t> scheduled_hits_;
  int64_t site_hits_ = 0;
};

}  // namespace halfmoon::runtime

#endif  // HALFMOON_RUNTIME_FAILURE_INJECTOR_H_
