#include "src/runtime/parallel_cluster.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/sharedlog/log_record.h"

namespace halfmoon::runtime {

namespace {

// Per-partition RNG stream derivation: splitmix-style so neighbouring partition ids do not
// produce correlated lognormal draws. Identical in both modes — the streams, and therefore
// every sampled latency, do not depend on threading.
uint64_t PartitionSeed(uint64_t seed, int id) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(id + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvStr(uint64_t h, const std::string& s) { return FnvBytes(h, s.data(), s.size()); }

}  // namespace

LogPartition::LogPartition(int id, sim::Scheduler* scheduler, uint64_t seed,
                           const LatencyModels* models, const ParallelClusterConfig& config)
    : id_(id),
      scheduler_(scheduler),
      rng_(PartitionSeed(seed, id)),
      models_(models),
      sequencer_(scheduler, config.sequencer_servers),
      storage_(scheduler, config.storage_servers) {
  sharedlog::AppendBatchConfig batch{
      .enabled = config.group_commit_appends,
      .window = config.append_batch_window,
      .max_batch = static_cast<size_t>(config.append_batch_max),
      .pipeline_depth = config.append_batch_pipeline,
  };
  // Durable tier (DESIGN.md §13): one journal per partition, on the partition's own event
  // loop — flushes are partition-local timestamped events, so both threading modes see them
  // identically. The service draws flush latencies from its own stream derived from the
  // partition seed; config.durable = false skips this entirely (bit-identity with the
  // pre-storage engine, as in runtime::Cluster).
  if (config.durable) {
    durability_ = std::make_unique<storage::DurabilityService>(scheduler_, models_,
                                                               PartitionSeed(seed, id));
    log_.AttachDurability(durability_.get());
    // The checkpoint store is pure state (no RNG, no events), so constructing it cannot
    // perturb the determinism pins; rounds only ever run via CheckpointNow between drains.
    if (config.checkpoint) ckpt_ = std::make_unique<storage::CheckpointStore>();
  }
  clients_.reserve(static_cast<size_t>(config.clients_per_partition));
  for (int i = 0; i < config.clients_per_partition; ++i) {
    clients_.push_back(std::make_unique<sharedlog::LogClient>(
        scheduler_, &rng_, models_, &log_, std::vector<sim::ServiceStation*>{&sequencer_},
        &storage_, batch, /*read_cache=*/false));
    if (durability_ != nullptr) clients_.back()->SetDurability(durability_.get());
  }
  log_.SetCommitListener([this](sharedlog::SeqNum seqnum) { OnCommit(seqnum); });
}

void LogPartition::OnCommit(sharedlog::SeqNum seqnum) {
  // Partition-local by construction: the commit fires on this partition's event loop and the
  // index update is posted back onto the same loop, so no cross-thread access happens here.
  // The delay is sampled before branching on the durable mode, so both modes draw the
  // identical rng sequence from this stream.
  SimDuration delay = models_->index_propagation.Sample(rng_);
  if (durability_ != nullptr) {
    // Write-ahead index propagation (DESIGN.md §13): replicas only learn durable seqnums.
    // The callback fires on this partition's loop once the record's flush lands.
    durability_->WhenDurable(seqnum, [this, seqnum, delay] {
      scheduler_->Post(delay, [this, seqnum] {
        for (auto& client : clients_) client->AdvanceIndex(seqnum);
      });
    });
    return;
  }
  scheduler_->Post(delay, [this, seqnum] {
    for (auto& client : clients_) client->AdvanceIndex(seqnum);
  });
}

void LogPartition::CheckpointNow() {
  HM_CHECK_MSG(durability_ != nullptr && ckpt_ != nullptr,
               "CheckpointNow needs the durable + checkpoint tiers attached");
  // Quiesced: everything acked is flushed, so the cut covers the whole log and the image is
  // sharp (recovery still runs the same image + suffix driver; the suffix is just empty).
  HM_CHECK(durability_->durable_offset() == durability_->tail_offset());
  uint64_t cut = durability_->durable_offset();
  uint64_t image_start = ckpt_->tail();
  HM_CHECK(image_start == ckpt_->durable());
  log_.BeginCheckpointWalk();
  int64_t frames = 0;
  while (!log_.WriteCheckpointSlice(ckpt_.get(), /*budget=*/1 << 20, &frames)) {
  }
  ckpt_->Flush();
  storage::CheckpointManifest m;
  m.domain = storage::kCkptLogDomain;
  m.cut = cut;
  m.image_start = image_start;
  m.frame_count = static_cast<uint64_t>(frames);
  m.checksum = storage::ChecksumImage(*ckpt_, image_start, ckpt_->durable());
  m.watermark_floor = durability_->durable_seq();
  ckpt_->AppendFrame(storage::FrameType::kCkptManifest, storage::EncodeManifest(m));
  ckpt_->Flush();
  durability_->TruncateTo(cut);
  ckpt_->TruncatePrefix(image_start);
}

sharedlog::LogRecoveryStats LogPartition::RestartFromJournal() {
  HM_CHECK_MSG(durability_ != nullptr, "RestartFromJournal needs the durable tier attached");
  durability_->Kill();
  if (ckpt_ != nullptr) ckpt_->DropVolatile();
  return sharedlog::RestoreLogFromJournal(scheduler_->Now(), &log_, durability_.get(),
                                          ckpt_.get());
}

ParallelCluster::ParallelCluster(const ParallelClusterConfig& config)
    : config_(config), models_(config.calibration) {
  HM_CHECK(config.partitions >= 1);
  if (config.parallel) {
    engine_ = std::make_unique<sim::ParallelEngine>(config.partitions, CrossShardLookahead(),
                                                    config.queue_mode);
  } else {
    shared_scheduler_ = std::make_unique<sim::Scheduler>(config.queue_mode);
  }
  parts_.reserve(static_cast<size_t>(config.partitions));
  for (int p = 0; p < config.partitions; ++p) {
    sim::Scheduler* sched = engine_ ? &engine_->scheduler(p) : shared_scheduler_.get();
    parts_.push_back(
        std::make_unique<LogPartition>(p, sched, config.seed, &models_, config));
  }
}

sim::Task<sharedlog::SeqNum> ParallelCluster::Append(int from, int client, int owner,
                                                     std::vector<sharedlog::TagId> tags,
                                                     FieldMap fields) {
  LogPartition& src = partition(from);
  SimTime start = src.scheduler().Now();
  sharedlog::SeqNum seq;
  if (owner == from) {
    seq = co_await src.client(client).Append(std::move(tags), std::move(fields));
  } else {
    ++src.remote_appends_out_;
    RemoteAppend call{this,          from, owner, client, std::move(tags),
                      std::move(fields)};
    seq = co_await call;
  }
  src.append_latency().Record(src.scheduler().Now() - start);
  co_return seq;
}

void ParallelCluster::RemoteAppend::await_suspend(std::coroutine_handle<> handle) {
  waiter = handle;
  // Request leg: sender's thread samples the hop from ITS stream (deterministic regardless of
  // which thread the owner's loop runs on) and ships a pointer to this frame. The frame stays
  // alive until await_resume: the sender coroutine is suspended right here until the reply
  // message resumes it.
  RemoteAppend* self = this;
  SimDuration request_leg = cluster->CrossHop(cluster->partition(from));
  cluster->Send(from, owner, request_leg, [self] {
    // Now on the OWNER's event loop: run the full local append path there.
    ParallelCluster* pc = self->cluster;
    pc->partition(self->owner).scheduler().Spawn(pc->ServeRemote(self));
  });
}

sim::Task<void> ParallelCluster::ServeRemote(RemoteAppend* call) {
  LogPartition& owner = partition(call->owner);
  // The owner-side proxy client: requests from remote partitions fan over the owner's clients
  // deterministically by the requester's client index.
  int proxy = call->client % owner.client_count();
  sharedlog::SeqNum seq =
      co_await owner.client(proxy).Append(std::move(call->tags), std::move(call->fields));
  // Reply leg, sampled from the OWNER's stream on the owner's thread.
  SimDuration reply_leg = CrossHop(owner);
  Send(call->owner, call->from, reply_leg, [call, seq] {
    // Back on the sender's loop. Write the result into the suspended frame and resume it.
    call->result = seq;
    call->waiter.resume();
  });
}

SimTime ParallelCluster::Run() {
  if (engine_) return engine_->Run();
  return shared_scheduler_->Run();
}

uint64_t ParallelCluster::TotalEventsProcessed() const {
  if (engine_) return engine_->TotalEventsProcessed();
  return shared_scheduler_->events_processed();
}

int64_t ParallelCluster::TotalLogAppends() const {
  sharedlog::LogClientStats stats = AggregateClientStats();
  return stats.appends + stats.cond_appends;
}

sharedlog::LogClientStats ParallelCluster::AggregateClientStats() const {
  sharedlog::LogClientStats total;
  for (const auto& part : parts_) {
    for (int i = 0; i < part->client_count(); ++i) total.Add(part->client(i).stats());
  }
  return total;
}

metrics::LatencyRecorder ParallelCluster::MergedAppendLatency() const {
  metrics::LatencyRecorder merged;
  for (const auto& part : parts_) merged.Merge(part->append_latency());
  return merged;
}

int64_t ParallelCluster::remote_appends() const {
  int64_t total = 0;
  for (const auto& part : parts_) total += part->remote_appends_out();
  return total;
}

uint64_t ParallelCluster::ContentChecksum() const {
  // Per-tag stream hash: tag NAME (ids are partition-local), then every record's field map in
  // committed stream order. Seqnums are deliberately left out — the contract across modes is
  // "same records, same per-tag order", and this hash pins exactly that. Tag hashes fold into
  // the result with XOR, so the checksum is independent of tag/partition enumeration order.
  uint64_t combined = 0;
  for (const auto& part : parts_) {
    const sharedlog::ShardedLog& log = part->log();
    for (sharedlog::TagId tag : log.LiveTagsWithPrefix("")) {
      uint64_t h = kFnvOffset;
      h = FnvStr(h, log.tags().Name(tag));
      for (const sharedlog::LogRecordPtr& record :
           log.ReadStreamUpTo(tag, sharedlog::kMaxSeqNum)) {
        h = FnvU64(h, 0x1ull);  // Record separator.
        for (const auto& [key, field] : record->fields) {
          h = FnvStr(h, key);
          if (const int64_t* iv = std::get_if<int64_t>(&field)) {
            h = FnvU64(h, static_cast<uint64_t>(*iv));
          } else {
            h = FnvStr(h, std::get<std::string>(field));
          }
        }
      }
      combined ^= h;
    }
  }
  return combined;
}

}  // namespace halfmoon::runtime
