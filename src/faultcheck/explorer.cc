#include "src/faultcheck/explorer.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "src/common/check.h"
#include "src/core/gc_service.h"
#include "src/core/ssf_runtime.h"
#include "src/core/switch_manager.h"
#include "src/runtime/cluster.h"
#include "src/sim/task.h"

namespace halfmoon::faultcheck {

namespace {

sim::Task<void> DriveInvocation(core::SsfRuntime* runtime, std::string function, Value input,
                                Value* out, bool* done) {
  *out = co_await runtime->InvokeSsf(std::move(function), std::move(input));
  *done = true;
}

sim::Task<void> DriveSwitch(core::SwitchManager* switcher, core::ProtocolKind target) {
  co_await switcher->SwitchTo(target);
}

sim::Task<void> DriveObjectSwitch(core::SwitchManager* switcher, sharedlog::TagId tag,
                                  core::ProtocolKind target) {
  co_await switcher->SwitchObject(tag, target);
}

}  // namespace

std::string ExplorerReport::Summary() const {
  std::string out = "sites=" + std::to_string(baseline_sites) +
                    " schedules=" + std::to_string(TotalExplored()) + " (baseline=" +
                    std::to_string(explored_none) + " single=" + std::to_string(explored_single) +
                    " pairs=" + std::to_string(explored_pairs) +
                    " peer=" + std::to_string(explored_peer) +
                    " gc=" + std::to_string(explored_gc) +
                    " switch=" + std::to_string(explored_switch) +
                    " advisor=" + std::to_string(explored_advisor) +
                    " kill=" + std::to_string(explored_kill) +
                    " ckpt=" + std::to_string(explored_ckpt) + ")" +
                    " failures=" + std::to_string(failures.size());
  return out;
}

Explorer::Explorer(Workload workload, ExplorerOptions options)
    : workload_(std::move(workload)), options_(std::move(options)) {}

Explorer::RunOutcome Explorer::RunSchedule(const Schedule& schedule, bool record_trace) {
  runtime::ClusterConfig ccfg;
  ccfg.seed = options_.seed;
  ccfg.function_nodes = 4;
  ccfg.workers_per_node = 8;
  if (options_.log_shards > 0) ccfg.log_shards = options_.log_shards;
  if (options_.pipeline_depth > 0) ccfg.append_batch_pipeline = options_.pipeline_depth;
  if (options_.durable >= 0) ccfg.durable = options_.durable != 0;
  if (options_.checkpoints) ccfg.checkpoint = true;
  runtime::Cluster cluster(ccfg);

  core::RuntimeConfig rcfg;
  rcfg.default_protocol = options_.protocol;
  rcfg.enable_switching = options_.enable_switching;
  rcfg.duplicate_delay = options_.duplicate_delay;
  rcfg.drop_commit_append = options_.drop_commit_append;
  rcfg.advisor = options_.advisor_mode;
  core::SsfRuntime runtime(&cluster, rcfg);
  core::GcService gc(&cluster, Milliseconds(50));
  core::SwitchManager switcher(&cluster, rcfg.switch_scope);

  // Seed objects before arming the schedule so setup never consumes site hits.
  workload_.Install(runtime);

  runtime::FailureInjector& injector = cluster.failure_injector();
  injector.EnableTrace(record_trace);
  for (const FaultPoint& point : schedule.points) {
    switch (point.kind) {
      case FaultKind::kCrash:
        injector.CrashAtSite(point.site, point.occurrence);
        break;
      case FaultKind::kPeerSpawn:
        injector.SpawnPeerAfterHit(point.at_hit);
        break;
      case FaultKind::kGcScan:
        injector.RunAtHit(point.at_hit, [&gc] { gc.RunOnce(); });
        break;
      case FaultKind::kSwitchBegin:
        HM_CHECK_MSG(options_.enable_switching,
                     "switch fault points require enable_switching");
        injector.RunAtHit(point.at_hit, [&cluster, &switcher, target = point.target] {
          cluster.scheduler().Spawn(DriveSwitch(&switcher, target));
        });
        break;
      case FaultKind::kAdvisorFire:
        // Models the advisor deciding to move every object at once — the densest possible
        // burst of per-object transitions racing the workload (and any scheduled crash).
        HM_CHECK_MSG(options_.advisor_mode, "advisor fault points require advisor_mode");
        injector.RunAtHit(point.at_hit,
                          [&cluster, &runtime, &switcher, target = point.target, this] {
                            for (const std::string& key : workload_.keys) {
                              cluster.scheduler().Spawn(DriveObjectSwitch(
                                  &switcher, runtime.ObjectTransitionTag(key), target));
                            }
                          });
        break;
      case FaultKind::kNodeKill:
        HM_CHECK_MSG(ccfg.durable,
                     "node-kill fault points require the durable storage tier (HM_DURABLE=1 "
                     "or ExplorerOptions::durable = 1)");
        injector.RunAtHit(point.at_hit, [&cluster, domain = point.site] {
          if (domain == "store") {
            cluster.KillRestartStorage();
          } else if (domain == "seq") {
            cluster.KillRestartSequencer();
          } else if (domain.starts_with("fn")) {
            int node = 0;
            auto [ptr, ec] =
                std::from_chars(domain.data() + 2, domain.data() + domain.size(), node);
            HM_CHECK_MSG(ec == std::errc{} && ptr == domain.data() + domain.size(),
                         "malformed fn<i> kill domain");
            cluster.KillRestartFunctionNode(node);
          } else {
            HM_CHECK_MSG(false, "unknown kill domain (want store | seq | fn<i>)");
          }
        });
        break;
      case FaultKind::kCheckpoint:
        HM_CHECK_MSG(ccfg.durable && ccfg.checkpoint,
                     "checkpoint fault points require the checkpoint tier "
                     "(ExplorerOptions::checkpoints with durable = 1)");
        injector.RunAtHit(point.at_hit,
                          [&cluster] { cluster.checkpoint_service()->TriggerRound(); });
        break;
    }
  }

  std::vector<Value> results;
  results.reserve(workload_.invocations.size());
  for (const auto& [function, input] : workload_.invocations) {
    Value out;
    bool done = false;
    cluster.scheduler().Spawn(DriveInvocation(&runtime, function, input, &out, &done));
    cluster.scheduler().Run();
    HM_CHECK_MSG(done, "faultcheck: invocation did not complete under the fault schedule");
    results.push_back(std::move(out));
  }

  RunOutcome outcome;
  if (record_trace) outcome.trace = injector.trace();
  // Quiesce injection: the oracle and the final GC scan run fault-free.
  injector.EnableTrace(false);
  injector.ClearCrashSchedule();

  // Advisor-mode runs may have moved individual objects mid-stream, so the oracle must use
  // its switching-aware (dual-read) final-state comparison just as for scope switches.
  const bool oracle_switching = options_.enable_switching || options_.advisor_mode;
  outcome.verdict = CheckConsistency(cluster, workload_, options_.protocol,
                                     oracle_switching, results);
  if (outcome.verdict.ok && options_.final_gc_check) {
    gc.RunOnce();
    outcome.verdict = CheckConsistency(cluster, workload_, options_.protocol,
                                       oracle_switching, results);
    if (!outcome.verdict.ok) {
      outcome.verdict.failure = "after final GC scan: " + outcome.verdict.failure;
    }
  }
  outcome.crashes = runtime.stats().crashes;
  outcome.peers = runtime.stats().peer_instances;
  return outcome;
}

Schedule Explorer::Shrink(const Schedule& failing) {
  Schedule current = failing;
  bool progress = true;
  while (progress && current.points.size() > 1) {
    progress = false;
    for (size_t i = 0; i < current.points.size(); ++i) {
      Schedule candidate = current;
      candidate.points.erase(candidate.points.begin() + static_cast<ptrdiff_t>(i));
      if (!RunSchedule(candidate).verdict.ok) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return current;
}

void Explorer::NoteVerdict(const Schedule& schedule, const OracleVerdict& verdict,
                           ExplorerReport* report) {
  if (verdict.ok) return;
  FailingSchedule failure;
  failure.schedule = schedule;
  failure.reason = verdict.failure;
  failure.minimized = options_.shrink_failures ? Shrink(schedule) : schedule;
  report->failures.push_back(std::move(failure));
}

ExplorerReport Explorer::Run() {
  ExplorerReport report;

  // Depth 0: the fault-free baseline seeds the site trace.
  RunOutcome baseline = RunSchedule(Schedule{}, /*record_trace=*/true);
  report.explored_none = 1;
  report.baseline_sites = static_cast<int64_t>(baseline.trace.size());
  NoteVerdict(Schedule{}, baseline.verdict, &report);
  const std::vector<runtime::FailureInjector::TraceEntry> trace = std::move(baseline.trace);

  const size_t first_stride = static_cast<size_t>(std::max(options_.first_stride, 1));
  const size_t second_stride = static_cast<size_t>(std::max(options_.second_stride, 1));

  if (options_.node_kills) {
    // Node-kill family: wipe a whole node's volatile state at a traced hit and force the
    // rest of the workload to run against journal-replayed state. Addressed by the global
    // hit counter like GC scans, so positions replay deterministically.
    for (size_t i = 0; i < trace.size(); i += first_stride) {
      for (const std::string& domain : options_.kill_domains) {
        Schedule kill;
        kill.points.push_back(FaultPoint::NodeKill(domain, static_cast<int64_t>(i)));
        ++report.explored_kill;
        NoteVerdict(kill, RunSchedule(kill).verdict, &report);
      }
    }
  }

  if (options_.checkpoints) {
    // Checkpoint family: start a round at a traced hit, then stress every way it can die.
    // The daemon crash sites cover the round's own phases (partial image / manifest without
    // truncation / truncation without store release); the node-kill compositions land a
    // whole-node loss while the round is walking (hit + 1) and just after it finished
    // (hit + 2), so recovery must come up through the image + replay-suffix path.
    static constexpr const char* kCkptCrashSites[] = {"ckpt.write", "ckpt.install",
                                                      "ckpt.truncate"};
    for (size_t i = 0; i < trace.size(); i += first_stride) {
      Schedule round;
      round.points.push_back(FaultPoint::Checkpoint(static_cast<int64_t>(i)));
      ++report.explored_ckpt;
      NoteVerdict(round, RunSchedule(round).verdict, &report);
      for (const char* site : kCkptCrashSites) {
        Schedule crash = round;
        crash.points.push_back(FaultPoint::Crash(site, 0));
        ++report.explored_ckpt;
        NoteVerdict(crash, RunSchedule(crash).verdict, &report);
      }
      for (const std::string& domain : options_.kill_domains) {
        for (int64_t delta : {1, 2}) {
          Schedule kill = round;
          kill.points.push_back(FaultPoint::NodeKill(domain, static_cast<int64_t>(i) + delta));
          ++report.explored_ckpt;
          NoteVerdict(kill, RunSchedule(kill).verdict, &report);
        }
      }
    }
  }

  for (size_t i = 0; i < trace.size(); i += first_stride) {
    Schedule first;
    first.points.push_back(FaultPoint::Crash(trace[i].site, trace[i].occurrence));

    // Depth 1 — and the faulted run's trace seeds the depth-2 suffix positions: the prefix
    // up to the first crash is identical to the baseline, the suffix covers retry/recovery.
    RunOutcome faulted = RunSchedule(first, /*record_trace=*/true);
    ++report.explored_single;
    NoteVerdict(first, faulted.verdict, &report);

    std::vector<size_t> seconds;
    for (size_t j = i + 1; j < faulted.trace.size(); j += second_stride) {
      if (options_.second_limit >= 0 &&
          seconds.size() >= static_cast<size_t>(options_.second_limit)) {
        break;
      }
      seconds.push_back(j);
    }

    if (options_.crash_pairs) {
      for (size_t j : seconds) {
        Schedule pair = first;
        pair.points.push_back(
            FaultPoint::Crash(faulted.trace[j].site, faulted.trace[j].occurrence));
        ++report.explored_pairs;
        NoteVerdict(pair, RunSchedule(pair).verdict, &report);
      }
    }

    if (options_.crash_plus_peer) {
      // -1 arms the peer at the very first attempt; suffix positions arm it during recovery.
      std::vector<int64_t> hits = {-1};
      for (size_t j : seconds) hits.push_back(static_cast<int64_t>(j));
      for (int64_t hit : hits) {
        Schedule with_peer = first;
        with_peer.points.push_back(FaultPoint::PeerSpawn(hit));
        ++report.explored_peer;
        NoteVerdict(with_peer, RunSchedule(with_peer).verdict, &report);
      }
    }

    if (options_.crash_plus_gc) {
      // A scan exactly at the crash hit (GC racing the dying attempt), plus suffix scans
      // racing the retry.
      std::vector<int64_t> hits = {static_cast<int64_t>(i)};
      for (size_t j : seconds) hits.push_back(static_cast<int64_t>(j));
      for (int64_t hit : hits) {
        Schedule with_gc = first;
        with_gc.points.push_back(FaultPoint::GcScan(hit));
        ++report.explored_gc;
        NoteVerdict(with_gc, RunSchedule(with_gc).verdict, &report);
      }
    }

    if (options_.crash_plus_advisor && options_.advisor_mode) {
      // Advisor fire before the crash (the crash lands while per-object transitions are in
      // flight), at it, and during recovery (retries resolve per-object protocols while the
      // transition streams grow).
      std::vector<int64_t> hits;
      if (i > 0) hits.push_back(0);
      hits.push_back(static_cast<int64_t>(i));
      for (size_t j : seconds) hits.push_back(static_cast<int64_t>(j));
      for (int64_t hit : hits) {
        Schedule with_advisor = first;
        with_advisor.points.push_back(FaultPoint::AdvisorFire(options_.switch_target, hit));
        ++report.explored_advisor;
        NoteVerdict(with_advisor, RunSchedule(with_advisor).verdict, &report);
      }
    }

    if (options_.crash_plus_switch && options_.enable_switching) {
      // Switch starting before the crash (the crash lands mid-switch), at it, and during
      // recovery (retries resolve their protocol while the transition log grows).
      std::vector<int64_t> hits;
      if (i > 0) hits.push_back(0);
      hits.push_back(static_cast<int64_t>(i));
      for (size_t j : seconds) hits.push_back(static_cast<int64_t>(j));
      for (int64_t hit : hits) {
        Schedule with_switch = first;
        with_switch.points.push_back(FaultPoint::SwitchBegin(options_.switch_target, hit));
        ++report.explored_switch;
        NoteVerdict(with_switch, RunSchedule(with_switch).verdict, &report);
      }
    }
  }

  return report;
}

}  // namespace halfmoon::faultcheck
