// The consistency oracle: compares one finished execution against the sequential reference.
//
// The driver submits root invocations serially and concurrent children write disjoint keys,
// so the crash-free serial execution is unique. The §2 exactly-once guarantee plus the §4.2 /
// §4.4 consistency guarantees (strict SC for Halfmoon-read; SC up to commutation of
// consecutive log-free writes for Halfmoon-write — invisible once the system quiesces) then
// collapse to two checkable equalities:
//   1. every root invocation returned the reference result, and
//   2. the final observable value of every object equals the reference final state, where
//      "observable" mirrors the protocol read path (the committed write log + versioned store
//      for Halfmoon-read, the LATEST slot otherwise, the §5.2 dual-read freshness comparison
//      under switching).
// Duplicate effects, lost updates, stale reads, orphaned or prematurely-collected versions
// all surface as a violation of one of the two.

#ifndef HALFMOON_FAULTCHECK_ORACLE_H_
#define HALFMOON_FAULTCHECK_ORACLE_H_

#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/core/env.h"
#include "src/faultcheck/workload.h"
#include "src/runtime/cluster.h"

namespace halfmoon::faultcheck {

struct OracleVerdict {
  bool ok = true;
  std::string failure;  // Empty when ok; otherwise the first mismatch, human-readable.
};

// Checks a quiescent cluster that executed `workload` under `protocol` (with or without
// switching enabled) and produced `results`, one per root invocation in submission order.
OracleVerdict CheckConsistency(runtime::Cluster& cluster, const Workload& workload,
                               core::ProtocolKind protocol, bool switching,
                               const std::vector<Value>& results);

}  // namespace halfmoon::faultcheck

#endif  // HALFMOON_FAULTCHECK_ORACLE_H_
