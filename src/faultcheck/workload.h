// Workload catalog for the fault explorer.
//
// Each workload bundles an executable form (SSF bodies + seeded objects + a fixed list of
// serial root invocations) with a *reference model*: a pure interpreter of the same functions
// over a plain std::map. Root invocations run serially (the driver drains the scheduler
// between them) and concurrent children within one invocation write disjoint keys, so the
// crash-free serial execution is unique — the reference model computes exactly the results
// and final state that every fault schedule must reproduce (exactly-once, §2).

#ifndef HALFMOON_FAULTCHECK_WORKLOAD_H_
#define HALFMOON_FAULTCHECK_WORKLOAD_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/value.h"
#include "src/core/ssf_runtime.h"

namespace halfmoon::faultcheck {

struct Workload {
  std::string name;

  // Objects seeded before the run (PopulateObject) and the model's initial state.
  std::map<std::string, Value> initial_state;

  // Keys whose final observable value the oracle compares against the reference model.
  std::vector<std::string> keys;

  // Root invocations, submitted serially (each drained to quiescence before the next).
  std::vector<std::pair<std::string, Value>> invocations;

  // Registers the SSF bodies on a fresh runtime.
  std::function<void(core::SsfRuntime&)> register_functions;

  // Reference interpreter: applies root invocation `function(input)` to `state` and returns
  // the result of a crash-free execution. Must model nested Invoke/InvokeAll calls too.
  std::function<Value(std::map<std::string, Value>& state, const std::string& function,
                      const Value& input)>
      reference;

  // Seeds the objects and registers the functions.
  void Install(core::SsfRuntime& runtime) const;

  // Runs the reference model over all invocations; optionally returns the final state.
  std::vector<Value> ExpectedResults(std::map<std::string, Value>* final_state = nullptr) const;
};

// Three serial increments of one counter (reads steer writes; the classic exactly-once probe).
Workload CounterWorkload();

// Two transfers between two accounts (multi-object read-modify-write in one SSF).
Workload TransferWorkload();

// Two-level workflow: the parent Invokes an accumulator, then InvokeAlls two setters that
// write disjoint keys (exercises the invoke pre/post logging and concurrent children).
Workload WorkflowWorkload();

// The full catalog.
std::vector<Workload> AllWorkloads();

}  // namespace halfmoon::faultcheck

#endif  // HALFMOON_FAULTCHECK_WORKLOAD_H_
