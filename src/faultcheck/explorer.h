// Bounded-depth schedule explorer.
//
// Enumerates multi-fault schedules for a workload and runs each one in a fresh simulated
// cluster, checking every execution against the consistency oracle:
//   * depth 0 — the fault-free baseline (also records the site trace that seeds enumeration);
//   * depth 1 — one crash per traced (site, occurrence);
//   * depth 2 — for each first crash, second faults drawn from the *faulted* run's trace
//     suffix (the prefix up to the first crash is deterministic, so suffix positions are
//     meaningful): a second crash (dying inside retry/recovery), a scheduled peer instance,
//     a GC scan at a chosen hit, or the start of a protocol switch;
//   * node kills (opt-in, durable clusters only) — kill + restart a whole node at a traced
//     hit, replay its journals, and run the remaining invocations against recovered state.
// Failing schedules are greedily shrunk (drop one fault at a time while the failure persists)
// and reported with their printable form, which Schedule::Parse replays deterministically —
// same seed, same schedule, same verdict.

#ifndef HALFMOON_FAULTCHECK_EXPLORER_H_
#define HALFMOON_FAULTCHECK_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/core/env.h"
#include "src/faultcheck/oracle.h"
#include "src/faultcheck/schedule.h"
#include "src/faultcheck/workload.h"
#include "src/runtime/failure_injector.h"

namespace halfmoon::faultcheck {

struct ExplorerOptions {
  core::ProtocolKind protocol = core::ProtocolKind::kHalfmoonRead;
  bool enable_switching = false;
  core::ProtocolKind switch_target = core::ProtocolKind::kHalfmoonWrite;
  uint64_t seed = 1;

  // Shared-log shard count for every cluster the sweep spins up; 0 = inherit the
  // environment default (HM_SHARDS, usually 1). Sweeping N > 1 re-checks the oracle
  // against the tag-partitioned log's cross-shard merge order.
  int log_shards = 0;

  // Append-pipeline depth for every cluster the sweep spins up; 0 = inherit the environment
  // default (HM_PIPELINE, usually 1). Sweeping depth > 1 makes the batch.depart/batch.reply
  // sites race crashed-function retries against rounds still in flight, and the depth-2
  // crash-pair family then covers crashes between two concurrently in-flight rounds.
  int pipeline_depth = 0;

  // Platform timing: a tight duplicate delay makes scheduled peers actually race.
  SimDuration duplicate_delay = Milliseconds(1);

  // Testing-only protocol mutation, plumbed to RuntimeConfig (the negative control).
  bool drop_commit_append = false;

  // Runs every cluster with RuntimeConfig::advisor on: SSFs resolve per-object protocols
  // from "switch:k:<key>" transition streams, and kAdvisorFire points become meaningful.
  bool advisor_mode = false;

  // Durable-cluster override for every cluster the sweep spins up: -1 inherits the
  // environment default (HM_DURABLE), 0 forces the volatile store, 1 forces the journaled
  // storage tier (DESIGN.md §13). Node-kill fault points require the durable tier.
  int durable = -1;

  // Depth-1 node-kill family: kill + restart a whole node at each strided trace position,
  // for every domain listed below, then let the remaining invocations run against the
  // replayed state. Requires durable = 1.
  bool node_kills = false;
  std::vector<std::string> kill_domains = {"store", "seq", "fn0"};

  // Checkpoint family (requires durable = 1; every cluster then runs with the checkpoint
  // tier attached): trigger a checkpoint round at each strided trace position — alone, with
  // the daemon crashing inside the round (ckpt.write / ckpt.install / ckpt.truncate), and
  // with whole-node kills landing mid-round and right after it, so recovery comes up from a
  // partial image, an untruncated manifest, or the freshly compacted journal (DESIGN.md §14).
  bool checkpoints = false;

  // Which depth-2 families to enumerate.
  bool crash_pairs = true;
  bool crash_plus_peer = true;
  bool crash_plus_gc = true;
  bool crash_plus_switch = false;   // Only meaningful with enable_switching.
  bool crash_plus_advisor = false;  // Only meaningful with advisor_mode.

  // Sweep bounds for smoke mode. Strides subsample candidates; second_limit caps the number
  // of second-fault positions per first crash (-1 = unbounded). The full sweep sets all
  // three to exhaustive (see tests/faultcheck/explorer_test.cc and HM_FAULTCHECK_FULL).
  int first_stride = 1;
  int second_stride = 1;
  int second_limit = -1;

  bool shrink_failures = true;

  // After the invocations drain, run one final GC scan and re-check the oracle — catches GC
  // collecting state that is still observable.
  bool final_gc_check = true;
};

struct FailingSchedule {
  Schedule schedule;   // As explored.
  Schedule minimized;  // After greedy shrinking (== schedule when shrinking is off).
  std::string reason;  // The oracle's failure message for `schedule`.
};

struct ExplorerReport {
  int64_t baseline_sites = 0;  // Crash sites traced by the fault-free run.
  int64_t explored_none = 0;
  int64_t explored_single = 0;
  int64_t explored_pairs = 0;
  int64_t explored_peer = 0;
  int64_t explored_gc = 0;
  int64_t explored_switch = 0;
  int64_t explored_advisor = 0;
  int64_t explored_kill = 0;
  int64_t explored_ckpt = 0;
  std::vector<FailingSchedule> failures;

  int64_t TotalExplored() const {
    return explored_none + explored_single + explored_pairs + explored_peer + explored_gc +
           explored_switch + explored_advisor + explored_kill + explored_ckpt;
  }
  bool AllPassed() const { return failures.empty(); }

  // One line for CI logs: explored-schedule counts per family plus the failure count.
  std::string Summary() const;
};

class Explorer {
 public:
  Explorer(Workload workload, ExplorerOptions options);

  // Full bounded sweep: baseline, depth-1, and the enabled depth-2 families.
  ExplorerReport Run();

  struct RunOutcome {
    OracleVerdict verdict;
    std::vector<runtime::FailureInjector::TraceEntry> trace;  // When record_trace.
    int64_t crashes = 0;  // Runtime stats of the run, for tests.
    int64_t peers = 0;
  };

  // Executes the workload once under `schedule` in a fresh cluster and checks the oracle.
  RunOutcome RunSchedule(const Schedule& schedule, bool record_trace = false);

  // Greedy minimization: repeatedly drops any single fault whose removal keeps the schedule
  // failing, until no single removal does.
  Schedule Shrink(const Schedule& failing);

  const Workload& workload() const { return workload_; }
  const ExplorerOptions& options() const { return options_; }

 private:
  void NoteVerdict(const Schedule& schedule, const OracleVerdict& verdict,
                   ExplorerReport* report);

  Workload workload_;
  ExplorerOptions options_;
};

}  // namespace halfmoon::faultcheck

#endif  // HALFMOON_FAULTCHECK_EXPLORER_H_
