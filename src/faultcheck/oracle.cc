#include "src/faultcheck/oracle.h"

#include <optional>

#include "src/kvstore/kv_state.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/log_space.h"

namespace halfmoon::faultcheck {

namespace {

// Display form of a value for failure messages (workload values are printable strings).
std::string Show(const Value& value) {
  for (char c : value) {
    if (c < 0x20 || c > 0x7e) return "<binary:" + std::to_string(value.size()) + "B>";
  }
  return "\"" + value + "\"";
}

// The value an idealized crash-free reader invoked after quiescence would observe for `key`,
// computed directly against the raw LogSpace/KvState along the configured protocol's read
// path. Returns false (with `error` set) when the representation itself is broken — e.g. a
// committed write-log record whose version is missing from the store.
bool ObservableValue(runtime::Cluster& cluster, core::ProtocolKind protocol, bool switching,
                     const std::string& key, Value* out, std::string* error) {
  sharedlog::ShardedLog& log = cluster.log_space();
  kvstore::KvState& kv = cluster.kv_state();

  sharedlog::TagId write_tag =
      log.tags().FindPrefixed(sharedlog::kWriteLogPrefix, key);
  sharedlog::LogRecordPtr commit =
      write_tag == sharedlog::kInvalidTagId ? nullptr
                                            : log.ReadPrev(write_tag, sharedlog::kMaxSeqNum);
  std::optional<Value> latest = kv.Get(key);

  if (!switching && protocol != core::ProtocolKind::kHalfmoonRead &&
      protocol != core::ProtocolKind::kTransitional) {
    // Halfmoon-write / Boki / unsafe: the LATEST slot is the object.
    *out = latest.value_or(Value{});
    return true;
  }

  std::optional<Value> versioned;
  sharedlog::SeqNum commit_seq = 0;
  if (commit != nullptr) {
    versioned = kv.GetVersioned(write_tag, commit->fields.GetStr("version"));
    if (!versioned.has_value()) {
      *error = "committed version of \"" + key + "\" (record seqnum " +
               std::to_string(commit->seqnum) + ") is missing from the store";
      return false;
    }
    commit_seq = commit->seqnum;
  }

  if (!switching) {
    // Pure Halfmoon-read: the freshest committed write-log version; LATEST (the seed slot)
    // only for objects with no commit record at all.
    *out = versioned.has_value() ? *versioned : latest.value_or(Value{});
    return true;
  }

  // Switching world (§5.2 dual read at cursor = infinity): freshness-compare the LATEST
  // slot's installing cursorTS against the commit record's seqnum — both are positions in
  // the same event stream.
  std::optional<kvstore::VersionTuple> latest_version = kv.GetVersion(key);
  const uint64_t latest_ts = latest_version.has_value() ? latest_version->cursor_ts : 0;
  if (latest.has_value() && (!versioned.has_value() || latest_ts > commit_seq)) {
    *out = *latest;
    return true;
  }
  if (versioned.has_value()) {
    *out = *versioned;
    return true;
  }
  *out = Value{};
  return true;
}

}  // namespace

OracleVerdict CheckConsistency(runtime::Cluster& cluster, const Workload& workload,
                               core::ProtocolKind protocol, bool switching,
                               const std::vector<Value>& results) {
  std::map<std::string, Value> reference_state;
  std::vector<Value> expected = workload.ExpectedResults(&reference_state);

  OracleVerdict verdict;
  if (results.size() != expected.size()) {
    verdict.ok = false;
    verdict.failure = "expected " + std::to_string(expected.size()) + " results, got " +
                      std::to_string(results.size());
    return verdict;
  }
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i] != expected[i]) {
      verdict.ok = false;
      verdict.failure = "invocation #" + std::to_string(i) + " (" +
                        workload.invocations[i].first + ") returned " + Show(results[i]) +
                        ", reference says " + Show(expected[i]);
      return verdict;
    }
  }

  for (const std::string& key : workload.keys) {
    Value observed;
    std::string error;
    if (!ObservableValue(cluster, protocol, switching, key, &observed, &error)) {
      verdict.ok = false;
      verdict.failure = error;
      return verdict;
    }
    auto it = reference_state.find(key);
    const Value& expected_value = it == reference_state.end() ? Value{} : it->second;
    if (observed != expected_value) {
      verdict.ok = false;
      verdict.failure = "final state of \"" + key + "\" is " + Show(observed) +
                        ", reference says " + Show(expected_value);
      return verdict;
    }
  }
  return verdict;
}

}  // namespace halfmoon::faultcheck
