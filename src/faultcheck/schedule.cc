#include "src/faultcheck/schedule.h"

#include <array>
#include <charconv>
#include <utility>

namespace halfmoon::faultcheck {

namespace {

constexpr std::array<core::ProtocolKind, 5> kAllProtocols = {
    core::ProtocolKind::kUnsafe,         core::ProtocolKind::kBoki,
    core::ProtocolKind::kHalfmoonRead,   core::ProtocolKind::kHalfmoonWrite,
    core::ProtocolKind::kTransitional,
};

std::optional<core::ProtocolKind> ProtocolFromName(std::string_view name) {
  for (core::ProtocolKind kind : kAllProtocols) {
    if (name == core::ProtocolName(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<FaultPoint> ParsePoint(std::string_view token) {
  if (token.starts_with("crash(") && token.ends_with(")")) {
    std::string_view body = token.substr(6, token.size() - 7);
    size_t hash = body.rfind('#');
    if (hash == std::string_view::npos) return std::nullopt;
    std::optional<int64_t> occ = ParseInt(body.substr(hash + 1));
    if (!occ.has_value() || body.substr(0, hash).empty()) return std::nullopt;
    return FaultPoint::Crash(std::string(body.substr(0, hash)), *occ);
  }
  if (token.starts_with("peer@")) {
    std::optional<int64_t> hit = ParseInt(token.substr(5));
    if (!hit.has_value()) return std::nullopt;
    return FaultPoint::PeerSpawn(*hit);
  }
  if (token.starts_with("gc@")) {
    std::optional<int64_t> hit = ParseInt(token.substr(3));
    if (!hit.has_value()) return std::nullopt;
    return FaultPoint::GcScan(*hit);
  }
  if (token.starts_with("switch[")) {
    size_t close = token.find("]@");
    if (close == std::string_view::npos) return std::nullopt;
    std::optional<core::ProtocolKind> target = ProtocolFromName(token.substr(7, close - 7));
    std::optional<int64_t> hit = ParseInt(token.substr(close + 2));
    if (!target.has_value() || !hit.has_value()) return std::nullopt;
    return FaultPoint::SwitchBegin(*target, *hit);
  }
  if (token.starts_with("advisor[")) {
    size_t close = token.find("]@");
    if (close == std::string_view::npos) return std::nullopt;
    std::optional<core::ProtocolKind> target = ProtocolFromName(token.substr(8, close - 8));
    std::optional<int64_t> hit = ParseInt(token.substr(close + 2));
    if (!target.has_value() || !hit.has_value()) return std::nullopt;
    return FaultPoint::AdvisorFire(*target, *hit);
  }
  if (token.starts_with("ckpt@")) {
    std::optional<int64_t> hit = ParseInt(token.substr(5));
    if (!hit.has_value()) return std::nullopt;
    return FaultPoint::Checkpoint(*hit);
  }
  if (token.starts_with("kill[")) {
    size_t close = token.find("]@");
    if (close == std::string_view::npos) return std::nullopt;
    std::string_view domain = token.substr(5, close - 5);
    std::optional<int64_t> hit = ParseInt(token.substr(close + 2));
    if (domain.empty() || !hit.has_value()) return std::nullopt;
    return FaultPoint::NodeKill(std::string(domain), *hit);
  }
  return std::nullopt;
}

}  // namespace

FaultPoint FaultPoint::Crash(std::string site, int64_t occurrence) {
  FaultPoint p;
  p.kind = FaultKind::kCrash;
  p.site = std::move(site);
  p.occurrence = occurrence;
  return p;
}

FaultPoint FaultPoint::PeerSpawn(int64_t at_hit) {
  FaultPoint p;
  p.kind = FaultKind::kPeerSpawn;
  p.at_hit = at_hit;
  return p;
}

FaultPoint FaultPoint::GcScan(int64_t at_hit) {
  FaultPoint p;
  p.kind = FaultKind::kGcScan;
  p.at_hit = at_hit;
  return p;
}

FaultPoint FaultPoint::SwitchBegin(core::ProtocolKind target, int64_t at_hit) {
  FaultPoint p;
  p.kind = FaultKind::kSwitchBegin;
  p.target = target;
  p.at_hit = at_hit;
  return p;
}

FaultPoint FaultPoint::AdvisorFire(core::ProtocolKind target, int64_t at_hit) {
  FaultPoint p;
  p.kind = FaultKind::kAdvisorFire;
  p.target = target;
  p.at_hit = at_hit;
  return p;
}

FaultPoint FaultPoint::NodeKill(std::string domain, int64_t at_hit) {
  FaultPoint p;
  p.kind = FaultKind::kNodeKill;
  p.site = std::move(domain);
  p.at_hit = at_hit;
  return p;
}

FaultPoint FaultPoint::Checkpoint(int64_t at_hit) {
  FaultPoint p;
  p.kind = FaultKind::kCheckpoint;
  p.at_hit = at_hit;
  return p;
}

std::string FaultPoint::ToString() const {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash(" + site + "#" + std::to_string(occurrence) + ")";
    case FaultKind::kPeerSpawn:
      return "peer@" + std::to_string(at_hit);
    case FaultKind::kGcScan:
      return "gc@" + std::to_string(at_hit);
    case FaultKind::kSwitchBegin:
      return std::string("switch[") + core::ProtocolName(target) + "]@" +
             std::to_string(at_hit);
    case FaultKind::kAdvisorFire:
      return std::string("advisor[") + core::ProtocolName(target) + "]@" +
             std::to_string(at_hit);
    case FaultKind::kNodeKill:
      return "kill[" + site + "]@" + std::to_string(at_hit);
    case FaultKind::kCheckpoint:
      return "ckpt@" + std::to_string(at_hit);
  }
  return "?";
}

std::string Schedule::ToString() const {
  if (points.empty()) return "(no faults)";
  std::string out;
  for (const FaultPoint& point : points) {
    if (!out.empty()) out += ' ';
    out += point.ToString();
  }
  return out;
}

std::optional<Schedule> Schedule::Parse(std::string_view text) {
  // Trim outer whitespace first so "(no faults)" and padded forms both parse.
  while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
  while (!text.empty() && text.back() == ' ') text.remove_suffix(1);
  Schedule schedule;
  if (text.empty() || text == "(no faults)") return schedule;
  while (!text.empty()) {
    size_t space = text.find(' ');
    std::string_view token = text.substr(0, space);
    text.remove_prefix(space == std::string_view::npos ? text.size() : space + 1);
    if (token.empty()) continue;
    std::optional<FaultPoint> point = ParsePoint(token);
    if (!point.has_value()) return std::nullopt;
    schedule.points.push_back(std::move(*point));
  }
  return schedule;
}

}  // namespace halfmoon::faultcheck
