// Multi-fault schedules: what the explorer enumerates, replays, shrinks, and prints.
//
// A schedule is an ordered set of fault points injected into one execution of a workload.
// Crashes are addressed as (site, occurrence) pairs — "the 2nd time execution reaches
// hmr.write.after_db" — which stay stable when unrelated crash sites are added or removed.
// Peer spawns, GC scans, and switch starts are addressed by the global site-hit counter,
// which is deterministic given the schedule prefix (the simulation is single-threaded and
// seeded). ToString/Parse round-trip exactly, so a failing schedule printed by a test run
// can be replayed verbatim (see DESIGN.md §8).

#ifndef HALFMOON_FAULTCHECK_SCHEDULE_H_
#define HALFMOON_FAULTCHECK_SCHEDULE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/env.h"

namespace halfmoon::faultcheck {

enum class FaultKind {
  kCrash,        // Crash at the occurrence-th hit (0-based) of a named site.
  kPeerSpawn,    // Arm a duplicate (peer) instance at the first opportunity after a hit.
  kGcScan,       // Run one full GC scan when the global hit counter reaches at_hit.
  kSwitchBegin,  // Start a protocol switch to `target` when the counter reaches at_hit.
  kAdvisorFire,  // Fire advisor per-object switches (every workload key) at at_hit.
  kNodeKill,     // Kill + restart a whole node (see `site` for the domain) at at_hit.
  kCheckpoint,   // Trigger a checkpoint round (DESIGN.md §14) when the counter hits at_hit.
};

struct FaultPoint {
  FaultKind kind = FaultKind::kCrash;
  // kCrash: the crash site. kNodeKill: the kill domain — "store" (storage tier: log + KV
  // journals), "seq" (sequencer tier: log journal only) or "fn<i>" (function node i's soft
  // state). Node kills require the durable cluster (DESIGN.md §13).
  std::string site;
  int64_t occurrence = 0;  // kCrash only.
  int64_t at_hit = 0;      // kPeerSpawn / kGcScan / kSwitchBegin / kNodeKill.
  core::ProtocolKind target = core::ProtocolKind::kHalfmoonWrite;  // kSwitchBegin only.

  bool operator==(const FaultPoint&) const = default;

  static FaultPoint Crash(std::string site, int64_t occurrence);
  static FaultPoint PeerSpawn(int64_t at_hit);
  static FaultPoint GcScan(int64_t at_hit);
  static FaultPoint SwitchBegin(core::ProtocolKind target, int64_t at_hit);
  static FaultPoint AdvisorFire(core::ProtocolKind target, int64_t at_hit);
  static FaultPoint NodeKill(std::string domain, int64_t at_hit);
  static FaultPoint Checkpoint(int64_t at_hit);

  // crash(<site>#<occ>) | peer@<hit> | gc@<hit> | switch[<protocol>]@<hit> |
  // advisor[<protocol>]@<hit> | kill[<domain>]@<hit> | ckpt@<hit>
  std::string ToString() const;
};

struct Schedule {
  std::vector<FaultPoint> points;

  bool operator==(const Schedule&) const = default;
  bool empty() const { return points.empty(); }
  size_t size() const { return points.size(); }

  // Space-separated fault points; "(no faults)" for the empty schedule.
  std::string ToString() const;

  // Inverse of ToString (also accepts extra whitespace). nullopt on malformed input.
  static std::optional<Schedule> Parse(std::string_view text);
};

}  // namespace halfmoon::faultcheck

#endif  // HALFMOON_FAULTCHECK_SCHEDULE_H_
