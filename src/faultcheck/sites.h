// Canonical registry of crash-site names.
//
// Every Env::MaybeCrash call site in the runtime and the protocols passes one of the names
// below. The faultcheck explorer expresses schedules as (site, occurrence) pairs, so these
// names are part of the reproducibility contract: a printed failing schedule must replay on a
// later build. Renaming a site invalidates recorded schedules — the audit test
// (tests/faultcheck/injector_test.cc) cross-checks that every site reached by the workload
// catalog appears here, which catches accidental renames and forgotten registrations.
//
// Naming convention: <path>.<operation>.<phase>, where path is the protocol family (hmr, hmw,
// boki, unsafe, trans) or the invoke machinery (invoke, invoke_all), and phase names the
// hazard window the site exercises (before, after_prelog, after_db, after_log, ...).

#ifndef HALFMOON_FAULTCHECK_SITES_H_
#define HALFMOON_FAULTCHECK_SITES_H_

#include <string_view>
#include <vector>

namespace halfmoon::faultcheck {

// All crash-site names, in source order of their call sites.
const std::vector<std::string_view>& KnownCrashSites();

bool IsKnownCrashSite(std::string_view site);

}  // namespace halfmoon::faultcheck

#endif  // HALFMOON_FAULTCHECK_SITES_H_
