#include "src/faultcheck/workload.h"

#include "src/common/check.h"
#include "src/core/ssf_context.h"

namespace halfmoon::faultcheck {

namespace {

// Splits a "key|value" setter input.
std::pair<std::string, Value> SplitSet(const Value& input) {
  size_t bar = input.find('|');
  HM_CHECK_MSG(bar != std::string::npos, "faultcheck setter input must be \"key|value\"");
  return {input.substr(0, bar), input.substr(bar + 1)};
}

}  // namespace

void Workload::Install(core::SsfRuntime& runtime) const {
  for (const auto& [key, value] : initial_state) {
    runtime.PopulateObject(key, value);
  }
  register_functions(runtime);
}

std::vector<Value> Workload::ExpectedResults(std::map<std::string, Value>* final_state) const {
  std::map<std::string, Value> state = initial_state;
  std::vector<Value> results;
  results.reserve(invocations.size());
  for (const auto& [function, input] : invocations) {
    results.push_back(reference(state, function, input));
  }
  if (final_state != nullptr) *final_state = state;
  return results;
}

Workload CounterWorkload() {
  Workload w;
  w.name = "counter";
  w.initial_state = {{"counter", EncodeInt64(0)}};
  w.keys = {"counter"};
  w.invocations = {{"incr", Value{}}, {"incr", Value{}}, {"incr", Value{}}};
  w.register_functions = [](core::SsfRuntime& runtime) {
    runtime.RegisterFunction("incr", [](core::SsfContext& ctx) -> sim::Task<Value> {
      Value v = co_await ctx.Read("counter");
      int64_t n = DecodeInt64(v);
      co_await ctx.Compute();
      co_await ctx.Write("counter", EncodeInt64(n + 1));
      co_return EncodeInt64(n + 1);
    });
  };
  w.reference = [](std::map<std::string, Value>& state, const std::string& function,
                   const Value&) -> Value {
    HM_CHECK(function == "incr");
    int64_t n = DecodeInt64(state.at("counter")) + 1;
    state["counter"] = EncodeInt64(n);
    return EncodeInt64(n);
  };
  return w;
}

Workload TransferWorkload() {
  Workload w;
  w.name = "transfer";
  w.initial_state = {{"acct:a", EncodeInt64(100)}, {"acct:b", EncodeInt64(100)}};
  w.keys = {"acct:a", "acct:b"};
  w.invocations = {{"transfer", EncodeInt64(10)}, {"transfer", EncodeInt64(5)}};
  w.register_functions = [](core::SsfRuntime& runtime) {
    runtime.RegisterFunction("transfer", [](core::SsfContext& ctx) -> sim::Task<Value> {
      int64_t amount = DecodeInt64(ctx.input());
      int64_t a = DecodeInt64(co_await ctx.Read("acct:a"));
      int64_t b = DecodeInt64(co_await ctx.Read("acct:b"));
      co_await ctx.Write("acct:a", EncodeInt64(a - amount));
      co_await ctx.Write("acct:b", EncodeInt64(b + amount));
      co_return EncodeInt64(a - amount);
    });
  };
  w.reference = [](std::map<std::string, Value>& state, const std::string& function,
                   const Value& input) -> Value {
    HM_CHECK(function == "transfer");
    int64_t amount = DecodeInt64(input);
    int64_t a = DecodeInt64(state.at("acct:a")) - amount;
    int64_t b = DecodeInt64(state.at("acct:b")) + amount;
    state["acct:a"] = EncodeInt64(a);
    state["acct:b"] = EncodeInt64(b);
    return EncodeInt64(a);
  };
  return w;
}

Workload WorkflowWorkload() {
  Workload w;
  w.name = "workflow";
  w.initial_state = {{"acc", EncodeInt64(0)}, {"left", Value{}}, {"right", Value{}}};
  w.keys = {"acc", "left", "right"};
  w.invocations = {{"parent", "1"}, {"parent", "2"}};
  w.register_functions = [](core::SsfRuntime& runtime) {
    runtime.RegisterFunction("add", [](core::SsfContext& ctx) -> sim::Task<Value> {
      int64_t n = DecodeInt64(co_await ctx.Read("acc")) + DecodeInt64(ctx.input());
      co_await ctx.Write("acc", EncodeInt64(n));
      co_return EncodeInt64(n);
    });
    runtime.RegisterFunction("set", [](core::SsfContext& ctx) -> sim::Task<Value> {
      auto [key, value] = SplitSet(ctx.input());
      co_await ctx.Write(key, value);
      co_return value;
    });
    runtime.RegisterFunction("parent", [](core::SsfContext& ctx) -> sim::Task<Value> {
      // One serial child, then two concurrent children on disjoint keys (the InvokeAll
      // pre/post batching and the concurrent-children replay paths).
      Value sum = co_await ctx.Invoke("add", EncodeInt64(1));
      std::vector<std::pair<std::string, Value>> calls;
      calls.emplace_back("set", "left|L" + ctx.input());
      calls.emplace_back("set", "right|R" + ctx.input());
      std::vector<Value> set = co_await ctx.InvokeAll(std::move(calls));
      co_return sum + "|" + set[0] + "|" + set[1];
    });
  };
  w.reference = [](std::map<std::string, Value>& state, const std::string& function,
                   const Value& input) -> Value {
    HM_CHECK(function == "parent");
    int64_t n = DecodeInt64(state.at("acc")) + 1;
    state["acc"] = EncodeInt64(n);
    state["left"] = "L" + input;
    state["right"] = "R" + input;
    return EncodeInt64(n) + "|" + state["left"] + "|" + state["right"];
  };
  return w;
}

std::vector<Workload> AllWorkloads() {
  return {CounterWorkload(), TransferWorkload(), WorkflowWorkload()};
}

}  // namespace halfmoon::faultcheck
