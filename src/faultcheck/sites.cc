#include "src/faultcheck/sites.h"

#include <algorithm>

namespace halfmoon::faultcheck {

const std::vector<std::string_view>& KnownCrashSites() {
  static const std::vector<std::string_view> kSites = {
      // Halfmoon-read (src/core/protocols.cc, HalfmoonReadRead / HalfmoonReadWrite).
      "hmr.read.before",
      "hmr.read.after",
      "hmr.write.before",
      "hmr.write.after_prelog",
      "hmr.write.after_db",
      "hmr.write.after_log",
      // Halfmoon-write.
      "hmw.read.before",
      "hmw.read.after_db",
      "hmw.read.after_log",
      "hmw.write.before",
      "hmw.write.after_db",
      // Boki.
      "boki.read.before",
      "boki.read.after_db",
      "boki.read.after_log",
      "boki.write.before",
      "boki.write.after_prelog",
      "boki.write.after_db",
      "boki.write.after_log",
      // Unsafe baseline (no fault-tolerance machinery; the negative control).
      "unsafe.read.before",
      "unsafe.write.before",
      "unsafe.write.after_db",
      // Transitional protocol (§5.2, maintained during a switch window).
      "trans.read.before",
      "trans.read.after_db",
      "trans.write.before",
      "trans.write.after_version",
      "trans.write.after_latest",
      "trans.write.after_log",
      // Invoke machinery (src/core/ssf_runtime.cc).
      "invoke.before",
      "invoke.after_prelog",
      "invoke.after_call",
      "invoke.after_postlog",
      "invoke_all.before",
      "invoke_all.after_prelog",
      "invoke_all.after_calls",
      "invoke_all.after_postlog",
      // Online advisor per-object switches (src/core/switch_manager.cc, SwitchObject): the
      // advisor daemon dying before BEGIN / between BEGIN and END (DESIGN.md §11).
      "advisor.fire",
      "advisor.mid_switch",
      // Group-commit rounds (src/sharedlog/append_batcher.cc, via the crash hooks Cluster
      // installs). depart: a protocol append's submitter dies as its round leaves the node —
      // the record still departs and may commit, so the crashed function's retry races the
      // in-flight round (with pipeline_depth > 1, possibly several in-flight rounds).
      // reply: the round commits and the reply arrives, but the function dies processing it.
      "batch.depart",
      "batch.reply",
      // Checkpoint daemon rounds (src/storage/checkpoint.cc, via the crash probe Cluster
      // installs). write: the daemon dies mid-image, its unflushed slice evaporates.
      // install: the manifest is durable but the truncation never ran — both the image and
      // the full journal survive. truncate: the journal prefix is gone but the superseded
      // images were not released. All three must leave recovery exact (DESIGN.md §14).
      "ckpt.write",
      "ckpt.install",
      "ckpt.truncate",
  };
  return kSites;
}

bool IsKnownCrashSite(std::string_view site) {
  const auto& sites = KnownCrashSites();
  return std::find(sites.begin(), sites.end(), site) != sites.end();
}

}  // namespace halfmoon::faultcheck
