#include "src/kvstore/kv_state.h"

#include <utility>

#include "src/common/check.h"
#include "src/storage/checkpoint.h"
#include "src/storage/durability.h"

namespace halfmoon::kvstore {

std::optional<Value> KvState::Get(const std::string& key) const {
  auto it = latest_.find(key);
  if (it == latest_.end()) return std::nullopt;
  return it->second.value;
}

void KvState::Put(SimTime now, const std::string& key, Value value) {
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutStr(&payload, key);
    storage::PutStr(&payload, value);
    JournalFrame(storage::FrameType::kKvPut, std::move(payload));
  }
  auto [it, inserted] = latest_.try_emplace(key);
  if (!inserted) {
    gauge_.Add(now, -LatestEntryBytes(key, it->second.value));
  }
  gauge_.Add(now, LatestEntryBytes(key, value));
  it->second.value = std::move(value);
}

bool KvState::CondPut(SimTime now, const std::string& key, Value value, VersionTuple version) {
  auto it = latest_.find(key);
  // Missing keys carry the zero version; the write applies iff its version is larger.
  VersionTuple stored = it == latest_.end() ? VersionTuple{} : it->second.version;
  if (!(stored < version)) return false;
  // Only applied conditional writes are journaled, so replay re-applies them verbatim.
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutStr(&payload, key);
    storage::PutStr(&payload, value);
    storage::PutU64(&payload, version.cursor_ts);
    storage::PutU64(&payload, version.counter);
    JournalFrame(storage::FrameType::kKvCondPut, std::move(payload));
  }
  if (it == latest_.end()) {
    gauge_.Add(now, LatestEntryBytes(key, value));
    latest_.emplace(key, LatestSlot{std::move(value), version});
    return true;
  }
  gauge_.Add(now, -LatestEntryBytes(key, it->second.value));
  gauge_.Add(now, LatestEntryBytes(key, value));
  it->second.value = std::move(value);
  it->second.version = version;
  return true;
}

std::optional<VersionTuple> KvState::GetVersion(const std::string& key) const {
  auto it = latest_.find(key);
  if (it == latest_.end()) return std::nullopt;
  return it->second.version;
}

void KvState::PutVersioned(SimTime now, ObjectId object, const std::string& version_id,
                           Value value) {
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutU64(&payload, object);
    storage::PutStr(&payload, version_id);
    storage::PutStr(&payload, value);
    JournalFrame(storage::FrameType::kKvPutVersioned, std::move(payload));
  }
  if (object >= versioned_.size()) versioned_.resize(object + 1);
  auto& versions = versioned_[object];
  if (versions.empty()) ++versioned_objects_;
  auto [it, inserted] = versions.try_emplace(version_id);
  if (!inserted) {
    // Idempotent re-write of the same version (a retried SSF re-creating the version it
    // already wrote): replace without double-accounting.
    gauge_.Add(now, -VersionedEntryBytes(version_id, it->second));
  }
  gauge_.Add(now, VersionedEntryBytes(version_id, value));
  it->second = std::move(value);
}

std::optional<Value> KvState::GetVersioned(ObjectId object,
                                           const std::string& version_id) const {
  if (object >= versioned_.size()) return std::nullopt;
  const auto& versions = versioned_[object];
  auto vit = versions.find(version_id);
  if (vit == versions.end()) return std::nullopt;
  return vit->second;
}

bool KvState::DeleteVersioned(SimTime now, ObjectId object, const std::string& version_id) {
  if (object >= versioned_.size()) return false;
  auto& versions = versioned_[object];
  auto vit = versions.find(version_id);
  if (vit == versions.end()) return false;
  // Journaled only when something is actually released (replay asserts the same).
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutU64(&payload, object);
    storage::PutStr(&payload, version_id);
    JournalFrame(storage::FrameType::kKvDeleteVersioned, std::move(payload));
  }
  gauge_.Add(now, -VersionedEntryBytes(version_id, vit->second));
  versions.erase(vit);
  if (versions.empty()) --versioned_objects_;
  return true;
}

size_t KvState::VersionCount(ObjectId object) const {
  return object < versioned_.size() ? versioned_[object].size() : 0;
}

void KvState::ResetVolatile(SimTime now) {
  gauge_.Add(now, -gauge_.CurrentBytes());
  latest_.clear();
  versioned_.clear();
  versioned_objects_ = 0;
  // The journal tail rolled back to the durable frontier with the kill; future mutations
  // re-establish the ack threshold. Zero is always already durable.
  last_journal_offset_ = 0;
}

void KvState::RestoreFrame(SimTime now, storage::FrameType type, storage::Cursor cursor,
                           bool fuzzy) {
  restoring_ = true;
  switch (type) {
    case storage::FrameType::kKvPut: {
      std::string key(cursor.Str());
      Value value(cursor.Str());
      Put(now, key, std::move(value));
      break;
    }
    case storage::FrameType::kKvCondPut: {
      std::string key(cursor.Str());
      Value value(cursor.Str());
      VersionTuple version{cursor.U64(), cursor.U64()};
      bool applied = CondPut(now, key, std::move(value), version);
      // Fuzzy suffix replay: the image may already carry this (or a newer) version — the
      // condition re-rejects it, which is exactly the idempotence we need.
      HM_CHECK_MSG(applied || fuzzy, "journal replay: conditional put no longer applies");
      break;
    }
    case storage::FrameType::kKvPutVersioned: {
      ObjectId object = cursor.U64();
      std::string version_id(cursor.Str());
      Value value(cursor.Str());
      PutVersioned(now, object, version_id, std::move(value));
      break;
    }
    case storage::FrameType::kKvDeleteVersioned: {
      ObjectId object = cursor.U64();
      std::string version_id(cursor.Str());
      bool released = DeleteVersioned(now, object, version_id);
      // Fuzzy: the image may have been snapshotted after this delete already applied.
      HM_CHECK_MSG(released || fuzzy,
                   "journal replay: versioned delete found nothing to release");
      break;
    }
    default:
      HM_CHECK_MSG(false, "journal replay: unexpected frame type in the KV journal");
  }
  restoring_ = false;
}

void KvState::BeginCheckpointWalk() {
  walk_keys_.clear();
  walk_keys_.reserve(latest_.size());
  for (const auto& [key, slot] : latest_) walk_keys_.push_back(key);
  walk_key_idx_ = 0;
  walk_object_ = 0;
  walk_object_limit_ = versioned_.size();
  walk_version_.clear();
  walk_version_valid_ = false;
}

bool KvState::WriteCheckpointSlice(storage::CheckpointStore* store, int64_t budget,
                                   int64_t* frames) {
  int64_t consumed = 0;
  // Latest slots first. The key list was snapshotted at round start (keys are never deleted,
  // and the values/versions read here are whatever the slot holds NOW — fuzziness the replay
  // suffix absorbs).
  while (walk_key_idx_ < walk_keys_.size()) {
    if (consumed >= budget) return false;
    const std::string& key = walk_keys_[walk_key_idx_++];
    auto it = latest_.find(key);
    HM_CHECK_MSG(it != latest_.end(), "checkpoint walk: latest slot vanished");
    std::string payload;
    storage::PutStr(&payload, key);
    storage::PutStr(&payload, it->second.value);
    storage::PutU64(&payload, it->second.version.cursor_ts);
    storage::PutU64(&payload, it->second.version.counter);
    store->AppendFrame(storage::FrameType::kCkptKvLatest, payload);
    ++*frames;
    ++consumed;
  }
  // Then the version index, resumable mid-object: versions can be inserted or GC'd between
  // slices (ordered map, no iterator held across the pause), and objects past the round-start
  // bound are suffix-only.
  while (walk_object_ < walk_object_limit_) {
    const auto& versions = versioned_[walk_object_];
    auto it = walk_version_valid_ ? versions.upper_bound(walk_version_) : versions.begin();
    while (it != versions.end()) {
      if (consumed >= budget) {
        walk_version_ = it->first;
        walk_version_valid_ = true;
        return false;
      }
      std::string payload;
      storage::PutU64(&payload, static_cast<uint64_t>(walk_object_));
      storage::PutStr(&payload, it->first);
      storage::PutStr(&payload, it->second);
      store->AppendFrame(storage::FrameType::kCkptKvVersion, payload);
      ++*frames;
      ++consumed;
      walk_version_ = it->first;
      walk_version_valid_ = true;
      ++it;
    }
    ++walk_object_;
    walk_version_.clear();
    walk_version_valid_ = false;
  }
  return true;
}

void KvState::RestoreCheckpointFrame(SimTime now, storage::FrameType type,
                                     storage::Cursor cursor) {
  switch (type) {
    case storage::FrameType::kCkptKvLatest: {
      std::string key(cursor.Str());
      Value value(cursor.Str());
      VersionTuple version{cursor.U64(), cursor.U64()};
      // Direct slot install: a slot's value (last Put) and version (last applied CondPut)
      // evolve independently, so neither public mutator alone could reproduce it.
      auto [it, inserted] = latest_.try_emplace(key, LatestSlot{std::move(value), version});
      HM_CHECK_MSG(inserted, "checkpoint image installs a latest slot twice");
      gauge_.Add(now, LatestEntryBytes(key, it->second.value));
      break;
    }
    case storage::FrameType::kCkptKvVersion: {
      ObjectId object = cursor.U64();
      std::string version_id(cursor.Str());
      Value value(cursor.Str());
      if (object >= versioned_.size()) versioned_.resize(object + 1);
      auto& versions = versioned_[object];
      if (versions.empty()) ++versioned_objects_;
      auto [it, inserted] = versions.try_emplace(version_id, std::move(value));
      HM_CHECK_MSG(inserted, "checkpoint image installs a version twice");
      gauge_.Add(now, VersionedEntryBytes(version_id, it->second));
      break;
    }
    default:
      HM_CHECK_MSG(false, "unexpected frame type in a KV checkpoint image");
  }
}

void KvState::JournalFrame(storage::FrameType type, std::string payload) {
  last_journal_offset_ = durability_->AppendFrame(type, payload);
}

}  // namespace halfmoon::kvstore
