#include "src/kvstore/kv_state.h"

#include <utility>

#include "src/common/check.h"
#include "src/storage/durability.h"

namespace halfmoon::kvstore {

std::optional<Value> KvState::Get(const std::string& key) const {
  auto it = latest_.find(key);
  if (it == latest_.end()) return std::nullopt;
  return it->second.value;
}

void KvState::Put(SimTime now, const std::string& key, Value value) {
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutStr(&payload, key);
    storage::PutStr(&payload, value);
    JournalFrame(storage::FrameType::kKvPut, std::move(payload));
  }
  auto [it, inserted] = latest_.try_emplace(key);
  if (!inserted) {
    gauge_.Add(now, -LatestEntryBytes(key, it->second.value));
  }
  gauge_.Add(now, LatestEntryBytes(key, value));
  it->second.value = std::move(value);
}

bool KvState::CondPut(SimTime now, const std::string& key, Value value, VersionTuple version) {
  auto it = latest_.find(key);
  // Missing keys carry the zero version; the write applies iff its version is larger.
  VersionTuple stored = it == latest_.end() ? VersionTuple{} : it->second.version;
  if (!(stored < version)) return false;
  // Only applied conditional writes are journaled, so replay re-applies them verbatim.
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutStr(&payload, key);
    storage::PutStr(&payload, value);
    storage::PutU64(&payload, version.cursor_ts);
    storage::PutU64(&payload, version.counter);
    JournalFrame(storage::FrameType::kKvCondPut, std::move(payload));
  }
  if (it == latest_.end()) {
    gauge_.Add(now, LatestEntryBytes(key, value));
    latest_.emplace(key, LatestSlot{std::move(value), version});
    return true;
  }
  gauge_.Add(now, -LatestEntryBytes(key, it->second.value));
  gauge_.Add(now, LatestEntryBytes(key, value));
  it->second.value = std::move(value);
  it->second.version = version;
  return true;
}

std::optional<VersionTuple> KvState::GetVersion(const std::string& key) const {
  auto it = latest_.find(key);
  if (it == latest_.end()) return std::nullopt;
  return it->second.version;
}

void KvState::PutVersioned(SimTime now, ObjectId object, const std::string& version_id,
                           Value value) {
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutU64(&payload, object);
    storage::PutStr(&payload, version_id);
    storage::PutStr(&payload, value);
    JournalFrame(storage::FrameType::kKvPutVersioned, std::move(payload));
  }
  if (object >= versioned_.size()) versioned_.resize(object + 1);
  auto& versions = versioned_[object];
  if (versions.empty()) ++versioned_objects_;
  auto [it, inserted] = versions.try_emplace(version_id);
  if (!inserted) {
    // Idempotent re-write of the same version (a retried SSF re-creating the version it
    // already wrote): replace without double-accounting.
    gauge_.Add(now, -VersionedEntryBytes(version_id, it->second));
  }
  gauge_.Add(now, VersionedEntryBytes(version_id, value));
  it->second = std::move(value);
}

std::optional<Value> KvState::GetVersioned(ObjectId object,
                                           const std::string& version_id) const {
  if (object >= versioned_.size()) return std::nullopt;
  const auto& versions = versioned_[object];
  auto vit = versions.find(version_id);
  if (vit == versions.end()) return std::nullopt;
  return vit->second;
}

bool KvState::DeleteVersioned(SimTime now, ObjectId object, const std::string& version_id) {
  if (object >= versioned_.size()) return false;
  auto& versions = versioned_[object];
  auto vit = versions.find(version_id);
  if (vit == versions.end()) return false;
  // Journaled only when something is actually released (replay asserts the same).
  if (durability_ != nullptr && !restoring_) {
    std::string payload;
    storage::PutU64(&payload, object);
    storage::PutStr(&payload, version_id);
    JournalFrame(storage::FrameType::kKvDeleteVersioned, std::move(payload));
  }
  gauge_.Add(now, -VersionedEntryBytes(version_id, vit->second));
  versions.erase(vit);
  if (versions.empty()) --versioned_objects_;
  return true;
}

size_t KvState::VersionCount(ObjectId object) const {
  return object < versioned_.size() ? versioned_[object].size() : 0;
}

void KvState::ResetVolatile(SimTime now) {
  gauge_.Add(now, -gauge_.CurrentBytes());
  latest_.clear();
  versioned_.clear();
  versioned_objects_ = 0;
  // The journal tail rolled back to the durable frontier with the kill; future mutations
  // re-establish the ack threshold. Zero is always already durable.
  last_journal_offset_ = 0;
}

void KvState::RestoreFrame(SimTime now, storage::FrameType type, storage::Cursor cursor) {
  restoring_ = true;
  switch (type) {
    case storage::FrameType::kKvPut: {
      std::string key(cursor.Str());
      Value value(cursor.Str());
      Put(now, key, std::move(value));
      break;
    }
    case storage::FrameType::kKvCondPut: {
      std::string key(cursor.Str());
      Value value(cursor.Str());
      VersionTuple version{cursor.U64(), cursor.U64()};
      HM_CHECK_MSG(CondPut(now, key, std::move(value), version),
                   "journal replay: conditional put no longer applies");
      break;
    }
    case storage::FrameType::kKvPutVersioned: {
      ObjectId object = cursor.U64();
      std::string version_id(cursor.Str());
      Value value(cursor.Str());
      PutVersioned(now, object, version_id, std::move(value));
      break;
    }
    case storage::FrameType::kKvDeleteVersioned: {
      ObjectId object = cursor.U64();
      std::string version_id(cursor.Str());
      HM_CHECK_MSG(DeleteVersioned(now, object, version_id),
                   "journal replay: versioned delete found nothing to release");
      break;
    }
    default:
      HM_CHECK_MSG(false, "journal replay: unexpected frame type in the KV journal");
  }
  restoring_ = false;
}

void KvState::JournalFrame(storage::FrameType type, std::string payload) {
  last_journal_offset_ = durability_->AppendFrame(type, payload);
}

}  // namespace halfmoon::kvstore
