#include "src/kvstore/kv_state.h"

namespace halfmoon::kvstore {

std::optional<Value> KvState::Get(const std::string& key) const {
  auto it = latest_.find(key);
  if (it == latest_.end()) return std::nullopt;
  return it->second.value;
}

void KvState::Put(SimTime now, const std::string& key, Value value) {
  auto [it, inserted] = latest_.try_emplace(key);
  if (!inserted) {
    gauge_.Add(now, -LatestEntryBytes(key, it->second.value));
  }
  gauge_.Add(now, LatestEntryBytes(key, value));
  it->second.value = std::move(value);
}

bool KvState::CondPut(SimTime now, const std::string& key, Value value, VersionTuple version) {
  auto it = latest_.find(key);
  if (it == latest_.end()) {
    // Missing keys carry the zero version; the write applies iff its version is larger.
    if (!(VersionTuple{} < version)) return false;
    gauge_.Add(now, LatestEntryBytes(key, value));
    latest_.emplace(key, LatestSlot{std::move(value), version});
    return true;
  }
  if (!(it->second.version < version)) return false;
  gauge_.Add(now, -LatestEntryBytes(key, it->second.value));
  gauge_.Add(now, LatestEntryBytes(key, value));
  it->second.value = std::move(value);
  it->second.version = version;
  return true;
}

std::optional<VersionTuple> KvState::GetVersion(const std::string& key) const {
  auto it = latest_.find(key);
  if (it == latest_.end()) return std::nullopt;
  return it->second.version;
}

void KvState::PutVersioned(SimTime now, ObjectId object, const std::string& version_id,
                           Value value) {
  if (object >= versioned_.size()) versioned_.resize(object + 1);
  auto& versions = versioned_[object];
  if (versions.empty()) ++versioned_objects_;
  auto [it, inserted] = versions.try_emplace(version_id);
  if (!inserted) {
    // Idempotent re-write of the same version (a retried SSF re-creating the version it
    // already wrote): replace without double-accounting.
    gauge_.Add(now, -VersionedEntryBytes(version_id, it->second));
  }
  gauge_.Add(now, VersionedEntryBytes(version_id, value));
  it->second = std::move(value);
}

std::optional<Value> KvState::GetVersioned(ObjectId object,
                                           const std::string& version_id) const {
  if (object >= versioned_.size()) return std::nullopt;
  const auto& versions = versioned_[object];
  auto vit = versions.find(version_id);
  if (vit == versions.end()) return std::nullopt;
  return vit->second;
}

bool KvState::DeleteVersioned(SimTime now, ObjectId object, const std::string& version_id) {
  if (object >= versioned_.size()) return false;
  auto& versions = versioned_[object];
  auto vit = versions.find(version_id);
  if (vit == versions.end()) return false;
  gauge_.Add(now, -VersionedEntryBytes(version_id, vit->second));
  versions.erase(vit);
  if (versions.empty()) --versioned_objects_;
  return true;
}

size_t KvState::VersionCount(ObjectId object) const {
  return object < versioned_.size() ? versioned_[object].size() : 0;
}

}  // namespace halfmoon::kvstore
