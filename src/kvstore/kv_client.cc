#include "src/kvstore/kv_client.h"

namespace halfmoon::kvstore {
namespace {

constexpr double kRequestLegFraction = 0.4;
constexpr double kServiceFraction = 0.2;

}  // namespace

sim::Task<void> KvClient::Round(SimDuration total_latency) {
  auto leg = static_cast<SimDuration>(static_cast<double>(total_latency) * kRequestLegFraction);
  auto service =
      static_cast<SimDuration>(static_cast<double>(total_latency) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  co_await scheduler_->Delay(leg);
}

sim::Task<std::optional<Value>> KvClient::Get(std::string key) {
  ++stats_.reads;
  SimDuration total = models_->db_read.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  // Snapshot at the store, before the reply leg: the read's linearization point.
  std::optional<Value> value = state_->Get(key);
  co_await scheduler_->Delay(leg);
  co_return value;
}

sim::Task<std::optional<std::pair<Value, VersionTuple>>> KvClient::GetWithVersion(
    std::string key) {
  ++stats_.reads;
  SimDuration total = models_->db_read.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  std::optional<std::pair<Value, VersionTuple>> result;
  std::optional<Value> value = state_->Get(key);
  if (value.has_value()) {
    result.emplace(std::move(*value), state_->GetVersion(key).value_or(VersionTuple{}));
  }
  co_await scheduler_->Delay(leg);
  co_return result;
}

sim::Task<void> KvClient::Put(std::string key, Value value) {
  ++stats_.plain_writes;
  SimDuration total = models_->db_plain_write.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  // The write becomes visible when the store applies it, before the reply reaches the caller.
  state_->Put(scheduler_->Now(), std::move(key), std::move(value));
  co_await scheduler_->Delay(leg);
}

sim::Task<bool> KvClient::CondPut(std::string key, Value value, VersionTuple version) {
  ++stats_.cond_writes;
  SimDuration total = models_->db_cond_write.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  bool applied = state_->CondPut(scheduler_->Now(), std::move(key), std::move(value), version);
  if (!applied) ++stats_.cond_write_rejects;
  co_await scheduler_->Delay(leg);
  co_return applied;
}

sim::Task<void> KvClient::PutVersioned(ObjectId object, std::string version_id, Value value) {
  ++stats_.versioned_writes;
  SimDuration total = models_->db_plain_write.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  state_->PutVersioned(scheduler_->Now(), object, std::move(version_id), std::move(value));
  co_await scheduler_->Delay(leg);
}

sim::Task<std::optional<Value>> KvClient::GetVersioned(ObjectId object,
                                                       std::string version_id) {
  ++stats_.versioned_reads;
  SimDuration total = models_->db_read.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  std::optional<Value> value = state_->GetVersioned(object, version_id);
  co_await scheduler_->Delay(leg);
  co_return value;
}

sim::Task<bool> KvClient::DeleteVersioned(ObjectId object, std::string version_id) {
  ++stats_.deletes;
  SimDuration total = models_->db_plain_write.Sample(*rng_);
  co_await Round(total);
  co_return state_->DeleteVersioned(scheduler_->Now(), object, std::move(version_id));
}

}  // namespace halfmoon::kvstore
