#include "src/kvstore/kv_client.h"

#include "src/storage/durability.h"

namespace halfmoon::kvstore {
namespace {

constexpr double kRequestLegFraction = 0.4;
constexpr double kServiceFraction = 0.2;

}  // namespace

sim::Task<void> KvClient::Round(SimDuration total_latency) {
  auto leg = static_cast<SimDuration>(static_cast<double>(total_latency) * kRequestLegFraction);
  auto service =
      static_cast<SimDuration>(static_cast<double>(total_latency) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  co_await scheduler_->Delay(leg);
}

sim::Task<void> KvClient::AwaitDurable(std::string_view site) {
  bool ok = co_await durability_->WaitOffset(state_->last_journal_offset());
  // A failed wait means a kill destroyed the journaled mutation (and with it the whole
  // volatile KV state). The attempt must not ack the write — abort it into the retry loop.
  if (!ok && crash_thrower_) crash_thrower_(site);
}

sim::Task<std::optional<Value>> KvClient::Get(std::string key) {
  ++stats_.reads;
  SimDuration total = models_->db_read.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  // Snapshot at the store, before the reply leg: the read's linearization point.
  std::optional<Value> value = state_->Get(key);
  co_await scheduler_->Delay(leg);
  co_return value;
}

sim::Task<std::optional<std::pair<Value, VersionTuple>>> KvClient::GetWithVersion(
    std::string key) {
  ++stats_.reads;
  SimDuration total = models_->db_read.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  std::optional<std::pair<Value, VersionTuple>> result;
  std::optional<Value> value = state_->Get(key);
  if (value.has_value()) {
    result.emplace(std::move(*value), state_->GetVersion(key).value_or(VersionTuple{}));
  }
  co_await scheduler_->Delay(leg);
  co_return result;
}

sim::Task<void> KvClient::Put(std::string key, Value value) {
  ++stats_.plain_writes;
  SimDuration total = models_->db_plain_write.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  // The write becomes visible when the store applies it, before the reply reaches the caller.
  state_->Put(scheduler_->Now(), std::move(key), std::move(value));
  if (durability_ != nullptr) co_await AwaitDurable("kv.put");
  co_await scheduler_->Delay(leg);
}

sim::Task<bool> KvClient::CondPut(std::string key, Value value, VersionTuple version) {
  ++stats_.cond_writes;
  SimDuration total = models_->db_cond_write.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  bool applied = state_->CondPut(scheduler_->Now(), std::move(key), std::move(value), version);
  if (!applied) ++stats_.cond_write_rejects;
  // Rejected conditional writes mutate (and journal) nothing — nothing to wait for.
  if (applied && durability_ != nullptr) co_await AwaitDurable("kv.cond_put");
  co_await scheduler_->Delay(leg);
  co_return applied;
}

sim::Task<void> KvClient::PutVersioned(ObjectId object, std::string version_id, Value value) {
  ++stats_.versioned_writes;
  SimDuration total = models_->db_plain_write.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  state_->PutVersioned(scheduler_->Now(), object, std::move(version_id), std::move(value));
  if (durability_ != nullptr) co_await AwaitDurable("kv.put_versioned");
  co_await scheduler_->Delay(leg);
}

sim::Task<std::optional<Value>> KvClient::GetVersioned(ObjectId object,
                                                       std::string version_id) {
  ++stats_.versioned_reads;
  SimDuration total = models_->db_read.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  auto service = static_cast<SimDuration>(static_cast<double>(total) * kServiceFraction);
  co_await scheduler_->Delay(leg);
  if (station_ != nullptr) {
    co_await station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
  std::optional<Value> value = state_->GetVersioned(object, version_id);
  co_await scheduler_->Delay(leg);
  co_return value;
}

sim::Task<bool> KvClient::DeleteVersioned(ObjectId object, std::string version_id) {
  ++stats_.deletes;
  SimDuration total = models_->db_plain_write.Sample(*rng_);
  co_await Round(total);
  bool deleted = state_->DeleteVersioned(scheduler_->Now(), object, std::move(version_id));
  if (deleted && durability_ != nullptr) co_await AwaitDurable("kv.delete_versioned");
  co_return deleted;
}

}  // namespace halfmoon::kvstore
