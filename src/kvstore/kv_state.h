// The external state: a key-value store with DynamoDB-flavoured semantics.
//
// Three facilities, exactly what the protocols need (§4.1, §4.2, §5.2):
//   * plain Get/Put on a single-version "LATEST" slot per key,
//   * conditional Put that applies only if the stored version tuple is smaller
//     (DynamoDB conditional update, used by Halfmoon-write and by Boki),
//   * multi-version storage layered over plain KV where each version is a separate
//     subkey (used by Halfmoon-read; version numbers are unordered pointers — the
//     write log defines the order).
//
// KvState is pure state; latency/queueing live in KvClient.

#ifndef HALFMOON_KVSTORE_KV_STATE_H_
#define HALFMOON_KVSTORE_KV_STATE_H_

#include <compare>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/common/value.h"
#include "src/metrics/storage_sampler.h"
#include "src/storage/journal.h"

namespace halfmoon::storage {
class CheckpointStore;
class DurabilityService;
}  // namespace halfmoon::storage

namespace halfmoon::kvstore {

// Handle of a multi-version object: the interned id of its write-log tag ("k:<key>").
// Kept as a plain integer alias so the KV layer stays independent of the shared log.
using ObjectId = uint64_t;

// Version tuple for conditional updates: (cursorTS, consecutive-write counter), compared
// lexicographically (§4.2). Fresh objects carry the zero version, smaller than any write.
struct VersionTuple {
  uint64_t cursor_ts = 0;
  uint64_t counter = 0;

  auto operator<=>(const VersionTuple&) const = default;
};

class KvState {
 public:
  KvState() = default;
  KvState(const KvState&) = delete;
  KvState& operator=(const KvState&) = delete;

  // ---- Single-version (LATEST) slot ----

  std::optional<Value> Get(const std::string& key) const;

  // Unconditional write; leaves the stored version tuple untouched.
  void Put(SimTime now, const std::string& key, Value value);

  // Conditional write: applies iff the stored version is strictly smaller than `version`
  // (missing keys count as version zero). Returns whether the update was applied.
  bool CondPut(SimTime now, const std::string& key, Value value, VersionTuple version);

  std::optional<VersionTuple> GetVersion(const std::string& key) const;

  // ---- Multi-version objects ----
  //
  // Versioned storage is keyed by the object's interned write-log tag id rather than its
  // string key: the protocols already hold the TagId for "k:<key>" (they append the commit
  // record under it), so the version index costs an integer hash per access and never
  // re-hashes the key string.

  void PutVersioned(SimTime now, ObjectId object, const std::string& version_id, Value value);
  std::optional<Value> GetVersioned(ObjectId object, const std::string& version_id) const;
  bool DeleteVersioned(SimTime now, ObjectId object, const std::string& version_id);
  size_t VersionCount(ObjectId object) const;

  int64_t CurrentBytes() const { return gauge_.CurrentBytes(); }
  metrics::StorageGauge& gauge() { return gauge_; }

  size_t key_count() const { return latest_.size(); }

  // Objects currently holding at least one version (the flat index can be longer).
  size_t versioned_object_count() const { return versioned_objects_; }

  // ---- Durable medium + crash-restart recovery (DESIGN.md §13) ----

  // Attaches the durability service: every applied mutation journals a kKv* frame before the
  // client's reply leg fires (the write-ahead gate lives in KvClient). Null detaches.
  void AttachDurability(storage::DurabilityService* svc) { durability_ = svc; }

  // Journal offset one past the most recently journaled mutation — the threshold KvClient
  // hands to WaitOffset before acknowledging a write externally.
  uint64_t last_journal_offset() const { return last_journal_offset_; }

  // Drops everything a node loss destroys: both version indices and the gauge's current
  // bytes. The journal itself lives in the durability service and survives.
  void ResetVolatile(SimTime now);

  // Re-applies one replayed kKv* journal frame without re-journaling it. In strict mode
  // (full replay) restore order is append order, so replayed CondPuts re-apply
  // unconditionally and versioned deletes always find their victim — they were journaled
  // only when they applied (asserted). In fuzzy mode (replay-suffix on top of a checkpoint
  // image, DESIGN.md §14) the image may already reflect the frame: a CondPut whose version
  // is no longer newer and a delete that finds nothing are silently absorbed.
  void RestoreFrame(SimTime now, storage::FrameType type, storage::Cursor cursor,
                    bool fuzzy = false);

  // ---- Incremental checkpointing (DESIGN.md §14) ----
  // The walk snapshots the key list (latest slots) and the versioned-object bound at round
  // start, then emits one frame per latest slot / stored version across bounded slices.
  // Keys and versions written after round start are covered by the replay suffix either way,
  // so the fuzzy image + suffix composition is exact.
  void BeginCheckpointWalk();
  // Emits roughly `budget` image frames; returns true once the walk is complete. *frames
  // counts frames appended by this slice.
  bool WriteCheckpointSlice(storage::CheckpointStore* store, int64_t budget, int64_t* frames);

  // Image-restore installers (kCkptKvLatest / kCkptKvVersion frames).
  void RestoreCheckpointFrame(SimTime now, storage::FrameType type, storage::Cursor cursor);

 private:
  struct LatestSlot {
    Value value;
    VersionTuple version;
  };

  static int64_t LatestEntryBytes(const std::string& key, const Value& value) {
    return static_cast<int64_t>(key.size() + value.size() + sizeof(VersionTuple));
  }
  static int64_t VersionedEntryBytes(const std::string& version_id, const Value& value) {
    return static_cast<int64_t>(sizeof(ObjectId) + version_id.size() + value.size());
  }

  void JournalFrame(storage::FrameType type, std::string payload);

  std::unordered_map<std::string, LatestSlot> latest_;
  // object -> version_id -> value, indexed by ObjectId. Interned tag ids are dense, so the
  // outer level is a flat vector (grown on first write to an object) instead of a hash map:
  // a versioned access costs one bounds-checked index, no hashing at either level's outer
  // step. Ordered inner map for deterministic iteration in tests/GC.
  std::vector<std::map<std::string, Value>> versioned_;
  size_t versioned_objects_ = 0;  // Objects currently holding at least one version.
  metrics::StorageGauge gauge_;

  storage::DurabilityService* durability_ = nullptr;
  uint64_t last_journal_offset_ = 0;
  bool restoring_ = false;  // Suppresses journaling while RestoreFrame re-applies mutations.

  // Checkpoint-walk cursor (valid between BeginCheckpointWalk and the slice returning true).
  std::vector<std::string> walk_keys_;  // Latest-slot keys snapshotted at round start.
  size_t walk_key_idx_ = 0;
  size_t walk_object_ = 0;        // Next versioned object to (re)visit.
  size_t walk_object_limit_ = 0;  // versioned_.size() at round start.
  std::string walk_version_;      // Last version emitted of walk_object_ (resume point).
  bool walk_version_valid_ = false;
};

}  // namespace halfmoon::kvstore

#endif  // HALFMOON_KVSTORE_KV_STATE_H_
