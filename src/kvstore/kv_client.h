// Latency-modelled client of the external state, one per function node.
//
// Op latencies are calibrated to Table 1 of the paper (DynamoDB): reads 1.88/4.60 ms,
// conditional writes 2.47/5.86 ms (median/p99); plain writes are cheaper, which is why the
// paper's unsafe baseline beats Halfmoon-write's log-free-but-conditional writes (§6.1).
// A shared ServiceStation models the store's finite capacity.

#ifndef HALFMOON_KVSTORE_KV_CLIENT_H_
#define HALFMOON_KVSTORE_KV_CLIENT_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/kvstore/kv_state.h"
#include "src/sim/scheduler.h"
#include "src/sim/service_station.h"
#include "src/sim/task.h"

namespace halfmoon::storage {
class DurabilityService;
}  // namespace halfmoon::storage

namespace halfmoon::kvstore {

struct KvClientStats {
  int64_t reads = 0;
  int64_t plain_writes = 0;
  int64_t cond_writes = 0;
  int64_t cond_write_rejects = 0;
  int64_t versioned_reads = 0;
  int64_t versioned_writes = 0;
  int64_t deletes = 0;
};

class KvClient {
 public:
  KvClient(sim::Scheduler* scheduler, Rng* rng, const LatencyModels* models, KvState* state,
           sim::ServiceStation* station)
      : scheduler_(scheduler), rng_(rng), models_(models), state_(state), station_(station) {}

  sim::Task<std::optional<Value>> Get(std::string key);
  // Read that also returns the stored version tuple, used by the transitional protocol and by
  // post-switch dual reads to compare the freshness of the LATEST slot against the write log
  // (§5.2).
  sim::Task<std::optional<std::pair<Value, VersionTuple>>> GetWithVersion(std::string key);
  sim::Task<void> Put(std::string key, Value value);
  sim::Task<bool> CondPut(std::string key, Value value, VersionTuple version);

  sim::Task<void> PutVersioned(ObjectId object, std::string version_id, Value value);
  sim::Task<std::optional<Value>> GetVersioned(ObjectId object, std::string version_id);
  sim::Task<bool> DeleteVersioned(ObjectId object, std::string version_id);

  const KvClientStats& stats() const { return stats_; }

  // Write-ahead gate (DESIGN.md §13): with a durability service attached, every applied
  // mutation waits for its journal frame to become durable before the reply leg fires, so the
  // caller never observes an acknowledged-but-volatile write.
  void SetDurability(storage::DurabilityService* durability) { durability_ = durability; }

  // Invoked when a kill destroys a mutation this client was waiting on. KvClient runs only
  // inside function attempts, so the hook unconditionally aborts the attempt (the runtime's
  // retry loop re-executes it against the rolled-back state).
  void InstallCrashHook(std::function<void(std::string_view)> thrower) {
    crash_thrower_ = std::move(thrower);
  }

 private:
  // Round trip: request leg, station occupancy, `body` at the store, reply leg.
  sim::Task<void> Round(SimDuration total_latency);
  // Waits for the most recent journal frame; aborts the attempt if a kill wiped it.
  sim::Task<void> AwaitDurable(std::string_view site);

  sim::Scheduler* scheduler_;
  Rng* rng_;
  const LatencyModels* models_;
  KvState* state_;
  sim::ServiceStation* station_;
  storage::DurabilityService* durability_ = nullptr;
  std::function<void(std::string_view)> crash_thrower_;
  KvClientStats stats_;
};

}  // namespace halfmoon::kvstore

#endif  // HALFMOON_KVSTORE_KV_CLIENT_H_
