#include "src/storage/block_device.h"

#include <cstring>

#include "src/common/check.h"

namespace halfmoon::storage {

void BlockDevice::WriteBlocks(uint64_t offset, std::string_view data) {
  HM_CHECK_MSG(offset % kBlockSize == 0, "unaligned block write");
  if (data.empty()) return;
  uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(end);
  std::memcpy(data_.data() + offset, data.data(), data.size());
  int64_t blocks = static_cast<int64_t>((data.size() + kBlockSize - 1) / kBlockSize);
  stats_.block_writes += blocks;
  stats_.bytes_written += blocks * static_cast<int64_t>(kBlockSize);
}

std::string_view BlockDevice::Read(uint64_t offset, uint64_t n) const {
  HM_CHECK_MSG(offset + n <= data_.size(), "device read past the durable end");
  return std::string_view(data_).substr(offset, n);
}

}  // namespace halfmoon::storage
