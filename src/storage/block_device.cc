#include "src/storage/block_device.h"

#include <cstring>

#include "src/common/check.h"

namespace halfmoon::storage {

void BlockDevice::WriteBlocks(uint64_t offset, std::string_view data) {
  HM_CHECK_MSG(offset % kBlockSize == 0, "unaligned block write");
  HM_CHECK_MSG(offset >= base_, "block write below the truncated base");
  if (data.empty()) return;
  uint64_t end = offset + data.size();
  if (end > size()) data_.resize(end - base_);
  std::memcpy(data_.data() + (offset - base_), data.data(), data.size());
  int64_t blocks = static_cast<int64_t>((data.size() + kBlockSize - 1) / kBlockSize);
  stats_.block_writes += blocks;
  stats_.bytes_written += blocks * static_cast<int64_t>(kBlockSize);
}

std::string_view BlockDevice::Read(uint64_t offset, uint64_t n) const {
  HM_CHECK_MSG(offset >= base_, "device read below the truncated base");
  HM_CHECK_MSG(offset + n <= size(), "device read past the durable end");
  return std::string_view(data_).substr(offset - base_, n);
}

uint64_t BlockDevice::TruncatePrefix(uint64_t offset) {
  uint64_t aligned = (offset / kBlockSize) * kBlockSize;
  if (aligned <= base_) return 0;
  HM_CHECK_MSG(aligned <= size(), "prefix truncation past the device end");
  uint64_t freed = aligned - base_;
  data_.erase(0, freed);
  data_.shrink_to_fit();
  base_ = aligned;
  stats_.bytes_dropped += static_cast<int64_t>(freed);
  return freed;
}

}  // namespace halfmoon::storage
