// Incremental checkpointing + journal compaction (DESIGN.md §14).
//
// The journal (durability.h) replays the whole history on restart, so time-to-recover and
// on-disk footprint grow with history even when live state is tiny. The checkpoint subsystem
// bounds both by live state: a background CheckpointService walks the live indices in bounded
// slices, writes a *fuzzy* image of them into a sibling CheckpointStore while foreground
// traffic keeps acking, stamps a manifest `(cut, durable watermark)` once everything the image
// could contain is durable, and then truncates the journal prefix below the cut. Recovery
// becomes load-image + replay-suffix: install the newest *valid* image, then replay only the
// journal frames at or above its cut — idempotently, because the image may already reflect a
// prefix of them (that is what "fuzzy" costs, and all restore paths are written to absorb it).
//
// Torn-tail safety is inherited from the frame codec: a manifest is one frame, so a crash
// mid-checkpoint leaves either no manifest (the partial image is unreferenced garbage, later
// truncated away) or a whole one. A manifest is only appended after the journal covers the
// image (WaitOffset on the walk-end tail), so "manifest durable" implies "image contents
// journal-covered": the newest valid manifest is always safe to install. Corrupt or torn
// images are detected by the FNV checksum + frame count and skipped — recovery falls back to
// the previous manifest, or to full replay when the journal was never truncated.

#ifndef HALFMOON_STORAGE_CHECKPOINT_H_
#define HALFMOON_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/storage/block_buffer.h"
#include "src/storage/block_device.h"
#include "src/storage/durability.h"
#include "src/storage/journal.h"

namespace halfmoon::storage {

// Manifest domains: one checkpoint store per journal, same split as the durability tier.
inline constexpr uint8_t kCkptLogDomain = 0;
inline constexpr uint8_t kCkptKvDomain = 1;

// The sibling checkpoint device: an append-only frame store holding checkpoint images. Like
// the journal it is a block buffer over its own block device — image bytes are paid for in
// whole blocks and only the flushed prefix survives a kill.
class CheckpointStore {
 public:
  CheckpointStore() : buffer_(&device_) {}
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  uint64_t AppendFrame(FrameType type, std::string_view payload) {
    return storage::AppendFrame(&buffer_, type, payload);
  }
  void Flush() { buffer_.FlushTo(buffer_.tail()); }
  // Simulated node loss: the unflushed tail dies, the durable prefix survives.
  void DropVolatile() { buffer_.DropVolatile(); }
  // Releases superseded images below the newest installed image's start.
  uint64_t TruncatePrefix(uint64_t offset) { return buffer_.TruncatePrefix(offset); }

  uint64_t tail() const { return buffer_.tail(); }
  uint64_t durable() const { return buffer_.durable(); }
  uint64_t retained() const { return buffer_.retained(); }
  const BlockBuffer& buffer() const { return buffer_; }
  const BlockDevice& device() const { return device_; }

  // Flips one durable byte in place (a simulated latent media error) so tests can prove
  // recovery detects a corrupt image and falls back.
  void CorruptDurableByteForTest(uint64_t offset);

 private:
  BlockDevice device_;
  BlockBuffer buffer_;
};

// The kCkptManifest frame payload. `cut` is the journal offset the image covers: recovery
// installs the image and replays journal frames in [cut, durable). `watermark_floor` is the
// journal's durable seqnum watermark at manifest time — the restored allocator must resume at
// or above it even if the suffix replays no record (e.g. the newest records were trimmed).
struct CheckpointManifest {
  uint8_t domain = 0;
  uint64_t cut = 0;
  uint64_t image_start = 0;     // Store offset of the image's first frame.
  uint64_t frame_count = 0;     // State frames between image_start and this manifest.
  uint64_t checksum = 0;        // FNV-1a over the store bytes [image_start, manifest frame).
  uint64_t watermark_floor = 0;
};

std::string EncodeManifest(const CheckpointManifest& m);
CheckpointManifest DecodeManifest(Cursor cursor);

// A validated manifest plus where its frame starts (= one past the image region).
struct InstalledManifest {
  CheckpointManifest manifest;
  uint64_t image_end = 0;
};

// FNV-1a over the store's durable bytes [from, upto) — the image checksum.
uint64_t ChecksumImage(const CheckpointStore& store, uint64_t from, uint64_t upto);

// Scans the store's durable frames for the NEWEST manifest of `domain` whose image region is
// intact: checksum matches, the frame count matches, and the region was not truncated away.
// Invalid newer manifests are skipped (counted in *rejected when non-null). Returns false
// when no valid manifest exists — the caller must fall back to full journal replay.
bool FindLatestValidManifest(const CheckpointStore& store, uint8_t domain,
                             InstalledManifest* out, int* rejected = nullptr);

// Invokes `fn` for every state frame of a validated image, in the order they were written
// (record bodies strictly before the streams that reference them).
void ReplayImage(const CheckpointStore& store, const InstalledManifest& m,
                 const std::function<void(FrameType, Cursor)>& fn);

// The background checkpoint daemon. One round walks every registered target: snapshot the
// journal cut, emit the live-state image in bounded slices (yielding between slices so
// foreground traffic keeps acking — the image is fuzzy), wait for the journal to cover the
// walk, stamp the manifest, truncate the journal below the cut and the store below the new
// image. Rounds are driven explicitly (TriggerRound — the fault explorer's `ckpt@<hit>`
// arming) or by journal growth (MaybeAutoTrigger from the cluster's commit path); the service
// never spawns free-running timers, so a drained scheduler stays drainable.
//
// Like the DurabilityService, the service draws its pacing samples from its OWN derived RNG
// stream (a distinct salt) so constructing it never perturbs the main simulation stream, and
// HM_CHECKPOINT=0 — which never constructs one — stays bit-identical to the PR 9 engine.
class CheckpointService {
 public:
  struct Target {
    uint8_t domain = kCkptLogDomain;
    DurabilityService* journal = nullptr;
    CheckpointStore* store = nullptr;
    // Resets the walk cursor for a fresh round.
    std::function<void()> begin_walk;
    // Appends at most ~`budget` items' worth of image frames; returns true when the walk is
    // complete. `*frames` reports how many frames the slice appended.
    std::function<bool(CheckpointStore* store, int64_t budget, int64_t* frames)> write_slice;
    // The journal's durable seqnum watermark (stamped into the manifest; log domain).
    std::function<uint64_t()> watermark_floor;
  };

  struct Stats {
    int64_t rounds_started = 0;
    int64_t rounds_completed = 0;
    int64_t rounds_abandoned = 0;  // Crash-site hits, failed waits, kills mid-round.
    int64_t slices = 0;
    int64_t image_frames = 0;
    int64_t manifests_written = 0;
    int64_t journal_bytes_truncated = 0;
    int64_t store_bytes_truncated = 0;
  };

  CheckpointService(sim::Scheduler* scheduler, const LatencyModels* models, uint64_t seed)
      : scheduler_(scheduler), models_(models), rng_(seed ^ 0xA24BAED4963EE407ull) {}
  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  void AddTarget(Target target) { targets_.push_back(std::move(target)); }

  // Faultcheck probe: consulted at ckpt.write / ckpt.install / ckpt.truncate. Returning true
  // models the daemon crashing there — the round is abandoned (its unflushed bytes die; a
  // durable manifest, if already stamped, simply stands without its truncation).
  void InstallCrashProbe(std::function<bool(const char*)> probe) { probe_ = std::move(probe); }

  // Records per slice before yielding; bounds how long the walk blocks foreground traffic.
  void SetSliceBudget(int64_t budget) { slice_budget_ = budget; }
  // Auto-trigger threshold: a round starts whenever the journals grew this many bytes since
  // the last round began (0 disables; rounds are then explicit).
  void SetAutoTriggerBytes(int64_t bytes) { auto_trigger_bytes_ = bytes; }

  // Starts one round over all targets unless one is already in flight. Returns whether a
  // round was started.
  bool TriggerRound();
  // Called from the commit path: starts a round when the journals grew past the threshold.
  void MaybeAutoTrigger();

  // Node loss: abandons the in-flight round and drops every store's volatile tail. The
  // durable images and manifests survive for recovery.
  void Kill();

  bool RoundInFlight() const { return inflight_; }
  // GC clamp (DESIGN.md §14): while a round walks the indices, GC must not trim past the
  // watermark the walk started from. Max seqnum when idle.
  uint64_t CheckpointBound() const;

  const Stats& stats() const { return stats_; }

 private:
  sim::Task<void> RunRound(uint64_t epoch);
  // Checkpoints one target; returns false when the round must abandon (crash site hit,
  // failed durability wait, or a kill bumped the epoch).
  sim::Task<bool> CheckpointTarget(Target* target, uint64_t epoch);
  bool Probe(const char* site) { return probe_ != nullptr && probe_(site); }
  int64_t TotalJournalBytes() const;

  sim::Scheduler* scheduler_;
  const LatencyModels* models_;
  Rng rng_;
  std::vector<Target> targets_;
  std::function<bool(const char*)> probe_;

  int64_t slice_budget_ = 4096;
  int64_t auto_trigger_bytes_ = 0;
  int64_t last_trigger_bytes_ = 0;

  uint64_t epoch_ = 0;  // Bumped by Kill(); a stale round sees the mismatch and dies.
  bool inflight_ = false;
  uint64_t inflight_floor_ = 0;  // Log watermark at round start, valid while inflight_.
  Stats stats_;
};

}  // namespace halfmoon::storage

#endif  // HALFMOON_STORAGE_CHECKPOINT_H_
