#include "src/storage/journal.h"

namespace halfmoon::storage {

uint64_t AppendFrame(BlockBuffer* buffer, FrameType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU8(&frame, static_cast<uint8_t>(type));
  frame.append(payload);
  buffer->Append(frame);
  return buffer->tail();
}

void ReplayFrames(const BlockBuffer& buffer, uint64_t from, uint64_t upto,
                  const std::function<void(FrameType, Cursor)>& fn) {
  uint64_t off = from;
  while (off + kFrameHeaderBytes <= upto) {
    Cursor header(buffer.ReadDurable(off, kFrameHeaderBytes));
    uint64_t len = header.U32();
    FrameType type = static_cast<FrameType>(header.U8());
    if (off + kFrameHeaderBytes + len > upto) break;  // Torn tail frame.
    fn(type, Cursor(buffer.ReadDurable(off + kFrameHeaderBytes, len)));
    off += kFrameHeaderBytes + len;
  }
}

}  // namespace halfmoon::storage
