#include "src/storage/durability.h"

#include "src/common/check.h"

namespace halfmoon::storage {

uint64_t DurabilityService::AppendFrame(FrameType type, std::string_view payload) {
  uint64_t end = storage::AppendFrame(&buffer_, type, payload);
  ++stats_.frames;
  stats_.appended_bytes += static_cast<int64_t>(kFrameHeaderBytes + payload.size());
  MaybeStartFlush();
  return end;
}

void DurabilityService::NoteCommit(uint64_t seqnum, uint64_t end_offset) {
  if (!pending_commits_.empty()) {
    HM_CHECK_MSG(seqnum > pending_commits_.back().first &&
                     end_offset >= pending_commits_.back().second,
                 "commits must be noted in append order");
  }
  HM_CHECK(seqnum > durable_seq_);
  pending_commits_.emplace_back(seqnum, end_offset);
}

void DurabilityService::WhenDurable(uint64_t seqnum, std::function<void()> fn) {
  if (SeqDurable(seqnum)) {
    fn();
    return;
  }
  if (!callbacks_.empty()) {
    HM_CHECK_MSG(seqnum >= callbacks_.back().first,
                 "WhenDurable registrations must arrive in commit order");
  }
  callbacks_.emplace_back(seqnum, std::move(fn));
}

void DurabilityService::AddWaiter(Waiter* w) {
  w->next = nullptr;
  if (waiters_tail_ == nullptr) {
    waiters_head_ = waiters_tail_ = w;
  } else {
    waiters_tail_->next = w;
    waiters_tail_ = w;
  }
}

void DurabilityService::MaybeStartFlush() {
  if (flush_inflight_ || buffer_.tail() == buffer_.durable()) return;
  flush_inflight_ = true;
  scheduler_->Spawn(FlushLoop(epoch_));
}

sim::Task<void> DurabilityService::FlushLoop(uint64_t epoch) {
  while (true) {
    // Snapshot the tail, then pay one flush. Frames appended while the flush is in flight are
    // beyond the snapshot and ride the next round — the natural group-flush.
    uint64_t target = buffer_.tail();
    co_await scheduler_->Delay(models_->durable_flush.Sample(rng_));
    if (epoch != epoch_) co_return;  // Killed mid-flush: the write never reached the device.
    buffer_.FlushTo(target);
    ++stats_.flushes;
    AdvanceDurable();
    if (buffer_.durable() == buffer_.tail()) {
      flush_inflight_ = false;
      co_return;
    }
  }
}

void DurabilityService::AdvanceDurable() {
  while (!pending_commits_.empty() && pending_commits_.front().second <= buffer_.durable()) {
    durable_seq_ = pending_commits_.front().first;
    pending_commits_.pop_front();
  }
  // Resume satisfied waiters in registration order. Extraction happens before any resume so a
  // resumed coroutine registering a NEW waiter never perturbs this walk.
  Waiter* satisfied_head = nullptr;
  Waiter* satisfied_tail = nullptr;
  Waiter* remaining_head = nullptr;
  Waiter* remaining_tail = nullptr;
  for (Waiter* w = waiters_head_; w != nullptr;) {
    Waiter* next = w->next;
    w->next = nullptr;
    bool done = w->by_seq ? SeqDurable(w->threshold) : buffer_.durable() >= w->threshold;
    Waiter*& head = done ? satisfied_head : remaining_head;
    Waiter*& tail = done ? satisfied_tail : remaining_tail;
    if (tail == nullptr) {
      head = tail = w;
    } else {
      tail->next = w;
      tail = w;
    }
    w = next;
  }
  waiters_head_ = remaining_head;
  waiters_tail_ = remaining_tail;
  for (Waiter* w = satisfied_head; w != nullptr;) {
    Waiter* next = w->next;
    scheduler_->PostResume(0, w->handle);
    w = next;
  }
  while (!callbacks_.empty() && SeqDurable(callbacks_.front().first)) {
    std::function<void()> fn = std::move(callbacks_.front().second);
    callbacks_.pop_front();
    fn();
  }
}

void DurabilityService::Kill() {
  ++epoch_;
  flush_inflight_ = false;
  buffer_.DropVolatile();
  // Remaining commit notes all sit past the durable frontier (AdvanceDurable pops the rest).
  pending_commits_.clear();
  stats_.dropped_callbacks += static_cast<int64_t>(callbacks_.size());
  callbacks_.clear();
  Waiter* w = waiters_head_;
  waiters_head_ = waiters_tail_ = nullptr;
  while (w != nullptr) {
    Waiter* next = w->next;
    w->next = nullptr;
    w->ok = false;
    ++stats_.failed_waits;
    scheduler_->PostResume(0, w->handle);
    w = next;
  }
  ++stats_.kills;
}

}  // namespace halfmoon::storage
