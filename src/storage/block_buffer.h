// Write-back buffer cache over the block device.
//
// Appends land in a volatile in-memory tail; FlushTo pushes a prefix of that tail down to the
// device in aligned blocks, re-writing the partial block straddling the durable frontier (the
// classic small-write amplification of an append-only journal on a block medium). A node kill
// drops the volatile tail — DropVolatile — leaving exactly the device-backed durable prefix.
// Compaction may release a durable prefix — TruncatePrefix — freeing its blocks while keeping
// every surviving offset logical (nothing renumbers).

#ifndef HALFMOON_STORAGE_BLOCK_BUFFER_H_
#define HALFMOON_STORAGE_BLOCK_BUFFER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/storage/block_device.h"

namespace halfmoon::storage {

class BlockBuffer {
 public:
  explicit BlockBuffer(BlockDevice* device) : device_(device) {}
  BlockBuffer(const BlockBuffer&) = delete;
  BlockBuffer& operator=(const BlockBuffer&) = delete;

  // Appends bytes to the volatile tail; returns the logical offset of the first byte.
  uint64_t Append(std::string_view bytes);

  // Logical end of the buffer (durable prefix + volatile tail).
  uint64_t tail() const { return base_ + data_.size(); }
  // End of the durable prefix: everything below this offset survives a kill.
  uint64_t durable() const { return durable_; }
  // First retained logical offset: the caller's truncation point (a frame boundary for
  // journals); bytes below it have been released. 0 until the first truncation.
  uint64_t retained() const { return retained_; }

  // Flushes [durable(), min(upto, tail())) to the device, whole blocks at a time. The block
  // containing the old frontier is re-written in full — that rewrite is the amplification the
  // group-flush in durability.cc amortizes.
  void FlushTo(uint64_t upto);

  // Simulated power loss: discards the volatile tail. The durable prefix is untouched.
  void DropVolatile();

  // Releases the durable prefix below `offset` (≤ durable()): whole blocks below it are freed
  // on the device and in this cache, and retained() advances to exactly `offset`. Returns the
  // device bytes freed.
  uint64_t TruncatePrefix(uint64_t offset);

  // Reads back durable bytes from the device (never the volatile tail — replay must only see
  // what genuinely survived). The range must lie at or above retained()'s block base.
  std::string_view ReadDurable(uint64_t offset, uint64_t n) const {
    return device_->Read(offset, n);
  }

  const BlockDevice& device() const { return *device_; }

 private:
  BlockDevice* device_;
  std::string data_;  // Contents of [base_, tail()); [base_, durable_) mirrors the device.
  uint64_t base_ = 0;
  uint64_t durable_ = 0;
  uint64_t retained_ = 0;
};

}  // namespace halfmoon::storage

#endif  // HALFMOON_STORAGE_BLOCK_BUFFER_H_
