#include "src/storage/checkpoint.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace halfmoon::storage {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// One manifest payload: u8 domain + 5 × u64.
constexpr uint64_t kManifestPayloadBytes = 1 + 5 * 8;

// Walks whole frames of [from, upto), reporting each frame's offset. Returns true when the
// frames exactly tile the range — the structural-integrity half of image validation (the
// checksum is the other half).
bool WalkFrames(const BlockBuffer& buffer, uint64_t from, uint64_t upto,
                const std::function<void(uint64_t, FrameType, Cursor)>& fn) {
  uint64_t off = from;
  while (off + kFrameHeaderBytes <= upto) {
    Cursor header(buffer.ReadDurable(off, kFrameHeaderBytes));
    uint64_t len = header.U32();
    FrameType type = static_cast<FrameType>(header.U8());
    if (off + kFrameHeaderBytes + len > upto) return false;
    fn(off, type, Cursor(buffer.ReadDurable(off + kFrameHeaderBytes, len)));
    off += kFrameHeaderBytes + len;
  }
  return off == upto;
}

}  // namespace

void CheckpointStore::CorruptDurableByteForTest(uint64_t offset) {
  HM_CHECK(offset >= device_.base() && offset < buffer_.durable());
  uint64_t block = (offset / kBlockSize) * kBlockSize;
  uint64_t n = std::min(kBlockSize, buffer_.durable() - block);
  std::string contents(device_.Read(block, n));
  contents[offset - block] = static_cast<char>(contents[offset - block] ^ 0xff);
  device_.WriteBlocks(block, contents);
}

std::string EncodeManifest(const CheckpointManifest& m) {
  std::string payload;
  PutU8(&payload, m.domain);
  PutU64(&payload, m.cut);
  PutU64(&payload, m.image_start);
  PutU64(&payload, m.frame_count);
  PutU64(&payload, m.checksum);
  PutU64(&payload, m.watermark_floor);
  return payload;
}

CheckpointManifest DecodeManifest(Cursor cursor) {
  CheckpointManifest m;
  m.domain = cursor.U8();
  m.cut = cursor.U64();
  m.image_start = cursor.U64();
  m.frame_count = cursor.U64();
  m.checksum = cursor.U64();
  m.watermark_floor = cursor.U64();
  return m;
}

uint64_t ChecksumImage(const CheckpointStore& store, uint64_t from, uint64_t upto) {
  std::string_view bytes = store.buffer().ReadDurable(from, upto - from);
  uint64_t h = kFnvOffset;
  for (char c : bytes) h = (h ^ static_cast<uint8_t>(c)) * kFnvPrime;
  return h;
}

bool FindLatestValidManifest(const CheckpointStore& store, uint8_t domain,
                             InstalledManifest* out, int* rejected) {
  // Pass 1: collect every manifest candidate in the durable prefix. The scan tolerates
  // garbage (abandoned rounds, corrupted images): a desynced walk can at worst hide
  // manifests ABOVE the corruption — older ones were already collected.
  struct Candidate {
    CheckpointManifest manifest;
    uint64_t frame_offset;
  };
  std::vector<Candidate> candidates;
  WalkFrames(store.buffer(), store.retained(), store.durable(),
             [&](uint64_t off, FrameType type, Cursor cursor) {
               if (type != FrameType::kCkptManifest) return;
               CheckpointManifest m = DecodeManifest(cursor);
               if (m.domain != domain) return;
               candidates.push_back({m, off});
             });

  // Pass 2: newest first, install the first image that validates.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    const CheckpointManifest& m = it->manifest;
    uint64_t image_end = it->frame_offset;
    bool sane = m.image_start >= store.retained() && m.image_start <= image_end;
    if (sane) {
      uint64_t frames = 0;
      bool tiled = WalkFrames(store.buffer(), m.image_start, image_end,
                              [&](uint64_t, FrameType type, Cursor) {
                                if (type != FrameType::kCkptManifest) ++frames;
                              });
      if (tiled && frames == m.frame_count &&
          ChecksumImage(store, m.image_start, image_end) == m.checksum) {
        out->manifest = m;
        out->image_end = image_end;
        return true;
      }
    }
    if (rejected != nullptr) ++*rejected;
  }
  return false;
}

void ReplayImage(const CheckpointStore& store, const InstalledManifest& m,
                 const std::function<void(FrameType, Cursor)>& fn) {
  bool tiled = WalkFrames(store.buffer(), m.manifest.image_start, m.image_end,
                          [&](uint64_t, FrameType type, Cursor cursor) { fn(type, cursor); });
  HM_CHECK_MSG(tiled, "validated checkpoint image no longer tiles its span");
}

bool CheckpointService::TriggerRound() {
  if (inflight_ || targets_.empty()) return false;
  inflight_ = true;
  ++stats_.rounds_started;
  inflight_floor_ = std::numeric_limits<uint64_t>::max();
  for (const Target& t : targets_) {
    if (t.domain == kCkptLogDomain) {
      inflight_floor_ = std::min(inflight_floor_, t.watermark_floor());
    }
  }
  last_trigger_bytes_ = TotalJournalBytes();
  scheduler_->Spawn(RunRound(epoch_));
  return true;
}

void CheckpointService::MaybeAutoTrigger() {
  if (auto_trigger_bytes_ <= 0 || inflight_) return;
  if (TotalJournalBytes() - last_trigger_bytes_ >= auto_trigger_bytes_) TriggerRound();
}

void CheckpointService::Kill() {
  ++epoch_;
  if (inflight_) {
    inflight_ = false;
    ++stats_.rounds_abandoned;
  }
  for (Target& t : targets_) t.store->DropVolatile();
}

uint64_t CheckpointService::CheckpointBound() const {
  if (!inflight_ || inflight_floor_ == std::numeric_limits<uint64_t>::max()) {
    return std::numeric_limits<uint64_t>::max();
  }
  return inflight_floor_ + 1;  // Exclusive bound, matching DurableTrimBound's convention.
}

int64_t CheckpointService::TotalJournalBytes() const {
  int64_t total = 0;
  for (const Target& t : targets_) total += t.journal->stats().appended_bytes;
  return total;
}

sim::Task<void> CheckpointService::RunRound(uint64_t epoch) {
  // A kill can land between TriggerRound and the spawned coroutine's first execution; the
  // stale round must not walk post-recovery state on behalf of a dead daemon.
  if (epoch != epoch_) co_return;
  bool ok = true;
  for (size_t i = 0; ok && i < targets_.size(); ++i) {
    ok = co_await CheckpointTarget(&targets_[i], epoch);
  }
  if (epoch != epoch_) co_return;  // Kill() already settled the round's bookkeeping.
  inflight_ = false;
  if (ok) {
    ++stats_.rounds_completed;
  } else {
    ++stats_.rounds_abandoned;
  }
}

sim::Task<bool> CheckpointService::CheckpointTarget(Target* t, uint64_t epoch) {
  // The cut: everything below it was applied before the walk starts, so the image covers it;
  // every mutation at or above it is replayed on top of the image (fuzzily, idempotently).
  uint64_t cut = t->journal->durable_offset();
  uint64_t image_start = t->store->tail();
  HM_CHECK_MSG(image_start == t->store->durable(),
               "checkpoint store has an unflushed tail at round start");
  t->begin_walk();
  int64_t frame_count = 0;
  while (true) {
    int64_t frames = 0;
    bool done = t->write_slice(t->store, slice_budget_, &frames);
    frame_count += frames;
    stats_.image_frames += frames;
    ++stats_.slices;
    if (Probe("ckpt.write")) {  // Daemon dies before the slice's flush.
      t->store->DropVolatile();
      co_return false;
    }
    t->store->Flush();
    if (done) break;
    // Yield between slices so foreground traffic interleaves with the walk — this is what
    // makes the image fuzzy, and what keeps appends acking during a checkpoint.
    co_await scheduler_->Delay(models_->durable_flush.Sample(rng_));
    if (epoch != epoch_) co_return false;
  }

  // The fuzzy image may reflect appends up to the CURRENT journal tail. The manifest must
  // not land before the journal covers them: otherwise a crash now could recover image state
  // the journal never made durable, breaking the write-ahead contract.
  uint64_t walk_end_tail = t->journal->tail_offset();
  if (walk_end_tail > t->journal->durable_offset()) {
    bool covered = co_await t->journal->WaitOffset(walk_end_tail);
    if (!covered || epoch != epoch_) co_return false;
  }

  uint64_t image_end = t->store->tail();
  CheckpointManifest m;
  m.domain = t->domain;
  m.cut = cut;
  m.image_start = image_start;
  m.frame_count = static_cast<uint64_t>(frame_count);
  m.checksum = ChecksumImage(*t->store, image_start, image_end);
  m.watermark_floor = t->watermark_floor();
  HM_CHECK(EncodeManifest(m).size() == kManifestPayloadBytes);
  t->store->AppendFrame(FrameType::kCkptManifest, EncodeManifest(m));
  t->store->Flush();
  ++stats_.manifests_written;
  if (Probe("ckpt.install")) co_return false;  // Manifest durable; truncation never ran.

  uint64_t journal_before = t->journal->retained_offset();
  if (cut > journal_before) {
    t->journal->TruncateTo(cut);
    stats_.journal_bytes_truncated += static_cast<int64_t>(cut - journal_before);
  }
  if (Probe("ckpt.truncate")) co_return false;  // Superseded images linger; still valid.

  uint64_t store_before = t->store->retained();
  if (m.image_start > store_before) {
    t->store->TruncatePrefix(m.image_start);
    stats_.store_bytes_truncated += static_cast<int64_t>(m.image_start - store_before);
  }
  co_return true;
}

}  // namespace halfmoon::storage
