#include "src/storage/block_buffer.h"

#include <algorithm>

#include "src/common/check.h"

namespace halfmoon::storage {

uint64_t BlockBuffer::Append(std::string_view bytes) {
  uint64_t offset = data_.size();
  data_.append(bytes);
  return offset;
}

void BlockBuffer::FlushTo(uint64_t upto) {
  upto = std::min<uint64_t>(upto, data_.size());
  if (upto <= durable_) return;
  uint64_t start = (durable_ / kBlockSize) * kBlockSize;
  device_->WriteBlocks(start, std::string_view(data_).substr(start, upto - start));
  durable_ = upto;
}

void BlockBuffer::DropVolatile() {
  HM_CHECK(durable_ <= data_.size());
  data_.resize(durable_);
}

}  // namespace halfmoon::storage
