#include "src/storage/block_buffer.h"

#include <algorithm>

#include "src/common/check.h"

namespace halfmoon::storage {

uint64_t BlockBuffer::Append(std::string_view bytes) {
  uint64_t offset = tail();
  data_.append(bytes);
  return offset;
}

void BlockBuffer::FlushTo(uint64_t upto) {
  upto = std::min<uint64_t>(upto, tail());
  if (upto <= durable_) return;
  uint64_t start = std::max((durable_ / kBlockSize) * kBlockSize, base_);
  device_->WriteBlocks(start, std::string_view(data_).substr(start - base_, upto - start));
  durable_ = upto;
}

void BlockBuffer::DropVolatile() {
  HM_CHECK(durable_ <= tail());
  data_.resize(durable_ - base_);
}

uint64_t BlockBuffer::TruncatePrefix(uint64_t offset) {
  HM_CHECK_MSG(offset <= durable_, "prefix truncation into the volatile tail");
  if (offset <= retained_) return 0;
  retained_ = offset;
  uint64_t freed = device_->TruncatePrefix(offset);
  uint64_t new_base = device_->base();
  if (new_base > base_) {
    data_.erase(0, new_base - base_);
    data_.shrink_to_fit();
    base_ = new_base;
  }
  return freed;
}

}  // namespace halfmoon::storage
