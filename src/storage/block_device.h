// The simulated durable medium: a byte-addressed device written in aligned 4 KiB blocks.
//
// The device is the ONLY state in the simulation that survives a node kill. Everything above
// it (the block buffer's volatile tail, LogSpace indices, KvState maps) is reconstructed by
// replaying the journal frames recorded here (see durability.h). Writes are paid for in whole
// blocks — flushing a 100-byte journal frame rewrites its 4 KiB tail block — which is what
// makes group-flush worth modeling and gives bench_recovery_cost a real write-amplification
// number to report. Compaction (DESIGN.md §14) may release a block-aligned prefix: offsets
// stay logical (they never renumber), but the freed blocks stop occupying device memory.

#ifndef HALFMOON_STORAGE_BLOCK_DEVICE_H_
#define HALFMOON_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace halfmoon::storage {

// Flush granularity of the simulated medium (an NVMe-class logical block).
inline constexpr uint64_t kBlockSize = 4096;

class BlockDevice {
 public:
  struct Stats {
    int64_t block_writes = 0;   // Blocks written; rewriting a partial tail block counts again.
    int64_t bytes_written = 0;  // Device bytes moved = block_writes * kBlockSize.
    int64_t bytes_dropped = 0;  // Device bytes released by prefix truncation.
  };

  // Overwrites device contents starting at `offset` (must be block-aligned and at or past the
  // truncated base) with `data`, growing the device as needed. Whole blocks are paid for even
  // when `data` ends mid-block.
  void WriteBlocks(uint64_t offset, std::string_view data);

  // Reads back durable bytes; the range must lie within the retained part of the device.
  std::string_view Read(uint64_t offset, uint64_t n) const;

  // Releases every whole block strictly below `offset` (rounded down to a block boundary).
  // Logical offsets above the new base are unaffected; reads below it become errors. Returns
  // the number of device bytes actually freed.
  uint64_t TruncatePrefix(uint64_t offset);

  uint64_t size() const { return base_ + data_.size(); }
  // First retained logical offset (block-aligned; 0 until the first truncation).
  uint64_t base() const { return base_; }
  // Bytes the device currently occupies — shrinks when TruncatePrefix frees blocks.
  uint64_t resident_bytes() const { return data_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::string data_;  // Contents of [base_, size()).
  uint64_t base_ = 0;
  Stats stats_;
};

}  // namespace halfmoon::storage

#endif  // HALFMOON_STORAGE_BLOCK_DEVICE_H_
