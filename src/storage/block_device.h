// The simulated durable medium: a byte-addressed device written in aligned 4 KiB blocks.
//
// The device is the ONLY state in the simulation that survives a node kill. Everything above
// it (the block buffer's volatile tail, LogSpace indices, KvState maps) is reconstructed by
// replaying the journal frames recorded here (see durability.h). Writes are paid for in whole
// blocks — flushing a 100-byte journal frame rewrites its 4 KiB tail block — which is what
// makes group-flush worth modeling and gives bench_recovery_cost a real write-amplification
// number to report.

#ifndef HALFMOON_STORAGE_BLOCK_DEVICE_H_
#define HALFMOON_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace halfmoon::storage {

// Flush granularity of the simulated medium (an NVMe-class logical block).
inline constexpr uint64_t kBlockSize = 4096;

class BlockDevice {
 public:
  struct Stats {
    int64_t block_writes = 0;   // Blocks written; rewriting a partial tail block counts again.
    int64_t bytes_written = 0;  // Device bytes moved = block_writes * kBlockSize.
  };

  // Overwrites device contents starting at `offset` (must be block-aligned) with `data`,
  // growing the device as needed. Whole blocks are paid for even when `data` ends mid-block.
  void WriteBlocks(uint64_t offset, std::string_view data);

  // Reads back durable bytes; the range must lie within the device.
  std::string_view Read(uint64_t offset, uint64_t n) const;

  uint64_t size() const { return data_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::string data_;
  Stats stats_;
};

}  // namespace halfmoon::storage

#endif  // HALFMOON_STORAGE_BLOCK_DEVICE_H_
