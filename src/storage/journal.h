// Journal frame codec: the write-ahead record format shared by the log and KV stores.
//
// Every durable mutation is one frame appended to a block buffer:
//
//   [u32 payload_len | u8 type | payload]
//
// Payloads are flat little-endian primitives written with the Put* helpers and decoded with a
// bounds-checked Cursor. Replay iterates whole frames within the durable prefix; a frame torn
// by the kill (its bytes straddle the durable frontier) is ignored — write-ahead ordering
// guarantees nothing external ever depended on it.

#ifndef HALFMOON_STORAGE_JOURNAL_H_
#define HALFMOON_STORAGE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/check.h"
#include "src/storage/block_buffer.h"

namespace halfmoon::storage {

enum class FrameType : uint8_t {
  kTagDef = 1,             // u64 tag id, str name — registry cross-check on replay.
  kRecord = 2,             // Log record: seqnum, tags, fields.
  kTrim = 3,               // u64 tag, u64 upto, u64 base_after — a Trim that released records.
  kKvPut = 4,              // str key, str value.
  kKvCondPut = 5,          // str key, str value, u64 cursor_ts, u64 counter (applied only).
  kKvPutVersioned = 6,     // u64 object, str version_id, str value.
  kKvDeleteVersioned = 7,  // u64 object, str version_id (the ones that deleted something).

  // Checkpoint image frames (DESIGN.md §14); these live in the sibling checkpoint store, not
  // the journal. An image is a run of state frames closed by exactly one manifest.
  kCkptRecord = 8,      // Same payload as kRecord: one live record body, emitted once.
  kCkptTagStream = 9,   // u64 tag, u64 base, u32 n, n×u64 seqnums — one tag's live stream.
  kCkptKvLatest = 10,   // str key, str value, u64 cursor_ts, u64 counter — one latest slot.
  kCkptKvVersion = 11,  // u64 object, str version_id, str value — one stored version.
  kCkptManifest = 12,   // See CheckpointManifest in checkpoint.h.
};

inline constexpr uint64_t kFrameHeaderBytes = 5;  // u32 len + u8 type.

// Little-endian primitive writers.
inline void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }
inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked payload reader. Underflow is a corrupt frame — a simulation bug, not a
// recoverable condition — so it aborts.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : p_(bytes) {}

  uint8_t U8() {
    HM_CHECK_MSG(p_.size() >= 1, "journal cursor underflow");
    uint8_t v = static_cast<uint8_t>(p_[0]);
    p_.remove_prefix(1);
    return v;
  }
  uint32_t U32() {
    HM_CHECK_MSG(p_.size() >= 4, "journal cursor underflow");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
    p_.remove_prefix(4);
    return v;
  }
  uint64_t U64() {
    HM_CHECK_MSG(p_.size() >= 8, "journal cursor underflow");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
    p_.remove_prefix(8);
    return v;
  }
  std::string_view Str() {
    uint32_t n = U32();
    HM_CHECK_MSG(p_.size() >= n, "journal cursor underflow");
    std::string_view s = p_.substr(0, n);
    p_.remove_prefix(n);
    return s;
  }

  bool empty() const { return p_.empty(); }

 private:
  std::string_view p_;
};

// Appends one framed payload to `buffer`; returns the offset one past the frame (the
// durability threshold its writer waits on).
uint64_t AppendFrame(BlockBuffer* buffer, FrameType type, std::string_view payload);

// Invokes `fn` for every whole frame within [from, upto) of the buffer's durable prefix, in
// append order. `from` must be a frame boundary (0, a previous frame's end, or a manifest's
// cut). A frame whose bytes cross `upto` is a torn tail and is skipped.
void ReplayFrames(const BlockBuffer& buffer, uint64_t from, uint64_t upto,
                  const std::function<void(FrameType, Cursor)>& fn);

// Replays [retained(), upto): the whole surviving prefix of a possibly-compacted buffer.
inline void ReplayFrames(const BlockBuffer& buffer, uint64_t upto,
                         const std::function<void(FrameType, Cursor)>& fn) {
  ReplayFrames(buffer, buffer.retained(), upto, fn);
}

}  // namespace halfmoon::storage

#endif  // HALFMOON_STORAGE_JOURNAL_H_
