// The durability service: a journaled block buffer with a background group-flusher and the
// write-ahead ordering contract the rest of the system builds on (DESIGN.md §13).
//
// Writers append journal frames (AppendFrame) and then either
//   * co_await WaitOffset/WaitSeq — the external-acknowledgement gate: an append's reply leg
//     or a KV mutation's reply leg only fires after the frame is flush-ordered, so every
//     externally-known seqnum/value is durable; or
//   * register WhenDurable callbacks — how the cluster gates index propagation, so remote
//     nodes only ever learn of durable seqnums.
//
// One flusher runs at a time: it snapshots the tail, pays one durable_flush latency sample,
// flushes everything up to the snapshot in one device write (natural group-flush — frames
// appended during the flush ride the next round), then resumes satisfied waiters and fires
// callbacks in order. Kill() models node loss: the volatile tail, the in-flight flush, all
// unsatisfied waiters (resumed with ok=false) and undelivered callbacks die; the device and
// the durable frontier survive for Replay.

#ifndef HALFMOON_STORAGE_DURABILITY_H_
#define HALFMOON_STORAGE_DURABILITY_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <utility>

#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/storage/block_buffer.h"
#include "src/storage/block_device.h"
#include "src/storage/journal.h"

namespace halfmoon::storage {

class DurabilityService {
 public:
  struct Stats {
    int64_t frames = 0;             // Journal frames appended.
    int64_t appended_bytes = 0;     // Logical journal bytes (frame headers included).
    int64_t flushes = 0;            // Flush rounds completed.
    int64_t kills = 0;              // Kill() invocations.
    int64_t failed_waits = 0;       // Waiters resumed with ok=false by a kill.
    int64_t dropped_callbacks = 0;  // WhenDurable callbacks lost to a kill.
    int64_t durable_bytes_dropped = 0;  // Journal bytes released by TruncateTo compaction.
  };

  // The service draws flush latencies from its OWN derived RNG stream so that attaching it
  // (HM_DURABLE=1) never perturbs the sample sequence of the main simulation stream — and
  // HM_DURABLE=0, which simply never constructs one, stays bit-identical to the pre-storage
  // engine (the PR 4 golden checksums pin this).
  DurabilityService(sim::Scheduler* scheduler, const LatencyModels* models, uint64_t seed)
      : scheduler_(scheduler),
        models_(models),
        rng_(seed ^ 0x9E3779B97F4A7C15ull),
        buffer_(&device_) {}
  DurabilityService(const DurabilityService&) = delete;
  DurabilityService& operator=(const DurabilityService&) = delete;

  // Appends one journal frame and kicks the flusher; returns the offset one past the frame —
  // the threshold its writer hands to WaitOffset.
  uint64_t AppendFrame(FrameType type, std::string_view payload);

  // Associates `seqnum` with the journal offset its record frame ends at. Commits happen in
  // append order, so both sequences are monotone (asserted).
  void NoteCommit(uint64_t seqnum, uint64_t end_offset);

  uint64_t durable_offset() const { return buffer_.durable(); }
  uint64_t tail_offset() const { return buffer_.tail(); }
  // Highest seqnum whose record frame is durable (0 = none yet).
  uint64_t durable_seq() const { return durable_seq_; }
  bool SeqDurable(uint64_t seqnum) const { return seqnum <= durable_seq_; }

  // Awaitable durability gate. Resumes with true once the threshold is durable, or false if a
  // kill destroyed the awaited bytes first. Registration is race-free as long as the awaiting
  // coroutine does not suspend between the mutation and the co_await (the call sites do not).
  struct Waiter {
    DurabilityService* svc = nullptr;
    uint64_t threshold = 0;
    bool by_seq = false;
    bool ok = true;
    Waiter* next = nullptr;
    std::coroutine_handle<> handle = nullptr;

    bool await_ready() const noexcept {
      if (svc == nullptr) return true;
      return by_seq ? svc->SeqDurable(threshold) : svc->durable_offset() >= threshold;
    }
    bool await_suspend(std::coroutine_handle<> h) {
      // Fail fast when the awaited bytes can never become durable: a kill between the
      // mutation and this registration wiped them (the threshold lies beyond every pending
      // commit / beyond the journal tail). Suspending would hang forever — or worse, resume
      // on an unrelated record that later reuses the rolled-back seqnum.
      if (svc->Lost(*this)) {
        ok = false;
        ++svc->stats_.failed_waits;
        return false;  // Resume immediately with ok=false.
      }
      handle = h;
      svc->AddWaiter(this);
      return true;
    }
    bool await_resume() const noexcept { return ok; }
  };

  Waiter WaitSeq(uint64_t seqnum) { return Waiter{this, seqnum, /*by_seq=*/true}; }
  Waiter WaitOffset(uint64_t offset) { return Waiter{this, offset, /*by_seq=*/false}; }

  // Runs `fn` once `seqnum` is durable — synchronously if it already is. Callers register in
  // commit order (asserted); a kill drops the callbacks of lost seqnums.
  void WhenDurable(uint64_t seqnum, std::function<void()> fn);

  // Simulated node loss. The device and the durable frontier survive; everything volatile —
  // journal tail, in-flight flush, waiters, callbacks, commit bookkeeping — dies.
  void Kill();

  // Compaction (DESIGN.md §14): releases the journal prefix below `offset`, a frame boundary
  // at or below the durable frontier. Only legal once a checkpoint manifest covering the
  // prefix is itself durable — recovery then replays [offset, durable) on top of the image.
  void TruncateTo(uint64_t offset) {
    HM_CHECK_MSG(offset <= buffer_.durable(), "journal truncation past the durable frontier");
    stats_.durable_bytes_dropped += static_cast<int64_t>(buffer_.TruncatePrefix(offset));
  }

  // First surviving journal offset (0 until the first truncation). Full replay is only
  // possible from here; recovery below it needs a checkpoint image.
  uint64_t retained_offset() const { return buffer_.retained(); }

  // Replays every whole frame of the surviving durable prefix in append order (restart
  // recovery). The `from` overload starts at a manifest's cut instead.
  void Replay(const std::function<void(FrameType, Cursor)>& fn) const {
    ReplayFrames(buffer_, buffer_.durable(), fn);
  }
  void Replay(uint64_t from, const std::function<void(FrameType, Cursor)>& fn) const {
    ReplayFrames(buffer_, from, buffer_.durable(), fn);
  }

  const Stats& stats() const { return stats_; }
  const BlockDevice& device() const { return device_; }
  // Write amplification so far: device bytes moved per logical journal byte.
  double WriteAmplification() const {
    if (stats_.appended_bytes == 0) return 0.0;
    return static_cast<double>(device_.stats().bytes_written) /
           static_cast<double>(stats_.appended_bytes);
  }

 private:
  friend struct Waiter;

  // True when `w`'s threshold was destroyed by a kill: no pending commit reaches the awaited
  // seqnum / the journal tail sits below the awaited offset. Monotone commit bookkeeping
  // makes this exact — a live threshold is always covered by pending_commits_ / the tail.
  bool Lost(const Waiter& w) const {
    if (w.by_seq) {
      return w.threshold > durable_seq_ &&
             (pending_commits_.empty() || pending_commits_.back().first < w.threshold);
    }
    return w.threshold > buffer_.tail();
  }

  void AddWaiter(Waiter* w);
  void MaybeStartFlush();
  sim::Task<void> FlushLoop(uint64_t epoch);
  // Advances durable_seq_ past flushed commits, resumes satisfied waiters (FIFO order) and
  // fires due callbacks.
  void AdvanceDurable();

  sim::Scheduler* scheduler_;
  const LatencyModels* models_;
  Rng rng_;
  BlockDevice device_;
  BlockBuffer buffer_;

  uint64_t epoch_ = 0;  // Bumped by Kill(); stale flushes see the mismatch and die.
  bool flush_inflight_ = false;
  uint64_t durable_seq_ = 0;

  // (seqnum, end offset) of committed-but-not-yet-durable records; monotone in both fields.
  std::deque<std::pair<uint64_t, uint64_t>> pending_commits_;
  // WhenDurable registrations, monotone in seqnum.
  std::deque<std::pair<uint64_t, std::function<void()>>> callbacks_;
  // Intrusive FIFO of suspended waiters (they live in the awaiting coroutines' frames).
  Waiter* waiters_head_ = nullptr;
  Waiter* waiters_tail_ = nullptr;

  Stats stats_;
};

}  // namespace halfmoon::storage

#endif  // HALFMOON_STORAGE_DURABILITY_H_
