// Crash-restart recovery driver for the shared log (DESIGN.md §13, §14).
//
// One entry point serves both restart paths (Cluster::KillRestart* and ParallelCluster's
// per-partition restarts):
//   * no checkpoint store, or no valid manifest in it → strict full replay of the journal's
//     surviving prefix (byte-for-byte the PR 9 recovery path, including the in-order
//     watermark asserts) — legal only while the journal was never truncated;
//   * a valid manifest → install its image (record bodies, then the per-tag stream
//     snapshots that reference them), then replay only the journal frames at or above the
//     manifest's cut, fuzzily: the image may already reflect any prefix of the suffix, so
//     every restore is an idempotent check-and-insert (see LogSpace::RestoreRecord).
// Either way the watermark ends at least at the journal's durable seqnum — truncation can
// erase the highest durable (trimmed) records, and their seqnums must never be re-issued.

#ifndef HALFMOON_SHAREDLOG_LOG_RECOVERY_H_
#define HALFMOON_SHAREDLOG_LOG_RECOVERY_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/sharedlog/sharded_log.h"

namespace halfmoon::storage {
class CheckpointStore;
class DurabilityService;
}  // namespace halfmoon::storage

namespace halfmoon::sharedlog {

// What a restart actually did — tests and the check.sh smoke assert the replay-suffix path
// is really taken (used_checkpoint) instead of silently falling back to full replay.
struct LogRecoveryStats {
  bool used_checkpoint = false;
  int64_t image_frames = 0;    // State frames installed from the checkpoint image.
  int64_t suffix_frames = 0;   // Journal frames replayed (the suffix, or the whole prefix).
  int manifests_rejected = 0;  // Torn/corrupt newer manifests skipped by validation.
};

// Resets the log's volatile state and rebuilds it from the durable medium. `ckpt` may be
// null (no checkpoint tier); when non-null but without a valid manifest, recovery falls
// back to full replay — which aborts if the journal prefix was already truncated, since the
// history below retained_offset() is gone for good.
LogRecoveryStats RestoreLogFromJournal(SimTime now, ShardedLog* log,
                                       const storage::DurabilityService* journal,
                                       const storage::CheckpointStore* ckpt);

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_LOG_RECOVERY_H_
