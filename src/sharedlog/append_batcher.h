// Node-local group commit for the append path.
//
// Every LogClient owns an AppendBatcher (when enabled): append requests issued while the
// node's sequencer round is in flight — or within a configurable batching window — are
// collected and shipped as ONE batched sequencer round (LogSpace::AppendGroup), then the
// consecutive seqnums and per-request cond-append verdicts are demultiplexed back to the
// waiting coroutines. This is the group-commit idea of Boki/Beldi-style shims: the sequencer
// orders many records per round, so a node under concurrency pays one append latency per
// *round* instead of one per record.
//
// Invariant (asserted by the batched-vs-unbatched equivalence tests): because AppendGroup
// evaluates the round's requests strictly in submission order, each seeing the stream state
// left by its predecessors, the committed records, their per-tag order, and every
// protocol-visible outcome (cond-append verdicts, adopted records) are identical to the
// unbatched path. Only timing differs: requests that share a round also share its latency
// sample, and a request may wait for the node's in-flight round to drain first (the batcher
// keeps at most one round in flight per node).

#ifndef HALFMOON_SHAREDLOG_APPEND_BATCHER_H_
#define HALFMOON_SHAREDLOG_APPEND_BATCHER_H_

#include <coroutine>
#include <cstddef>

#include "src/common/time.h"
#include "src/sharedlog/log_space.h"
#include "src/sim/task.h"

namespace halfmoon::sim {
class ServiceStation;
}  // namespace halfmoon::sim

namespace halfmoon::sharedlog {

class LogClient;

// Group-commit knobs, plumbed from ClusterConfig into each node's LogClient.
struct AppendBatchConfig {
  bool enabled = true;
  // Extra wait before a round departs, letting near-simultaneous requests pile up. 0 keeps
  // an isolated append at exactly the unbatched latency (rounds still batch whatever arrived
  // while the previous round was in flight).
  SimDuration window = 0;
  // Cap on requests per sequencer round; arrivals beyond it ride the next round.
  size_t max_batch = 64;
};

class AppendBatcher {
 public:
  // `space` is the log shard this batcher's rounds commit through and `station` that shard's
  // sequencer station; null means "the owner's defaults" (unsharded clients). A sharded
  // LogClient owns one batcher per shard, so rounds bound for different shards are
  // independent queues with independently in-flight rounds — that is the source of the
  // shard-scaling throughput (DESIGN.md §9).
  AppendBatcher(LogClient* owner, AppendBatchConfig config, LogSpace* space = nullptr,
                sim::ServiceStation* station = nullptr)
      : owner_(owner), config_(config), space_(space), station_(station) {}
  AppendBatcher(const AppendBatcher&) = delete;
  AppendBatcher& operator=(const AppendBatcher&) = delete;

  // Awaitable handed out by Submit. It lives in the submitting coroutine's frame (stable
  // while suspended), so the pending queue is an intrusive list — no allocation per request.
  struct Submission {
    AppendBatcher* batcher;
    LogSpace::GroupRequest request;
    LogSpace::GroupVerdict verdict{};
    Submission* next = nullptr;
    std::coroutine_handle<> waiter = nullptr;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      waiter = handle;
      batcher->Enqueue(this);
    }
    LogSpace::GroupVerdict await_resume() const noexcept { return verdict; }
  };

  // Files a request for the next departing round; resumes with its verdict once that round
  // commits. Waiters resume in submission order (FIFO), all at the round's reply time.
  Submission Submit(LogSpace::GroupRequest request) {
    return Submission{this, std::move(request)};
  }

  const AppendBatchConfig& config() const { return config_; }

 private:
  // Appends `submission` to the pending queue and starts the round loop if idle.
  void Enqueue(Submission* submission);

  // The round loop: runs as a detached task while requests are pending. Each iteration
  // drains up to max_batch submissions into one sequencer round.
  sim::Task<void> RunRounds();

  LogClient* owner_;
  AppendBatchConfig config_;
  LogSpace* space_;               // Null: use the owner's default log space.
  sim::ServiceStation* station_;  // Null: use the owner's default sequencer station.
  Submission* head_ = nullptr;
  Submission* tail_ = nullptr;
  bool round_loop_active_ = false;
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_APPEND_BATCHER_H_
