// Node-local group commit for the append path.
//
// Every LogClient owns an AppendBatcher (when enabled): append requests issued while the
// node's sequencer round is in flight — or within a configurable batching window — are
// collected and shipped as ONE batched sequencer round (LogSpace::AppendGroup), then the
// consecutive seqnums and per-request cond-append verdicts are demultiplexed back to the
// waiting coroutines. This is the group-commit idea of Boki/Beldi-style shims: the sequencer
// orders many records per round, so a node under concurrency pays one append latency per
// *round* instead of one per record.
//
// Invariant (asserted by the batched-vs-unbatched equivalence tests): because AppendGroup
// evaluates the round's requests strictly in submission order, each seeing the stream state
// left by its predecessors, the committed records, their per-tag order, and every
// protocol-visible outcome (cond-append verdicts, adopted records) are identical to the
// unbatched path. Only timing differs: requests that share a round also share its latency
// sample.
//
// Pipelining (DESIGN.md §12): with pipeline_depth > 1 the batcher keeps up to that many
// sequencer rounds in flight concurrently — round k+1's request leg overlaps round k's
// service and reply legs, so a node under sustained storm commits depth rounds per RTT
// instead of one. Rounds still reach LogSpace::AppendGroup strictly in departure order
// (enforced by a commit ticket and asserted, not assumed), so the committed records, their
// per-tag order, and the cond-append verdicts are identical to the serial engine at any
// depth. pipeline_depth == 1 takes the historic serial loop verbatim — bit-identical to the
// pre-pipelining implementation, which the PR 4 golden tuples pin.

#ifndef HALFMOON_SHAREDLOG_APPEND_BATCHER_H_
#define HALFMOON_SHAREDLOG_APPEND_BATCHER_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/sharedlog/log_space.h"
#include "src/sim/task.h"

namespace halfmoon::sim {
class ServiceStation;
}  // namespace halfmoon::sim

namespace halfmoon::sharedlog {

class LogClient;

// Group-commit knobs, plumbed from ClusterConfig into each node's LogClient.
struct AppendBatchConfig {
  bool enabled = true;
  // Extra wait before a round departs, letting near-simultaneous requests pile up. 0 keeps
  // an isolated append at exactly the unbatched latency (rounds still batch whatever arrived
  // while the previous round was in flight).
  SimDuration window = 0;
  // Cap on requests per sequencer round; arrivals beyond it ride the next round.
  size_t max_batch = 64;
  // Sequencer rounds in flight per batcher. 1 = the serial engine (one round at a time,
  // bit-identical to PR 3); K > 1 overlaps up to K rounds, committed in departure order.
  int pipeline_depth = 1;
  // Nagle-style controller (active only at pipeline_depth > 1): widens the effective
  // batching window when the pipeline is saturated by under-filled rounds and raises the
  // effective depth under backlog; both decay when the queue drains, so isolated appends
  // keep the unbatched latency. Off = fixed window/depth.
  bool adaptive = true;
  // Ceiling for the controller's widened window.
  SimDuration max_window = Microseconds(200);
};

class AppendBatcher {
 public:
  // `space` is the log shard this batcher's rounds commit through and `station` that shard's
  // sequencer station; null means "the owner's defaults" (unsharded clients). A sharded
  // LogClient owns one batcher per shard, so rounds bound for different shards are
  // independent queues with independently in-flight rounds — that is the source of the
  // shard-scaling throughput (DESIGN.md §9).
  AppendBatcher(LogClient* owner, AppendBatchConfig config, LogSpace* space = nullptr,
                sim::ServiceStation* station = nullptr)
      : owner_(owner),
        config_(config),
        space_(space),
        station_(station),
        effective_window_(config.window),
        // Adaptive mode ramps the depth up under backlog; fixed mode opens every slot
        // immediately.
        effective_depth_(config.adaptive ? 1 : std::max(config.pipeline_depth, 1)) {}
  AppendBatcher(const AppendBatcher&) = delete;
  AppendBatcher& operator=(const AppendBatcher&) = delete;

  // Awaitable handed out by Submit. It lives in the submitting coroutine's frame (stable
  // while suspended), so the pending queue is an intrusive list — no allocation per request.
  struct Submission {
    AppendBatcher* batcher;
    LogSpace::GroupRequest request;
    // Fault-injection eligibility: true only for protocol-class appends, whose submitting
    // coroutine runs inside an SSF attempt with crash-retry handling. Control appends
    // (init/invoke/switch/GC) run in detached service tasks and must never crash here.
    bool crashable = false;
    LogSpace::GroupVerdict verdict{};
    // Armed by the batcher's crash probe; await_resume raises the runtime's crash exception
    // through the owner's installed thrower.
    const char* crash_site = nullptr;
    Submission* next = nullptr;
    std::coroutine_handle<> waiter = nullptr;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      waiter = handle;
      batcher->Enqueue(this);
    }
    LogSpace::GroupVerdict await_resume() const {
      if (crash_site != nullptr) batcher->RaiseCrash(crash_site);
      return verdict;
    }
  };

  // Files a request for the next departing round; resumes with its verdict once that round
  // commits. Waiters resume in submission order (FIFO), all at the round's reply time.
  Submission Submit(LogSpace::GroupRequest request, bool crashable = false) {
    return Submission{this, std::move(request), crashable};
  }

  const AppendBatchConfig& config() const { return config_; }

  // Controller observability (tests, benches).
  SimDuration effective_window() const { return effective_window_; }
  int effective_depth() const { return effective_depth_; }
  int in_flight() const { return in_flight_; }

 private:
  // Waits until the pipeline has a free slot. Only the dispatcher ever waits here, so a
  // single handle suffices.
  struct SlotFree {
    AppendBatcher* b;
    bool await_ready() const noexcept { return b->in_flight_ < b->EffectiveDepth(); }
    void await_suspend(std::coroutine_handle<> handle) noexcept { b->slot_waiter_ = handle; }
    void await_resume() const noexcept {}
  };

  // Waits until it is `ticket`'s turn to commit. Rounds can finish sequencer service out of
  // departure order (the station is multi-server); this is the FIFO re-ordering stage.
  struct CommitTurn {
    AppendBatcher* b;
    uint64_t ticket;
    bool await_ready() const noexcept { return b->commit_ticket_ == ticket; }
    void await_suspend(std::coroutine_handle<> handle) {
      b->commit_waiters_.push_back({ticket, handle});
    }
    void await_resume() const noexcept {}
  };

  // Appends `submission` to the pending queue and starts the round engine if idle.
  void Enqueue(Submission* submission);

  // Serial engine (pipeline_depth <= 1): the historic PR 3 loop, one round in flight.
  sim::Task<void> RunRounds();

  // Pipelined engine (pipeline_depth > 1): the dispatcher detaches rounds and spawns
  // RunOneRound for each, keeping up to EffectiveDepth() rounds in flight.
  sim::Task<void> RunPipeline();
  sim::Task<void> RunOneRound(std::vector<Submission*> round,
                              std::vector<LogSpace::GroupRequest> requests, SimDuration total,
                              uint64_t ticket);

  // Detaches up to max_batch pending submissions in FIFO order into `round`/`requests`.
  void DetachRound(std::vector<Submission*>* round,
                   std::vector<LogSpace::GroupRequest>* requests);

  // Commits a serviced round: AppendGroup in ticket order, verdict demux, index advance.
  void CommitRound(LogSpace* space, std::vector<Submission*>& round,
                   std::vector<LogSpace::GroupRequest> requests);

  // Crash probes (no-ops unless the runtime installed hooks AND the round carries a
  // crashable submission). Depart: the victim's request still departs with the round — the
  // function died after handing it off — but the submitter is resumed immediately and
  // raises, racing its retry against the in-flight round. Reply: the round commits, then the
  // victim raises at reply time.
  void ProbeDepartCrash(std::vector<Submission*>& round);
  void ProbeReplyCrash(std::vector<Submission*>& round);
  [[noreturn]] void RaiseCrash(const char* site) const;

  // Adaptive window/depth controller, consulted once per departing round.
  void UpdateController(size_t occupancy, bool backlog);

  int EffectiveDepth() const {
    return config_.pipeline_depth <= 1 ? 1 : effective_depth_;
  }

  void WakeSlotWaiter();
  void WakeCommitWaiter();

  LogClient* owner_;
  AppendBatchConfig config_;
  LogSpace* space_;               // Null: use the owner's default log space.
  sim::ServiceStation* station_;  // Null: use the owner's default sequencer station.
  Submission* head_ = nullptr;
  Submission* tail_ = nullptr;
  bool round_loop_active_ = false;

  // Pipeline state (pipeline_depth > 1).
  int in_flight_ = 0;
  uint64_t next_ticket_ = 0;
  uint64_t commit_ticket_ = 0;
  std::coroutine_handle<> slot_waiter_ = nullptr;
  std::vector<std::pair<uint64_t, std::coroutine_handle<>>> commit_waiters_;

  // Controller state. effective_window_ starts at the configured window and never drops
  // below it; effective_depth_ starts at 1 and never exceeds pipeline_depth.
  SimDuration effective_window_;
  int effective_depth_ = 1;
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_APPEND_BATCHER_H_
