// Log records and tags for the shared-log layer (Figure 3 of the paper).
//
// The main log is totally ordered by monotonically increasing sequence numbers. Each record
// carries a set of tags; records with a common tag form a sub-stream whose internal order is
// consistent with the main log. Halfmoon uses three families of sub-streams:
//   * step logs      — tag = the SSF's instance ID; the function's execution history,
//   * write logs     — tag = "k:<key>"; per-object commit points under Halfmoon-read,
//   * transition log — tag = "switch:<scope>"; protocol switching history (§4.7).

#ifndef HALFMOON_SHAREDLOG_LOG_RECORD_H_
#define HALFMOON_SHAREDLOG_LOG_RECORD_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace halfmoon::sharedlog {

using Tag = std::string;
using SeqNum = uint64_t;

inline constexpr SeqNum kInvalidSeqNum = std::numeric_limits<SeqNum>::max();
inline constexpr SeqNum kMaxSeqNum = std::numeric_limits<SeqNum>::max() - 1;

// Tag constructors, so all modules agree on sub-stream naming.
inline Tag StepLogTag(const std::string& instance_id) { return instance_id; }
inline Tag WriteLogTag(const std::string& key) { return "k:" + key; }
inline Tag TransitionLogTag(const std::string& scope) { return "switch:" + scope; }
// Every Init record is also tagged into one global stream so the switch manager and the GC can
// enumerate running SSFs (§4.7 "scans the init log records").
inline Tag InitLogTag() { return "ssf.init"; }
// Global stream of SSF completion markers, used by GC condition (b) of §4.5.
inline Tag FinishLogTag() { return "ssf.finish"; }

// Tag-vector helpers. Braced-init-list arguments to coroutines miscompile on GCC 12
// (PR c++/102489 family), so call sites build tag vectors through these instead.
inline std::vector<Tag> NoTags() { return {}; }
inline std::vector<Tag> OneTag(Tag t) {
  std::vector<Tag> v;
  v.push_back(std::move(t));
  return v;
}
inline std::vector<Tag> TwoTags(Tag a, Tag b) {
  std::vector<Tag> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}

struct LogRecord {
  SeqNum seqnum = kInvalidSeqNum;
  std::vector<Tag> tags;
  FieldMap fields;

  // Approximate serialized size: header + tags + payload.
  size_t ByteSize() const {
    size_t total = sizeof(SeqNum) + 8;  // Header overhead.
    for (const Tag& tag : tags) total += tag.size();
    total += fields.ByteSize();
    return total;
  }
};

// Records are immutable once committed, so every reader shares one copy: LogSpace stores each
// record behind a shared_ptr-to-const and the whole read path (LogSpace, LogClient, the
// protocols' step-log caches) passes these views around instead of deep-copying. A null
// pointer means "no such record" where the old API returned an empty optional.
using LogRecordPtr = std::shared_ptr<const LogRecord>;

// Result of logCondAppend (§5.1). On success, `seqnum` is the new record's position and
// `record` is a shared view of the committed record (of the *first* record for batched
// appends). On conflict the append is undone and `existing_seqnum` points to the record
// already occupying the expected offset of the conditional stream.
struct CondAppendResult {
  bool ok = false;
  SeqNum seqnum = kInvalidSeqNum;
  SeqNum existing_seqnum = kInvalidSeqNum;
  LogRecordPtr record;
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_LOG_RECORD_H_
