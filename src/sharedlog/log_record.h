// Log records and tags for the shared-log layer (Figure 3 of the paper).
//
// The main log is totally ordered by monotonically increasing sequence numbers. Each record
// carries a set of tags; records with a common tag form a sub-stream whose internal order is
// consistent with the main log. Halfmoon uses three families of sub-streams:
//   * step logs      — tag = the SSF's instance ID; the function's execution history,
//   * write logs     — tag = "k:<key>"; per-object commit points under Halfmoon-read,
//   * transition log — tag = "switch:<scope>"; protocol switching history (§4.7).
//
// Tags are interned: the string name of a sub-stream is resolved to a dense 64-bit TagId
// exactly once (see tag_registry.h), and everything on the append/read/trim path — records,
// stream indices, KV version-index keys — carries the integer id. String names survive only
// at the edges: interning, prefix scans, and human-readable output.

#ifndef HALFMOON_SHAREDLOG_LOG_RECORD_H_
#define HALFMOON_SHAREDLOG_LOG_RECORD_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/value.h"

namespace halfmoon::sharedlog {

// Dense interned id of a tag name; assigned by TagRegistry in interning order.
using TagId = uint64_t;
using SeqNum = uint64_t;

inline constexpr TagId kInvalidTagId = std::numeric_limits<TagId>::max();
// LogSpace pre-interns the two global streams so their ids are fixed constants.
inline constexpr TagId kInitTagId = 0;    // "ssf.init" (§4.7 "scans the init log records")
inline constexpr TagId kFinishTagId = 1;  // "ssf.finish" (GC condition (b) of §4.5)

// Dense interned id of a record's "op" field (a second TagRegistry owned by LogSpace).
// Step arbitration (FindFirstByStep) compares these integers instead of the op strings.
using OpId = uint64_t;

inline constexpr OpId kInvalidOpId = std::numeric_limits<OpId>::max();
// LogSpace pre-interns the protocol op names so their ids are fixed constants everywhere.
inline constexpr OpId kOpInit = 0;         // "init": SSF Init records.
inline constexpr OpId kOpRead = 1;         // "read": Boki-read step records.
inline constexpr OpId kOpWritePre = 2;     // "write-pre": Boki-write intentions (§5.1).
inline constexpr OpId kOpWrite = 3;        // "write": write / commit records.
inline constexpr OpId kOpInvokePre = 4;    // "invoke-pre": child-invocation intentions.
inline constexpr OpId kOpInvoke = 5;       // "invoke": child-invocation step records.
inline constexpr OpId kOpSync = 6;         // "sync": Halfmoon-write sync markers.
inline constexpr OpId kOpSwitchBegin = 7;  // "BEGIN": transition-log markers (§4.7).
inline constexpr OpId kOpSwitchEnd = 8;    // "END".

inline constexpr SeqNum kInvalidSeqNum = std::numeric_limits<SeqNum>::max();
inline constexpr SeqNum kMaxSeqNum = std::numeric_limits<SeqNum>::max() - 1;

// Tag *name* constructors, so all modules agree on sub-stream naming. These build strings and
// belong on cold paths only (interning, tests, display); steady-state code caches the TagId or
// uses TagRegistry::InternPrefixed to avoid the concatenation.
inline std::string StepLogTag(const std::string& instance_id) { return instance_id; }
inline std::string WriteLogTag(const std::string& key) { return "k:" + key; }
inline std::string TransitionLogTag(const std::string& scope) { return "switch:" + scope; }
inline constexpr std::string_view kWriteLogPrefix = "k:";
inline constexpr std::string_view kTransitionLogPrefix = "switch:";
// Per-object transition sub-streams for the online advisor (DESIGN.md §11): the transition
// log of object "k:<key>" is "switch:k:<key>", so the global per-scope stream and the
// per-object streams share the transition prefix but never collide with each other (scopes
// never start with "k:").
inline std::string ObjectTransitionLogTag(const std::string& key) { return "switch:k:" + key; }
inline constexpr std::string_view kObjectTransitionPrefix = "switch:k:";
// Every Init record is also tagged into one global stream so the switch manager and the GC can
// enumerate running SSFs (§4.7 "scans the init log records").
inline std::string InitLogTag() { return "ssf.init"; }
// Global stream of SSF completion markers, used by GC condition (b) of §4.5.
inline std::string FinishLogTag() { return "ssf.finish"; }

// Tag-vector helpers. Braced-init-list arguments to coroutines miscompile on GCC 12
// (PR c++/102489 family), so call sites build tag vectors through these instead.
// The TagId overloads are the hot-path spelling; the string overloads feed the name-based
// convenience entry points of LogSpace/LogClient (tests and cold bootstrap code).
inline std::vector<TagId> NoTags() { return {}; }
inline std::vector<TagId> OneTag(TagId t) {
  std::vector<TagId> v;
  v.push_back(t);
  return v;
}
inline std::vector<TagId> TwoTags(TagId a, TagId b) {
  std::vector<TagId> v;
  v.push_back(a);
  v.push_back(b);
  return v;
}
inline std::vector<std::string> OneTag(std::string name) {
  std::vector<std::string> v;
  v.push_back(std::move(name));
  return v;
}
inline std::vector<std::string> TwoTags(std::string a, std::string b) {
  std::vector<std::string> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}

struct LogRecord {
  SeqNum seqnum = kInvalidSeqNum;
  std::vector<TagId> tags;
  // Interned id of fields["op"] (kInvalidOpId when the record has no "op" field), filled in
  // by LogSpace::Append so step arbitration scans compare integers instead of strings.
  OpId op = kInvalidOpId;
  FieldMap fields;

  bool HasTag(TagId t) const {
    for (TagId tag : tags) {
      if (tag == t) return true;
    }
    return false;
  }

  // Approximate serialized size: header + tags + payload. Interned tags serialize as fixed
  // 64-bit ids rather than variable-length names.
  size_t ByteSize() const {
    size_t total = sizeof(SeqNum) + 8;  // Header overhead.
    total += tags.size() * sizeof(TagId);
    total += fields.ByteSize();
    return total;
  }
};

// Records are immutable once committed, so every reader shares one copy: LogSpace stores each
// record behind a shared_ptr-to-const and the whole read path (LogSpace, LogClient, the
// protocols' step-log caches) passes these views around instead of deep-copying. A null
// pointer means "no such record" where the old API returned an empty optional.
using LogRecordPtr = std::shared_ptr<const LogRecord>;

// Result of logCondAppend (§5.1). On success, `seqnum` is the new record's position and
// `record` is a shared view of the committed record (of the *first* record for batched
// appends). On conflict the append is undone and `existing_seqnum` points to the record
// already occupying the expected offset of the conditional stream.
struct CondAppendResult {
  bool ok = false;
  SeqNum seqnum = kInvalidSeqNum;
  SeqNum existing_seqnum = kInvalidSeqNum;
  LogRecordPtr record;
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_LOG_RECORD_H_
