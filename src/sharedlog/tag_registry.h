// String-tag interning for the shared log.
//
// Every sub-stream name ("<instance-id>", "k:<key>", "switch:<scope>", "ssf.init", ...) is
// interned exactly once into a dense 64-bit TagId. After that, every append/read/trim hashes
// a single integer instead of building and hashing a fresh std::string — the metadata cost
// Halfmoon's one-record-per-op design is meant to avoid (§4, Theorem 4.6).
//
// Three structures, all owned here:
//   * table_    — open-addressed {hash, id} slots (no per-entry heap node): a lookup is a
//                 linear probe over a contiguous array plus one name verification, with
//                 heterogeneous support so a two-part name like ("k:", key) is hashed *as
//                 if concatenated* without allocating,
//   * names_    — dense id → name (pointers into store_'s stable entries),
//   * ordered_  — name-ordered index (string_view keys into the same storage) so prefix
//                 enumeration stays an O(log n + matches) range scan.
//
// Invariants:
//   * ids are dense and assigned in interning order; names are never un-interned, so every
//     returned `const std::string&` / string_view stays valid for the registry's lifetime;
//   * Intern(name) == InternPrefixed(prefix, suffix) whenever name == prefix + suffix —
//     guaranteed by hashing the logical concatenation with the same streaming polynomial
//     hash (split-invariant: mixing bytes in two parts equals mixing them in one);
//   * intern_requests() - hits never exceeds size(): each distinct name is materialized
//     (allocated, hashed as a string) at most once, which the bench asserts.

#ifndef HALFMOON_SHAREDLOG_TAG_REGISTRY_H_
#define HALFMOON_SHAREDLOG_TAG_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/check.h"
#include "src/sharedlog/log_record.h"

namespace halfmoon::sharedlog {

class TagRegistry {
 public:
  TagRegistry() = default;
  TagRegistry(const TagRegistry&) = delete;
  TagRegistry& operator=(const TagRegistry&) = delete;

  // Returns the id for `name`, creating it on first sight.
  TagId Intern(std::string_view name);

  // Returns the id for the logical name `prefix + suffix` without concatenating unless the
  // name is new. This is the steady-state entry point for two-part names ("k:" + key).
  TagId InternPrefixed(std::string_view prefix, std::string_view suffix);

  // Lookup without interning; kInvalidTagId if the name was never interned. Used by read
  // paths that must not grow the registry for names that cannot have records.
  TagId Find(std::string_view name) const;
  TagId FindPrefixed(std::string_view prefix, std::string_view suffix) const;

  // Full string name of an interned id. Aborts on out-of-range ids.
  const std::string& Name(TagId id) const;

  bool Contains(TagId id) const { return id < names_.size(); }

  // All interned ids whose name starts with `prefix`, in name order
  // (O(log size + matches) range scan over the ordered index).
  std::vector<TagId> IdsWithPrefix(std::string_view prefix) const;

  // Number of distinct names interned so far.
  size_t size() const { return names_.size(); }

  // ---- Tag → shard mapping (sharded shared log) ----
  // The mapping is a pure function of the tag *name* (finalized name hash mod shard count),
  // so it is identical across runs, processes, and interning orders — a prerequisite for the
  // shard-equivalence guarantees. Must be set before the first interning; a single-shard
  // registry (the default) maps every tag to shard 0.
  void SetShardCount(uint32_t shard_count) {
    HM_CHECK_MSG(names_.empty(), "TagRegistry::SetShardCount after tags were interned");
    HM_CHECK(shard_count >= 1);
    shard_count_ = shard_count;
  }
  uint32_t shard_count() const { return shard_count_; }
  uint32_t ShardOf(TagId id) const {
    HM_CHECK_MSG(id < shard_of_.size(), "TagRegistry::ShardOf: unknown TagId");
    return shard_of_[id];
  }

  // Total Intern/InternPrefixed calls. size() staying flat while this grows proves the
  // steady state never re-materializes a tag name (acceptance criterion of ISSUE 2).
  int64_t intern_requests() const { return intern_requests_; }

  // Fires once per NEWLY registered name, with its freshly assigned id — Register is the
  // single insertion point, so repeat interns never re-fire. The durability layer hooks this
  // to journal kTagDef frames (DESIGN.md §13): the (id, name) assignment is volatile sequencer
  // state, and replay cross-checks it against the journal.
  void SetInternSink(std::function<void(TagId, std::string_view)> sink) {
    intern_sink_ = std::move(sink);
  }

 private:
  // Polynomial rolling hash: h := h*r + byte for every byte. Appending is a monoid action,
  // so Mix(Mix(h, a), b) == Mix(h, ab) for any split — hashing ("k:", key) equals hashing
  // the concatenated name. Unlike byte-at-a-time FNV (whose multiply chain is one 3-cycle
  // dependency per byte), the loop consumes 8 bytes per step: the eight byte·r^k products
  // are independent, leaving a single multiply on the critical path per word.
  static constexpr uint64_t kR = 1099511628211ULL;  // Odd multiplier (the FNV prime).
  static constexpr uint64_t Pow(int k) {
    uint64_t p = 1;
    for (int i = 0; i < k; ++i) p *= kR;
    return p;
  }
  static uint64_t Mix(uint64_t h, std::string_view s) {
    constexpr uint64_t kR8 = Pow(8), kR7 = Pow(7), kR6 = Pow(6), kR5 = Pow(5), kR4 = Pow(4),
                       kR3 = Pow(3), kR2 = Pow(2);
    const unsigned char* p = reinterpret_cast<const unsigned char*>(s.data());
    size_t n = s.size();
    for (; n >= 8; n -= 8, p += 8) {
      h = h * kR8 + (p[0] * kR7 + p[1] * kR6 + p[2] * kR5 + p[3] * kR4 + p[4] * kR3 +
                     p[5] * kR2 + p[6] * kR + p[7]);
    }
    for (; n > 0; --n, ++p) h = h * kR + *p;
    return h;
  }
  static constexpr uint64_t kOffset = 14695981039346656037ULL;
  static uint64_t HashName(std::string_view name) { return Mix(kOffset, name); }
  static uint64_t HashName(std::string_view prefix, std::string_view suffix) {
    return Mix(Mix(kOffset, prefix), suffix);
  }
  // Low bits of a polynomial hash are weak (mod-2^64 products never see high bits), so the
  // probe start position comes from a finalizer, not the raw hash.
  static uint64_t Finalize(uint64_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  // One open-addressing slot: the full 64-bit hash as a fingerprint plus the id. A slot is
  // empty iff id == kInvalidTagId. Entries are never removed, so linear probing needs no
  // tombstones, and growing the table reinserts {hash, id} pairs without touching a name.
  struct Slot {
    uint64_t hash = 0;
    TagId id = kInvalidTagId;
  };

  // Probe for the slot holding `hash` + a name equal to prefix+suffix (suffix may be empty
  // and prefix the full name). Returns the matching slot index, or the empty slot where the
  // name would be inserted.
  size_t ProbeFor(uint64_t hash, std::string_view prefix, std::string_view suffix) const;

  TagId Register(std::string full_name, uint64_t hash);
  void GrowTable();

  std::deque<std::string> store_;              // Stable name storage, one entry per id.
  std::vector<Slot> table_;                    // Open-addressed name → id index.
  size_t table_mask_ = 0;                      // table_.size() - 1 (size is a power of two).
  std::vector<const std::string*> names_;      // Dense id → name (stable pointers).
  std::map<std::string_view, TagId> ordered_;  // Name-ordered index for prefix scans.
  int64_t intern_requests_ = 0;
  std::function<void(TagId, std::string_view)> intern_sink_;
  uint32_t shard_count_ = 1;
  std::vector<uint32_t> shard_of_;  // Dense id → owning shard (all 0 when unsharded).
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_TAG_REGISTRY_H_
