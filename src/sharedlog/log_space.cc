#include "src/sharedlog/log_space.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/storage/checkpoint.h"
#include "src/storage/durability.h"

namespace halfmoon::sharedlog {

LogSpace::LogSpace() {
  owned_shared_ = std::make_unique<Shared>();
  shared_ = owned_shared_.get();
  peers_ = {this};
  PreinternWellKnown();
}

LogSpace::LogSpace(Shared* shared, uint32_t shard, uint32_t shard_count)
    : shared_(shared), shard_(shard), shard_count_(shard_count) {
  HM_CHECK(shared != nullptr);
  HM_CHECK(shard < shard_count);
  HM_CHECK_MSG(shared_->tags.shard_count() == shard_count,
               "LogSpace shard: TagRegistry::SetShardCount must run before shard construction");
  // Idempotent across shards: the first shard interns, the rest verify the same ids.
  PreinternWellKnown();
}

void LogSpace::PreinternWellKnown() {
  // Pre-intern the two global streams so their ids are compile-time constants everywhere.
  HM_CHECK(shared_->tags.Intern(InitLogTag()) == kInitTagId);
  HM_CHECK(shared_->tags.Intern(FinishLogTag()) == kFinishTagId);
  // Same for the protocol op names (the kOp* constants of log_record.h).
  HM_CHECK(shared_->ops.Intern("init") == kOpInit);
  HM_CHECK(shared_->ops.Intern("read") == kOpRead);
  HM_CHECK(shared_->ops.Intern("write-pre") == kOpWritePre);
  HM_CHECK(shared_->ops.Intern("write") == kOpWrite);
  HM_CHECK(shared_->ops.Intern("invoke-pre") == kOpInvokePre);
  HM_CHECK(shared_->ops.Intern("invoke") == kOpInvoke);
  HM_CHECK(shared_->ops.Intern("sync") == kOpSync);
  HM_CHECK(shared_->ops.Intern("BEGIN") == kOpSwitchBegin);
  HM_CHECK(shared_->ops.Intern("END") == kOpSwitchEnd);
}

void LogSpace::SetPeers(std::vector<LogSpace*> peers) {
  HM_CHECK(peers.size() == shard_count_);
  HM_CHECK(peers[shard_] == this);
  peers_ = std::move(peers);
}

LogSpace::TagStream& LogSpace::StreamFor(TagId tag) {
  HM_CHECK_MSG(shared_->tags.Contains(tag), "LogSpace: tag id was never interned");
  if (tag >= streams_.size()) streams_.resize(tag + 1);
  return streams_[tag];
}

SeqNum LogSpace::Append(SimTime now, std::vector<TagId> tags, FieldMap fields) {
  HM_CHECK_MSG(!tags.empty(), "log records must carry at least one tag");
  return TagOwner(tags[0])->AppendLocal(now, std::move(tags), std::move(fields));
}

SeqNum LogSpace::AppendLocal(SimTime now, std::vector<TagId> tags, FieldMap fields) {
  HM_CHECK_MSG(!tags.empty(), "log records must carry at least one tag");
  SeqNum seqnum = AllocSeqNum();
  LogRecordPtr record = InstallRecord(now, seqnum, std::move(tags), std::move(fields));
  // Write-ahead ordering: the frame is journaled at commit, before the listener can start
  // index propagation — the cluster gates propagation (and the client gates its external
  // ack) on this frame becoming durable.
  if (shared_->durability != nullptr) JournalRecord(*record);
  if (shared_->commit_listener) shared_->commit_listener(seqnum);
  return seqnum;
}

LogRecordPtr LogSpace::MakeRecord(SeqNum seqnum, std::vector<TagId> tags, FieldMap fields) {
  auto record = std::make_shared<LogRecord>();
  record->seqnum = seqnum;
  record->tags = std::move(tags);
  record->fields = std::move(fields);
  if (record->fields.Has("op")) {
    record->op = shared_->ops.Intern(record->fields.GetStr("op"));
  }
  return record;
}

LogRecordPtr LogSpace::InstallRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                                     FieldMap fields) {
  LogRecordPtr record = MakeRecord(seqnum, std::move(tags), std::move(fields));
  StoredRecord stored;
  stored.live_tag_refs = static_cast<int>(record->tags.size());
  shared_->gauge.Add(now, static_cast<int64_t>(record->ByteSize()));
  // Each tag's sub-stream lives on the tag's owning shard; the encoded seqnums are allocated
  // in global commit order, so pushing to the back keeps every stream sorted — also on shards
  // other than the sequencing one.
  for (TagId tag : record->tags) {
    TagStream& stream = TagOwner(tag)->StreamFor(tag);
    if (stream.seqnums.empty()) {
      shared_->live_tags.emplace(std::string_view(shared_->tags.Name(tag)), tag);
    }
    stream.seqnums.push_back(seqnum);
  }
  stored.record = record;
  records_.emplace(seqnum, std::move(stored));
  return record;
}

std::string LogSpace::EncodeRecordPayload(const LogRecord& record) {
  std::string payload;
  storage::PutU64(&payload, record.seqnum);
  storage::PutU32(&payload, static_cast<uint32_t>(record.tags.size()));
  for (TagId tag : record.tags) storage::PutU64(&payload, tag);
  storage::PutU32(&payload, static_cast<uint32_t>(record.fields.size()));
  for (const auto& [key, field] : record.fields) {
    storage::PutStr(&payload, key);
    if (const int64_t* i = std::get_if<int64_t>(&field)) {
      storage::PutU8(&payload, 0);
      storage::PutU64(&payload, static_cast<uint64_t>(*i));
    } else {
      storage::PutU8(&payload, 1);
      storage::PutStr(&payload, std::get<std::string>(field));
    }
  }
  return payload;
}

void LogSpace::JournalRecord(const LogRecord& record) {
  uint64_t end = shared_->durability->AppendFrame(storage::FrameType::kRecord,
                                                  EncodeRecordPayload(record));
  shared_->durability->NoteCommit(record.seqnum, end);
}

void LogSpace::RestoreRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                             FieldMap fields, bool fuzzy) {
  HM_CHECK_MSG(!tags.empty(), "log records must carry at least one tag");
  if (fuzzy) {
    SeqOwner(seqnum)->RestoreRecordFuzzyLocal(now, seqnum, std::move(tags), std::move(fields));
  } else {
    SeqOwner(seqnum)->RestoreRecordLocal(now, seqnum, std::move(tags), std::move(fields));
  }
}

void LogSpace::RestoreRecordLocal(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                                  FieldMap fields) {
  // Frames replay in append order and seqnums are allocated in commit order, so a replay
  // observes strictly increasing seqnums; the watermark lands exactly where the original
  // run's durable prefix left it.
  HM_CHECK_MSG(seqnum > shared_->watermark, "journal replay out of commit order");
  shared_->watermark = seqnum;
  InstallRecord(now, seqnum, std::move(tags), std::move(fields));
}

void LogSpace::RestoreRecordFuzzyLocal(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                                       FieldMap fields) {
  // Replay-suffix on top of a fuzzy image: the image may reflect this record in none, some,
  // or all of its streams (each stream was snapshotted at its own instant). The body installs
  // once; each stream does a sorted check-and-insert so already-absorbed frames are no-ops.
  // Seqnums need not arrive above the watermark — image streams already carried later ones.
  if (shared_->watermark < seqnum) shared_->watermark = seqnum;
  auto it = records_.find(seqnum);
  if (it == records_.end()) {
    LogRecordPtr record = MakeRecord(seqnum, std::move(tags), std::move(fields));
    shared_->gauge.Add(now, static_cast<int64_t>(record->ByteSize()));
    it = records_.emplace(seqnum, StoredRecord{std::move(record), 0}).first;
  }
  StoredRecord& stored = it->second;
  for (TagId tag : stored.record->tags) {
    TagStream& stream = TagOwner(tag)->StreamFor(tag);
    auto pos = std::lower_bound(stream.seqnums.begin(), stream.seqnums.end(), seqnum);
    if (pos != stream.seqnums.end() && *pos == seqnum) continue;  // Image already has it.
    if (stream.seqnums.empty()) {
      shared_->live_tags.emplace(std::string_view(shared_->tags.Name(tag)), tag);
    }
    stream.seqnums.insert(pos, seqnum);
    ++stored.live_tag_refs;
  }
}

void LogSpace::RestoreTrim(SimTime now, TagId tag, SeqNum upto, size_t base_after) {
  HM_CHECK_MSG(shared_->tags.Contains(tag), "journal replay trims an unknown tag");
  TagOwner(tag)->RestoreTrimLocal(now, tag, upto, base_after);
}

void LogSpace::RestoreTrimLocal(SimTime now, TagId tag, SeqNum upto, size_t base_after) {
  TagStream& stream = StreamFor(tag);
  while (!stream.seqnums.empty() && stream.seqnums.front() <= upto) {
    ReleaseRef(now, stream.seqnums.front());
    stream.seqnums.pop_front();
  }
  // max() rather than += pops: when the image already absorbed (part of) this trim the pops
  // above release fewer records than the original did, but the journaled base_after is the
  // exact base the original trim left behind — logical offsets stay correct either way.
  if (stream.base < base_after) stream.base = base_after;
  if (stream.seqnums.empty() && stream.base > 0) {
    shared_->live_tags.erase(std::string_view(shared_->tags.Name(tag)));
  }
}

size_t LogSpace::CheckpointTag(TagId tag, storage::CheckpointStore* store,
                               std::unordered_set<SeqNum>* emitted_bodies,
                               int64_t* frames) const {
  const TagStream* stream = FindStream(tag);
  if (stream == nullptr || stream->length() == 0) return 0;
  size_t consumed = 1;
  std::string payload;
  storage::PutU64(&payload, tag);
  storage::PutU64(&payload, stream->base);
  storage::PutU32(&payload, static_cast<uint32_t>(stream->seqnums.size()));
  for (SeqNum seqnum : stream->seqnums) {
    // Emit each referenced body once per round, before the first stream that references it.
    if (emitted_bodies->insert(seqnum).second) {
      LogRecordPtr record = LookupLive(seqnum);
      HM_CHECK_MSG(record != nullptr, "checkpoint walk: stream references a dead record");
      store->AppendFrame(storage::FrameType::kCkptRecord, EncodeRecordPayload(*record));
      ++*frames;
      ++consumed;
    }
    storage::PutU64(&payload, seqnum);
    ++consumed;
  }
  store->AppendFrame(storage::FrameType::kCkptTagStream, payload);
  ++*frames;
  return consumed;
}

void LogSpace::RestoreCheckpointRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                                       FieldMap fields) {
  HM_CHECK_MSG(!tags.empty(), "log records must carry at least one tag");
  LogSpace* owner = SeqOwner(seqnum);
  LogRecordPtr record = owner->MakeRecord(seqnum, std::move(tags), std::move(fields));
  shared_->gauge.Add(now, static_cast<int64_t>(record->ByteSize()));
  bool inserted = owner->records_.emplace(seqnum, StoredRecord{std::move(record), 0}).second;
  HM_CHECK_MSG(inserted, "checkpoint image installs a record twice");
  if (shared_->watermark < seqnum) shared_->watermark = seqnum;
}

void LogSpace::RestoreCheckpointStream(SimTime now, TagId tag, size_t base,
                                       const std::vector<SeqNum>& seqnums) {
  HM_CHECK_MSG(shared_->tags.Contains(tag), "checkpoint image names an unknown tag");
  TagOwner(tag)->RestoreCheckpointStreamLocal(now, tag, base, seqnums);
}

void LogSpace::RestoreCheckpointStreamLocal(SimTime now, TagId tag, size_t base,
                                            const std::vector<SeqNum>& seqnums) {
  (void)now;
  TagStream& stream = StreamFor(tag);
  HM_CHECK_MSG(stream.seqnums.empty() && stream.base == 0,
               "checkpoint image restores a stream twice");
  stream.base = base;
  for (SeqNum seqnum : seqnums) {
    HM_CHECK_MSG(stream.seqnums.empty() || stream.seqnums.back() < seqnum,
                 "checkpoint image stream is not sorted");
    stream.seqnums.push_back(seqnum);
    SeqOwner(seqnum)->TakeRefLocal(seqnum);
    if (shared_->watermark < seqnum) shared_->watermark = seqnum;
  }
  if (!stream.seqnums.empty()) {
    shared_->live_tags.emplace(std::string_view(shared_->tags.Name(tag)), tag);
  }
}

void LogSpace::TakeRefLocal(SeqNum seqnum) {
  auto it = records_.find(seqnum);
  HM_CHECK_MSG(it != records_.end(),
               "checkpoint image stream references a record the image does not carry");
  ++it->second.live_tag_refs;
}

void LogSpace::ResetShardVolatile() {
  records_.clear();
  streams_.clear();
}

bool LogSpace::CondHolds(TagId cond_tag, size_t cond_pos, SeqNum* existing) {
  TagStream& stream = TagOwner(cond_tag)->StreamFor(cond_tag);
  if (stream.length() == cond_pos) return true;
  // Conflict: some peer already appended at (or past) the expected offset. Report the record
  // occupying that offset so the caller can recover its peer's state. Unlike the description
  // in §5.1 we can check *before* physically appending because LogSpace is the linearization
  // point itself; the observable behaviour (append undone, existing seqnum returned) is
  // identical.
  HM_CHECK_MSG(cond_pos < stream.length(),
               "logCondAppend: expected offset beyond stream end (missed a step?)");
  // A conflict below the compacted prefix would mean the occupying record was already
  // GC-trimmed — impossible while the losing instance still runs (§4.5 keeps every record
  // a live SSF may seek), so the offset must fall in the retained suffix.
  HM_CHECK_MSG(cond_pos >= stream.base,
               "logCondAppend: conflicting offset was already trimmed");
  *existing = stream.seqnums[cond_pos - stream.base];
  return false;
}

CondAppendResult LogSpace::CondAppend(SimTime now, std::vector<TagId> tags, FieldMap fields,
                                      TagId cond_tag, size_t cond_pos) {
  // The conditional tag must be among the record's tags, otherwise the offset check is
  // meaningless (the new record would never appear in the conditional stream).
  HM_CHECK_MSG(std::find(tags.begin(), tags.end(), cond_tag) != tags.end(),
               "logCondAppend: cond_tag must be one of the record's tags");
  // The shard owning cond_tag arbitrates the condition, so racing cond-appends on one tag
  // serialize through one shard's sequencer no matter which node issued them.
  return TagOwner(cond_tag)->CondAppendLocal(now, std::move(tags), std::move(fields), cond_tag,
                                             cond_pos);
}

CondAppendResult LogSpace::CondAppendLocal(SimTime now, std::vector<TagId> tags,
                                           FieldMap fields, TagId cond_tag, size_t cond_pos) {
  CondAppendResult result;
  if (!CondHolds(cond_tag, cond_pos, &result.existing_seqnum)) {
    result.ok = false;
    return result;
  }
  result.ok = true;
  result.seqnum = AppendLocal(now, std::move(tags), std::move(fields));
  result.record = LookupLive(result.seqnum);
  return result;
}

CondAppendResult LogSpace::CondAppendBatch(SimTime now, std::vector<BatchEntry> batch,
                                           TagId cond_tag, size_t cond_pos) {
  HM_CHECK(!batch.empty());
  return TagOwner(cond_tag)->CondAppendBatchLocal(now, std::move(batch), cond_tag, cond_pos);
}

CondAppendResult LogSpace::CondAppendBatchLocal(SimTime now, std::vector<BatchEntry> batch,
                                               TagId cond_tag, size_t cond_pos) {
  CondAppendResult result;
  if (!CondHolds(cond_tag, cond_pos, &result.existing_seqnum)) {
    result.ok = false;
    return result;
  }
  result.ok = true;
  result.seqnum = AppendBatchLocal(now, std::move(batch));
  result.record = LookupLive(result.seqnum);
  return result;
}

SeqNum LogSpace::AppendBatch(SimTime now, std::vector<BatchEntry> batch) {
  HM_CHECK(!batch.empty());
  HM_CHECK_MSG(!batch[0].tags.empty(), "log records must carry at least one tag");
  return TagOwner(batch[0].tags[0])->AppendBatchLocal(now, std::move(batch));
}

SeqNum LogSpace::AppendBatchLocal(SimTime now, std::vector<BatchEntry> batch) {
  HM_CHECK(!batch.empty());
  // Suppress per-record commit notifications: the batch becomes visible to index replicas as
  // a unit (one notification carrying the last seqnum), so no replica ever observes half of
  // an atomically committed group.
  std::function<void(SeqNum)> listener;
  listener.swap(shared_->commit_listener);
  SeqNum first = kInvalidSeqNum;
  SeqNum last = kInvalidSeqNum;
  for (size_t i = 0; i < batch.size(); ++i) {
    last = AppendLocal(now, std::move(batch[i].tags), std::move(batch[i].fields));
    if (i == 0) first = last;
  }
  listener.swap(shared_->commit_listener);
  if (shared_->commit_listener) shared_->commit_listener(last);
  return first;
}

std::vector<LogSpace::GroupVerdict> LogSpace::AppendGroup(SimTime now,
                                                          std::vector<GroupRequest> requests) {
  // Suppress per-record commit notifications: the round becomes visible to index replicas as
  // a unit (one notification carrying the last committed seqnum), so no replica ever
  // observes part of an atomically committed sub-group.
  std::function<void(SeqNum)> listener;
  listener.swap(shared_->commit_listener);
  std::vector<GroupVerdict> verdicts(requests.size());
  SeqNum last = kInvalidSeqNum;
  for (size_t i = 0; i < requests.size(); ++i) {
    GroupRequest& request = requests[i];
    GroupVerdict& verdict = verdicts[i];
    HM_CHECK(!request.entries.empty());
    if (request.cond_tag != kInvalidTagId) {
      HM_CHECK_MSG(std::find(request.entries[0].tags.begin(), request.entries[0].tags.end(),
                             request.cond_tag) != request.entries[0].tags.end(),
                   "AppendGroup: cond_tag must be one of the first entry's tags");
      if (!CondHolds(request.cond_tag, request.cond_pos, &verdict.existing_seqnum)) {
        continue;  // This request loses; later requests still get their turn.
      }
    }
    verdict.ok = true;
    for (size_t j = 0; j < request.entries.size(); ++j) {
      last = AppendLocal(now, std::move(request.entries[j].tags),
                         std::move(request.entries[j].fields));
      if (j == 0) verdict.seqnum = last;
    }
  }
  listener.swap(shared_->commit_listener);
  if (shared_->commit_listener && last != kInvalidSeqNum) shared_->commit_listener(last);
  return verdicts;
}

LogRecordPtr LogSpace::Get(SeqNum seqnum) const { return LookupLive(seqnum); }

LogRecordPtr LogSpace::FindFirstByStep(TagId tag, OpId op, int64_t step) const {
  if (op == kInvalidOpId) return nullptr;  // The op name was never appended anywhere.
  const LogSpace* owner = TagOwnerOrNull(tag);
  if (owner == nullptr) return nullptr;
  const TagStream* stream = owner->FindStream(tag);
  if (stream == nullptr) return nullptr;
  for (SeqNum seqnum : stream->seqnums) {
    LogRecordPtr record = LookupLive(seqnum);
    if (record == nullptr) continue;
    if (record->op == op && record->fields.GetInt("step") == step) {
      return record;
    }
  }
  return nullptr;
}

std::vector<TagId> LogSpace::LiveTagsWithPrefix(std::string_view prefix) const {
  std::vector<TagId> out;
  // live_tags is name-ordered, so all matches form one contiguous range starting at the
  // first name >= prefix; results come out in name order for free. The index is shared
  // state, so the scan spans every shard's streams.
  for (auto it = shared_->live_tags.lower_bound(prefix); it != shared_->live_tags.end(); ++it) {
    if (it->first.substr(0, prefix.size()) != prefix) break;
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> LogSpace::StreamTagsWithPrefix(std::string_view prefix) const {
  std::vector<std::string> names;
  for (auto it = shared_->live_tags.lower_bound(prefix); it != shared_->live_tags.end(); ++it) {
    if (it->first.substr(0, prefix.size()) != prefix) break;
    names.emplace_back(it->first);
  }
  return names;
}

LogRecordPtr LogSpace::LookupLive(SeqNum seqnum) const {
  const LogSpace* owner = SeqOwner(seqnum);
  auto it = owner->records_.find(seqnum);
  if (it == owner->records_.end()) return nullptr;
  return it->second.record;
}

LogRecordPtr LogSpace::ReadPrev(TagId tag, SeqNum max_seqnum) const {
  const LogSpace* owner = TagOwnerOrNull(tag);
  if (owner == nullptr) return nullptr;
  const TagStream* stream = owner->FindStream(tag);
  if (stream == nullptr) return nullptr;
  // Last seqnum <= max_seqnum within the live (untrimmed) suffix.
  auto upper = std::upper_bound(stream->seqnums.begin(), stream->seqnums.end(), max_seqnum);
  if (upper == stream->seqnums.begin()) return nullptr;
  return LookupLive(*(upper - 1));
}

SeqNum LogSpace::LatestSeqNoAtMost(TagId tag, SeqNum max_seqnum) const {
  const LogSpace* owner = TagOwnerOrNull(tag);
  if (owner == nullptr) return kInvalidSeqNum;
  const TagStream* stream = owner->FindStream(tag);
  if (stream == nullptr) return kInvalidSeqNum;
  auto upper = std::upper_bound(stream->seqnums.begin(), stream->seqnums.end(), max_seqnum);
  if (upper == stream->seqnums.begin()) return kInvalidSeqNum;
  return *(upper - 1);
}

LogRecordPtr LogSpace::ReadNext(TagId tag, SeqNum min_seqnum) const {
  const LogSpace* owner = TagOwnerOrNull(tag);
  if (owner == nullptr) return nullptr;
  const TagStream* stream = owner->FindStream(tag);
  if (stream == nullptr) return nullptr;
  auto lower = std::lower_bound(stream->seqnums.begin(), stream->seqnums.end(), min_seqnum);
  if (lower == stream->seqnums.end()) return nullptr;
  return LookupLive(*lower);
}

std::vector<LogRecordPtr> LogSpace::ReadStream(TagId tag) const {
  return ReadStreamUpTo(tag, kMaxSeqNum);
}

std::vector<LogRecordPtr> LogSpace::ReadStreamUpTo(TagId tag, SeqNum max_seqnum) const {
  std::vector<LogRecordPtr> out;
  const LogSpace* owner = TagOwnerOrNull(tag);
  if (owner == nullptr) return out;
  const TagStream* stream = owner->FindStream(tag);
  if (stream == nullptr) return out;
  out.reserve(stream->seqnums.size());
  for (SeqNum seqnum : stream->seqnums) {
    if (seqnum > max_seqnum) break;
    LogRecordPtr record = LookupLive(seqnum);
    if (record != nullptr) out.push_back(std::move(record));
  }
  return out;
}

void LogSpace::ReleaseRef(SimTime now, SeqNum seqnum) {
  SeqOwner(seqnum)->ReleaseRefLocal(now, seqnum);
}

void LogSpace::ReleaseRefLocal(SimTime now, SeqNum seqnum) {
  auto it = records_.find(seqnum);
  HM_CHECK_MSG(it != records_.end(), "ReleaseRef on missing record");
  if (--it->second.live_tag_refs == 0) {
    shared_->gauge.Add(now, -static_cast<int64_t>(it->second.record->ByteSize()));
    records_.erase(it);
  }
}

size_t LogSpace::Trim(SimTime now, TagId tag, SeqNum upto) {
  if (!shared_->tags.Contains(tag)) return 0;
  return TagOwner(tag)->TrimLocal(now, tag, upto, /*journal=*/true);
}

size_t LogSpace::TrimLocal(SimTime now, TagId tag, SeqNum upto, bool journal) {
  if (tag >= streams_.size()) return 0;
  TagStream& stream = streams_[tag];
  size_t released = 0;
  while (!stream.seqnums.empty() && stream.seqnums.front() <= upto) {
    ReleaseRef(now, stream.seqnums.front());
    stream.seqnums.pop_front();
    ++stream.base;
    ++released;
  }
  if (stream.seqnums.empty() && stream.base > 0) {
    shared_->live_tags.erase(std::string_view(shared_->tags.Name(tag)));
  }
  // Trims are journaled fire-and-forget: nothing external depends on a trim being durable,
  // and a trim lost to a crash merely resurrects garbage the next GC pass re-collects. The
  // resulting base rides along so fuzzy replay (DESIGN.md §14) can restore logical offsets
  // without re-counting pops the image may have absorbed.
  if (journal && released > 0 && shared_->durability != nullptr) {
    std::string payload;
    storage::PutU64(&payload, tag);
    storage::PutU64(&payload, upto);
    storage::PutU64(&payload, stream.base);
    shared_->durability->AppendFrame(storage::FrameType::kTrim, payload);
  }
  return released;
}

size_t LogSpace::StreamLength(TagId tag) const {
  const LogSpace* owner = TagOwnerOrNull(tag);
  if (owner == nullptr) return 0;
  const TagStream* stream = owner->FindStream(tag);
  return stream == nullptr ? 0 : stream->length();
}

size_t LogSpace::IndexEntries() const {
  size_t total = 0;
  for (const TagStream& stream : streams_) {
    total += stream.seqnums.size();
  }
  return total;
}

}  // namespace halfmoon::sharedlog
