#include "src/sharedlog/log_space.h"

#include <algorithm>

#include "src/common/check.h"

namespace halfmoon::sharedlog {

SeqNum LogSpace::Append(SimTime now, std::vector<Tag> tags, FieldMap fields) {
  HM_CHECK_MSG(!tags.empty(), "log records must carry at least one tag");
  SeqNum seqnum = next_seqnum_++;

  LogRecord record;
  record.seqnum = seqnum;
  record.tags = std::move(tags);
  record.fields = std::move(fields);

  StoredRecord stored;
  stored.live_tag_refs = static_cast<int>(record.tags.size());
  gauge_.Add(now, static_cast<int64_t>(record.ByteSize()));
  for (const Tag& tag : record.tags) {
    streams_[tag].seqnums.push_back(seqnum);
  }
  stored.record = std::move(record);
  records_.emplace(seqnum, std::move(stored));

  if (commit_listener_) commit_listener_(seqnum);
  return seqnum;
}

CondAppendResult LogSpace::CondAppend(SimTime now, std::vector<Tag> tags, FieldMap fields,
                                      const Tag& cond_tag, size_t cond_pos) {
  // The conditional tag must be among the record's tags, otherwise the offset check is
  // meaningless (the new record would never appear in the conditional stream).
  HM_CHECK_MSG(std::find(tags.begin(), tags.end(), cond_tag) != tags.end(),
               "logCondAppend: cond_tag must be one of the record's tags");

  CondAppendResult result;
  TagStream& stream = streams_[cond_tag];
  if (stream.seqnums.size() != cond_pos) {
    // Conflict: some peer already appended at (or past) the expected offset. Report the record
    // occupying that offset so the caller can recover its peer's state. Unlike the description
    // in §5.1 we can check *before* physically appending because LogSpace is the linearization
    // point itself; the observable behaviour (append undone, existing seqnum returned) is
    // identical.
    HM_CHECK_MSG(cond_pos < stream.seqnums.size(),
                 "logCondAppend: expected offset beyond stream end (missed a step?)");
    result.ok = false;
    result.existing_seqnum = stream.seqnums[cond_pos];
    return result;
  }

  result.ok = true;
  result.seqnum = Append(now, std::move(tags), std::move(fields));
  return result;
}

CondAppendResult LogSpace::CondAppendBatch(SimTime now, std::vector<BatchEntry> batch,
                                           const Tag& cond_tag, size_t cond_pos) {
  HM_CHECK(!batch.empty());
  CondAppendResult result;
  TagStream& stream = streams_[cond_tag];
  if (stream.seqnums.size() != cond_pos) {
    HM_CHECK_MSG(cond_pos < stream.seqnums.size(),
                 "CondAppendBatch: expected offset beyond stream end (missed a step?)");
    result.ok = false;
    result.existing_seqnum = stream.seqnums[cond_pos];
    return result;
  }
  result.ok = true;
  result.seqnum = AppendBatch(now, std::move(batch));
  return result;
}

SeqNum LogSpace::AppendBatch(SimTime now, std::vector<BatchEntry> batch) {
  HM_CHECK(!batch.empty());
  // Suppress per-record commit notifications: the batch becomes visible to index replicas as
  // a unit (one notification carrying the last seqnum), so no replica ever observes half of
  // an atomically committed group.
  std::function<void(SeqNum)> listener;
  listener.swap(commit_listener_);
  SeqNum first = kInvalidSeqNum;
  SeqNum last = kInvalidSeqNum;
  for (size_t i = 0; i < batch.size(); ++i) {
    last = Append(now, std::move(batch[i].tags), std::move(batch[i].fields));
    if (i == 0) first = last;
  }
  listener.swap(commit_listener_);
  if (commit_listener_) commit_listener_(last);
  return first;
}

std::optional<LogRecord> LogSpace::FindFirstByStep(const Tag& tag, const std::string& op,
                                                   int64_t step) const {
  auto it = streams_.find(tag);
  if (it == streams_.end()) return std::nullopt;
  const TagStream& stream = it->second;
  for (size_t i = stream.trimmed; i < stream.seqnums.size(); ++i) {
    std::optional<LogRecord> record = LookupLive(stream.seqnums[i]);
    if (!record.has_value()) continue;
    if (record->fields.GetStr("op") == op && record->fields.GetInt("step") == step) {
      return record;
    }
  }
  return std::nullopt;
}

std::vector<Tag> LogSpace::StreamTagsWithPrefix(const std::string& prefix) const {
  std::vector<Tag> tags;
  for (const auto& [tag, stream] : streams_) {
    if (tag.size() >= prefix.size() && tag.compare(0, prefix.size(), prefix) == 0 &&
        stream.trimmed < stream.seqnums.size()) {
      tags.push_back(tag);
    }
  }
  std::sort(tags.begin(), tags.end());
  return tags;
}

std::optional<LogRecord> LogSpace::LookupLive(SeqNum seqnum) const {
  auto it = records_.find(seqnum);
  if (it == records_.end()) return std::nullopt;
  return it->second.record;
}

std::optional<LogRecord> LogSpace::ReadPrev(const Tag& tag, SeqNum max_seqnum) const {
  auto it = streams_.find(tag);
  if (it == streams_.end()) return std::nullopt;
  const TagStream& stream = it->second;
  // Last seqnum <= max_seqnum within the live window [trimmed, size).
  auto begin = stream.seqnums.begin() + static_cast<ptrdiff_t>(stream.trimmed);
  auto upper = std::upper_bound(begin, stream.seqnums.end(), max_seqnum);
  if (upper == begin) return std::nullopt;
  return LookupLive(*(upper - 1));
}

std::optional<LogRecord> LogSpace::ReadNext(const Tag& tag, SeqNum min_seqnum) const {
  auto it = streams_.find(tag);
  if (it == streams_.end()) return std::nullopt;
  const TagStream& stream = it->second;
  auto begin = stream.seqnums.begin() + static_cast<ptrdiff_t>(stream.trimmed);
  auto lower = std::lower_bound(begin, stream.seqnums.end(), min_seqnum);
  if (lower == stream.seqnums.end()) return std::nullopt;
  return LookupLive(*lower);
}

std::vector<LogRecord> LogSpace::ReadStream(const Tag& tag) const {
  return ReadStreamUpTo(tag, kMaxSeqNum);
}

std::vector<LogRecord> LogSpace::ReadStreamUpTo(const Tag& tag, SeqNum max_seqnum) const {
  std::vector<LogRecord> out;
  auto it = streams_.find(tag);
  if (it == streams_.end()) return out;
  const TagStream& stream = it->second;
  out.reserve(stream.seqnums.size() - stream.trimmed);
  for (size_t i = stream.trimmed; i < stream.seqnums.size(); ++i) {
    if (stream.seqnums[i] > max_seqnum) break;
    std::optional<LogRecord> record = LookupLive(stream.seqnums[i]);
    if (record.has_value()) out.push_back(std::move(*record));
  }
  return out;
}

void LogSpace::ReleaseRef(SimTime now, SeqNum seqnum) {
  auto it = records_.find(seqnum);
  HM_CHECK_MSG(it != records_.end(), "ReleaseRef on missing record");
  if (--it->second.live_tag_refs == 0) {
    gauge_.Add(now, -static_cast<int64_t>(it->second.record.ByteSize()));
    records_.erase(it);
  }
}

void LogSpace::Trim(SimTime now, const Tag& tag, SeqNum upto) {
  auto it = streams_.find(tag);
  if (it == streams_.end()) return;
  TagStream& stream = it->second;
  while (stream.trimmed < stream.seqnums.size() && stream.seqnums[stream.trimmed] <= upto) {
    ReleaseRef(now, stream.seqnums[stream.trimmed]);
    ++stream.trimmed;
  }
}

size_t LogSpace::StreamLength(const Tag& tag) const {
  auto it = streams_.find(tag);
  return it == streams_.end() ? 0 : it->second.seqnums.size();
}

}  // namespace halfmoon::sharedlog
