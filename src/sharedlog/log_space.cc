#include "src/sharedlog/log_space.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/check.h"

namespace halfmoon::sharedlog {

LogSpace::LogSpace() {
  // Pre-intern the two global streams so their ids are compile-time constants everywhere.
  HM_CHECK(tags_.Intern(InitLogTag()) == kInitTagId);
  HM_CHECK(tags_.Intern(FinishLogTag()) == kFinishTagId);
  // Same for the protocol op names (the kOp* constants of log_record.h).
  HM_CHECK(ops_.Intern("init") == kOpInit);
  HM_CHECK(ops_.Intern("read") == kOpRead);
  HM_CHECK(ops_.Intern("write-pre") == kOpWritePre);
  HM_CHECK(ops_.Intern("write") == kOpWrite);
  HM_CHECK(ops_.Intern("invoke-pre") == kOpInvokePre);
  HM_CHECK(ops_.Intern("invoke") == kOpInvoke);
  HM_CHECK(ops_.Intern("sync") == kOpSync);
  HM_CHECK(ops_.Intern("BEGIN") == kOpSwitchBegin);
  HM_CHECK(ops_.Intern("END") == kOpSwitchEnd);
}

LogSpace::TagStream& LogSpace::StreamFor(TagId tag) {
  HM_CHECK_MSG(tags_.Contains(tag), "LogSpace: tag id was never interned");
  if (tag >= streams_.size()) streams_.resize(tag + 1);
  return streams_[tag];
}

SeqNum LogSpace::Append(SimTime now, std::vector<TagId> tags, FieldMap fields) {
  HM_CHECK_MSG(!tags.empty(), "log records must carry at least one tag");
  SeqNum seqnum = next_seqnum_++;

  auto record = std::make_shared<LogRecord>();
  record->seqnum = seqnum;
  record->tags = std::move(tags);
  record->fields = std::move(fields);
  if (record->fields.Has("op")) {
    record->op = ops_.Intern(record->fields.GetStr("op"));
  }

  StoredRecord stored;
  stored.live_tag_refs = static_cast<int>(record->tags.size());
  gauge_.Add(now, static_cast<int64_t>(record->ByteSize()));
  for (TagId tag : record->tags) {
    TagStream& stream = StreamFor(tag);
    if (stream.seqnums.empty()) live_tags_.emplace(std::string_view(tags_.Name(tag)), tag);
    stream.seqnums.push_back(seqnum);
  }
  stored.record = std::move(record);
  records_.emplace(seqnum, std::move(stored));

  if (commit_listener_) commit_listener_(seqnum);
  return seqnum;
}

bool LogSpace::CondHolds(TagId cond_tag, size_t cond_pos, SeqNum* existing) {
  TagStream& stream = StreamFor(cond_tag);
  if (stream.length() == cond_pos) return true;
  // Conflict: some peer already appended at (or past) the expected offset. Report the record
  // occupying that offset so the caller can recover its peer's state. Unlike the description
  // in §5.1 we can check *before* physically appending because LogSpace is the linearization
  // point itself; the observable behaviour (append undone, existing seqnum returned) is
  // identical.
  HM_CHECK_MSG(cond_pos < stream.length(),
               "logCondAppend: expected offset beyond stream end (missed a step?)");
  // A conflict below the compacted prefix would mean the occupying record was already
  // GC-trimmed — impossible while the losing instance still runs (§4.5 keeps every record
  // a live SSF may seek), so the offset must fall in the retained suffix.
  HM_CHECK_MSG(cond_pos >= stream.base,
               "logCondAppend: conflicting offset was already trimmed");
  *existing = stream.seqnums[cond_pos - stream.base];
  return false;
}

CondAppendResult LogSpace::CondAppend(SimTime now, std::vector<TagId> tags, FieldMap fields,
                                      TagId cond_tag, size_t cond_pos) {
  // The conditional tag must be among the record's tags, otherwise the offset check is
  // meaningless (the new record would never appear in the conditional stream).
  HM_CHECK_MSG(std::find(tags.begin(), tags.end(), cond_tag) != tags.end(),
               "logCondAppend: cond_tag must be one of the record's tags");

  CondAppendResult result;
  if (!CondHolds(cond_tag, cond_pos, &result.existing_seqnum)) {
    result.ok = false;
    return result;
  }
  result.ok = true;
  result.seqnum = Append(now, std::move(tags), std::move(fields));
  result.record = LookupLive(result.seqnum);
  return result;
}

CondAppendResult LogSpace::CondAppendBatch(SimTime now, std::vector<BatchEntry> batch,
                                           TagId cond_tag, size_t cond_pos) {
  HM_CHECK(!batch.empty());
  CondAppendResult result;
  if (!CondHolds(cond_tag, cond_pos, &result.existing_seqnum)) {
    result.ok = false;
    return result;
  }
  result.ok = true;
  result.seqnum = AppendBatch(now, std::move(batch));
  result.record = LookupLive(result.seqnum);
  return result;
}

SeqNum LogSpace::AppendBatch(SimTime now, std::vector<BatchEntry> batch) {
  HM_CHECK(!batch.empty());
  // Suppress per-record commit notifications: the batch becomes visible to index replicas as
  // a unit (one notification carrying the last seqnum), so no replica ever observes half of
  // an atomically committed group.
  std::function<void(SeqNum)> listener;
  listener.swap(commit_listener_);
  SeqNum first = kInvalidSeqNum;
  SeqNum last = kInvalidSeqNum;
  for (size_t i = 0; i < batch.size(); ++i) {
    last = Append(now, std::move(batch[i].tags), std::move(batch[i].fields));
    if (i == 0) first = last;
  }
  listener.swap(commit_listener_);
  if (commit_listener_) commit_listener_(last);
  return first;
}

std::vector<LogSpace::GroupVerdict> LogSpace::AppendGroup(SimTime now,
                                                          std::vector<GroupRequest> requests) {
  // Suppress per-record commit notifications: the round becomes visible to index replicas as
  // a unit (one notification carrying the last committed seqnum), so no replica ever
  // observes part of an atomically committed sub-group.
  std::function<void(SeqNum)> listener;
  listener.swap(commit_listener_);
  std::vector<GroupVerdict> verdicts(requests.size());
  SeqNum last = kInvalidSeqNum;
  for (size_t i = 0; i < requests.size(); ++i) {
    GroupRequest& request = requests[i];
    GroupVerdict& verdict = verdicts[i];
    HM_CHECK(!request.entries.empty());
    if (request.cond_tag != kInvalidTagId) {
      HM_CHECK_MSG(std::find(request.entries[0].tags.begin(), request.entries[0].tags.end(),
                             request.cond_tag) != request.entries[0].tags.end(),
                   "AppendGroup: cond_tag must be one of the first entry's tags");
      if (!CondHolds(request.cond_tag, request.cond_pos, &verdict.existing_seqnum)) {
        continue;  // This request loses; later requests still get their turn.
      }
    }
    verdict.ok = true;
    for (size_t j = 0; j < request.entries.size(); ++j) {
      last = Append(now, std::move(request.entries[j].tags),
                    std::move(request.entries[j].fields));
      if (j == 0) verdict.seqnum = last;
    }
  }
  listener.swap(commit_listener_);
  if (commit_listener_ && last != kInvalidSeqNum) commit_listener_(last);
  return verdicts;
}

LogRecordPtr LogSpace::Get(SeqNum seqnum) const { return LookupLive(seqnum); }

LogRecordPtr LogSpace::FindFirstByStep(TagId tag, OpId op, int64_t step) const {
  if (op == kInvalidOpId) return nullptr;  // The op name was never appended anywhere.
  const TagStream* stream = FindStream(tag);
  if (stream == nullptr) return nullptr;
  for (SeqNum seqnum : stream->seqnums) {
    LogRecordPtr record = LookupLive(seqnum);
    if (record == nullptr) continue;
    if (record->op == op && record->fields.GetInt("step") == step) {
      return record;
    }
  }
  return nullptr;
}

std::vector<TagId> LogSpace::LiveTagsWithPrefix(std::string_view prefix) const {
  std::vector<TagId> out;
  // live_tags_ is name-ordered, so all matches form one contiguous range starting at the
  // first name >= prefix; results come out in name order for free.
  for (auto it = live_tags_.lower_bound(prefix); it != live_tags_.end(); ++it) {
    if (it->first.substr(0, prefix.size()) != prefix) break;
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> LogSpace::StreamTagsWithPrefix(std::string_view prefix) const {
  std::vector<std::string> names;
  for (auto it = live_tags_.lower_bound(prefix); it != live_tags_.end(); ++it) {
    if (it->first.substr(0, prefix.size()) != prefix) break;
    names.emplace_back(it->first);
  }
  return names;
}

LogRecordPtr LogSpace::LookupLive(SeqNum seqnum) const {
  auto it = records_.find(seqnum);
  if (it == records_.end()) return nullptr;
  return it->second.record;
}

LogRecordPtr LogSpace::ReadPrev(TagId tag, SeqNum max_seqnum) const {
  const TagStream* stream = FindStream(tag);
  if (stream == nullptr) return nullptr;
  // Last seqnum <= max_seqnum within the live (untrimmed) suffix.
  auto upper = std::upper_bound(stream->seqnums.begin(), stream->seqnums.end(), max_seqnum);
  if (upper == stream->seqnums.begin()) return nullptr;
  return LookupLive(*(upper - 1));
}

LogRecordPtr LogSpace::ReadNext(TagId tag, SeqNum min_seqnum) const {
  const TagStream* stream = FindStream(tag);
  if (stream == nullptr) return nullptr;
  auto lower = std::lower_bound(stream->seqnums.begin(), stream->seqnums.end(), min_seqnum);
  if (lower == stream->seqnums.end()) return nullptr;
  return LookupLive(*lower);
}

std::vector<LogRecordPtr> LogSpace::ReadStream(TagId tag) const {
  return ReadStreamUpTo(tag, kMaxSeqNum);
}

std::vector<LogRecordPtr> LogSpace::ReadStreamUpTo(TagId tag, SeqNum max_seqnum) const {
  std::vector<LogRecordPtr> out;
  const TagStream* stream = FindStream(tag);
  if (stream == nullptr) return out;
  out.reserve(stream->seqnums.size());
  for (SeqNum seqnum : stream->seqnums) {
    if (seqnum > max_seqnum) break;
    LogRecordPtr record = LookupLive(seqnum);
    if (record != nullptr) out.push_back(std::move(record));
  }
  return out;
}

void LogSpace::ReleaseRef(SimTime now, SeqNum seqnum) {
  auto it = records_.find(seqnum);
  HM_CHECK_MSG(it != records_.end(), "ReleaseRef on missing record");
  if (--it->second.live_tag_refs == 0) {
    gauge_.Add(now, -static_cast<int64_t>(it->second.record->ByteSize()));
    records_.erase(it);
  }
}

size_t LogSpace::Trim(SimTime now, TagId tag, SeqNum upto) {
  if (tag >= streams_.size()) return 0;
  TagStream& stream = streams_[tag];
  size_t released = 0;
  while (!stream.seqnums.empty() && stream.seqnums.front() <= upto) {
    ReleaseRef(now, stream.seqnums.front());
    stream.seqnums.pop_front();
    ++stream.base;
    ++released;
  }
  if (stream.seqnums.empty() && stream.base > 0) {
    live_tags_.erase(std::string_view(tags_.Name(tag)));
  }
  return released;
}

size_t LogSpace::StreamLength(TagId tag) const {
  const TagStream* stream = FindStream(tag);
  return stream == nullptr ? 0 : stream->length();
}

size_t LogSpace::IndexEntries() const {
  size_t total = 0;
  for (const TagStream& stream : streams_) {
    total += stream.seqnums.size();
  }
  return total;
}

}  // namespace halfmoon::sharedlog
