// The authoritative state of the shared log: the sequencer's counter, the record store, and
// the per-tag sub-stream index.
//
// LogSpace is pure state — all latency, caching, and queueing live in LogClient. This split
// mirrors Boki: a metalog/sequencer that orders records, storage nodes that hold them, and
// per-function-node index replicas that trail the authoritative index by a propagation delay.
//
// Performance notes (see DESIGN.md "Performance architecture"):
//   * Records are immutable after commit and stored behind shared_ptr-to-const; every read
//     API returns a shared view (LogRecordPtr), never a copy.
//   * Tags are interned ids (see tag_registry.h): the steady-state append/read/trim API takes
//     TagId only, so no std::string is built or hashed per operation. The string-named
//     overloads below are convenience entry points for tests and cold bootstrap code; they
//     intern (writes) or look up (reads) the name and forward to the TagId path.
//   * A sub-stream keeps only its untrimmed seqnum suffix (deque + base offset), so trimmed
//     history costs no memory while logical logCondAppend offsets stay stable.
//   * Live stream tags are mirrored in a name-ordered index, so prefix scans (the GC's
//     per-object write-log enumeration) are range scans instead of full-table scans.

#ifndef HALFMOON_SHAREDLOG_LOG_SPACE_H_
#define HALFMOON_SHAREDLOG_LOG_SPACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/metrics/storage_sampler.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/tag_registry.h"

namespace halfmoon::sharedlog {

class LogSpace {
 public:
  LogSpace();
  LogSpace(const LogSpace&) = delete;
  LogSpace& operator=(const LogSpace&) = delete;

  // The tag interner shared by everything layered on this log. "ssf.init" and "ssf.finish"
  // are pre-interned to kInitTagId / kFinishTagId.
  TagRegistry& tags() { return tags_; }
  const TagRegistry& tags() const { return tags_; }

  // The op-name interner ("op" field values). The protocol ops are pre-interned to the kOp*
  // constants of log_record.h; Append stamps each record's `op` id from its fields.
  TagRegistry& ops() { return ops_; }
  const TagRegistry& ops() const { return ops_; }

  // Appends a record, assigning the next sequence number. `now` feeds storage accounting.
  // Notifies the commit listener (used for index propagation to clients).
  SeqNum Append(SimTime now, std::vector<TagId> tags, FieldMap fields);

  // Conditional append (§5.1): appends, then verifies that the new record lands at logical
  // offset `cond_pos` of the `cond_tag` sub-stream. On mismatch the append is undone and the
  // seqnum of the record actually at that offset is returned.
  CondAppendResult CondAppend(SimTime now, std::vector<TagId> tags, FieldMap fields,
                              TagId cond_tag, size_t cond_pos);

  // Atomically appends a batch of records under the same condition (offset of the *first*
  // record in `cond_tag`'s stream). Either all records commit with consecutive seqnums or none
  // do. Models Boki's batched append, which Halfmoon-read uses to install the version record
  // and the commit record of a write in one sequencer round (§4.1).
  struct BatchEntry {
    std::vector<TagId> tags;
    FieldMap fields;
  };
  CondAppendResult CondAppendBatch(SimTime now, std::vector<BatchEntry> batch, TagId cond_tag,
                                   size_t cond_pos);

  // Unconditional atomic batch append; returns the first seqnum (the records receive
  // consecutive ones). Index replicas learn about the batch as a unit.
  SeqNum AppendBatch(SimTime now, std::vector<BatchEntry> batch);

  // One request of a group-committed sequencer round (see AppendGroup). The entries form an
  // atomic sub-group: all of them commit (with consecutive seqnums) or none do. A request
  // with cond_tag == kInvalidTagId is unconditional; otherwise it carries the logCondAppend
  // condition "the first entry lands at logical offset cond_pos of cond_tag's stream".
  struct GroupRequest {
    std::vector<BatchEntry> entries;
    TagId cond_tag = kInvalidTagId;
    size_t cond_pos = 0;
  };
  // Per-request outcome of AppendGroup. On success `seqnum` is the first entry's position;
  // on conflict `existing_seqnum` is the record occupying the expected offset.
  struct GroupVerdict {
    bool ok = false;
    SeqNum seqnum = kInvalidSeqNum;
    SeqNum existing_seqnum = kInvalidSeqNum;
  };

  // Group commit: orders several independent append requests in ONE sequencer round.
  // Requests are evaluated strictly in vector order, each seeing the stream state left by
  // its predecessors — exactly as if the requests had been submitted back-to-back as
  // separate rounds in that order, which is what makes node-local append batching
  // protocol-invisible. Index replicas learn about the whole round as a unit: the commit
  // listener fires once, with the round's last committed seqnum (not at all if every
  // request conflicted).
  std::vector<GroupVerdict> AppendGroup(SimTime now, std::vector<GroupRequest> requests);

  // Shared view of the live record at `seqnum`; null if absent or fully trimmed.
  LogRecordPtr Get(SeqNum seqnum) const;

  // First live record in `tag`'s sub-stream whose "op" and "step" fields match. Boki resolves
  // peer races by honoring the first record logged for a step (§5.1). The scan compares the
  // record's interned op id — no string comparison per record.
  LogRecordPtr FindFirstByStep(TagId tag, OpId op, int64_t step) const;
  LogRecordPtr FindFirstByStep(TagId tag, const std::string& op, int64_t step) const {
    return FindFirstByStep(tag, ops_.Find(op), step);
  }

  // Ids of all live streams whose name starts with `prefix` (GC scan over per-object write
  // logs). Served by an ordered range scan over the live-tag index: O(log streams + matches);
  // results are in name order.
  std::vector<TagId> LiveTagsWithPrefix(std::string_view prefix) const;

  // Name-returning variant of LiveTagsWithPrefix, for tests and display.
  std::vector<std::string> StreamTagsWithPrefix(std::string_view prefix) const;

  // Latest record in `tag`'s sub-stream with seqnum <= max (logReadPrev).
  LogRecordPtr ReadPrev(TagId tag, SeqNum max_seqnum) const;

  // Earliest record in `tag`'s sub-stream with seqnum >= min (logReadNext).
  LogRecordPtr ReadNext(TagId tag, SeqNum min_seqnum) const;

  // All live records of a sub-stream, in seqnum order (used to fetch step logs in Init).
  std::vector<LogRecordPtr> ReadStream(TagId tag) const;

  // Live records of a sub-stream with seqnum <= max_seqnum: the view of an index replica
  // that has caught up to max_seqnum.
  std::vector<LogRecordPtr> ReadStreamUpTo(TagId tag, SeqNum max_seqnum) const;

  // Garbage-collects a sub-stream: logically deletes records with seqnum <= upto from `tag`,
  // and frees the trimmed prefix of the stream's seqnum index. A record's storage is freed
  // once every one of its tags has trimmed past it. Returns the number of records removed
  // from this stream (0 when the tag has no stream or the prefix was already trimmed), which
  // feeds the GC's per-category trim counters.
  size_t Trim(SimTime now, TagId tag, SeqNum upto);

  // Logical offset (position since the beginning of time) that the *next* record appended to
  // `tag` would occupy. Used by clients to pre-check conditional appends in tests.
  size_t StreamLength(TagId tag) const;

  // ---- Name-based convenience entry points (tests, cold bootstrap paths) ----
  // Writes intern their tag names; reads resolve without interning, so probing a name that
  // was never appended does not grow the registry.
  SeqNum Append(SimTime now, std::vector<std::string> tag_names, FieldMap fields) {
    return Append(now, InternAll(std::move(tag_names)), std::move(fields));
  }
  CondAppendResult CondAppend(SimTime now, std::vector<std::string> tag_names, FieldMap fields,
                              std::string_view cond_tag, size_t cond_pos) {
    return CondAppend(now, InternAll(std::move(tag_names)), std::move(fields),
                      tags_.Intern(cond_tag), cond_pos);
  }
  LogRecordPtr FindFirstByStep(std::string_view tag, const std::string& op, int64_t step) const {
    return FindFirstByStep(tags_.Find(tag), op, step);
  }
  LogRecordPtr ReadPrev(std::string_view tag, SeqNum max_seqnum) const {
    return ReadPrev(tags_.Find(tag), max_seqnum);
  }
  LogRecordPtr ReadNext(std::string_view tag, SeqNum min_seqnum) const {
    return ReadNext(tags_.Find(tag), min_seqnum);
  }
  std::vector<LogRecordPtr> ReadStream(std::string_view tag) const {
    return ReadStream(tags_.Find(tag));
  }
  std::vector<LogRecordPtr> ReadStreamUpTo(std::string_view tag, SeqNum max_seqnum) const {
    return ReadStreamUpTo(tags_.Find(tag), max_seqnum);
  }
  size_t Trim(SimTime now, std::string_view tag, SeqNum upto) {
    return Trim(now, tags_.Find(tag), upto);
  }
  size_t StreamLength(std::string_view tag) const { return StreamLength(tags_.Find(tag)); }

  // The seqnum the next append will receive.
  SeqNum next_seqnum() const { return next_seqnum_; }

  // Number of records currently held (not yet trimmed from all their tags).
  size_t live_records() const { return records_.size(); }

  // Total seqnum entries retained across all sub-stream indices. Bounded by the number of
  // live (tag, record) pairs: trimmed prefixes are compacted away, so a fully trimmed stream
  // holds zero entries no matter how long its history (regression guard for the old
  // keep-forever index).
  size_t IndexEntries() const;

  int64_t CurrentBytes() const { return gauge_.CurrentBytes(); }
  metrics::StorageGauge& gauge() { return gauge_; }

  // Invoked synchronously at each commit with the new seqnum; the runtime uses it to schedule
  // index propagation to every function node.
  void SetCommitListener(std::function<void(SeqNum)> listener) {
    commit_listener_ = std::move(listener);
  }

 private:
  struct TagStream {
    // Untrimmed seqnums appended under this tag, in order. The logical offset of seqnums[i]
    // in the stream's full history is base + i: logical offsets for logCondAppend are stable
    // positions even after the trimmed prefix is compacted away.
    std::deque<SeqNum> seqnums;
    // Number of entries trimmed (and freed) from the front of the stream's history.
    size_t base = 0;

    size_t length() const { return base + seqnums.size(); }
  };

  std::vector<TagId> InternAll(std::vector<std::string> names) {
    std::vector<TagId> ids;
    ids.reserve(names.size());
    for (const std::string& name : names) ids.push_back(tags_.Intern(name));
    return ids;
  }

  struct StoredRecord {
    LogRecordPtr record;
    // Number of tags that still reference this record (not yet trimmed past it).
    int live_tag_refs = 0;
  };

  // Stream for `tag`, or null if the tag never had an append. Interned ids are dense, so the
  // stream table is a flat vector indexed by id: the per-op "hash" is a bounds check.
  const TagStream* FindStream(TagId tag) const {
    return tag < streams_.size() ? &streams_[tag] : nullptr;
  }
  TagStream& StreamFor(TagId tag);

  LogRecordPtr LookupLive(SeqNum seqnum) const;
  void ReleaseRef(SimTime now, SeqNum seqnum);

  // Evaluates a logCondAppend condition against the current stream state. Returns true when
  // the append may proceed; on conflict fills `existing` with the occupant of `cond_pos`.
  bool CondHolds(TagId cond_tag, size_t cond_pos, SeqNum* existing);

  TagRegistry tags_;
  TagRegistry ops_;  // Interner for record "op" fields (step-arbitration scans).
  SeqNum next_seqnum_ = 1;  // Seqnum 0 is reserved as "before everything".
  std::unordered_map<SeqNum, StoredRecord> records_;
  std::vector<TagStream> streams_;  // Indexed by TagId; grown on first append of a tag.
  // Name-ordered mirror of the tags whose stream currently holds live records; maintained on
  // the empty<->non-empty transitions of each stream. Keys view the registry's stable names.
  std::map<std::string_view, TagId> live_tags_;
  metrics::StorageGauge gauge_;
  std::function<void(SeqNum)> commit_listener_;
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_LOG_SPACE_H_
