// The authoritative state of the shared log: the sequencer's counter, the record store, and
// the per-tag sub-stream index.
//
// LogSpace is pure state — all latency, caching, and queueing live in LogClient. This split
// mirrors Boki: a metalog/sequencer that orders records, storage nodes that hold them, and
// per-function-node index replicas that trail the authoritative index by a propagation delay.
//
// Sharding (DESIGN.md §9): a LogSpace is either standalone (the classic single log) or one of
// N shards owned by a ShardedLog. Shards share the tag/op interners, the storage gauge, the
// commit listener and ONE seqnum watermark, but each shard owns the records it sequences and
// the sub-stream indices of the tags it owns (tag → shard is a pure function of the tag name,
// see TagRegistry::ShardOf). Sequence numbers use a (local round, shard) encoding,
//     enc = local * shard_count + shard,   local = floor(watermark / shard_count) + 1,
// so encoded seqnums are strictly increasing in commit order across ALL shards (the watermark
// is the cross-shard merge rule): per-tag streams stay sorted by construction, cursorTS stays
// a total order, and shard_count == 1 degenerates to the historic next_seqnum_++ bit for bit.
// Every public method routes to the owning shard first (tags by TagRegistry::ShardOf, seqnums
// by seqnum % shard_count), so ANY shard — and the ShardedLog facade — answers every query.
//
// Performance notes (see DESIGN.md "Performance architecture"):
//   * Records are immutable after commit and stored behind shared_ptr-to-const; every read
//     API returns a shared view (LogRecordPtr), never a copy.
//   * Tags are interned ids (see tag_registry.h): the steady-state append/read/trim API takes
//     TagId only, so no std::string is built or hashed per operation. The string-named
//     overloads below are convenience entry points for tests and cold bootstrap code; they
//     intern (writes) or look up (reads) the name and forward to the TagId path.
//   * A sub-stream keeps only its untrimmed seqnum suffix (deque + base offset), so trimmed
//     history costs no memory while logical logCondAppend offsets stay stable.
//   * Live stream tags are mirrored in a name-ordered index, so prefix scans (the GC's
//     per-object write-log enumeration) are range scans instead of full-table scans.

#ifndef HALFMOON_SHAREDLOG_LOG_SPACE_H_
#define HALFMOON_SHAREDLOG_LOG_SPACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"
#include "src/metrics/storage_sampler.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/tag_registry.h"

namespace halfmoon::storage {
class CheckpointStore;
class DurabilityService;
}  // namespace halfmoon::storage

namespace halfmoon::sharedlog {

class LogSpace {
 public:
  // State shared by every shard of one logical log: the interners, the storage gauge, the
  // seqnum watermark (largest encoded seqnum committed so far — the cross-shard merge rule),
  // the name-ordered live-tag index, and the commit listener. A standalone LogSpace owns its
  // Shared privately; a ShardedLog owns one instance for all of its shards.
  struct Shared {
    TagRegistry tags;
    TagRegistry ops;
    metrics::StorageGauge gauge;
    SeqNum watermark = 0;  // 0 = nothing committed; first encoded seqnum is >= 1.
    std::map<std::string_view, TagId> live_tags;
    std::function<void(SeqNum)> commit_listener;
    // Non-null when the log runs over the simulated durable medium (DESIGN.md §13): every
    // commit journals a kRecord frame, every releasing trim a kTrim frame. Null (the
    // default) journals nothing and draws no extra latency samples — bit-identical to the
    // pre-storage simulation.
    storage::DurabilityService* durability = nullptr;
  };

  // Standalone single-shard log (the historic constructor; bit-identical behaviour).
  LogSpace();
  // One shard of a ShardedLog. `shared` must outlive the shard; the owner must call SetPeers
  // with all shards (indexed by shard id) before the first append.
  LogSpace(Shared* shared, uint32_t shard, uint32_t shard_count);
  LogSpace(const LogSpace&) = delete;
  LogSpace& operator=(const LogSpace&) = delete;

  // Wires up cross-shard routing; `peers[i]` is shard i (peers[shard()] == this). The
  // standalone constructor sets {this} automatically.
  void SetPeers(std::vector<LogSpace*> peers);

  uint32_t shard() const { return shard_; }
  uint32_t shard_count() const { return shard_count_; }

  // The tag interner shared by everything layered on this log. "ssf.init" and "ssf.finish"
  // are pre-interned to kInitTagId / kFinishTagId.
  TagRegistry& tags() { return shared_->tags; }
  const TagRegistry& tags() const { return shared_->tags; }

  // The op-name interner ("op" field values). The protocol ops are pre-interned to the kOp*
  // constants of log_record.h; Append stamps each record's `op` id from its fields.
  TagRegistry& ops() { return shared_->ops; }
  const TagRegistry& ops() const { return shared_->ops; }

  // Appends a record, assigning the next sequence number. `now` feeds storage accounting.
  // Notifies the commit listener (used for index propagation to clients). Routed to the shard
  // owning the first tag; the record's seqnum encodes the sequencing shard.
  SeqNum Append(SimTime now, std::vector<TagId> tags, FieldMap fields);

  // Conditional append (§5.1): appends, then verifies that the new record lands at logical
  // offset `cond_pos` of the `cond_tag` sub-stream. On mismatch the append is undone and the
  // seqnum of the record actually at that offset is returned. Routed to (and arbitrated by)
  // the shard owning cond_tag.
  CondAppendResult CondAppend(SimTime now, std::vector<TagId> tags, FieldMap fields,
                              TagId cond_tag, size_t cond_pos);

  // Atomically appends a batch of records under the same condition (offset of the *first*
  // record in `cond_tag`'s stream). Either all records commit — at consecutive batch
  // positions, see BatchSeq() — or none do. Models Boki's batched append, which Halfmoon-read
  // uses to install the version record and the commit record of a write in one sequencer
  // round (§4.1).
  struct BatchEntry {
    std::vector<TagId> tags;
    FieldMap fields;
  };
  CondAppendResult CondAppendBatch(SimTime now, std::vector<BatchEntry> batch, TagId cond_tag,
                                   size_t cond_pos);

  // Unconditional atomic batch append; returns the first seqnum (the i-th record receives
  // BatchSeq(first, i)). Index replicas learn about the batch as a unit.
  SeqNum AppendBatch(SimTime now, std::vector<BatchEntry> batch);

  // Seqnum of the i-th record of an atomic batch whose first record committed at `first`.
  // One shard allocates the whole batch, so in-batch neighbours are `shard_count` apart in
  // the encoded space (adjacent when unsharded).
  SeqNum BatchSeq(SeqNum first, size_t i) const {
    return first + static_cast<SeqNum>(i) * shard_count_;
  }

  // One request of a group-committed sequencer round (see AppendGroup). The entries form an
  // atomic sub-group: all of them commit (at consecutive batch positions) or none do. A
  // request with cond_tag == kInvalidTagId is unconditional; otherwise it carries the
  // logCondAppend condition "the first entry lands at logical offset cond_pos of cond_tag's
  // stream".
  struct GroupRequest {
    std::vector<BatchEntry> entries;
    TagId cond_tag = kInvalidTagId;
    size_t cond_pos = 0;
  };
  // Per-request outcome of AppendGroup. On success `seqnum` is the first entry's position;
  // on conflict `existing_seqnum` is the record occupying the expected offset.
  struct GroupVerdict {
    bool ok = false;
    SeqNum seqnum = kInvalidSeqNum;
    SeqNum existing_seqnum = kInvalidSeqNum;
  };

  // Group commit: orders several independent append requests in ONE sequencer round of THIS
  // shard (callers route requests to the shard owning their cond tag / first tag — see
  // AppendBatcher). Requests are evaluated strictly in vector order, each seeing the stream
  // state left by its predecessors — exactly as if the requests had been submitted
  // back-to-back as separate rounds in that order, which is what makes node-local append
  // batching protocol-invisible. Index replicas learn about the whole round as a unit: the
  // commit listener fires once, with the round's last committed seqnum (not at all if every
  // request conflicted).
  std::vector<GroupVerdict> AppendGroup(SimTime now, std::vector<GroupRequest> requests);

  // Shared view of the live record at `seqnum`; null if absent or fully trimmed. Routed to
  // the storing shard (seqnum % shard_count).
  LogRecordPtr Get(SeqNum seqnum) const;

  // First live record in `tag`'s sub-stream whose "op" and "step" fields match. Boki resolves
  // peer races by honoring the first record logged for a step (§5.1). The scan compares the
  // record's interned op id — no string comparison per record.
  LogRecordPtr FindFirstByStep(TagId tag, OpId op, int64_t step) const;
  LogRecordPtr FindFirstByStep(TagId tag, const std::string& op, int64_t step) const {
    return FindFirstByStep(tag, shared_->ops.Find(op), step);
  }

  // Ids of all live streams whose name starts with `prefix` (GC scan over per-object write
  // logs). Served by an ordered range scan over the live-tag index: O(log streams + matches);
  // results are in name order. The index is shared, so results span all shards.
  std::vector<TagId> LiveTagsWithPrefix(std::string_view prefix) const;

  // Name-returning variant of LiveTagsWithPrefix, for tests and display.
  std::vector<std::string> StreamTagsWithPrefix(std::string_view prefix) const;

  // Latest record in `tag`'s sub-stream with seqnum <= max (logReadPrev).
  LogRecordPtr ReadPrev(TagId tag, SeqNum max_seqnum) const;

  // Seqnum of the record ReadPrev(tag, max_seqnum) would return, or kInvalidSeqNum if none.
  // This is a pure index-replica query (tag → seqnum list; no record payload touched), which
  // is what LogClient's node-local read cache validates its cached payloads against.
  SeqNum LatestSeqNoAtMost(TagId tag, SeqNum max_seqnum) const;

  // Earliest record in `tag`'s sub-stream with seqnum >= min (logReadNext).
  LogRecordPtr ReadNext(TagId tag, SeqNum min_seqnum) const;

  // All live records of a sub-stream, in seqnum order (used to fetch step logs in Init).
  std::vector<LogRecordPtr> ReadStream(TagId tag) const;

  // Live records of a sub-stream with seqnum <= max_seqnum: the view of an index replica
  // that has caught up to max_seqnum.
  std::vector<LogRecordPtr> ReadStreamUpTo(TagId tag, SeqNum max_seqnum) const;

  // Garbage-collects a sub-stream: logically deletes records with seqnum <= upto from `tag`,
  // and frees the trimmed prefix of the stream's seqnum index. A record's storage is freed
  // once every one of its tags has trimmed past it. Returns the number of records removed
  // from this stream (0 when the tag has no stream or the prefix was already trimmed), which
  // feeds the GC's per-category trim counters.
  size_t Trim(SimTime now, TagId tag, SeqNum upto);

  // Logical offset (position since the beginning of time) that the *next* record appended to
  // `tag` would occupy. Used by clients to pre-check conditional appends in tests.
  size_t StreamLength(TagId tag) const;

  // ---- Name-based convenience entry points (tests, cold bootstrap paths) ----
  // Writes intern their tag names; reads resolve without interning, so probing a name that
  // was never appended does not grow the registry.
  SeqNum Append(SimTime now, std::vector<std::string> tag_names, FieldMap fields) {
    return Append(now, InternAll(std::move(tag_names)), std::move(fields));
  }
  CondAppendResult CondAppend(SimTime now, std::vector<std::string> tag_names, FieldMap fields,
                              std::string_view cond_tag, size_t cond_pos) {
    return CondAppend(now, InternAll(std::move(tag_names)), std::move(fields),
                      shared_->tags.Intern(cond_tag), cond_pos);
  }
  LogRecordPtr FindFirstByStep(std::string_view tag, const std::string& op, int64_t step) const {
    return FindFirstByStep(shared_->tags.Find(tag), op, step);
  }
  LogRecordPtr ReadPrev(std::string_view tag, SeqNum max_seqnum) const {
    return ReadPrev(shared_->tags.Find(tag), max_seqnum);
  }
  LogRecordPtr ReadNext(std::string_view tag, SeqNum min_seqnum) const {
    return ReadNext(shared_->tags.Find(tag), min_seqnum);
  }
  std::vector<LogRecordPtr> ReadStream(std::string_view tag) const {
    return ReadStream(shared_->tags.Find(tag));
  }
  std::vector<LogRecordPtr> ReadStreamUpTo(std::string_view tag, SeqNum max_seqnum) const {
    return ReadStreamUpTo(shared_->tags.Find(tag), max_seqnum);
  }
  size_t Trim(SimTime now, std::string_view tag, SeqNum upto) {
    return Trim(now, shared_->tags.Find(tag), upto);
  }
  size_t StreamLength(std::string_view tag) const {
    return StreamLength(shared_->tags.Find(tag));
  }

  // ---- Crash-restart recovery (DESIGN.md §13, §14) ----
  // Reinstalls a committed record from its journal frame: same index/stream/gauge effects as
  // the original append, but no commit listener and no re-journaling. In strict mode (full
  // replay) frames arrive in commit order, so seqnums are strictly increasing (asserted) and
  // the watermark advances to each restored seqnum. In fuzzy mode (replay-suffix on top of a
  // checkpoint image, §14) the image may already reflect the record in some — or all — of its
  // streams: the body is installed only if absent and each stream gets a sorted
  // check-and-insert, so replaying an already-absorbed frame is a no-op. Routed to the shard
  // that originally sequenced the record.
  void RestoreRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags, FieldMap fields,
                     bool fuzzy = false);

  // Re-applies a durable trim during replay (no re-journaling). `base_after` is the stream's
  // logical base right after the original trim (journaled in the kTrim frame): restoring
  // takes max(base, base_after) instead of counting pops, which lands on the exact original
  // base whether or not the checkpoint image had already absorbed the trim.
  void RestoreTrim(SimTime now, TagId tag, SeqNum upto, size_t base_after);

  // Raises the shared watermark to at least `floor` (no-op when already past it). Recovery
  // calls this with the manifest's watermark floor / the journal's durable seqnum: truncation
  // can erase the highest durable records (trimmed ones), and the restored allocator must
  // still never re-issue their seqnums.
  void EnsureWatermark(SeqNum floor) {
    if (shared_->watermark < floor) shared_->watermark = floor;
  }

  // ---- Incremental checkpointing (DESIGN.md §14) ----
  // Emits the image frames of THIS shard's `tag` sub-stream into the checkpoint store: first
  // a kCkptRecord body for every referenced record not yet emitted this round (dedup via
  // `emitted_bodies` — records are multi-tag, bodies are written once), then one
  // kCkptTagStream frame with the stream's base and live seqnums. Fully-trimmed streams
  // (empty deque, base > 0) are emitted too: their base carries the logical offsets
  // logCondAppend depends on. Returns the walk-budget items consumed (0 when the tag has no
  // stream here); increments *frames per frame appended.
  size_t CheckpointTag(TagId tag, storage::CheckpointStore* store,
                       std::unordered_set<SeqNum>* emitted_bodies, int64_t* frames) const;

  // Image-restore installers. A body installs with zero live-tag refs (streams re-reference
  // it as they restore); a stream sets its base, pushes its seqnums and takes one ref per
  // entry. Bodies precede the streams that reference them in every image.
  void RestoreCheckpointRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                               FieldMap fields);
  void RestoreCheckpointStream(SimTime now, TagId tag, size_t base,
                               const std::vector<SeqNum>& seqnums);

  // Drops THIS shard's volatile record store and sub-stream indices (node loss). The caller
  // (ShardedLog::ResetVolatile) resets the shared state — gauge, live tags, watermark.
  void ResetShardVolatile();

  // Smallest seqnum the next append could receive; strictly greater than every committed
  // seqnum (watermark + 1, which IS the next seqnum when unsharded).
  SeqNum next_seqnum() const { return shared_->watermark + 1; }

  // Number of records currently held by THIS shard (not yet trimmed from all their tags).
  // ShardedLog::live_records() sums across shards.
  size_t live_records() const { return records_.size(); }

  // Total seqnum entries retained across this shard's sub-stream indices. Bounded by the
  // number of live (tag, record) pairs: trimmed prefixes are compacted away, so a fully
  // trimmed stream holds zero entries no matter how long its history (regression guard for
  // the old keep-forever index).
  size_t IndexEntries() const;

  int64_t CurrentBytes() const { return shared_->gauge.CurrentBytes(); }
  metrics::StorageGauge& gauge() { return shared_->gauge; }

  // Invoked synchronously at each commit with the new seqnum; the runtime uses it to schedule
  // index propagation to every function node. Shared across shards: encoded seqnums are
  // allocated in commit order, so the listener observes a strictly increasing sequence no
  // matter which shards commit.
  void SetCommitListener(std::function<void(SeqNum)> listener) {
    shared_->commit_listener = std::move(listener);
  }

 private:
  struct TagStream {
    // Untrimmed seqnums appended under this tag, in order. The logical offset of seqnums[i]
    // in the stream's full history is base + i: logical offsets for logCondAppend are stable
    // positions even after the trimmed prefix is compacted away.
    std::deque<SeqNum> seqnums;
    // Number of entries trimmed (and freed) from the front of the stream's history.
    size_t base = 0;

    size_t length() const { return base + seqnums.size(); }
  };

  std::vector<TagId> InternAll(std::vector<std::string> names) {
    std::vector<TagId> ids;
    ids.reserve(names.size());
    for (const std::string& name : names) ids.push_back(shared_->tags.Intern(name));
    return ids;
  }

  struct StoredRecord {
    LogRecordPtr record;
    // Number of tags that still reference this record (not yet trimmed past it).
    int live_tag_refs = 0;
  };

  void PreinternWellKnown();

  // ---- Cross-shard routing ----
  // A tag's sub-stream lives on the shard TagRegistry::ShardOf names; a record lives on the
  // shard that sequenced it, recoverable from the seqnum encoding. When unsharded both
  // resolve to `this` and compile down to the historic direct access.
  LogSpace* TagOwner(TagId tag) { return peers_[shared_->tags.ShardOf(tag)]; }
  const LogSpace* TagOwner(TagId tag) const { return peers_[shared_->tags.ShardOf(tag)]; }
  // Null for ids never interned (name-based reads probing unknown tags).
  const LogSpace* TagOwnerOrNull(TagId tag) const {
    return shared_->tags.Contains(tag) ? TagOwner(tag) : nullptr;
  }
  LogSpace* SeqOwner(SeqNum seqnum) { return peers_[seqnum % shard_count_]; }
  const LogSpace* SeqOwner(SeqNum seqnum) const { return peers_[seqnum % shard_count_]; }

  // Allocates the next encoded seqnum for an append sequenced by THIS shard and advances the
  // shared watermark. Strictly increasing across shards; exactly watermark + 1 when unsharded.
  SeqNum AllocSeqNum() {
    SeqNum local = shared_->watermark / shard_count_ + 1;
    SeqNum enc = local * shard_count_ + shard_;
    shared_->watermark = enc;
    return enc;
  }

  // The append/batch bodies, running on the routing (sequencing) shard.
  SeqNum AppendLocal(SimTime now, std::vector<TagId> tags, FieldMap fields);
  CondAppendResult CondAppendLocal(SimTime now, std::vector<TagId> tags, FieldMap fields,
                                   TagId cond_tag, size_t cond_pos);
  CondAppendResult CondAppendBatchLocal(SimTime now, std::vector<BatchEntry> batch,
                                        TagId cond_tag, size_t cond_pos);
  SeqNum AppendBatchLocal(SimTime now, std::vector<BatchEntry> batch);
  size_t TrimLocal(SimTime now, TagId tag, SeqNum upto, bool journal);

  // The shared body of AppendLocal and RestoreRecordLocal: builds the immutable record and
  // installs it into the record store, the per-tag sub-streams, the live-tag index, and the
  // storage gauge — everything EXCEPT seqnum allocation, journaling, and commit notification,
  // which is exactly what differs between a live append and a journal replay.
  LogRecordPtr InstallRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                             FieldMap fields);
  // The kRecord / kCkptRecord payload (they share one encoding): seqnum, tags, fields.
  static std::string EncodeRecordPayload(const LogRecord& record);
  // Builds the immutable record object (op interned) without installing it anywhere.
  LogRecordPtr MakeRecord(SeqNum seqnum, std::vector<TagId> tags, FieldMap fields);
  void JournalRecord(const LogRecord& record);
  void RestoreRecordLocal(SimTime now, SeqNum seqnum, std::vector<TagId> tags, FieldMap fields);
  void RestoreRecordFuzzyLocal(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                               FieldMap fields);
  void RestoreTrimLocal(SimTime now, TagId tag, SeqNum upto, size_t base_after);
  void RestoreCheckpointStreamLocal(SimTime now, TagId tag, size_t base,
                                    const std::vector<SeqNum>& seqnums);
  // +1 live-tag ref on the record at `seqnum` (must exist); image-stream restore only.
  void TakeRefLocal(SeqNum seqnum);

  // Stream for `tag` on THIS shard, or null if the tag never had an append. Interned ids are
  // dense, so the stream table is a flat vector indexed by id: the per-op "hash" is a bounds
  // check. (Sparse per shard when sharded — only owned tags ever grow a stream.)
  const TagStream* FindStream(TagId tag) const {
    return tag < streams_.size() ? &streams_[tag] : nullptr;
  }
  TagStream& StreamFor(TagId tag);

  LogRecordPtr LookupLive(SeqNum seqnum) const;
  void ReleaseRef(SimTime now, SeqNum seqnum);
  void ReleaseRefLocal(SimTime now, SeqNum seqnum);

  // Evaluates a logCondAppend condition against the current stream state. Returns true when
  // the append may proceed; on conflict fills `existing` with the occupant of `cond_pos`.
  bool CondHolds(TagId cond_tag, size_t cond_pos, SeqNum* existing);

  std::unique_ptr<Shared> owned_shared_;  // Standalone mode only.
  Shared* shared_;
  uint32_t shard_ = 0;
  uint32_t shard_count_ = 1;
  std::vector<LogSpace*> peers_;  // Indexed by shard id; {this} when standalone.

  std::unordered_map<SeqNum, StoredRecord> records_;
  std::vector<TagStream> streams_;  // Indexed by TagId; grown on first append of a tag.
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_LOG_SPACE_H_
