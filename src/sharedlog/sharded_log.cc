#include "src/sharedlog/sharded_log.h"

#include <string>

#include "src/storage/durability.h"

namespace halfmoon::sharedlog {

ShardedLog::ShardedLog(uint32_t shard_count) {
  HM_CHECK_MSG(shard_count >= 1, "ShardedLog: shard_count must be >= 1");
  // The tag → shard mapping must be fixed before any tag is interned (the LogSpace
  // constructors pre-intern the well-known tags and ops).
  shared_.tags.SetShardCount(shard_count);
  shards_.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<LogSpace>(&shared_, i, shard_count));
  }
  std::vector<LogSpace*> peers;
  peers.reserve(shard_count);
  for (auto& shard : shards_) peers.push_back(shard.get());
  for (auto& shard : shards_) shard->SetPeers(peers);
}

size_t ShardedLog::live_records() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->live_records();
  return total;
}

size_t ShardedLog::IndexEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->IndexEntries();
  return total;
}

void ShardedLog::AttachDurability(storage::DurabilityService* svc) {
  shared_.durability = svc;
  if (svc == nullptr) {
    shared_.tags.SetInternSink(nullptr);
    return;
  }
  shared_.tags.SetInternSink([svc](TagId id, std::string_view name) {
    std::string payload;
    storage::PutU64(&payload, id);
    storage::PutStr(&payload, name);
    svc->AppendFrame(storage::FrameType::kTagDef, payload);
  });
}

void ShardedLog::ResetVolatile(SimTime now) {
  shared_.gauge.Add(now, -shared_.gauge.CurrentBytes());
  shared_.live_tags.clear();
  shared_.watermark = 0;
  for (auto& shard : shards_) shard->ResetShardVolatile();
}

}  // namespace halfmoon::sharedlog
