#include "src/sharedlog/append_batcher.h"

#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/sharedlog/log_client.h"

namespace halfmoon::sharedlog {

void AppendBatcher::Enqueue(Submission* submission) {
  if (head_ == nullptr) {
    head_ = submission;
  } else {
    tail_->next = submission;
  }
  tail_ = submission;
  if (!round_loop_active_) {
    // The loop starts via Spawn at delay 0, so an isolated request departs at the time it
    // was submitted — same latency as the unbatched path. Requests submitted while a round
    // is in flight accumulate here and depart together in the next round.
    round_loop_active_ = true;
    owner_->scheduler_->Spawn(RunRounds());
  }
}

sim::Task<void> AppendBatcher::RunRounds() {
  LogSpace* space = space_ != nullptr ? space_ : owner_->space_;
  sim::ServiceStation* station = station_ != nullptr ? station_ : owner_->sequencer_station_;
  while (head_ != nullptr) {
    if (config_.window > 0) {
      // Hold the departure open so near-simultaneous requests can still join this round.
      co_await owner_->scheduler_->Delay(config_.window);
    }

    // Detach up to max_batch submissions in FIFO order; later arrivals ride the next round.
    std::vector<Submission*> round;
    std::vector<LogSpace::GroupRequest> requests;
    while (head_ != nullptr && round.size() < config_.max_batch) {
      Submission* s = head_;
      head_ = s->next;
      if (head_ == nullptr) tail_ = nullptr;
      round.push_back(s);
      requests.push_back(std::move(s->request));
    }
    ++owner_->stats_.append_rounds;
    owner_->stats_.batched_requests += static_cast<int64_t>(round.size());
    if (static_cast<int64_t>(round.size()) > owner_->stats_.max_round_occupancy) {
      owner_->stats_.max_round_occupancy = static_cast<int64_t>(round.size());
    }

    // One sequencer round for the whole group: the same leg/service split as an unbatched
    // append, sampled once, so requests sharing a round share its latency.
    SimDuration total = owner_->models_->log_append.Sample(*owner_->rng_);
    auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
    co_await owner_->scheduler_->Delay(leg);
    co_await owner_->SequencerRoundAt(station, total);
    std::vector<LogSpace::GroupVerdict> verdicts =
        space->AppendGroup(owner_->scheduler_->Now(), std::move(requests));
    HM_CHECK(verdicts.size() == round.size());
    bool any_committed = false;
    for (size_t i = 0; i < round.size(); ++i) {
      round[i]->verdict = verdicts[i];
      if (verdicts[i].ok) any_committed = true;
    }
    if (any_committed) {
      // The node learns the round's seqnums with the reply (AppendGroup ran synchronously,
      // so next_seqnum() - 1 is exactly the round's last committed record).
      owner_->AdvanceIndex(space->next_seqnum() - 1);
    }
    co_await owner_->scheduler_->Delay(leg);  // Shared reply leg.

    // Wake the round's submitters in submission order; they all resume at the reply time.
    for (Submission* s : round) {
      owner_->scheduler_->PostResume(0, s->waiter);
    }
  }
  round_loop_active_ = false;
}

}  // namespace halfmoon::sharedlog
