#include "src/sharedlog/append_batcher.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/sharedlog/log_client.h"

namespace halfmoon::sharedlog {

void AppendBatcher::Enqueue(Submission* submission) {
  if (head_ == nullptr) {
    head_ = submission;
  } else {
    tail_->next = submission;
  }
  tail_ = submission;
  if (!round_loop_active_) {
    // The engine starts via Spawn at delay 0, so an isolated request departs at the time it
    // was submitted — same latency as the unbatched path. Requests submitted while a round
    // is in flight accumulate here and depart together in a later round.
    round_loop_active_ = true;
    if (config_.pipeline_depth > 1) {
      owner_->scheduler_->Spawn(RunPipeline());
    } else {
      owner_->scheduler_->Spawn(RunRounds());
    }
  }
}

void AppendBatcher::DetachRound(std::vector<Submission*>* round,
                                std::vector<LogSpace::GroupRequest>* requests) {
  while (head_ != nullptr && round->size() < config_.max_batch) {
    Submission* s = head_;
    head_ = s->next;
    if (head_ == nullptr) tail_ = nullptr;
    round->push_back(s);
    requests->push_back(std::move(s->request));
  }
  ++owner_->stats_.append_rounds;
  owner_->stats_.batched_requests += static_cast<int64_t>(round->size());
  if (static_cast<int64_t>(round->size()) > owner_->stats_.max_round_occupancy) {
    owner_->stats_.max_round_occupancy = static_cast<int64_t>(round->size());
  }
}

void AppendBatcher::CommitRound(LogSpace* space, std::vector<Submission*>& round,
                                std::vector<LogSpace::GroupRequest> requests) {
  std::vector<LogSpace::GroupVerdict> verdicts =
      space->AppendGroup(owner_->scheduler_->Now(), std::move(requests));
  HM_CHECK(verdicts.size() == round.size());
  bool any_committed = false;
  for (size_t i = 0; i < round.size(); ++i) {
    if (verdicts[i].ok) any_committed = true;
    if (round[i] == nullptr) continue;  // Depart-crash victim: record departed, nobody waits.
    round[i]->verdict = verdicts[i];
  }
  if (any_committed) {
    // The node learns the round's seqnums with the reply (AppendGroup ran synchronously,
    // so next_seqnum() - 1 is exactly the round's last committed record).
    owner_->AdvanceIndex(space->next_seqnum() - 1);
  }
}

void AppendBatcher::ProbeDepartCrash(std::vector<Submission*>& round) {
  if (!owner_->crash_probe_) return;
  size_t victim = round.size();
  for (size_t i = 0; i < round.size(); ++i) {
    if (round[i] != nullptr && round[i]->crashable) {
      victim = i;
      break;
    }
  }
  if (victim == round.size()) return;
  if (!owner_->crash_probe_("batch.depart")) return;
  // The request already left with the round (it may still commit — the retry has to cope
  // with the duplicate, exactly the hazard class of the post-append protocol sites). The
  // submitter crashes NOW, so its retry races the in-flight round.
  Submission* s = round[victim];
  round[victim] = nullptr;
  s->crash_site = "batch.depart";
  owner_->scheduler_->PostResume(0, s->waiter);
}

void AppendBatcher::ProbeReplyCrash(std::vector<Submission*>& round) {
  if (!owner_->crash_probe_) return;
  for (Submission* s : round) {
    if (s == nullptr || !s->crashable) continue;
    if (owner_->crash_probe_("batch.reply")) {
      // Round committed and the reply arrived; the function dies processing it. The victim
      // resumes with the others below and raises from await_resume.
      s->crash_site = "batch.reply";
    }
    return;  // One probe per round, mirroring the depart site.
  }
}

void AppendBatcher::RaiseCrash(const char* site) const {
  HM_CHECK(owner_->crash_thrower_ != nullptr);
  owner_->crash_thrower_(site);
  HM_CHECK(false);  // The thrower must not return.
}

void AppendBatcher::UpdateController(size_t occupancy, bool backlog) {
  if (!config_.adaptive) return;
  LogClientStats& stats = owner_->stats_;
  if (occupancy <= 1 && in_flight_ <= 1) {
    // Isolated traffic: this singleton round is the only thing in flight. Decay toward the
    // configured floor so isolated appends stop paying the widened window / pipeline churn.
    if (effective_window_ > config_.window) {
      // Halve the widened excess, snapping to the floor once it is negligible so a finite
      // idle tail really does restore the exact unbatched latency.
      SimDuration excess = (effective_window_ - config_.window) / 2;
      if (excess <= config_.max_window / 64) excess = 0;
      effective_window_ = config_.window + excess;
      ++stats.ctrl_window_narrowed;
    }
    if (effective_depth_ > 1) {
      --effective_depth_;
      ++stats.ctrl_depth_lowered;
    }
    return;
  }
  if (backlog && effective_depth_ < config_.pipeline_depth) {
    // The queue held more than one full round: open another pipeline slot.
    ++effective_depth_;
    ++stats.ctrl_depth_raised;
  }
  if (in_flight_ >= effective_depth_ && occupancy * 2 < config_.max_batch) {
    // Every slot is busy yet rounds depart under-filled — the arrival rate is round-limited,
    // not batch-limited. Hold departures open a little longer so each round carries more
    // (classic Nagle widening); capped so latency stays bounded.
    SimDuration next = effective_window_ == 0 ? config_.max_window / 8 : effective_window_ * 2;
    next = std::min(next, config_.max_window);
    if (next != effective_window_) {
      effective_window_ = next;
      ++stats.ctrl_window_widened;
    }
  }
}

void AppendBatcher::WakeSlotWaiter() {
  if (slot_waiter_ == nullptr) return;
  std::coroutine_handle<> h = std::exchange(slot_waiter_, nullptr);
  owner_->scheduler_->PostResume(0, h);
}

void AppendBatcher::WakeCommitWaiter() {
  for (size_t i = 0; i < commit_waiters_.size(); ++i) {
    if (commit_waiters_[i].first != commit_ticket_) continue;
    std::coroutine_handle<> h = commit_waiters_[i].second;
    commit_waiters_.erase(commit_waiters_.begin() + static_cast<ptrdiff_t>(i));
    owner_->scheduler_->PostResume(0, h);
    return;
  }
}

// Serial engine — the pre-pipelining implementation, kept verbatim (plus the no-cost crash
// probes) because the PR 4 golden tuples pin its exact event sequence.
sim::Task<void> AppendBatcher::RunRounds() {
  LogSpace* space = space_ != nullptr ? space_ : owner_->space_;
  sim::ServiceStation* station = station_ != nullptr ? station_ : owner_->sequencer_station_;
  while (head_ != nullptr) {
    if (config_.window > 0) {
      // Hold the departure open so near-simultaneous requests can still join this round.
      co_await owner_->scheduler_->Delay(config_.window);
    }

    // Detach up to max_batch submissions in FIFO order; later arrivals ride the next round.
    std::vector<Submission*> round;
    std::vector<LogSpace::GroupRequest> requests;
    DetachRound(&round, &requests);
    ++owner_->stats_.pipeline_inflight_hist[1];
    ProbeDepartCrash(round);

    // One sequencer round for the whole group: the same leg/service split as an unbatched
    // append, sampled once, so requests sharing a round share its latency.
    SimDuration total = owner_->models_->log_append.Sample(*owner_->rng_);
    auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
    co_await owner_->scheduler_->Delay(leg);
    co_await owner_->SequencerRoundAt(station, total);
    CommitRound(space, round, std::move(requests));
    co_await owner_->scheduler_->Delay(leg);  // Shared reply leg.
    ProbeReplyCrash(round);

    // Wake the round's submitters in submission order; they all resume at the reply time.
    for (Submission* s : round) {
      if (s == nullptr) continue;
      owner_->scheduler_->PostResume(0, s->waiter);
    }
  }
  round_loop_active_ = false;
}

// Pipelined dispatcher: detaches rounds in FIFO order and launches each as its own task,
// keeping up to EffectiveDepth() rounds in flight. The latency sample is drawn HERE, in
// departure order, so the stream of draws is deterministic regardless of how the in-flight
// rounds interleave.
sim::Task<void> AppendBatcher::RunPipeline() {
  while (head_ != nullptr) {
    if (effective_window_ > 0) {
      co_await owner_->scheduler_->Delay(effective_window_);
    }
    while (in_flight_ >= EffectiveDepth()) {
      co_await SlotFree{this};
    }

    std::vector<Submission*> round;
    std::vector<LogSpace::GroupRequest> requests;
    DetachRound(&round, &requests);
    ++in_flight_;
    LogClientStats& stats = owner_->stats_;
    int bucket = std::min(in_flight_, LogClientStats::kPipelineHistBuckets - 1);
    ++stats.pipeline_inflight_hist[bucket];
    if (in_flight_ > 1) ++stats.pipeline_rounds_overlapped;
    if (in_flight_ > stats.pipeline_max_inflight) stats.pipeline_max_inflight = in_flight_;
    UpdateController(round.size(), head_ != nullptr);
    ProbeDepartCrash(round);

    SimDuration total = owner_->models_->log_append.Sample(*owner_->rng_);
    owner_->scheduler_->Spawn(
        RunOneRound(std::move(round), std::move(requests), total, next_ticket_++));
  }
  // Rounds may still be in flight; a new arrival restarts the dispatcher (Enqueue), and the
  // ticket/in-flight state lives on the batcher, so the pipeline drains independently.
  round_loop_active_ = false;
}

sim::Task<void> AppendBatcher::RunOneRound(std::vector<Submission*> round,
                                           std::vector<LogSpace::GroupRequest> requests,
                                           SimDuration total, uint64_t ticket) {
  LogSpace* space = space_ != nullptr ? space_ : owner_->space_;
  sim::ServiceStation* station = station_ != nullptr ? station_ : owner_->sequencer_station_;
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await owner_->scheduler_->Delay(leg);
  co_await owner_->SequencerRoundAt(station, total);
  // FIFO commit: the sequencer station is multi-server, so rounds can finish service out of
  // departure order. Hold each round until its ticket comes up — this is what makes the
  // committed content identical to the serial engine at any depth.
  if (commit_ticket_ != ticket) {
    co_await CommitTurn{this, ticket};
  }
  HM_CHECK(commit_ticket_ == ticket);
  CommitRound(space, round, std::move(requests));
  ++commit_ticket_;
  WakeCommitWaiter();
  co_await owner_->scheduler_->Delay(leg);  // Reply leg.
  ProbeReplyCrash(round);
  for (Submission* s : round) {
    if (s == nullptr) continue;
    owner_->scheduler_->PostResume(0, s->waiter);
  }
  --in_flight_;
  WakeSlotWaiter();
}

}  // namespace halfmoon::sharedlog
