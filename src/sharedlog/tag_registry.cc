#include "src/sharedlog/tag_registry.h"

#include <utility>

#include "src/common/check.h"

namespace halfmoon::sharedlog {

namespace {
constexpr size_t kInitialTableSize = 64;  // Power of two; grown at 2/3 load.
}  // namespace

size_t TagRegistry::ProbeFor(uint64_t hash, std::string_view prefix,
                             std::string_view suffix) const {
  size_t i = static_cast<size_t>(Finalize(hash)) & table_mask_;
  while (true) {
    const Slot& slot = table_[i];
    if (slot.id == kInvalidTagId) return i;
    if (slot.hash == hash) {
      std::string_view name = *names_[slot.id];
      if (name.size() == prefix.size() + suffix.size() &&
          name.substr(0, prefix.size()) == prefix && name.substr(prefix.size()) == suffix) {
        return i;
      }
    }
    i = (i + 1) & table_mask_;
  }
}

void TagRegistry::GrowTable() {
  size_t new_size = table_.empty() ? kInitialTableSize : table_.size() * 2;
  std::vector<Slot> old = std::move(table_);
  table_.assign(new_size, Slot{});
  table_mask_ = new_size - 1;
  // Reinsertion only moves {hash, id} pairs — no name is rehashed or compared (entries are
  // unique by construction, so the first empty slot is always the right destination).
  for (const Slot& slot : old) {
    if (slot.id == kInvalidTagId) continue;
    size_t i = static_cast<size_t>(Finalize(slot.hash)) & table_mask_;
    while (table_[i].id != kInvalidTagId) i = (i + 1) & table_mask_;
    table_[i] = slot;
  }
}

TagId TagRegistry::Intern(std::string_view name) {
  ++intern_requests_;
  if (table_.empty()) GrowTable();
  uint64_t hash = HashName(name);
  size_t i = ProbeFor(hash, name, {});
  if (table_[i].id != kInvalidTagId) return table_[i].id;
  return Register(std::string(name), hash);
}

TagId TagRegistry::InternPrefixed(std::string_view prefix, std::string_view suffix) {
  ++intern_requests_;
  if (table_.empty()) GrowTable();
  uint64_t hash = HashName(prefix, suffix);
  size_t i = ProbeFor(hash, prefix, suffix);
  if (table_[i].id != kInvalidTagId) return table_[i].id;
  // First sight: materialize the concatenated name once.
  std::string full;
  full.reserve(prefix.size() + suffix.size());
  full.append(prefix);
  full.append(suffix);
  return Register(std::move(full), hash);
}

TagId TagRegistry::Find(std::string_view name) const {
  if (table_.empty()) return kInvalidTagId;
  return table_[ProbeFor(HashName(name), name, {})].id;
}

TagId TagRegistry::FindPrefixed(std::string_view prefix, std::string_view suffix) const {
  if (table_.empty()) return kInvalidTagId;
  return table_[ProbeFor(HashName(prefix, suffix), prefix, suffix)].id;
}

const std::string& TagRegistry::Name(TagId id) const {
  HM_CHECK_MSG(id < names_.size(), "TagRegistry::Name: unknown TagId");
  return *names_[id];
}

std::vector<TagId> TagRegistry::IdsWithPrefix(std::string_view prefix) const {
  std::vector<TagId> out;
  for (auto it = ordered_.lower_bound(prefix); it != ordered_.end(); ++it) {
    if (it->first.substr(0, prefix.size()) != prefix) break;
    out.push_back(it->second);
  }
  return out;
}

TagId TagRegistry::Register(std::string full_name, uint64_t hash) {
  TagId id = names_.size();
  store_.push_back(std::move(full_name));
  const std::string& name = store_.back();
  names_.push_back(&name);
  // The finalized name hash decides the owning shard, so the mapping depends only on the
  // name — never on interning order or process layout.
  shard_of_.push_back(shard_count_ <= 1
                          ? 0u
                          : static_cast<uint32_t>(Finalize(hash) % shard_count_));
  ordered_.emplace(std::string_view(name), id);
  if ((names_.size() + 1) * 3 > table_.size() * 2) GrowTable();
  size_t i = static_cast<size_t>(Finalize(hash)) & table_mask_;
  while (table_[i].id != kInvalidTagId) i = (i + 1) & table_mask_;
  table_[i] = Slot{hash, id};
  if (intern_sink_) intern_sink_(id, name);
  return id;
}

}  // namespace halfmoon::sharedlog
