// Tag-partitioned sharded shared log (DESIGN.md §9).
//
// A ShardedLog owns N LogSpace shards plus the state they share (interners, storage gauge,
// seqnum watermark, live-tag index, commit listener). Tags are partitioned across shards by a
// pure function of the tag name (TagRegistry::ShardOf), so every cond-append arbitration, GC
// stream, and switch transition-log entry — all keyed by tags — lands wholly on one shard and
// keeps its single-log semantics. Each shard runs its own sequencer rounds (see LogClient),
// which is what lets appends to disjoint tags commit in parallel simulated time.
//
// Sequence numbers are encoded as `local * shard_count + shard` against one shared watermark
// (the cross-shard merge rule, see log_space.h), so seqnums from different shards stay
// totally ordered in commit order: cursorTS comparisons, logReadPrev bounds, and
// FindFirstByStep checkpoints need no changes. With shard_count == 1 the encoding — and every
// observable behaviour — is bit-identical to the unsharded log.
//
// Because every LogSpace shard routes each call to the owning shard itself, the facade is
// thin: queries delegate to shard 0 (any shard answers for the whole log) and only the
// storage accountants (live_records, IndexEntries) aggregate across shards.

#ifndef HALFMOON_SHAREDLOG_SHARDED_LOG_H_
#define HALFMOON_SHAREDLOG_SHARDED_LOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/metrics/storage_sampler.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/log_space.h"
#include "src/sharedlog/tag_registry.h"

namespace halfmoon::sharedlog {

class ShardedLog {
 public:
  using BatchEntry = LogSpace::BatchEntry;
  using GroupRequest = LogSpace::GroupRequest;
  using GroupVerdict = LogSpace::GroupVerdict;

  explicit ShardedLog(uint32_t shard_count = 1);
  ShardedLog(const ShardedLog&) = delete;
  ShardedLog& operator=(const ShardedLog&) = delete;

  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  // Shard i as a LogSpace; any shard routes every call, so &shard(0) serves legacy
  // LogSpace* consumers for the whole log.
  LogSpace& shard(uint32_t i) { return *shards_[i]; }
  const LogSpace& shard(uint32_t i) const { return *shards_[i]; }

  // Shard owning `tag`'s sub-stream (pure function of the tag name).
  uint32_t ShardOfTag(TagId tag) const { return shared_.tags.ShardOf(tag); }
  // Shard that sequenced (and stores) the record at `seqnum`.
  uint32_t ShardOfSeq(SeqNum seqnum) const {
    return static_cast<uint32_t>(seqnum % shards_.size());
  }

  TagRegistry& tags() { return shared_.tags; }
  const TagRegistry& tags() const { return shared_.tags; }
  TagRegistry& ops() { return shared_.ops; }
  const TagRegistry& ops() const { return shared_.ops; }

  // ---- Append paths (routed to the owning shard by LogSpace itself) ----
  SeqNum Append(SimTime now, std::vector<TagId> tags, FieldMap fields) {
    return shards_[0]->Append(now, std::move(tags), std::move(fields));
  }
  SeqNum Append(SimTime now, std::vector<std::string> tag_names, FieldMap fields) {
    return shards_[0]->Append(now, std::move(tag_names), std::move(fields));
  }
  CondAppendResult CondAppend(SimTime now, std::vector<TagId> tags, FieldMap fields,
                              TagId cond_tag, size_t cond_pos) {
    return shards_[0]->CondAppend(now, std::move(tags), std::move(fields), cond_tag, cond_pos);
  }
  CondAppendResult CondAppend(SimTime now, std::vector<std::string> tag_names, FieldMap fields,
                              std::string_view cond_tag, size_t cond_pos) {
    return shards_[0]->CondAppend(now, std::move(tag_names), std::move(fields), cond_tag,
                                  cond_pos);
  }
  CondAppendResult CondAppendBatch(SimTime now, std::vector<BatchEntry> batch, TagId cond_tag,
                                   size_t cond_pos) {
    return shards_[0]->CondAppendBatch(now, std::move(batch), cond_tag, cond_pos);
  }
  SeqNum AppendBatch(SimTime now, std::vector<BatchEntry> batch) {
    return shards_[0]->AppendBatch(now, std::move(batch));
  }

  // Seqnum of the i-th record of an atomic batch that committed first at `first`
  // (in-batch stride is the shard count; see log_space.h).
  SeqNum BatchSeq(SeqNum first, size_t i) const { return shards_[0]->BatchSeq(first, i); }

  // ---- Read paths ----
  LogRecordPtr Get(SeqNum seqnum) const { return shards_[0]->Get(seqnum); }
  LogRecordPtr FindFirstByStep(TagId tag, OpId op, int64_t step) const {
    return shards_[0]->FindFirstByStep(tag, op, step);
  }
  LogRecordPtr FindFirstByStep(TagId tag, const std::string& op, int64_t step) const {
    return shards_[0]->FindFirstByStep(tag, op, step);
  }
  LogRecordPtr FindFirstByStep(std::string_view tag, const std::string& op,
                               int64_t step) const {
    return shards_[0]->FindFirstByStep(tag, op, step);
  }
  std::vector<TagId> LiveTagsWithPrefix(std::string_view prefix) const {
    return shards_[0]->LiveTagsWithPrefix(prefix);
  }
  std::vector<std::string> StreamTagsWithPrefix(std::string_view prefix) const {
    return shards_[0]->StreamTagsWithPrefix(prefix);
  }
  LogRecordPtr ReadPrev(TagId tag, SeqNum max_seqnum) const {
    return shards_[0]->ReadPrev(tag, max_seqnum);
  }
  LogRecordPtr ReadPrev(std::string_view tag, SeqNum max_seqnum) const {
    return shards_[0]->ReadPrev(tag, max_seqnum);
  }
  SeqNum LatestSeqNoAtMost(TagId tag, SeqNum max_seqnum) const {
    return shards_[0]->LatestSeqNoAtMost(tag, max_seqnum);
  }
  LogRecordPtr ReadNext(TagId tag, SeqNum min_seqnum) const {
    return shards_[0]->ReadNext(tag, min_seqnum);
  }
  LogRecordPtr ReadNext(std::string_view tag, SeqNum min_seqnum) const {
    return shards_[0]->ReadNext(tag, min_seqnum);
  }
  std::vector<LogRecordPtr> ReadStream(TagId tag) const { return shards_[0]->ReadStream(tag); }
  std::vector<LogRecordPtr> ReadStream(std::string_view tag) const {
    return shards_[0]->ReadStream(tag);
  }
  std::vector<LogRecordPtr> ReadStreamUpTo(TagId tag, SeqNum max_seqnum) const {
    return shards_[0]->ReadStreamUpTo(tag, max_seqnum);
  }
  std::vector<LogRecordPtr> ReadStreamUpTo(std::string_view tag, SeqNum max_seqnum) const {
    return shards_[0]->ReadStreamUpTo(tag, max_seqnum);
  }
  size_t StreamLength(TagId tag) const { return shards_[0]->StreamLength(tag); }
  size_t StreamLength(std::string_view tag) const { return shards_[0]->StreamLength(tag); }

  // ---- GC ----
  size_t Trim(SimTime now, TagId tag, SeqNum upto) { return shards_[0]->Trim(now, tag, upto); }
  size_t Trim(SimTime now, std::string_view tag, SeqNum upto) {
    return shards_[0]->Trim(now, tag, upto);
  }

  // ---- Durable medium + crash-restart recovery (DESIGN.md §13) ----
  // Attaches the durability service: every commit journals a kRecord frame, every releasing
  // trim a kTrim frame, and every newly interned tag a kTagDef frame. Must be attached before
  // the first workload append (earlier interns — the pre-interned protocol tags — are
  // deterministic constructor state and need no journal).
  void AttachDurability(storage::DurabilityService* svc);

  // Drops everything a node loss destroys: records, sub-stream indices, the live-tag index,
  // the watermark, and the storage gauge's current bytes. The tag/op interners survive — ids
  // are deterministic client-side handles, and replay cross-checks them via kTagDef frames.
  void ResetVolatile(SimTime now);

  // Journal replay entry points (frames decoded by RestoreLogFromJournal). `fuzzy` marks a
  // replay-suffix on top of a checkpoint image (DESIGN.md §14): restores become idempotent
  // check-and-inserts instead of strictly ordered installs.
  void RestoreRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags, FieldMap fields,
                     bool fuzzy = false) {
    shards_[0]->RestoreRecord(now, seqnum, std::move(tags), std::move(fields), fuzzy);
  }
  void RestoreTrim(SimTime now, TagId tag, SeqNum upto, size_t base_after) {
    shards_[0]->RestoreTrim(now, tag, upto, base_after);
  }
  // Cross-checks a replayed kTagDef frame against the surviving registry: the journaled
  // (id, name) assignment must match bit for bit, or the replayed record frames' tag ids
  // would silently index the wrong streams.
  void VerifyTagDef(TagId id, std::string_view name) const {
    HM_CHECK_MSG(shared_.tags.Contains(id) && shared_.tags.Name(id) == name,
                 "journal replay: tag definition does not match the registry");
  }

  // ---- Incremental checkpointing (DESIGN.md §14) ----
  // One checkpoint round walks every interned tag in id order (stable across registry
  // growth), emitting record bodies (deduped round-wide — records are multi-tag) and
  // per-tag stream snapshots. The walk is resumable in bounded slices; tags interned after a
  // slice are picked up by later slices, and their records also ride the replay suffix, so
  // either way the image + suffix composition is exact.
  void BeginCheckpointWalk() {
    walk_next_tag_ = 0;
    walk_emitted_.clear();
  }
  // Emits roughly `budget` items' worth of image frames; returns true once every tag has
  // been walked. *frames counts frames appended by this slice.
  bool WriteCheckpointSlice(storage::CheckpointStore* store, int64_t budget, int64_t* frames) {
    int64_t consumed = 0;
    while (walk_next_tag_ < shared_.tags.size()) {
      if (consumed >= budget) return false;
      TagId tag = walk_next_tag_++;
      const LogSpace& owner = *shards_[shared_.tags.ShardOf(tag)];
      consumed += static_cast<int64_t>(owner.CheckpointTag(tag, store, &walk_emitted_, frames));
    }
    return true;
  }

  // Image-restore entry points (any shard routes to the owner).
  void RestoreCheckpointRecord(SimTime now, SeqNum seqnum, std::vector<TagId> tags,
                               FieldMap fields) {
    shards_[0]->RestoreCheckpointRecord(now, seqnum, std::move(tags), std::move(fields));
  }
  void RestoreCheckpointStream(SimTime now, TagId tag, size_t base,
                               const std::vector<SeqNum>& seqnums) {
    shards_[0]->RestoreCheckpointStream(now, tag, base, seqnums);
  }
  // Raises the watermark to at least `floor` (see LogSpace::EnsureWatermark).
  void EnsureWatermark(SeqNum floor) { shards_[0]->EnsureWatermark(floor); }

  // ---- Accounting / hooks ----
  SeqNum next_seqnum() const { return shards_[0]->next_seqnum(); }
  size_t live_records() const;   // Summed across shards.
  size_t IndexEntries() const;   // Summed across shards.
  int64_t CurrentBytes() const { return shared_.gauge.CurrentBytes(); }
  metrics::StorageGauge& gauge() { return shared_.gauge; }
  // Fires in strictly increasing seqnum order across all shards (see log_space.h).
  void SetCommitListener(std::function<void(SeqNum)> listener) {
    shared_.commit_listener = std::move(listener);
  }

 private:
  LogSpace::Shared shared_;
  std::vector<std::unique_ptr<LogSpace>> shards_;

  // Checkpoint-walk cursor (valid between BeginCheckpointWalk and the slice returning true).
  TagId walk_next_tag_ = 0;
  std::unordered_set<SeqNum> walk_emitted_;
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_SHARDED_LOG_H_
