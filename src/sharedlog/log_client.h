// Per-function-node client of the shared log. Adds what LogSpace deliberately leaves out:
// operation latencies (calibrated to Boki, Table 1 / §4.1), queueing at the sequencer and
// storage stations, and the node-local index replica that makes logReadPrev cheap.
//
// The index replica trails the authoritative log: each committed seqnum is propagated to every
// client after a sampled delay. A logReadPrev bounded by `max_seqnum` can be served from the
// local index iff the replica already covers `max_seqnum` (the 0.12 ms path); otherwise the
// client syncs with a storage node (the slower path).
//
// Sharded mode (DESIGN.md §9): constructed against a ShardedLog, the client routes each
// append to the shard owning its routing tag — per-shard AppendBatcher queues and per-shard
// sequencer stations, so appends to tags on different shards commit in parallel simulated
// time. Reads need no fan-out: every LogSpace shard answers queries for the whole log.
//
// On top of the index replica the client can keep a consistent *payload* cache: committed
// LogRecordPtrs by tag, validated on each logReadPrev against the index replica's
// latest-seqnum-at-most answer. A hit skips the index walk and the storage hop entirely
// (Halfmoon-read's log-free reads); a stale entry can never be returned because validation
// compares seqnums, and the index replica is complete up to indexed_upto_.

#ifndef HALFMOON_SHAREDLOG_LOG_CLIENT_H_
#define HALFMOON_SHAREDLOG_LOG_CLIENT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/sharedlog/append_batcher.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/log_space.h"
#include "src/sharedlog/sharded_log.h"
#include "src/sim/scheduler.h"
#include "src/sim/service_station.h"
#include "src/sim/task.h"

namespace halfmoon::storage {
class DurabilityService;
}  // namespace halfmoon::storage

namespace halfmoon::sharedlog {

// How a sampled end-to-end latency is split across the wire legs and the server occupancy.
// The split keeps low-load latency equal to the calibrated sample while letting the station
// inject queueing delay under load. Shared by LogClient and AppendBatcher so a batched round
// costs exactly one unbatched append latency.
inline constexpr double kRequestLegFraction = 0.4;
inline constexpr double kServiceFraction = 0.2;

// Counters for the logging-overhead analysis (the paper's "number of abstract logging
// operations", §4.3) and cache behaviour.
struct LogClientStats {
  int64_t appends = 0;
  int64_t cond_appends = 0;
  int64_t cond_append_conflicts = 0;
  int64_t read_prev_cached = 0;
  int64_t read_prev_uncached = 0;
  int64_t read_next = 0;
  int64_t stream_reads = 0;
  int64_t trims = 0;
  // Read-path provenance, bumped on EVERY log read (ReadPrev, ReadNext, ReadStream,
  // FindFirstByStep — the pre-PR 5 counters above only classified ReadPrev): index-local
  // reads are served by the node's index replica without a storage round trip.
  int64_t reads_index_local = 0;
  int64_t reads_storage = 0;
  // Node-local payload cache (read_cache in ClusterConfig). Hits/misses are counted on the
  // logReadPrev fast path only — the cache's reason to exist is Halfmoon-read's log-free
  // read, which is a bounded logReadPrev.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Cache-hit validations that went stale while the hit's read delay was pending (a
  // concurrent Trim released the cached record mid-read). The read fails closed: the entry
  // is dropped and the read is re-served from the index replica.
  int64_t read_cache_stale_invalidations = 0;
  // Zero-copy audit: every record a read returns is counted either as a shared view
  // (refcount bump on the committed record) or as a deep copy. The read path is copy-free by
  // construction, so read_record_copies must stay 0; the counter exists so benchmarks and
  // tests can observe the claim instead of trusting it.
  int64_t read_record_shared = 0;
  int64_t read_record_copies = 0;
  // Group-commit occupancy (batched mode only). append_rounds counts sequencer rounds the
  // batcher issued; batched_requests counts the append/cond-append requests they carried.
  // Their ratio is the node's mean batch occupancy — how many per-request rounds each round
  // of group commit replaced.
  int64_t append_rounds = 0;
  int64_t batched_requests = 0;
  int64_t max_round_occupancy = 0;
  // Pipeline observability (DESIGN.md §12). pipeline_inflight_hist[d] counts rounds that
  // departed with d rounds in flight (themselves included; the serial engine always lands in
  // bucket 1, deeper pipelines clamp into the last bucket). rounds "merged" — requests that
  // shared a round instead of paying their own — is batched_requests - append_rounds, so no
  // separate counter. The ctrl_* counters record the adaptive controller's decisions.
  static constexpr int kPipelineHistBuckets = 9;
  std::array<int64_t, kPipelineHistBuckets> pipeline_inflight_hist{};
  int64_t pipeline_rounds_overlapped = 0;  // Rounds that departed with another in flight.
  int64_t pipeline_max_inflight = 0;
  int64_t ctrl_window_widened = 0;
  int64_t ctrl_window_narrowed = 0;
  int64_t ctrl_depth_raised = 0;
  int64_t ctrl_depth_lowered = 0;
  // Simulated logged bytes: LogRecord::ByteSize of every record this client successfully
  // committed (conditional appends that lose their race contribute nothing), in total and
  // split by append class. Class 0 is control/runtime machinery (init records, invoke
  // steps, switch BEGIN/END); the core layer stamps protocol classes (1 + ProtocolKind)
  // via LogClient::set_append_class. "Log-optimal" (§4.3) is a claim about bytes, not
  // record counts — these counters are what the bench_table1 audit and the advisor drift
  // gate measure.
  static constexpr int kAppendClasses = 8;
  int64_t appended_bytes = 0;
  std::array<int64_t, kAppendClasses> appended_bytes_by_class{};

  // Folds another client's counters into this one. Like LatencyRecorder::Merge this is the
  // parallel-mode aggregation primitive: each worker thread's clients count into their own
  // stats, and the main thread folds them after the join (DESIGN.md §10). Order-independent.
  void Add(const LogClientStats& other) {
    appends += other.appends;
    cond_appends += other.cond_appends;
    cond_append_conflicts += other.cond_append_conflicts;
    read_prev_cached += other.read_prev_cached;
    read_prev_uncached += other.read_prev_uncached;
    read_next += other.read_next;
    stream_reads += other.stream_reads;
    trims += other.trims;
    reads_index_local += other.reads_index_local;
    reads_storage += other.reads_storage;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    read_cache_stale_invalidations += other.read_cache_stale_invalidations;
    read_record_shared += other.read_record_shared;
    read_record_copies += other.read_record_copies;
    append_rounds += other.append_rounds;
    batched_requests += other.batched_requests;
    max_round_occupancy = std::max(max_round_occupancy, other.max_round_occupancy);
    for (int d = 0; d < kPipelineHistBuckets; ++d) {
      pipeline_inflight_hist[d] += other.pipeline_inflight_hist[d];
    }
    pipeline_rounds_overlapped += other.pipeline_rounds_overlapped;
    pipeline_max_inflight = std::max(pipeline_max_inflight, other.pipeline_max_inflight);
    ctrl_window_widened += other.ctrl_window_widened;
    ctrl_window_narrowed += other.ctrl_window_narrowed;
    ctrl_depth_raised += other.ctrl_depth_raised;
    ctrl_depth_lowered += other.ctrl_depth_lowered;
    appended_bytes += other.appended_bytes;
    for (int c = 0; c < kAppendClasses; ++c) {
      appended_bytes_by_class[c] += other.appended_bytes_by_class[c];
    }
  }
};

class LogClient {
 public:
  // `sequencer_station` and `storage_station` may be null to disable queueing (microbenches).
  // `batch` enables node-local group commit: appends and cond-appends are collected by an
  // AppendBatcher and shipped in shared sequencer rounds (see append_batcher.h). Disabled by
  // default so microbenches and unit fixtures get the reference per-request path; the
  // cluster runtime enables it via ClusterConfig.
  LogClient(sim::Scheduler* scheduler, Rng* rng, const LatencyModels* models, LogSpace* space,
            sim::ServiceStation* sequencer_station, sim::ServiceStation* storage_station,
            AppendBatchConfig batch = AppendBatchConfig{.enabled = false})
      : scheduler_(scheduler),
        rng_(rng),
        models_(models),
        space_(space),
        sequencer_station_(sequencer_station),
        storage_station_(storage_station) {
    if (batch.enabled) batchers_.push_back(std::make_unique<AppendBatcher>(this, batch));
  }

  // Sharded-cluster client. `sequencer_stations` holds one station per shard (may be empty
  // to disable queueing); appends route to the shard owning their routing tag, each shard
  // with its own batcher queue. `read_cache` enables the node-local payload cache.
  LogClient(sim::Scheduler* scheduler, Rng* rng, const LatencyModels* models, ShardedLog* log,
            std::vector<sim::ServiceStation*> sequencer_stations,
            sim::ServiceStation* storage_station, AppendBatchConfig batch, bool read_cache)
      : scheduler_(scheduler),
        rng_(rng),
        models_(models),
        space_(&log->shard(0)),
        sequencer_station_(sequencer_stations.empty() ? nullptr : sequencer_stations[0]),
        storage_station_(storage_station),
        sequencer_stations_(std::move(sequencer_stations)),
        read_cache_enabled_(read_cache) {
    HM_CHECK(sequencer_stations_.empty() ||
             sequencer_stations_.size() == log->shard_count());
    if (batch.enabled) {
      batchers_.reserve(log->shard_count());
      for (uint32_t i = 0; i < log->shard_count(); ++i) {
        batchers_.push_back(std::make_unique<AppendBatcher>(
            this, batch, &log->shard(i),
            sequencer_stations_.empty() ? nullptr : sequencer_stations_[i]));
      }
    }
  }

  // The log's tag interner (shared across all clients of the same LogSpace).
  TagRegistry& tags() { return space_->tags(); }

  // logAppend: returns the record's seqnum. The record commits mid-flight (after the request
  // leg), so other nodes can observe it before the reply reaches the caller.
  sim::Task<SeqNum> Append(std::vector<TagId> tags, FieldMap fields);

  // logCondAppend (§5.1).
  sim::Task<CondAppendResult> CondAppend(std::vector<TagId> tags, FieldMap fields,
                                         TagId cond_tag, size_t cond_pos);

  // Conditionally appends several records in one sequencer round (Boki's batched append).
  // Costs a single append latency; the records receive consecutive batch seqnums
  // (LogSpace::BatchSeq).
  sim::Task<CondAppendResult> CondAppendBatch(std::vector<LogSpace::BatchEntry> batch,
                                              TagId cond_tag, size_t cond_pos);

  // Unconditional batched append (one round, consecutive batch seqnums); returns the first
  // seqnum.
  sim::Task<SeqNum> AppendBatch(std::vector<LogSpace::BatchEntry> batch);

  // Boki-style conflict resolution: the first record logged for (op, step) in `tag` wins.
  // Served against the local index replica at cache cost; used immediately after an append,
  // when the replica provably covers the appended seqnum. The hot path takes a pre-interned
  // OpId (the kOp* constants) so the scan is integer compares.
  sim::Task<LogRecordPtr> FindFirstByStep(TagId tag, OpId op, int64_t step);
  sim::Task<LogRecordPtr> FindFirstByStep(TagId tag, const std::string& op, int64_t step) {
    return FindFirstByStep(tag, space_->ops().Find(op), step);
  }

  // logReadPrev / logReadNext. Return shared views of the committed records (null when no
  // record qualifies); the log's copy is never duplicated.
  sim::Task<LogRecordPtr> ReadPrev(TagId tag, SeqNum max_seqnum);
  sim::Task<LogRecordPtr> ReadNext(TagId tag, SeqNum min_seqnum);

  // Fetches a whole sub-stream as shared views (step-log retrieval in Init).
  sim::Task<std::vector<LogRecordPtr>> ReadStream(TagId tag);

  // logTrim.
  sim::Task<void> Trim(TagId tag, SeqNum upto);

  // ---- Name-based convenience entry points (tests, microbenches) ----
  // Writes intern the names; reads resolve without interning. These are thin forwarders,
  // so latency modelling and stats are identical to the TagId path.
  sim::Task<SeqNum> Append(std::vector<std::string> tag_names, FieldMap fields) {
    return Append(InternAll(std::move(tag_names)), std::move(fields));
  }
  sim::Task<CondAppendResult> CondAppend(std::vector<std::string> tag_names, FieldMap fields,
                                         std::string_view cond_tag, size_t cond_pos) {
    return CondAppend(InternAll(std::move(tag_names)), std::move(fields),
                      tags().Intern(cond_tag), cond_pos);
  }
  sim::Task<LogRecordPtr> FindFirstByStep(std::string_view tag, const std::string& op,
                                          int64_t step) {
    return FindFirstByStep(tags().Find(tag), space_->ops().Find(op), step);
  }
  sim::Task<LogRecordPtr> ReadPrev(std::string_view tag, SeqNum max_seqnum) {
    return ReadPrev(tags().Find(tag), max_seqnum);
  }
  sim::Task<LogRecordPtr> ReadNext(std::string_view tag, SeqNum min_seqnum) {
    return ReadNext(tags().Find(tag), min_seqnum);
  }
  sim::Task<std::vector<LogRecordPtr>> ReadStream(std::string_view tag) {
    return ReadStream(tags().Find(tag));
  }
  sim::Task<void> Trim(std::string_view tag, SeqNum upto) {
    return Trim(tags().Find(tag), upto);
  }

  // Called by the cluster's propagation machinery when this node's index replica catches up
  // to `seqnum`.
  void AdvanceIndex(SeqNum seqnum) {
    if (seqnum > indexed_upto_) indexed_upto_ = seqnum;
  }

  SeqNum indexed_upto() const { return indexed_upto_; }
  const LogClientStats& stats() const { return stats_; }
  LogClientStats& mutable_stats() { return stats_; }

  // Byte-attribution class for this client's NEXT append (0 = control, the default). Each
  // append path consumes the stamp in its pre-suspension prologue and resets it to 0, so an
  // unstamped append is always control. The caller must stamp synchronously immediately
  // before the append call — no co_await in between — which makes the pairing correct even
  // with other coroutines interleaving on the same client. (A stamped call that turns out
  // to append nothing, e.g. a replayed step, leaves the stamp for the client's next append;
  // that only shifts attribution of one control record during crash replay.)
  void set_append_class(int cls) { append_class_ = cls; }
  int append_class() const { return append_class_; }

  bool read_cache_enabled() const { return read_cache_enabled_; }

  // Non-null iff node-local group commit is enabled for this client (shard 0's batcher in
  // sharded mode).
  AppendBatcher* batcher() { return batchers_.empty() ? nullptr : batchers_[0].get(); }

  // Fault-injection hooks, installed by the runtime layer (Cluster). `probe` consults the
  // cluster's FailureInjector and returns true when a crash fires at the named site;
  // `thrower` raises the runtime's crash exception (SsfCrashed) — sharedlog stays unaware of
  // the runtime types. Both null (the default) disables batch-site injection entirely.
  void InstallCrashHooks(std::function<bool(const char*)> probe,
                         std::function<void(const char*)> thrower) {
    crash_probe_ = std::move(probe);
    crash_thrower_ = std::move(thrower);
  }

  // Write-ahead gate (DESIGN.md §13): with a durability service attached, every append path
  // waits for the committed record's journal frame before its reply leg / caller resumption,
  // so every externally-known seqnum is durable. Null detaches (the HM_DURABLE=0 path never
  // attaches and stays bit-identical to the pre-storage engine).
  void SetDurability(storage::DurabilityService* durability) { durability_ = durability; }

  // Node-loss soft-state wipe: rolls the index replica back to `durable_seqnum` (what replay
  // rebuilds; pass 0 for a function-node loss, which restarts with an empty replica) and
  // drops the payload cache — its entries reference records the kill destroyed.
  void ResetSoftState(SeqNum durable_seqnum) {
    indexed_upto_ = std::min(indexed_upto_, durable_seqnum);
    read_cache_.clear();
  }

 private:
  friend class AppendBatcher;

  std::vector<TagId> InternAll(std::vector<std::string> names) {
    std::vector<TagId> ids;
    ids.reserve(names.size());
    for (const std::string& name : names) ids.push_back(tags().Intern(name));
    return ids;
  }

  // The batcher queue / sequencer station owning `tag`'s shard. Unsharded clients fall back
  // to their single queue / station, so routing compiles down to the historic path.
  AppendBatcher* BatcherForTag(TagId tag) {
    if (batchers_.empty()) return nullptr;
    if (batchers_.size() == 1) return batchers_[0].get();
    return batchers_[space_->tags().ShardOf(tag)].get();
  }
  sim::ServiceStation* SequencerStationForTag(TagId tag) const {
    if (sequencer_stations_.size() <= 1) return sequencer_station_;
    return sequencer_stations_[space_->tags().ShardOf(tag)];
  }

  sim::Task<void> SequencerRoundAt(sim::ServiceStation* station, SimDuration total_latency);
  sim::Task<void> StorageRound(SimDuration total_latency);
  sim::Task<CondAppendResult> SubmitCond(LogSpace::GroupRequest request, bool crashable);
  // The write-ahead gate for one committed seqnum. Returns false when a kill destroyed the
  // record before it reached the device; crashable waiters (protocol-class appends, which
  // run inside attempts) abort into the runtime's retry loop instead of returning.
  sim::Task<bool> AwaitDurable(SeqNum seqnum, bool crashable);

  // Exactly LogRecord::ByteSize for the record these tags/fields will commit as. Computed
  // in the append prologues BEFORE tags/fields are moved into the request, and credited to
  // the stats only once the commit verdict is known.
  static int64_t RecordBytes(const std::vector<TagId>& tags, const FieldMap& fields) {
    return static_cast<int64_t>(sizeof(SeqNum) + 8 + tags.size() * sizeof(TagId) +
                                fields.ByteSize());
  }
  void NoteAppendedBytes(int cls, int64_t bytes) {
    stats_.appended_bytes += bytes;
    if (cls < 0 || cls >= LogClientStats::kAppendClasses) cls = 0;
    stats_.appended_bytes_by_class[cls] += bytes;
  }

  // Payload-cache maintenance: committed records are the freshest for each of their tags at
  // commit time, so read-your-writes hits come for free.
  void CacheCommitted(const LogRecordPtr& record) {
    if (!read_cache_enabled_ || record == nullptr) return;
    for (TagId tag : record->tags) read_cache_[tag] = record;
  }
  void CacheBatch(SeqNum first, size_t count) {
    if (!read_cache_enabled_) return;
    // In batch order, so for tags shared across entries the last (freshest) entry wins.
    for (size_t i = 0; i < count; ++i) CacheCommitted(space_->Get(space_->BatchSeq(first, i)));
  }

  sim::Scheduler* scheduler_;
  Rng* rng_;
  const LatencyModels* models_;
  LogSpace* space_;
  sim::ServiceStation* sequencer_station_;
  sim::ServiceStation* storage_station_;
  std::vector<sim::ServiceStation*> sequencer_stations_;  // Per shard; empty when unsharded.
  std::vector<std::unique_ptr<AppendBatcher>> batchers_;  // Per shard; empty when disabled.
  SeqNum indexed_upto_ = 0;
  // Node-local consistent payload cache: latest committed record seen per tag. Entries are
  // validated against the index replica before use, so they can be stale but never wrong;
  // trimmed records fail validation and get overwritten on the next miss.
  bool read_cache_enabled_ = false;
  std::unordered_map<TagId, LogRecordPtr> read_cache_;
  storage::DurabilityService* durability_ = nullptr;  // See SetDurability.
  int append_class_ = 0;
  std::function<bool(const char*)> crash_probe_;    // See InstallCrashHooks.
  std::function<void(const char*)> crash_thrower_;  // Must throw; never returns normally.
  LogClientStats stats_;
};

}  // namespace halfmoon::sharedlog

#endif  // HALFMOON_SHAREDLOG_LOG_CLIENT_H_
