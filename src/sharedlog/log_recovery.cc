#include "src/sharedlog/log_recovery.h"

#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/storage/checkpoint.h"
#include "src/storage/durability.h"

namespace halfmoon::sharedlog {

namespace {

// Decoded kRecord / kCkptRecord payload (they share one encoding).
struct DecodedRecord {
  SeqNum seqnum = 0;
  std::vector<TagId> tags;
  FieldMap fields;
};

DecodedRecord DecodeRecord(storage::Cursor* cursor) {
  DecodedRecord r;
  r.seqnum = cursor->U64();
  uint32_t ntags = cursor->U32();
  r.tags.reserve(ntags);
  for (uint32_t t = 0; t < ntags; ++t) r.tags.push_back(cursor->U64());
  uint32_t nfields = cursor->U32();
  for (uint32_t f = 0; f < nfields; ++f) {
    std::string key(cursor->Str());
    if (cursor->U8() == 0) {
      r.fields.SetInt(key, static_cast<int64_t>(cursor->U64()));
    } else {
      r.fields.SetStr(key, std::string(cursor->Str()));
    }
  }
  return r;
}

// Replays one journal frame. `fuzzy` is false on the full-replay path (strict in-order
// asserts preserved) and true on the replay-suffix path.
void ReplayJournalFrame(SimTime now, ShardedLog* log, bool fuzzy, storage::FrameType type,
                        storage::Cursor cursor) {
  switch (type) {
    case storage::FrameType::kTagDef: {
      TagId id = cursor.U64();
      log->VerifyTagDef(id, cursor.Str());
      break;
    }
    case storage::FrameType::kRecord: {
      DecodedRecord r = DecodeRecord(&cursor);
      log->RestoreRecord(now, r.seqnum, std::move(r.tags), std::move(r.fields), fuzzy);
      break;
    }
    case storage::FrameType::kTrim: {
      TagId tag = cursor.U64();
      SeqNum upto = cursor.U64();
      size_t base_after = static_cast<size_t>(cursor.U64());
      log->RestoreTrim(now, tag, upto, base_after);
      break;
    }
    default:
      HM_CHECK_MSG(false, "unexpected frame type in the log journal");
  }
}

void InstallImageFrame(SimTime now, ShardedLog* log, storage::FrameType type,
                       storage::Cursor cursor) {
  switch (type) {
    case storage::FrameType::kCkptRecord: {
      DecodedRecord r = DecodeRecord(&cursor);
      log->RestoreCheckpointRecord(now, r.seqnum, std::move(r.tags), std::move(r.fields));
      break;
    }
    case storage::FrameType::kCkptTagStream: {
      TagId tag = cursor.U64();
      size_t base = static_cast<size_t>(cursor.U64());
      uint32_t n = cursor.U32();
      std::vector<SeqNum> seqnums;
      seqnums.reserve(n);
      for (uint32_t i = 0; i < n; ++i) seqnums.push_back(cursor.U64());
      log->RestoreCheckpointStream(now, tag, base, seqnums);
      break;
    }
    default:
      HM_CHECK_MSG(false, "unexpected frame type in a log checkpoint image");
  }
}

}  // namespace

LogRecoveryStats RestoreLogFromJournal(SimTime now, ShardedLog* log,
                                       const storage::DurabilityService* journal,
                                       const storage::CheckpointStore* ckpt) {
  LogRecoveryStats stats;
  log->ResetVolatile(now);

  storage::InstalledManifest manifest;
  bool have_image =
      ckpt != nullptr && storage::FindLatestValidManifest(*ckpt, storage::kCkptLogDomain,
                                                          &manifest, &stats.manifests_rejected);
  if (have_image) {
    stats.used_checkpoint = true;
    storage::ReplayImage(*ckpt, manifest,
                         [&](storage::FrameType type, storage::Cursor cursor) {
                           InstallImageFrame(now, log, type, cursor);
                           ++stats.image_frames;
                         });
    journal->Replay(manifest.manifest.cut,
                    [&](storage::FrameType type, storage::Cursor cursor) {
                      ReplayJournalFrame(now, log, /*fuzzy=*/true, type, cursor);
                      ++stats.suffix_frames;
                    });
    log->EnsureWatermark(manifest.manifest.watermark_floor);
  } else {
    // Full replay is only sound while every journaled frame survives: once the prefix was
    // truncated, the image it was traded for is the ONLY copy of that history.
    HM_CHECK_MSG(journal->retained_offset() == 0,
                 "log journal was compacted but no valid checkpoint manifest exists");
    journal->Replay([&](storage::FrameType type, storage::Cursor cursor) {
      ReplayJournalFrame(now, log, /*fuzzy=*/false, type, cursor);
      ++stats.suffix_frames;
    });
  }
  // Truncation (or trims) can erase the highest durable records; the allocator must still
  // never re-issue their seqnums.
  log->EnsureWatermark(journal->durable_seq());
  return stats;
}

}  // namespace halfmoon::sharedlog
