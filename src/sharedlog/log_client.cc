#include "src/sharedlog/log_client.h"

#include <utility>

#include "src/storage/durability.h"

namespace halfmoon::sharedlog {

sim::Task<bool> LogClient::AwaitDurable(SeqNum seqnum, bool crashable) {
  bool ok = co_await durability_->WaitSeq(seqnum);
  // A failed wait means a kill rolled the record back before it reached the device. An
  // attempt must not act on (or ack) the lost append — abort it into the retry loop, where
  // the re-executed attempt re-reads the rolled-back log. Control-path waits (class 0, e.g.
  // detached service appends) resume normally; their callers skip the post-commit caching.
  if (!ok && crashable && crash_thrower_) crash_thrower_("log.append.durability");
  co_return ok;
}

sim::Task<void> LogClient::SequencerRoundAt(sim::ServiceStation* station,
                                            SimDuration total_latency) {
  auto service = static_cast<SimDuration>(static_cast<double>(total_latency) * kServiceFraction);
  if (station != nullptr) {
    co_await station->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
}

sim::Task<void> LogClient::StorageRound(SimDuration total_latency) {
  auto service = static_cast<SimDuration>(static_cast<double>(total_latency) * kServiceFraction);
  if (storage_station_ != nullptr) {
    co_await storage_station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
}

sim::Task<SeqNum> LogClient::Append(std::vector<TagId> tags, FieldMap fields) {
  ++stats_.appends;
  // Byte accounting: class and size snapshot before any suspension (and before the moves).
  const int cls = std::exchange(append_class_, 0);
  const int64_t bytes = RecordBytes(tags, fields);
  if (!batchers_.empty()) {
    AppendBatcher* batcher = BatcherForTag(tags[0]);
    LogSpace::GroupRequest request;
    request.entries.push_back(LogSpace::BatchEntry{std::move(tags), std::move(fields)});
    LogSpace::GroupVerdict verdict =
        co_await batcher->Submit(std::move(request), /*crashable=*/cls != 0);
    NoteAppendedBytes(cls, bytes);
    if (durability_ != nullptr && !co_await AwaitDurable(verdict.seqnum, cls != 0)) {
      co_return verdict.seqnum;  // Rolled back by a kill; nothing left to cache.
    }
    if (read_cache_enabled_) CacheCommitted(space_->Get(verdict.seqnum));
    co_return verdict.seqnum;  // Unconditional requests always commit.
  }
  sim::ServiceStation* station = SequencerStationForTag(tags[0]);
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);          // Request travels to the sequencer.
  co_await SequencerRoundAt(station, total);  // Ordering + replication to storage nodes.
  SeqNum seqnum = space_->Append(scheduler_->Now(), std::move(tags), std::move(fields));
  NoteAppendedBytes(cls, bytes);
  if (durability_ == nullptr || co_await AwaitDurable(seqnum, cls != 0)) {
    AdvanceIndex(seqnum);                   // The appender learns its own seqnum with the reply.
    if (read_cache_enabled_) CacheCommitted(space_->Get(seqnum));
  }
  co_await scheduler_->Delay(leg);          // Reply.
  co_return seqnum;
}

sim::Task<CondAppendResult> LogClient::CondAppend(std::vector<TagId> tags, FieldMap fields,
                                                  TagId cond_tag, size_t cond_pos) {
  ++stats_.cond_appends;
  const int cls = std::exchange(append_class_, 0);
  const int64_t bytes = RecordBytes(tags, fields);
  if (!batchers_.empty()) {
    LogSpace::GroupRequest request;
    request.entries.push_back(LogSpace::BatchEntry{std::move(tags), std::move(fields)});
    request.cond_tag = cond_tag;
    request.cond_pos = cond_pos;
    CondAppendResult result = co_await SubmitCond(std::move(request), /*crashable=*/cls != 0);
    if (result.ok) NoteAppendedBytes(cls, bytes);
    co_return result;
  }
  sim::ServiceStation* station = SequencerStationForTag(cond_tag);
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await SequencerRoundAt(station, total);
  CondAppendResult result =
      space_->CondAppend(scheduler_->Now(), std::move(tags), std::move(fields), cond_tag,
                         cond_pos);
  if (result.ok) {
    NoteAppendedBytes(cls, bytes);
    if (durability_ == nullptr || co_await AwaitDurable(result.seqnum, cls != 0)) {
      AdvanceIndex(result.seqnum);
      CacheCommitted(result.record);
    }
  } else {
    ++stats_.cond_append_conflicts;
  }
  co_await scheduler_->Delay(leg);
  co_return result;
}

// Shared batched tail of CondAppend / CondAppendBatch: ships the request through the shard's
// batcher and rebuilds the CondAppendResult (verdict + shared view of the first record).
sim::Task<CondAppendResult> LogClient::SubmitCond(LogSpace::GroupRequest request,
                                                  bool crashable) {
  AppendBatcher* batcher = BatcherForTag(request.cond_tag);
  size_t entries = request.entries.size();
  LogSpace::GroupVerdict verdict = co_await batcher->Submit(std::move(request), crashable);
  CondAppendResult result;
  result.ok = verdict.ok;
  result.seqnum = verdict.seqnum;
  result.existing_seqnum = verdict.existing_seqnum;
  if (verdict.ok) {
    if (durability_ != nullptr && !co_await AwaitDurable(verdict.seqnum, crashable)) {
      co_return result;  // Rolled back by a kill; the record view no longer exists.
    }
    result.record = space_->Get(verdict.seqnum);
    if (entries > 1) {
      CacheBatch(verdict.seqnum, entries);
    } else {
      CacheCommitted(result.record);
    }
  } else {
    ++stats_.cond_append_conflicts;
  }
  co_return result;
}

sim::Task<CondAppendResult> LogClient::CondAppendBatch(std::vector<LogSpace::BatchEntry> batch,
                                                       TagId cond_tag, size_t cond_pos) {
  stats_.cond_appends += static_cast<int64_t>(batch.size());
  const int cls = std::exchange(append_class_, 0);
  int64_t bytes = 0;
  for (const LogSpace::BatchEntry& entry : batch) bytes += RecordBytes(entry.tags, entry.fields);
  if (!batchers_.empty()) {
    LogSpace::GroupRequest request;
    request.entries = std::move(batch);
    request.cond_tag = cond_tag;
    request.cond_pos = cond_pos;
    CondAppendResult result = co_await SubmitCond(std::move(request), /*crashable=*/cls != 0);
    if (result.ok) NoteAppendedBytes(cls, bytes);
    co_return result;
  }
  sim::ServiceStation* station = SequencerStationForTag(cond_tag);
  size_t entries = batch.size();
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await SequencerRoundAt(station, total);
  CondAppendResult result =
      space_->CondAppendBatch(scheduler_->Now(), std::move(batch), cond_tag, cond_pos);
  if (result.ok) {
    NoteAppendedBytes(cls, bytes);
    // The batch is journaled as one run of frames; the last entry's seqnum gates them all.
    if (durability_ == nullptr ||
        co_await AwaitDurable(space_->BatchSeq(result.seqnum, entries - 1), cls != 0)) {
      // The batch commits in one round; the replica learns its seqnums with the reply.
      AdvanceIndex(space_->next_seqnum() - 1);
      CacheBatch(result.seqnum, entries);
    }
  } else {
    ++stats_.cond_append_conflicts;
  }
  co_await scheduler_->Delay(leg);
  co_return result;
}

sim::Task<SeqNum> LogClient::AppendBatch(std::vector<LogSpace::BatchEntry> batch) {
  HM_CHECK(!batch.empty());
  stats_.appends += static_cast<int64_t>(batch.size());
  const int cls = std::exchange(append_class_, 0);
  int64_t bytes = 0;
  for (const LogSpace::BatchEntry& entry : batch) bytes += RecordBytes(entry.tags, entry.fields);
  if (!batchers_.empty()) {
    AppendBatcher* batcher = BatcherForTag(batch[0].tags.empty() ? kInitTagId : batch[0].tags[0]);
    size_t entries = batch.size();
    LogSpace::GroupRequest request;
    request.entries = std::move(batch);
    LogSpace::GroupVerdict verdict =
        co_await batcher->Submit(std::move(request), /*crashable=*/cls != 0);
    NoteAppendedBytes(cls, bytes);
    if (durability_ != nullptr &&
        !co_await AwaitDurable(space_->BatchSeq(verdict.seqnum, entries - 1), cls != 0)) {
      co_return verdict.seqnum;  // Rolled back by a kill; nothing left to cache.
    }
    CacheBatch(verdict.seqnum, entries);
    co_return verdict.seqnum;
  }
  sim::ServiceStation* station =
      SequencerStationForTag(batch[0].tags.empty() ? kInitTagId : batch[0].tags[0]);
  size_t entries = batch.size();
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await SequencerRoundAt(station, total);
  SeqNum first = space_->AppendBatch(scheduler_->Now(), std::move(batch));
  NoteAppendedBytes(cls, bytes);
  if (durability_ == nullptr ||
      co_await AwaitDurable(space_->BatchSeq(first, entries - 1), cls != 0)) {
    AdvanceIndex(space_->next_seqnum() - 1);
    CacheBatch(first, entries);
  }
  co_await scheduler_->Delay(leg);
  co_return first;
}

sim::Task<LogRecordPtr> LogClient::FindFirstByStep(TagId tag, OpId op, int64_t step) {
  ++stats_.reads_index_local;
  co_await scheduler_->Delay(models_->log_read_cached.Sample(*rng_));
  LogRecordPtr record = space_->FindFirstByStep(tag, op, step);
  if (record != nullptr) ++stats_.read_record_shared;
  co_return record;
}

sim::Task<LogRecordPtr> LogClient::ReadPrev(TagId tag, SeqNum max_seqnum) {
  if (indexed_upto_ >= max_seqnum) {
    // The local index replica provably covers the requested prefix: serve locally.
    ++stats_.read_prev_cached;
    ++stats_.reads_index_local;
    if (read_cache_enabled_) {
      // Payload-cache fast path: the index replica answers "which seqnum would this read
      // return" locally; if the cached payload for the tag IS that record, no index walk and
      // no storage hop happen at all. Stale entries simply fail the seqnum comparison.
      SeqNum latest = space_->LatestSeqNoAtMost(tag, max_seqnum);
      auto it = read_cache_.find(tag);
      if (it != read_cache_.end() && latest != kInvalidSeqNum &&
          it->second->seqnum == latest) {
        // Copy the shared view out before suspending: the map iterator is not stable across
        // the delay (a concurrent miss may rehash the map).
        LogRecordPtr cached = it->second;
        ++stats_.cache_hits;
        co_await scheduler_->Delay(models_->log_read_cache_hit.Sample(*rng_));
        // Re-validate after the suspension: a Trim that ran during the delay may have
        // released the cached record, and serving it would resurrect trimmed data. Fail
        // closed — drop the entry and fall through to the index-local read below.
        if (space_->LatestSeqNoAtMost(tag, max_seqnum) == latest) {
          ++stats_.read_record_shared;
          co_return cached;
        }
        ++stats_.read_cache_stale_invalidations;
        read_cache_.erase(tag);
      }
    }
    co_await scheduler_->Delay(models_->log_read_cached.Sample(*rng_));
    LogRecordPtr record = space_->ReadPrev(tag, max_seqnum);
    if (record != nullptr) {
      ++stats_.read_record_shared;
      if (read_cache_enabled_) {
        ++stats_.cache_misses;
        read_cache_[tag] = record;
      }
    }
    co_return record;
  }
  // Sync with a storage node; afterwards the replica covers max_seqnum.
  ++stats_.read_prev_uncached;
  ++stats_.reads_storage;
  SimDuration total = models_->log_read_uncached.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await StorageRound(total);
  LogRecordPtr record = space_->ReadPrev(tag, max_seqnum);
  if (record != nullptr) {
    ++stats_.read_record_shared;
    if (read_cache_enabled_) {
      ++stats_.cache_misses;
      read_cache_[tag] = record;
    }
  }
  AdvanceIndex(max_seqnum);
  co_await scheduler_->Delay(leg);
  co_return record;
}

sim::Task<LogRecordPtr> LogClient::ReadNext(TagId tag, SeqNum min_seqnum) {
  ++stats_.read_next;
  ++stats_.reads_storage;
  SimDuration total = models_->log_read_uncached.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await StorageRound(total);
  LogRecordPtr record = space_->ReadNext(tag, min_seqnum);
  if (record != nullptr) ++stats_.read_record_shared;
  co_await scheduler_->Delay(leg);
  co_return record;
}

sim::Task<std::vector<LogRecordPtr>> LogClient::ReadStream(TagId tag) {
  ++stats_.stream_reads;
  ++stats_.reads_index_local;
  // Served from the node-local index replica, which is complete up to indexed_upto_ (Boki
  // replicates the index to every function node; only record payloads live on storage).
  // Records beyond the replica's horizon may be missed — harmless, because every logged step
  // is re-validated through logCondAppend and a conflict adopts the existing record.
  co_await scheduler_->Delay(models_->log_read_cached.Sample(*rng_));
  std::vector<LogRecordPtr> records = space_->ReadStreamUpTo(tag, indexed_upto_);
  stats_.read_record_shared += static_cast<int64_t>(records.size());
  co_return records;
}

sim::Task<void> LogClient::Trim(TagId tag, SeqNum upto) {
  ++stats_.trims;
  SimDuration total = models_->log_read_uncached.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await StorageRound(total);
  space_->Trim(scheduler_->Now(), tag, upto);
  // Drop this client's own cached payload if the trim released it; peers catch theirs via
  // the post-delay revalidation in ReadPrev.
  if (read_cache_enabled_) {
    auto it = read_cache_.find(tag);
    if (it != read_cache_.end() && it->second->seqnum <= upto) read_cache_.erase(it);
  }
  co_await scheduler_->Delay(leg);
}

}  // namespace halfmoon::sharedlog
