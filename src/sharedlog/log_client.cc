#include "src/sharedlog/log_client.h"

#include <utility>

namespace halfmoon::sharedlog {

sim::Task<void> LogClient::SequencerRound(SimDuration total_latency) {
  auto service = static_cast<SimDuration>(static_cast<double>(total_latency) * kServiceFraction);
  if (sequencer_station_ != nullptr) {
    co_await sequencer_station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
}

sim::Task<void> LogClient::StorageRound(SimDuration total_latency) {
  auto service = static_cast<SimDuration>(static_cast<double>(total_latency) * kServiceFraction);
  if (storage_station_ != nullptr) {
    co_await storage_station_->Process(service);
  } else {
    co_await scheduler_->Delay(service);
  }
}

sim::Task<SeqNum> LogClient::Append(std::vector<TagId> tags, FieldMap fields) {
  ++stats_.appends;
  if (batcher_ != nullptr) {
    LogSpace::GroupRequest request;
    request.entries.push_back(LogSpace::BatchEntry{std::move(tags), std::move(fields)});
    LogSpace::GroupVerdict verdict = co_await batcher_->Submit(std::move(request));
    co_return verdict.seqnum;  // Unconditional requests always commit.
  }
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);        // Request travels to the sequencer.
  co_await SequencerRound(total);         // Ordering + replication to storage nodes.
  SeqNum seqnum = space_->Append(scheduler_->Now(), std::move(tags), std::move(fields));
  AdvanceIndex(seqnum);                   // The appender learns its own seqnum with the reply.
  co_await scheduler_->Delay(leg);        // Reply.
  co_return seqnum;
}

sim::Task<CondAppendResult> LogClient::CondAppend(std::vector<TagId> tags, FieldMap fields,
                                                  TagId cond_tag, size_t cond_pos) {
  ++stats_.cond_appends;
  if (batcher_ != nullptr) {
    LogSpace::GroupRequest request;
    request.entries.push_back(LogSpace::BatchEntry{std::move(tags), std::move(fields)});
    request.cond_tag = cond_tag;
    request.cond_pos = cond_pos;
    co_return co_await SubmitCond(std::move(request));
  }
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await SequencerRound(total);
  CondAppendResult result =
      space_->CondAppend(scheduler_->Now(), std::move(tags), std::move(fields), cond_tag,
                         cond_pos);
  if (result.ok) {
    AdvanceIndex(result.seqnum);
  } else {
    ++stats_.cond_append_conflicts;
  }
  co_await scheduler_->Delay(leg);
  co_return result;
}

// Shared batched tail of CondAppend / CondAppendBatch: ships the request through the
// batcher and rebuilds the CondAppendResult (verdict + shared view of the first record).
sim::Task<CondAppendResult> LogClient::SubmitCond(LogSpace::GroupRequest request) {
  LogSpace::GroupVerdict verdict = co_await batcher_->Submit(std::move(request));
  CondAppendResult result;
  result.ok = verdict.ok;
  result.seqnum = verdict.seqnum;
  result.existing_seqnum = verdict.existing_seqnum;
  if (verdict.ok) {
    result.record = space_->Get(verdict.seqnum);
  } else {
    ++stats_.cond_append_conflicts;
  }
  co_return result;
}

sim::Task<CondAppendResult> LogClient::CondAppendBatch(std::vector<LogSpace::BatchEntry> batch,
                                                       TagId cond_tag, size_t cond_pos) {
  stats_.cond_appends += static_cast<int64_t>(batch.size());
  if (batcher_ != nullptr) {
    LogSpace::GroupRequest request;
    request.entries = std::move(batch);
    request.cond_tag = cond_tag;
    request.cond_pos = cond_pos;
    co_return co_await SubmitCond(std::move(request));
  }
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await SequencerRound(total);
  CondAppendResult result =
      space_->CondAppendBatch(scheduler_->Now(), std::move(batch), cond_tag, cond_pos);
  if (result.ok) {
    // The batch commits with consecutive seqnums; the replica learns them with the reply.
    AdvanceIndex(space_->next_seqnum() - 1);
  } else {
    ++stats_.cond_append_conflicts;
  }
  co_await scheduler_->Delay(leg);
  co_return result;
}

sim::Task<SeqNum> LogClient::AppendBatch(std::vector<LogSpace::BatchEntry> batch) {
  stats_.appends += static_cast<int64_t>(batch.size());
  if (batcher_ != nullptr) {
    LogSpace::GroupRequest request;
    request.entries = std::move(batch);
    LogSpace::GroupVerdict verdict = co_await batcher_->Submit(std::move(request));
    co_return verdict.seqnum;
  }
  SimDuration total = models_->log_append.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await SequencerRound(total);
  SeqNum first = space_->AppendBatch(scheduler_->Now(), std::move(batch));
  AdvanceIndex(space_->next_seqnum() - 1);
  co_await scheduler_->Delay(leg);
  co_return first;
}

sim::Task<LogRecordPtr> LogClient::FindFirstByStep(TagId tag, OpId op, int64_t step) {
  co_await scheduler_->Delay(models_->log_read_cached.Sample(*rng_));
  LogRecordPtr record = space_->FindFirstByStep(tag, op, step);
  if (record != nullptr) ++stats_.read_record_shared;
  co_return record;
}

sim::Task<LogRecordPtr> LogClient::ReadPrev(TagId tag, SeqNum max_seqnum) {
  if (indexed_upto_ >= max_seqnum) {
    // The local index replica provably covers the requested prefix: serve locally.
    ++stats_.read_prev_cached;
    co_await scheduler_->Delay(models_->log_read_cached.Sample(*rng_));
    LogRecordPtr record = space_->ReadPrev(tag, max_seqnum);
    if (record != nullptr) ++stats_.read_record_shared;
    co_return record;
  }
  // Sync with a storage node; afterwards the replica covers max_seqnum.
  ++stats_.read_prev_uncached;
  SimDuration total = models_->log_read_uncached.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await StorageRound(total);
  LogRecordPtr record = space_->ReadPrev(tag, max_seqnum);
  if (record != nullptr) ++stats_.read_record_shared;
  AdvanceIndex(max_seqnum);
  co_await scheduler_->Delay(leg);
  co_return record;
}

sim::Task<LogRecordPtr> LogClient::ReadNext(TagId tag, SeqNum min_seqnum) {
  ++stats_.read_next;
  SimDuration total = models_->log_read_uncached.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await StorageRound(total);
  LogRecordPtr record = space_->ReadNext(tag, min_seqnum);
  if (record != nullptr) ++stats_.read_record_shared;
  co_await scheduler_->Delay(leg);
  co_return record;
}

sim::Task<std::vector<LogRecordPtr>> LogClient::ReadStream(TagId tag) {
  ++stats_.stream_reads;
  // Served from the node-local index replica, which is complete up to indexed_upto_ (Boki
  // replicates the index to every function node; only record payloads live on storage).
  // Records beyond the replica's horizon may be missed — harmless, because every logged step
  // is re-validated through logCondAppend and a conflict adopts the existing record.
  co_await scheduler_->Delay(models_->log_read_cached.Sample(*rng_));
  std::vector<LogRecordPtr> records = space_->ReadStreamUpTo(tag, indexed_upto_);
  stats_.read_record_shared += static_cast<int64_t>(records.size());
  co_return records;
}

sim::Task<void> LogClient::Trim(TagId tag, SeqNum upto) {
  ++stats_.trims;
  SimDuration total = models_->log_read_uncached.Sample(*rng_);
  auto leg = static_cast<SimDuration>(static_cast<double>(total) * kRequestLegFraction);
  co_await scheduler_->Delay(leg);
  co_await StorageRound(total);
  space_->Trim(scheduler_->Now(), tag, upto);
  co_await scheduler_->Delay(leg);
}

}  // namespace halfmoon::sharedlog
