// Retwis on Halfmoon: runs the simplified-Twitter workload (§6.2) against both Halfmoon
// protocols and the Boki baseline under a mixed load, with duplicate-instance injection, and
// reports latency plus logging footprint. Shows how an application picks the right protocol
// for a read-intensive workload.
//
//   $ ./build/examples/retwis_app

#include <cstdio>

#include "src/core/advisor.h"
#include "src/core/gc_service.h"
#include "src/core/ssf_runtime.h"
#include "src/metrics/table_printer.h"
#include "src/runtime/cluster.h"
#include "src/workloads/applications.h"
#include "src/workloads/loadgen.h"

using namespace halfmoon;

namespace {

struct RunSummary {
  double median_ms;
  double p99_ms;
  int64_t log_appends;
  int64_t peers;
};

RunSummary RunRetwis(core::ProtocolKind protocol) {
  runtime::ClusterConfig cluster_config;
  cluster_config.seed = 7;
  runtime::Cluster cluster(cluster_config);

  core::RuntimeConfig runtime_config;
  runtime_config.default_protocol = protocol;
  core::SsfRuntime runtime(&cluster, runtime_config);

  workloads::AppDataset data;
  workloads::RegisterRetwisApp(runtime, data);

  core::GcService gc(&cluster, Seconds(10));
  gc.Start();

  // Make life hard: every ~20th invocation gets a racing duplicate instance.
  cluster.failure_injector().SetDuplicateProbability(0.05);

  workloads::LoadGenConfig load;
  load.requests_per_second = 500;
  load.warmup = Seconds(1);
  load.duration = Seconds(8);
  workloads::LoadGenerator generator(&runtime, load,
                                     workloads::RetwisRequestFactory(runtime, data));
  generator.RunToCompletion();
  gc.Stop();

  return RunSummary{generator.latency().MedianMs(), generator.latency().P99Ms(),
                    cluster.TotalLogAppends(), runtime.stats().peer_instances};
}

}  // namespace

int main() {
  std::printf("Retwis (post/follow/timeline/profile) at 500 req/s, 5%% duplicate instances\n\n");

  metrics::TablePrinter table({"protocol", "median_ms", "p99_ms", "log_appends", "peers"});
  for (core::ProtocolKind protocol :
       {core::ProtocolKind::kBoki, core::ProtocolKind::kHalfmoonWrite,
        core::ProtocolKind::kHalfmoonRead}) {
    RunSummary s = RunRetwis(protocol);
    table.AddRow({core::ProtocolName(protocol), metrics::TablePrinter::FormatDouble(s.median_ms),
                  metrics::TablePrinter::FormatDouble(s.p99_ms), std::to_string(s.log_appends),
                  std::to_string(s.peers)});
  }
  table.Print();

  // What would the §4.6 advisor have said? Retwis is read-dominated.
  core::WorkloadProfile profile;
  profile.read_probability = 0.85;
  profile.write_probability = 0.15;
  core::AdvisorReport report = core::AnalyzeWorkload(profile);
  std::printf("\nadvisor recommendation for this mix: %s\n",
              core::ProtocolName(report.recommendation));
  return 0;
}
