// Quickstart: define two stateful serverless functions, run them on the simulated cluster
// under the Halfmoon-read protocol, and watch exactly-once semantics survive an injected
// crash.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/gc_service.h"
#include "src/core/ssf_runtime.h"
#include "src/runtime/cluster.h"

using namespace halfmoon;

int main() {
  // 1. A simulated cluster: 8 function nodes, a Boki-like shared log, a DynamoDB-like store.
  runtime::ClusterConfig cluster_config;
  cluster_config.seed = 2026;
  runtime::Cluster cluster(cluster_config);

  // 2. The Halfmoon runtime, using the log-free-read protocol.
  core::RuntimeConfig runtime_config;
  runtime_config.default_protocol = core::ProtocolKind::kHalfmoonRead;
  core::SsfRuntime runtime(&cluster, runtime_config);

  // 3. State: a bank account with an initial balance.
  runtime.PopulateObject("account:alice", EncodeInt64(100));

  // 4. Functions. `deposit` is the classic crash-sensitive read-modify-write; `audit` invokes
  //    `deposit` twice as a workflow.
  runtime.RegisterFunction("deposit", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value balance = co_await ctx.Read("account:alice");
    int64_t updated = DecodeInt64(balance) + DecodeInt64(ctx.input());
    co_await ctx.Compute();
    co_await ctx.Write("account:alice", EncodeInt64(updated));
    co_return EncodeInt64(updated);
  });
  runtime.RegisterFunction("audit", [](core::SsfContext& ctx) -> sim::Task<Value> {
    co_await ctx.Invoke("deposit", EncodeInt64(10));
    Value after = co_await ctx.Invoke("deposit", EncodeInt64(5));
    co_return after;
  });

  // 5. Inject a crash: the 7th crash site this run passes is right between the DB write and
  //    its commit log — the nastiest window. The runtime detects the failure and re-executes;
  //    the replayed SSF recovers its progress from the step log.
  cluster.failure_injector().CrashAtSiteHits({7});

  Value result;
  cluster.scheduler().Spawn([](core::SsfRuntime* rt, Value* out) -> sim::Task<void> {
    *out = co_await rt->InvokeSsf("audit", Value{});
  }(&runtime, &result));
  cluster.scheduler().Run();

  std::printf("workflow result:      %s (expected 115)\n", result.c_str());
  std::printf("crashes injected:     %lld\n",
              static_cast<long long>(runtime.stats().crashes));
  std::printf("attempts executed:    %lld (for %lld invocations)\n",
              static_cast<long long>(runtime.stats().attempts),
              static_cast<long long>(runtime.stats().invocations));
  std::printf("simulated time:       %.2f ms\n",
              ToMillisDouble(cluster.scheduler().Now()));
  std::printf("log records appended: %lld (reads were log-free!)\n",
              static_cast<long long>(cluster.TotalLogAppends()));

  // 6. Garbage-collect finished workflows.
  core::GcService gc(&cluster, Seconds(10));
  gc.RunOnce();
  std::printf("GC: trimmed %lld step logs, deleted %lld stale versions\n",
              static_cast<long long>(gc.stats().step_logs_trimmed),
              static_cast<long long>(gc.stats().versions_deleted));
  return 0;
}
