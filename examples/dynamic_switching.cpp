// Dynamic protocol switching (§4.7): a workload whose read/write mix flips at runtime, with
// the advisor deciding when to switch and the switch manager executing it pauselessly.
//
//   $ ./build/examples/dynamic_switching

#include <cstdio>
#include <memory>

#include "src/core/advisor.h"
#include "src/core/switch_manager.h"
#include "src/core/ssf_runtime.h"
#include "src/runtime/cluster.h"
#include "src/workloads/loadgen.h"
#include "src/workloads/synthetic.h"

using namespace halfmoon;

int main() {
  runtime::ClusterConfig cluster_config;
  cluster_config.seed = 11;
  runtime::Cluster cluster(cluster_config);

  core::RuntimeConfig runtime_config;
  runtime_config.default_protocol = core::ProtocolKind::kHalfmoonWrite;
  runtime_config.enable_switching = true;
  core::SsfRuntime runtime(&cluster, runtime_config);

  workloads::SyntheticConfig config;
  config.num_objects = 2000;
  config.ops_per_request = 10;
  workloads::SyntheticWorkload synthetic(&runtime, config);
  synthetic.Setup();

  // A workload that is write-heavy for 4 s, then turns read-heavy.
  auto read_ratio = std::make_shared<double>(0.2);
  Rng& rng = cluster.rng();
  workloads::LoadGenConfig load;
  load.requests_per_second = 200;
  load.warmup = 0;
  load.duration = Seconds(8);
  workloads::LoadGenerator generator(&runtime, load, [&, read_ratio]() {
    Value ops;
    for (int i = 0; i < config.ops_per_request; ++i) {
      if (!ops.empty()) ops.push_back(';');
      ops.push_back(rng.Bernoulli(*read_ratio) ? 'R' : 'W');
      ops.push_back(':');
      ops += synthetic.KeyFor(static_cast<int>(rng.UniformInt(0, config.num_objects - 1)));
    }
    return std::make_pair(workloads::SyntheticWorkload::FunctionName(), ops);
  });

  core::SwitchManager manager(&cluster, runtime_config.switch_scope);

  // At t = 4 s the mix flips; consult the §4.6 advisor and act on its recommendation.
  cluster.scheduler().Post(Seconds(4), [&] {
    *read_ratio = 0.9;
    core::WorkloadProfile profile;
    profile.read_probability = 0.9;
    profile.write_probability = 0.1;
    core::AdvisorReport report = core::AnalyzeWorkload(profile);
    std::printf("[t=%.1fs] mix flipped to read ratio 0.9; advisor says: %s\n",
                ToSecondsDouble(cluster.scheduler().Now()),
                core::ProtocolName(report.recommendation));
    cluster.scheduler().Spawn([](core::SwitchManager* m, runtime::Cluster* c,
                                 core::ProtocolKind target) -> sim::Task<void> {
      core::SwitchReport report = co_await m->SwitchTo(target);
      std::printf("[t=%.1fs] switch to %s complete (pauseless, %.0f ms: BEGIN seq %llu -> "
                  "END seq %llu)\n",
                  ToSecondsDouble(c->scheduler().Now()), core::ProtocolName(report.target),
                  ToMillisDouble(report.SwitchingDelay()),
                  static_cast<unsigned long long>(report.begin_seqnum),
                  static_cast<unsigned long long>(report.end_seqnum));
    }(&manager, &cluster, report.recommendation));
  });

  generator.RunToCompletion();

  std::printf("\ncompleted %lld requests, median latency %.1f ms\n",
              static_cast<long long>(generator.completed()),
              generator.latency().MedianMs());
  std::printf("(state stayed consistent across the switch: every SSF resolved its protocol\n");
  std::printf(" from the transition log, and in-flight SSFs used the transitional protocol)\n");
  return 0;
}
