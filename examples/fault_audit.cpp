// Fault-tolerance audit: exhaustively crash a transfer workflow at every crash point under
// every protocol and count the anomalies. The fault-tolerant protocols must come out clean;
// the unsafe baseline demonstrates why logging exists (§1's duplicated-write anomaly).
//
//   $ ./build/examples/fault_audit

#include <cstdio>

#include "src/core/ssf_runtime.h"
#include "src/metrics/table_printer.h"
#include "src/runtime/cluster.h"

using namespace halfmoon;

namespace {

// A transfer between two accounts: the invariant is conservation of the total balance, and
// the transfer must happen exactly once.
void RegisterTransfer(core::SsfRuntime& runtime) {
  runtime.PopulateObject("acct:a", EncodeInt64(100));
  runtime.PopulateObject("acct:b", EncodeInt64(100));
  runtime.RegisterFunction("transfer", [](core::SsfContext& ctx) -> sim::Task<Value> {
    int64_t amount = DecodeInt64(ctx.input());
    Value a = co_await ctx.Read("acct:a");
    Value b = co_await ctx.Read("acct:b");
    co_await ctx.Write("acct:a", EncodeInt64(DecodeInt64(a) - amount));
    co_await ctx.Write("acct:b", EncodeInt64(DecodeInt64(b) + amount));
    co_return "ok";
  });
  runtime.RegisterFunction("check", [](core::SsfContext& ctx) -> sim::Task<Value> {
    Value a = co_await ctx.Read("acct:a");
    Value b = co_await ctx.Read("acct:b");
    co_return a + "," + b;
  });
}

struct AuditResult {
  int64_t crash_sites = 0;
  int anomalies = 0;
};

// Runs the workflow once per crash site; an anomaly is any final state other than the
// exactly-once outcome (90, 110).
AuditResult Audit(core::ProtocolKind protocol) {
  AuditResult audit;
  // Count the crash sites of a clean run.
  {
    runtime::Cluster cluster(runtime::ClusterConfig{});
    core::RuntimeConfig config;
    config.default_protocol = protocol;
    core::SsfRuntime runtime(&cluster, config);
    RegisterTransfer(runtime);
    cluster.scheduler().Spawn([](core::SsfRuntime* rt) -> sim::Task<void> {
      co_await rt->InvokeSsf("transfer", EncodeInt64(10));
    }(&runtime));
    cluster.scheduler().Run();
    audit.crash_sites = cluster.failure_injector().site_hits();
  }

  for (int64_t site = 0; site < audit.crash_sites; ++site) {
    runtime::Cluster cluster(runtime::ClusterConfig{});
    core::RuntimeConfig config;
    config.default_protocol = protocol;
    core::SsfRuntime runtime(&cluster, config);
    RegisterTransfer(runtime);
    cluster.failure_injector().CrashAtSiteHits({site});
    Value balances;
    cluster.scheduler().Spawn([](core::SsfRuntime* rt, Value* out) -> sim::Task<void> {
      co_await rt->InvokeSsf("transfer", EncodeInt64(10));
      *out = co_await rt->InvokeSsf("check", Value{});
    }(&runtime, &balances));
    cluster.scheduler().Run();
    if (balances != "90,110") ++audit.anomalies;
  }
  return audit;
}

}  // namespace

int main() {
  std::printf("Crash-at-every-site audit of a money transfer (exactly-once => 90,110)\n\n");
  metrics::TablePrinter table({"protocol", "crash_sites_tested", "anomalies"});
  for (core::ProtocolKind protocol :
       {core::ProtocolKind::kBoki, core::ProtocolKind::kHalfmoonRead,
        core::ProtocolKind::kHalfmoonWrite, core::ProtocolKind::kUnsafe}) {
    AuditResult audit = Audit(protocol);
    table.AddRow({core::ProtocolName(protocol), std::to_string(audit.crash_sites),
                  std::to_string(audit.anomalies)});
  }
  table.Print();
  std::printf("\nthe unsafe baseline shows the §1 anomaly: retrying a crashed function\n");
  std::printf("duplicates writes that already reached the external state\n");
  return 0;
}
