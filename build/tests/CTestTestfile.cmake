# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/core_basic_test[1]_include.cmake")
include("/root/repo/build/tests/exactly_once_test[1]_include.cmake")
include("/root/repo/build/tests/peer_race_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/switching_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/sharedlog_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/invoke_all_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/auto_switch_test[1]_include.cmake")
include("/root/repo/build/tests/ordered_writes_test[1]_include.cmake")
include("/root/repo/build/tests/transitional_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
