#include "src/kvstore/kv_client.h"

#include <gtest/gtest.h>

#include "src/metrics/latency_recorder.h"
#include "src/sim/scheduler.h"
#include "src/sim/service_station.h"

namespace halfmoon::kvstore {
namespace {

constexpr ObjectId kObj = 7;

struct KvFixture {
  sim::Scheduler scheduler;
  Rng rng{11};
  LatencyModels models;
  KvState state;
  KvClient client{&scheduler, &rng, &models, &state, nullptr};
};

TEST(KvClientTest, PutThenGetRoundTrip) {
  KvFixture fx;
  fx.scheduler.Spawn([](KvFixture* fx) -> sim::Task<void> {
    co_await fx->client.Put("k", "v");
    auto v = co_await fx->client.Get("k");
    EXPECT_EQ(v.value(), "v");
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().plain_writes, 1);
  EXPECT_EQ(fx.client.stats().reads, 1);
}

TEST(KvClientTest, CondPutTracksRejects) {
  KvFixture fx;
  fx.scheduler.Spawn([](KvFixture* fx) -> sim::Task<void> {
    EXPECT_TRUE(co_await fx->client.CondPut("k", "a", VersionTuple{2, 0}));
    EXPECT_FALSE(co_await fx->client.CondPut("k", "b", VersionTuple{1, 0}));
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().cond_writes, 2);
  EXPECT_EQ(fx.client.stats().cond_write_rejects, 1);
}

TEST(KvClientTest, GetWithVersionReturnsTuple) {
  KvFixture fx;
  fx.scheduler.Spawn([](KvFixture* fx) -> sim::Task<void> {
    co_await fx->client.CondPut("k", "v", VersionTuple{7, 2});
    auto r = co_await fx->client.GetWithVersion("k");
    EXPECT_TRUE(r.has_value());
    if (!r.has_value()) co_return;
    EXPECT_EQ(r->first, "v");
    EXPECT_EQ(r->second, (VersionTuple{7, 2}));
    auto missing = co_await fx->client.GetWithVersion("nope");
    EXPECT_FALSE(missing.has_value());
  }(&fx));
  fx.scheduler.Run();
}

TEST(KvClientTest, VersionedPathRoundTrip) {
  KvFixture fx;
  fx.scheduler.Spawn([](KvFixture* fx) -> sim::Task<void> {
    co_await fx->client.PutVersioned(kObj, "v1", "data");
    auto v = co_await fx->client.GetVersioned(kObj, "v1");
    EXPECT_EQ(v.value(), "data");
    EXPECT_TRUE(co_await fx->client.DeleteVersioned(kObj, "v1"));
  }(&fx));
  fx.scheduler.Run();
  EXPECT_EQ(fx.client.stats().versioned_writes, 1);
  EXPECT_EQ(fx.client.stats().versioned_reads, 1);
  EXPECT_EQ(fx.client.stats().deletes, 1);
}

TEST(KvClientTest, ReadLatencyMatchesTable1Calibration) {
  // Statistical check: median read latency ≈ 1.88 ms, p99 ≈ 4.60 ms (Table 1).
  KvFixture fx;
  metrics::LatencyRecorder recorder;
  fx.scheduler.Spawn([](KvFixture* fx, metrics::LatencyRecorder* rec) -> sim::Task<void> {
    co_await fx->client.Put("k", "v");
    for (int i = 0; i < 4000; ++i) {
      SimTime before = fx->scheduler.Now();
      co_await fx->client.Get("k");
      rec->Record(fx->scheduler.Now() - before);
    }
  }(&fx, &recorder));
  fx.scheduler.Run();
  EXPECT_NEAR(recorder.MedianMs(), 1.88, 0.15);
  EXPECT_NEAR(recorder.P99Ms(), 4.60, 0.80);
}

TEST(KvClientTest, CondWriteCostlierThanPlainWrite) {
  // §6.1: conditional updates are more expensive than direct ones.
  KvFixture fx;
  metrics::LatencyRecorder plain, cond;
  fx.scheduler.Spawn([](KvFixture* fx, metrics::LatencyRecorder* plain,
                        metrics::LatencyRecorder* cond) -> sim::Task<void> {
    for (int i = 0; i < 3000; ++i) {
      SimTime before = fx->scheduler.Now();
      co_await fx->client.Put("k", "v");
      plain->Record(fx->scheduler.Now() - before);
      before = fx->scheduler.Now();
      co_await fx->client.CondPut("k", "v", VersionTuple{static_cast<uint64_t>(i + 1), 0});
      cond->Record(fx->scheduler.Now() - before);
    }
  }(&fx, &plain, &cond));
  fx.scheduler.Run();
  EXPECT_LT(plain.MedianMs(), cond.MedianMs());
}

TEST(KvClientTest, StationQueueingInflatesLatencyUnderLoad) {
  // With a one-server station and many concurrent reads, queueing delay must appear.
  sim::Scheduler scheduler;
  Rng rng(3);
  LatencyModels models;
  KvState state;
  sim::ServiceStation station(&scheduler, 1);
  KvClient client(&scheduler, &rng, &models, &state, &station);

  metrics::LatencyRecorder recorder;
  for (int i = 0; i < 50; ++i) {
    scheduler.Spawn([](KvClient* client, sim::Scheduler* sched,
                       metrics::LatencyRecorder* rec) -> sim::Task<void> {
      SimTime before = sched->Now();
      co_await client->Get("k");
      rec->Record(sched->Now() - before);
    }(&client, &scheduler, &recorder));
  }
  scheduler.Run();
  // The last reads waited behind ~49 service times; p99 must far exceed the solo median.
  EXPECT_GT(recorder.P99Ms(), 3 * 1.88);
}

}  // namespace
}  // namespace halfmoon::kvstore
