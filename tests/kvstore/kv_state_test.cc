#include "src/kvstore/kv_state.h"

#include <gtest/gtest.h>

namespace halfmoon::kvstore {
namespace {

// Versioned ops address objects by their interned write-log tag id; any dense id works here.
constexpr ObjectId kObj = 7;

TEST(VersionTupleTest, LexicographicComparison) {
  EXPECT_LT((VersionTuple{1, 5}), (VersionTuple{2, 0}));
  EXPECT_LT((VersionTuple{2, 1}), (VersionTuple{2, 2}));
  EXPECT_EQ((VersionTuple{3, 3}), (VersionTuple{3, 3}));
  EXPECT_LT((VersionTuple{0, 0}), (VersionTuple{0, 1}));
}

TEST(KvStateTest, GetMissingReturnsNullopt) {
  KvState kv;
  EXPECT_FALSE(kv.Get("nope").has_value());
  EXPECT_FALSE(kv.GetVersion("nope").has_value());
}

TEST(KvStateTest, PutThenGet) {
  KvState kv;
  kv.Put(0, "k", "v1");
  EXPECT_EQ(kv.Get("k").value(), "v1");
  kv.Put(0, "k", "v2");
  EXPECT_EQ(kv.Get("k").value(), "v2");
}

TEST(KvStateTest, PlainPutKeepsVersion) {
  KvState kv;
  kv.CondPut(0, "k", "v1", VersionTuple{5, 1});
  kv.Put(0, "k", "v2");
  EXPECT_EQ(kv.GetVersion("k").value(), (VersionTuple{5, 1}));
}

TEST(KvStateTest, CondPutAppliesOnLargerVersion) {
  KvState kv;
  EXPECT_TRUE(kv.CondPut(0, "k", "v1", VersionTuple{1, 1}));
  EXPECT_TRUE(kv.CondPut(0, "k", "v2", VersionTuple{2, 1}));
  EXPECT_EQ(kv.Get("k").value(), "v2");
}

TEST(KvStateTest, CondPutRejectsStaleAndEqualVersions) {
  KvState kv;
  EXPECT_TRUE(kv.CondPut(0, "k", "v2", VersionTuple{2, 1}));
  EXPECT_FALSE(kv.CondPut(0, "k", "stale", VersionTuple{1, 9}));
  EXPECT_FALSE(kv.CondPut(0, "k", "dup", VersionTuple{2, 1}));  // Idempotent retry.
  EXPECT_EQ(kv.Get("k").value(), "v2");
}

TEST(KvStateTest, CondPutOnMissingKeyNeedsPositiveVersion) {
  KvState kv;
  EXPECT_FALSE(kv.CondPut(0, "k", "v", VersionTuple{0, 0}));
  EXPECT_FALSE(kv.Get("k").has_value());
  EXPECT_TRUE(kv.CondPut(0, "k", "v", VersionTuple{0, 1}));
}

TEST(KvStateTest, VersionedPutGetDelete) {
  KvState kv;
  kv.PutVersioned(0, kObj, "v1", "a");
  kv.PutVersioned(0, kObj, "v2", "b");
  EXPECT_EQ(kv.VersionCount(kObj), 2u);
  EXPECT_EQ(kv.GetVersioned(kObj, "v1").value(), "a");
  EXPECT_EQ(kv.GetVersioned(kObj, "v2").value(), "b");
  EXPECT_FALSE(kv.GetVersioned(kObj, "v3").has_value());
  EXPECT_TRUE(kv.DeleteVersioned(0, kObj, "v1"));
  EXPECT_FALSE(kv.DeleteVersioned(0, kObj, "v1"));  // Already gone.
  EXPECT_EQ(kv.VersionCount(kObj), 1u);
}

TEST(KvStateTest, VersionedRewriteIsIdempotentInAccounting) {
  KvState kv;
  kv.PutVersioned(0, kObj, "v1", "abc");
  int64_t once = kv.CurrentBytes();
  kv.PutVersioned(0, kObj, "v1", "abc");  // Retried SSF re-creates the same version.
  EXPECT_EQ(kv.CurrentBytes(), once);
}

TEST(KvStateTest, ByteAccountingTracksAllPaths) {
  KvState kv;
  EXPECT_EQ(kv.CurrentBytes(), 0);
  kv.Put(0, "k", "0123456789");
  int64_t latest_only = kv.CurrentBytes();
  EXPECT_GT(latest_only, 10);
  kv.PutVersioned(0, kObj, "ver1", "0123456789");
  EXPECT_GT(kv.CurrentBytes(), latest_only);
  kv.DeleteVersioned(0, kObj, "ver1");
  EXPECT_EQ(kv.CurrentBytes(), latest_only);
  kv.Put(0, "k", "01234");
  EXPECT_LT(kv.CurrentBytes(), latest_only);  // Smaller value, smaller footprint.
}

TEST(KvStateTest, LatestAndVersionedAreIndependent) {
  KvState kv;
  kv.Put(0, "k", "latest");
  kv.PutVersioned(0, kObj, "v1", "old");
  EXPECT_EQ(kv.Get("k").value(), "latest");
  EXPECT_EQ(kv.GetVersioned(kObj, "v1").value(), "old");
}

TEST(KvStateTest, KeyCountCountsLatestSlots) {
  KvState kv;
  kv.Put(0, "a", "1");
  kv.Put(0, "b", "2");
  kv.Put(0, "a", "3");
  EXPECT_EQ(kv.key_count(), 2u);
}

}  // namespace
}  // namespace halfmoon::kvstore
