#include "src/sim/scheduler.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace halfmoon::sim {
namespace {

TEST(SchedulerTest, ClockStartsAtZero) {
  Scheduler sched;
  EXPECT_EQ(sched.Now(), 0);
}

TEST(SchedulerTest, PostedEventsRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(Milliseconds(3), [&] { order.push_back(3); });
  sched.Post(Milliseconds(1), [&] { order.push_back(1); });
  sched.Post(Milliseconds(2), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), Milliseconds(3));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.Post(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  sched.Post(Milliseconds(1), [&] {
    ++fired;
    sched.Post(Milliseconds(1), [&] { ++fired; });
  });
  sched.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.Now(), Milliseconds(2));
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.Post(Milliseconds(1), [&] { ++fired; });
  sched.Post(Milliseconds(10), [&] { ++fired; });
  sched.RunUntil(Milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), Milliseconds(5));
  EXPECT_FALSE(sched.empty());
  sched.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, RunUntilAdvancesClockOnEmptyQueue) {
  Scheduler sched;
  sched.RunUntil(Seconds(2));
  EXPECT_EQ(sched.Now(), Seconds(2));
}

TEST(SchedulerTest, DelayAwaitableAdvancesClock) {
  Scheduler sched;
  SimTime observed = -1;
  sched.Spawn([](Scheduler* s, SimTime* out) -> Task<void> {
    co_await s->Delay(Milliseconds(7));
    *out = s->Now();
  }(&sched, &observed));
  sched.Run();
  EXPECT_EQ(observed, Milliseconds(7));
}

TEST(SchedulerTest, ConcurrentSpawnsInterleaveByTime) {
  Scheduler sched;
  std::vector<int> order;
  auto worker = [](Scheduler* s, std::vector<int>* order, int id,
                   SimDuration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s->Delay(step);
      order->push_back(id);
    }
  };
  sched.Spawn(worker(&sched, &order, 1, Milliseconds(10)));
  sched.Spawn(worker(&sched, &order, 2, Milliseconds(4)));
  sched.Run();
  // Worker 2 fires at t=4, 8, 12; worker 1 at t=10, 20, 30.
  EXPECT_EQ(order, (std::vector<int>{2, 2, 1, 2, 1, 1}));
}

TEST(SchedulerTest, ZeroDelayRunsAtCurrentTimeAfterQueuedPeers) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(0, [&] { order.push_back(1); });
  sched.Post(0, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.Now(), 0);
}

TEST(SchedulerTest, EventsProcessedCountsBothEventVariants) {
  Scheduler sched;
  EXPECT_EQ(sched.events_processed(), 0u);
  int fired = 0;
  sched.Post(Milliseconds(1), [&] { ++fired; });      // Callback variant.
  sched.Spawn([](Scheduler* s) -> Task<void> {        // Coroutine-resume variant.
    co_await s->Delay(Milliseconds(2));
  }(&sched));
  sched.Run();
  EXPECT_EQ(fired, 1);
  // Spawn resumes the root once immediately plus once after the delay; the callback adds one.
  EXPECT_EQ(sched.events_processed(), 3u);
}

TEST(SchedulerTest, PostAcceptsMoveOnlyCallables) {
  Scheduler sched;
  int value = 0;
  auto token = std::make_unique<int>(42);  // Makes the lambda move-only.
  sched.Post(Milliseconds(1), [&value, owned = std::move(token)] { value = *owned; });
  sched.Run();
  EXPECT_EQ(value, 42);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int calls = 0;
  InlineCallback a([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(a));
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallbackTest, DestroysCapturesExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback cb([held = std::move(token)] { (void)held; });
    EXPECT_FALSE(watch.expired());
    InlineCallback moved(std::move(cb));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace halfmoon::sim
