#include "src/sim/scheduler.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace halfmoon::sim {
namespace {

TEST(SchedulerTest, ClockStartsAtZero) {
  Scheduler sched;
  EXPECT_EQ(sched.Now(), 0);
}

TEST(SchedulerTest, PostedEventsRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(Milliseconds(3), [&] { order.push_back(3); });
  sched.Post(Milliseconds(1), [&] { order.push_back(1); });
  sched.Post(Milliseconds(2), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), Milliseconds(3));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.Post(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  sched.Post(Milliseconds(1), [&] {
    ++fired;
    sched.Post(Milliseconds(1), [&] { ++fired; });
  });
  sched.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.Now(), Milliseconds(2));
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.Post(Milliseconds(1), [&] { ++fired; });
  sched.Post(Milliseconds(10), [&] { ++fired; });
  sched.RunUntil(Milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), Milliseconds(5));
  EXPECT_FALSE(sched.empty());
  sched.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, RunUntilAdvancesClockOnEmptyQueue) {
  Scheduler sched;
  sched.RunUntil(Seconds(2));
  EXPECT_EQ(sched.Now(), Seconds(2));
}

TEST(SchedulerTest, DelayAwaitableAdvancesClock) {
  Scheduler sched;
  SimTime observed = -1;
  sched.Spawn([](Scheduler* s, SimTime* out) -> Task<void> {
    co_await s->Delay(Milliseconds(7));
    *out = s->Now();
  }(&sched, &observed));
  sched.Run();
  EXPECT_EQ(observed, Milliseconds(7));
}

TEST(SchedulerTest, ConcurrentSpawnsInterleaveByTime) {
  Scheduler sched;
  std::vector<int> order;
  auto worker = [](Scheduler* s, std::vector<int>* order, int id,
                   SimDuration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s->Delay(step);
      order->push_back(id);
    }
  };
  sched.Spawn(worker(&sched, &order, 1, Milliseconds(10)));
  sched.Spawn(worker(&sched, &order, 2, Milliseconds(4)));
  sched.Run();
  // Worker 2 fires at t=4, 8, 12; worker 1 at t=10, 20, 30.
  EXPECT_EQ(order, (std::vector<int>{2, 2, 1, 2, 1, 1}));
}

TEST(SchedulerTest, ZeroDelayRunsAtCurrentTimeAfterQueuedPeers) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(0, [&] { order.push_back(1); });
  sched.Post(0, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.Now(), 0);
}

}  // namespace
}  // namespace halfmoon::sim
