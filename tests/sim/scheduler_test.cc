#include "src/sim/scheduler.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace halfmoon::sim {
namespace {

TEST(SchedulerTest, ClockStartsAtZero) {
  Scheduler sched;
  EXPECT_EQ(sched.Now(), 0);
}

TEST(SchedulerTest, PostedEventsRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(Milliseconds(3), [&] { order.push_back(3); });
  sched.Post(Milliseconds(1), [&] { order.push_back(1); });
  sched.Post(Milliseconds(2), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), Milliseconds(3));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.Post(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  sched.Post(Milliseconds(1), [&] {
    ++fired;
    sched.Post(Milliseconds(1), [&] { ++fired; });
  });
  sched.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.Now(), Milliseconds(2));
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.Post(Milliseconds(1), [&] { ++fired; });
  sched.Post(Milliseconds(10), [&] { ++fired; });
  sched.RunUntil(Milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), Milliseconds(5));
  EXPECT_FALSE(sched.empty());
  sched.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, RunUntilAdvancesClockOnEmptyQueue) {
  Scheduler sched;
  sched.RunUntil(Seconds(2));
  EXPECT_EQ(sched.Now(), Seconds(2));
}

TEST(SchedulerTest, DelayAwaitableAdvancesClock) {
  Scheduler sched;
  SimTime observed = -1;
  sched.Spawn([](Scheduler* s, SimTime* out) -> Task<void> {
    co_await s->Delay(Milliseconds(7));
    *out = s->Now();
  }(&sched, &observed));
  sched.Run();
  EXPECT_EQ(observed, Milliseconds(7));
}

TEST(SchedulerTest, ConcurrentSpawnsInterleaveByTime) {
  Scheduler sched;
  std::vector<int> order;
  auto worker = [](Scheduler* s, std::vector<int>* order, int id,
                   SimDuration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s->Delay(step);
      order->push_back(id);
    }
  };
  sched.Spawn(worker(&sched, &order, 1, Milliseconds(10)));
  sched.Spawn(worker(&sched, &order, 2, Milliseconds(4)));
  sched.Run();
  // Worker 2 fires at t=4, 8, 12; worker 1 at t=10, 20, 30.
  EXPECT_EQ(order, (std::vector<int>{2, 2, 1, 2, 1, 1}));
}

TEST(SchedulerTest, ZeroDelayRunsAtCurrentTimeAfterQueuedPeers) {
  Scheduler sched;
  std::vector<int> order;
  sched.Post(0, [&] { order.push_back(1); });
  sched.Post(0, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.Now(), 0);
}

TEST(SchedulerTest, EventsProcessedCountsBothEventVariants) {
  Scheduler sched;
  EXPECT_EQ(sched.events_processed(), 0u);
  int fired = 0;
  sched.Post(Milliseconds(1), [&] { ++fired; });      // Callback variant.
  sched.Spawn([](Scheduler* s) -> Task<void> {        // Coroutine-resume variant.
    co_await s->Delay(Milliseconds(2));
  }(&sched));
  sched.Run();
  EXPECT_EQ(fired, 1);
  // Spawn resumes the root once immediately plus once after the delay; the callback adds one.
  EXPECT_EQ(sched.events_processed(), 3u);
}

TEST(SchedulerTest, PostAcceptsMoveOnlyCallables) {
  Scheduler sched;
  int value = 0;
  auto token = std::make_unique<int>(42);  // Makes the lambda move-only.
  sched.Post(Milliseconds(1), [&value, owned = std::move(token)] { value = *owned; });
  sched.Run();
  EXPECT_EQ(value, 42);
}

// ---- Timer wheel vs. binary-heap reference equivalence -------------------------------------

// A deterministic but adversarial event storm: every firing may re-post at delay 0 (same
// timestamp, FIFO tie-break), at a short delay (same wheel slot or neighbouring L0 slots), at
// a mid-range delay (higher wheel levels, cascades), or far in the future (overflow heap).
// Both queue modes must fire the exact same (id, time) trace.
struct StormRng {  // Tiny splitmix64 so the storm itself never touches the sim's Rng.
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

std::vector<std::pair<int, SimTime>> RunStorm(QueueMode mode, uint64_t seed,
                                              bool use_run_until) {
  Scheduler sched(mode);
  std::vector<std::pair<int, SimTime>> trace;
  StormRng rng{seed};
  int next_id = 0;
  // Self-propagating event chain: each firing records itself and may spawn children.
  struct Spawner {
    Scheduler* sched;
    std::vector<std::pair<int, SimTime>>* trace;
    StormRng* rng;
    int* next_id;
    int remaining_spawns;

    void SpawnOne() {
      if (--remaining_spawns < 0) return;
      int id = (*next_id)++;
      uint64_t roll = rng->Next() % 100;
      SimDuration delay;
      if (roll < 20) {
        delay = 0;  // Same-timestamp repost: FIFO tie-break must hold.
      } else if (roll < 55) {
        delay = static_cast<SimDuration>(rng->Next() % Microseconds(20));  // Within L0 slots.
      } else if (roll < 90) {
        delay = static_cast<SimDuration>(rng->Next() % Milliseconds(40));  // Higher levels.
      } else {
        delay = Seconds(1) + static_cast<SimDuration>(rng->Next() % Seconds(9000));  // Overflow.
      }
      sched->Post(delay, [this, id] {
        trace->emplace_back(id, sched->Now());
        SpawnOne();
        if (rng->Next() % 4 == 0) SpawnOne();
      });
    }
  };
  Spawner spawner{&sched, &trace, &rng, &next_id, 600};
  for (int i = 0; i < 40; ++i) spawner.SpawnOne();
  if (use_run_until) {
    // Interleave bounded runs with fresh posts landing behind the advanced clock.
    sched.RunUntil(Milliseconds(1));
    sched.RunUntil(Milliseconds(2));
    spawner.remaining_spawns += 50;
    for (int i = 0; i < 10; ++i) spawner.SpawnOne();
    sched.RunUntil(Seconds(2));
  }
  sched.Run();
  return trace;
}

TEST(TimerWheelTest, MatchesPriorityQueueReferenceTrace) {
  for (uint64_t seed : {1ull, 29ull, 4242ull}) {
    auto wheel = RunStorm(QueueMode::kTimerWheel, seed, false);
    auto heap = RunStorm(QueueMode::kPriorityQueue, seed, false);
    ASSERT_GT(wheel.size(), 100u);
    EXPECT_EQ(wheel, heap) << "seed " << seed;
  }
}

TEST(TimerWheelTest, MatchesReferenceUnderRunUntilInterleavings) {
  auto wheel = RunStorm(QueueMode::kTimerWheel, 7, true);
  auto heap = RunStorm(QueueMode::kPriorityQueue, 7, true);
  EXPECT_EQ(wheel, heap);
}

TEST(TimerWheelTest, SameSeedRunsAreBitIdentical) {
  auto first = RunStorm(QueueMode::kTimerWheel, 99, true);
  auto second = RunStorm(QueueMode::kTimerWheel, 99, true);
  EXPECT_EQ(first, second);
}

TEST(TimerWheelTest, FarFutureEventsCascadeToExactTimes) {
  // Events spanning every wheel level plus the overflow heap, including one pair at the same
  // far-future timestamp (FIFO across a cascade) — fired times must be exact.
  Scheduler sched(QueueMode::kTimerWheel);
  std::vector<std::pair<int, SimTime>> trace;
  std::vector<SimDuration> delays = {
      0,          Microseconds(3), Microseconds(9),  Microseconds(200),  Milliseconds(1),
      Seconds(1), Seconds(60),     Seconds(1 * 3600), Seconds(5 * 3600), Seconds(30 * 3600)};
  for (size_t i = 0; i < delays.size(); ++i) {
    sched.Post(delays[i], [&trace, &sched, i] {
      trace.emplace_back(static_cast<int>(i), sched.Now());
    });
  }
  sched.Post(Seconds(5 * 3600), [&trace, &sched] { trace.emplace_back(100, sched.Now()); });
  sched.Run();
  ASSERT_EQ(trace.size(), delays.size() + 1);
  for (size_t i = 0; i < delays.size(); ++i) {
    EXPECT_EQ(trace[i <= 8 ? i : i + 1].second, delays[i]);
  }
  // The duplicate 5-hour event fires right after the original (insertion order).
  EXPECT_EQ(trace[9].first, 100);
  EXPECT_EQ(trace[9].second, Seconds(5 * 3600));
  EXPECT_EQ(trace[10].first, 9);
}

TEST(TimerWheelTest, PendingEventsTracksBothModes) {
  for (QueueMode mode : {QueueMode::kTimerWheel, QueueMode::kPriorityQueue}) {
    Scheduler sched(mode);
    sched.Post(Milliseconds(1), [] {});
    sched.Post(Seconds(10 * 3600), [] {});  // Overflow in wheel mode.
    EXPECT_EQ(sched.pending_events(), 2u);
    EXPECT_FALSE(sched.empty());
    sched.Run();
    EXPECT_EQ(sched.pending_events(), 0u);
    EXPECT_TRUE(sched.empty());
  }
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int calls = 0;
  InlineCallback a([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(a));
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallbackTest, DestroysCapturesExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback cb([held = std::move(token)] { (void)held; });
    EXPECT_FALSE(watch.expired());
    InlineCallback moved(std::move(cb));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace halfmoon::sim
