#include "src/sim/sync.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"
#include "src/sim/scheduler.h"

namespace halfmoon::sim {
namespace {

TEST(EventTest, AwaitOnSetEventCompletesImmediately) {
  Scheduler sched;
  Event event(&sched);
  event.Set();
  bool done = false;
  sched.Spawn([](Event* e, bool* done) -> Task<void> {
    co_await *e;
    *done = true;
  }(&event, &done));
  sched.Run();
  EXPECT_TRUE(done);
}

TEST(EventTest, SetWakesAllWaiters) {
  Scheduler sched;
  Event event(&sched);
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    sched.Spawn([](Event* e, int* woke) -> Task<void> {
      co_await *e;
      ++*woke;
    }(&event, &woke));
  }
  sched.Post(Milliseconds(10), [&] { event.Set(); });
  sched.Run();
  EXPECT_EQ(woke, 5);
}

TEST(EventTest, ResetMakesAwaitBlockAgain) {
  Scheduler sched;
  Event event(&sched);
  event.Set();
  event.Reset();
  bool done = false;
  sched.Spawn([](Event* e, bool* done) -> Task<void> {
    co_await *e;
    *done = true;
  }(&event, &done));
  sched.Post(Milliseconds(1), [&] { event.Set(); });
  sched.Run();
  EXPECT_TRUE(done);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Scheduler sched;
  Semaphore sem(&sched, 2);
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 6; ++i) {
    sched.Spawn([](Scheduler* s, Semaphore* sem, int* cur, int* max) -> Task<void> {
      co_await sem->Acquire();
      SemaphoreGuard guard(sem);
      ++*cur;
      if (*cur > *max) *max = *cur;
      co_await s->Delay(Milliseconds(5));
      --*cur;
    }(&sched, &sem, &concurrent, &max_concurrent));
  }
  sched.Run();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, FifoHandOff) {
  Scheduler sched;
  Semaphore sem(&sched, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](Scheduler* s, Semaphore* sem, std::vector<int>* order, int id) -> Task<void> {
      co_await sem->Acquire();
      order->push_back(id);
      co_await s->Delay(Milliseconds(1));
      sem->Release();
    }(&sched, &sem, &order, i));
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SemaphoreTest, QueueLengthReflectsWaiters) {
  Scheduler sched;
  Semaphore sem(&sched, 1);
  sched.Spawn([](Scheduler* s, Semaphore* sem) -> Task<void> {
    co_await sem->Acquire();
    co_await s->Delay(Milliseconds(10));
    sem->Release();
  }(&sched, &sem));
  sched.Spawn([](Scheduler* s, Semaphore* sem) -> Task<void> {
    co_await s->Delay(Milliseconds(1));
    co_await sem->Acquire();
    sem->Release();
  }(&sched, &sem));
  sched.RunUntil(Milliseconds(5));
  EXPECT_EQ(sem.queue_length(), 1u);
  sched.Run();
  EXPECT_EQ(sem.queue_length(), 0u);
}

TEST(WaitGroupTest, WaitCompletesWhenCountDrops) {
  Scheduler sched;
  WaitGroup wg(&sched);
  bool finished = false;
  wg.Add(3);
  for (int i = 1; i <= 3; ++i) {
    sched.Post(Milliseconds(i), [&wg] { wg.Done(); });
  }
  sched.Spawn([](WaitGroup* wg, bool* out) -> Task<void> {
    co_await wg->Wait();
    *out = true;
  }(&wg, &finished));
  sched.RunUntil(Milliseconds(2));
  EXPECT_FALSE(finished);
  sched.Run();
  EXPECT_TRUE(finished);
}

TEST(WaitGroupTest, WaitOnIdleGroupIsImmediate) {
  Scheduler sched;
  WaitGroup wg(&sched);
  bool finished = false;
  sched.Spawn([](WaitGroup* wg, bool* out) -> Task<void> {
    co_await wg->Wait();
    *out = true;
  }(&wg, &finished));
  sched.Run();
  EXPECT_TRUE(finished);
}

TEST(JoinHandleTest, AwaitReturnsValue) {
  Scheduler sched;
  int result = 0;
  auto work = [](Scheduler* s) -> Task<int> {
    co_await s->Delay(Milliseconds(2));
    co_return 41;
  };
  JoinHandle<int> handle = SpawnJoinable(sched, work(&sched));
  sched.Spawn([](JoinHandle<int> h, int* out) -> Task<void> {
    *out = co_await h + 1;
  }(handle, &result));
  sched.Run();
  EXPECT_EQ(result, 42);
}

TEST(JoinHandleTest, AwaitAfterCompletionIsImmediate) {
  Scheduler sched;
  JoinHandle<int> handle = SpawnJoinable(sched, [](Scheduler* s) -> Task<int> {
    co_return 9;
  }(&sched));
  sched.Run();
  EXPECT_TRUE(handle.done());
  int result = 0;
  sched.Spawn([](JoinHandle<int> h, int* out) -> Task<void> {
    *out = co_await h;
  }(handle, &result));
  sched.Run();
  EXPECT_EQ(result, 9);
}

TEST(JoinHandleTest, ExceptionRethrownAtJoin) {
  Scheduler sched;
  JoinHandle<int> handle = SpawnJoinable(sched, []() -> Task<int> {
    throw std::runtime_error("crash");
    co_return 0;
  }());
  bool caught = false;
  sched.Spawn([](JoinHandle<int> h, bool* caught) -> Task<void> {
    try {
      co_await h;
    } catch (const std::runtime_error&) {
      *caught = true;
    }
  }(handle, &caught));
  sched.Run();
  EXPECT_TRUE(caught);
}

TEST(JoinHandleTest, VoidJoin) {
  Scheduler sched;
  int side_effect = 0;
  JoinHandle<void> handle = SpawnJoinable(sched, [](Scheduler* s, int* out) -> Task<void> {
    co_await s->Delay(Milliseconds(3));
    *out = 1;
  }(&sched, &side_effect));
  bool joined = false;
  sched.Spawn([](JoinHandle<void> h, bool* joined) -> Task<void> {
    co_await h;
    *joined = true;
  }(handle, &joined));
  sched.Run();
  EXPECT_EQ(side_effect, 1);
  EXPECT_TRUE(joined);
}

TEST(JoinHandleTest, ManyParallelJoins) {
  Scheduler sched;
  std::vector<JoinHandle<int>> handles;
  for (int i = 0; i < 50; ++i) {
    handles.push_back(SpawnJoinable(sched, [](Scheduler* s, int v) -> Task<int> {
      co_await s->Delay(Milliseconds(v % 7));
      co_return v;
    }(&sched, i)));
  }
  int total = 0;
  sched.Spawn([](std::vector<JoinHandle<int>>* handles, int* total) -> Task<void> {
    for (auto& h : *handles) *total += co_await h;
  }(&handles, &total));
  sched.Run();
  EXPECT_EQ(total, 50 * 49 / 2);
}

}  // namespace
}  // namespace halfmoon::sim
