#include "src/sim/parallel.h"

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"
#include "src/sim/scheduler.h"

namespace halfmoon::sim {
namespace {

constexpr SimDuration kLookahead = Milliseconds(1);

// One observed event firing: (worker, virtual time, label). Tests pin full traces of these,
// which is a stronger claim than "the right events ran" — it pins order and timestamps.
using Fired = std::tuple<int, SimTime, int>;

TEST(ParallelEngineTest, CrossMessageBlocksReceiverClockAdvance) {
  // Worker 1's only local event is at 10ms; worker 0 sends it a message that lands at 6ms.
  // A greedy (non-conservative) worker 1 would run its 10ms event first and the 6ms message
  // would arrive in its past. The conservative window protocol must fire them in timestamp
  // order: the message first, then the local event.
  ParallelEngine engine(2, kLookahead);
  std::vector<Fired> on_worker1;
  engine.scheduler(1).Post(Milliseconds(10), [&] {
    on_worker1.emplace_back(1, engine.scheduler(1).Now(), /*label=*/100);
  });
  engine.scheduler(0).Post(Milliseconds(5), [&engine, &on_worker1] {
    engine.Send(0, 1, kLookahead, [&engine, &on_worker1] {
      on_worker1.emplace_back(1, engine.scheduler(1).Now(), /*label=*/200);
    });
  });
  SimTime end = engine.Run();
  ASSERT_EQ(on_worker1.size(), 2u);
  EXPECT_EQ(on_worker1[0], Fired(1, Milliseconds(6), 200));
  EXPECT_EQ(on_worker1[1], Fired(1, Milliseconds(10), 100));
  EXPECT_EQ(end, Milliseconds(10));
  EXPECT_EQ(engine.messages_routed(), 1u);
  EXPECT_GE(engine.windows(), 2u);
}

TEST(ParallelEngineTest, SingleWorkerDegeneratesToPlainScheduler) {
  // N=1 must be the plain Scheduler::Run, bit for bit: same firing order, same clocks, same
  // events_processed, and no synchronization rounds at all.
  auto workload = [](Scheduler& sched, auto post_cross, std::vector<Fired>& fired) {
    for (int i = 0; i < 50; ++i) {
      sched.Post(Milliseconds(1 + (i * 7) % 13), [&sched, &fired, i] {
        fired.emplace_back(0, sched.Now(), i);
      });
    }
    // Self-sends (the only "cross" traffic a 1-worker engine can have) go direct.
    post_cross(Milliseconds(3), 1000);
    post_cross(Milliseconds(3), 1001);  // Tie: insertion order must hold.
  };

  Scheduler plain;
  std::vector<Fired> plain_fired;
  workload(
      plain,
      [&](SimDuration d, int label) {
        plain.Post(d, [&plain, &plain_fired, label] {
          plain_fired.emplace_back(0, plain.Now(), label);
        });
      },
      plain_fired);
  SimTime plain_end = plain.Run();

  ParallelEngine engine(1, kLookahead);
  std::vector<Fired> engine_fired;
  workload(
      engine.scheduler(0),
      [&](SimDuration d, int label) {
        engine.Send(0, 0, d, [&engine, &engine_fired, label] {
          engine_fired.emplace_back(0, engine.scheduler(0).Now(), label);
        });
      },
      engine_fired);
  SimTime engine_end = engine.Run();

  EXPECT_EQ(engine_fired, plain_fired);
  EXPECT_EQ(engine_end, plain_end);
  EXPECT_EQ(engine.TotalEventsProcessed(), plain.events_processed());
  EXPECT_EQ(engine.windows(), 0u) << "1 worker must not pay for barriers";
}

// A messy 3-worker ping-pong: every event re-sends to the next worker with a varying delay,
// several chains run concurrently, and some deliveries tie on the same virtual nanosecond.
std::vector<Fired> RunPingPong(QueueMode mode) {
  ParallelEngine engine(3, kLookahead, mode);
  std::vector<std::vector<Fired>> per_worker(3);

  // `hops` bounces worker-to-worker; the delay pattern depends only on (chain, hop).
  struct Chain {
    ParallelEngine* engine;
    std::vector<std::vector<Fired>>* fired;
    int chain;
  };
  static constexpr int kChains = 6;
  static constexpr int kHops = 40;
  // Recursive hop as a plain function pointer shape: capture state by value in the lambda.
  struct Hop {
    static void Step(Chain c, int at, int hop) {
      (*c.fired)[static_cast<size_t>(at)].emplace_back(
          at, c.engine->scheduler(at).Now(), c.chain * 1000 + hop);
      if (hop >= kHops) return;
      int next = (at + 1 + (c.chain + hop) % 2) % 3;
      // Delays >= lookahead; ties arise because chains share the delay pattern.
      SimDuration delay = kLookahead + Microseconds(100 * ((hop * 3 + c.chain) % 4));
      c.engine->Send(at, next, delay, [c, next, hop] { Step(c, next, hop + 1); });
    }
  };
  for (int chain = 0; chain < kChains; ++chain) {
    Chain c{&engine, &per_worker, chain};
    int start = chain % 3;
    engine.scheduler(start).Post(Milliseconds(1 + chain), [c, start] {
      Hop::Step(c, start, 0);
    });
  }
  engine.Run();
  EXPECT_EQ(engine.messages_routed() + 0u, 0u + kChains * kHops);

  std::vector<Fired> all;
  for (const auto& w : per_worker) all.insert(all.end(), w.begin(), w.end());
  return all;
}

TEST(ParallelEngineTest, CrossRunDeterminism) {
  // Real threads race for real: run the same workload repeatedly and require bit-identical
  // per-worker traces. This is the engine's determinism claim — execution is a function of
  // simulation state, never of OS scheduling.
  std::vector<Fired> reference = RunPingPong(QueueMode::kTimerWheel);
  ASSERT_FALSE(reference.empty());
  for (int run = 0; run < 4; ++run) {
    EXPECT_EQ(RunPingPong(QueueMode::kTimerWheel), reference) << "run " << run;
  }
}

TEST(ParallelEngineTest, QueueModesAgree) {
  // The wheel and the reference heap must produce the same trace under parallel execution,
  // matching the single-threaded cross-mode pin in scheduler_test.
  EXPECT_EQ(RunPingPong(QueueMode::kTimerWheel), RunPingPong(QueueMode::kPriorityQueue));
}

TEST(ParallelEngineTest, SimultaneousArrivalsMergeBySenderThenSeq) {
  // Workers 1 and 2 each send worker 0 two messages landing on the SAME virtual nanosecond.
  // The staged merge must order them (time, sender, send-seq), independent of which worker
  // thread reached the barrier first: 1a, 1b, 2a, 2b.
  for (int attempt = 0; attempt < 4; ++attempt) {
    ParallelEngine engine(3, kLookahead);
    std::vector<int> labels;
    for (int sender : {2, 1}) {  // Issue in reverse sender order to rule out setup-order luck.
      engine.scheduler(sender).Post(Milliseconds(1), [&engine, &labels, sender] {
        engine.Send(sender, 0, Milliseconds(2), [&labels, sender] {
          labels.push_back(sender * 10);
        });
        engine.Send(sender, 0, Milliseconds(2), [&labels, sender] {
          labels.push_back(sender * 10 + 1);
        });
      });
    }
    engine.Run();
    EXPECT_EQ(labels, (std::vector<int>{10, 11, 20, 21})) << "attempt " << attempt;
  }
}

TEST(ParallelEngineTest, IdleWorkersDrainCleanly) {
  // Workers with no load at all must neither deadlock the barriers nor stop the busy worker.
  ParallelEngine engine(4, kLookahead);
  int fired = 0;
  engine.scheduler(2).Post(Milliseconds(1), [&] { ++fired; });
  SimTime end = engine.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(end, Milliseconds(1));
}

TEST(ParallelEngineTest, MainThreadSendBeforeRun) {
  // Seeding cross-worker traffic from the main thread before Run() is part of the contract.
  ParallelEngine engine(2, kLookahead);
  std::vector<int> order;
  engine.Send(0, 1, Milliseconds(5), [&] { order.push_back(1); });
  engine.scheduler(1).Post(Milliseconds(2), [&] { order.push_back(0); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace halfmoon::sim
