#include "src/sim/service_station.h"

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace halfmoon::sim {
namespace {

TEST(ServiceStationTest, SingleServerSerializesWork) {
  Scheduler sched;
  ServiceStation station(&sched, 1);
  SimTime done_a = 0, done_b = 0;
  sched.Spawn([](Scheduler* s, ServiceStation* st, SimTime* out) -> Task<void> {
    co_await st->Process(Milliseconds(10));
    *out = s->Now();
  }(&sched, &station, &done_a));
  sched.Spawn([](Scheduler* s, ServiceStation* st, SimTime* out) -> Task<void> {
    co_await st->Process(Milliseconds(10));
    *out = s->Now();
  }(&sched, &station, &done_b));
  sched.Run();
  EXPECT_EQ(done_a, Milliseconds(10));
  EXPECT_EQ(done_b, Milliseconds(20));  // Queued behind the first.
  EXPECT_EQ(station.completed(), 2);
}

TEST(ServiceStationTest, ParallelServersOverlap) {
  Scheduler sched;
  ServiceStation station(&sched, 4);
  for (int i = 0; i < 4; ++i) {
    sched.Spawn([](ServiceStation* st) -> Task<void> {
      co_await st->Process(Milliseconds(7));
    }(&station));
  }
  sched.Run();
  EXPECT_EQ(sched.Now(), Milliseconds(7));  // All four in parallel.
}

TEST(ServiceStationTest, QueueLengthVisibleMidRun) {
  Scheduler sched;
  ServiceStation station(&sched, 1);
  for (int i = 0; i < 5; ++i) {
    sched.Spawn([](ServiceStation* st) -> Task<void> {
      co_await st->Process(Milliseconds(10));
    }(&station));
  }
  sched.RunUntil(Milliseconds(5));
  EXPECT_EQ(station.queue_length(), 4u);
  sched.Run();
  EXPECT_EQ(station.queue_length(), 0u);
  EXPECT_EQ(sched.Now(), Milliseconds(50));
}

TEST(ServiceStationTest, UtilizationLawHolds) {
  // M/D/1-ish sanity: with offered load < capacity everything completes; the last completion
  // time is at least total-work / servers.
  Scheduler sched;
  ServiceStation station(&sched, 2);
  constexpr int kJobs = 20;
  for (int i = 0; i < kJobs; ++i) {
    sched.Spawn([](Scheduler* s, ServiceStation* st, int i) -> Task<void> {
      co_await s->Delay(Milliseconds(i));  // Staggered arrivals.
      co_await st->Process(Milliseconds(4));
    }(&sched, &station, i));
  }
  sched.Run();
  EXPECT_EQ(station.completed(), kJobs);
  EXPECT_GE(sched.Now(), Milliseconds(kJobs * 4 / 2));
}

}  // namespace
}  // namespace halfmoon::sim
