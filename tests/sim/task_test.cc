#include "src/sim/task.h"

#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "src/sim/scheduler.h"

namespace halfmoon::sim {
namespace {

Task<int> ReturnInt(int v) { co_return v; }

Task<std::string> ReturnString(std::string s) { co_return s; }

Task<int> AddViaNested(int a, int b) {
  int x = co_await ReturnInt(a);
  int y = co_await ReturnInt(b);
  co_return x + y;
}

Task<void> SideEffect(int* out, int v) {
  *out = v;
  co_return;
}

Task<int> Throwing() {
  throw std::runtime_error("boom");
  co_return 0;  // Unreachable.
}

Task<int> CatchesNested() {
  try {
    co_await Throwing();
  } catch (const std::runtime_error& e) {
    co_return 42;
  }
  co_return -1;
}

TEST(TaskTest, LazyTaskDoesNotRunUntilAwaited) {
  int value = 0;
  {
    Task<void> t = SideEffect(&value, 5);
    EXPECT_EQ(value, 0);  // Not started.
  }
  EXPECT_EQ(value, 0);  // Destroyed without running.
}

TEST(TaskTest, SpawnRunsTaskThroughScheduler) {
  Scheduler sched;
  int value = 0;
  sched.Spawn(SideEffect(&value, 7));
  EXPECT_EQ(value, 0);  // Not yet: spawn posts to the queue.
  sched.Run();
  EXPECT_EQ(value, 7);
}

TEST(TaskTest, NestedAwaitPropagatesValues) {
  Scheduler sched;
  int result = 0;
  sched.Spawn([](int* out) -> Task<void> {
    *out = co_await AddViaNested(20, 22);
  }(&result));
  sched.Run();
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, StringResultsMoveThrough) {
  Scheduler sched;
  std::string result;
  sched.Spawn([](std::string* out) -> Task<void> {
    *out = co_await ReturnString("halfmoon");
  }(&result));
  sched.Run();
  EXPECT_EQ(result, "halfmoon");
}

TEST(TaskTest, ExceptionsPropagateThroughAwait) {
  Scheduler sched;
  int result = 0;
  sched.Spawn([](int* out) -> Task<void> {
    *out = co_await CatchesNested();
  }(&result));
  sched.Run();
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, MoveConstructionTransfersOwnership) {
  Task<int> a = ReturnInt(1);
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): explicitly testing moved-from.
  EXPECT_TRUE(b.valid());
}

TEST(TaskTest, DeepAwaitChainDoesNotOverflowStack) {
  // 100k sequential awaits through symmetric transfer; would blow the stack if each nested
  // resume consumed a frame. ASan's stack instrumentation suppresses the tail calls
  // symmetric transfer lowers to, so resume genuinely recurses under it — run the chain
  // shorter there (the sanitizer still checks the await machinery, just not stack growth).
#if defined(__SANITIZE_ADDRESS__)
  constexpr int kChain = 5000;
#else
  constexpr int kChain = 100000;
#endif
  Scheduler sched;
  int64_t total = 0;
  sched.Spawn([](int64_t* out) -> Task<void> {
    int64_t acc = 0;
    for (int i = 0; i < kChain; ++i) {
      acc += co_await ReturnInt(1);
    }
    *out = acc;
  }(&total));
  sched.Run();
  EXPECT_EQ(total, kChain);
}

}  // namespace
}  // namespace halfmoon::sim
