#include "src/metrics/latency_recorder.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace halfmoon::metrics {
namespace {

TEST(LatencyRecorderTest, EmptyRecorderReturnsZero) {
  LatencyRecorder rec;
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.Median(), 0);
  EXPECT_EQ(rec.P99(), 0);
}

TEST(LatencyRecorderTest, SingleSampleIsEveryPercentile) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(5));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(5));
  EXPECT_EQ(rec.Median(), Milliseconds(5));
  EXPECT_EQ(rec.Percentile(100), Milliseconds(5));
}

TEST(LatencyRecorderTest, MedianOfKnownSequence) {
  LatencyRecorder rec;
  for (int i = 1; i <= 101; ++i) rec.Record(Milliseconds(i));
  EXPECT_EQ(rec.Median(), Milliseconds(51));
}

TEST(LatencyRecorderTest, P99OfKnownSequence) {
  LatencyRecorder rec;
  for (int i = 1; i <= 101; ++i) rec.Record(Milliseconds(i));
  EXPECT_EQ(rec.P99(), Milliseconds(100));
}

TEST(LatencyRecorderTest, PercentileIsOrderInsensitive) {
  LatencyRecorder a, b;
  for (int i = 1; i <= 100; ++i) a.Record(Milliseconds(i));
  for (int i = 100; i >= 1; --i) b.Record(Milliseconds(i));
  EXPECT_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.P99(), b.P99());
}

TEST(LatencyRecorderTest, CeilRankNeverRoundsTailDown) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Record(Milliseconds(i));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(1));
  EXPECT_EQ(rec.Median(), Milliseconds(51));  // rank 49.5 → index 50.
  // rank 98.01 → index 99, the largest sample. llround rounded this down to 99ms.
  EXPECT_EQ(rec.P99(), Milliseconds(100));
  EXPECT_EQ(rec.Percentile(100), Milliseconds(100));
}

TEST(LatencyRecorderTest, SmallSamplePercentiles) {
  LatencyRecorder rec;
  for (int v : {10, 20, 30, 40}) rec.Record(Milliseconds(v));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(10));
  EXPECT_EQ(rec.Median(), Milliseconds(30));  // rank 1.5 → index 2.
  EXPECT_EQ(rec.P99(), Milliseconds(40));     // rank 2.97 → index 3.
  EXPECT_EQ(rec.Percentile(100), Milliseconds(40));
}

TEST(LatencyRecorderTest, CachedSortStaysCorrectAcrossRecords) {
  // Percentile caches the sorted view; every Record must invalidate it.
  LatencyRecorder rec;
  rec.Record(Milliseconds(50));
  EXPECT_EQ(rec.Median(), Milliseconds(50));
  rec.Record(Milliseconds(10));
  rec.Record(Milliseconds(90));
  EXPECT_EQ(rec.Median(), Milliseconds(50));
  EXPECT_EQ(rec.Percentile(100), Milliseconds(90));
  rec.Record(Milliseconds(5));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(5));
}

TEST(LatencyRecorderTest, MeanMs) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(2));
  rec.Record(Milliseconds(4));
  EXPECT_DOUBLE_EQ(rec.MeanMs(), 3.0);
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(1));
  rec.Clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.count(), 0u);
}

TEST(LatencyRecorderTest, MergeCombinesSampleSets) {
  // Per-shard recorders merged must equal one recorder that saw every sample.
  LatencyRecorder shard_a, shard_b, reference;
  for (int i = 1; i <= 50; ++i) {
    shard_a.Record(Milliseconds(i));
    reference.Record(Milliseconds(i));
  }
  for (int i = 51; i <= 101; ++i) {
    shard_b.Record(Milliseconds(i));
    reference.Record(Milliseconds(i));
  }
  shard_a.Merge(shard_b);
  EXPECT_EQ(shard_a.count(), reference.count());
  EXPECT_EQ(shard_a.Median(), reference.Median());
  EXPECT_EQ(shard_a.P99(), reference.P99());
  EXPECT_EQ(shard_a.Percentile(0), Milliseconds(1));
  EXPECT_EQ(shard_a.Percentile(100), Milliseconds(101));
  EXPECT_DOUBLE_EQ(shard_a.MeanMs(), reference.MeanMs());
}

TEST(LatencyRecorderTest, MergePercentilesInterleaveCorrectly) {
  // The merged distribution's percentiles must come from the union, not either input:
  // evens in one recorder, odds in the other; median of the union differs from both.
  LatencyRecorder evens, odds;
  for (int i = 2; i <= 200; i += 2) evens.Record(Milliseconds(i));
  for (int i = 1; i <= 199; i += 2) odds.Record(Milliseconds(i));
  SimDuration median_evens = evens.Median();
  evens.Merge(odds);
  EXPECT_EQ(evens.count(), 200u);
  EXPECT_EQ(evens.Median(), Milliseconds(101));  // rank 99.5 → index 100 of 1..200.
  EXPECT_NE(evens.Median(), median_evens);
  EXPECT_EQ(evens.P99(), Milliseconds(199));  // rank 197.01 → index 198 of 1..200.
}

TEST(LatencyRecorderTest, MergeInvalidatesCachedSort) {
  LatencyRecorder rec, other;
  rec.Record(Milliseconds(10));
  EXPECT_EQ(rec.Median(), Milliseconds(10));  // Builds the sorted cache.
  other.Record(Milliseconds(2));
  rec.Merge(other);
  EXPECT_EQ(rec.Percentile(0), Milliseconds(2));
}

TEST(LatencyRecorderTest, WarmCacheSurvivesEveryMergeShape) {
  // Merging into a recorder whose sorted cache is warm must never serve percentiles of the
  // pre-merge sample set, whatever the merge shape: plain fold, self-merge, and a fold into a
  // recorder that was cleared and refilled between percentile reads.
  LatencyRecorder rec, other;
  for (int v : {40, 10, 30, 20}) rec.Record(Milliseconds(v));
  EXPECT_EQ(rec.P99(), Milliseconds(40));  // Warm cache at length 4.
  for (int v : {90, 60, 80, 70}) other.Record(Milliseconds(v));
  rec.Merge(other);
  EXPECT_EQ(rec.P99(), Milliseconds(90));
  EXPECT_EQ(rec.Median(), Milliseconds(60));  // rank 3.5 -> index 4 of 10..90.

  rec.Merge(rec);  // Self-merge with a warm cache: percentiles unchanged, count doubled.
  EXPECT_EQ(rec.count(), 16u);
  EXPECT_EQ(rec.Median(), Milliseconds(60));
  EXPECT_EQ(rec.P99(), Milliseconds(90));

  rec.Clear();
  for (int v : {3, 1, 2}) rec.Record(Milliseconds(v));
  EXPECT_EQ(rec.Median(), Milliseconds(2));  // Warm again at length 3.
  LatencyRecorder low;
  for (int v : {5, 4, 6}) low.Record(Milliseconds(v));
  rec.Merge(low);
  EXPECT_EQ(rec.Percentile(100), Milliseconds(6));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(1));
}

TEST(LatencyRecorderTest, MergeEmptyAndSelf) {
  LatencyRecorder rec, empty;
  rec.Record(Milliseconds(7));
  rec.Merge(empty);  // No-op.
  EXPECT_EQ(rec.count(), 1u);
  empty.Merge(rec);
  EXPECT_EQ(empty.Median(), Milliseconds(7));
  rec.Merge(rec);  // Self-merge doubles the sample set.
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_EQ(rec.Median(), Milliseconds(7));
}

TEST(LatencyRecorderTest, ClearThenRefillInvalidatesCache) {
  // Structural invalidation must survive Clear: after emptying both vectors, a refill to any
  // length (including the ORIGINAL length) rebuilds the sorted view from the new samples.
  LatencyRecorder rec;
  for (int v : {30, 10, 20}) rec.Record(Milliseconds(v));
  EXPECT_EQ(rec.Median(), Milliseconds(20));  // Builds the cache at length 3.
  rec.Clear();
  for (int v : {90, 70, 80}) rec.Record(Milliseconds(v));  // Length 3 again.
  EXPECT_EQ(rec.Median(), Milliseconds(80));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(70));
}

TEST(LatencyRecorderTest, ThreadLocalRecordersFoldAfterJoin) {
  // The DESIGN.md §10 aggregation pattern: each worker thread records into its OWN recorder,
  // the main thread Merges after joining. The fold must equal one recorder that saw every
  // sample, regardless of how the OS interleaved the workers.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<LatencyRecorder> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &per_thread] {
      for (int i = 0; i < kPerThread; ++i) {
        per_thread[static_cast<size_t>(t)].Record(Milliseconds(t * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  LatencyRecorder merged, reference;
  for (const LatencyRecorder& rec : per_thread) merged.Merge(rec);
  for (int i = 1; i <= kThreads * kPerThread; ++i) reference.Record(Milliseconds(i));
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_EQ(merged.Median(), reference.Median());
  EXPECT_EQ(merged.P99(), reference.P99());
  EXPECT_DOUBLE_EQ(merged.MeanMs(), reference.MeanMs());
}

TEST(LatencyRecorderTest, MillisecondHelpers) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(10));
  EXPECT_DOUBLE_EQ(rec.MedianMs(), 10.0);
  EXPECT_DOUBLE_EQ(rec.P99Ms(), 10.0);
}

}  // namespace
}  // namespace halfmoon::metrics
