#include "src/metrics/latency_recorder.h"

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace halfmoon::metrics {
namespace {

TEST(LatencyRecorderTest, EmptyRecorderReturnsZero) {
  LatencyRecorder rec;
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.Median(), 0);
  EXPECT_EQ(rec.P99(), 0);
}

TEST(LatencyRecorderTest, SingleSampleIsEveryPercentile) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(5));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(5));
  EXPECT_EQ(rec.Median(), Milliseconds(5));
  EXPECT_EQ(rec.Percentile(100), Milliseconds(5));
}

TEST(LatencyRecorderTest, MedianOfKnownSequence) {
  LatencyRecorder rec;
  for (int i = 1; i <= 101; ++i) rec.Record(Milliseconds(i));
  EXPECT_EQ(rec.Median(), Milliseconds(51));
}

TEST(LatencyRecorderTest, P99OfKnownSequence) {
  LatencyRecorder rec;
  for (int i = 1; i <= 101; ++i) rec.Record(Milliseconds(i));
  EXPECT_EQ(rec.P99(), Milliseconds(100));
}

TEST(LatencyRecorderTest, PercentileIsOrderInsensitive) {
  LatencyRecorder a, b;
  for (int i = 1; i <= 100; ++i) a.Record(Milliseconds(i));
  for (int i = 100; i >= 1; --i) b.Record(Milliseconds(i));
  EXPECT_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.P99(), b.P99());
}

TEST(LatencyRecorderTest, CeilRankNeverRoundsTailDown) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Record(Milliseconds(i));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(1));
  EXPECT_EQ(rec.Median(), Milliseconds(51));  // rank 49.5 → index 50.
  // rank 98.01 → index 99, the largest sample. llround rounded this down to 99ms.
  EXPECT_EQ(rec.P99(), Milliseconds(100));
  EXPECT_EQ(rec.Percentile(100), Milliseconds(100));
}

TEST(LatencyRecorderTest, SmallSamplePercentiles) {
  LatencyRecorder rec;
  for (int v : {10, 20, 30, 40}) rec.Record(Milliseconds(v));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(10));
  EXPECT_EQ(rec.Median(), Milliseconds(30));  // rank 1.5 → index 2.
  EXPECT_EQ(rec.P99(), Milliseconds(40));     // rank 2.97 → index 3.
  EXPECT_EQ(rec.Percentile(100), Milliseconds(40));
}

TEST(LatencyRecorderTest, CachedSortStaysCorrectAcrossRecords) {
  // Percentile caches the sorted view; every Record must invalidate it.
  LatencyRecorder rec;
  rec.Record(Milliseconds(50));
  EXPECT_EQ(rec.Median(), Milliseconds(50));
  rec.Record(Milliseconds(10));
  rec.Record(Milliseconds(90));
  EXPECT_EQ(rec.Median(), Milliseconds(50));
  EXPECT_EQ(rec.Percentile(100), Milliseconds(90));
  rec.Record(Milliseconds(5));
  EXPECT_EQ(rec.Percentile(0), Milliseconds(5));
}

TEST(LatencyRecorderTest, MeanMs) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(2));
  rec.Record(Milliseconds(4));
  EXPECT_DOUBLE_EQ(rec.MeanMs(), 3.0);
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(1));
  rec.Clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.count(), 0u);
}

TEST(LatencyRecorderTest, MillisecondHelpers) {
  LatencyRecorder rec;
  rec.Record(Milliseconds(10));
  EXPECT_DOUBLE_EQ(rec.MedianMs(), 10.0);
  EXPECT_DOUBLE_EQ(rec.P99Ms(), 10.0);
}

}  // namespace
}  // namespace halfmoon::metrics
