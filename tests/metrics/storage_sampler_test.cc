#include "src/metrics/storage_sampler.h"

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace halfmoon::metrics {
namespace {

TEST(StorageGaugeTest, StartsEmpty) {
  StorageGauge gauge;
  EXPECT_EQ(gauge.CurrentBytes(), 0);
}

TEST(StorageGaugeTest, AddAccumulates) {
  StorageGauge gauge;
  gauge.Add(0, 100);
  gauge.Add(Seconds(1), 50);
  EXPECT_EQ(gauge.CurrentBytes(), 150);
  gauge.Add(Seconds(2), -150);
  EXPECT_EQ(gauge.CurrentBytes(), 0);
}

TEST(StorageGaugeTest, TimeAverageOfConstantGauge) {
  StorageGauge gauge;
  gauge.Set(0, 1000);
  EXPECT_DOUBLE_EQ(gauge.TimeAverageBytes(Seconds(10)), 1000.0);
}

TEST(StorageGaugeTest, TimeAverageOfStepFunction) {
  StorageGauge gauge;
  gauge.Set(0, 0);
  gauge.Set(Seconds(5), 200);  // 0 bytes for 5s, then 200 bytes for 5s.
  EXPECT_DOUBLE_EQ(gauge.TimeAverageBytes(Seconds(10)), 100.0);
}

TEST(StorageGaugeTest, WindowAverageExcludesWarmup) {
  StorageGauge gauge;
  gauge.Set(0, 1000000);           // Huge warm-up footprint.
  gauge.Set(Seconds(10), 100);     // Steady state.
  gauge.ResetWindow(Seconds(10));
  EXPECT_DOUBLE_EQ(gauge.WindowAverageBytes(Seconds(20)), 100.0);
}

TEST(StorageGaugeTest, WindowAverageTracksChangesInsideWindow) {
  StorageGauge gauge;
  gauge.ResetWindow(0);
  gauge.Set(0, 100);
  gauge.Set(Seconds(2), 300);  // 100 for 2s, 300 for 2s => avg 200.
  EXPECT_DOUBLE_EQ(gauge.WindowAverageBytes(Seconds(4)), 200.0);
}

TEST(StorageGaugeTest, AverageAtZeroSpanIsCurrent) {
  StorageGauge gauge;
  gauge.Set(0, 42);
  EXPECT_DOUBLE_EQ(gauge.TimeAverageBytes(0), 42.0);
}

}  // namespace
}  // namespace halfmoon::metrics
