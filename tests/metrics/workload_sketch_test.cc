// Property tests for the sliding-window count-min workload sketch (DESIGN.md §11):
// never-undercount, bounded overcount, two-epoch decay, merge additivity, and — the advisor's
// headline memory contract — a footprint that is a pure function of the configured geometry,
// independent of how many distinct objects the stream touches.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/metrics/workload_sketch.h"

namespace halfmoon::metrics {
namespace {

// Deterministic splitmix64 stream for key/count generation (fixed seeds; no global RNG).
uint64_t Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(WorkloadSketchTest, NeverUndercountsAndStaysWithinErrorBound) {
  WorkloadSketchConfig config;
  config.width = 1024;
  config.depth = 4;
  WorkloadSketch sketch(config);

  // 4096 distinct objects with skewed true counts, far more than the width — collisions are
  // guaranteed, so this exercises the min-over-rows estimate, not a collision-free fast path.
  const int kObjects = 4096;
  uint64_t state = 42;
  std::vector<uint64_t> ids(kObjects);
  std::vector<uint32_t> true_reads(kObjects);
  std::vector<uint32_t> true_writes(kObjects);
  int64_t total = 0;
  for (int i = 0; i < kObjects; ++i) {
    ids[i] = Next(state);
    true_reads[i] = static_cast<uint32_t>(Next(state) % 8);
    true_writes[i] = static_cast<uint32_t>(Next(state) % 4);
    total += true_reads[i] + true_writes[i];
    for (uint32_t r = 0; r < true_reads[i]; ++r) sketch.RecordRead(ids[i]);
    for (uint32_t w = 0; w < true_writes[i]; ++w) sketch.RecordWrite(ids[i]);
  }
  EXPECT_EQ(sketch.WindowReads() + sketch.WindowWrites(), total);

  // Count-min guarantee: estimate in [true, true + eps * N] with eps = e / width holding with
  // overwhelming probability across depth rows; for this fixed seed it must hold everywhere.
  const uint64_t budget =
      static_cast<uint64_t>(2.72 * static_cast<double>(total) / config.width) + 1;
  for (int i = 0; i < kObjects; ++i) {
    const uint64_t reads = sketch.EstimateReads(ids[i]);
    const uint64_t writes = sketch.EstimateWrites(ids[i]);
    ASSERT_GE(reads, true_reads[i]) << "undercount at object " << i;
    ASSERT_GE(writes, true_writes[i]) << "undercount at object " << i;
    ASSERT_LE(reads, true_reads[i] + budget) << "overcount beyond eps*N at object " << i;
    ASSERT_LE(writes, true_writes[i] + budget) << "overcount beyond eps*N at object " << i;
  }
}

TEST(WorkloadSketchTest, SlidingWindowDecaysAfterTwoEpochs) {
  WorkloadSketch sketch(WorkloadSketchConfig{});
  const uint64_t id = 0xdeadbeefull;
  for (int i = 0; i < 10; ++i) sketch.RecordRead(id);
  for (int i = 0; i < 4; ++i) sketch.RecordWrite(id);
  EXPECT_GE(sketch.EstimateReads(id), 10);
  EXPECT_GE(sketch.EstimateWrites(id), 4);

  // One rotation: the counts move to the previous epoch and stay visible (window = cur+prev).
  sketch.AdvanceEpoch();
  EXPECT_GE(sketch.EstimateReads(id), 10);
  EXPECT_EQ(sketch.WindowReads(), 10);

  // Second rotation: the old epoch ages out entirely.
  sketch.AdvanceEpoch();
  EXPECT_EQ(sketch.EstimateReads(id), 0);
  EXPECT_EQ(sketch.EstimateWrites(id), 0);
  EXPECT_EQ(sketch.WindowReads(), 0);
  EXPECT_EQ(sketch.WindowWrites(), 0);
  EXPECT_EQ(sketch.epochs_advanced(), 2u);
}

TEST(WorkloadSketchTest, MergeMatchesUnionStream) {
  WorkloadSketchConfig config;
  config.width = 256;
  config.depth = 3;
  WorkloadSketch a(config);
  WorkloadSketch b(config);
  WorkloadSketch unioned(config);

  uint64_t state = 7;
  for (int i = 0; i < 500; ++i) {
    const uint64_t id = Next(state) % 64;  // Small keyspace: heavy overlap between a and b.
    const bool is_read = (Next(state) & 1) != 0;
    WorkloadSketch& half = (i % 2 == 0) ? a : b;
    if (is_read) {
      half.RecordRead(id);
      unioned.RecordRead(id);
    } else {
      half.RecordWrite(id);
      unioned.RecordWrite(id);
    }
  }
  a.Merge(b);
  EXPECT_EQ(a.WindowReads(), unioned.WindowReads());
  EXPECT_EQ(a.WindowWrites(), unioned.WindowWrites());
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(a.EstimateReads(id), unioned.EstimateReads(id)) << id;
    EXPECT_EQ(a.EstimateWrites(id), unioned.EstimateWrites(id)) << id;
  }
}

TEST(WorkloadSketchTest, MemoryIsIndependentOfLiveObjectCount) {
  WorkloadSketchConfig config;
  config.width = 512;
  config.depth = 4;
  WorkloadSketch sketch(config);
  const size_t before = sketch.MemoryBytes();
  EXPECT_GT(before, 0u);

  // A million-object stream must not grow the sketch: the footprint is fixed at
  // construction — 2 epochs x depth x width counters per direction plus the row seeds.
  uint64_t state = 99;
  for (int i = 0; i < 1'000'000; ++i) {
    sketch.RecordRead(Next(state));
  }
  EXPECT_EQ(sketch.MemoryBytes(), before);
  EXPECT_EQ(sketch.MemoryBytes(), WorkloadSketch(config).MemoryBytes());

  // The bound is the configured geometry exactly: 4 counter planes (reads/writes x cur/prev).
  const size_t counters = 4ull * config.depth * config.width * sizeof(uint32_t);
  EXPECT_EQ(before, counters + config.depth * sizeof(uint64_t));
}

TEST(WorkloadSketchTest, EpochRotationIsAllocationFree) {
  // AdvanceEpoch swaps and clears in place; geometry (and therefore MemoryBytes) is stable
  // across any number of rotations.
  WorkloadSketch sketch(WorkloadSketchConfig{});
  const size_t before = sketch.MemoryBytes();
  for (int i = 0; i < 100; ++i) {
    sketch.RecordWrite(static_cast<uint64_t>(i));
    sketch.AdvanceEpoch();
  }
  EXPECT_EQ(sketch.MemoryBytes(), before);
}

}  // namespace
}  // namespace halfmoon::metrics
