#include "src/metrics/table_printer.h"

#include <gtest/gtest.h>

namespace halfmoon::metrics {
namespace {

TEST(TablePrinterTest, FormatDoubleDefaultPrecision) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.234567), "1.23");
}

TEST(TablePrinterTest, FormatDoubleCustomPrecision) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.234567, 4), "1.2346");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterTest, PrintDoesNotCrash) {
  TablePrinter table({"system", "median_ms", "p99_ms"});
  table.AddRow({"Boki", "3.06", "6.4"});
  table.AddRow({"Halfmoon-read", "2.01", "5.2"});
  table.Print();  // Smoke test: output formatting only.
}

TEST(TablePrinterTest, MismatchedRowAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

}  // namespace
}  // namespace halfmoon::metrics
