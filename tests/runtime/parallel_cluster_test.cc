// Cross-mode and cross-run pins for the shard-parallel cluster (DESIGN.md §10).
//
// Contracts:
//   1. Content equivalence across modes: the same seed through HM_PARALLEL=0 (one shared
//      single-threaded scheduler) and HM_PARALLEL=1 (one OS thread per partition under the
//      conservative engine) commits the same records in the same per-tag order — pinned by
//      the FNV content checksum, and by equal event counts and virtual end times (both modes
//      run the same events at the same timestamps; only wall-clock interleaving differs).
//   2. Cross-run determinism in parallel mode: real threads race for real, so repeated runs
//      must agree bit-for-bit (checksum, events, end time) — the engine's determinism claim.
//   3. Degeneration: partitions=1 parallel mode runs today's scheduler loop exactly.
//
// The "[parallel]" lines are grepped by scripts/check.sh the same way the "[shards]" lines
// of sharded_equivalence_test are: any MISMATCH (or missing match) fails the smoke.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/value.h"
#include "src/runtime/parallel_cluster.h"
#include "src/sharedlog/log_record.h"
#include "src/sim/task.h"

namespace halfmoon::runtime {
namespace {

struct RunResult {
  uint64_t checksum = 0;
  uint64_t events = 0;
  SimTime end = 0;
  int64_t appends = 0;
  int64_t remote = 0;
  uint64_t windows = 0;
  uint64_t messages = 0;
};

// One client's load: `ops` appends, every `remote_every`-th shipped to the next partition
// (cross-thread in parallel mode). Tag ids live in the OWNER's registry, pre-interned by
// BuildLoad so the coroutine never touches a foreign registry at run time.
sim::Task<void> ClientLoad(ParallelCluster* pc, int p, int client, int ops, int remote_every,
                           std::vector<std::vector<sharedlog::TagId>> tags) {
  for (int op = 0; op < ops; ++op) {
    int owner = p;
    if (pc->partitions() > 1 && op % remote_every == 0) {
      owner = (p + 1) % pc->partitions();
    }
    FieldMap fields;
    fields.SetStr("op", "bench-append");
    fields.SetInt("step", op);
    fields.SetInt("src", p * 100 + client);
    std::vector<sharedlog::TagId> record_tags = {
        tags[static_cast<size_t>(owner)][static_cast<size_t>(p)]};
    co_await pc->Append(p, client, owner, std::move(record_tags), std::move(fields));
  }
}

RunResult RunWorkload(int partitions, bool parallel, uint64_t seed, int ops_per_client = 40,
                      int remote_every = 4, bool durable = false) {
  ParallelClusterConfig config;
  config.partitions = partitions;
  config.parallel = parallel;
  config.clients_per_partition = 2;
  config.seed = seed;
  config.durable = durable;
  ParallelCluster pc(config);

  // tags[owner][src] = the stream on `owner` fed by partition `src`. Interned before Run, as
  // the threading contract requires.
  std::vector<std::vector<sharedlog::TagId>> tags(static_cast<size_t>(partitions));
  for (int owner = 0; owner < partitions; ++owner) {
    for (int src = 0; src < partitions; ++src) {
      tags[static_cast<size_t>(owner)].push_back(
          pc.InternTag(owner, "p" + std::to_string(owner) + "/from" + std::to_string(src)));
    }
  }
  for (int p = 0; p < partitions; ++p) {
    for (int c = 0; c < config.clients_per_partition; ++c) {
      pc.Spawn(p, ClientLoad(&pc, p, c, ops_per_client, remote_every, tags));
    }
  }

  RunResult result;
  result.end = pc.Run();
  result.checksum = pc.ContentChecksum();
  result.events = pc.TotalEventsProcessed();
  result.appends = pc.TotalLogAppends();
  result.remote = pc.remote_appends();
  result.windows = pc.windows();
  result.messages = pc.messages_routed();

  // Sanity on the aggregation fold: every append recorded exactly one end-to-end latency.
  EXPECT_EQ(pc.MergedAppendLatency().count(), static_cast<size_t>(result.appends));
  return result;
}

TEST(ParallelClusterTest, ModesCommitIdenticalContent) {
  // The cross-mode pin: HM_PARALLEL=0 and HM_PARALLEL=1 with the same seed commit the same
  // records in the same per-tag order, run the same events, and end at the same virtual time.
  RunResult single = RunWorkload(/*partitions=*/4, /*parallel=*/false, /*seed=*/7);
  RunResult parallel = RunWorkload(/*partitions=*/4, /*parallel=*/true, /*seed=*/7);
  EXPECT_EQ(parallel.checksum, single.checksum);
  EXPECT_EQ(parallel.events, single.events);
  EXPECT_EQ(parallel.end, single.end);
  EXPECT_EQ(parallel.appends, single.appends);
  EXPECT_EQ(parallel.remote, single.remote);
  EXPECT_GT(parallel.remote, 0) << "the workload must actually cross partitions";
  EXPECT_GT(parallel.windows, 0u);
  EXPECT_EQ(parallel.messages, 2u * static_cast<uint64_t>(parallel.remote))
      << "each remote append is one request and one reply message";
  std::printf("[parallel] seed=7 parts=4 mode0=%016llx mode1=%016llx %s\n",
              static_cast<unsigned long long>(single.checksum),
              static_cast<unsigned long long>(parallel.checksum),
              single.checksum == parallel.checksum ? "match" : "MISMATCH");
}

TEST(ParallelClusterTest, ParallelRunsAreDeterministic) {
  // Cross-run: repeated parallel runs must agree bit-for-bit despite OS thread racing.
  RunResult reference = RunWorkload(4, true, /*seed=*/11);
  for (int run = 0; run < 3; ++run) {
    RunResult repeat = RunWorkload(4, true, /*seed=*/11);
    EXPECT_EQ(repeat.checksum, reference.checksum) << "run " << run;
    EXPECT_EQ(repeat.events, reference.events) << "run " << run;
    EXPECT_EQ(repeat.end, reference.end) << "run " << run;
    EXPECT_EQ(repeat.windows, reference.windows) << "run " << run;
  }
  std::printf("[parallel] seed=11 parts=4 cross-run checksum=%016llx match\n",
              static_cast<unsigned long long>(reference.checksum));
}

TEST(ParallelClusterTest, SeedsProduceDistinctContent) {
  // Negative control: the checksum is not a constant — different seeds, different content.
  EXPECT_NE(RunWorkload(2, true, 7).checksum, RunWorkload(2, true, 8).checksum);
}

TEST(ParallelClusterTest, SinglePartitionDegeneratesExactly) {
  // partitions=1: parallel mode spawns no threads and must be today's scheduler bit for bit.
  RunResult single = RunWorkload(1, false, /*seed=*/3);
  RunResult parallel = RunWorkload(1, false, /*seed=*/3);
  RunResult degenerate = RunWorkload(1, true, /*seed=*/3);
  EXPECT_EQ(single.checksum, parallel.checksum);  // Same-mode reproducibility first.
  EXPECT_EQ(degenerate.checksum, single.checksum);
  EXPECT_EQ(degenerate.events, single.events);
  EXPECT_EQ(degenerate.end, single.end);
  EXPECT_EQ(degenerate.windows, 0u) << "1 partition must not pay for barriers";
  EXPECT_EQ(degenerate.remote, 0);
}

TEST(ParallelClusterTest, TwoPartitionHandoff) {
  // Smallest cross-thread topology, heavier remote share (every 2nd append crosses): the
  // conservative handoff must neither deadlock nor reorder per-tag streams across modes.
  RunResult single = RunWorkload(2, false, /*seed=*/21, /*ops_per_client=*/30, /*remote_every=*/2);
  RunResult parallel = RunWorkload(2, true, /*seed=*/21, /*ops_per_client=*/30, /*remote_every=*/2);
  EXPECT_EQ(parallel.checksum, single.checksum);
  EXPECT_EQ(parallel.events, single.events);
  EXPECT_EQ(parallel.end, single.end);
  // 2 partitions x 2 clients x 15 remote ops each (every even op of 30 crosses).
  EXPECT_EQ(parallel.remote, 2 * 2 * 15);
}

TEST(ParallelClusterTest, DurableModesCommitIdenticalContent) {
  // The durable tier must not break the cross-mode pin: per-partition journals and their
  // flush events are partition-local timestamped events, identical under both engines.
  RunResult single = RunWorkload(4, /*parallel=*/false, /*seed=*/7, 40, 4, /*durable=*/true);
  RunResult parallel = RunWorkload(4, /*parallel=*/true, /*seed=*/7, 40, 4, /*durable=*/true);
  EXPECT_EQ(parallel.checksum, single.checksum);
  EXPECT_EQ(parallel.events, single.events);
  EXPECT_EQ(parallel.end, single.end);
  EXPECT_EQ(parallel.appends, single.appends);
  EXPECT_GT(parallel.remote, 0);
  std::printf("[parallel] seed=7 parts=4 durable mode0=%016llx mode1=%016llx %s\n",
              static_cast<unsigned long long>(single.checksum),
              static_cast<unsigned long long>(parallel.checksum),
              single.checksum == parallel.checksum ? "match" : "MISMATCH");
}

TEST(ParallelClusterTest, DurableParallelRunsAreDeterministic) {
  RunResult reference = RunWorkload(4, true, /*seed=*/11, 40, 4, /*durable=*/true);
  for (int run = 0; run < 2; ++run) {
    RunResult repeat = RunWorkload(4, true, /*seed=*/11, 40, 4, /*durable=*/true);
    EXPECT_EQ(repeat.checksum, reference.checksum) << "run " << run;
    EXPECT_EQ(repeat.events, reference.events) << "run " << run;
    EXPECT_EQ(repeat.end, reference.end) << "run " << run;
  }
}

TEST(ParallelClusterTest, DurableGatingDelaysAcksButKeepsContent) {
  // Write-ahead acks cost time (flush-ordered before the reply leg) but never change what
  // commits; volatile mode constructs no storage machinery at all.
  ParallelClusterConfig config;
  config.partitions = 2;
  config.parallel = false;
  config.durable = false;
  ParallelCluster volatile_pc(config);
  EXPECT_EQ(volatile_pc.partition(0).durability(), nullptr);

  RunResult plain = RunWorkload(2, false, /*seed=*/5);
  RunResult durable = RunWorkload(2, false, /*seed=*/5, 40, 4, /*durable=*/true);
  EXPECT_EQ(durable.appends, plain.appends);
  EXPECT_GT(durable.end, plain.end);  // The flush gate is on the ack path.
}

TEST(ParallelClusterTest, EveryPartitionJournalsItsOwnShard) {
  ParallelClusterConfig config;
  config.partitions = 3;
  config.parallel = false;
  config.durable = true;
  config.seed = 9;
  ParallelCluster pc(config);
  std::vector<sharedlog::TagId> tags;
  for (int p = 0; p < 3; ++p) tags.push_back(pc.InternTag(p, "t" + std::to_string(p)));
  for (int p = 0; p < 3; ++p) {
    pc.Spawn(p, [](ParallelCluster* pc, int p, sharedlog::TagId tag) -> sim::Task<void> {
      FieldMap fields;
      fields.SetStr("op", "bench-append");
      fields.SetInt("step", 0);
      co_await pc->Append(p, 0, p, std::vector<sharedlog::TagId>(1, tag), std::move(fields));
    }(&pc, p, tags[static_cast<size_t>(p)]));
  }
  pc.Run();
  for (int p = 0; p < 3; ++p) {
    ASSERT_NE(pc.partition(p).durability(), nullptr);
    EXPECT_GT(pc.partition(p).durability()->stats().flushes, 0) << "partition " << p;
    EXPECT_EQ(pc.partition(p).durability()->durable_offset(),
              pc.partition(p).durability()->tail_offset())
        << "partition " << p;  // Quiescence: everything acked is flushed.
  }
}

TEST(ParallelClusterTest, CheckpointCompactsEveryPartitionAndRestartsFromTheImage) {
  // Per-partition checkpointing (DESIGN.md §14): each partition checkpoints its own shard
  // between drains, truncates its own journal, and a whole-node restart rebuilds identical
  // content from image + (empty) replay-suffix — the cut sits at the quiescent durable tail.
  ParallelClusterConfig config;
  config.partitions = 3;
  config.parallel = false;
  config.durable = true;
  config.checkpoint = true;
  config.seed = 13;
  ParallelCluster pc(config);
  std::vector<sharedlog::TagId> tags;
  for (int p = 0; p < 3; ++p) tags.push_back(pc.InternTag(p, "t" + std::to_string(p)));
  for (int p = 0; p < 3; ++p) {
    pc.Spawn(p, [](ParallelCluster* pc, int p, sharedlog::TagId tag) -> sim::Task<void> {
      for (int i = 0; i < 8; ++i) {
        FieldMap fields;
        fields.SetStr("op", "ckpt-append");
        fields.SetInt("step", i);
        co_await pc->Append(p, 0, p, std::vector<sharedlog::TagId>(1, tag), std::move(fields));
      }
    }(&pc, p, tags[static_cast<size_t>(p)]));
  }
  pc.Run();

  uint64_t before = pc.ContentChecksum();
  for (int p = 0; p < 3; ++p) {
    ASSERT_NE(pc.partition(p).checkpoint_store(), nullptr) << "partition " << p;
    pc.partition(p).CheckpointNow();
    EXPECT_GT(pc.partition(p).durability()->retained_offset(), 0u) << "partition " << p;
  }
  for (int p = 0; p < 3; ++p) {
    sharedlog::LogRecoveryStats stats = pc.partition(p).RestartFromJournal();
    EXPECT_TRUE(stats.used_checkpoint) << "partition " << p;
    EXPECT_GT(stats.image_frames, 0) << "partition " << p;
    EXPECT_EQ(stats.suffix_frames, 0) << "partition " << p;  // Cut == quiescent durable tail.
  }
  EXPECT_EQ(pc.ContentChecksum(), before);
}

TEST(ParallelClusterTest, DefaultParallelModeReadsEnvironment) {
  // HM_PARALLEL semantics: unset/0/"" off, anything else on.
  unsetenv("HM_PARALLEL");
  EXPECT_FALSE(DefaultParallelMode());
  setenv("HM_PARALLEL", "0", 1);
  EXPECT_FALSE(DefaultParallelMode());
  setenv("HM_PARALLEL", "", 1);
  EXPECT_FALSE(DefaultParallelMode());
  setenv("HM_PARALLEL", "1", 1);
  EXPECT_TRUE(DefaultParallelMode());
  setenv("HM_PARALLEL", "2", 1);
  EXPECT_TRUE(DefaultParallelMode());
  unsetenv("HM_PARALLEL");
}

}  // namespace
}  // namespace halfmoon::runtime
