#include "src/runtime/cluster.h"

#include <gtest/gtest.h>

#include "src/sim/sync.h"

namespace halfmoon::runtime {
namespace {

// Built outside coroutine argument lists (GCC 12 miscompiles braced-init-list args there).
FieldMap OpFields(const std::string& op) {
  FieldMap f;
  f.SetStr("op", op);
  f.SetInt("step", 0);
  return f;
}

TEST(ClusterTest, BuildsConfiguredTopology) {
  ClusterConfig config;
  config.function_nodes = 8;
  Cluster cluster(config);
  EXPECT_EQ(cluster.node_count(), 8);
  EXPECT_EQ(cluster.scheduler().Now(), 0);
}

TEST(ClusterTest, PickNodeRoundRobins) {
  ClusterConfig config;
  config.function_nodes = 3;
  Cluster cluster(config);
  EXPECT_EQ(cluster.PickNode().id(), 0);
  EXPECT_EQ(cluster.PickNode().id(), 1);
  EXPECT_EQ(cluster.PickNode().id(), 2);
  EXPECT_EQ(cluster.PickNode().id(), 0);
}

TEST(ClusterTest, IndexPropagationReachesAllNodes) {
  ClusterConfig config;
  config.function_nodes = 4;
  Cluster cluster(config);
  cluster.scheduler().Spawn([](Cluster* c) -> sim::Task<void> {
    co_await c->node(0).log().Append(sharedlog::OneTag("t"), OpFields("x"));
  }(&cluster));
  cluster.scheduler().Run();
  sharedlog::SeqNum committed = cluster.log_space().next_seqnum() - 1;
  for (int i = 0; i < cluster.node_count(); ++i) {
    EXPECT_GE(cluster.node(i).log().indexed_upto(), committed) << "node " << i;
  }
}

TEST(ClusterTest, RunningFrontierTracksInitStream) {
  Cluster cluster(ClusterConfig{});
  // Empty init stream: the frontier is the next seqnum.
  EXPECT_EQ(cluster.RunningFrontier(), cluster.log_space().next_seqnum());

  FieldMap init1;
  init1.SetStr("op", "init");
  init1.SetInt("step", 0);
  init1.SetStr("instance", "A");
  sharedlog::SeqNum a = cluster.log_space().Append(
      0, sharedlog::TwoTags("A", sharedlog::InitLogTag()), std::move(init1));

  FieldMap init2;
  init2.SetStr("op", "init");
  init2.SetInt("step", 0);
  init2.SetStr("instance", "B");
  sharedlog::SeqNum b = cluster.log_space().Append(
      0, sharedlog::TwoTags("B", sharedlog::InitLogTag()), std::move(init2));

  // The frontier is maintained incrementally: the runtime registers every init record as it
  // is logged (InitSsf does this), so the cluster never rescans the init stream.
  cluster.RegisterInitRecord("A", a);
  cluster.RegisterInitRecord("B", b);

  // Both running: the frontier stops at A's init.
  EXPECT_EQ(cluster.RunningFrontier(), a);
  cluster.MarkInstanceFinished("A");
  // A finished, B still running: frontier moves to B's init.
  EXPECT_EQ(cluster.RunningFrontier(), b);
  cluster.MarkInstanceFinished("B");
  EXPECT_EQ(cluster.RunningFrontier(), cluster.log_space().next_seqnum());
}

TEST(ClusterTest, StepLogTrimQueueDrains) {
  Cluster cluster(ClusterConfig{});
  cluster.EnqueueStepLogTrim("a");
  cluster.EnqueueStepLogTrim("b");
  std::vector<std::string> drained = cluster.DrainStepLogTrimQueue();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(cluster.DrainStepLogTrimQueue().empty());
}

TEST(ClusterTest, DeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    Cluster cluster(config);
    SimTime finish = 0;
    cluster.scheduler().Spawn([](Cluster* c, SimTime* out) -> sim::Task<void> {
      for (int i = 0; i < 20; ++i) {
        co_await c->node(0).log().Append(sharedlog::OneTag("t"), OpFields("x"));
      }
      *out = c->scheduler().Now();
    }(&cluster, &finish));
    cluster.scheduler().Run();
    return finish;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FailureInjectorTest, ScheduledHitsFireExactlyOnce) {
  FailureInjector injector;
  Rng rng(1);
  injector.CrashAtSiteHits({2});
  EXPECT_FALSE(injector.ShouldCrash(rng, "s0"));
  EXPECT_FALSE(injector.ShouldCrash(rng, "s1"));
  EXPECT_TRUE(injector.ShouldCrash(rng, "s2"));
  EXPECT_FALSE(injector.ShouldCrash(rng, "s3"));
  EXPECT_EQ(injector.site_hits(), 4);
}

TEST(FailureInjectorTest, ProbabilityZeroNeverCrashes) {
  FailureInjector injector;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ShouldCrash(rng, "s"));
  }
}

TEST(FailureInjectorTest, ProbabilityOneAlwaysCrashes) {
  FailureInjector injector;
  injector.SetCrashProbability(1.0);
  Rng rng(1);
  EXPECT_TRUE(injector.ShouldCrash(rng, "s"));
}

TEST(FailureInjectorTest, DuplicateProbabilityIsIndependentOfCrashes) {
  FailureInjector injector;
  injector.SetDuplicateProbability(1.0);
  Rng rng(1);
  EXPECT_TRUE(injector.ShouldDuplicate(rng));
  EXPECT_FALSE(injector.ShouldCrash(rng, "s"));
}

}  // namespace
}  // namespace halfmoon::runtime
