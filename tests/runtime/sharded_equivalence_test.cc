// Shard-equivalence suite for the tag-partitioned shared log.
//
// Two contracts, checked over every protocol x workload pair:
//   1. Bit-identity at one shard: with log_shards = 1 the encoded seqnums, event counts,
//      virtual end times, and full log content are *identical* to the pre-sharding
//      implementation (golden tuples captured at the previous head). Sharding must be
//      invisible when disabled.
//   2. Equivalence at N shards: with log_shards in {2, 4} the same seed must produce the
//      same committed record content per tag stream, the same event count and end time
//      (per-shard sequencer rounds draw the same latency samples in the same order), and
//      a passing consistency oracle. Only the seqnum *encoding* may differ.
//
// The content checksum walks every live stream in name order and hashes each record's tag
// count and field map (FNV-1a). Record fields are seqnum-free, so the checksum is invariant
// under re-encoding — which is exactly the property that makes it a cross-shard witness.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ssf_runtime.h"
#include "src/faultcheck/oracle.h"
#include "src/faultcheck/workload.h"
#include "src/runtime/cluster.h"
#include "src/sim/task.h"

namespace halfmoon {
namespace {

using core::ProtocolKind;

sim::Task<void> Drive(core::SsfRuntime* runtime, std::string function, Value input, Value* out,
                      bool* done) {
  *out = co_await runtime->InvokeSsf(std::move(function), std::move(input));
  *done = true;
}

uint64_t HashBytes(uint64_t h, std::string_view s) {
  for (unsigned char c : s) h = (h ^ c) * 1099511628211ull;
  return h;
}

uint64_t HashInt(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

uint64_t HashStream(const std::vector<sharedlog::LogRecordPtr>& records) {
  uint64_t h = kFnvOffset;
  for (const auto& rec : records) {
    h = HashInt(h, rec->tags.size());
    for (const auto& [key, field] : rec->fields) {
      h = HashBytes(h, key);
      if (const int64_t* i = std::get_if<int64_t>(&field)) {
        h = HashInt(h, static_cast<uint64_t>(*i));
      } else {
        h = HashBytes(h, std::get<std::string>(field));
      }
    }
  }
  return h;
}

struct RunResult {
  uint64_t events = 0;
  uint64_t end_now = 0;
  uint64_t next_seqnum = 0;
  uint64_t content_fnv = 0;                  // All streams folded, name-sorted.
  std::map<std::string, uint64_t> streams;   // Per-stream checksums, for pinpointing drift.
  bool oracle_ok = false;
  std::string oracle_failure;
};

RunResult RunWorkload(ProtocolKind protocol, const faultcheck::Workload& workload,
                      int log_shards, bool read_cache = false, int pipeline_depth = 1) {
  runtime::ClusterConfig ccfg;  // Defaults: seed 1, 8 nodes — matches the golden capture.
  ccfg.log_shards = log_shards;
  ccfg.log_read_cache = read_cache;
  // Pinned explicitly (not the HM_PIPELINE environment default): the golden tuples witness
  // the serial append engine, and CI runs this suite with HM_PIPELINE=4 exported.
  ccfg.append_batch_pipeline = pipeline_depth;
  // Same for the durable tier: the goldens witness the volatile store, and CI runs this
  // suite with HM_DURABLE=1 exported. scripts/check.sh re-checks the goldens with
  // HM_DURABLE=0 through the environment default path.
  ccfg.durable = false;
  runtime::Cluster cluster(ccfg);
  core::RuntimeConfig rcfg;
  rcfg.default_protocol = protocol;
  core::SsfRuntime runtime(&cluster, rcfg);
  workload.Install(runtime);

  std::vector<Value> results;
  for (const auto& [function, input] : workload.invocations) {
    Value out;
    bool done = false;
    cluster.scheduler().Spawn(Drive(&runtime, function, input, &out, &done));
    cluster.scheduler().Run();
    EXPECT_TRUE(done) << workload.name << ": invocation did not complete";
    results.push_back(out);
  }

  faultcheck::OracleVerdict verdict =
      faultcheck::CheckConsistency(cluster, workload, protocol, /*switching=*/false, results);

  RunResult r;
  r.events = static_cast<uint64_t>(cluster.scheduler().events_processed());
  r.end_now = static_cast<uint64_t>(cluster.scheduler().Now());
  r.next_seqnum = static_cast<uint64_t>(cluster.log_space().next_seqnum());
  r.oracle_ok = verdict.ok;
  r.oracle_failure = verdict.failure;
  uint64_t h = kFnvOffset;
  auto& log = cluster.log_space();
  for (const std::string& name : log.StreamTagsWithPrefix("")) {
    h = HashBytes(h, name);
    std::vector<sharedlog::LogRecordPtr> records = log.ReadStream(name);
    uint64_t stream_h = HashStream(records);
    r.streams[name] = stream_h;
    for (const auto& rec : records) {
      h = HashInt(h, rec->tags.size());
      for (const auto& [key, field] : rec->fields) {
        h = HashBytes(h, key);
        if (const int64_t* i = std::get_if<int64_t>(&field)) {
          h = HashInt(h, static_cast<uint64_t>(*i));
        } else {
          h = HashBytes(h, std::get<std::string>(field));
        }
      }
    }
  }
  r.content_fnv = h;
  return r;
}

const ProtocolKind kProtocols[] = {
    ProtocolKind::kBoki,
    ProtocolKind::kHalfmoonRead,
    ProtocolKind::kHalfmoonWrite,
    ProtocolKind::kTransitional,
};

struct Golden {
  const char* protocol;
  const char* workload;
  uint64_t events;
  uint64_t end_now;
  uint64_t next_seqnum;
  uint64_t content_fnv;
};

// Captured at the pre-sharding head (PR 4): ClusterConfig defaults, log_shards pinned to 1.
// Any drift here means the one-shard code path is no longer the historic implementation.
const Golden kGoldens[] = {
    {"Boki", "counter", 102ull, 29114551ull, 13ull, 0x27997faa902eac63ull},
    {"Boki", "transfer", 114ull, 36286555ull, 15ull, 0xa57b016e099fa5c1ull},
    {"Boki", "workflow", 194ull, 39466378ull, 29ull, 0x955a1dd8169c2e24ull},
    {"Halfmoon-read", "counter", 88ull, 23700364ull, 11ull, 0xa75e9b1f8b1c59c9ull},
    {"Halfmoon-read", "transfer", 96ull, 32440175ull, 13ull, 0x9ed8397a27dd7343ull},
    {"Halfmoon-read", "workflow", 184ull, 41429721ull, 30ull, 0xedcdd2bd6734820eull},
    {"Halfmoon-write", "counter", 66ull, 21705196ull, 7ull, 0x95bc7e3a09d74505ull},
    {"Halfmoon-write", "transfer", 66ull, 25505280ull, 7ull, 0xcb39d8f4aa892f0dull},
    {"Halfmoon-write", "workflow", 120ull, 33777847ull, 17ull, 0x85b5ad84320a842bull},
    {"Transitional", "counter", 125ull, 36566345ull, 13ull, 0x6844aae78d48ed8aull},
    {"Transitional", "transfer", 144ull, 48864106ull, 15ull, 0xff547c414e3a5502ull},
    {"Transitional", "workflow", 220ull, 53231692ull, 29ull, 0x6c9d9f159cec029ull},
};

const faultcheck::Workload* FindWorkload(const std::vector<faultcheck::Workload>& all,
                                         std::string_view name) {
  for (const faultcheck::Workload& w : all) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

ProtocolKind FindProtocol(std::string_view name) {
  for (ProtocolKind p : kProtocols) {
    if (core::ProtocolName(p) == name) return p;
  }
  ADD_FAILURE() << "unknown protocol in golden table: " << name;
  return ProtocolKind::kBoki;
}

TEST(ShardedEquivalenceTest, OneShardIsBitIdenticalToPreShardingGoldens) {
  std::vector<faultcheck::Workload> all = faultcheck::AllWorkloads();
  for (const Golden& golden : kGoldens) {
    const faultcheck::Workload* workload = FindWorkload(all, golden.workload);
    ASSERT_NE(workload, nullptr) << golden.workload;
    RunResult r = RunWorkload(FindProtocol(golden.protocol), *workload, /*log_shards=*/1);
    SCOPED_TRACE(std::string(golden.protocol) + "/" + golden.workload);
    EXPECT_TRUE(r.oracle_ok) << r.oracle_failure;
    EXPECT_EQ(r.events, golden.events);
    EXPECT_EQ(r.end_now, golden.end_now);
    EXPECT_EQ(r.next_seqnum, golden.next_seqnum);
    EXPECT_EQ(r.content_fnv, golden.content_fnv);
  }
}

TEST(ShardedEquivalenceTest, ShardCountsProduceEquivalentExecutions) {
  std::vector<faultcheck::Workload> all = faultcheck::AllWorkloads();
  for (ProtocolKind protocol : kProtocols) {
    for (const faultcheck::Workload& workload : all) {
      SCOPED_TRACE(std::string(core::ProtocolName(protocol)) + "/" + workload.name);
      RunResult base = RunWorkload(protocol, workload, /*log_shards=*/1);
      ASSERT_TRUE(base.oracle_ok) << base.oracle_failure;
      for (int shards : {2, 4}) {
        RunResult sharded = RunWorkload(protocol, workload, shards);
        SCOPED_TRACE("shards=" + std::to_string(shards));
        EXPECT_TRUE(sharded.oracle_ok) << sharded.oracle_failure;
        // Same serial driving, same latency draws: the execution shape is shard-invariant.
        EXPECT_EQ(sharded.events, base.events);
        EXPECT_EQ(sharded.end_now, base.end_now);
        // Content equivalence, stream by stream — only the seqnum encoding may differ.
        EXPECT_EQ(sharded.streams, base.streams);
        EXPECT_EQ(sharded.content_fnv, base.content_fnv);
        std::printf("[shards] %s/%s n1=0x%llx n%d=0x%llx %s\n", core::ProtocolName(protocol),
                    workload.name.c_str(),
                    static_cast<unsigned long long>(base.content_fnv), shards,
                    static_cast<unsigned long long>(sharded.content_fnv),
                    sharded.content_fnv == base.content_fnv && sharded.oracle_ok ? "match"
                                                                                : "MISMATCH");
      }
    }
  }
}

TEST(ShardedEquivalenceTest, PipelineDepthsCommitIdenticalContent) {
  // The pipelined append engine (DESIGN.md §12) commits rounds strictly in departure order,
  // so at ANY depth the per-stream content, the seqnum supply, and the oracle verdict must
  // match the serial engine exactly. Event counts and end times legitimately differ — the
  // dispatcher runs rounds as separate tasks — which is precisely why depth 1 bypasses the
  // pipelined engine entirely (pinned by OneShardIsBitIdenticalToPreShardingGoldens above).
  std::vector<faultcheck::Workload> all = faultcheck::AllWorkloads();
  for (ProtocolKind protocol : kProtocols) {
    for (const faultcheck::Workload& workload : all) {
      SCOPED_TRACE(std::string(core::ProtocolName(protocol)) + "/" + workload.name);
      RunResult base = RunWorkload(protocol, workload, /*log_shards=*/1);
      ASSERT_TRUE(base.oracle_ok) << base.oracle_failure;
      for (int depth : {2, 4, 8}) {
        RunResult piped = RunWorkload(protocol, workload, /*log_shards=*/1,
                                      /*read_cache=*/false, depth);
        SCOPED_TRACE("pipeline=" + std::to_string(depth));
        EXPECT_TRUE(piped.oracle_ok) << piped.oracle_failure;
        EXPECT_EQ(piped.next_seqnum, base.next_seqnum);
        EXPECT_EQ(piped.streams, base.streams);
        EXPECT_EQ(piped.content_fnv, base.content_fnv);
        if (depth == 4) {
          std::printf("[pipeline] %s/%s d1=0x%llx d%d=0x%llx %s\n",
                      core::ProtocolName(protocol), workload.name.c_str(),
                      static_cast<unsigned long long>(base.content_fnv), depth,
                      static_cast<unsigned long long>(piped.content_fnv),
                      piped.content_fnv == base.content_fnv && piped.oracle_ok ? "match"
                                                                              : "MISMATCH");
        }
      }
    }
  }
}

TEST(ShardedEquivalenceTest, PipelinedShardsCommitIdenticalContent) {
  // Depth and shard count compose: four shards × four in-flight rounds per shard must still
  // commit the same per-stream content as the serial one-shard log.
  std::vector<faultcheck::Workload> all = faultcheck::AllWorkloads();
  for (ProtocolKind protocol : kProtocols) {
    const faultcheck::Workload* counter = FindWorkload(all, "counter");
    ASSERT_NE(counter, nullptr);
    RunResult base = RunWorkload(protocol, *counter, /*log_shards=*/1);
    RunResult piped = RunWorkload(protocol, *counter, /*log_shards=*/4,
                                  /*read_cache=*/false, /*pipeline_depth=*/4);
    SCOPED_TRACE(core::ProtocolName(protocol));
    EXPECT_TRUE(piped.oracle_ok) << piped.oracle_failure;
    EXPECT_EQ(piped.streams, base.streams);
    EXPECT_EQ(piped.content_fnv, base.content_fnv);
  }
}

TEST(ShardedEquivalenceTest, ReadCachePreservesCommittedContent) {
  // The node-local read cache changes read latencies, never the committed log: with the
  // cache on, per-stream content must match the cache-off run and the oracle must pass.
  // (Event counts and end times legitimately differ — cache hits skip the storage visit.)
  std::vector<faultcheck::Workload> all = faultcheck::AllWorkloads();
  for (ProtocolKind protocol : kProtocols) {
    for (const faultcheck::Workload& workload : all) {
      SCOPED_TRACE(std::string(core::ProtocolName(protocol)) + "/" + workload.name);
      RunResult base = RunWorkload(protocol, workload, /*log_shards=*/1);
      RunResult cached =
          RunWorkload(protocol, workload, /*log_shards=*/1, /*read_cache=*/true);
      EXPECT_TRUE(cached.oracle_ok) << cached.oracle_failure;
      EXPECT_EQ(cached.streams, base.streams);
      EXPECT_EQ(cached.content_fnv, base.content_fnv);

      RunResult cached_sharded =
          RunWorkload(protocol, workload, /*log_shards=*/4, /*read_cache=*/true);
      EXPECT_TRUE(cached_sharded.oracle_ok) << cached_sharded.oracle_failure;
      EXPECT_EQ(cached_sharded.streams, base.streams);
    }
  }
}

}  // namespace
}  // namespace halfmoon
