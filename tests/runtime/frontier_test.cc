// The incremental GC/switch frontier and coalesced index propagation: the O(1) frontier must
// agree with a from-scratch init-stream scan under arbitrary interleavings of init, finish,
// and trim, completion bookkeeping must stay bounded under churn, and propagation coalescing
// must be observably identical to the per-commit reference mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/runtime/cluster.h"

namespace halfmoon::runtime {
namespace {

using sharedlog::SeqNum;
using sharedlog::TagId;

FieldMap InitFields(const std::string& instance) {
  FieldMap f;
  f.SetStr("op", "init");
  f.SetInt("step", 0);
  f.SetStr("instance", instance);
  return f;
}

FieldMap OpFields(const std::string& op) {
  FieldMap f;
  f.SetStr("op", op);
  f.SetInt("step", 0);
  return f;
}

// Appends an init record the way InitSsf does: tagged with the instance's step log and the
// global init stream, then registered with the cluster's frontier bookkeeping.
SeqNum StartInstance(Cluster& cluster, const std::string& instance) {
  TagId step_tag = cluster.log_space().tags().Intern(instance);
  SeqNum seqnum = cluster.log_space().Append(
      0, sharedlog::TwoTags(step_tag, sharedlog::kInitTagId), InitFields(instance));
  cluster.RegisterInitRecord(instance, seqnum);
  return seqnum;
}

// Reference implementation of the frontier: scan the live init stream and take the earliest
// init record whose instance has not finished (the pre-incremental definition).
SeqNum FrontierByScan(Cluster& cluster, const std::unordered_set<std::string>& finished) {
  for (const auto& record : cluster.log_space().ReadStream(sharedlog::kInitTagId)) {
    if (finished.count(record->fields.GetStr("instance")) == 0) return record->seqnum;
  }
  return cluster.log_space().next_seqnum();
}

TEST(FrontierTest, RandomizedIncrementalFrontierMatchesInitStreamScan) {
  Cluster cluster(ClusterConfig{});
  Rng rng(20260806);
  std::vector<std::string> running;
  std::unordered_set<std::string> finished;
  int next_instance = 0;

  for (int step = 0; step < 2000; ++step) {
    int64_t op = rng.UniformInt(0, 9);
    if (op < 5 || running.empty()) {
      std::string instance = "inst-" + std::to_string(next_instance++);
      SeqNum seqnum = StartInstance(cluster, instance);
      // Replayed registration (a recovering peer re-reports the same init record) is a no-op.
      cluster.RegisterInitRecord(instance, seqnum);
      running.push_back(std::move(instance));
    } else if (op < 9) {
      size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(running.size()) - 1));
      cluster.MarkInstanceFinished(running[pick]);
      finished.insert(running[pick]);
      running.erase(running.begin() + static_cast<long>(pick));
    } else {
      // A GC pass: trim the init stream below the frontier and prune finished bookkeeping.
      SeqNum frontier = cluster.RunningFrontier();
      cluster.log_space().Trim(0, sharedlog::kInitTagId, frontier - 1);
      cluster.PruneFinishedTracking();
    }
    ASSERT_EQ(cluster.RunningFrontier(), FrontierByScan(cluster, finished)) << "step " << step;
  }
}

TEST(FrontierTest, TrackingEntriesStayBoundedUnderChurn) {
  // Regression for the unbounded finished_instances_ growth: after each GC-style prune, the
  // completion bookkeeping must hold nothing — not one entry per instance ever finished.
  Cluster cluster(ClusterConfig{});
  int next_instance = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      std::string instance = "inst-" + std::to_string(next_instance++);
      StartInstance(cluster, instance);
      cluster.MarkInstanceFinished(instance);
      EXPECT_TRUE(cluster.IsInstanceFinished(instance));
    }
    // Within a cycle the tracker holds at most this cycle's instances (init + finished sets).
    EXPECT_LE(cluster.live_tracking_entries(), 20u);
    cluster.log_space().Trim(0, sharedlog::kInitTagId, cluster.RunningFrontier() - 1);
    cluster.PruneFinishedTracking();
    EXPECT_EQ(cluster.live_tracking_entries(), 0u);
  }
}

struct PropagationResult {
  SimTime end_time = 0;
  SeqNum next_seqnum = 0;
  std::vector<SeqNum> indexed_upto;
  std::vector<std::pair<int, SeqNum>> trace;  // (node, seqnum) in completion order.
  int64_t ticks = 0;
  int64_t commits = 0;
};

PropagationResult RunConcurrentAppends(uint64_t seed, bool coalesce) {
  ClusterConfig config;
  config.seed = seed;
  config.function_nodes = 4;
  config.coalesce_index_propagation = coalesce;
  Cluster cluster(config);

  PropagationResult result;
  for (int n = 0; n < cluster.node_count(); ++n) {
    cluster.scheduler().Spawn(
        [](Cluster* c, int node, PropagationResult* out) -> sim::Task<void> {
          for (int i = 0; i < 25; ++i) {
            FieldMap fields = OpFields("w");
            sharedlog::SeqNum s = co_await c->node(node).log().Append(
                sharedlog::OneTag("t" + std::to_string(node)), std::move(fields));
            out->trace.emplace_back(node, s);
          }
        }(&cluster, n, &result));
  }
  cluster.scheduler().Run();

  result.end_time = cluster.scheduler().Now();
  result.next_seqnum = cluster.log_space().next_seqnum();
  for (int n = 0; n < cluster.node_count(); ++n) {
    result.indexed_upto.push_back(cluster.node(n).log().indexed_upto());
  }
  result.ticks = cluster.index_propagation_ticks();
  result.commits = cluster.index_propagation_commits();
  return result;
}

TEST(FrontierTest, CoalescedPropagationIsObservablyIdenticalToReferenceMode) {
  PropagationResult coalesced = RunConcurrentAppends(42, /*coalesce=*/true);
  PropagationResult reference = RunConcurrentAppends(42, /*coalesce=*/false);

  // Same seed, either mode: same seqnum trace, same final index replicas, same virtual time.
  EXPECT_EQ(coalesced.trace, reference.trace);
  EXPECT_EQ(coalesced.indexed_upto, reference.indexed_upto);
  EXPECT_EQ(coalesced.next_seqnum, reference.next_seqnum);
  EXPECT_EQ(coalesced.end_time, reference.end_time);
  EXPECT_EQ(coalesced.commits, reference.commits);

  // The reference mode schedules one advance event per commit; coalescing must strictly
  // reduce wake-ups under concurrent appends while covering every commit.
  EXPECT_EQ(reference.ticks, reference.commits);
  EXPECT_LT(coalesced.ticks, coalesced.commits);
  EXPECT_GT(coalesced.ticks, 0);
}

TEST(FrontierTest, SameSeedClustersProduceIdenticalSeqnumTraces) {
  PropagationResult a = RunConcurrentAppends(7, /*coalesce=*/true);
  PropagationResult b = RunConcurrentAppends(7, /*coalesce=*/true);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.indexed_upto, b.indexed_upto);
}

}  // namespace
}  // namespace halfmoon::runtime
